// Ablation: striped vs global HTM fallback locking under a capacity-abort
// storm (the robustness tentpole; see DESIGN.md §9).
//
// Panel 1 (DES, deterministic): 16 simulated threads, update-only, with 30%
// of traffic skewed onto one hot leaf set (the leaves sharing the storm
// key's stripe under the fixed 64-way reference mapping).  Hot publishes
// capacity-abort at permille 800 and escalate to the CONFIGURED stripe's
// fallback lock, held across the slot flush.  With one global stripe every
// cold publish subscribes to that same lock and throughput collapses; with
// 64 stripes only the hot set serializes.  The cold-op ratio (storm / calm)
// for each configuration is exported as meta.storm_cold_ratio_{striped,
// global}; tools/bench_smoke.py --fallback-storm asserts striped >= 0.5 and
// global strictly worse — deterministic, so it holds on any host.
//
// Panel 2 (real tree, injected aborts): two storm threads hammer one hot
// key under a StripeStormInjector that fires capacity aborts only on
// transactions whose StripeScope targets the hot key's stripe; four cold
// threads update uniform keys.  Cold ops/s is measured calm vs storm at
// fallback_stripes = 1 and 64.  Timing-based (evidence for EXPERIMENTS.md,
// not asserted by the smoke).
#include <atomic>
#include <optional>
#include <thread>

#include "bench_common.hpp"
#include "core/rntree.hpp"
#include "htm/abort_inject.hpp"
#include "htm/stripe_table.hpp"
#include "sim/models.hpp"

namespace {

using namespace rnt;
using namespace rnt::bench;

// Calm legs run the SAME storm config (classification + 30% hot-set traffic
// skew stay identical) with permille = 0, so the only difference between
// calm and storm is the injected capacity aborts.
sim::SimResult storm_run(const BenchOptions& opt, int stripes, bool storm) {
  sim::SimConfig cfg;
  cfg.model = sim::TreeModel::kRNTreeDS;
  cfg.threads = 16;
  cfg.keys = opt.hot_keys;
  cfg.keys_per_leaf = 48;
  cfg.update_pct = 100;
  cfg.horizon_ns = 20'000'000;
  cfg.seed = opt.seed;
  cfg.fallback_stripes = stripes;
  cfg.storm.enabled = true;
  cfg.storm.key = 7;
  cfg.storm.permille = storm ? 800 : 0;
  return sim::run_simulation(cfg);
}

/// Cold ops completed in a calm run: every op, classified by the same hot
/// set the storm run uses (re-run the classification-only config).
double cold_ratio(const sim::SimResult& storm, const sim::SimResult& calm) {
  const double calm_cold = static_cast<double>(calm.cold_stripe_ops);
  return calm_cold > 0.0
             ? static_cast<double>(storm.cold_stripe_ops) / calm_cold
             : 0.0;
}

struct RealLeg {
  double cold_calm = 0.0;   ///< cold ops/s, no injection
  double cold_storm = 0.0;  ///< cold ops/s, storm on the hot stripe
};

double real_run(core::RNTree<>& tree, std::uint64_t warm, double secs,
                bool storm, unsigned hot_stripe, std::uint64_t seed) {
  // Capacity-only aborts: every injected abort is the hopeless kind, so the
  // hot stripe's publishes escalate to its fallback lock at permille rate.
  htm::RandomAbortInjector::Weights w;
  w.conflict = 0;
  w.capacity = 1;
  w.spurious = 0;
  w.lock_subscription = 0;
  htm::RandomAbortInjector inject(seed, 800, w);
  htm::StripeStormInjector stormer(inject, static_cast<int>(hot_stripe));
  std::optional<htm::ScopedAbortInjector> scoped;
  if (storm) scoped.emplace(&stormer);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> cold_ops{0};
  std::vector<std::thread> ts;
  const std::uint64_t hot_key = nth_key(1);
  for (int s = 0; s < 2; ++s)
    ts.emplace_back([&tree, &stop, hot_key] {
      std::uint64_t v = 0;
      while (!stop.load(std::memory_order_relaxed)) tree.update(hot_key, ++v);
    });
  for (int c = 0; c < 4; ++c)
    ts.emplace_back([&tree, &stop, &cold_ops, warm, seed, c] {
      Xoshiro256 rng(seed * 31 + static_cast<std::uint64_t>(c) + 1);
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        tree.update(nth_key(2 + rng.next_below(warm - 2)), n);
        ++n;
      }
      cold_ops.fetch_add(n, std::memory_order_relaxed);
    });
  const std::uint64_t t0 = now_ns();
  while (now_ns() - t0 < static_cast<std::uint64_t>(secs * 1e9))
    std::this_thread::yield();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : ts) t.join();
  const double elapsed = static_cast<double>(now_ns() - t0) * 1e-9;
  return static_cast<double>(cold_ops.load()) / elapsed;
}

RealLeg real_leg(const BenchOptions& opt, unsigned stripes) {
  nvm::PmemPool pool(opt.pool_size());
  core::RNTree<>::Options topt;
  topt.fallback_stripes = stripes;
  core::RNTree<> tree(pool, topt);
  for (std::uint64_t i = 0; i < opt.warm; ++i) tree.upsert(nth_key(i), i);
  const unsigned hot_stripe = tree.stripe_of_key(nth_key(1));
  RealLeg leg;
  leg.cold_calm =
      real_run(tree, opt.warm, opt.seconds, false, hot_stripe, opt.seed);
  leg.cold_storm =
      real_run(tree, opt.warm, opt.seconds, true, hot_stripe, opt.seed);
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv);
  opt.apply_nvm_config();
  const unsigned striped = opt.stripes != 0 ? opt.stripes : 64u;

  // --- Panel 1: deterministic DES ---
  const sim::SimResult g_calm = storm_run(opt, 1, false);
  const sim::SimResult g_storm = storm_run(opt, 1, true);
  const sim::SimResult s_calm =
      storm_run(opt, static_cast<int>(striped), false);
  const sim::SimResult s_storm =
      storm_run(opt, static_cast<int>(striped), true);
  const double ratio_global = cold_ratio(g_storm, g_calm);
  const double ratio_striped = cold_ratio(s_storm, s_calm);

  print_header("Simulated permille-800 capacity-abort storm on one stripe",
               {"calm-cold", "storm-cold", "ratio", "fallbacks"});
  print_row("global (1)",
            {static_cast<double>(g_calm.cold_stripe_ops),
             static_cast<double>(g_storm.cold_stripe_ops), ratio_global,
             static_cast<double>(g_storm.htm_fallbacks)},
            "%14.2f");
  print_row("striped (" + std::to_string(striped) + ")",
            {static_cast<double>(s_calm.cold_stripe_ops),
             static_cast<double>(s_storm.cold_stripe_ops), ratio_striped,
             static_cast<double>(s_storm.htm_fallbacks)},
            "%14.2f");
  print_note("cold = ops outside the hot leaf set (fixed 64-way reference)");
  print_note("striped keeps cold traffic >= 0.5x calm; global collapses");

  // --- Panel 2: real tree with targeted abort injection ---
  const RealLeg rg = real_leg(opt, 1);
  const RealLeg rs = real_leg(opt, striped);
  const double real_ratio_global =
      rg.cold_calm > 0.0 ? rg.cold_storm / rg.cold_calm : 0.0;
  const double real_ratio_striped =
      rs.cold_calm > 0.0 ? rs.cold_storm / rs.cold_calm : 0.0;
  print_header("Real tree, StripeStormInjector on the hot key's stripe",
               {"calm-cold/s", "storm-cold/s", "ratio"});
  print_row("global (1)", {rg.cold_calm, rg.cold_storm, real_ratio_global},
            "%14.2f");
  print_row("striped (" + std::to_string(striped) + ")",
            {rs.cold_calm, rs.cold_storm, real_ratio_striped}, "%14.2f");
  print_note("timing-based: evidence only, the smoke asserts the DES panel");

  auto num = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", v);
    return std::string(buf);
  };
  export_stats(opt, "ablation_fallback",
               {{"storm_cold_ratio_striped", num(ratio_striped), true},
                {"storm_cold_ratio_global", num(ratio_global), true},
                {"storm_stripes", std::to_string(striped), true},
                {"real_cold_ratio_striped", num(real_ratio_striped), true},
                {"real_cold_ratio_global", num(real_ratio_global), true}});
  return 0;
}
