// Ablation: leaf capacity.  The paper (S6.2): "We have tried other size of
// leaf nodes, but the size of 64 performs the best in general."
//
// The RNTree leaf capacity is a compile-time constant (the slot array is one
// cache line), so this ablation explores the same trade-off through the
// nearest runtime proxy available in this codebase: wB+tree-SO (7-entry
// leaves, the paper's own small-leaf data point) against the 64-entry
// designs, plus the inner-tree depth effect measured directly.
#include "tree_zoo.hpp"

namespace rnt::bench {
namespace {

template <typename Factory>
void run_one(const BenchOptions& opt) {
  nvm::PmemPool pool(opt.pool_size());
  auto tree = Factory::make(pool);
  warm_tree(*tree, opt.warm);
  Xoshiro256 rng(opt.seed);
  std::uint64_t fresh = opt.warm;
  const double find_rate = measure_rate(opt.seconds, [&](std::uint64_t) {
    (void)tree->find(nth_key(rng.next_below(opt.warm)));
  });
  const double insert_rate = measure_rate(opt.seconds, [&](std::uint64_t) {
    (void)tree->insert(nth_key(fresh++), 1);
  });
  print_row(Factory::kName,
            {static_cast<double>(tree->leaf_count()),
             static_cast<double>(tree->height()), find_rate / 1e6,
             insert_rate / 1e6});
}

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  using namespace rnt::bench;
  BenchOptions opt = BenchOptions::parse(argc, argv);
  opt.apply_nvm_config();

  print_header("Ablation: leaf capacity (7-entry vs 63-entry leaves)",
               {"leaves", "height", "find-Mops", "ins-Mops"});
  run_one<MakeRNTreeDS>(opt);
  run_one<MakeWBTree>(opt);
  run_one<MakeWBTreeSO>(opt);
  print_note("7-entry leaves (wB+tree-SO) need ~9x the leaves and a deeper");
  print_note("inner tree; the same 2 persists/insert buy less because splits");
  print_note("are ~9x more frequent - the paper's argument for capacity 64");
  export_stats(opt, "ablation_leafsize");
  return 0;
}
