// Ablation: NVM write latency.  How the single-thread ordering shifts as
// the medium moves from DRAM-speed (0 ns) through the paper's NVDIMM
// (140 ns) to pessimistic PCM-class latencies (1000 ns).  The headline
// prediction: the higher the persist cost, the more the ranking is decided
// purely by persistent-instruction counts (RNTree/NVTree=2 < FPTree=3 <
// wB+tree=4), while at 0 ns cache behaviour dominates.
#include "tree_zoo.hpp"

namespace rnt::bench {
namespace {

template <typename Factory>
double upsert_rate(const BenchOptions& opt) {
  nvm::PmemPool pool(opt.pool_size());
  auto tree = Factory::make(pool);
  warm_tree(*tree, opt.warm);
  Xoshiro256 rng(opt.seed);
  return measure_rate(opt.seconds, [&](std::uint64_t) {
           const std::uint64_t k = nth_key(rng.next_below(opt.warm));
           tree->upsert(k, k);
         }) /
         1e6;
}

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  using namespace rnt::bench;
  BenchOptions opt = BenchOptions::parse(argc, argv);

  const std::uint32_t latencies[] = {0, 140, 300, 600, 1000};
  print_header("Ablation: modify throughput (Mops/s) vs NVM write latency",
               {"0ns", "140ns", "300ns", "600ns", "1000ns"});

  auto sweep = [&](auto factory_tag, const char* name) {
    using Factory = decltype(factory_tag);
    std::vector<double> row;
    for (const std::uint32_t ns : latencies) {
      rnt::nvm::config().write_latency_ns = ns;
      rnt::nvm::config().per_line_ns = 2;
      row.push_back(upsert_rate<Factory>(opt));
    }
    print_row(name, row);
  };
  sweep(MakeRNTreeDS{}, "RNTree+DS");
  sweep(MakeNVTree{}, "NVTree");
  sweep(MakeWBTree{}, "wB+tree");
  sweep(MakeFPTree{}, "FPTree");
  print_note("expected: slopes ~ persist counts (2/2/4/3); the 4-persist");
  print_note("wB+tree degrades fastest as the medium slows");
  export_stats(opt, "ablation_nvm_latency");
  return 0;
}
