// Ablation: overlapping persistency and concurrency (paper S4.2).
//
// Isolates the paper's second design decision by simulating an "RNTree that
// behaves like FPTree": same slot-array leaf, but the KV flush moved INSIDE
// the leaf critical section.  Compares lock-hold time and skewed-workload
// scalability of the two persist placements, holding everything else fixed.
#include "bench_common.hpp"
#include "sim/models.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace rnt::bench;
using namespace rnt::sim;

/// Lock-hold per update with the overlapping design vs the decoupled one.
void print_lock_holds(const Costs& c) {
  const double overlap_hold = static_cast<double>(
      c.leaf_search + c.slot_update + c.persist + c.slot_copy);
  const double decoupled_hold = static_cast<double>(
      c.cas_alloc + c.kv_write + c.persist + c.leaf_search + c.slot_update +
      c.persist + c.slot_copy);
  print_header("Ablation: persist placement (S4.2 overlapping design)",
               {"ns-in-lock"});
  print_row("overlapped", {overlap_hold});
  print_row("decoupled", {decoupled_hold});
  print_note("overlapping keeps the KV flush outside the lock: %.0f%% less",
             (1.0 - overlap_hold / decoupled_hold) * 100.0);
}

/// Simulated skewed scalability with both persist placements, everything
/// else identical (same tree model, same reader protocol, same costs).
void print_scalability(std::uint64_t hot_keys) {
  print_header("Simulated YCSB-A zipf0.8 (Mops/s): overlapped vs decoupled",
               {"4thr", "8thr", "16thr", "24thr"});
  const int threads[] = {4, 8, 16, 24};

  std::vector<double> overlapped, decoupled;
  for (const int t : threads) {
    SimConfig cfg;
    cfg.model = TreeModel::kRNTreeDS;
    cfg.threads = t;
    cfg.zipf_theta = 0.8;
    cfg.keys = hot_keys;
    cfg.flush_inside_lock = false;
    overlapped.push_back(run_simulation(cfg).mops);
    cfg.flush_inside_lock = true;
    decoupled.push_back(run_simulation(cfg).mops);
  }
  print_row("overlapped", overlapped);
  print_row("decoupled", decoupled);
  print_note("moving the KV flush into the critical section lengthens hot-");
  print_note("leaf lock holds and costs throughput under skew (S4.2)");
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv);
  print_lock_holds(Costs{});
  // Two contention regimes: the figure-bench calibration and an extreme
  // hot set where the lock-hold difference decides throughput outright.
  std::printf("\n--- moderate contention (hot set = %llu keys) ---\n",
              static_cast<unsigned long long>(opt.hot_keys));
  print_scalability(opt.hot_keys);
  std::printf("\n--- extreme contention (hot set = 500 keys) ---\n");
  print_scalability(500);
  export_stats(opt, "ablation_overlap");
  return 0;
}
