// Ablation: copy-on-write vs in-place SMO install transactions (ROADMAP 3).
//
// Models the RCU-HTM redesign of inner-node structure modifications at
// 16-256 simulated cores: with in-place SMOs the whole inner path is one
// transaction's write set, so a size-driven share of attempts capacity-
// aborts and escalates to the fallback lock; with COW SMOs the replacement
// node is built out of place and installed by a one-cache-line transaction
// that can only conflict-abort.  The contrast this bench prints — capacity
// aborts per 1k SMOs and the throughput spread as cores grow — is the
// simulated counterpart of the real-tree measurement in EXPERIMENTS.md
// (smo_stress_test's CapacityAbortsDropWithCowInstall).
#include "bench_common.hpp"
#include "sim/models.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace rnt::bench;
using namespace rnt::sim;

SimConfig smo_config(int threads, bool cow, std::uint64_t keys) {
  SimConfig cfg;
  cfg.model = TreeModel::kRNTreeDS;
  cfg.threads = threads;
  cfg.keys = keys;
  cfg.keys_per_leaf = 16;  // small fanout: split-heavy, the ISSUE's workload
  cfg.update_pct = 100;    // insert-only profile
  cfg.zipf_theta = 0.0;
  cfg.horizon_ns = 20'000'000;
  cfg.smo.enabled = true;
  cfg.smo.cow = cow;
  return cfg;
}

void print_sweep(std::uint64_t keys) {
  const int threads[] = {16, 64, 256};
  print_header("Simulated insert-only, 16-key leaves: COW vs in-place SMOs",
               {"16thr", "64thr", "256thr"});

  std::vector<double> cow_mops, inp_mops, cow_cap, inp_cap, inp_fb;
  for (const int t : threads) {
    const SimResult cow = run_simulation(smo_config(t, /*cow=*/true, keys));
    const SimResult inp = run_simulation(smo_config(t, /*cow=*/false, keys));
    cow_mops.push_back(cow.mops);
    inp_mops.push_back(inp.mops);
    cow_cap.push_back(cow.smo_count
                          ? 1000.0 * static_cast<double>(cow.aborts_capacity) /
                                static_cast<double>(cow.smo_count)
                          : 0.0);
    inp_cap.push_back(inp.smo_count
                          ? 1000.0 * static_cast<double>(inp.aborts_capacity) /
                                static_cast<double>(inp.smo_count)
                          : 0.0);
    inp_fb.push_back(static_cast<double>(inp.htm_fallbacks));
  }
  print_row("cow Mops/s", cow_mops);
  print_row("inplace Mops/s", inp_mops);
  print_row("cow cap/1kSMO", cow_cap, "%14.1f");
  print_row("inpl cap/1kSMO", inp_cap, "%14.1f");
  print_row("inpl fallbacks", inp_fb, "%14.0f");
  print_note("COW installs have a one-line write set: capacity aborts vanish");
  print_note("and no SMO ever serializes on the fallback lock");
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv);
  print_sweep(opt.hot_keys);
  export_stats(opt, "ablation_smo");
  return 0;
}
