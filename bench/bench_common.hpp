// Shared infrastructure for the paper-reproduction benchmark binaries.
//
// Every bench prints the series/rows of one table or figure from the paper.
// Defaults are sized to finish in tens of seconds on a small machine; pass
// --paper for the paper's full parameters (16M warm keys, 5 s per op).
//
// Common flags:
//   --paper            paper-scale parameters
//   --warm=N           warm-up key count
//   --seconds=S        measure duration per op
//   --write-ns=N       NVM write latency to inject (default 140, the paper's
//                      NVDIMM write latency; 0 = DRAM-speed)
//   --seed=N           workload seed
//   --stats-json=FILE  after the run, write the obs registry snapshot
//                      (persist/HTM/epoch/pool/structural counters) as JSON
//                      to FILE ("-" = stdout); see src/obs/export.hpp for
//                      the document shape
//   --trace=N          keep a per-thread flight-recorder ring of the last N
//                      operations; included under "trace" in the JSON dump
//   --sample-ms=N      background time-series sampler: snapshot the metrics
//                      registry every N ms; windowed rates exported under
//                      "timeseries" in the JSON dump (src/obs/sampler.hpp)
//   --perfetto=FILE    write the flight-recorder ring as a chrome://tracing
//                      / ui.perfetto.dev JSON timeline to FILE at exit;
//                      implies a default --trace=4096 if --trace is absent
//   --heatmap-buckets=N  arm the contention heatmap with N key-range buckets
//                      (power of two in [2, 4096]); aborts/fallbacks are
//                      attributed by key range and exported under "heatmap"
//                      in the JSON dump (src/obs/heatmap.hpp)
//   --heatmap-mode=M   heatmap bucketing: "key" (default, key-range buckets)
//                      or "leaf" (hash of the op's resolved leaf address)
//   --shards=N         shard count for the sharded panels (power of two in
//                      [1, 16]); benches without a sharded mode ignore it
//   --batch=K          group-persistency batch size: modifies per trailing
//                      fence in the sharded/batched segments (default 1,
//                      i.e. eager per-op fences)
//
// Either telemetry flag also arms per-op phase attribution
// (obs::set_phase_timing), populating the lat.phase.* histograms.
//
// Unknown flags are rejected with a usage message (exit 2) so typos cannot
// silently run a bench with default parameters.
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/timing.hpp"
#include "htm/stripe_table.hpp"
#include "nvm/persist.hpp"
#include "nvm/pool.hpp"
#include "obs/buildinfo.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/export.hpp"
#include "obs/heatmap.hpp"
#include "obs/phase.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "workload/ycsb.hpp"

namespace rnt::bench {

struct BenchOptions {
  std::uint64_t warm = 200'000;
  /// Request-distribution key space for the simulated contention figures
  /// (8, 9, 10).  Calibrated so the simulator's hot-leaf pressure matches
  /// the per-op latencies the paper reports in Fig 9 — ideal YCSB-Zipf over
  /// the full 16M keys produces far less concentration than the paper's
  /// measured contention implies (see EXPERIMENTS.md).
  std::uint64_t hot_keys = 20'000;
  double seconds = 0.5;
  double remove_seconds = 0.1;
  std::uint32_t write_ns = 140;
  std::uint32_t per_line_ns = 2;
  std::uint64_t seed = 42;
  bool paper = false;
  std::string stats_json;        ///< --stats-json=FILE ("" = no export)
  std::uint64_t trace_events = 0;  ///< --trace=N per-thread ring capacity
  bool trace_in_json = false;    ///< explicit --trace: include "trace" in JSON
  std::uint32_t sample_ms = 0;   ///< --sample-ms=N sampler interval (0 = off)
  std::string perfetto;          ///< --perfetto=FILE ("" = no timeline export)
  std::uint32_t heatmap_buckets = 0;  ///< --heatmap-buckets=N (0 = heatmap off)
  bool heatmap_by_leaf = false;  ///< --heatmap-mode=leaf
  /// --shards=N shard count for the sharded panels/segments (power of two in
  /// [1, PmemPool::kNumRoots]); 1 = unsharded.
  std::uint32_t shards = 1;
  /// --batch=K group-persistency batch size (modifies per trailing fence);
  /// 1 = eager persists (the paper's Table-1 profile).
  std::uint32_t batch = 1;
  /// --stripes=N fallback-lock stripes for benches with a striping panel
  /// (power of two in [1, 4096]); 0 = bench/tree default.
  std::uint32_t stripes = 0;
  /// --recovery-workers=N parallel-recovery workers for the fig7 panels;
  /// 0 = tree default (auto).
  std::uint32_t recovery_workers = 0;

  static void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [flags]\n"
                 "  --paper            paper-scale parameters\n"
                 "  --warm=N           warm-up key count\n"
                 "  --hot-keys=N       request-distribution key space\n"
                 "  --seconds=S        measure duration per op\n"
                 "  --write-ns=N       injected NVM write latency (ns)\n"
                 "  --seed=N           workload seed\n"
                 "  --stats-json=FILE  write metrics snapshot as JSON (\"-\" = stdout)\n"
                 "  --trace=N          per-thread flight-recorder ring of N events\n"
                 "  --sample-ms=N      time-series sampler interval (JSON \"timeseries\")\n"
                 "  --perfetto=FILE    write chrome://tracing timeline JSON to FILE\n"
                 "  --heatmap-buckets=N  contention heatmap with N key-range buckets\n"
                 "                     (power of two, %u-%u); JSON \"heatmap\" section\n"
                 "  --heatmap-mode=M   heatmap bucketing: key (default) or leaf\n"
                 "  --shards=N         shard count (power of two, 1-%d)\n"
                 "  --batch=K          group-persistency batch size (modifies per fence)\n"
                 "  --stripes=N        fallback-lock stripes (power of two, %u-%u)\n"
                 "  --recovery-workers=N  parallel-recovery workers (fig7 panels)\n",
                 argv0, obs::kHeatmapMinBuckets, obs::kHeatmapMaxBuckets,
                 nvm::PmemPool::kNumRoots, htm::kMinFallbackStripes,
                 htm::kMaxFallbackStripes);
  }

  /// Strict positive-integer flag value: the whole string must be digits and
  /// the result nonzero, so "--sample-ms=0", "--sample-ms=-5" and
  /// "--sample-ms=5x" are all rejected instead of silently truncated.
  static bool parse_positive_u32(const char* s, std::uint32_t* out) {
    if (*s == '\0') return false;
    char* end = nullptr;
    const unsigned long v = std::strtoul(s, &end, 10);
    if (*end != '\0' || *s == '-' || v == 0 || v > 0xffffffffUL) return false;
    *out = static_cast<std::uint32_t>(v);
    return true;
  }

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions o;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      auto val = [&](const char* prefix) -> const char* {
        const std::size_t n = std::strlen(prefix);
        return a.compare(0, n, prefix) == 0 ? a.c_str() + n : nullptr;
      };
      if (a == "--paper") {
        o.paper = true;
        o.warm = 16'000'000;
        o.seconds = 5.0;
      } else if (const char* v = val("--warm=")) {
        o.warm = std::strtoull(v, nullptr, 10);
      } else if (const char* v = val("--hot-keys=")) {
        o.hot_keys = std::strtoull(v, nullptr, 10);
      } else if (const char* v = val("--seconds=")) {
        o.seconds = std::strtod(v, nullptr);
      } else if (const char* v = val("--write-ns=")) {
        o.write_ns = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
      } else if (const char* v = val("--seed=")) {
        o.seed = std::strtoull(v, nullptr, 10);
      } else if (const char* v = val("--stats-json=")) {
        o.stats_json = v;
      } else if (const char* v = val("--trace=")) {
        o.trace_events = std::strtoull(v, nullptr, 10);
        o.trace_in_json = o.trace_events != 0;
      } else if (const char* v = val("--sample-ms=")) {
        if (!parse_positive_u32(v, &o.sample_ms)) {
          std::fprintf(stderr,
                       "%s: --sample-ms wants a positive integer, got '%s'\n",
                       argv[0], v);
          usage(argv[0]);
          std::exit(2);
        }
      } else if (const char* v = val("--perfetto=")) {
        o.perfetto = v;
      } else if (const char* v = val("--heatmap-buckets=")) {
        if (!parse_positive_u32(v, &o.heatmap_buckets) ||
            !obs::heatmap_valid_buckets(o.heatmap_buckets)) {
          std::fprintf(stderr,
                       "%s: --heatmap-buckets wants a power of two in [%u, %u],"
                       " got '%s'\n",
                       argv[0], obs::kHeatmapMinBuckets, obs::kHeatmapMaxBuckets,
                       v);
          usage(argv[0]);
          std::exit(2);
        }
      } else if (const char* v = val("--shards=")) {
        if (!parse_positive_u32(v, &o.shards) ||
            o.shards > static_cast<std::uint32_t>(nvm::PmemPool::kNumRoots) ||
            (o.shards & (o.shards - 1)) != 0) {
          std::fprintf(stderr,
                       "%s: --shards wants a power of two in [1, %d], got '%s'\n",
                       argv[0], nvm::PmemPool::kNumRoots, v);
          usage(argv[0]);
          std::exit(2);
        }
      } else if (const char* v = val("--batch=")) {
        if (!parse_positive_u32(v, &o.batch)) {
          std::fprintf(stderr,
                       "%s: --batch wants a positive integer, got '%s'\n",
                       argv[0], v);
          usage(argv[0]);
          std::exit(2);
        }
      } else if (const char* v = val("--stripes=")) {
        if (!parse_positive_u32(v, &o.stripes) ||
            !htm::stripe_valid_count(o.stripes)) {
          std::fprintf(stderr,
                       "%s: --stripes wants a power of two in [%u, %u], "
                       "got '%s'\n",
                       argv[0], htm::kMinFallbackStripes,
                       htm::kMaxFallbackStripes, v);
          usage(argv[0]);
          std::exit(2);
        }
      } else if (const char* v = val("--recovery-workers=")) {
        if (!parse_positive_u32(v, &o.recovery_workers)) {
          std::fprintf(stderr,
                       "%s: --recovery-workers wants a positive integer, "
                       "got '%s'\n",
                       argv[0], v);
          usage(argv[0]);
          std::exit(2);
        }
      } else if (const char* v = val("--heatmap-mode=")) {
        if (std::strcmp(v, "leaf") == 0) {
          o.heatmap_by_leaf = true;
        } else if (std::strcmp(v, "key") == 0) {
          o.heatmap_by_leaf = false;
        } else {
          std::fprintf(stderr,
                       "%s: --heatmap-mode wants 'key' or 'leaf', got '%s'\n",
                       argv[0], v);
          usage(argv[0]);
          std::exit(2);
        }
      } else if (a == "--help" || a == "-h") {
        usage(argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], a.c_str());
        usage(argv[0]);
        std::exit(2);
      }
    }
    if (!o.perfetto.empty() && o.trace_events == 0)
      o.trace_events = 4096;  // a timeline needs events to draw
    if (o.trace_events != 0) obs::set_trace_capacity(o.trace_events);
    if (o.sample_ms != 0 || !o.perfetto.empty()) obs::set_phase_timing(true);
    if (o.sample_ms != 0)
      obs::sampler().start({.interval_ms = o.sample_ms, .capacity = 600});
    if (o.heatmap_buckets != 0) {
      // Benches that know their key space (fig 8-10) reconfigure with it
      // before the run; this default covers the full 64-bit key domain.
      obs::heatmap_configure({.buckets = o.heatmap_buckets,
                              .by_leaf = o.heatmap_by_leaf,
                              .key_space = 0,
                              .decay_half_life_s = 0.0});
      obs::set_heatmap_enabled(true);
    }
    return o;
  }

  void apply_nvm_config() const {
    nvm::config().write_latency_ns = write_ns;
    nvm::config().per_line_ns = per_line_ns;
  }

  /// Pool size comfortably holding `warm` keys for the fattest leaf design.
  std::size_t pool_size(double growth_factor = 2.0) const {
    const std::size_t bytes =
        static_cast<std::size_t>(static_cast<double>(warm) * 80.0 * growth_factor);
    return std::max<std::size_t>(bytes, std::size_t{64} << 20);
  }
};

/// Honour the telemetry export flags: stop the sampler (so its final window
/// covers the run's tail), write the --perfetto timeline, then the
/// --stats-json registry snapshot (plus trace rings when --trace is on and
/// the "timeseries" section when --sample-ms was given) tagged with build
/// provenance and the bench's parameters.  Every bench main calls this once
/// on its way out.
inline void export_stats(const BenchOptions& o, const std::string& bench_name,
                         const std::vector<obs::MetaField>& extra_meta = {}) {
  if (o.sample_ms != 0) obs::sampler().stop();
  if (!o.perfetto.empty()) obs::write_chrome_trace(o.perfetto);
  if (o.stats_json.empty()) return;
  std::vector<obs::MetaField> meta = obs::standard_meta();
  const std::vector<obs::MetaField> bench_meta = {
      {"bench", bench_name, false},
      {"warm", std::to_string(o.warm), true},
      {"hot_keys", std::to_string(o.hot_keys), true},
      {"seconds", std::to_string(o.seconds), true},
      {"write_ns", std::to_string(o.write_ns), true},
      {"seed", std::to_string(o.seed), true},
      {"paper", o.paper ? "true" : "false", true},
  };
  meta.insert(meta.end(), bench_meta.begin(), bench_meta.end());
  if (o.heatmap_buckets != 0) {
    meta.push_back({"heatmap_buckets", std::to_string(o.heatmap_buckets), true});
    meta.push_back({"heatmap_mode", o.heatmap_by_leaf ? "leaf" : "key", false});
  }
  if (o.shards != 1) meta.push_back({"shards", std::to_string(o.shards), true});
  if (o.batch != 1) meta.push_back({"batch", std::to_string(o.batch), true});
  if (o.stripes != 0)
    meta.push_back({"stripes", std::to_string(o.stripes), true});
  if (o.recovery_workers != 0)
    meta.push_back(
        {"recovery_workers", std::to_string(o.recovery_workers), true});
  meta.insert(meta.end(), extra_meta.begin(), extra_meta.end());
  obs::write_json_snapshot(o.stats_json, meta, o.trace_in_json,
                           o.sample_ms != 0);
}

/// Bijective key scrambler: warm keys are mix64(0..warm-1); fresh insert
/// keys continue at mix64(warm + j).  Distinct, uniformly spread.
inline std::uint64_t nth_key(std::uint64_t i) { return mix64(i); }

/// Closed-loop single-thread measurement: run `op(i)` until the deadline,
/// return executed ops per second.  `op` receives a sequence number.
template <typename Fn>
double measure_rate(double seconds, Fn&& op) {
  const std::uint64_t deadline =
      now_ns() + static_cast<std::uint64_t>(seconds * 1e9);
  std::uint64_t ops = 0;
  const std::uint64_t t0 = now_ns();
  for (;;) {
    for (int i = 0; i < 64; ++i) {
      op(ops);
      ++ops;
    }
    if (now_ns() >= deadline) break;
  }
  const double elapsed = static_cast<double>(now_ns() - t0) * 1e-9;
  return static_cast<double>(ops) / elapsed;
}

/// Execute one workload::Op from an OpStream against @p tree, mapping stream
/// keys through nth_key and drawing insert keys from @p fresh (so conditional
/// inserts succeed every time, as the figure benches require).  kScan uses the
/// caller-provided buffer to avoid per-op allocation, and falls back to a
/// point find on trees without a scan_n (keeps mixed loops uniform across the
/// zoo).  This is the one mix dispatcher all benches share, so adding an op
/// type to MixSpec reaches every mixed loop.
template <typename Tree>
void execute_op(Tree& tree, const workload::Op& op, std::uint64_t* fresh,
                std::vector<std::pair<std::uint64_t, std::uint64_t>>& scan_buf) {
  switch (op.type) {
    case workload::OpType::kFind:
      (void)tree.find(nth_key(op.key));
      break;
    case workload::OpType::kInsert:
      (void)tree.insert(nth_key((*fresh)++), 1);
      break;
    case workload::OpType::kUpdate:
      (void)tree.update(nth_key(op.key), op.key);
      break;
    case workload::OpType::kRemove:
      (void)tree.remove(nth_key(op.key));
      break;
    case workload::OpType::kScan:
      if constexpr (requires {
                      tree.scan_n(std::uint64_t{}, std::size_t{}, scan_buf);
                    }) {
        (void)tree.scan_n(nth_key(op.key), op.scan_n, scan_buf);
      } else {
        (void)tree.find(nth_key(op.key));
      }
      break;
  }
}

// --- table printing -------------------------------------------------------

inline void print_header(const std::string& title,
                         const std::vector<std::string>& cols) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-14s", "");
  for (const auto& c : cols) std::printf("%14s", c.c_str());
  std::printf("\n");
}

inline void print_row(const std::string& name, const std::vector<double>& vals,
                      const char* fmt = "%14.3f") {
  std::printf("%-14s", name.c_str());
  for (double v : vals) std::printf(fmt, v);
  std::printf("\n");
}

inline void print_note(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::printf("  # ");
  std::vprintf(fmt, args);
  std::printf("\n");
  va_end(args);
}

}  // namespace rnt::bench
