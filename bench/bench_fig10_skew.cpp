// Figure 10: YCSB-A throughput at 8 threads as contention grows with the
// Zipfian coefficient (0.5 .. 0.99).  Paper shape: FPTree's throughput
// drops sharply past theta ~0.7; RNTree is far less sensitive and ends up
// to 2.3x faster.
#include "bench_common.hpp"
#include "sim/models.hpp"

int main(int argc, char** argv) {
  using namespace rnt::bench;
  using namespace rnt::sim;
  BenchOptions opt = BenchOptions::parse(argc, argv);

  const std::uint64_t keys = opt.paper ? 16'000'000 : opt.hot_keys;

  // --heatmap-buckets: narrow the bucketing to this bench's key space and
  // script a conflict storm on the Zipfian's rank-0 (hottest) key, so the
  // heatmap's top bucket is known a priori — the smoke test asserts that
  // "heatmap_expected_bucket" ranks first by conflict-abort count.
  std::uint64_t inject_key = 0;
  if (opt.heatmap_buckets != 0) {
    rnt::obs::heatmap_configure({.buckets = opt.heatmap_buckets,
                                 .by_leaf = opt.heatmap_by_leaf,
                                 .key_space = keys,
                                 .decay_half_life_s = 0.0});
    inject_key = rnt::mix64(0) % keys;  // ScrambledZipfian's hottest item
  }

  const double thetas[] = {0.5, 0.6, 0.7, 0.8, 0.9, 0.99};
  print_header("Figure 10: YCSB-A @8 threads (Mops/s) vs Zipfian coefficient",
               {"0.5", "0.6", "0.7", "0.8", "0.9", "0.99"});

  const TreeModel models[] = {TreeModel::kRNTree, TreeModel::kRNTreeDS,
                              TreeModel::kFPTree};
  const char* names[] = {"RNTree", "RNTree+DS", "FPTree"};
  std::vector<std::vector<double>> rows;
  for (int m = 0; m < 3; ++m) {
    std::vector<double> row;
    for (const double theta : thetas) {
      SimConfig cfg;
      cfg.model = models[m];
      cfg.threads = 8;
      cfg.zipf_theta = theta;
      cfg.update_pct = 50;
      cfg.keys = keys;
      cfg.horizon_ns = opt.paper ? 200'000'000 : 50'000'000;
      if (opt.heatmap_buckets != 0)
        cfg.inject = {.enabled = true, .key = inject_key, .aborts = 3};
      row.push_back(run_simulation(cfg).mops);
    }
    print_row(names[m], row);
    rows.push_back(std::move(row));
  }
  const std::size_t last = sizeof(thetas) / sizeof(thetas[0]) - 1;
  print_note("RNTree/FPTree at theta=0.99: %.2fx (paper: up to 2.3x)",
             rows[0][last] / rows[2][last]);
  print_note("paper shape: FPTree drops sharply past 0.7; RNTree insensitive");
  std::vector<rnt::obs::MetaField> extra;
  if (opt.heatmap_buckets != 0) {
    extra.push_back({"heatmap_inject_key", std::to_string(inject_key), true});
    extra.push_back(
        {"heatmap_expected_bucket",
         std::to_string(rnt::obs::heatmap_bucket_of(inject_key)), true});
  }
  export_stats(opt, "fig10_skew", extra);
  return 0;
}
