// Figure 4: single-thread throughput of find / insert / update / remove and
// the 25%-each mixed benchmark, across all six tree configurations.
//
// Paper setup: 16M warm KVs, 64-entry leaves (7 for wB+tree-SO), 5 s per
// operation (100 ms for remove), NVDIMM latencies.  Expected shape:
//   * find:   RNTree and wB+tree best (sorted leaves, binary search);
//             NVTree/FPTree pay linear scans; wB+tree-SO pays tree depth
//   * insert: order follows persistent-instruction counts (2/4/3/2);
//             wB+tree-SO worst (constant splitting)
//   * remove: FPTree best (1 persist on an 8-byte bitmap)
//   * mixed:  RNTree 25%-44% faster than the others
#include "obs/struct_audit.hpp"
#include "tree_zoo.hpp"
#include "workload/ycsb.hpp"

namespace rnt::bench {
namespace {

struct Fig4Runner {
  const BenchOptions& opt;
  std::vector<std::string>& names;
  std::vector<std::vector<double>>& rows;  // [tree][op] in Mops/s

  template <typename Factory>
  void operator()() const {
    nvm::PmemPool pool(opt.pool_size());
    auto tree = Factory::make(pool);
    warm_tree(*tree, opt.warm);

    Xoshiro256 rng(opt.seed);
    std::uint64_t fresh = opt.warm;
    std::vector<double> row;

    // find
    row.push_back(measure_rate(opt.seconds, [&](std::uint64_t) {
                    (void)tree->find(nth_key(rng.next_below(opt.warm)));
                  }) /
                  1e6);
    // update
    row.push_back(measure_rate(opt.seconds, [&](std::uint64_t) {
                    (void)tree->update(nth_key(rng.next_below(opt.warm)),
                                       rng.next());
                  }) /
                  1e6);
    // insert (fresh keys so conditional trees succeed every time)
    row.push_back(measure_rate(opt.seconds, [&](std::uint64_t) {
                    (void)tree->insert(nth_key(fresh++), 1);
                  }) /
                  1e6);
    // remove (short run so the tree is not emptied)
    row.push_back(measure_rate(opt.remove_seconds, [&](std::uint64_t) {
                    (void)tree->remove(nth_key(rng.next_below(opt.warm)));
                  }) /
                  1e6);
    // mixed: 25% each; inserts draw fresh keys
    workload::OpStream mix(workload::MixSpec::mixed_25(),
                           workload::KeyDist::kUniform, opt.warm, 0.0, opt.seed);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> scan_buf;
    row.push_back(measure_rate(opt.seconds, [&](std::uint64_t) {
                    execute_op(*tree, mix.next(), &fresh, scan_buf);
                  }) /
                  1e6);
    // Structural audit of the worked-over tree (trees exposing the
    // introspection walkers only, i.e. RNTree); the latest audited tree's
    // report lands under "structure" in --stats-json.
    if constexpr (requires { tree->visit_leaves([](int, std::uint32_t) {}); }) {
      obs::StructureReport rep = obs::audit_tree(*tree, pool);
      rep.tree = Factory::kName;
      obs::set_structure_section(obs::structure_json(rep));
    }

    names.push_back(Factory::kName);
    rows.push_back(std::move(row));
  }
};

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  using namespace rnt::bench;
  BenchOptions opt = BenchOptions::parse(argc, argv);
  opt.apply_nvm_config();

  std::vector<std::string> names;
  std::vector<std::vector<double>> rows;
  Fig4Runner runner{opt, names, rows};
  // Fig 4 compares the five designs; NVTree runs in its basic
  // (non-conditional) mode here — Fig 5 covers the conditional variant.
  runner.operator()<MakeRNTree>();
  runner.operator()<MakeRNTreeDS>();
  runner.operator()<MakeNVTree>();
  runner.operator()<MakeWBTree>();
  runner.operator()<MakeWBTreeSO>();
  runner.operator()<MakeFPTree>();

  print_header("Figure 4: single-thread throughput (Mops/s)",
               {"find", "update", "insert", "remove", "mixed"});
  for (std::size_t i = 0; i < names.size(); ++i) print_row(names[i], rows[i]);
  print_note("warm=%llu keys, %.1fs/op, NVM write latency %u ns",
             static_cast<unsigned long long>(opt.warm), opt.seconds,
             rnt::nvm::config().write_latency_ns);
  print_note("paper shape: RNTree best-or-tied on find/insert/update; FPTree");
  print_note("wins remove (1 persist); RNTree 25%%-44%% faster on mixed");
  export_stats(opt, "fig4_single_thread");
  return 0;
}
