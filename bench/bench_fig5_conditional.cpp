// Figure 5: the cost of conditional write (unique-key semantics).
//
// NVTree must scan the whole unsorted leaf before every modify to check key
// existence — the paper measures ~19% slowdown.  RNTree's slot-array binary
// search gives conditional semantics for free (the search happens anyway).
#include "tree_zoo.hpp"

int main(int argc, char** argv) {
  using namespace rnt::bench;
  BenchOptions opt = BenchOptions::parse(argc, argv);
  opt.apply_nvm_config();

  auto run_updates = [&](auto& tree) {
    rnt::Xoshiro256 rng(opt.seed);
    return measure_rate(opt.seconds, [&](std::uint64_t) {
      const std::uint64_t k = nth_key(rng.next_below(opt.warm));
      tree.upsert(k, k);
    }) / 1e6;
  };
  auto run_cond_updates = [&](auto& tree) {
    rnt::Xoshiro256 rng(opt.seed);
    return measure_rate(opt.seconds, [&](std::uint64_t) {
      const std::uint64_t k = nth_key(rng.next_below(opt.warm));
      (void)tree.update(k, k);
    }) / 1e6;
  };

  double nv_basic, nv_cond, rn_basic, rn_cond;
  {
    rnt::nvm::PmemPool pool(opt.pool_size());
    auto t = MakeNVTree::make(pool);
    warm_tree(*t, opt.warm);
    nv_basic = run_updates(*t);
  }
  {
    rnt::nvm::PmemPool pool(opt.pool_size());
    auto t = MakeNVTreeCond::make(pool);
    warm_tree(*t, opt.warm);
    nv_cond = run_cond_updates(*t);
  }
  {
    rnt::nvm::PmemPool pool(opt.pool_size());
    auto t = MakeRNTreeDS::make(pool);
    warm_tree(*t, opt.warm);
    rn_basic = run_updates(*t);   // upsert: unconditional semantics
    rn_cond = run_cond_updates(*t);  // update: conditional semantics
  }

  print_header("Figure 5: conditional-write overhead (modify Mops/s)",
               {"basic", "conditional", "overhead%"});
  print_row("NVTree", {nv_basic, nv_cond, (nv_basic - nv_cond) / nv_basic * 100});
  print_row("RNTree", {rn_basic, rn_cond, (rn_basic - rn_cond) / rn_basic * 100});
  print_note("paper shape: ~19%% slowdown for NVTree, ~0%% for RNTree");
  export_stats(opt, "fig5_conditional");
  return 0;
}
