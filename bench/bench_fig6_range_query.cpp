// Figure 6: range-query throughput for different numbers of KVs per query.
//
// Sorted leaves (RNTree, wB+tree) stream entries in order; unsorted designs
// (NVTree, FPTree) must materialise and std::sort every visited leaf — the
// paper measures RNTree ~4.2x faster across query sizes.
#include "tree_zoo.hpp"

namespace rnt::bench {
namespace {

const std::uint32_t kScanSizes[] = {10, 50, 100, 500, 1000};

struct Fig6Runner {
  const BenchOptions& opt;
  std::vector<std::string>& names;
  std::vector<std::vector<double>>& rows;  // Kops/s per scan size

  template <typename Factory>
  void operator()() const {
    nvm::PmemPool pool(opt.pool_size());
    auto tree = Factory::make(pool);
    warm_tree(*tree, opt.warm);
    std::vector<double> row;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    for (const std::uint32_t n : kScanSizes) {
      Xoshiro256 rng(opt.seed);
      row.push_back(measure_rate(opt.seconds, [&](std::uint64_t) {
                      tree->scan_n(nth_key(rng.next_below(opt.warm)), n, out);
                    }) /
                    1e3);
    }
    names.push_back(Factory::kName);
    rows.push_back(std::move(row));
  }
};

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  using namespace rnt::bench;
  BenchOptions opt = BenchOptions::parse(argc, argv);
  opt.apply_nvm_config();

  std::vector<std::string> names;
  std::vector<std::vector<double>> rows;
  Fig6Runner runner{opt, names, rows};
  runner.operator()<MakeRNTreeDS>();
  runner.operator()<MakeNVTree>();
  runner.operator()<MakeWBTree>();
  runner.operator()<MakeFPTree>();

  print_header("Figure 6: range query throughput (Kops/s) vs KVs per query",
               {"10", "50", "100", "500", "1000"});
  for (std::size_t i = 0; i < names.size(); ++i) print_row(names[i], rows[i]);
  if (!rows.empty() && rows[0].size() >= 3) {
    const double speedup_nv = rows[0][2] / rows[1][2];
    const double speedup_fp = rows[0][2] / rows[3][2];
    print_note("RNTree speedup @100 KVs: %.1fx over NVTree, %.1fx over FPTree",
               speedup_nv, speedup_fp);
  }
  print_note("paper shape: RNTree ~4.2x over NVTree/FPTree (they sort leaves)");
  export_stats(opt, "fig6_range_query");
  return 0;
}
