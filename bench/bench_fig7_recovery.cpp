// Figure 7: RNTree recovery time vs tree size.
//
// Reconstruction (clean shutdown): rebuild internal nodes by walking the
// persisted leaf chain, trusting the persisted header counters.
// Crash recovery: additionally process undo slots and recompute nlogs/plogs
// by scanning each leaf's slot array.  The paper measures crash recovery
// ~60% slower, both linear in tree size.
#include "tree_zoo.hpp"

int main(int argc, char** argv) {
  using namespace rnt::bench;
  BenchOptions opt = BenchOptions::parse(argc, argv);
  opt.apply_nvm_config();

  std::vector<std::uint64_t> sizes;
  if (opt.paper) {
    sizes = {1'000'000, 4'000'000, 8'000'000, 16'000'000};
  } else {
    const std::uint64_t base = std::max<std::uint64_t>(opt.warm, 100'000);
    sizes = {base / 4, base / 2, base, base * 2};
  }

  print_header("Figure 7: RNTree recovery time (ms) vs tree size",
               {"keys", "reconstruct", "crash-rec", "ratio"});
  for (const std::uint64_t n : sizes) {
    rnt::nvm::PmemPool pool(BenchOptions{.warm = n}.pool_size());
    double reconstruct_ms, crash_ms;
    {
      RN tree(pool, RN::Options{.dual_slot = true});
      warm_tree(tree, n);
      tree.close();  // clean shutdown
    }
    {
      pool.reopen_volatile();
      rnt::ScopeTimer t;
      RN tree(RN::recover_t{}, pool, RN::Options{.dual_slot = true});
      reconstruct_ms = t.elapsed_s() * 1e3;
      // The recovered tree is live again but we do NOT close it: the pool is
      // dirty, so the next open takes the crash path.
    }
    {
      pool.reopen_volatile();
      rnt::ScopeTimer t;
      RN tree(RN::recover_t{}, pool, RN::Options{.dual_slot = true});
      crash_ms = t.elapsed_s() * 1e3;
    }
    print_row(std::to_string(n),
              {static_cast<double>(n), reconstruct_ms, crash_ms,
               crash_ms / reconstruct_ms});
  }
  print_note("paper shape: both linear in size; crash recovery ~1.6x slower");
  export_stats(opt, "fig7_recovery");
  return 0;
}
