// Figure 7: RNTree recovery time vs tree size, plus the parallel-recovery
// extension (robustness tentpole, DESIGN.md §9).
//
// Panel 1 — reconstruction (clean shutdown) rebuilds internal nodes by
// walking the persisted leaf chain, trusting the persisted header counters;
// crash recovery additionally processes undo slots and recomputes
// nlogs/plogs by scanning each leaf's slot array.  The paper measures crash
// recovery ~60% slower, both linear in tree size.
//
// Panel 2 — crash recovery with the per-leaf rebuild partitioned over
// recovery workers (64-leaf blocks off a shared cursor, deterministic
// merge).  Wall-clock speedup is bounded by the host's core count — a
// 1-core CI container shows ~1x regardless of the implementation — so the
// measured serial/parallel times are evidence, and the machine-checked
// >= 2.5x claim lives in panel 3.
//
// Panel 3 — deterministic DES of the same block-claiming partition
// (virtual time, like Figures 8-10): the serial chain walk and merge
// bracket a repair phase whose blocks workers claim off one cursor, so the
// model captures both Amdahl's bound and 64-leaf-granularity imbalance.
// Per-leaf costs approximate the real phases (repair is dominated by the
// fingerprint rebuild + transient-slot copy; walk is a dependent pointer
// chase; merge appends one separator).  meta.recovery_sim_speedup is what
// tools/bench_smoke.py --recovery-parallel asserts >= 2.5.
#include "obs/struct_audit.hpp"
#include "sim/simulator.hpp"
#include "tree_zoo.hpp"

namespace {

using namespace rnt;
using namespace rnt::bench;

// Per-leaf virtual costs for the DES recovery model (ns).  Block size
// mirrors RNTree's 64-leaf recovery blocks.
constexpr std::uint64_t kWalkNs = 120;     // serial chain chase, one miss/leaf
constexpr std::uint64_t kRepairNs = 1800;  // fp rebuild + tslot copy + checks
constexpr std::uint64_t kMergeNs = 80;     // separator append + bulk-load step
constexpr std::size_t kSimBlock = 64;

sim::Task rec_worker(sim::Scheduler& s, std::size_t& next_block,
                     std::size_t n_leaves, sim::SimTime& finish) {
  for (;;) {
    const std::size_t lo = next_block * kSimBlock;
    if (lo >= n_leaves) break;
    ++next_block;  // single-threaded DES: claim+advance is atomic
    const std::size_t take = std::min(kSimBlock, n_leaves - lo);
    co_await sim::Delay{s, kRepairNs * static_cast<sim::SimTime>(take)};
  }
  finish = std::max(finish, s.now());
}

/// Virtual crash-recovery time (ms) for @p n_leaves with @p workers.
double sim_recover_ms(std::size_t n_leaves, unsigned workers) {
  sim::Scheduler s;
  std::size_t next_block = 0;
  sim::SimTime finish = 0;
  for (unsigned w = 0; w < workers; ++w)
    s.spawn(rec_worker(s, next_block, n_leaves, finish));
  s.run_until(~sim::SimTime{0} >> 1);
  const double total_ns =
      static_cast<double>(n_leaves) * (kWalkNs + kMergeNs) +
      static_cast<double>(finish);
  return total_ns * 1e-6;
}

/// One timed crash recovery of the dirty pool with @p workers.
double timed_crash_recover_ms(nvm::PmemPool& pool, int workers) {
  pool.reopen_volatile();
  ScopeTimer t;
  RN tree(RN::recover_t{}, pool,
          RN::Options{.dual_slot = true, .recovery_workers = workers});
  return t.elapsed_s() * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv);
  opt.apply_nvm_config();

  std::vector<std::uint64_t> sizes;
  if (opt.paper) {
    sizes = {1'000'000, 4'000'000, 8'000'000, 16'000'000};
  } else {
    const std::uint64_t base = std::max<std::uint64_t>(opt.warm, 100'000);
    sizes = {base / 4, base / 2, base, base * 2};
  }

  print_header("Figure 7: RNTree recovery time (ms) vs tree size",
               {"keys", "reconstruct", "crash-rec", "ratio"});
  for (const std::uint64_t n : sizes) {
    rnt::nvm::PmemPool pool(BenchOptions{.warm = n}.pool_size());
    double reconstruct_ms, crash_ms;
    {
      RN tree(pool, RN::Options{.dual_slot = true});
      warm_tree(tree, n);
      tree.close();  // clean shutdown
    }
    {
      pool.reopen_volatile();
      rnt::ScopeTimer t;
      RN tree(RN::recover_t{}, pool, RN::Options{.dual_slot = true});
      reconstruct_ms = t.elapsed_s() * 1e3;
      // The recovered tree is live again but we do NOT close it: the pool is
      // dirty, so the next open takes the crash path.
    }
    {
      pool.reopen_volatile();
      rnt::ScopeTimer t;
      RN tree(RN::recover_t{}, pool, RN::Options{.dual_slot = true});
      crash_ms = t.elapsed_s() * 1e3;
    }
    print_row(std::to_string(n),
              {static_cast<double>(n), reconstruct_ms, crash_ms,
               crash_ms / reconstruct_ms});
  }
  print_note("paper shape: both linear in size; crash recovery ~1.6x slower");

  // --- Panel 2: measured serial vs parallel crash recovery ---
  const unsigned par_workers =
      opt.recovery_workers != 0 ? opt.recovery_workers : 8u;
  const std::uint64_t n_par =
      opt.paper ? 1'000'000 : std::max<std::uint64_t>(opt.warm, 100'000);
  double serial_ms, parallel_ms;
  std::size_t n_leaves;
  {
    rnt::nvm::PmemPool pool(BenchOptions{.warm = n_par}.pool_size());
    {
      RN tree(pool, RN::Options{.dual_slot = true});
      warm_tree(tree, n_par);
      tree.close();
    }
    {
      // Clean reconstruct once so the pool is dirty for the timed legs.
      pool.reopen_volatile();
      RN tree(RN::recover_t{}, pool, RN::Options{.dual_slot = true});
      n_leaves = obs::audit_tree(tree).leaf.leaves;
    }
    serial_ms = timed_crash_recover_ms(pool, 1);
    parallel_ms =
        timed_crash_recover_ms(pool, static_cast<int>(par_workers));
  }
  const double measured_speedup =
      parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  print_header("Parallel crash recovery, " + std::to_string(n_par) + " keys",
               {"workers", "crash-rec ms", "speedup"});
  print_row("1", {1.0, serial_ms, 1.0});
  print_row(std::to_string(par_workers),
            {static_cast<double>(par_workers), parallel_ms, measured_speedup});
  print_note("wall-clock speedup is bounded by host cores (1-core CI ~ 1x)");

  // --- Panel 3: DES of the block-claiming partition (virtual time) ---
  print_header("Simulated crash recovery (virtual ms), 64-leaf blocks",
               {"keys", "serial", "parallel", "speedup"});
  double sim_speedup = 0.0;
  for (const std::uint64_t keys :
       std::vector<std::uint64_t>{n_par, 10 * n_par}) {
    // ~24 keys per leaf after random-order splits (cap 48, half-full avg).
    const std::size_t leaves = std::max<std::size_t>(keys / 24, 1);
    const double s1 = sim_recover_ms(leaves, 1);
    const double sp = sim_recover_ms(leaves, par_workers);
    const double sp_ratio = sp > 0.0 ? s1 / sp : 0.0;
    if (keys == n_par) sim_speedup = sp_ratio;
    print_row(std::to_string(keys),
              {static_cast<double>(keys), s1, sp, sp_ratio});
  }
  print_note("serial walk + merge bracket the parallel repair (Amdahl)");

  auto num = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f", v);
    return std::string(buf);
  };
  export_stats(opt, "fig7_recovery",
               {{"recovery_serial_ms", num(serial_ms), true},
                {"recovery_parallel_ms", num(parallel_ms), true},
                {"recovery_speedup", num(measured_speedup), true},
                {"recovery_par_workers", std::to_string(par_workers), true},
                {"recovery_leaves", std::to_string(n_leaves), true},
                {"recovery_sim_speedup", num(sim_speedup), true}});
  return 0;
}
