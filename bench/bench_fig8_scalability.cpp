// Figure 8: throughput vs thread count (simulated multicore; see DESIGN.md
// for why the scalability experiments run on the DES substrate).
//
//   (a) YCSB-A, uniform keys      — every tree scales near-linearly
//   (b) YCSB-A, Zipfian theta=0.8 — FPTree stops scaling after a few
//       threads; RNTree ~1.8x ahead at 24 threads
//   (c) 90% read / 10% update, Zipfian 0.8 — RNTree+DS near-linear
//
// Beyond the paper: a sharded panel (--shards=N --batch=K) extends the DES
// sweep to 16-256 simulated cores with per-shard fallback locks and group
// persistency, and a real single-thread ShardedTree segment measures
// fences-per-op at batch 1 vs batch K (exported as gp_* meta fields so the
// amortization claim is machine-checkable).
#include "bench_common.hpp"
#include "obs/struct_audit.hpp"
#include "shard/sharded_tree.hpp"
#include "sim/models.hpp"

namespace {

using namespace rnt::bench;
using namespace rnt::sim;

void run_panel(const char* title, double theta, int update_pct,
               std::uint64_t keys, std::uint64_t horizon) {
  const int thread_counts[] = {1, 2, 4, 8, 12, 16, 20, 24};
  print_header(title, {"1", "2", "4", "8", "12", "16", "20", "24"});
  const TreeModel models[] = {TreeModel::kRNTree, TreeModel::kRNTreeDS,
                              TreeModel::kFPTree};
  const char* names[] = {"RNTree", "RNTree+DS", "FPTree"};
  for (int m = 0; m < 3; ++m) {
    std::vector<double> row;
    for (const int t : thread_counts) {
      SimConfig cfg;
      cfg.model = models[m];
      cfg.threads = t;
      cfg.zipf_theta = theta;
      cfg.update_pct = update_pct;
      cfg.keys = keys;
      cfg.horizon_ns = horizon;
      row.push_back(run_simulation(cfg).mops);
    }
    print_row(names[m], row);
  }
}

// Sharded DES sweep at service-scale core counts.  FPTree's fallback lock is
// per-shard here, so the Zipfian storm that flattens panel (b) stays local;
// the RNTree+DS rows additionally amortize slot fences over --batch.
void run_sharded_panel(const BenchOptions& opt, std::uint64_t keys,
                       std::uint64_t horizon) {
  const int thread_counts[] = {16, 32, 64, 128, 256};
  char title[128];
  std::snprintf(title, sizeof(title),
                "Figure 8(d): sharded DES (shards=%u, batch=%u), Zipfian 0.8",
                opt.shards, opt.batch);
  print_header(title, {"16", "32", "64", "128", "256"});
  const TreeModel models[] = {TreeModel::kRNTreeDS, TreeModel::kFPTree};
  const char* names[] = {"RNTree+DS", "FPTree"};
  for (int m = 0; m < 2; ++m) {
    std::vector<double> row;
    for (const int t : thread_counts) {
      SimConfig cfg;
      cfg.model = models[m];
      cfg.threads = t;
      cfg.zipf_theta = 0.8;
      cfg.update_pct = 50;
      cfg.keys = keys;
      // Shorter horizon: this panel runs up to 256 workers.
      cfg.horizon_ns = horizon / 8;
      cfg.shards = static_cast<int>(opt.shards);
      cfg.batch = static_cast<int>(opt.batch);
      row.push_back(run_simulation(cfg).mops);
    }
    print_row(names[m], row);
  }
}

// Real-implementation segment: one thread, one ShardedTree, measure fences
// per modify with eager persists vs a ModifyBatch of --batch ops.  Table-1
// single-op persist counts are untouched by construction (batch_persist /
// batch_fence are separate counters); this reports the end-to-end fence
// amortization 2 -> 1 + 1/K.
void run_group_persistency_segment(const BenchOptions& opt,
                                   std::vector<rnt::obs::MetaField>& extra) {
  namespace nvm = rnt::nvm;
  namespace obs = rnt::obs;
  using Sharded = rnt::shard::ShardedTree<>;

  nvm::PmemPool pool(std::size_t{64} << 20);
  Sharded::Options topt;
  topt.shards = static_cast<int>(opt.shards);
  Sharded tree(pool, topt);

  const std::uint64_t n = std::min<std::uint64_t>(opt.warm, 20'000);
  for (std::uint64_t i = 0; i < n; ++i) (void)tree.upsert(nth_key(i), i);

  const auto total_fences = [] {
    const nvm::PersistStats& s = nvm::tls_stats();
    return s.fence + s.batch_fence;
  };

  // Eager pass: one update per key, per-op fences (the paper's 2/modify).
  std::uint64_t f0 = total_fences();
  for (std::uint64_t i = 0; i < n; ++i) (void)tree.update(nth_key(i), i + 1);
  const double eager =
      static_cast<double>(total_fences() - f0) / static_cast<double>(n);

  // Batched pass: same updates through a ModifyBatch of --batch ops.
  f0 = total_fences();
  {
    Sharded::ModifyBatch batch(tree, opt.batch);
    for (std::uint64_t i = 0; i < n; ++i) (void)batch.update(nth_key(i), i + 2);
  }
  const double batched =
      static_cast<double>(total_fences() - f0) / static_cast<double>(n);

  print_header("Group persistency (real ShardedTree, 1 thread)",
               {"fences/op"});
  print_row("eager (K=1)", {eager});
  char name[32];
  std::snprintf(name, sizeof(name), "batched (K=%u)", opt.batch);
  print_row(name, {batched});
  print_note("expected: eager ~2.0, batched ~1 + 1/K (+ split/compact noise)");

  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", eager);
  extra.push_back({"gp_fences_per_op_eager", buf, true});
  std::snprintf(buf, sizeof(buf), "%.4f", batched);
  extra.push_back({"gp_fences_per_op_batched", buf, true});
  extra.push_back({"gp_keys", std::to_string(n), true});

  // Per-shard structural audit of the worked-over facade.
  rnt::obs::StructureReport rep = obs::audit_tree(tree, pool);
  rep.tree = "ShardedTree";
  obs::set_structure_section(obs::structure_json(rep));
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv);
  const std::uint64_t keys = opt.paper ? 16'000'000 : opt.hot_keys;
  const std::uint64_t horizon = opt.paper ? 200'000'000 : 50'000'000;

  run_panel("Figure 8(a): YCSB-A uniform - throughput (Mops/s) vs threads",
            0.0, 50, keys, horizon);
  print_note("paper shape: both FPTree and RNTree scale linearly");

  run_panel("Figure 8(b): YCSB-A Zipfian 0.8 - throughput (Mops/s) vs threads",
            0.8, 50, keys, horizon);
  print_note("paper shape: FPTree scales only to ~4 threads; RNTree[+DS]");
  print_note("~1.8x higher than FPTree at 24 threads");

  run_panel(
      "Figure 8(c): skewed read-intensive (90/10) - throughput (Mops/s)",
      0.8, 10, keys, horizon);
  print_note("paper shape: RNTree+DS near-linear; RNTree better than FPTree");

  run_sharded_panel(opt, keys, horizon);
  print_note("per-shard fallback locks keep FPTree's abort storms local;");
  print_note("batch>1 amortizes RNTree slot fences (nvm.batch_* counters)");

  std::vector<rnt::obs::MetaField> extra;
  run_group_persistency_segment(opt, extra);

  export_stats(opt, "fig8_scalability", extra);
  return 0;
}
