// Figure 8: throughput vs thread count (simulated multicore; see DESIGN.md
// for why the scalability experiments run on the DES substrate).
//
//   (a) YCSB-A, uniform keys      — every tree scales near-linearly
//   (b) YCSB-A, Zipfian theta=0.8 — FPTree stops scaling after a few
//       threads; RNTree ~1.8x ahead at 24 threads
//   (c) 90% read / 10% update, Zipfian 0.8 — RNTree+DS near-linear
#include "bench_common.hpp"
#include "sim/models.hpp"

namespace {

using namespace rnt::bench;
using namespace rnt::sim;

void run_panel(const char* title, double theta, int update_pct,
               std::uint64_t keys, std::uint64_t horizon) {
  const int thread_counts[] = {1, 2, 4, 8, 12, 16, 20, 24};
  print_header(title, {"1", "2", "4", "8", "12", "16", "20", "24"});
  const TreeModel models[] = {TreeModel::kRNTree, TreeModel::kRNTreeDS,
                              TreeModel::kFPTree};
  const char* names[] = {"RNTree", "RNTree+DS", "FPTree"};
  for (int m = 0; m < 3; ++m) {
    std::vector<double> row;
    for (const int t : thread_counts) {
      SimConfig cfg;
      cfg.model = models[m];
      cfg.threads = t;
      cfg.zipf_theta = theta;
      cfg.update_pct = update_pct;
      cfg.keys = keys;
      cfg.horizon_ns = horizon;
      row.push_back(run_simulation(cfg).mops);
    }
    print_row(names[m], row);
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions opt = BenchOptions::parse(argc, argv);
  const std::uint64_t keys = opt.paper ? 16'000'000 : opt.hot_keys;
  const std::uint64_t horizon = opt.paper ? 200'000'000 : 50'000'000;

  run_panel("Figure 8(a): YCSB-A uniform - throughput (Mops/s) vs threads",
            0.0, 50, keys, horizon);
  print_note("paper shape: both FPTree and RNTree scale linearly");

  run_panel("Figure 8(b): YCSB-A Zipfian 0.8 - throughput (Mops/s) vs threads",
            0.8, 50, keys, horizon);
  print_note("paper shape: FPTree scales only to ~4 threads; RNTree[+DS]");
  print_note("~1.8x higher than FPTree at 24 threads");

  run_panel(
      "Figure 8(c): skewed read-intensive (90/10) - throughput (Mops/s)",
      0.8, 10, keys, horizon);
  print_note("paper shape: RNTree+DS near-linear; RNTree better than FPTree");
  export_stats(opt, "fig8_scalability");
  return 0;
}
