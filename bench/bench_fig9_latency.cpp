// Figure 9: read/update latency vs offered load.  24 workers submit
// requests at a bounded rate (open loop), 50% read / 50% update, Zipfian 0.8
// with hashed keys — the experiment that exposes the dual slot array:
//
//   paper: FPTree read latency up to ~15 us, update ~5 us under contention;
//          RNTree read ~6 us but update within 2 us;
//          RNTree+DS read below 1 us at a small update-latency cost.
#include "bench_common.hpp"
#include "sim/models.hpp"

int main(int argc, char** argv) {
  using namespace rnt::bench;
  using namespace rnt::sim;
  BenchOptions opt = BenchOptions::parse(argc, argv);

  const TreeModel models[] = {TreeModel::kRNTree, TreeModel::kRNTreeDS,
                              TreeModel::kFPTree};
  const char* names[] = {"RNTree", "RNTree+DS", "FPTree"};
  // Offered load per worker (ops/s), 24 workers; the top rates approach
  // each tree's closed-loop capacity so queueing differentiates them.
  const double rates[] = {100'000, 200'000, 400'000, 600'000, 800'000};

  std::printf("\n=== Figure 9: latency (us) vs offered load ===\n");
  std::printf("24 workers, 50%% read / 50%% update, Zipfian 0.8\n");
  std::printf("%-14s%12s%13s%13s%13s%13s\n", "tree", "rate/worker", "read-p50",
              "read-p99", "upd-p50", "upd-p99");
  for (int m = 0; m < 3; ++m) {
    for (const double rate : rates) {
      SimConfig cfg;
      cfg.model = models[m];
      cfg.threads = 24;
      cfg.zipf_theta = 0.8;
      cfg.update_pct = 50;
      cfg.keys = opt.paper ? 16'000'000 : opt.hot_keys;
      cfg.horizon_ns = opt.paper ? 200'000'000 : 60'000'000;
      cfg.open_rate = rate;
      const SimResult r = run_simulation(cfg);
      std::printf("%-14s%12.0f%13.2f%13.2f%13.2f%13.2f\n", names[m], rate,
                  static_cast<double>(r.read_latency.percentile(0.50)) / 1e3,
                  static_cast<double>(r.read_latency.percentile(0.99)) / 1e3,
                  static_cast<double>(r.update_latency.percentile(0.50)) / 1e3,
                  static_cast<double>(r.update_latency.percentile(0.99)) / 1e3);
    }
  }
  print_note("paper shape: FPTree read ~15us / update ~5us at high load;");
  print_note("RNTree read high (~6us) but update <2us; RNTree+DS read <1us");
  export_stats(opt, "fig9_latency");
  return 0;
}
