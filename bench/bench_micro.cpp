// Micro-benchmarks of the primitive costs everything else builds on:
// persist instructions (with and without injected latency), CAS log
// allocation, seqlock snapshots, version-lock operations, slot-array
// updates, Zipfian generation, and single leaf-level operations per tree.
//
// These numbers calibrate the discrete-event simulator's stage costs (see
// src/sim) and make the injected-latency model auditable.
#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "bench_common.hpp"
#include "common/rng.hpp"
#include "core/rntree.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "core/slot_util.hpp"
#include "htm/rtm.hpp"
#include "htm/seqlock.hpp"
#include "htm/version_lock.hpp"
#include "nvm/persist.hpp"
#include "nvm/pool.hpp"
#include "workload/zipfian.hpp"

namespace {

using namespace rnt;

void BM_PersistOneLine_NoLatency(benchmark::State& state) {
  nvm::config().write_latency_ns = 0;
  nvm::config().per_line_ns = 0;
  alignas(64) char buf[64];
  for (auto _ : state) nvm::persist(buf, 64);
}
BENCHMARK(BM_PersistOneLine_NoLatency);

void BM_PersistOneLine_140ns(benchmark::State& state) {
  nvm::config().write_latency_ns = 140;
  nvm::config().per_line_ns = 2;
  alignas(64) char buf[64];
  for (auto _ : state) nvm::persist(buf, 64);
  nvm::config().write_latency_ns = 0;
}
BENCHMARK(BM_PersistOneLine_140ns);

void BM_PersistWholeLeaf_140ns(benchmark::State& state) {
  nvm::config().write_latency_ns = 140;
  nvm::config().per_line_ns = 2;
  alignas(64) char buf[1216];
  for (auto _ : state) nvm::persist(buf, sizeof(buf));
  nvm::config().write_latency_ns = 0;
}
BENCHMARK(BM_PersistWholeLeaf_140ns);

void BM_CasAllocate(benchmark::State& state) {
  std::atomic<std::uint32_t> nlogs{0};
  for (auto _ : state) {
    std::uint32_t e = nlogs.load(std::memory_order_relaxed);
    nlogs.compare_exchange_weak(e, e + 1, std::memory_order_acq_rel);
    if (nlogs.load(std::memory_order_relaxed) > 1u << 20)
      nlogs.store(0, std::memory_order_relaxed);
  }
}
BENCHMARK(BM_CasAllocate);

void BM_SeqlockSnapshot(benchmark::State& state) {
  htm::SeqCounter seq;
  alignas(64) std::uint8_t slot[64] = {};
  alignas(64) std::uint8_t snap[64];
  for (auto _ : state) {
    const std::uint32_t s = seq.read_begin();
    std::memcpy(snap, slot, 64);
    benchmark::DoNotOptimize(seq.read_validate(s));
    benchmark::DoNotOptimize(snap);
  }
}
BENCHMARK(BM_SeqlockSnapshot);

void BM_VersionLockCycle(benchmark::State& state) {
  htm::VersionLock vl;
  for (auto _ : state) {
    vl.lock();
    vl.unlock();
  }
}
BENCHMARK(BM_VersionLockCycle);

void BM_AtomicExec(benchmark::State& state) {
  htm::SpinLock fb;
  std::uint64_t x = 0;
  for (auto _ : state) {
    htm::atomic_exec(fb, [&] { ++x; });
  }
  benchmark::DoNotOptimize(x);
}
BENCHMARK(BM_AtomicExec);

void BM_SlotInsert(benchmark::State& state) {
  struct E {
    std::uint64_t key, value;
  };
  alignas(64) std::uint8_t slot[64] = {};
  E logs[64];
  for (int i = 0; i < 64; ++i) logs[i] = {static_cast<std::uint64_t>(i) * 2, 0};
  for (auto _ : state) {
    slot[0] = 32;
    for (int i = 0; i < 32; ++i) slot[1 + i] = static_cast<std::uint8_t>(i);
    const int pos = core::slot_lower_bound(slot, logs, std::uint64_t{33});
    core::slot_insert_at(slot, pos, 40);
    benchmark::DoNotOptimize(slot);
  }
}
BENCHMARK(BM_SlotInsert);

void BM_ZipfianNext(benchmark::State& state) {
  workload::ZipfianGenerator gen(1 << 20, 0.8, 1);
  for (auto _ : state) benchmark::DoNotOptimize(gen.next());
}
BENCHMARK(BM_ZipfianNext);

void BM_ScrambledZipfianNext(benchmark::State& state) {
  workload::ScrambledZipfianGenerator gen(1 << 20, 0.99, 1);
  for (auto _ : state) benchmark::DoNotOptimize(gen.next());
}
BENCHMARK(BM_ScrambledZipfianNext);

void BM_RNTreeFind(benchmark::State& state) {
  nvm::config().write_latency_ns = 0;
  nvm::PmemPool pool(std::size_t{128} << 20);
  core::RNTree<> tree(pool);
  for (std::uint64_t i = 0; i < 100'000; ++i) tree.upsert(mix64(i), i);
  Xoshiro256 rng(7);
  for (auto _ : state)
    benchmark::DoNotOptimize(tree.find(mix64(rng.next_below(100'000))));
}
BENCHMARK(BM_RNTreeFind);

void BM_RNTreeUpsert_140ns(benchmark::State& state) {
  nvm::config().write_latency_ns = 140;
  nvm::config().per_line_ns = 2;
  nvm::PmemPool pool(std::size_t{512} << 20);
  core::RNTree<> tree(pool);
  for (std::uint64_t i = 0; i < 100'000; ++i) tree.upsert(mix64(i), i);
  Xoshiro256 rng(7);
  for (auto _ : state) tree.upsert(mix64(rng.next_below(100'000)), 1);
  nvm::config().write_latency_ns = 0;
}
BENCHMARK(BM_RNTreeUpsert_140ns);

void BM_MixYcsbE(benchmark::State& state) {
  // Scan-heavy service mix (95% scan-of-100 / 5% insert) through the shared
  // execute_op dispatcher — exercises the OpType::kScan path end to end.
  nvm::config().write_latency_ns = 0;
  nvm::PmemPool pool(std::size_t{256} << 20);
  core::RNTree<> tree(pool);
  constexpr std::uint64_t kWarm = 100'000;
  for (std::uint64_t i = 0; i < kWarm; ++i) tree.upsert(mix64(i), i);
  workload::OpStream mix(workload::MixSpec::ycsb_e(),
                         workload::KeyDist::kUniform, kWarm, 0.0, 7);
  std::uint64_t fresh = kWarm;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> scan_buf;
  for (auto _ : state) {
    bench::execute_op(tree, mix.next(), &fresh, scan_buf);
    benchmark::DoNotOptimize(scan_buf);
  }
}
BENCHMARK(BM_MixYcsbE);

}  // namespace

// ---------------------------------------------------------------------------
// Perf-gate mode (--gate-json=FILE): one canonical single-thread workload
// whose numbers are committed as BENCH_micro.json and compared by
// tools/perf_gate.py in CI.  The workload is fixed — changing it invalidates
// every committed baseline, so version it via the "schema" meta field.
//
// Four rate phases (closed-loop, default 0.4 s each):
//   calib  — a pure-CPU mix64 loop; a machine-speed normalizer so the gate
//            can compare *ratios* (tree rate / calib rate) across hosts
//   find   — uniform point lookups over the warm keys
//   insert — fresh-key inserts continuing past the warm range
//   mixed  — 50% find / 25% update / 25% fresh insert
// plus the Table-1 persist-count check: the mode (most frequent value) of
// per-op persist-instruction deltas over 64 ops per class.  Modes are exact
// machine-independent integers — any drift is a correctness-level failure,
// not noise.
// ---------------------------------------------------------------------------
namespace {

template <typename Fn>
std::uint64_t persist_mode_of(Fn&& op) {
  std::map<std::uint64_t, int> freq;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t before = nvm::tls_stats().persist;
    op(i);
    freq[nvm::tls_stats().persist - before]++;
  }
  std::uint64_t best = 0;
  int best_n = -1;
  for (const auto& [v, n] : freq)
    if (n > best_n) { best = v; best_n = n; }
  return best;
}

int run_gate(const std::string& path, std::uint64_t warm, double secs,
             unsigned stripes) {
  nvm::config().write_latency_ns = 0;
  nvm::config().per_line_ns = 0;

  nvm::PmemPool pool(std::max<std::size_t>(std::size_t{256} << 20, warm * 160));
  // --gate-stripes=1 runs the whole gate against the single-global-fallback
  // baseline: CI uses it to bound the striping layer's single-thread cost
  // (persist modes must be identical — stripes never touch NVM ordering).
  core::RNTree<>::Options topt;
  topt.fallback_stripes = stripes;
  core::RNTree<> tree(pool, topt);
  for (std::uint64_t i = 0; i < warm; ++i) tree.upsert(mix64(i), i);

  std::uint64_t acc = 0;
  const double calib =
      bench::measure_rate(secs, [&](std::uint64_t i) { acc ^= mix64(i); });

  Xoshiro256 rng(42);
  const double find = bench::measure_rate(secs, [&](std::uint64_t) {
    auto r = tree.find(mix64(rng.next_below(warm)));
    if (r) acc ^= *r;
  });

  std::uint64_t fresh = warm;
  const double insert = bench::measure_rate(secs, [&](std::uint64_t) {
    tree.insert(mix64(fresh), fresh);
    ++fresh;
  });

  const double mixed = bench::measure_rate(secs, [&](std::uint64_t i) {
    switch (i & 3) {
      case 0:
      case 1: {
        auto r = tree.find(mix64(rng.next_below(warm)));
        if (r) acc ^= *r;
        break;
      }
      case 2:
        tree.update(mix64(rng.next_below(warm)), i);
        break;
      default:
        tree.insert(mix64(fresh), fresh);
        ++fresh;
        break;
    }
  });

  const std::uint64_t find_p = persist_mode_of(
      [&](int i) { (void)tree.find(mix64(static_cast<std::uint64_t>(i) * 97 % warm)); });
  const std::uint64_t update_p = persist_mode_of([&](int i) {
    (void)tree.update(mix64(static_cast<std::uint64_t>(i) * 131 % warm), 7);
  });
  const std::uint64_t insert_p = persist_mode_of([&](int) {
    (void)tree.insert(mix64(fresh), fresh);
    ++fresh;
  });
  const std::uint64_t remove_p = persist_mode_of([&](int i) {
    (void)tree.remove(mix64(static_cast<std::uint64_t>(i) * 131 % warm));
  });

  // Group-persistency gate: fences per update eagerly (KV fence + slot fence
  // = 2) and per batch of 8 updates under one nvm::BatchScope (8 KV fences +
  // 1 trailing barrier = 9).  Exact integers; regression here means the
  // fence-amortization machinery broke.
  const auto fences = [] {
    const nvm::PersistStats& s = nvm::tls_stats();
    return s.fence + s.batch_fence;
  };
  const auto fence_mode_of = [&](int rounds, auto&& op) {
    std::map<std::uint64_t, int> freq;
    for (int i = 0; i < rounds; ++i) {
      const std::uint64_t before = fences();
      op(i);
      freq[fences() - before]++;
    }
    std::uint64_t best = 0;
    int best_n = -1;
    for (const auto& [v, n] : freq)
      if (n > best_n) { best = v; best_n = n; }
    return best;
  };
  const std::uint64_t update_f = fence_mode_of(64, [&](int i) {
    (void)tree.update(mix64(static_cast<std::uint64_t>(i) * 193 % warm), 9);
  });
  const std::uint64_t batch8_f = fence_mode_of(16, [&](int i) {
    nvm::BatchScope scope;
    for (int j = 0; j < 8; ++j)
      (void)tree.update(
          mix64(static_cast<std::uint64_t>(i * 8 + j) * 197 % warm), 11);
  });

  auto num = [](double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4f", v);
    return std::string(buf);
  };
  std::vector<rnt::obs::MetaField> meta = rnt::obs::standard_meta();
  const std::vector<rnt::obs::MetaField> gate_meta = {
      {"bench", "micro_gate", false},
      // v2: adds the group-persistency fence modes (update_fences_mode,
      // batch8_fences_mode).  Re-baseline BENCH_micro.json on schema bumps.
      {"schema", "rnt-gate-v2", false},
      {"warm", std::to_string(warm), true},
      {"seconds", num(secs), true},
      {"gate_stripes", std::to_string(stripes), true},
      {"calib_mops", num(calib * 1e-6), true},
      {"find_mops", num(find * 1e-6), true},
      {"insert_mops", num(insert * 1e-6), true},
      {"mixed_mops", num(mixed * 1e-6), true},
      {"find_persists_mode", std::to_string(find_p), true},
      {"insert_persists_mode", std::to_string(insert_p), true},
      {"update_persists_mode", std::to_string(update_p), true},
      {"remove_persists_mode", std::to_string(remove_p), true},
      {"update_fences_mode", std::to_string(update_f), true},
      {"batch8_fences_mode", std::to_string(batch8_f), true},
  };
  meta.insert(meta.end(), gate_meta.begin(), gate_meta.end());
  rnt::obs::write_json_snapshot(path, meta, false);
  std::printf("gate: calib %.2f Mops | find %.4f | insert %.4f | mixed %.4f"
              " | persists f/i/u/r = %llu/%llu/%llu/%llu"
              " | fences u/batch8 = %llu/%llu -> %s\n",
              calib * 1e-6, find * 1e-6, insert * 1e-6, mixed * 1e-6,
              (unsigned long long)find_p, (unsigned long long)insert_p,
              (unsigned long long)update_p, (unsigned long long)remove_p,
              (unsigned long long)update_f, (unsigned long long)batch8_f,
              path.c_str());
  return acc == 0x12345 ? 1 : 0;  // keep acc observable; always returns 0
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): peel off the repo-wide
// --stats-json=FILE / --trace=N / --sample-ms=N / --perfetto=FILE flags plus
// the gate-mode flags (google-benchmark rejects flags it does not know)
// before handing the rest to the library.
int main(int argc, char** argv) {
  std::string stats_json;
  std::string gate_json;
  std::string perfetto;
  std::uint64_t gate_warm = 200'000;
  double gate_secs = 0.4;
  std::uint32_t gate_stripes = rnt::htm::kDefaultFallbackStripes;
  std::uint32_t sample_ms = 0;
  bool tracing = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--stats-json=", 0) == 0) {
      stats_json = a.substr(13);
    } else if (a.rfind("--gate-json=", 0) == 0) {
      gate_json = a.substr(12);
    } else if (a.rfind("--gate-warm=", 0) == 0) {
      gate_warm = std::strtoull(a.c_str() + 12, nullptr, 10);
    } else if (a.rfind("--gate-seconds=", 0) == 0) {
      gate_secs = std::strtod(a.c_str() + 15, nullptr);
    } else if (a.rfind("--gate-stripes=", 0) == 0) {
      gate_stripes =
          static_cast<std::uint32_t>(std::strtoul(a.c_str() + 15, nullptr, 10));
      if (!rnt::htm::stripe_valid_count(gate_stripes)) {
        std::fprintf(stderr,
                     "bench_micro: --gate-stripes wants a power of two in "
                     "[%u, %u], got '%s'\n",
                     rnt::htm::kMinFallbackStripes,
                     rnt::htm::kMaxFallbackStripes, a.c_str() + 15);
        return 2;
      }
    } else if (a.rfind("--trace=", 0) == 0) {
      rnt::obs::set_trace_capacity(std::strtoull(a.c_str() + 8, nullptr, 10));
      tracing = true;
    } else if (a.rfind("--sample-ms=", 0) == 0) {
      sample_ms =
          static_cast<std::uint32_t>(std::strtoul(a.c_str() + 12, nullptr, 10));
    } else if (a.rfind("--perfetto=", 0) == 0) {
      perfetto = a.substr(11);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (!perfetto.empty() && !tracing) {
    rnt::obs::set_trace_capacity(4096);
    tracing = true;
  }
  if (sample_ms != 0 || !perfetto.empty()) rnt::obs::set_phase_timing(true);
  if (sample_ms != 0) rnt::obs::sampler().start({.interval_ms = sample_ms});
  if (!gate_json.empty())
    return run_gate(gate_json, gate_warm, gate_secs, gate_stripes);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (sample_ms != 0) rnt::obs::sampler().stop();
  if (!perfetto.empty()) rnt::obs::write_chrome_trace(perfetto);
  if (!stats_json.empty()) {
    std::vector<rnt::obs::MetaField> meta = rnt::obs::standard_meta();
    meta.push_back({"bench", "micro", false});
    rnt::obs::write_json_snapshot(stats_json, meta, tracing, sample_ms != 0);
  }
  return 0;
}
