// Micro-benchmarks of the primitive costs everything else builds on:
// persist instructions (with and without injected latency), CAS log
// allocation, seqlock snapshots, version-lock operations, slot-array
// updates, Zipfian generation, and single leaf-level operations per tree.
//
// These numbers calibrate the discrete-event simulator's stage costs (see
// src/sim) and make the injected-latency model auditable.
#include <benchmark/benchmark.h>

#include <string>

#include "core/rntree.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "core/slot_util.hpp"
#include "htm/rtm.hpp"
#include "htm/seqlock.hpp"
#include "htm/version_lock.hpp"
#include "nvm/persist.hpp"
#include "nvm/pool.hpp"
#include "workload/zipfian.hpp"

namespace {

using namespace rnt;

void BM_PersistOneLine_NoLatency(benchmark::State& state) {
  nvm::config().write_latency_ns = 0;
  nvm::config().per_line_ns = 0;
  alignas(64) char buf[64];
  for (auto _ : state) nvm::persist(buf, 64);
}
BENCHMARK(BM_PersistOneLine_NoLatency);

void BM_PersistOneLine_140ns(benchmark::State& state) {
  nvm::config().write_latency_ns = 140;
  nvm::config().per_line_ns = 2;
  alignas(64) char buf[64];
  for (auto _ : state) nvm::persist(buf, 64);
  nvm::config().write_latency_ns = 0;
}
BENCHMARK(BM_PersistOneLine_140ns);

void BM_PersistWholeLeaf_140ns(benchmark::State& state) {
  nvm::config().write_latency_ns = 140;
  nvm::config().per_line_ns = 2;
  alignas(64) char buf[1216];
  for (auto _ : state) nvm::persist(buf, sizeof(buf));
  nvm::config().write_latency_ns = 0;
}
BENCHMARK(BM_PersistWholeLeaf_140ns);

void BM_CasAllocate(benchmark::State& state) {
  std::atomic<std::uint32_t> nlogs{0};
  for (auto _ : state) {
    std::uint32_t e = nlogs.load(std::memory_order_relaxed);
    nlogs.compare_exchange_weak(e, e + 1, std::memory_order_acq_rel);
    if (nlogs.load(std::memory_order_relaxed) > 1u << 20)
      nlogs.store(0, std::memory_order_relaxed);
  }
}
BENCHMARK(BM_CasAllocate);

void BM_SeqlockSnapshot(benchmark::State& state) {
  htm::SeqCounter seq;
  alignas(64) std::uint8_t slot[64] = {};
  alignas(64) std::uint8_t snap[64];
  for (auto _ : state) {
    const std::uint32_t s = seq.read_begin();
    std::memcpy(snap, slot, 64);
    benchmark::DoNotOptimize(seq.read_validate(s));
    benchmark::DoNotOptimize(snap);
  }
}
BENCHMARK(BM_SeqlockSnapshot);

void BM_VersionLockCycle(benchmark::State& state) {
  htm::VersionLock vl;
  for (auto _ : state) {
    vl.lock();
    vl.unlock();
  }
}
BENCHMARK(BM_VersionLockCycle);

void BM_AtomicExec(benchmark::State& state) {
  htm::SpinLock fb;
  std::uint64_t x = 0;
  for (auto _ : state) {
    htm::atomic_exec(fb, [&] { ++x; });
  }
  benchmark::DoNotOptimize(x);
}
BENCHMARK(BM_AtomicExec);

void BM_SlotInsert(benchmark::State& state) {
  struct E {
    std::uint64_t key, value;
  };
  alignas(64) std::uint8_t slot[64] = {};
  E logs[64];
  for (int i = 0; i < 64; ++i) logs[i] = {static_cast<std::uint64_t>(i) * 2, 0};
  for (auto _ : state) {
    slot[0] = 32;
    for (int i = 0; i < 32; ++i) slot[1 + i] = static_cast<std::uint8_t>(i);
    const int pos = core::slot_lower_bound(slot, logs, std::uint64_t{33});
    core::slot_insert_at(slot, pos, 40);
    benchmark::DoNotOptimize(slot);
  }
}
BENCHMARK(BM_SlotInsert);

void BM_ZipfianNext(benchmark::State& state) {
  workload::ZipfianGenerator gen(1 << 20, 0.8, 1);
  for (auto _ : state) benchmark::DoNotOptimize(gen.next());
}
BENCHMARK(BM_ZipfianNext);

void BM_ScrambledZipfianNext(benchmark::State& state) {
  workload::ScrambledZipfianGenerator gen(1 << 20, 0.99, 1);
  for (auto _ : state) benchmark::DoNotOptimize(gen.next());
}
BENCHMARK(BM_ScrambledZipfianNext);

void BM_RNTreeFind(benchmark::State& state) {
  nvm::config().write_latency_ns = 0;
  nvm::PmemPool pool(std::size_t{128} << 20);
  core::RNTree<> tree(pool);
  for (std::uint64_t i = 0; i < 100'000; ++i) tree.upsert(mix64(i), i);
  Xoshiro256 rng(7);
  for (auto _ : state)
    benchmark::DoNotOptimize(tree.find(mix64(rng.next_below(100'000))));
}
BENCHMARK(BM_RNTreeFind);

void BM_RNTreeUpsert_140ns(benchmark::State& state) {
  nvm::config().write_latency_ns = 140;
  nvm::config().per_line_ns = 2;
  nvm::PmemPool pool(std::size_t{512} << 20);
  core::RNTree<> tree(pool);
  for (std::uint64_t i = 0; i < 100'000; ++i) tree.upsert(mix64(i), i);
  Xoshiro256 rng(7);
  for (auto _ : state) tree.upsert(mix64(rng.next_below(100'000)), 1);
  nvm::config().write_latency_ns = 0;
}
BENCHMARK(BM_RNTreeUpsert_140ns);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): peel off the repo-wide
// --stats-json=FILE / --trace=N flags (google-benchmark rejects flags it
// does not know) before handing the rest to the library.
int main(int argc, char** argv) {
  std::string stats_json;
  bool tracing = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--stats-json=", 0) == 0) {
      stats_json = a.substr(13);
    } else if (a.rfind("--trace=", 0) == 0) {
      rnt::obs::set_trace_capacity(std::strtoull(a.c_str() + 8, nullptr, 10));
      tracing = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!stats_json.empty())
    rnt::obs::write_json_snapshot(stats_json, {{"bench", "micro", false}}, tracing);
  return 0;
}
