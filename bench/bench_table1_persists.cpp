// Table 1: persistent instructions per modify operation, measured.
//
//   Tree        Writes   Sorted   Concurrency
//   CDDS        L        yes      no          (write-amplified node copies)
//   NVTree      2        no       no
//   wB+tree     4        yes      no
//   FPTree      3        no       coarse-grained
//   RNTree      2        yes      fine-grained
//
// This bench measures the Writes column directly with the persist-
// instruction counters, averaged over many operations on warmed trees
// (split costs amortise in; the steady-state average should sit just above
// the per-op count).
#include "tree_zoo.hpp"

namespace rnt::bench {
namespace {

struct Table1Runner {
  const BenchOptions& opt;

  template <typename Factory>
  void operator()() const {
    nvm::PmemPool pool(opt.pool_size());
    auto tree = Factory::make(pool);
    warm_tree(*tree, opt.warm);
    Xoshiro256 rng(opt.seed);
    constexpr std::uint64_t kOps = 4000;

    std::uint64_t fresh = opt.warm;
    auto persists_per_op = [&](auto&& fn) {
      const nvm::PersistStats before = nvm::tls_stats();
      for (std::uint64_t i = 0; i < kOps; ++i) fn();
      return static_cast<double>((nvm::tls_stats() - before).persist) / kOps;
    };

    const double ins = persists_per_op([&] { (void)tree->insert(nth_key(fresh++), 1); });
    const double upd = persists_per_op(
        [&] { (void)tree->update(nth_key(rng.next_below(opt.warm)), 2); });
    const double rem = persists_per_op(
        [&] { (void)tree->remove(nth_key(rng.next_below(opt.warm))); });
    const double fnd = persists_per_op(
        [&] { (void)tree->find(nth_key(rng.next_below(opt.warm))); });
    print_row(Factory::kName, {ins, upd, rem, fnd});
  }
};

}  // namespace
}  // namespace rnt::bench

int main(int argc, char** argv) {
  using namespace rnt::bench;
  BenchOptions opt = BenchOptions::parse(argc, argv);
  opt.warm = std::min<std::uint64_t>(opt.warm, 200'000);
  opt.apply_nvm_config();

  print_header("Table 1: measured persistent instructions per operation",
               {"insert", "update", "remove", "find"});
  Table1Runner runner{opt};
  runner.operator()<MakeRNTreeDS>();
  runner.operator()<MakeNVTree>();
  runner.operator()<MakeWBTree>();
  runner.operator()<MakeWBTreeSO>();
  runner.operator()<MakeFPTree>();
  runner.operator()<MakeCDDS>();
  print_note("paper Table 1 Writes column: RNTree=2, NVTree=2, wB+tree=4,");
  print_note("FPTree=3 (remove=1), CDDS=L (sorted multi-version array:");
  print_note("every shifted entry is flushed, ~L/2 per modify on average).");
  print_note("Values sit slightly above the per-op count because split/");
  print_note("compaction persists amortise into the average.");
  export_stats(opt, "table1_persists");
  return 0;
}
