// The "tree zoo": uniform construction/warm-up over all six compared tree
// configurations (paper S6): RNTree, RNTree+DS, NVTree, wB+tree, wB+tree-SO,
// FPTree.  Benchmarks iterate the zoo with a generic callable thanks to the
// trees' shared duck-typed API (insert/update/upsert/remove/find/scan_n).
#pragma once

#include <memory>
#include <string>

#include "baselines/cdds.hpp"
#include "baselines/fptree.hpp"
#include "baselines/nvtree.hpp"
#include "baselines/wbtree.hpp"
#include "bench_common.hpp"
#include "core/rntree.hpp"

namespace rnt::bench {

using RN = core::RNTree<std::uint64_t, std::uint64_t>;
using NV = baselines::NVTree<std::uint64_t, std::uint64_t>;
using WB = baselines::WBTree<std::uint64_t, std::uint64_t>;
using WBSO = baselines::WBTreeSO<std::uint64_t, std::uint64_t>;
using FP = baselines::FPTree<std::uint64_t, std::uint64_t>;

struct MakeRNTree {
  static constexpr const char* kName = "RNTree";
  static std::unique_ptr<RN> make(nvm::PmemPool& pool) {
    return std::make_unique<RN>(pool, RN::Options{.dual_slot = false});
  }
};
struct MakeRNTreeDS {
  static constexpr const char* kName = "RNTree+DS";
  static std::unique_ptr<RN> make(nvm::PmemPool& pool) {
    return std::make_unique<RN>(pool, RN::Options{.dual_slot = true});
  }
};
struct MakeNVTree {
  static constexpr const char* kName = "NVTree";
  static std::unique_ptr<NV> make(nvm::PmemPool& pool) {
    return std::make_unique<NV>(pool);  // basic: non-conditional
  }
};
struct MakeNVTreeCond {
  static constexpr const char* kName = "NVTree-cond";
  static std::unique_ptr<NV> make(nvm::PmemPool& pool) {
    return std::make_unique<NV>(pool, NV::Options{.conditional_write = true});
  }
};
struct MakeWBTree {
  static constexpr const char* kName = "wB+tree";
  static std::unique_ptr<WB> make(nvm::PmemPool& pool) {
    return std::make_unique<WB>(pool);
  }
};
struct MakeWBTreeSO {
  static constexpr const char* kName = "wB+tree-SO";
  static std::unique_ptr<WBSO> make(nvm::PmemPool& pool) {
    return std::make_unique<WBSO>(pool);
  }
};
struct MakeFPTree {
  static constexpr const char* kName = "FPTree";
  static std::unique_ptr<FP> make(nvm::PmemPool& pool) {
    return std::make_unique<FP>(pool);
  }
};
struct MakeCDDS {
  static constexpr const char* kName = "CDDS";
  static std::unique_ptr<baselines::CDDSTree<std::uint64_t, std::uint64_t>>
  make(nvm::PmemPool& pool) {
    return std::make_unique<baselines::CDDSTree<std::uint64_t, std::uint64_t>>(
        pool);
  }
};

/// Warm a tree with `n` scrambled distinct keys (value = key+1).
template <typename Tree>
void warm_tree(Tree& tree, std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t k = nth_key(i);
    tree.upsert(k, k + 1);
  }
}

/// Invoke fn.template operator()<Factory>() for every tree in Fig 4's zoo.
template <typename Fn>
void for_each_tree(Fn&& fn) {
  fn.template operator()<MakeRNTree>();
  fn.template operator()<MakeRNTreeDS>();
  fn.template operator()<MakeNVTree>();
  fn.template operator()<MakeWBTree>();
  fn.template operator()<MakeWBTreeSO>();
  fn.template operator()<MakeFPTree>();
}

}  // namespace rnt::bench
