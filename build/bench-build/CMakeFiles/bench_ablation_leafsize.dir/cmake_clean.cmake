file(REMOVE_RECURSE
  "../bench/bench_ablation_leafsize"
  "../bench/bench_ablation_leafsize.pdb"
  "CMakeFiles/bench_ablation_leafsize.dir/bench_ablation_leafsize.cpp.o"
  "CMakeFiles/bench_ablation_leafsize.dir/bench_ablation_leafsize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_leafsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
