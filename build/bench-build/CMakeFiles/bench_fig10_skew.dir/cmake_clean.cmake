file(REMOVE_RECURSE
  "../bench/bench_fig10_skew"
  "../bench/bench_fig10_skew.pdb"
  "CMakeFiles/bench_fig10_skew.dir/bench_fig10_skew.cpp.o"
  "CMakeFiles/bench_fig10_skew.dir/bench_fig10_skew.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
