file(REMOVE_RECURSE
  "../bench/bench_fig4_single_thread"
  "../bench/bench_fig4_single_thread.pdb"
  "CMakeFiles/bench_fig4_single_thread.dir/bench_fig4_single_thread.cpp.o"
  "CMakeFiles/bench_fig4_single_thread.dir/bench_fig4_single_thread.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_single_thread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
