file(REMOVE_RECURSE
  "../bench/bench_fig5_conditional"
  "../bench/bench_fig5_conditional.pdb"
  "CMakeFiles/bench_fig5_conditional.dir/bench_fig5_conditional.cpp.o"
  "CMakeFiles/bench_fig5_conditional.dir/bench_fig5_conditional.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_conditional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
