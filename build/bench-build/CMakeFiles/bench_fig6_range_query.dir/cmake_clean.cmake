file(REMOVE_RECURSE
  "../bench/bench_fig6_range_query"
  "../bench/bench_fig6_range_query.pdb"
  "CMakeFiles/bench_fig6_range_query.dir/bench_fig6_range_query.cpp.o"
  "CMakeFiles/bench_fig6_range_query.dir/bench_fig6_range_query.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_range_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
