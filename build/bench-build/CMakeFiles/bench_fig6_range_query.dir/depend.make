# Empty dependencies file for bench_fig6_range_query.
# This may be replaced when dependencies are built.
