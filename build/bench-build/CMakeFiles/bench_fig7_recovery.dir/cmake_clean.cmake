file(REMOVE_RECURSE
  "../bench/bench_fig7_recovery"
  "../bench/bench_fig7_recovery.pdb"
  "CMakeFiles/bench_fig7_recovery.dir/bench_fig7_recovery.cpp.o"
  "CMakeFiles/bench_fig7_recovery.dir/bench_fig7_recovery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
