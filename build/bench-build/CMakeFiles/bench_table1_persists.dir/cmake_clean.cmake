file(REMOVE_RECURSE
  "../bench/bench_table1_persists"
  "../bench/bench_table1_persists.pdb"
  "CMakeFiles/bench_table1_persists.dir/bench_table1_persists.cpp.o"
  "CMakeFiles/bench_table1_persists.dir/bench_table1_persists.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_persists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
