file(REMOVE_RECURSE
  "CMakeFiles/durable_kv_store.dir/durable_kv_store.cpp.o"
  "CMakeFiles/durable_kv_store.dir/durable_kv_store.cpp.o.d"
  "durable_kv_store"
  "durable_kv_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durable_kv_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
