file(REMOVE_RECURSE
  "CMakeFiles/time_series_analytics.dir/time_series_analytics.cpp.o"
  "CMakeFiles/time_series_analytics.dir/time_series_analytics.cpp.o.d"
  "time_series_analytics"
  "time_series_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_series_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
