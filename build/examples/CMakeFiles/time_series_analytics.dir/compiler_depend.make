# Empty compiler generated dependencies file for time_series_analytics.
# This may be replaced when dependencies are built.
