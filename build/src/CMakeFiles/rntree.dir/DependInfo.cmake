
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/histogram.cpp" "src/CMakeFiles/rntree.dir/common/histogram.cpp.o" "gcc" "src/CMakeFiles/rntree.dir/common/histogram.cpp.o.d"
  "/root/repo/src/common/thread_id.cpp" "src/CMakeFiles/rntree.dir/common/thread_id.cpp.o" "gcc" "src/CMakeFiles/rntree.dir/common/thread_id.cpp.o.d"
  "/root/repo/src/common/timing.cpp" "src/CMakeFiles/rntree.dir/common/timing.cpp.o" "gcc" "src/CMakeFiles/rntree.dir/common/timing.cpp.o.d"
  "/root/repo/src/epoch/ebr.cpp" "src/CMakeFiles/rntree.dir/epoch/ebr.cpp.o" "gcc" "src/CMakeFiles/rntree.dir/epoch/ebr.cpp.o.d"
  "/root/repo/src/htm/rtm.cpp" "src/CMakeFiles/rntree.dir/htm/rtm.cpp.o" "gcc" "src/CMakeFiles/rntree.dir/htm/rtm.cpp.o.d"
  "/root/repo/src/nvm/persist.cpp" "src/CMakeFiles/rntree.dir/nvm/persist.cpp.o" "gcc" "src/CMakeFiles/rntree.dir/nvm/persist.cpp.o.d"
  "/root/repo/src/nvm/pool.cpp" "src/CMakeFiles/rntree.dir/nvm/pool.cpp.o" "gcc" "src/CMakeFiles/rntree.dir/nvm/pool.cpp.o.d"
  "/root/repo/src/nvm/shadow.cpp" "src/CMakeFiles/rntree.dir/nvm/shadow.cpp.o" "gcc" "src/CMakeFiles/rntree.dir/nvm/shadow.cpp.o.d"
  "/root/repo/src/sim/models.cpp" "src/CMakeFiles/rntree.dir/sim/models.cpp.o" "gcc" "src/CMakeFiles/rntree.dir/sim/models.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/rntree.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/rntree.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/workload/zipfian.cpp" "src/CMakeFiles/rntree.dir/workload/zipfian.cpp.o" "gcc" "src/CMakeFiles/rntree.dir/workload/zipfian.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
