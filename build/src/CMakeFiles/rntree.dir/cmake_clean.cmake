file(REMOVE_RECURSE
  "CMakeFiles/rntree.dir/common/histogram.cpp.o"
  "CMakeFiles/rntree.dir/common/histogram.cpp.o.d"
  "CMakeFiles/rntree.dir/common/thread_id.cpp.o"
  "CMakeFiles/rntree.dir/common/thread_id.cpp.o.d"
  "CMakeFiles/rntree.dir/common/timing.cpp.o"
  "CMakeFiles/rntree.dir/common/timing.cpp.o.d"
  "CMakeFiles/rntree.dir/epoch/ebr.cpp.o"
  "CMakeFiles/rntree.dir/epoch/ebr.cpp.o.d"
  "CMakeFiles/rntree.dir/htm/rtm.cpp.o"
  "CMakeFiles/rntree.dir/htm/rtm.cpp.o.d"
  "CMakeFiles/rntree.dir/nvm/persist.cpp.o"
  "CMakeFiles/rntree.dir/nvm/persist.cpp.o.d"
  "CMakeFiles/rntree.dir/nvm/pool.cpp.o"
  "CMakeFiles/rntree.dir/nvm/pool.cpp.o.d"
  "CMakeFiles/rntree.dir/nvm/shadow.cpp.o"
  "CMakeFiles/rntree.dir/nvm/shadow.cpp.o.d"
  "CMakeFiles/rntree.dir/sim/models.cpp.o"
  "CMakeFiles/rntree.dir/sim/models.cpp.o.d"
  "CMakeFiles/rntree.dir/sim/simulator.cpp.o"
  "CMakeFiles/rntree.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/rntree.dir/workload/zipfian.cpp.o"
  "CMakeFiles/rntree.dir/workload/zipfian.cpp.o.d"
  "librntree.a"
  "librntree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rntree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
