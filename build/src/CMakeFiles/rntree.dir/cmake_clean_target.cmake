file(REMOVE_RECURSE
  "librntree.a"
)
