# Empty compiler generated dependencies file for rntree.
# This may be replaced when dependencies are built.
