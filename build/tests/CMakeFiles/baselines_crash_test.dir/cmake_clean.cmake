file(REMOVE_RECURSE
  "CMakeFiles/baselines_crash_test.dir/baselines_crash_test.cpp.o"
  "CMakeFiles/baselines_crash_test.dir/baselines_crash_test.cpp.o.d"
  "baselines_crash_test"
  "baselines_crash_test.pdb"
  "baselines_crash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_crash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
