# Empty dependencies file for baselines_crash_test.
# This may be replaced when dependencies are built.
