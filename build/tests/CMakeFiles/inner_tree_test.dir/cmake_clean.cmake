file(REMOVE_RECURSE
  "CMakeFiles/inner_tree_test.dir/inner_tree_test.cpp.o"
  "CMakeFiles/inner_tree_test.dir/inner_tree_test.cpp.o.d"
  "inner_tree_test"
  "inner_tree_test.pdb"
  "inner_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inner_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
