# Empty dependencies file for inner_tree_test.
# This may be replaced when dependencies are built.
