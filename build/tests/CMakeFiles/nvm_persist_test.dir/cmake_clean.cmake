file(REMOVE_RECURSE
  "CMakeFiles/nvm_persist_test.dir/nvm_persist_test.cpp.o"
  "CMakeFiles/nvm_persist_test.dir/nvm_persist_test.cpp.o.d"
  "nvm_persist_test"
  "nvm_persist_test.pdb"
  "nvm_persist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_persist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
