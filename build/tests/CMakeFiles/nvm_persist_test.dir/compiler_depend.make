# Empty compiler generated dependencies file for nvm_persist_test.
# This may be replaced when dependencies are built.
