file(REMOVE_RECURSE
  "CMakeFiles/nvm_shadow_test.dir/nvm_shadow_test.cpp.o"
  "CMakeFiles/nvm_shadow_test.dir/nvm_shadow_test.cpp.o.d"
  "nvm_shadow_test"
  "nvm_shadow_test.pdb"
  "nvm_shadow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvm_shadow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
