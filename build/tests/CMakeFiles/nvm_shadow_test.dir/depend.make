# Empty dependencies file for nvm_shadow_test.
# This may be replaced when dependencies are built.
