file(REMOVE_RECURSE
  "CMakeFiles/rntree_concurrent_test.dir/rntree_concurrent_test.cpp.o"
  "CMakeFiles/rntree_concurrent_test.dir/rntree_concurrent_test.cpp.o.d"
  "rntree_concurrent_test"
  "rntree_concurrent_test.pdb"
  "rntree_concurrent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rntree_concurrent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
