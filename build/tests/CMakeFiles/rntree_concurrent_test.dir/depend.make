# Empty dependencies file for rntree_concurrent_test.
# This may be replaced when dependencies are built.
