file(REMOVE_RECURSE
  "CMakeFiles/rntree_crash_test.dir/rntree_crash_test.cpp.o"
  "CMakeFiles/rntree_crash_test.dir/rntree_crash_test.cpp.o.d"
  "rntree_crash_test"
  "rntree_crash_test.pdb"
  "rntree_crash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rntree_crash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
