file(REMOVE_RECURSE
  "CMakeFiles/rntree_test.dir/rntree_test.cpp.o"
  "CMakeFiles/rntree_test.dir/rntree_test.cpp.o.d"
  "rntree_test"
  "rntree_test.pdb"
  "rntree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rntree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
