# Empty dependencies file for rntree_test.
# This may be replaced when dependencies are built.
