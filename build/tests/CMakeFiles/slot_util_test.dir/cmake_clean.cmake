file(REMOVE_RECURSE
  "CMakeFiles/slot_util_test.dir/slot_util_test.cpp.o"
  "CMakeFiles/slot_util_test.dir/slot_util_test.cpp.o.d"
  "slot_util_test"
  "slot_util_test.pdb"
  "slot_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slot_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
