# Empty dependencies file for slot_util_test.
# This may be replaced when dependencies are built.
