# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/nvm_persist_test[1]_include.cmake")
include("/root/repo/build/tests/nvm_pool_test[1]_include.cmake")
include("/root/repo/build/tests/nvm_shadow_test[1]_include.cmake")
include("/root/repo/build/tests/htm_test[1]_include.cmake")
include("/root/repo/build/tests/epoch_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/inner_tree_test[1]_include.cmake")
include("/root/repo/build/tests/rntree_test[1]_include.cmake")
include("/root/repo/build/tests/rntree_concurrent_test[1]_include.cmake")
include("/root/repo/build/tests/rntree_crash_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_crash_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/slot_util_test[1]_include.cmake")
