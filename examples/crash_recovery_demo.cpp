// Crash-consistency demonstration: runs RNTree against the ShadowPool crash
// simulator, power-fails it at a random point mid-operation (with random
// cache evictions), recovers, and shows that exactly the acknowledged
// operations survived.  This is the library's durable-linearizability story
// (paper S3.5/S5.4) made executable.
//
//   build/examples/crash_recovery_demo [seed]
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>

#include "common/rng.hpp"
#include "core/rntree.hpp"
#include "nvm/pool.hpp"
#include "nvm/shadow.hpp"

int main(int argc, char** argv) {
  using Tree = rnt::core::RNTree<>;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  rnt::nvm::config().write_latency_ns = 0;  // crash logic, not performance
  rnt::nvm::PmemPool pool(16u << 20);
  auto tree = std::make_unique<Tree>(pool);

  // Attach the crash simulator: from here on, every store/flush to the pool
  // is tracked at cache-line granularity.
  rnt::nvm::ShadowPool shadow(pool);

  // Run acknowledged operations until the scheduled "power failure".
  std::map<std::uint64_t, std::uint64_t> acked;
  rnt::Xoshiro256 rng(seed);
  shadow.schedule_crash_after(500 + rng.next_below(500));
  std::uint64_t attempted = 0;
  std::uint64_t pending_key = 0, pending_value = 0;  // the op in flight
  try {
    for (;;) {
      const std::uint64_t k = rng.next_below(64);
      const std::uint64_t v = rng.next() | 1;
      ++attempted;
      pending_key = k;
      pending_value = v;
      switch (rng.next_below(3)) {
        case 0:
          if (tree->insert(k, v)) acked[k] = v;
          break;
        case 1:
          if (tree->update(k, v)) acked[k] = v;
          break;
        default:
          if (tree->remove(k)) acked.erase(k);
      }
    }
  } catch (const rnt::nvm::CrashPoint&) {
    std::printf("power failure injected mid-operation #%" PRIu64
                " (after %" PRIu64 " tracked NVM events)\n",
                attempted, shadow.events_seen());
  }
  std::printf("acknowledged state before crash: %zu keys\n", acked.size());
  std::printf("unflushed cache lines at crash: %zu\n", shadow.unflushed_lines());

  // The machine dies: volatile state (DRAM inner nodes, CPU cache) is gone.
  tree.reset();
  shadow.simulate_crash(rnt::nvm::EvictionMode::kRandomEviction, seed);
  pool.reopen_volatile();
  std::printf("pool reports %s shutdown -> crash-recovery path\n",
              pool.clean_shutdown() ? "clean" : "unclean");

  // Recover: roll back any in-flight split, rebuild counters and the
  // volatile inner tree from the persistent leaves.
  Tree recovered(Tree::recover_t{}, pool);
  recovered.check_invariants();

  // Every acknowledged effect must be durable.  The one operation that was
  // in flight at the crash is all-or-nothing: its key may legally show the
  // old value, the new value, or (for a remove) be absent.
  std::size_t intact = 0, lost = 0;
  for (const auto& [k, v] : acked) {
    const auto res = recovered.find(k);
    if (k == pending_key) {
      if (!res || *res == v || *res == pending_value)
        ++intact;
      else
        ++lost;
    } else if (res && *res == v) {
      ++intact;
    } else {
      ++lost;
    }
  }
  std::printf("recovered tree: size=%zu; acked keys intact: %zu, lost: %zu\n",
              recovered.size(), intact, lost);
  std::printf("(the in-flight op on key %" PRIu64 " may be atomic-old or "
              "atomic-new)\n",
              pending_key);
  if (lost > 0) {
    std::printf("ERROR: durable linearizability violated!\n");
    return 1;
  }
  // The recovered tree is fully operational.
  recovered.upsert(999, 1);
  std::printf("post-recovery upsert ok; find(999)=%" PRIu64 "\n",
              *recovered.find(999));
  return 0;
}
