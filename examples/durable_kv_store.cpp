// A small durable key-value store built on RNTree — the kind of system the
// paper's introduction motivates (NVM-backed primary index with unique-key
// semantics, as in a relational primary key or Redis-style store).
//
// Demonstrates:
//   * a string-keyed API layered over the 8-byte-KV tree (keys are hashed;
//     values live in a pmem-resident append-only value log, the tree stores
//     their offsets),
//   * conditional write as the uniqueness constraint (S3.3),
//   * concurrent writers and readers,
//   * durability across a simulated restart.
//
//   build/examples/durable_kv_store
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/rntree.hpp"
#include "nvm/pool.hpp"

namespace {

/// String values stored in an append-only pmem log; the tree maps
/// hash(key) -> value offset.  A value record is [u32 len][bytes...].
class KVStore {
 public:
  static constexpr int kTreeRoot = 0;

  explicit KVStore(rnt::nvm::PmemPool& pool)
      : pool_(pool), tree_(pool, {.dual_slot = true, .root_slot = kTreeRoot}) {}

  struct recover_t {};
  KVStore(recover_t, rnt::nvm::PmemPool& pool)
      : pool_(pool),
        tree_(rnt::core::RNTree<>::recover_t{}, pool,
              {.dual_slot = true, .root_slot = kTreeRoot}) {}

  /// SET with uniqueness: returns false if the key already exists.
  bool create(const std::string& key, const std::string& value) {
    const std::uint64_t off = append_value(value);
    return tree_.insert(hash_key(key), off);
  }

  /// SET overwrite (the old value record is simply superseded).
  void put(const std::string& key, const std::string& value) {
    tree_.upsert(hash_key(key), append_value(value));
  }

  std::optional<std::string> get(const std::string& key) const {
    const auto off = tree_.find(hash_key(key));
    if (!off) return std::nullopt;
    const char* p = pool_.ptr<char>(*off);
    std::uint32_t len;
    std::memcpy(&len, p, sizeof(len));
    return std::string(p + sizeof(len), len);
  }

  bool erase(const std::string& key) { return tree_.remove(hash_key(key)); }

  std::size_t size() const { return tree_.size(); }
  void close() { tree_.close(); }

 private:
  static std::uint64_t hash_key(const std::string& key) {
    std::uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a
    for (const char c : key) h = (h ^ static_cast<unsigned char>(c)) * 0x100000001B3ull;
    return h;
  }

  std::uint64_t append_value(const std::string& value) {
    const auto len = static_cast<std::uint32_t>(value.size());
    const std::uint64_t off = pool_.alloc(sizeof(len) + len);
    char* p = pool_.ptr<char>(off);
    rnt::nvm::copy_nvm(p, &len, sizeof(len));
    rnt::nvm::copy_nvm(p + sizeof(len), value.data(), len);
    rnt::nvm::persist(p, sizeof(len) + len);  // value durable before indexed
    return off;
  }

  rnt::nvm::PmemPool& pool_;
  rnt::core::RNTree<> tree_;
};

}  // namespace

int main() {
  rnt::nvm::config().write_latency_ns = 140;
  rnt::nvm::PmemPool pool(256u << 20);

  {
    KVStore store(pool);

    // Uniqueness constraint via conditional write.
    std::printf("create(user:1) -> %s\n",
                store.create("user:1", "alice") ? "ok" : "exists");
    std::printf("create(user:1) -> %s (duplicate rejected)\n",
                store.create("user:1", "bob") ? "ok" : "exists");

    // Concurrent load: four writers own disjoint key ranges, two readers
    // sample continuously.
    std::vector<std::thread> workers;
    std::atomic<bool> stop{false};
    for (int w = 0; w < 4; ++w) {
      workers.emplace_back([&store, w] {
        for (int i = 0; i < 5000; ++i)
          store.put("key:" + std::to_string(w) + ":" + std::to_string(i),
                    "value-" + std::to_string(i));
      });
    }
    std::vector<std::thread> readers;
    for (int r = 0; r < 2; ++r) {
      readers.emplace_back([&store, &stop] {
        std::uint64_t hits = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          if (store.get("key:2:77")) ++hits;
        }
        (void)hits;
      });
    }
    for (auto& t : workers) t.join();
    stop = true;
    for (auto& t : readers) t.join();
    std::printf("after concurrent load: %zu keys\n", store.size());
    std::printf("get(key:3:4999) = %s\n",
                store.get("key:3:4999").value_or("<missing>").c_str());

    store.erase("user:1");
    store.close();
  }

  // Restart and verify durability.
  pool.reopen_volatile();
  KVStore store(KVStore::recover_t{}, pool);
  std::printf("recovered store: %zu keys; key:0:123 = %s; user:1 %s\n",
              store.size(), store.get("key:0:123").value_or("<missing>").c_str(),
              store.get("user:1") ? "present" : "absent");
  return 0;
}
