// Quickstart: create a durable RNTree in an emulated-NVM pool, run the
// basic operations, and recover it after a clean shutdown.
//
//   build/examples/quickstart [pool-file]
//
// With a pool file the data really survives the process (the pool is a
// mmap'd file, exactly how a DAX-mounted NVM device would be used); without
// one an in-memory pool is used.
#include <cinttypes>
#include <cstdio>
#include <string>

#include "core/rntree.hpp"
#include "nvm/pool.hpp"

int main(int argc, char** argv) {
  using Tree = rnt::core::RNTree<std::uint64_t, std::uint64_t>;

  // NVM latency model: the paper's NVDIMM write latency.
  rnt::nvm::config().write_latency_ns = 140;

  const std::string path = argc > 1 ? argv[1] : "";
  rnt::nvm::PmemPool pool(64u << 20, path);
  std::printf("pool: %zu MiB, %s-backed\n", pool.size() >> 20,
              pool.is_file_backed() ? "file" : "DRAM");

  {
    Tree tree(pool);  // dual slot array on by default

    // Conditional writes: insert fails on duplicates, update on absence.
    tree.insert(42, 4200);
    const bool dup = tree.insert(42, 9999);
    std::printf("insert(42) twice -> second returned %s (conditional write)\n",
                dup ? "true" : "false");

    for (std::uint64_t k = 0; k < 1000; ++k) tree.upsert(k, k * k);
    std::printf("upserted 1000 keys; size=%zu, leaves=%zu, inner height=%d\n",
                tree.size(), tree.leaf_count(), tree.height());

    if (auto v = tree.find(31)) std::printf("find(31) = %" PRIu64 "\n", *v);

    // Range query: sorted iteration straight off the leaf chain.
    std::printf("scan [100, 105): ");
    tree.scan(100, [](std::uint64_t k, std::uint64_t v) {
      std::printf("(%" PRIu64 ",%" PRIu64 ") ", k, v);
      return k < 104;
    });
    std::printf("\n");

    tree.remove(42);
    std::printf("removed 42; find -> %s\n",
                tree.find(42) ? "present" : "absent");

    // Per-op persistence cost: the paper's headline (2 persistent
    // instructions per modify).
    const rnt::nvm::PersistStats before = rnt::nvm::tls_stats();
    tree.upsert(5000, 1);
    const auto d = rnt::nvm::tls_stats() - before;
    std::printf("one upsert issued %" PRIu64 " persistent instructions\n",
                d.persist);

    tree.close();  // flush counters, mark the pool clean
  }

  // "Restart": recover the tree from the pool alone.
  pool.reopen_volatile();
  Tree recovered(Tree::recover_t{}, pool);
  std::printf("recovered: size=%zu, find(31)=%" PRIu64 "\n", recovered.size(),
              *recovered.find(31));
  return 0;
}
