// Range-scan analytics over a durable time-series index — the workload class
// where sorted leaves pay off (paper S5.2.4 / Fig 6).
//
// Scenario: sensor readings keyed by (sensor_id << 40 | timestamp) stream
// into an RNTree; dashboards run windowed range queries (per-sensor slices)
// concurrently with ingest.  The same workload on an unsorted-leaf design
// (NVTree) must sort every leaf it visits; this example measures both.
//
//   build/examples/time_series_analytics
#include <cinttypes>
#include <cstdio>

#include "baselines/nvtree.hpp"
#include "common/rng.hpp"
#include "common/timing.hpp"
#include "core/rntree.hpp"
#include "nvm/pool.hpp"

namespace {

constexpr std::uint64_t kSensors = 64;
constexpr std::uint64_t kReadingsPerSensor = 4000;

std::uint64_t make_key(std::uint64_t sensor, std::uint64_t ts) {
  return (sensor << 40) | ts;
}

template <typename Index>
void ingest(Index& index) {
  rnt::Xoshiro256 rng(11);
  // Interleaved arrival across sensors, like a real ingest stream.
  for (std::uint64_t ts = 0; ts < kReadingsPerSensor; ++ts)
    for (std::uint64_t s = 0; s < kSensors; ++s)
      index.upsert(make_key(s, ts * 1000 + rng.next_below(1000)),
                   rng.next_below(1'000'000));  // the reading
}

/// Windowed aggregate: average reading of one sensor over a time slice.
template <typename Index>
double window_avg(const Index& index, std::uint64_t sensor, std::uint64_t t0,
                  std::uint64_t t1, std::uint64_t* n_out) {
  std::uint64_t sum = 0, n = 0;
  index.scan(make_key(sensor, t0), [&](std::uint64_t k, std::uint64_t v) {
    if (k >= make_key(sensor, t1)) return false;
    sum += v;
    ++n;
    return true;
  });
  *n_out = n;
  return n == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(n);
}

template <typename Index>
double run_queries(const Index& index, const char* name) {
  rnt::Xoshiro256 rng(23);
  constexpr int kQueries = 2000;
  std::uint64_t total_rows = 0;
  rnt::ScopeTimer timer;
  for (int q = 0; q < kQueries; ++q) {
    const std::uint64_t sensor = rng.next_below(kSensors);
    const std::uint64_t t0 = rng.next_below(kReadingsPerSensor * 900);
    std::uint64_t n = 0;
    (void)window_avg(index, sensor, t0, t0 + 100'000, &n);
    total_rows += n;
  }
  const double qps = kQueries / timer.elapsed_s();
  std::printf("%-28s %8.0f windows/s  (%.1f rows/query avg)\n", name, qps,
              static_cast<double>(total_rows) / kQueries);
  return qps;
}

}  // namespace

int main() {
  rnt::nvm::config().write_latency_ns = 140;

  rnt::nvm::PmemPool pool_rn(512u << 20);
  rnt::core::RNTree<> rntree(pool_rn);
  rnt::nvm::PmemPool pool_nv(512u << 20);
  rnt::baselines::NVTree<> nvtree(pool_nv);

  std::printf("ingesting %" PRIu64 " readings into each index...\n",
              kSensors * kReadingsPerSensor);
  ingest(rntree);
  ingest(nvtree);
  std::printf("RNTree: %zu rows across %zu leaves\n", rntree.size(),
              rntree.leaf_count());

  std::printf("\nwindowed-average dashboard queries:\n");
  const double rn_qps = run_queries(rntree, "RNTree (sorted leaves)");
  const double nv_qps = run_queries(nvtree, "NVTree (sorts every leaf)");
  std::printf("\nsorted-leaf speedup on scans: %.1fx (paper Fig 6: ~4.2x)\n",
              rn_qps / nv_qps);

  // Point lookups for completeness: latest reading of sensor 3.
  std::uint64_t n = 0;
  const double avg = window_avg(rntree, 3, 0, ~0ull >> 24, &n);
  std::printf("sensor 3: %" PRIu64 " readings, lifetime average %.1f\n", n, avg);
  return 0;
}
