// CDDS B-Tree baseline [10] — simplified multi-version leaf.
//
// The paper's Table 1 characterises CDDS with Writes = L (the number of
// entries in the leaf): every modification creates new versioned entries
// rather than overwriting, and keeping entries sorted forces shifting —
// i.e. write amplification proportional to the occupied part of the node.
// CDDS appears in no measured figure, so this implementation exists to make
// Table 1 fully measurable: it reproduces the *cost structure* (sorted
// in-place array, version pair per entry, flush of everything the shift
// touched) with the same recovery-by-versions idea, not every detail of the
// original FAST'11 system.
//
// Leaf layout: a sorted array of versioned entries.  An entry is live when
// end_version == kInfinity.  Insert shifts the tail right and flushes every
// moved line; remove marks end_version; update = remove + insert of a new
// version.  A garbage-collecting split reclaims dead versions.
// Single-threaded, like the original's evaluation in the paper's table.
#pragma once

#include <optional>

#include "baselines/tree_shell.hpp"
#include "common/cacheline.hpp"
#include "common/status.hpp"
#include "htm/version_lock.hpp"
#include "obs/op_trace.hpp"

namespace rnt::baselines {

template <typename Key, typename Value>
struct alignas(kCacheLineSize) CddsLeaf {
  static_assert(sizeof(Key) == 8 && sizeof(Value) == 8);
  static constexpr std::uint32_t kCap = 64;
  static constexpr std::uint64_t kInfinity = ~0ull;

  struct Entry {
    Key key;
    Value value;
    std::uint64_t start_version;
    std::uint64_t end_version;
  };
  static_assert(sizeof(Entry) == 32);

  // ---- line 0: header ----
  std::atomic<std::uint64_t> count;  ///< persistent entry count
  htm::VersionLock vlock;
  std::atomic<std::uint64_t> next;
  std::atomic<Key> high_key;
  std::atomic<std::uint32_t> has_high;
  std::uint8_t pad0_[kCacheLineSize - 36];

  // ---- lines 1+: sorted versioned entries ----
  Entry entries[kCap];

  void init() noexcept {
    count.store(0, std::memory_order_relaxed);
    vlock.reset();
    next.store(0, std::memory_order_relaxed);
    high_key.store(Key{}, std::memory_order_relaxed);
    has_high.store(0, std::memory_order_relaxed);
  }

  /// Index of the live entry holding @p k, or -1.
  int find_live(Key k) const noexcept {
    const auto n = count.load(std::memory_order_acquire);
    for (std::uint64_t i = 0; i < n; ++i)
      if (entries[i].key == k && entries[i].end_version == kInfinity)
        return static_cast<int>(i);
    return -1;
  }

  std::uint64_t live_count() const noexcept {
    const auto n = count.load(std::memory_order_relaxed);
    std::uint64_t live = 0;
    for (std::uint64_t i = 0; i < n; ++i)
      live += entries[i].end_version == kInfinity;
    return live;
  }
};

template <typename Key = std::uint64_t, typename Value = std::uint64_t>
class CDDSTree : public TreeShell<Key, CddsLeaf<Key, Value>> {
  using Shell = TreeShell<Key, CddsLeaf<Key, Value>>;
  using Shell::beyond, Shell::locate, Shell::leftmost, Shell::next_leaf;
  using Shell::begin_undo, Shell::end_undo, Shell::my_undo;

 public:
  using Leaf = CddsLeaf<Key, Value>;
  using Entry = typename Leaf::Entry;

  struct Options {
    int root_slot = 0;
  };

  explicit CDDSTree(nvm::PmemPool& pool, Options opt = {})
      : Shell(pool, opt.root_slot, /*fresh=*/true) {}

  struct recover_t {};
  CDDSTree(recover_t, nvm::PmemPool& pool, Options opt = {})
      : Shell(pool, opt.root_slot, /*fresh=*/false) {
    const bool crashed = !pool.clean_shutdown();
    pool.mark_dirty();  // dirty strictly before any recovery-time mutation
    if (crashed) this->roll_back_splits();
    this->recover_chain([](Leaf* leaf) -> std::uint64_t {
      return leaf->live_count();
    });
  }

  common::Status insert(Key k, Value v) {
    obs::OpTrace tr(obs::OpKind::kInsert, k);
    const common::Status s = insert_impl(k, v);
    tr.finish(static_cast<bool>(s));
    return s;
  }

  common::Status update(Key k, Value v) {
    obs::OpTrace tr(obs::OpKind::kUpdate, k);
    const common::Status s = update_impl(k, v);
    tr.finish(static_cast<bool>(s));
    return s;
  }

  common::Status upsert(Key k, Value v) {
    // One OpTrace for the whole upsert: the update/insert impls are called
    // directly so the composite records a single op.upsert, not two ops.
    obs::OpTrace tr(obs::OpKind::kUpsert, k);
    const common::Status u = update_impl(k, v);
    if (u || u.pool_exhausted()) {
      tr.finish(static_cast<bool>(u));
      return u;
    }
    const common::Status s = insert_impl(k, v);
    tr.finish(static_cast<bool>(s));
    return s;
  }

  bool remove(Key k) {
    obs::OpTrace tr(obs::OpKind::kRemove, k);
    epoch::Guard g = this->epochs_.pin();
    Leaf* leaf = locate(k);
    const int idx = leaf->find_live(k);
    if (idx < 0) return tr.finish(false);
    end_version(leaf, idx);
    this->size_.fetch_sub(1, std::memory_order_relaxed);
    return tr.finish(true);
  }

  std::optional<Value> find(Key k) const {
    obs::OpTrace tr(obs::OpKind::kFind, k);
    epoch::Guard g = this->epochs_.pin();
    Leaf* leaf = locate(k);
    const int idx = leaf->find_live(k);
    if (idx < 0) {
      tr.finish(false);
      return std::nullopt;
    }
    tr.finish(true);
    return leaf->entries[idx].value;
  }

  template <typename Fn>
  std::size_t scan(Key start, Fn&& fn) const {
    obs::OpTrace tr(obs::OpKind::kScan, start);
    epoch::Guard g = this->epochs_.pin();
    std::size_t visited = 0;
    Leaf* leaf = locate(start);
    bool first = true;
    while (leaf != nullptr) {
      const auto n = leaf->count.load(std::memory_order_acquire);
      for (std::uint64_t i = 0; i < n; ++i) {
        const Entry& e = leaf->entries[i];
        if (e.end_version != Leaf::kInfinity) continue;
        if (first && e.key < start) continue;
        ++visited;
        if (!fn(e.key, e.value)) {
          tr.finish(visited > 0);
          return visited;
        }
      }
      first = false;
      leaf = next_leaf(leaf);
    }
    tr.finish(visited > 0);
    return visited;
  }

  std::size_t scan_n(Key start, std::size_t n,
                     std::vector<std::pair<Key, Value>>& out) const {
    out.clear();
    out.reserve(n);
    scan(start, [&](Key k, Value v) {
      out.emplace_back(k, v);
      return out.size() < n;
    });
    return out.size();
  }

 private:
  common::Status insert_impl(Key k, Value v) {
    epoch::Guard g = this->epochs_.pin();
    Leaf* leaf = locate(k);
    if (leaf->find_live(k) >= 0) return common::StatusCode::kKeyExists;
    leaf = ensure_space(leaf, k);
    if (leaf == nullptr) return common::StatusCode::kPoolExhausted;
    insert_version(leaf, k, v);
    this->size_.fetch_add(1, std::memory_order_relaxed);
    return common::OkStatus();
  }

  common::Status update_impl(Key k, Value v) {
    epoch::Guard g = this->epochs_.pin();
    Leaf* leaf = locate(k);
    int idx = leaf->find_live(k);
    if (idx < 0) return common::StatusCode::kKeyAbsent;
    // Multi-version update: secure space for the new version BEFORE retiring
    // the old one, so an exhausted pool leaves the live entry intact.
    leaf = ensure_space(leaf, k);
    if (leaf == nullptr) return common::StatusCode::kPoolExhausted;
    idx = leaf->find_live(k);  // positions move under compaction/split
    end_version(leaf, idx);
    insert_version(leaf, k, v);
    return common::OkStatus();
  }

  std::uint64_t next_version() noexcept {
    return version_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Mark a version dead: one small write + flush.
  void end_version(Leaf* leaf, int idx) {
    nvm::store(leaf->entries[idx].end_version, next_version());
    nvm::persist(&leaf->entries[idx].end_version, sizeof(std::uint64_t));
  }

  /// Insert a new live version at its sorted position: shifts the tail and
  /// flushes EVERYTHING the shift touched — the Writes=L amplification of
  /// Table 1.
  void insert_version(Leaf* leaf, Key k, Value v) {
    const auto n = leaf->count.load(std::memory_order_relaxed);
    std::uint64_t pos = 0;
    while (pos < n && leaf->entries[pos].key < k) ++pos;
    for (std::uint64_t i = n; i > pos; --i) {
      nvm::store(leaf->entries[i], leaf->entries[i - 1]);
      // Each shifted entry is flushed individually: the copy must be
      // durable before the slot it vacated is overwritten, otherwise a
      // crash mid-shift loses an entry (the original CDDS flushes per
      // moved element for exactly this reason).
      nvm::persist(&leaf->entries[i], sizeof(Entry));
    }
    nvm::store(leaf->entries[pos], Entry{k, v, next_version(), Leaf::kInfinity});
    nvm::persist(&leaf->entries[pos], sizeof(Entry));
    nvm::store_release(leaf->count, n + 1);
    nvm::persist(&leaf->count, sizeof(std::uint64_t));
  }

  /// Guarantee a free slot, garbage-collecting or splitting as needed.
  /// Returns the leaf covering @p k afterwards, or nullptr when a split is
  /// required but the pool is exhausted (the leaf is left untouched).
  Leaf* ensure_space(Leaf* leaf, Key k) {
    if (leaf->count.load(std::memory_order_relaxed) < Leaf::kCap) return leaf;
    nvm::UndoSlot& undo = my_undo();
    leaf->vlock.lock();
    const std::uint64_t live = leaf->live_count();
    const Leaf* src;

    if (live < Leaf::kCap / 2) {
      // GC compaction (allocation-free): drop dead versions in place.
      leaf->vlock.set_split();
      this->stats_.count_compaction();
      begin_undo(undo, leaf, 0);
      src = reinterpret_cast<const Leaf*>(undo.data);
      compact_into(leaf, src, 0, Leaf::kCap, nullptr);
      nvm::persist(leaf, sizeof(Leaf));
      end_undo(undo);
      leaf->vlock.unset_split_and_bump();
      leaf->vlock.unlock();
      return leaf;
    }

    // Pre-flight: sibling space before the splitting bit / undo logging.
    const std::uint64_t new_off = this->pool_.alloc(sizeof(Leaf));
    if (new_off == 0) {
      leaf->vlock.unlock();
      return nullptr;
    }
    this->stats_.count_split();
    leaf->vlock.set_split();
    begin_undo(undo, leaf, new_off);
    src = reinterpret_cast<const Leaf*>(undo.data);

    // Live entries are already sorted in src; find the median live key.
    std::vector<const Entry*> live_entries;
    const auto n = src->count.load(std::memory_order_relaxed);
    for (std::uint64_t i = 0; i < n; ++i)
      if (src->entries[i].end_version == Leaf::kInfinity)
        live_entries.push_back(&src->entries[i]);
    const std::size_t half = live_entries.size() / 2;
    const Key split_key = live_entries[half]->key;

    Leaf* nl = this->pool_.template ptr<Leaf>(new_off);
    nl->init();
    std::uint64_t moved = 0;
    for (std::size_t i = half; i < live_entries.size(); ++i)
      nvm::store(nl->entries[moved++], *live_entries[i]);
    nl->count.store(moved, std::memory_order_relaxed);
    nl->next.store(src->next.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    nl->high_key.store(src->high_key.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    nl->has_high.store(src->has_high.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    nvm::on_modified(nl, sizeof(Leaf));
    nvm::persist(nl, sizeof(Leaf));

    std::uint64_t kept = 0;
    for (std::size_t i = 0; i < half; ++i)
      nvm::store(leaf->entries[kept++], *live_entries[i]);
    nvm::store_release(leaf->count, kept);
    leaf->next.store(new_off, std::memory_order_relaxed);
    leaf->high_key.store(split_key, std::memory_order_relaxed);
    leaf->has_high.store(1, std::memory_order_relaxed);
    nvm::on_modified(leaf, sizeof(Leaf));
    nvm::persist(leaf, sizeof(Leaf));

    end_undo(undo);
    leaf->vlock.unset_split_and_bump();
    this->inner_.insert_split(split_key, leaf, nl);
    leaf->vlock.unlock();
    return k < split_key ? leaf : nl;
  }

  void compact_into(Leaf* dst, const Leaf* src, std::uint64_t from,
                    std::uint64_t to, std::uint64_t* out_count) {
    std::uint64_t kept = 0;
    const auto n = src->count.load(std::memory_order_relaxed);
    for (std::uint64_t i = from; i < to && i < n; ++i)
      if (src->entries[i].end_version == Leaf::kInfinity)
        nvm::store(dst->entries[kept++], src->entries[i]);
    nvm::store_release(dst->count, kept);
    if (out_count != nullptr) *out_count = kept;
  }

  std::atomic<std::uint64_t> version_{0};
};

}  // namespace rnt::baselines
