// FPTree baseline [6], re-implemented per the paper's S3.1/S6 description:
//
//   * append-only unsorted leaf guided by a persistent occupancy bitmap,
//   * one-byte key fingerprints to cut the linear-scan cost of find,
//   * THREE persistent instructions per insert/update (KV, fingerprint,
//     bitmap — Table 1/S6.2.2) and ONE per remove (bitmap only, which is
//     why FPTree wins the remove microbenchmark),
//   * conditional-write semantics are inherent: log positions are reused,
//     so the tree must never hold two live entries with the same key,
//   * "selective concurrency": traversal is HTM-protected (wait-free here),
//     but a modify locks the WHOLE leaf for its full duration INCLUDING the
//     flushes, and a find that encounters a locked leaf aborts and retries
//     from the root — precisely the behaviours that cap FPTree's
//     scalability in the paper's Figs 8-10.
#pragma once

#include <algorithm>
#include <optional>

#include "baselines/tree_shell.hpp"
#include "common/cacheline.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "htm/version_lock.hpp"
#include "obs/op_trace.hpp"

namespace rnt::baselines {

template <typename Key, typename Value>
struct alignas(kCacheLineSize) FpLeaf {
  static_assert(sizeof(Key) == 8 && sizeof(Value) == 8);
  static constexpr std::uint32_t kLogCap = 64;

  struct Entry {
    Key key;
    Value value;
  };

  // ---- line 0: header ----
  std::atomic<std::uint64_t> bitmap;  ///< persistent occupancy bitmap
  htm::VersionLock vlock;             ///< volatile: lock + split version
  std::atomic<std::uint64_t> next;
  std::atomic<Key> high_key;
  std::atomic<std::uint32_t> has_high;
  std::uint8_t pad0_[kCacheLineSize - 36];

  // ---- line 1: fingerprints ----
  std::uint8_t fp[kCacheLineSize];  ///< 1-byte key hashes (persistent)

  // ---- lines 2+: KV entries ----
  Entry logs[kLogCap];

  void init() noexcept {
    bitmap.store(0, std::memory_order_relaxed);
    vlock.reset();
    next.store(0, std::memory_order_relaxed);
    high_key.store(Key{}, std::memory_order_relaxed);
    has_high.store(0, std::memory_order_relaxed);
    std::memset(fp, 0, sizeof(fp));
  }

  static std::uint8_t fingerprint(Key k) noexcept {
    return static_cast<std::uint8_t>(mix64(static_cast<std::uint64_t>(k)));
  }

  /// Occupied position holding @p k, or -1 (fingerprint-filtered scan).
  int find_slot(Key k, std::uint64_t bm) const noexcept {
    const std::uint8_t h = fingerprint(k);
    std::uint64_t m = bm;
    while (m != 0) {
      const int i = __builtin_ctzll(m);
      if (fp[i] == h && logs[i].key == k) return i;
      m &= m - 1;
    }
    return -1;
  }
};

template <typename Key = std::uint64_t, typename Value = std::uint64_t>
class FPTree : public TreeShell<Key, FpLeaf<Key, Value>> {
  using Shell = TreeShell<Key, FpLeaf<Key, Value>>;
  using Shell::beyond, Shell::locate, Shell::leftmost, Shell::next_leaf;
  using Shell::begin_undo, Shell::end_undo, Shell::my_undo;

 public:
  using Leaf = FpLeaf<Key, Value>;
  using Entry = typename Leaf::Entry;

  struct Options {
    int root_slot = 0;
  };

  explicit FPTree(nvm::PmemPool& pool, Options opt = {})
      : Shell(pool, opt.root_slot, /*fresh=*/true) {}

  struct recover_t {};
  FPTree(recover_t, nvm::PmemPool& pool, Options opt = {})
      : Shell(pool, opt.root_slot, /*fresh=*/false) {
    const bool crashed = !pool.clean_shutdown();
    pool.mark_dirty();  // dirty strictly before any recovery-time mutation
    if (crashed) this->roll_back_splits();
    this->recover_chain([](Leaf* leaf) -> std::uint64_t {
      return static_cast<std::uint64_t>(
          __builtin_popcountll(leaf->bitmap.load(std::memory_order_relaxed)));
    });
  }

  common::Status insert(Key k, Value v) {
    obs::OpTrace tr(obs::OpKind::kInsert, k);
    const common::Status s = modify(k, v, Mode::kInsert);
    tr.finish(static_cast<bool>(s));
    return s;
  }
  common::Status update(Key k, Value v) {
    obs::OpTrace tr(obs::OpKind::kUpdate, k);
    const common::Status s = modify(k, v, Mode::kUpdate);
    tr.finish(static_cast<bool>(s));
    return s;
  }
  common::Status upsert(Key k, Value v) {
    obs::OpTrace tr(obs::OpKind::kUpsert, k);
    const common::Status s = modify(k, v, Mode::kUpsert);
    tr.finish(static_cast<bool>(s));
    return s;
  }

  bool remove(Key k) {
    obs::OpTrace tr(obs::OpKind::kRemove, k);
    for (;;) {
      epoch::Guard g = this->epochs_.pin();
      Leaf* leaf = locate(k);
      leaf->vlock.lock();
      if (beyond(leaf, k)) {
        leaf->vlock.unlock();
        continue;
      }
      const std::uint64_t bm = leaf->bitmap.load(std::memory_order_relaxed);
      const int slot = leaf->find_slot(k, bm);
      if (slot < 0) {
        leaf->vlock.unlock();
        return tr.finish(false);
      }
      // One persistent instruction: reset the bitmap bit.
      nvm::store_release(leaf->bitmap, std::uint64_t{bm & ~(1ull << slot)});
      nvm::persist(&leaf->bitmap, sizeof(std::uint64_t));
      this->size_.fetch_sub(1, std::memory_order_relaxed);
      leaf->vlock.unlock_and_bump();
      return tr.finish(true);
    }
  }

  /// find: wait-free traversal, then an optimistic leaf read that ABORTS TO
  /// THE ROOT whenever the leaf is locked or changes underneath — FPTree's
  /// documented behaviour, and the cause of its read latency under
  /// contention (Fig 9).
  std::optional<Value> find(Key k) const {
    obs::OpTrace tr(obs::OpKind::kFind, k);
    for (;;) {
      epoch::Guard g = this->epochs_.pin();
      Leaf* leaf = this->inner_.find_leaf(k);
      const std::uint64_t v = leaf->vlock.raw();
      if (htm::VersionLock::locked(v) || htm::VersionLock::splitting(v)) {
        this->stats_.count_find_retry();
        cpu_relax();
        continue;  // abort the "transaction", retraverse from the root
      }
      if (beyond(leaf, k)) continue;  // stale snapshot; retraverse
      const std::uint64_t bm = leaf->bitmap.load(std::memory_order_acquire);
      const int slot = leaf->find_slot(k, bm);
      std::optional<Value> res;
      if (slot >= 0) res = leaf->logs[slot].value;
      if (leaf->vlock.raw() != v) {
        this->stats_.count_find_retry();
        continue;  // a writer intervened: retry from the root
      }
      tr.finish(res.has_value());
      return res;
    }
  }

  /// Range query: unsorted leaves must be materialised and sorted per leaf
  /// (Fig 6's cost).
  template <typename Fn>
  std::size_t scan(Key start, Fn&& fn) const {
    obs::OpTrace tr(obs::OpKind::kScan, start);
    epoch::Guard g = this->epochs_.pin();
    std::size_t visited = 0;
    Leaf* leaf = locate(start);
    bool first = true;
    while (leaf != nullptr) {
      std::vector<Entry> batch;
      const std::uint64_t v = leaf->vlock.raw();
      if (htm::VersionLock::locked(v) || htm::VersionLock::splitting(v)) {
        cpu_relax();
        continue;
      }
      std::uint64_t bm = leaf->bitmap.load(std::memory_order_acquire);
      while (bm != 0) {
        const int i = __builtin_ctzll(bm);
        batch.push_back(leaf->logs[i]);
        bm &= bm - 1;
      }
      Leaf* nxt = next_leaf(leaf);
      if (leaf->vlock.raw() != v) continue;  // writer raced: redo this leaf
      std::sort(batch.begin(), batch.end(),
                [](const Entry& a, const Entry& b) { return a.key < b.key; });
      for (const Entry& e : batch) {
        if (first && e.key < start) continue;
        ++visited;
        if (!fn(e.key, e.value)) {
          tr.finish(visited > 0);
          return visited;
        }
      }
      first = false;
      leaf = nxt;
    }
    tr.finish(visited > 0);
    return visited;
  }

  std::size_t scan_n(Key start, std::size_t n,
                     std::vector<std::pair<Key, Value>>& out) const {
    out.clear();
    out.reserve(n);
    scan(start, [&](Key k, Value v) {
      out.emplace_back(k, v);
      return out.size() < n;
    });
    return out.size();
  }

 private:
  enum class Mode { kInsert, kUpdate, kUpsert };

  /// Selective concurrency: the WHOLE modify, including every flush, runs
  /// under the leaf lock (the design decision the paper's S3.4 critiques).
  common::Status modify(Key k, Value v, Mode mode) {
    for (;;) {
      epoch::Guard g = this->epochs_.pin();
      Leaf* leaf = locate(k);
      leaf->vlock.lock();
      if (beyond(leaf, k)) {
        leaf->vlock.unlock();
        continue;
      }
      std::uint64_t bm = leaf->bitmap.load(std::memory_order_relaxed);
      int existing = leaf->find_slot(k, bm);
      if (mode == Mode::kInsert && existing >= 0) {
        leaf->vlock.unlock();
        return common::StatusCode::kKeyExists;
      }
      if (mode == Mode::kUpdate && existing < 0) {
        leaf->vlock.unlock();
        return common::StatusCode::kKeyAbsent;
      }
      constexpr std::uint64_t kFullMask =
          Leaf::kLogCap >= 64 ? ~0ull : ((1ull << Leaf::kLogCap) - 1);
      const std::uint64_t free_mask = ~bm & kFullMask;
      if (free_mask == 0) {
        // No free position for the out-of-place write: split (splits keep
        // the lock; find aborts meanwhile).  A full bitmap means 64 live
        // entries — there is no compaction variant to fall back on, so an
        // exhausted pool refuses the op with the leaf untouched (removes
        // clear bits directly and free positions without allocating).
        const common::Status s = split_locked(leaf);
        leaf->vlock.unlock_and_bump();
        if (!s) return s;
        continue;
      }
      const int slot = __builtin_ctzll(free_mask);
      // Persist #1: the KV entry.
      nvm::store(leaf->logs[slot], Entry{k, v});
      nvm::persist(&leaf->logs[slot], sizeof(Entry));
      // Persist #2: the fingerprint.
      nvm::store(leaf->fp[slot], Leaf::fingerprint(k));
      nvm::persist(&leaf->fp[slot], 1);
      // Persist #3: the bitmap — atomically sets the new bit and, for an
      // update, clears the old one (the 8-byte atomic write that commits
      // the operation).
      std::uint64_t nbm = bm | (1ull << slot);
      if (existing >= 0) nbm &= ~(1ull << existing);
      nvm::store_release(leaf->bitmap, nbm);
      nvm::persist(&leaf->bitmap, sizeof(std::uint64_t));
      if (existing < 0) this->size_.fetch_add(1, std::memory_order_relaxed);
      leaf->vlock.unlock_and_bump();
      return common::OkStatus();
    }
  }

  /// Split under the held lock (undo-logged like the other trees).  Returns
  /// kPoolExhausted — with the leaf untouched — when no sibling can be
  /// allocated.
  common::Status split_locked(Leaf* leaf) {
    // Gather and sort live entries to choose the median.
    std::vector<Entry> live;
    std::uint64_t bm = leaf->bitmap.load(std::memory_order_relaxed);
    while (bm != 0) {
      const int i = __builtin_ctzll(bm);
      live.push_back(leaf->logs[i]);
      bm &= bm - 1;
    }
    std::sort(live.begin(), live.end(),
              [](const Entry& a, const Entry& b) { return a.key < b.key; });

    // Pre-flight: sibling space before the splitting bit / undo logging.
    const std::uint64_t new_off = this->pool_.alloc(sizeof(Leaf));
    if (new_off == 0) return common::StatusCode::kPoolExhausted;
    nvm::UndoSlot& undo = my_undo();
    leaf->vlock.set_split();
    begin_undo(undo, leaf, new_off);
    const Leaf* src = reinterpret_cast<const Leaf*>(undo.data);
    this->stats_.count_split();

    Leaf* nl = this->pool_.template ptr<Leaf>(new_off);
    nl->init();
    const std::size_t half = live.size() / 2;
    const Key split_key = live[half].key;

    fill(nl, live, half, live.size());
    nl->next.store(src->next.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    nl->high_key.store(src->high_key.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    nl->has_high.store(src->has_high.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    nvm::on_modified(nl, sizeof(Leaf));
    nvm::persist(nl, sizeof(Leaf));

    fill(leaf, live, 0, half);
    leaf->next.store(new_off, std::memory_order_relaxed);
    leaf->high_key.store(split_key, std::memory_order_relaxed);
    leaf->has_high.store(1, std::memory_order_relaxed);
    nvm::on_modified(leaf, sizeof(Leaf));
    nvm::persist(leaf, sizeof(Leaf));

    end_undo(undo);
    leaf->vlock.unset_split_and_bump();
    this->inner_.insert_split(split_key, leaf, nl);
    return common::OkStatus();
  }

  static void fill(Leaf* dst, const std::vector<Entry>& live, std::size_t from,
                   std::size_t to) {
    std::uint64_t bm = 0;
    for (std::size_t i = from; i < to; ++i) {
      const std::size_t s = i - from;
      nvm::store(dst->logs[s], live[i]);
      dst->fp[s] = Leaf::fingerprint(live[i].key);
      bm |= 1ull << s;
    }
    nvm::on_modified(dst->fp, kCacheLineSize);
    dst->bitmap.store(bm, std::memory_order_relaxed);
  }
};

}  // namespace rnt::baselines
