// NVTree baseline [8], re-implemented per the paper's S6 description:
//
//   * append-only unsorted leaf: every insert/update/remove appends a log
//     entry at the end and bumps the persistent nElement counter — exactly
//     2 persistent instructions per modify (Table 1),
//   * the paper's optimisation is applied: update appends a single entry
//     (no remove+insert pair) and reads scan the log back-to-front so the
//     newest entry for a key wins,
//   * find/range query must scan (and, for ranges, sort) whole leaves,
//   * optional conditional-write mode (S3.3/Fig 5): insert/update first scan
//     the leaf for the key's existence, costing ~19% extra,
//   * single-threaded by design, like the original (Table 1: no concurrency).
//
// Deviations from the original NVTree also follow the paper's re-
// implementation notes: the static internal-node architecture is replaced by
// the shared volatile inner tree.
#pragma once

#include <algorithm>
#include <optional>

#include "baselines/tree_shell.hpp"
#include "common/cacheline.hpp"
#include "common/status.hpp"
#include "htm/version_lock.hpp"
#include "obs/op_trace.hpp"

namespace rnt::baselines {

template <typename Key, typename Value>
struct alignas(kCacheLineSize) NvLeaf {
  static_assert(sizeof(Key) == 8 && sizeof(Value) == 8);
  static constexpr std::uint32_t kLogCap = 64;

  enum Op : std::uint64_t { kInsertLog = 1, kRemoveLog = 2 };

  /// 32-byte log entry (flag + KV), two per cache line, never straddling.
  struct Entry {
    std::uint64_t flag;
    Key key;
    Value value;
    std::uint64_t pad;
  };
  static_assert(sizeof(Entry) == 32);

  // ---- line 0: header ----
  std::atomic<std::uint64_t> n_element;  ///< persisted log count (the metadata)
  htm::VersionLock vlock;                ///< volatile (recovery resets)
  std::atomic<std::uint64_t> next;
  std::atomic<Key> high_key;
  std::atomic<std::uint32_t> has_high;
  std::uint8_t pad0_[kCacheLineSize - 36];

  // ---- lines 1+: append-only log ----
  Entry logs[kLogCap];

  void init() noexcept {
    n_element.store(0, std::memory_order_relaxed);
    vlock.reset();
    next.store(0, std::memory_order_relaxed);
    high_key.store(Key{}, std::memory_order_relaxed);
    has_high.store(0, std::memory_order_relaxed);
  }

  /// Newest entry for @p k.  Faithful to the paper's cost model: "read-only
  /// operations have to scan the whole nodes" — every log entry is examined
  /// and the last match wins (no early exit).
  const Entry* newest(Key k, std::uint64_t n) const noexcept {
    const Entry* found = nullptr;
    for (std::uint64_t i = 0; i < n; ++i)
      if (logs[i].key == k) found = &logs[i];
    return found;
  }

  /// Materialise the live (deduplicated, remove-applied) set, unsorted.
  template <typename OutFn>
  void live_entries(std::uint64_t n, OutFn&& out) const {
    // Back-to-front: the first occurrence of a key is its newest entry.
    // Quadratic in the log length — faithfully the cost structure the
    // paper charges unsorted leaves with.
    for (std::uint64_t i = n; i > 0; --i) {
      const Entry& e = logs[i - 1];
      bool superseded = false;
      for (std::uint64_t j = n; j > i; --j)
        if (logs[j - 1].key == e.key) {
          superseded = true;
          break;
        }
      if (!superseded && e.flag == kInsertLog) out(e.key, e.value);
    }
  }
};

template <typename Key = std::uint64_t, typename Value = std::uint64_t>
class NVTree : public TreeShell<Key, NvLeaf<Key, Value>> {
  using Shell = TreeShell<Key, NvLeaf<Key, Value>>;
  using Shell::beyond, Shell::locate, Shell::leftmost, Shell::next_leaf;
  using Shell::begin_undo, Shell::end_undo, Shell::my_undo;

 public:
  using Leaf = NvLeaf<Key, Value>;
  using Entry = typename Leaf::Entry;

  struct Options {
    /// Fig 5: scan the leaf for key existence before every modify so
    /// insert/update have conditional (unique-key) semantics.
    bool conditional_write = false;
    int root_slot = 0;
  };

  explicit NVTree(nvm::PmemPool& pool, Options opt = {})
      : Shell(pool, opt.root_slot, /*fresh=*/true), opt_(opt) {}

  struct recover_t {};
  NVTree(recover_t, nvm::PmemPool& pool, Options opt = {})
      : Shell(pool, opt.root_slot, /*fresh=*/false), opt_(opt) {
    const bool crashed = !pool.clean_shutdown();
    pool.mark_dirty();  // dirty strictly before any recovery-time mutation
    if (crashed) this->roll_back_splits();
    this->recover_chain([](Leaf* leaf) -> std::uint64_t {
      // nElement is persisted on every modify: the leaf is self-describing.
      std::uint64_t live = 0;
      leaf->live_entries(leaf->n_element.load(std::memory_order_relaxed),
                         [&](Key, Value) { ++live; });
      return live;
    });
  }

  common::Status insert(Key k, Value v) {
    obs::OpTrace tr(obs::OpKind::kInsert, k);
    const common::Status s = modify(k, v, Leaf::kInsertLog, false);
    tr.finish(static_cast<bool>(s));
    return s;
  }
  common::Status update(Key k, Value v) {
    obs::OpTrace tr(obs::OpKind::kUpdate, k);
    const common::Status s = modify(k, v, Leaf::kInsertLog, true);
    tr.finish(static_cast<bool>(s));
    return s;
  }
  common::Status upsert(Key k, Value v) {
    // One OpTrace for the whole upsert: calls modify directly (not the
    // instrumented insert/update wrappers) so a single op.upsert is
    // recorded.  Without conditional mode insert==update==append; with it,
    // try both.
    obs::OpTrace tr(obs::OpKind::kUpsert, k);
    if (opt_.conditional_write) {
      const common::Status u = modify(k, v, Leaf::kInsertLog, true);
      if (u || u.pool_exhausted()) {
        tr.finish(static_cast<bool>(u));
        return u;
      }
    }
    const common::Status s = modify(k, v, Leaf::kInsertLog, false);
    tr.finish(static_cast<bool>(s));
    return s;
  }

  /// Remove appends a log entry, so (unlike the in-place trees) it consumes
  /// space and can report kPoolExhausted on a full leaf in a full pool.
  common::Status remove(Key k) {
    obs::OpTrace tr(obs::OpKind::kRemove, k);
    epoch::Guard g = this->epochs_.pin();
    Leaf* leaf = locate(k);
    std::uint64_t n = leaf->n_element.load(std::memory_order_relaxed);
    if (opt_.conditional_write) {
      const Entry* cur = leaf->newest(k, n);
      if (cur == nullptr || cur->flag == Leaf::kRemoveLog) {
        tr.finish(false);
        return common::StatusCode::kKeyAbsent;
      }
    }
    if (n >= Leaf::kLogCap) {
      leaf = split(leaf, k);
      if (leaf == nullptr) {
        tr.finish(false);
        return common::StatusCode::kPoolExhausted;
      }
      n = leaf->n_element.load(std::memory_order_relaxed);
    }
    // Basic (non-conditional) NVTree appends the remove log blindly; the
    // size counter is then approximate, matching the original's semantics.
    append(leaf, n, Entry{Leaf::kRemoveLog, k, Value{}, 0});
    this->size_.fetch_sub(1, std::memory_order_relaxed);
    tr.finish(true);
    return common::OkStatus();
  }

  std::optional<Value> find(Key k) const {
    obs::OpTrace tr(obs::OpKind::kFind, k);
    epoch::Guard g = this->epochs_.pin();
    Leaf* leaf = locate(k);
    const std::uint64_t n = leaf->n_element.load(std::memory_order_acquire);
    const Entry* e = leaf->newest(k, n);
    if (e == nullptr || e->flag == Leaf::kRemoveLog) {
      tr.finish(false);
      return std::nullopt;
    }
    tr.finish(true);
    return e->value;
  }

  /// Range query: each visited leaf must be materialised and sorted first —
  /// the cost the paper's Fig 6 quantifies.
  template <typename Fn>
  std::size_t scan(Key start, Fn&& fn) const {
    obs::OpTrace tr(obs::OpKind::kScan, start);
    epoch::Guard g = this->epochs_.pin();
    std::size_t visited = 0;
    Leaf* leaf = locate(start);
    bool first = true;
    while (leaf != nullptr) {
      std::vector<std::pair<Key, Value>> batch;
      leaf->live_entries(leaf->n_element.load(std::memory_order_acquire),
                         [&](Key k, Value v) { batch.emplace_back(k, v); });
      std::sort(batch.begin(), batch.end());
      for (auto& [k, v] : batch) {
        if (first && k < start) continue;
        ++visited;
        if (!fn(k, v)) {
          tr.finish(visited > 0);
          return visited;
        }
      }
      first = false;
      leaf = next_leaf(leaf);
    }
    tr.finish(visited > 0);
    return visited;
  }

  std::size_t scan_n(Key start, std::size_t n,
                     std::vector<std::pair<Key, Value>>& out) const {
    out.clear();
    out.reserve(n);
    scan(start, [&](Key k, Value v) {
      out.emplace_back(k, v);
      return out.size() < n;
    });
    return out.size();
  }

  bool conditional_write() const noexcept { return opt_.conditional_write; }

 private:
  /// Append + bump nElement: the two persistent instructions.
  void append(Leaf* leaf, std::uint64_t n, const Entry& e) {
    nvm::store(leaf->logs[n], e);
    nvm::persist(&leaf->logs[n], sizeof(Entry));
    nvm::store_release(leaf->n_element, n + 1);
    nvm::persist(&leaf->n_element, sizeof(std::uint64_t));
  }

  common::Status modify(Key k, Value v, std::uint64_t flag, bool must_exist) {
    epoch::Guard g = this->epochs_.pin();
    Leaf* leaf = locate(k);
    std::uint64_t n = leaf->n_element.load(std::memory_order_relaxed);
    if (opt_.conditional_write) {
      // The ~19% overhead: a full existence scan before the append.
      const Entry* cur = leaf->newest(k, n);
      const bool exists = cur != nullptr && cur->flag == Leaf::kInsertLog;
      if (must_exist && !exists) return common::StatusCode::kKeyAbsent;
      if (!must_exist && exists) return common::StatusCode::kKeyExists;
    }
    if (n >= Leaf::kLogCap) {
      leaf = split(leaf, k);
      // Exhausted and not compactable: leaf untouched, op cleanly refused.
      if (leaf == nullptr) return common::StatusCode::kPoolExhausted;
      n = leaf->n_element.load(std::memory_order_relaxed);
    }
    // In conditional mode the existence scan above makes this exact; the
    // basic mode appends with no existence knowledge, so size becomes
    // approximate (the original NVTree tracks no size at all).
    append(leaf, n, Entry{flag, k, v, 0});
    if (!must_exist) this->size_.fetch_add(1, std::memory_order_relaxed);
    return common::OkStatus();
  }

  /// Split: gather + sort live entries (the slow part the paper calls out:
  /// "NVTree has to sort all data in the node before splitting"), then
  /// either compact in place (few live entries) or divide into two leaves.
  /// Returns the leaf now covering @p k, or nullptr when a real split is
  /// needed but the pool cannot supply a sibling (the leaf is untouched).
  Leaf* split(Leaf* leaf, Key k) {
    std::vector<std::pair<Key, Value>> live;
    leaf->live_entries(leaf->n_element.load(std::memory_order_relaxed),
                       [&](Key key, Value val) { live.emplace_back(key, val); });
    std::sort(live.begin(), live.end());

    nvm::UndoSlot& undo = my_undo();

    if (live.size() < Leaf::kLogCap / 2) {
      // Compaction: rewrite the log area with only live inserts.
      leaf->vlock.lock();
      leaf->vlock.set_split();
      this->stats_.count_compaction();
      begin_undo(undo, leaf, 0);
      rewrite(leaf, live, 0, live.size());
      nvm::persist(leaf, sizeof(Leaf));
      end_undo(undo);
      leaf->vlock.unset_split_and_bump();
      leaf->vlock.unlock();
      return beyond(leaf, k) ? locate(k) : leaf;
    }

    // Pre-flight: secure the sibling's space before the lock/splitting bit
    // so exhaustion is detected while nothing has been mutated.
    const std::uint64_t new_off = this->pool_.alloc(sizeof(Leaf));
    if (new_off == 0) return nullptr;
    this->stats_.count_split();
    leaf->vlock.lock();
    leaf->vlock.set_split();
    begin_undo(undo, leaf, new_off);

    Leaf* nl = this->pool_.template ptr<Leaf>(new_off);
    nl->init();
    const std::size_t half = live.size() / 2;
    const Key split_key = live[half].first;
    rewrite(nl, live, half, live.size());
    nl->next.store(leaf->next.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    nl->high_key.store(leaf->high_key.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    nl->has_high.store(leaf->has_high.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    nvm::on_modified(nl, sizeof(Leaf));
    nvm::persist(nl, sizeof(Leaf));

    rewrite(leaf, live, 0, half);
    leaf->next.store(new_off, std::memory_order_relaxed);
    leaf->high_key.store(split_key, std::memory_order_relaxed);
    leaf->has_high.store(1, std::memory_order_relaxed);
    nvm::on_modified(leaf, sizeof(Leaf));
    nvm::persist(leaf, sizeof(Leaf));

    end_undo(undo);
    leaf->vlock.unset_split_and_bump();
    this->inner_.insert_split(split_key, leaf, nl);
    leaf->vlock.unlock();
    return k < split_key ? leaf : nl;
  }

  void rewrite(Leaf* leaf, const std::vector<std::pair<Key, Value>>& live,
               std::size_t from, std::size_t to) {
    for (std::size_t i = from; i < to; ++i)
      nvm::store(leaf->logs[i - from],
                 Entry{Leaf::kInsertLog, live[i].first, live[i].second, 0});
    nvm::store_release(leaf->n_element, static_cast<std::uint64_t>(to - from));
  }

  Options opt_;
};

}  // namespace rnt::baselines
