// Shared plumbing for the re-implemented baseline trees (paper S6: "The
// structures for all the internal nodes are the same in all implementations.
// The only difference is the design of the leaf node.").
//
// TreeShell provides exactly that common substrate: the volatile inner tree,
// pool/root bookkeeping, the B-link high_key chase, split undo logging, the
// recovery walk, and the size counter.  Each baseline derives from it and
// implements its own leaf layout and operation algorithms.
//
// Leaf requirements (duck-typed):
//   htm::VersionLock vlock;  std::atomic<uint64_t> next;
//   std::atomic<Key> high_key;  std::atomic<uint32_t> has_high;
//   void init();
#pragma once

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/thread_id.hpp"
#include "epoch/ebr.hpp"
#include "inner/inner_tree.hpp"
#include "nvm/pool.hpp"
#include "obs/metrics.hpp"

namespace rnt::baselines {

namespace detail {

// Process-wide structural counters shared by every baseline instantiation;
// each ShellStats keeps its own per-instance atomics and mirrors here.
struct ShellCounters {
  obs::Counter splits{"shell.splits"};
  obs::Counter compactions{"shell.compactions"};
  obs::Counter find_retries{"shell.find_retries"};
};

inline const ShellCounters& shell_counters() {
  static ShellCounters c;
  return c;
}

}  // namespace detail

struct ShellStats {
  std::atomic<std::uint64_t> splits{0};
  std::atomic<std::uint64_t> compactions{0};
  std::atomic<std::uint64_t> find_retries{0};
  void count_split() noexcept {
    splits.fetch_add(1, std::memory_order_relaxed);
    detail::shell_counters().splits.inc();
  }
  void count_compaction() noexcept {
    compactions.fetch_add(1, std::memory_order_relaxed);
    detail::shell_counters().compactions.inc();
  }
  void count_find_retry() noexcept {
    find_retries.fetch_add(1, std::memory_order_relaxed);
    detail::shell_counters().find_retries.inc();
  }
  void reset() noexcept {
    splits = 0;
    compactions = 0;
    find_retries = 0;
  }
};

template <typename Key, typename LeafT>
class TreeShell {
 public:
  using Leaf = LeafT;

  TreeShell(nvm::PmemPool& pool, int root_slot, bool fresh)
      : pool_(pool), root_slot_(root_slot), inner_(epochs_) {
    if (fresh) {
      // Dirty-flag protocol: clear the clean flag (durably) strictly before
      // the first pool mutation, so a crash mid-construction always routes
      // the next open down the crash-recovery path.
      pool_.mark_dirty();
      const std::uint64_t off = pool_.alloc(sizeof(Leaf));
      if (off == 0) throw std::bad_alloc();
      Leaf* leaf = pool_.ptr<Leaf>(off);
      leaf->init();
      nvm::on_modified(leaf, sizeof(Leaf));
      nvm::persist(leaf, sizeof(Leaf));
      pool_.set_root(root_slot, off);
      inner_.init_single(leaf);
    }
    // Recovery path: derived constructor calls recover_chain() after any
    // leaf-specific undo processing.
  }

  TreeShell(const TreeShell&) = delete;
  TreeShell& operator=(const TreeShell&) = delete;

  std::size_t size() const noexcept {
    return static_cast<std::size_t>(size_.load(std::memory_order_relaxed));
  }
  int height() const noexcept { return inner_.height(); }
  const ShellStats& stats() const noexcept { return stats_; }
  ShellStats& stats() noexcept { return stats_; }

  std::size_t leaf_count() const {
    std::size_t n = 0;
    for (Leaf* l = leftmost(); l != nullptr; l = next_leaf(l)) ++n;
    return n;
  }

  /// Flush every leaf and mark the pool cleanly closed.  All persistent
  /// leaf state is already durable operation-by-operation; the extra full
  /// flush makes close() safe to call even mid-epoch and keeps the contract
  /// "data durable strictly before the clean flag" self-evident.
  void close() {
    for (Leaf* l = leftmost(); l != nullptr; l = next_leaf(l)) {
      nvm::on_modified(l, sizeof(Leaf));
      nvm::persist(l, sizeof(Leaf));
    }
    pool_.close_clean();
  }

 protected:
  Leaf* leftmost() const noexcept {
    return pool_.ptr<Leaf>(pool_.root(root_slot_));
  }
  Leaf* next_leaf(Leaf* l) const noexcept {
    return pool_.ptr<Leaf>(l->next.load(std::memory_order_acquire));
  }

  static bool beyond(const Leaf* leaf, Key k) noexcept {
    return leaf->has_high.load(std::memory_order_acquire) != 0 &&
           !(k < leaf->high_key.load(std::memory_order_acquire));
  }

  /// B-link chase to the leaf covering k (validated against splits).
  Leaf* chase(Leaf* leaf, Key k) const {
    for (;;) {
      const std::uint64_t v = leaf->vlock.stable_version();
      if (!beyond(leaf, k)) return leaf;
      Leaf* nxt = pool_.ptr<Leaf>(leaf->next.load(std::memory_order_acquire));
      if (leaf->vlock.stable_version() != v || nxt == nullptr) continue;
      leaf = nxt;
    }
  }

  /// Traverse + chase under the caller's epoch guard.
  Leaf* locate(Key k) const { return chase(inner_.find_leaf(k), k); }

  // --- split undo logging (identical discipline to RNTree's) ---

  void begin_undo(nvm::UndoSlot& undo, Leaf* leaf, std::uint64_t aux_off) {
    static_assert(sizeof(Leaf) <= nvm::UndoSlot::kDataSize);
    nvm::copy_nvm(undo.data, leaf, sizeof(Leaf));
    nvm::store(undo.target_off, pool_.off(leaf));
    nvm::store(undo.aux_off, aux_off);
    nvm::store(undo.data_size, std::uint64_t{sizeof(Leaf)});
    nvm::persist(&undo, sizeof(undo));
    nvm::store(undo.state, std::uint64_t{nvm::UndoSlot::kActive});
    nvm::persist(&undo.state, sizeof(undo.state));
  }

  void end_undo(nvm::UndoSlot& undo) {
    nvm::store(undo.state, std::uint64_t{nvm::UndoSlot::kIdle});
    nvm::persist(&undo.state, sizeof(undo.state));
  }

  nvm::UndoSlot& my_undo() { return pool_.undo_slot(pmem_thread_id()); }

  /// Roll back any in-flight split recorded in the undo area (crash path).
  void roll_back_splits() {
    for (int t = 0; t < nvm::kMaxThreads; ++t) {
      nvm::UndoSlot& undo = pool_.undo_slot(t);
      if (undo.state != nvm::UndoSlot::kActive) continue;
      if (undo.data_size != sizeof(Leaf)) continue;
      Leaf* target = pool_.ptr<Leaf>(undo.target_off);
      nvm::copy_nvm(target, undo.data, sizeof(Leaf));
      nvm::persist(target, sizeof(Leaf));
      if (undo.aux_off != 0) pool_.free(undo.aux_off, sizeof(Leaf));
      nvm::store(undo.state, std::uint64_t{nvm::UndoSlot::kIdle});
      nvm::persist(&undo.state, sizeof(undo.state));
    }
  }

  /// Walk the persistent chain, let the derived class fix up each leaf and
  /// report its live-entry count, then bulk-load the inner tree from the
  /// high_key separators.  FixFn: std::uint64_t(Leaf*).
  template <typename FixFn>
  void recover_chain(FixFn&& fix) {
    std::vector<Leaf*> leaves;
    std::vector<Key> separators;
    std::uint64_t live = 0;
    for (Leaf* leaf = leftmost(); leaf != nullptr; leaf = next_leaf(leaf)) {
      leaf->vlock.reset();
      live += fix(leaf);
      leaves.push_back(leaf);
      if (leaf->has_high.load(std::memory_order_relaxed) != 0)
        separators.push_back(leaf->high_key.load(std::memory_order_relaxed));
    }
    if (leaves.empty()) throw std::runtime_error("TreeShell: no leaves to recover");
    if (separators.size() + 1 != leaves.size())
      throw std::runtime_error("TreeShell: broken high_key chain");
    size_.store(static_cast<std::int64_t>(live), std::memory_order_relaxed);
    inner_.bulk_load(leaves, separators);
  }

  nvm::PmemPool& pool_;
  int root_slot_;
  mutable epoch::EpochManager epochs_;
  inner::InnerTree<Key, Leaf> inner_;
  std::atomic<std::int64_t> size_{0};
  mutable ShellStats stats_;
};

}  // namespace rnt::baselines
