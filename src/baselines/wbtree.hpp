// wB+tree baselines [7], re-implemented per the paper's S6 description.
//
// Two variants (both single-threaded, like the original):
//
//   * WBTree    — the slot array is a full cache line (63 entries), larger
//     than the 8-byte atomic-write size, so a persistent valid bit guards it:
//     every insert/update costs FOUR persistent instructions
//     (KV, valid:=0, slot array, valid:=1) and remove costs three.
//     After a crash with valid==0 the slot array is rebuilt from the logs.
//
//   * WBTreeSO  — the "slot-only" variant whose slot array fits in exactly
//     8 bytes (count + 7 slots): it can be updated atomically, needing only
//     TWO persistent instructions, but each leaf holds at most 7 entries,
//     making the tree deep and splits frequent (the paper's Fig 4 shows the
//     cost).
#pragma once

#include <optional>

#include "baselines/tree_shell.hpp"
#include "common/cacheline.hpp"
#include "common/status.hpp"
#include "core/slot_util.hpp"
#include "htm/version_lock.hpp"
#include "obs/op_trace.hpp"

namespace rnt::baselines {

// ---------------------------------------------------------------------------
// WBTree — 64-byte slot array + valid bit, 4 persists per modify
// ---------------------------------------------------------------------------

template <typename Key, typename Value>
struct alignas(kCacheLineSize) WbLeaf {
  static_assert(sizeof(Key) == 8 && sizeof(Value) == 8);
  static constexpr std::uint32_t kLogCap = 64;

  struct Entry {
    Key key;
    Value value;
  };

  // ---- line 0: header ----
  std::atomic<std::uint64_t> valid;  ///< persistent slot-array valid flag
  std::atomic<std::uint32_t> nlogs;  ///< volatile; recomputed on recovery
  htm::VersionLock vlock;
  std::atomic<std::uint64_t> next;
  std::atomic<Key> high_key;
  std::atomic<std::uint32_t> has_high;
  std::uint8_t pad0_[kCacheLineSize - 40];

  // ---- line 1: persistent slot array ----
  std::uint8_t pslot[kCacheLineSize];

  // ---- lines 2+: KV log entries ----
  Entry logs[kLogCap];

  void init() noexcept {
    valid.store(1, std::memory_order_relaxed);
    nlogs.store(0, std::memory_order_relaxed);
    vlock.reset();
    next.store(0, std::memory_order_relaxed);
    high_key.store(Key{}, std::memory_order_relaxed);
    has_high.store(0, std::memory_order_relaxed);
    pslot[0] = 0;
  }
};

template <typename Key = std::uint64_t, typename Value = std::uint64_t>
class WBTree : public TreeShell<Key, WbLeaf<Key, Value>> {
  using Shell = TreeShell<Key, WbLeaf<Key, Value>>;
  using Shell::beyond, Shell::locate, Shell::leftmost, Shell::next_leaf;
  using Shell::begin_undo, Shell::end_undo, Shell::my_undo;

 public:
  using Leaf = WbLeaf<Key, Value>;
  using Entry = typename Leaf::Entry;

  struct Options {
    int root_slot = 0;
  };

  explicit WBTree(nvm::PmemPool& pool, Options opt = {})
      : Shell(pool, opt.root_slot, /*fresh=*/true) {}

  struct recover_t {};
  WBTree(recover_t, nvm::PmemPool& pool, Options opt = {})
      : Shell(pool, opt.root_slot, /*fresh=*/false) {
    const bool crashed = !pool.clean_shutdown();
    pool.mark_dirty();  // dirty strictly before any recovery-time mutation
    if (crashed) this->roll_back_splits();
    this->recover_chain([](Leaf* leaf) -> std::uint64_t {
      if (leaf->valid.load(std::memory_order_relaxed) == 0) {
        // Crash hit between valid:=0 and valid:=1: the logs are the truth.
        // Rebuild the slot array by sorting every allocated entry (last
        // write wins is unnecessary: wB+tree re-points, so the stale slot
        // may reference at most one orphan; a full rebuild from the old
        // image is the documented recovery).  We rebuild conservatively
        // from the highest referenced index.
        rebuild_slot(leaf);
      }
      const int count = leaf->pslot[0];
      std::uint32_t max_idx = 0;
      for (int i = 0; i < count; ++i)
        max_idx = std::max<std::uint32_t>(max_idx, leaf->pslot[1 + i]);
      leaf->nlogs.store(count == 0 ? 0 : max_idx + 1, std::memory_order_relaxed);
      return count;
    });
  }

  common::Status insert(Key k, Value v) {
    obs::OpTrace tr(obs::OpKind::kInsert, k);
    const common::Status s = modify(k, v, Mode::kInsert);
    tr.finish(static_cast<bool>(s));
    return s;
  }
  common::Status update(Key k, Value v) {
    obs::OpTrace tr(obs::OpKind::kUpdate, k);
    const common::Status s = modify(k, v, Mode::kUpdate);
    tr.finish(static_cast<bool>(s));
    return s;
  }
  common::Status upsert(Key k, Value v) {
    obs::OpTrace tr(obs::OpKind::kUpsert, k);
    const common::Status s = modify(k, v, Mode::kUpsert);
    tr.finish(static_cast<bool>(s));
    return s;
  }

  bool remove(Key k) {
    obs::OpTrace tr(obs::OpKind::kRemove, k);
    epoch::Guard g = this->epochs_.pin();
    Leaf* leaf = locate(k);
    const int pos = core::slot_lower_bound(leaf->pslot, leaf->logs, k);
    if (!core::slot_match(leaf->pslot, leaf->logs, pos, k))
      return tr.finish(false);
    // Three persistent instructions: valid:=0, slot array, valid:=1.
    set_valid(leaf, 0);
    core::slot_remove_at(leaf->pslot, pos);
    nvm::on_modified(leaf->pslot, kCacheLineSize);
    nvm::persist(leaf->pslot, kCacheLineSize);
    set_valid(leaf, 1);
    this->size_.fetch_sub(1, std::memory_order_relaxed);
    return tr.finish(true);
  }

  std::optional<Value> find(Key k) const {
    obs::OpTrace tr(obs::OpKind::kFind, k);
    epoch::Guard g = this->epochs_.pin();
    Leaf* leaf = locate(k);
    prefetch_range(leaf, sizeof(Leaf));  // overlap fetch with binary probes
    const int pos = core::slot_lower_bound(leaf->pslot, leaf->logs, k);
    if (!core::slot_match(leaf->pslot, leaf->logs, pos, k)) {
      tr.finish(false);
      return std::nullopt;
    }
    tr.finish(true);
    return leaf->logs[leaf->pslot[1 + pos]].value;
  }

  template <typename Fn>
  std::size_t scan(Key start, Fn&& fn) const {
    obs::OpTrace tr(obs::OpKind::kScan, start);
    epoch::Guard g = this->epochs_.pin();
    std::size_t visited = 0;
    Leaf* leaf = locate(start);
    bool first = true;
    while (leaf != nullptr) {
      const int count = leaf->pslot[0];
      const int from =
          first ? core::slot_lower_bound(leaf->pslot, leaf->logs, start) : 0;
      for (int i = from; i < count; ++i) {
        const Entry& e = leaf->logs[leaf->pslot[1 + i]];
        ++visited;
        if (!fn(e.key, e.value)) {
          tr.finish(visited > 0);
          return visited;
        }
      }
      first = false;
      leaf = next_leaf(leaf);
    }
    tr.finish(visited > 0);
    return visited;
  }

  std::size_t scan_n(Key start, std::size_t n,
                     std::vector<std::pair<Key, Value>>& out) const {
    out.clear();
    out.reserve(n);
    scan(start, [&](Key k, Value v) {
      out.emplace_back(k, v);
      return out.size() < n;
    });
    return out.size();
  }

 private:
  enum class Mode { kInsert, kUpdate, kUpsert };

  void set_valid(Leaf* leaf, std::uint64_t v) {
    nvm::store_release(leaf->valid, v);
    nvm::persist(&leaf->valid, sizeof(v));
  }

  static void rebuild_slot(Leaf* leaf) {
    // The previous slot array content (possibly half-written) is discarded;
    // rebuild from the undo image is handled by roll_back_splits, and the
    // per-op window only ever has the OLD slot content available in logs:
    // sort the entries referenced by scanning all log positions that hold
    // initialised keys is not well-defined without a bitmap, so wB+tree's
    // published recovery re-derives the array from the log area.  We keep
    // the old array's entries (they reference only committed logs) and
    // re-sort them defensively.
    const int count = leaf->pslot[0];
    std::sort(leaf->pslot + 1, leaf->pslot + 1 + count,
              [leaf](std::uint8_t a, std::uint8_t b) {
                return leaf->logs[a].key < leaf->logs[b].key;
              });
    nvm::on_modified(leaf->pslot, kCacheLineSize);
    nvm::persist(leaf->pslot, kCacheLineSize);
    nvm::store_release(leaf->valid, std::uint64_t{1});
    nvm::persist(&leaf->valid, sizeof(std::uint64_t));
  }

  common::Status modify(Key k, Value v, Mode mode) {
    epoch::Guard g = this->epochs_.pin();
    Leaf* leaf = locate(k);
    int pos = core::slot_lower_bound(leaf->pslot, leaf->logs, k);
    bool exists = core::slot_match(leaf->pslot, leaf->logs, pos, k);
    if (mode == Mode::kInsert && exists) return common::StatusCode::kKeyExists;
    if (mode == Mode::kUpdate && !exists) return common::StatusCode::kKeyAbsent;
    std::uint32_t e = leaf->nlogs.load(std::memory_order_relaxed);
    if (e >= Leaf::kLogCap || leaf->pslot[0] >= core::kSlotCap) {
      leaf = split(leaf, k);
      if (leaf == nullptr) {
        // Exhausted and not compactable: nothing was mutated, the full
        // leaf stays valid, the op reports the condition to the caller.
        return common::StatusCode::kPoolExhausted;
      }
      pos = core::slot_lower_bound(leaf->pslot, leaf->logs, k);
      exists = core::slot_match(leaf->pslot, leaf->logs, pos, k);
      e = leaf->nlogs.load(std::memory_order_relaxed);
    }
    leaf->nlogs.store(e + 1, std::memory_order_relaxed);

    // Persist #1: the KV entry.
    nvm::store(leaf->logs[e], Entry{k, v});
    nvm::persist(&leaf->logs[e], sizeof(Entry));
    // Persist #2: invalidate the slot array.
    set_valid(leaf, 0);
    // Persist #3: rewrite the slot array in place, keeping it sorted.
    if (exists)
      leaf->pslot[1 + pos] = static_cast<std::uint8_t>(e);
    else
      core::slot_insert_at(leaf->pslot, pos, static_cast<std::uint8_t>(e));
    nvm::on_modified(leaf->pslot, kCacheLineSize);
    nvm::persist(leaf->pslot, kCacheLineSize);
    // Persist #4: revalidate.
    set_valid(leaf, 1);
    if (!exists) this->size_.fetch_add(1, std::memory_order_relaxed);
    return common::OkStatus();
  }

  /// Same split/compaction discipline as RNTree (undo-logged).  Returns
  /// the leaf covering @p k, or nullptr when a real split is required but
  /// the pool cannot supply a sibling (the leaf is left untouched).
  Leaf* split(Leaf* leaf, Key k) {
    nvm::UndoSlot& undo = my_undo();
    const int live = leaf->pslot[0];

    if (live < static_cast<int>(core::kSlotCap) / 2) {
      leaf->vlock.lock();
      leaf->vlock.set_split();
      this->stats_.count_compaction();
      begin_undo(undo, leaf, 0);
      const Leaf* src = reinterpret_cast<const Leaf*>(undo.data);
      compact_into(leaf, src, 0, live);
      nvm::persist(leaf, sizeof(Leaf));
      end_undo(undo);
      leaf->vlock.unset_split_and_bump();
      leaf->vlock.unlock();
      return leaf;
    }

    // Pre-flight: secure the sibling's space before the lock/splitting bit
    // so exhaustion is detected while nothing has been mutated.
    const std::uint64_t new_off = this->pool_.alloc(sizeof(Leaf));
    if (new_off == 0) return nullptr;
    this->stats_.count_split();
    leaf->vlock.lock();
    leaf->vlock.set_split();
    begin_undo(undo, leaf, new_off);
    const Leaf* src = reinterpret_cast<const Leaf*>(undo.data);

    Leaf* nl = this->pool_.template ptr<Leaf>(new_off);
    nl->init();
    const int half = live / 2;
    const Key split_key = src->logs[src->pslot[1 + half]].key;
    compact_into(nl, src, half, live);
    nl->next.store(src->next.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    nl->high_key.store(src->high_key.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    nl->has_high.store(src->has_high.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    nvm::on_modified(nl, sizeof(Leaf));
    nvm::persist(nl, sizeof(Leaf));

    compact_into(leaf, src, 0, half);
    leaf->next.store(new_off, std::memory_order_relaxed);
    leaf->high_key.store(split_key, std::memory_order_relaxed);
    leaf->has_high.store(1, std::memory_order_relaxed);
    nvm::on_modified(leaf, sizeof(Leaf));
    nvm::persist(leaf, sizeof(Leaf));

    end_undo(undo);
    leaf->vlock.unset_split_and_bump();
    this->inner_.insert_split(split_key, leaf, nl);
    leaf->vlock.unlock();
    return k < split_key ? leaf : nl;
  }

  static void compact_into(Leaf* dst, const Leaf* src, int from, int to) {
    for (int i = from; i < to; ++i) {
      nvm::store(dst->logs[i - from], src->logs[src->pslot[1 + i]]);
      dst->pslot[1 + (i - from)] = static_cast<std::uint8_t>(i - from);
    }
    dst->pslot[0] = static_cast<std::uint8_t>(to - from);
    nvm::on_modified(dst->pslot, kCacheLineSize);
    dst->nlogs.store(static_cast<std::uint32_t>(to - from),
                     std::memory_order_relaxed);
    nvm::store_release(dst->valid, std::uint64_t{1});
  }
};

// ---------------------------------------------------------------------------
// WBTreeSO — 8-byte slot array, 7 entries per leaf, 2 persists per modify
// ---------------------------------------------------------------------------

template <typename Key, typename Value>
struct alignas(kCacheLineSize) WbSoLeaf {
  static_assert(sizeof(Key) == 8 && sizeof(Value) == 8);
  static constexpr std::uint32_t kLogCap = 8;   ///< log positions
  static constexpr std::uint32_t kLiveCap = 7;  ///< slots in the 8-byte array

  struct Entry {
    Key key;
    Value value;
  };

  // ---- line 0: header (slot array included: it is only 8 bytes) ----
  std::atomic<std::uint64_t> slot_word;  ///< persistent packed slot array
  htm::VersionLock vlock;
  std::atomic<std::uint64_t> next;
  std::atomic<Key> high_key;
  std::atomic<std::uint32_t> has_high;
  std::uint8_t pad0_[kCacheLineSize - 36];

  // ---- lines 1-2: 8 KV entries ----
  Entry logs[kLogCap];

  void init() noexcept {
    slot_word.store(0, std::memory_order_relaxed);
    vlock.reset();
    next.store(0, std::memory_order_relaxed);
    high_key.store(Key{}, std::memory_order_relaxed);
    has_high.store(0, std::memory_order_relaxed);
  }

  /// Unpack the 8-byte word into slot_util's [count, idx...] layout.
  static void unpack(std::uint64_t w, std::uint8_t* out) noexcept {
    for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(w >> (8 * i));
  }
  static std::uint64_t pack(const std::uint8_t* in) noexcept {
    std::uint64_t w = 0;
    for (int i = 0; i < 8; ++i) w |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    return w;
  }

  /// A log position not referenced by the packed slot array.
  int free_position(const std::uint8_t* slot) const noexcept {
    bool used[kLogCap] = {};
    for (int i = 0; i < slot[0]; ++i) used[slot[1 + i]] = true;
    for (int i = 0; i < static_cast<int>(kLogCap); ++i)
      if (!used[i]) return i;
    return -1;
  }
};

template <typename Key = std::uint64_t, typename Value = std::uint64_t>
class WBTreeSO : public TreeShell<Key, WbSoLeaf<Key, Value>> {
  using Shell = TreeShell<Key, WbSoLeaf<Key, Value>>;
  using Shell::beyond, Shell::locate, Shell::leftmost, Shell::next_leaf;
  using Shell::begin_undo, Shell::end_undo, Shell::my_undo;

 public:
  using Leaf = WbSoLeaf<Key, Value>;
  using Entry = typename Leaf::Entry;

  struct Options {
    int root_slot = 0;
  };

  explicit WBTreeSO(nvm::PmemPool& pool, Options opt = {})
      : Shell(pool, opt.root_slot, /*fresh=*/true) {}

  struct recover_t {};
  WBTreeSO(recover_t, nvm::PmemPool& pool, Options opt = {})
      : Shell(pool, opt.root_slot, /*fresh=*/false) {
    const bool crashed = !pool.clean_shutdown();
    pool.mark_dirty();  // dirty strictly before any recovery-time mutation
    if (crashed) this->roll_back_splits();
    this->recover_chain([](Leaf* leaf) -> std::uint64_t {
      // The slot word is atomically persistent: nothing to fix.
      std::uint8_t slot[8];
      Leaf::unpack(leaf->slot_word.load(std::memory_order_relaxed), slot);
      return slot[0];
    });
  }

  common::Status insert(Key k, Value v) {
    obs::OpTrace tr(obs::OpKind::kInsert, k);
    const common::Status s = modify(k, v, Mode::kInsert);
    tr.finish(static_cast<bool>(s));
    return s;
  }
  common::Status update(Key k, Value v) {
    obs::OpTrace tr(obs::OpKind::kUpdate, k);
    const common::Status s = modify(k, v, Mode::kUpdate);
    tr.finish(static_cast<bool>(s));
    return s;
  }
  common::Status upsert(Key k, Value v) {
    obs::OpTrace tr(obs::OpKind::kUpsert, k);
    const common::Status s = modify(k, v, Mode::kUpsert);
    tr.finish(static_cast<bool>(s));
    return s;
  }

  bool remove(Key k) {
    obs::OpTrace tr(obs::OpKind::kRemove, k);
    epoch::Guard g = this->epochs_.pin();
    Leaf* leaf = locate(k);
    std::uint8_t slot[8];
    Leaf::unpack(leaf->slot_word.load(std::memory_order_relaxed), slot);
    const int pos = core::slot_lower_bound(slot, leaf->logs, k);
    if (!core::slot_match(slot, leaf->logs, pos, k)) return tr.finish(false);
    core::slot_remove_at(slot, pos);
    publish_slot(leaf, slot);  // single persistent instruction
    this->size_.fetch_sub(1, std::memory_order_relaxed);
    return tr.finish(true);
  }

  std::optional<Value> find(Key k) const {
    obs::OpTrace tr(obs::OpKind::kFind, k);
    epoch::Guard g = this->epochs_.pin();
    Leaf* leaf = locate(k);
    std::uint8_t slot[8];
    Leaf::unpack(leaf->slot_word.load(std::memory_order_acquire), slot);
    const int pos = core::slot_lower_bound(slot, leaf->logs, k);
    if (!core::slot_match(slot, leaf->logs, pos, k)) {
      tr.finish(false);
      return std::nullopt;
    }
    tr.finish(true);
    return leaf->logs[slot[1 + pos]].value;
  }

  template <typename Fn>
  std::size_t scan(Key start, Fn&& fn) const {
    obs::OpTrace tr(obs::OpKind::kScan, start);
    epoch::Guard g = this->epochs_.pin();
    std::size_t visited = 0;
    Leaf* leaf = locate(start);
    bool first = true;
    while (leaf != nullptr) {
      std::uint8_t slot[8];
      Leaf::unpack(leaf->slot_word.load(std::memory_order_acquire), slot);
      const int count = slot[0];
      const int from = first ? core::slot_lower_bound(slot, leaf->logs, start) : 0;
      for (int i = from; i < count; ++i) {
        const Entry& e = leaf->logs[slot[1 + i]];
        ++visited;
        if (!fn(e.key, e.value)) {
          tr.finish(visited > 0);
          return visited;
        }
      }
      first = false;
      leaf = next_leaf(leaf);
    }
    tr.finish(visited > 0);
    return visited;
  }

  std::size_t scan_n(Key start, std::size_t n,
                     std::vector<std::pair<Key, Value>>& out) const {
    out.clear();
    out.reserve(n);
    scan(start, [&](Key k, Value v) {
      out.emplace_back(k, v);
      return out.size() < n;
    });
    return out.size();
  }

 private:
  enum class Mode { kInsert, kUpdate, kUpsert };

  void publish_slot(Leaf* leaf, const std::uint8_t* slot) {
    nvm::store_release(leaf->slot_word, Leaf::pack(slot));
    nvm::persist(&leaf->slot_word, sizeof(std::uint64_t));
  }

  common::Status modify(Key k, Value v, Mode mode) {
    epoch::Guard g = this->epochs_.pin();
    Leaf* leaf = locate(k);
    std::uint8_t slot[8];
    Leaf::unpack(leaf->slot_word.load(std::memory_order_relaxed), slot);
    int pos = core::slot_lower_bound(slot, leaf->logs, k);
    bool exists = core::slot_match(slot, leaf->logs, pos, k);
    if (mode == Mode::kInsert && exists) return common::StatusCode::kKeyExists;
    if (mode == Mode::kUpdate && !exists) return common::StatusCode::kKeyAbsent;
    if (!exists && slot[0] >= Leaf::kLiveCap) {
      leaf = split(leaf, k);
      // No compaction variant exists (7-entry leaves): a full pool fails
      // the insert cleanly; updates of existing keys never reach here.
      if (leaf == nullptr) return common::StatusCode::kPoolExhausted;
      Leaf::unpack(leaf->slot_word.load(std::memory_order_relaxed), slot);
      pos = core::slot_lower_bound(slot, leaf->logs, k);
      exists = core::slot_match(slot, leaf->logs, pos, k);
    }
    const int free = leaf->free_position(slot);
    // kLiveCap < kLogCap guarantees a free log position exists.
    // Persist #1: the KV entry.
    nvm::store(leaf->logs[free], Entry{k, v});
    nvm::persist(&leaf->logs[free], sizeof(Entry));
    // Persist #2: the 8-byte slot array, atomically.
    if (exists)
      slot[1 + pos] = static_cast<std::uint8_t>(free);
    else
      core::slot_insert_at(slot, pos, static_cast<std::uint8_t>(free));
    publish_slot(leaf, slot);
    if (!exists) this->size_.fetch_add(1, std::memory_order_relaxed);
    return common::OkStatus();
  }

  /// Splits are frequent with 7-entry leaves — the paper's point.  Returns
  /// nullptr (leaf untouched) when the pool cannot supply a sibling.
  Leaf* split(Leaf* leaf, Key k) {
    // Pre-flight: sibling space before the lock/splitting bit.
    const std::uint64_t new_off = this->pool_.alloc(sizeof(Leaf));
    if (new_off == 0) return nullptr;
    this->stats_.count_split();
    nvm::UndoSlot& undo = my_undo();
    leaf->vlock.lock();
    leaf->vlock.set_split();
    begin_undo(undo, leaf, new_off);
    const Leaf* src = reinterpret_cast<const Leaf*>(undo.data);

    std::uint8_t sslot[8];
    Leaf::unpack(src->slot_word.load(std::memory_order_relaxed), sslot);
    const int live = sslot[0];
    const int half = live / 2;
    const Key split_key = src->logs[sslot[1 + half]].key;

    Leaf* nl = this->pool_.template ptr<Leaf>(new_off);
    nl->init();
    std::uint8_t nslot[8] = {};
    for (int i = half; i < live; ++i) {
      nvm::store(nl->logs[i - half], src->logs[sslot[1 + i]]);
      nslot[1 + (i - half)] = static_cast<std::uint8_t>(i - half);
    }
    nslot[0] = static_cast<std::uint8_t>(live - half);
    nl->slot_word.store(Leaf::pack(nslot), std::memory_order_relaxed);
    nl->next.store(src->next.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    nl->high_key.store(src->high_key.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    nl->has_high.store(src->has_high.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    nvm::on_modified(nl, sizeof(Leaf));
    nvm::persist(nl, sizeof(Leaf));

    std::uint8_t lslot[8] = {};
    for (int i = 0; i < half; ++i) {
      nvm::store(leaf->logs[i], src->logs[sslot[1 + i]]);
      lslot[1 + i] = static_cast<std::uint8_t>(i);
    }
    lslot[0] = static_cast<std::uint8_t>(half);
    leaf->slot_word.store(Leaf::pack(lslot), std::memory_order_relaxed);
    leaf->next.store(new_off, std::memory_order_relaxed);
    leaf->high_key.store(split_key, std::memory_order_relaxed);
    leaf->has_high.store(1, std::memory_order_relaxed);
    nvm::on_modified(leaf, sizeof(Leaf));
    nvm::persist(leaf, sizeof(Leaf));

    end_undo(undo);
    leaf->vlock.unset_split_and_bump();
    this->inner_.insert_split(split_key, leaf, nl);
    leaf->vlock.unlock();
    return k < split_key ? leaf : nl;
  }
};

}  // namespace rnt::baselines
