// Cache-line constants and alignment helpers shared by every module.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rnt {

/// Cache-line size assumed throughout the library.  The paper's central
/// argument is that HTM raises the atomic-write size from 8 B to one cache
/// line; all leaf layouts are specified in units of this constant.
inline constexpr std::size_t kCacheLineSize = 64;

/// Round @p n up to the next multiple of @p align (power of two).
constexpr std::uint64_t align_up(std::uint64_t n, std::uint64_t align) noexcept {
  return (n + align - 1) & ~(align - 1);
}

/// Round @p n down to a multiple of @p align (power of two).
constexpr std::uint64_t align_down(std::uint64_t n, std::uint64_t align) noexcept {
  return n & ~(align - 1);
}

/// Address of the cache line containing @p p.
inline std::uintptr_t line_of(const void* p) noexcept {
  return reinterpret_cast<std::uintptr_t>(p) & ~(std::uintptr_t{kCacheLineSize} - 1);
}

/// Number of cache lines spanned by the byte range [p, p+n).
inline std::size_t lines_spanned(const void* p, std::size_t n) noexcept {
  if (n == 0) return 0;
  const std::uintptr_t first = line_of(p);
  const std::uintptr_t last =
      line_of(static_cast<const char*>(p) + n - 1);
  return static_cast<std::size_t>((last - first) / kCacheLineSize) + 1;
}

}  // namespace rnt
