// Compiler/CPU hints used on hot paths.
#pragma once

#include <cstddef>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

// Marks functions whose data races are BY DESIGN and resolved by validation:
// seqlock/version-lock readers copy shared lines while writers may be
// storing into them, then discard the snapshot if the version moved.  TSan
// cannot see the validation, so under -fsanitize=thread these functions opt
// out of instrumentation; every other access stays checked.  Expands to
// nothing in normal builds.
#if defined(__SANITIZE_THREAD__)
#define RNT_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define RNT_TSAN_ENABLED 1
#else
#define RNT_TSAN_ENABLED 0
#endif
#else
#define RNT_TSAN_ENABLED 0
#endif

#if RNT_TSAN_ENABLED
#define RNT_NO_SANITIZE_THREAD __attribute__((no_sanitize_thread))
#else
#define RNT_NO_SANITIZE_THREAD
#endif

namespace rnt {

/// Polite spin-wait hint (PAUSE on x86); keeps a spinning hyperthread from
/// starving its sibling and reduces the memory-order-violation penalty when
/// the awaited line finally changes.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  _mm_pause();
#else
  asm volatile("" ::: "memory");
#endif
}

/// Prefetch every cache line of [p, p+n) for reading.  Issued before a
/// binary search over a leaf so the dependent probes hit cache instead of
/// paying a serialized memory latency each (classic cache-craftiness; the
/// overlapped fetches cost roughly one memory round-trip in total).
inline void prefetch_range(const void* p, std::size_t n) noexcept {
  const char* c = static_cast<const char*>(p);
  for (std::size_t off = 0; off < n; off += 64)
    __builtin_prefetch(c + off, /*rw=*/0, /*locality=*/1);
}

/// Copy for seqlock read sides: the source may be concurrently written (the
/// snapshot is validated afterwards), so the copy must stay invisible to
/// TSan.  Plain memcpy would defeat RNT_NO_SANITIZE_THREAD on the caller —
/// libtsan intercepts the libc call and reports the reader access anyway —
/// so under TSan this compiles to uninstrumented inline word loads/stores.
/// Normal builds keep memcpy (vectorized; this is the find() hot path).
/// @p n must be a multiple of 8 (callers copy whole cache lines).
#if RNT_TSAN_ENABLED
RNT_NO_SANITIZE_THREAD
#endif
inline void racy_copy(void* dst, const void* src, std::size_t n) noexcept {
#if RNT_TSAN_ENABLED
  auto* d = static_cast<unsigned long long*>(dst);
  auto* s = static_cast<const unsigned long long*>(src);
  for (std::size_t i = 0; i < n / 8; ++i) d[i] = s[i];
#else
  __builtin_memcpy(dst, src, n);
#endif
}

/// Exponential-backoff helper for contended CAS loops.
class Backoff {
 public:
  void pause() noexcept {
    for (int i = 0; i < spins_; ++i) cpu_relax();
    if (spins_ < kMaxSpins) spins_ *= 2;
  }
  void reset() noexcept { spins_ = 1; }

 private:
  static constexpr int kMaxSpins = 1024;
  int spins_ = 1;
};

}  // namespace rnt
