// Compiler/CPU hints used on hot paths.
#pragma once

#include <cstddef>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

namespace rnt {

/// Polite spin-wait hint (PAUSE on x86); keeps a spinning hyperthread from
/// starving its sibling and reduces the memory-order-violation penalty when
/// the awaited line finally changes.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  _mm_pause();
#else
  asm volatile("" ::: "memory");
#endif
}

/// Prefetch every cache line of [p, p+n) for reading.  Issued before a
/// binary search over a leaf so the dependent probes hit cache instead of
/// paying a serialized memory latency each (classic cache-craftiness; the
/// overlapped fetches cost roughly one memory round-trip in total).
inline void prefetch_range(const void* p, std::size_t n) noexcept {
  const char* c = static_cast<const char*>(p);
  for (std::size_t off = 0; off < n; off += 64)
    __builtin_prefetch(c + off, /*rw=*/0, /*locality=*/1);
}

/// Exponential-backoff helper for contended CAS loops.
class Backoff {
 public:
  void pause() noexcept {
    for (int i = 0; i < spins_; ++i) cpu_relax();
    if (spins_ < kMaxSpins) spins_ *= 2;
  }
  void reset() noexcept { spins_ = 1; }

 private:
  static constexpr int kMaxSpins = 1024;
  int spins_ = 1;
};

}  // namespace rnt
