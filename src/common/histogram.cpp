#include "common/histogram.hpp"

#include <cstdio>

namespace rnt {

std::uint64_t LatencyHistogram::percentile(double q) const noexcept {
  if (total_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
  std::uint64_t acc = 0;
  for (int i = 0; i < kBuckets; ++i) {
    acc += counts_[i];
    if (acc > target || (acc == total_ && acc >= target)) return bucket_upper(i);
  }
  return max_;
}

std::string LatencyHistogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.2fus p50=%.2fus p99=%.2fus p999=%.2fus max=%.2fus",
                static_cast<unsigned long long>(total_), mean() / 1e3,
                static_cast<double>(percentile(0.50)) / 1e3,
                static_cast<double>(percentile(0.99)) / 1e3,
                static_cast<double>(percentile(0.999)) / 1e3,
                static_cast<double>(max()) / 1e3);
  return buf;
}

}  // namespace rnt
