#include "common/histogram.hpp"

#include <cstdio>

namespace rnt {

std::uint64_t LatencyHistogram::percentile(double q) const noexcept {
  if (total_ == 0) return 0;
  // Boundary quantiles are exact: the recorded extrema, not bucket bounds.
  if (q <= 0.0) return min();
  if (q >= 1.0) return max_;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
  std::uint64_t acc = 0;
  for (int i = 0; i < kBuckets; ++i) {
    acc += counts_[i];
    if (acc > target || (acc == total_ && acc >= target)) {
      // A bucket's upper bound can overshoot the true extrema (a single
      // sample of 1000 ns sits in a bucket whose upper bound is 1023 ns);
      // clamp into the observed [min, max] range.
      std::uint64_t v = bucket_upper(i);
      if (v > max_) v = max_;
      if (v < min_) v = min_;
      return v;
    }
  }
  return max_;
}

std::string LatencyHistogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.2fus p50=%.2fus p99=%.2fus p999=%.2fus max=%.2fus",
                static_cast<unsigned long long>(total_), mean() / 1e3,
                static_cast<double>(percentile(0.50)) / 1e3,
                static_cast<double>(percentile(0.99)) / 1e3,
                static_cast<double>(percentile(0.999)) / 1e3,
                static_cast<double>(max()) / 1e3);
  return buf;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
LatencyHistogram::cumulative_buckets() const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  std::uint64_t acc = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (counts_[i] == 0) continue;
    acc += counts_[i];
    out.emplace_back(bucket_upper(i), acc);
  }
  return out;
}

}  // namespace rnt
