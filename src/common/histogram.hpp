// Log-bucketed latency histogram (HdrHistogram-style, fixed memory).
//
// Used by the figure-9 latency experiments and the examples.  Records values
// in nanoseconds with ~3% relative precision over [1 ns, ~18 s] using
// 64 exponents x 16 sub-buckets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rnt {

class LatencyHistogram {
 public:
  static constexpr int kSubBits = 4;                      // 16 sub-buckets
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kBuckets = 64 * kSub;

  LatencyHistogram() : counts_(kBuckets, 0) {}

  void record(std::uint64_t ns) noexcept {
    ++counts_[bucket_of(ns)];
    ++total_;
    sum_ += ns;
    if (ns > max_) max_ = ns;
    if (ns < min_) min_ = ns;
  }

  /// Merge another histogram into this one (for per-thread recorders).
  void merge(const LatencyHistogram& other) {
    for (int i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
    sum_ += other.sum_;
    if (other.max_ > max_) max_ = other.max_;
    if (other.total_ > 0 && other.min_ < min_) min_ = other.min_;
  }

  std::uint64_t count() const noexcept { return total_; }
  std::uint64_t sum() const noexcept { return sum_; }
  std::uint64_t max() const noexcept { return total_ ? max_ : 0; }
  std::uint64_t min() const noexcept { return total_ ? min_ : 0; }
  double mean() const noexcept {
    return total_ ? static_cast<double>(sum_) / static_cast<double>(total_) : 0.0;
  }

  /// Value at quantile q in [0,1]; returns an upper bound of the bucket.
  std::uint64_t percentile(double q) const noexcept;

  void reset() noexcept {
    counts_.assign(kBuckets, 0);
    total_ = 0;
    sum_ = 0;
    max_ = 0;
    min_ = ~0ull;
  }

  /// "p50=... p99=... max=..." one-line summary (values in microseconds).
  std::string summary() const;

  /// Cumulative distribution over the non-empty buckets: (upper bound in ns,
  /// observations <= that bound) pairs, cumulative count strictly increasing
  /// and ending at count().  Feeds Prometheus `_bucket{le=...}` exposition.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> cumulative_buckets() const;

 private:
  static int bucket_of(std::uint64_t ns) noexcept {
    if (ns < kSub) return static_cast<int>(ns);
    const int msb = 63 - __builtin_clzll(ns);
    const int exponent = msb - kSubBits;  // (ns >> exponent) lands in [16,32)
    const auto sub = static_cast<int>(ns >> exponent) & (kSub - 1);
    return ((exponent + 1) << kSubBits) | sub;
  }

  static std::uint64_t bucket_upper(int b) noexcept {
    const int exponent = (b >> kSubBits) - 1;
    const int sub = b & (kSub - 1);
    if (exponent < 0) return static_cast<std::uint64_t>(b);
    return (static_cast<std::uint64_t>(kSub + sub + 1) << exponent) - 1;
  }

  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t min_ = ~0ull;
};

}  // namespace rnt
