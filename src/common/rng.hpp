// Deterministic, fast pseudo-random generators.
//
// All randomized components (workload generators, crash-injection sweeps, the
// discrete-event simulator) are seeded explicitly so every experiment is
// reproducible bit-for-bit.
#pragma once

#include <cstdint>

namespace rnt {

/// SplitMix64 — used to seed other generators and as a cheap integer mixer.
struct SplitMix64 {
  std::uint64_t state;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
};

/// Stateless 64-bit mixing (Stafford variant 13); used to scramble/hash keys.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** — the main workhorse generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    // 128-bit multiply-shift; the tiny residual bias (< 2^-64) is irrelevant
    // for workload generation.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ull; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace rnt
