// Structured operation result for tree write paths.
//
// Tree mutations used to report plain bool ("did the conditional op apply?")
// and threw std::bad_alloc from arbitrary call sites — including inside
// locked critical sections — when the pool filled.  Status keeps the boolean
// meaning at every existing call site (operator bool is true exactly when
// the operation applied) while adding a distinguishable, non-throwing
// exhaustion outcome that propagates PmemPool::alloc failure up through log
// append / leaf split / insert without abandoning a half-mutated tree.
//
// Conversion contract: `if (tree.insert(k, v))` and `insert(...) != expect`
// keep working unchanged; callers that care WHY an op did not apply switch
// on code().  kPoolExhausted is falsy (the op did not apply) but, unlike
// kKeyExists/kKeyAbsent, the logical outcome is "retry after freeing space",
// not "precondition failed".
#pragma once

#include <cstdint>

namespace rnt::common {

enum class StatusCode : std::uint8_t {
  kOk = 0,          ///< operation applied
  kKeyExists = 1,   ///< conditional insert: key already present
  kKeyAbsent = 2,   ///< conditional update/remove: key not present
  kPoolExhausted = 3,  ///< pool has no space for a required allocation
  kCorrupted = 4,      ///< recovery found inconsistent persistent state
};

class Status {
 public:
  constexpr Status() noexcept = default;
  constexpr Status(StatusCode code) noexcept : code_(code) {}  // NOLINT: implicit by design

  /// True iff the operation applied — matches the legacy bool return.
  constexpr operator bool() const noexcept { return code_ == StatusCode::kOk; }

  constexpr StatusCode code() const noexcept { return code_; }
  constexpr bool ok() const noexcept { return code_ == StatusCode::kOk; }
  constexpr bool pool_exhausted() const noexcept {
    return code_ == StatusCode::kPoolExhausted;
  }
  constexpr bool corrupted() const noexcept {
    return code_ == StatusCode::kCorrupted;
  }

  constexpr bool operator==(const Status& other) const noexcept = default;

  const char* message() const noexcept {
    switch (code_) {
      case StatusCode::kOk: return "ok";
      case StatusCode::kKeyExists: return "key exists";
      case StatusCode::kKeyAbsent: return "key absent";
      case StatusCode::kPoolExhausted: return "pool exhausted";
      case StatusCode::kCorrupted: return "corrupted";
    }
    return "unknown";
  }

 private:
  StatusCode code_ = StatusCode::kOk;
};

constexpr Status OkStatus() noexcept { return Status(StatusCode::kOk); }

}  // namespace rnt::common
