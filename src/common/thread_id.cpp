#include "common/thread_id.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "nvm/pool.hpp"

namespace rnt {

namespace {

std::mutex g_mu;
bool g_in_use[nvm::kMaxThreads] = {};

// Exit-hook registry.  A separate mutex from g_mu: hooks run user code (a
// pool's cache fold takes the pool allocation lock), and holding the id
// bitmap lock across that would order g_mu before every hook-side lock.
// Lock order: g_hooks_mu -> (whatever a hook takes); g_mu nests inside
// nothing.
std::mutex g_hooks_mu;
std::vector<std::pair<ThreadExitHook, void*>>& hooks() {
  static std::vector<std::pair<ThreadExitHook, void*>> v;
  return v;
}

int acquire_id() {
  std::lock_guard lk(g_mu);
  for (int i = 0; i < nvm::kMaxThreads; ++i) {
    if (!g_in_use[i]) {
      g_in_use[i] = true;
      return i;
    }
  }
  throw std::runtime_error("pmem_thread_id: more than kMaxThreads live threads");
}

void release_id(int id) {
  std::lock_guard lk(g_mu);
  g_in_use[id] = false;
}

struct TlsId {
  int id = acquire_id();
  ~TlsId() {
    // Run exit hooks while the id still belongs to this thread, so a hook's
    // per-id cleanup cannot race the id's next owner.  Holding g_hooks_mu
    // across the calls makes unregister a barrier: once it returns, no hook
    // invocation is in flight.
    {
      std::lock_guard lk(g_hooks_mu);
      for (const auto& [fn, arg] : hooks()) fn(arg, id);
    }
    release_id(id);
  }
};

}  // namespace

int pmem_thread_id() {
  thread_local TlsId tls;
  return tls.id;
}

void register_thread_exit_hook(ThreadExitHook fn, void* arg) {
  std::lock_guard lk(g_hooks_mu);
  hooks().emplace_back(fn, arg);
}

void unregister_thread_exit_hook(ThreadExitHook fn, void* arg) {
  std::lock_guard lk(g_hooks_mu);
  auto& v = hooks();
  v.erase(std::remove(v.begin(), v.end(), std::make_pair(fn, arg)), v.end());
}

}  // namespace rnt
