#include "common/thread_id.hpp"

#include <mutex>
#include <stdexcept>

#include "nvm/pool.hpp"

namespace rnt {

namespace {

std::mutex g_mu;
bool g_in_use[nvm::kMaxThreads] = {};

int acquire_id() {
  std::lock_guard lk(g_mu);
  for (int i = 0; i < nvm::kMaxThreads; ++i) {
    if (!g_in_use[i]) {
      g_in_use[i] = true;
      return i;
    }
  }
  throw std::runtime_error("pmem_thread_id: more than kMaxThreads live threads");
}

void release_id(int id) {
  std::lock_guard lk(g_mu);
  g_in_use[id] = false;
}

struct TlsId {
  int id = acquire_id();
  ~TlsId() { release_id(id); }
};

}  // namespace

int pmem_thread_id() {
  thread_local TlsId tls;
  return tls.id;
}

}  // namespace rnt
