// Small, recycled per-thread ids for persistent per-thread resources
// (split undo-log slots).  Ids are drawn from [0, nvm::kMaxThreads) on first
// use and returned when the thread exits, so arbitrarily many short-lived
// threads can run over a process lifetime as long as at most kMaxThreads are
// simultaneously inside the library.
#pragma once

namespace rnt {

/// This thread's id in [0, nvm::kMaxThreads).  Throws std::runtime_error if
/// more threads than undo slots are alive at once.
int pmem_thread_id();

}  // namespace rnt
