// Small, recycled per-thread ids for persistent per-thread resources
// (split undo-log slots, allocator caches).  Ids are drawn from
// [0, nvm::kMaxThreads) on first use and returned when the thread exits, so
// arbitrarily many short-lived threads can run over a process lifetime as
// long as at most kMaxThreads are simultaneously inside the library.
#pragma once

namespace rnt {

/// This thread's id in [0, nvm::kMaxThreads).  Throws std::runtime_error if
/// more threads than undo slots are alive at once.
int pmem_thread_id();

/// Called on a library thread's exit with the id it is about to release,
/// BEFORE the id becomes reusable — so per-id resources (e.g. a pool's
/// allocation cache) can be reclaimed without racing the id's next owner.
using ThreadExitHook = void (*)(void* arg, int thread_id);

/// Register @p fn to run at every library thread's exit.  Hooks run under an
/// internal mutex; they may take their own locks (lock order: hook registry
/// before anything the hook acquires) but must not call back into the
/// registry.  The same (fn, arg) pair may be registered once.
void register_thread_exit_hook(ThreadExitHook fn, void* arg);

/// Remove a previously registered hook.  After return the hook is guaranteed
/// not to be running and will never run again (safe to destroy @p arg).
void unregister_thread_exit_hook(ThreadExitHook fn, void* arg);

}  // namespace rnt
