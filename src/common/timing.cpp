#include "common/timing.hpp"

#include "common/hints.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace rnt {

std::uint64_t rdtsc() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return now_ns();
#endif
}

namespace {

double calibrate_tsc_per_ns() {
  // Measure TSC ticks across a ~2 ms steady-clock window, twice; keep the
  // larger ratio (less likely to be preemption-skewed downward it matters
  // little: the value is only used to convert short injected delays).
  double best = 0.0;
  for (int round = 0; round < 2; ++round) {
    const std::uint64_t t0 = now_ns();
    const std::uint64_t c0 = rdtsc();
    while (now_ns() - t0 < 2'000'000) cpu_relax();
    const std::uint64_t c1 = rdtsc();
    const std::uint64_t t1 = now_ns();
    const double ratio =
        static_cast<double>(c1 - c0) / static_cast<double>(t1 - t0);
    if (ratio > best) best = ratio;
  }
  return best > 0.01 ? best : 1.0;
}

}  // namespace

double tsc_per_ns() noexcept {
  static const double v = calibrate_tsc_per_ns();
  return v;
}

void busy_wait_ns(std::uint64_t ns) noexcept {
  if (ns == 0) return;
  const double ticks = static_cast<double>(ns) * tsc_per_ns();
  const std::uint64_t start = rdtsc();
  const auto target = start + static_cast<std::uint64_t>(ticks);
  while (rdtsc() < target) cpu_relax();
}

}  // namespace rnt
