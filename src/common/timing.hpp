// Nanosecond timing and calibrated busy-waiting.
//
// The NVM emulation charges a configurable delay per persistent instruction
// (the paper's NVDIMM writes cost ~140 ns).  Delays that short cannot be
// slept; they are busy-waited on the TSC, calibrated once against the steady
// clock at startup.
#pragma once

#include <chrono>
#include <cstdint>

namespace rnt {

/// Monotonic wall-clock nanoseconds.
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Raw timestamp counter (x86) or steady-clock fallback.
std::uint64_t rdtsc() noexcept;

/// Calibrated TSC ticks per nanosecond (>= 0.01; computed on first use).
double tsc_per_ns() noexcept;

/// Busy-wait for approximately @p ns nanoseconds.  Never yields; intended for
/// sub-microsecond latency injection.  No-op when ns == 0.
void busy_wait_ns(std::uint64_t ns) noexcept;

/// Simple scope timer reporting elapsed nanoseconds.
class ScopeTimer {
 public:
  ScopeTimer() : start_(now_ns()) {}
  std::uint64_t elapsed_ns() const noexcept { return now_ns() - start_; }
  double elapsed_s() const noexcept { return static_cast<double>(elapsed_ns()) * 1e-9; }

 private:
  std::uint64_t start_;
};

}  // namespace rnt
