// RNTree leaf node layout — paper Fig 1, one cache line per row.
//
//   line 0 : header — nlogs, plogs (volatile counters), the version-lock
//            word (Fig 2), the two seqlock counters the software HTM backend
//            uses, and the persistent next/high_key chain fields
//   line 1 : persistent slot array (byte 0 = count, bytes 1.. = log indices)
//   line 2 : transient slot array (the dual-slot design, S4.3); contents are
//            volatile — recovery rebuilds it from line 1
//   line 3 : transient fingerprint line (FPTree-style): byte i = 1-byte hash
//            of the key at slot position i.  Maintained inside the same
//            write window as the slot array it mirrors, never persisted —
//            recovery rebuilds it from line 1, so Table-1 persist counts
//            are unchanged.  Point probes SIMD-filter this line before
//            touching any full key (see slot_util.hpp).
//   line 4+: 16-byte KV log entries, cache-line aligned, append-only
//
// nlogs counts *allocated* log entries (bumped lock-free by CAS, Alg 2);
// plogs counts *consumed* ones.  Neither is crash-consistent: recovery
// recomputes them from the slot array (S5.4).  high_key/next implement the
// B-link-style redirection that lets readers and writers that raced a split
// reach the correct half without restarting from the root.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/cacheline.hpp"
#include "core/slot_util.hpp"
#include "htm/seqlock.hpp"
#include "htm/version_lock.hpp"

namespace rnt::core {

template <typename Key, typename Value>
struct alignas(kCacheLineSize) RnLeaf {
  static_assert(sizeof(Key) == 8 && sizeof(Value) == 8,
                "v1 leaf layout packs 8-byte keys and values (wrap larger "
                "values behind an 8-byte handle)");

  static constexpr std::uint32_t kLogCap = 64;

  struct Entry {
    Key key;
    Value value;
  };

  // ---- line 0: header ----
  std::atomic<std::uint32_t> nlogs;  ///< allocated logs (volatile)
  std::uint32_t plogs;               ///< consumed logs (volatile; under lock)
  htm::VersionLock vlock;            ///< Fig 2 word (volatile)
  htm::SeqCounter mseq;  ///< modify window over pslot (non-dual-slot readers)
  htm::SeqCounter tseq;  ///< publish window over tslot (dual-slot readers)
  std::atomic<std::uint64_t> next;      ///< pool offset of right sibling (persistent)
  std::atomic<Key> high_key;            ///< exclusive upper bound (persistent)
  std::atomic<std::uint32_t> has_high;  ///< 0 until the first split (persistent)
  /// In-flight log writers (allocated but not yet flushed).  A split must
  /// quiesce these before compacting/reusing log indices — the software
  /// stand-in for the conflict detection real RTM would provide.
  std::atomic<std::uint32_t> writers;
  std::uint8_t pad0_[kCacheLineSize - 48];

  // ---- line 1: persistent slot array ----
  std::uint8_t pslot[kCacheLineSize];

  // ---- line 2: transient slot array (dual-slot design) ----
  std::uint8_t tslot[kCacheLineSize];

  // ---- line 3: transient fingerprint line (position-parallel to the
  // reader-visible slot array; adjacent to tslot so the dual-slot reader
  // snapshot is one contiguous 128-byte copy) ----
  std::uint8_t fps[kCacheLineSize];

  // ---- lines 4+: KV log entries ----
  Entry logs[kLogCap];

  /// In-place construction on freshly allocated pool memory.
  void init() noexcept {
    nlogs.store(0, std::memory_order_relaxed);
    plogs = 0;
    writers.store(0, std::memory_order_relaxed);
    vlock.reset();
    next.store(0, std::memory_order_relaxed);
    high_key.store(Key{}, std::memory_order_relaxed);
    has_high.store(0, std::memory_order_relaxed);
    pslot[0] = 0;
    tslot[0] = 0;
    std::memset(fps, 0, kCacheLineSize);
  }

  std::uint8_t live_count() const noexcept { return pslot[0]; }
};

namespace layout_check {
using L = RnLeaf<std::uint64_t, std::uint64_t>;
static_assert(offsetof(L, pslot) == kCacheLineSize, "slot array is line 1");
static_assert(offsetof(L, tslot) == 2 * kCacheLineSize, "dual slot is line 2");
static_assert(offsetof(L, fps) == 3 * kCacheLineSize, "fingerprints are line 3");
static_assert(offsetof(L, logs) == 4 * kCacheLineSize, "logs start at line 4");
static_assert(sizeof(L) == 4 * kCacheLineSize + L::kLogCap * sizeof(L::Entry));
static_assert(alignof(L) == kCacheLineSize);
}  // namespace layout_check

}  // namespace rnt::core
