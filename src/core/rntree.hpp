// RNTree — the paper's contribution (S4, S5): a durable NVM B+tree that uses
// HTM-sized atomic writes to keep leaves sorted with only two persistent
// instructions per modify, overlaps persistency with concurrency by flushing
// KV entries outside the leaf critical section, and (optionally) uses the
// dual slot array so readers never block on a writer's flush while still
// providing durable linearizability.
//
// Write path (Alg 1), annotated with the paper's four steps:
//   1. allocate a log entry  — lock-free CAS on nlogs (Alg 2)
//   2. write the KV          — plain stores, no coordination needed
//   3. flush the KV          — persistent instruction #1, OUTSIDE any lock
//   4. update the metadata   — leaf spinlock; the slot array is rewritten in
//      an HTM-atomic section and flushed (persistent instruction #2), then
//      (dual-slot mode) copied to the transient slot array readers use
//
// Read path (Alg 4): traverse the volatile inner tree (wait-free snapshot),
// take a stable version (spins only across splits), snapshot the slot array
// (transient one in dual-slot mode), binary-search OUTSIDE the atomic
// section, re-validate the version.  A reader only retries if the leaf split
// (dual-slot) or a writer's publish window overlapped (single-slot).
//
// Split (Alg 3): the whole leaf is logged to this thread's persistent undo
// slot, entries are compacted into the two halves, both leaves are persisted,
// the undo is retired, and the inner tree learns the new separator
// (htmTreeUpdate).  The version-lock's splitting bit makes readers wait;
// the version bump invalidates their snapshots.  Crash recovery rolls back
// any split whose undo slot is still ACTIVE.
//
// A shrink-split (S5.2.3: fewer than half the entries live when the log area
// fills) compacts the leaf in place under the same undo protection.
#pragma once

#include <atomic>
#include <cassert>
#include <cstring>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/hints.hpp"
#include "common/status.hpp"
#include "common/thread_id.hpp"
#include "core/rn_leaf.hpp"
#include "epoch/ebr.hpp"
#include "htm/rtm.hpp"
#include "htm/stripe_table.hpp"
#include "inner/inner_tree.hpp"
#include "nvm/pool.hpp"
#include "obs/heatmap.hpp"
#include "obs/metrics.hpp"
#include "obs/op_trace.hpp"
#include "obs/phase.hpp"

namespace rnt::core {

namespace detail {

// Process-wide structural counters mirrored by every RNTree instance (the
// registry view of TreeStats; thread-sharded, so mirroring costs a couple
// of nanoseconds on the already-rare split/retry paths).
struct TreeCounters {
  obs::Counter leaf_splits{"tree.leaf_splits"};
  obs::Counter shrink_splits{"tree.shrink_splits"};
  obs::Counter smo{"tree.smo"};  ///< all structure modifications
  obs::Counter find_retries{"tree.find_retries"};
  obs::Counter modify_restarts{"tree.modify_restarts"};
};

inline const TreeCounters& tree_counters() {
  static TreeCounters c;
  return c;
}

/// Registry view of the recovery path (ROADMAP item 5b): how recoveries ran
/// and what they found, exported like every other counter family.
struct RecoveryCounters {
  obs::Counter runs{"recovery.runs"};
  obs::Counter parallel_runs{"recovery.parallel_runs"};
  obs::Counter workers{"recovery.workers"};  ///< summed across runs
  obs::Counter leaves{"recovery.leaves"};
  obs::Counter corrupt_leaves{"recovery.corrupt_leaves"};
  obs::Counter rollbacks{"recovery.rollbacks"};  ///< undo rollbacks applied
};

inline const RecoveryCounters& recovery_counters() {
  static RecoveryCounters c;
  return c;
}

}  // namespace detail

/// Per-tree operation statistics (relaxed counters; approximate under
/// concurrency, exact single-threaded).  The count_* helpers also mirror
/// into the process-wide obs registry (tree.* counters) so every increment
/// shows up in `--stats-json` exports.
struct TreeStats {
  std::atomic<std::uint64_t> splits{0};
  std::atomic<std::uint64_t> shrink_splits{0};
  std::atomic<std::uint64_t> find_retries{0};
  std::atomic<std::uint64_t> modify_restarts{0};

  void count_split() noexcept {
    splits.fetch_add(1, std::memory_order_relaxed);
    detail::tree_counters().leaf_splits.inc();
    detail::tree_counters().smo.inc();
  }
  void count_shrink_split() noexcept {
    shrink_splits.fetch_add(1, std::memory_order_relaxed);
    detail::tree_counters().shrink_splits.inc();
    detail::tree_counters().smo.inc();
  }
  void count_find_retry() noexcept {
    find_retries.fetch_add(1, std::memory_order_relaxed);
    detail::tree_counters().find_retries.inc();
  }
  void count_modify_restart() noexcept {
    modify_restarts.fetch_add(1, std::memory_order_relaxed);
    detail::tree_counters().modify_restarts.inc();
  }

  void reset() noexcept {
    splits = 0;
    shrink_splits = 0;
    find_retries = 0;
    modify_restarts = 0;
  }
};

template <typename Key = std::uint64_t, typename Value = std::uint64_t>
class RNTree {
 public:
  using Leaf = RnLeaf<Key, Value>;
  using Entry = typename Leaf::Entry;

  struct Options {
    /// Dual slot array (the paper's RNTree+DS).  Off = readers validate
    /// against the persistent slot array's modify window instead.
    bool dual_slot = true;
    /// Pool root slot holding the leftmost-leaf offset.
    int root_slot = 0;
    /// COW SMO installs (src/inner): splits publish an out-of-place parent
    /// copy via a short HTM-validated pointer swap.  Off = every SMO runs
    /// the serialized whole-path rebuild (the pre-COW baseline, kept for
    /// the before/after capacity-abort measurement and the linearizability
    /// test's pre-COW leg).
    bool cow_smo = true;
    /// Fallback-lock stripes (power of two in [1, 4096], see
    /// htm/stripe_table.hpp).  Leaf publishes run against the stripe
    /// covering their leaf and structural changes against a dedicated SMO
    /// stripe, so a capacity-abort storm on one hot range serializes only
    /// that stripe.  1 = the single-global-lock baseline (the SMO stripe
    /// aliases it), selectable for the perf gate and the collapse
    /// measurement in bench_ablation_fallback.
    unsigned fallback_stripes = htm::kDefaultFallbackStripes;
    /// Recovery worker threads for the per-leaf transient rebuild: 0 = auto
    /// (serial below kParallelRecoveryMinLeaves, 8 workers above), 1 =
    /// always serial, N > 1 = up to N workers.
    int recovery_workers = 0;
  };

  /// Auto-mode recovery stays serial below this many leaves: thread spawn
  /// overhead beats the rebuild cost, and tiny-tree recoveries (tests,
  /// crash sweeps) stay deterministic single-threaded.
  static constexpr std::size_t kParallelRecoveryMinLeaves = 1024;

  /// Create a fresh tree in @p pool.
  RNTree(nvm::PmemPool& pool, Options opt = {})
      : pool_(pool),
        opt_(opt),
        stripes_(opt.fallback_stripes),
        inner_(epochs_, opt.cow_smo, &stripes_.smo_stripe()) {
    // Dirty-flag protocol: the clean flag must be cleared (and durable)
    // strictly before the first pool mutation, so a crash mid-construction
    // is always routed down the crash-recovery path.
    pool_.mark_dirty();
    const std::uint64_t off = pool_.alloc(sizeof(Leaf));
    if (off == 0) throw std::bad_alloc();
    Leaf* leaf = pool_.ptr<Leaf>(off);
    leaf->init();
    nvm::on_modified(leaf, sizeof(Leaf));
    nvm::persist(leaf, sizeof(Leaf));
    pool_.set_root(opt.root_slot, off);
    inner_.init_single(leaf);
  }

  /// Recover a tree from @p pool: reconstruction after a clean shutdown,
  /// full crash recovery (undo processing + counter rebuild) otherwise.
  struct recover_t {};
  RNTree(recover_t, nvm::PmemPool& pool, Options opt = {})
      : pool_(pool),
        opt_(opt),
        stripes_(opt.fallback_stripes),
        inner_(epochs_, opt.cow_smo, &stripes_.smo_stripe()) {
    // Capture the shutdown state, then clear the clean flag *before* any
    // recovery-time NVM mutation (undo rollback) — see fresh ctor.
    const bool crashed = !pool_.clean_shutdown();
    pool_.mark_dirty();
    recover(crashed);
  }

  /// Recover with an externally sampled shutdown state.  A multi-tree pool
  /// owner (ShardedTree) must sample clean_shutdown() ONCE and mark the pool
  /// dirty ONCE before recovering each member tree — otherwise the first
  /// member's mark_dirty() would force every later member down the crash
  /// path.  The caller owns the dirty/clean flag protocol.
  RNTree(recover_t, nvm::PmemPool& pool, bool crashed, Options opt)
      : pool_(pool),
        opt_(opt),
        stripes_(opt.fallback_stripes),
        inner_(epochs_, opt.cow_smo, &stripes_.smo_stripe()) {
    recover(crashed);
  }

  /// Non-throwing recovery surface (the structured-Status contract of the
  /// pool-exhaustion work): returns the recovered tree, or nullptr with
  /// @p status = kCorrupted — recovery_detail() names the corruption shape
  /// — when the persistent state is inconsistent (no leaves, broken
  /// high_key chain, torn leaf metadata).  Owns the dirty-flag protocol
  /// like the recover_t ctor.
  static std::unique_ptr<RNTree> recover_checked(nvm::PmemPool& pool,
                                                 common::Status& status,
                                                 Options opt = {}) {
    const bool crashed = !pool.clean_shutdown();
    pool.mark_dirty();
    std::unique_ptr<RNTree> t(new RNTree(checked_t{}, pool, crashed, opt));
    status = t->recovery_status_;
    if (!status.ok()) return nullptr;
    return t;
  }

  /// Human-readable corruption shape from the last (checked) recovery;
  /// empty when recovery succeeded.
  const char* recovery_detail() const noexcept { return recovery_detail_; }

  RNTree(const RNTree&) = delete;
  RNTree& operator=(const RNTree&) = delete;

  /// Flush volatile leaf counters and mark the pool clean so the next open
  /// takes the fast reconstruction path.
  void close() {
    flush_headers();
    pool_.close_clean();
  }

  /// Persist every leaf's header line (plogs/nlogs) without touching the
  /// pool's clean flag.  ShardedTree flushes ALL member trees first and only
  /// then marks the shared pool clean, so a crash between two members' header
  /// flushes still reads as dirty.
  void flush_headers() {
    // plogs/nlogs live in the header line; persisting it makes the clean
    // path's trust in them sound.
    for (Leaf* leaf = leftmost(); leaf != nullptr; leaf = next_leaf(leaf)) {
      nvm::on_modified(leaf, kCacheLineSize);
      nvm::persist(leaf, kCacheLineSize);
    }
  }

  // ------------------------------------------------------------------
  // Basic operations
  // ------------------------------------------------------------------

  // Write operations return common::Status.  Status converts to bool with
  // the legacy meaning (true iff the op applied), so `if (t.insert(k, v))`
  // call sites are unchanged; code() additionally distinguishes a failed
  // precondition (kKeyExists/kKeyAbsent) from kPoolExhausted — the pool has
  // no room for a required leaf split and the op left the tree untouched.

  /// Conditional insert: fails (kKeyExists) if the key already exists.
  common::Status insert(Key k, Value v) { return modify(k, v, Mode::kInsert); }

  /// Conditional update: fails (kKeyAbsent) if the key does not exist.
  common::Status update(Key k, Value v) { return modify(k, v, Mode::kUpdate); }

  /// Unconditional insert-or-update (can still fail with kPoolExhausted).
  common::Status upsert(Key k, Value v) { return modify(k, v, Mode::kUpsert); }

  /// Remove; returns false if the key was absent.  A single persistent
  /// instruction (the slot-array flush) — no log entry is consumed.
  bool remove(Key k) {
    obs::OpTrace tr(obs::OpKind::kRemove, k);
    obs::HeatScope hs(k);
    for (;;) {
      epoch::Guard g = epochs_.pin();
      Leaf* leaf = inner_.find_leaf(k);
      leaf = chase(leaf, k);
      prefetch_range(leaf, sizeof(Leaf));
      {
        obs::PhaseTimer pt(obs::Phase::kLockWait);
        leaf->vlock.lock();
      }
      if (!covers(leaf, k)) {
        leaf->vlock.unlock();
        stats_.count_modify_restart();
        continue;
      }
      tr.leaf(pool_.off(leaf));
      hs.leaf(pool_.off(leaf));
      // Under the lock pslot and fps are quiescent and position-parallel:
      // probe them in place, no binary search.
      const int pos = slot_fp_find(leaf->pslot, leaf->fps, leaf->logs, k);
      if (pos < 0) {
        leaf->vlock.unlock();
        return tr.finish(false);
      }
      alignas(kCacheLineSize) std::uint8_t snew[kCacheLineSize];
      alignas(kCacheLineSize) std::uint8_t fnew[kCacheLineSize];
      std::memcpy(snew, leaf->pslot, kCacheLineSize);
      std::memcpy(fnew, leaf->fps, kCacheLineSize);
      slot_fp_remove_at(snew, fnew, pos);
      publish_slot(leaf, snew, fnew);
      size_.fetch_sub(1, std::memory_order_relaxed);
      leaf->vlock.unlock();
      return tr.finish(true);
    }
  }

  /// Point lookup (Alg 4).  The snapshot's fingerprint line filters slot
  /// positions branch-free before any full key is touched: a miss usually
  /// costs zero key loads, a hit one (false positives are verified through
  /// the indirection, so they only cost an extra load).
  RNT_NO_SANITIZE_THREAD std::optional<Value> find(Key k) const {
    obs::OpTrace tr(obs::OpKind::kFind, k);
    obs::HeatScope hs(k);
    epoch::Guard g = epochs_.pin();
    for (;;) {
      Leaf* leaf = inner_.find_leaf(k);
      // Overlap the metadata lines' fetch (header + slot + fingerprints)
      // with the version read; matched KV lines are fetched on demand —
      // the fingerprint filter touches at most a couple of them.
      prefetch_range(leaf, 4 * kCacheLineSize);
      for (;;) {
        const std::uint64_t v = leaf->vlock.stable_version();
        if (beyond(leaf, k)) {
          Leaf* nxt = pool_.ptr<Leaf>(leaf->next.load(std::memory_order_acquire));
          if (leaf->vlock.stable_version() != v || nxt == nullptr) break;  // re-traverse
          leaf = nxt;
          continue;
        }
        alignas(kCacheLineSize) std::uint8_t snap[2 * kCacheLineSize];
        if (!snapshot_slot(leaf, snap)) {
          stats_.count_find_retry();
          continue;
        }
        const int pos = slot_fp_find(snap, snap + kCacheLineSize, leaf->logs, k);
        std::optional<Value> res;
        if (pos >= 0) {
          // Copy into a local before constructing the optional: the ctor is
          // an out-of-line template instantiation, and handing it a reference
          // into the (racy, validated-below) log line would put the shared
          // read outside this function's RNT_NO_SANITIZE_THREAD scope.
          const Value val = leaf->logs[snap[1 + pos]].value;
          res = val;
        }
        if (leaf->vlock.stable_version() != v) {
          stats_.count_find_retry();
          continue;  // split raced; snapshot may index rewritten logs
        }
        tr.leaf(pool_.off(leaf));
        hs.leaf(pool_.off(leaf));
        tr.finish(res.has_value());
        return res;
      }
    }
  }

  /// Range query (S5.2.4): visit entries with key >= @p start in ascending
  /// order until @p fn returns false.  fn(key, value) -> bool (continue?).
  /// Per-leaf atomic snapshots; the scan as a whole follows the persistent
  /// next chain exactly as the paper describes.
  template <typename Fn>
  RNT_NO_SANITIZE_THREAD std::size_t scan(Key start, Fn&& fn) const {
    obs::OpTrace tr(obs::OpKind::kScan, start);
    obs::HeatScope hs(start);
    epoch::Guard g = epochs_.pin();
    std::size_t visited = 0;
    Leaf* leaf = inner_.find_leaf(start);
    bool first = true;
    while (leaf != nullptr) {
      const std::uint64_t v = leaf->vlock.stable_version();
      if (first && beyond(leaf, start)) {
        Leaf* nxt = pool_.ptr<Leaf>(leaf->next.load(std::memory_order_acquire));
        if (leaf->vlock.stable_version() != v || nxt == nullptr) continue;
        leaf = nxt;
        continue;
      }
      alignas(kCacheLineSize) std::uint8_t snap[2 * kCacheLineSize];
      if (!snapshot_slot(leaf, snap)) continue;
      Entry batch[Leaf::kLogCap];
      const int count = snap[0];
      int n_batch = 0;
      const int from = first ? slot_lower_bound(snap, leaf->logs, start) : 0;
      for (int i = from; i < count; ++i) batch[n_batch++] = leaf->logs[snap[1 + i]];
      Leaf* nxt = pool_.ptr<Leaf>(leaf->next.load(std::memory_order_acquire));
      if (leaf->vlock.stable_version() != v) continue;  // split raced: redo leaf
      if (first) {
        tr.leaf(pool_.off(leaf));
        hs.leaf(pool_.off(leaf));
      } else if (n_batch > 0) {
        // Attribute heat to every leaf the scan actually visits, not just
        // its start bucket — a 1000-key scan heats the whole visited range.
        obs::heatmap_record_at(batch[0].key, obs::HeatCause::kOp);
      }
      first = false;
      for (int i = 0; i < n_batch; ++i) {
        ++visited;
        if (!fn(batch[i].key, batch[i].value)) {
          tr.finish(visited > 0);
          return visited;
        }
      }
      leaf = nxt;
    }
    tr.finish(visited > 0);
    return visited;
  }

  /// Convenience: collect up to @p n entries starting at @p start.
  std::size_t scan_n(Key start, std::size_t n,
                     std::vector<std::pair<Key, Value>>& out) const {
    out.clear();
    out.reserve(n);
    scan(start, [&](Key k, Value v) {
      out.emplace_back(k, v);
      return out.size() < n;
    });
    return out.size();
  }

  /// Approximate number of live keys (exact when quiescent).
  std::size_t size() const noexcept {
    return static_cast<std::size_t>(size_.load(std::memory_order_relaxed));
  }

  const TreeStats& stats() const noexcept { return stats_; }
  TreeStats& stats() noexcept { return stats_; }
  bool dual_slot() const noexcept { return opt_.dual_slot; }
  int height() const noexcept { return inner_.height(); }
  unsigned fallback_stripes() const noexcept { return stripes_.count(); }
  const htm::StripeTable& stripe_table() const noexcept { return stripes_; }

  /// Stripe currently covering @p k's leaf (storm targeting in benches and
  /// fault tests; approximate under concurrent splits).
  unsigned stripe_of_key(Key k) const {
    epoch::Guard g = epochs_.pin();
    return stripes_.index_of(chase(inner_.find_leaf(k), k));
  }

  /// Number of leaves (walks the chain; diagnostics).
  std::size_t leaf_count() const {
    std::size_t n = 0;
    for (Leaf* l = leftmost(); l != nullptr; l = next_leaf(l)) ++n;
    return n;
  }

  // ------------------------------------------------------------------
  // Structural introspection (obs/struct_audit.hpp)
  // ------------------------------------------------------------------

  /// Capacities the structural auditor normalises fill factors against.
  static constexpr int slot_capacity() noexcept {
    return static_cast<int>(kSlotCap);
  }
  static constexpr int log_capacity() noexcept {
    return static_cast<int>(Leaf::kLogCap);
  }
  static constexpr int inner_fanout() noexcept {
    return inner::InnerTree<Key, Leaf>::kFanout;
  }

  /// Epoch-safe read-only walk of the volatile inner tree: fn(level,
  /// separator_count) per node.  Safe concurrently with writers — the
  /// inner tree is COW and the guard keeps the snapshot's nodes alive.
  template <typename Fn>
  void visit_inner(Fn&& fn) const {
    epoch::Guard g = epochs_.pin();
    inner_.for_each_node(fn);
  }

  /// Epoch-safe walk of the persistent leaf chain: fn(live_entries,
  /// allocated_log_entries) per leaf.  Reads are relaxed snapshots —
  /// counts are approximate under concurrent writers, exact quiescent.
  template <typename Fn>
  void visit_leaves(Fn&& fn) const {
    epoch::Guard g = epochs_.pin();
    for (Leaf* l = leftmost(); l != nullptr; l = next_leaf(l))
      fn(static_cast<int>(l->pslot[0]),
         l->nlogs.load(std::memory_order_relaxed));
  }

  /// Validate structural invariants (tests): per-leaf sortedness/uniqueness,
  /// chain ordering against high_key, and slot indices within nlogs.
  /// Single-threaded use only.  Throws std::logic_error on violation.
  void check_invariants() const {
    Key prev{};
    bool have_prev = false;
    for (Leaf* l = leftmost(); l != nullptr; l = next_leaf(l)) {
      const int count = l->pslot[0];
      if (count > static_cast<int>(kSlotCap))
        throw std::logic_error("slot count exceeds capacity");
      const std::uint32_t nlogs = l->nlogs.load(std::memory_order_relaxed);
      std::uint64_t seen_idx = 0;
      for (int i = 0; i < count; ++i) {
        const std::uint32_t idx = l->pslot[1 + i];
        if (idx >= Leaf::kLogCap)
          throw std::logic_error("slot index beyond log capacity");
        if (idx >= nlogs)
          throw std::logic_error("slot index beyond allocated log entries");
        if ((seen_idx >> idx) & 1)
          throw std::logic_error("duplicate log index in slot array");
        seen_idx |= std::uint64_t{1} << idx;
        if (l->fps[i] != key_fp(l->logs[idx].key))
          throw std::logic_error("stale fingerprint at slot position");
        const Key k = l->logs[idx].key;
        if (have_prev && !(prev < k))
          throw std::logic_error("keys not strictly increasing");
        prev = k;
        have_prev = true;
        if (l->has_high.load(std::memory_order_relaxed) != 0 &&
            !(k < l->high_key.load(std::memory_order_relaxed)))
          throw std::logic_error("key at/above leaf high_key");
      }
    }
  }

 private:
  enum class Mode { kInsert, kUpdate, kUpsert };

  static constexpr std::uint32_t kNoEntry = ~0u;

  Leaf* leftmost() const noexcept {
    return pool_.ptr<Leaf>(pool_.root(opt_.root_slot));
  }
  Leaf* next_leaf(Leaf* l) const noexcept {
    return pool_.ptr<Leaf>(l->next.load(std::memory_order_acquire));
  }

  /// k is at/above this leaf's high bound (belongs to a right sibling).
  static bool beyond(const Leaf* leaf, Key k) noexcept {
    return leaf->has_high.load(std::memory_order_acquire) != 0 &&
           !(k < leaf->high_key.load(std::memory_order_acquire));
  }
  /// Under the leaf lock: leaf still covers k.
  static bool covers(const Leaf* leaf, Key k) noexcept { return !beyond(leaf, k); }

  /// B-link chase: follow next links until the leaf's range covers k.
  Leaf* chase(Leaf* leaf, Key k) const {
    for (;;) {
      const std::uint64_t v = leaf->vlock.stable_version();
      if (!beyond(leaf, k)) return leaf;
      Leaf* nxt = pool_.ptr<Leaf>(leaf->next.load(std::memory_order_acquire));
      if (leaf->vlock.stable_version() != v || nxt == nullptr) continue;
      leaf = nxt;
    }
  }

  /// Alg 2: lock-free log-entry allocation.  Returns kNoEntry when full.
  static std::uint32_t allocate_entry(Leaf* leaf) noexcept {
    std::uint32_t e = leaf->nlogs.load(std::memory_order_relaxed);
    for (;;) {
      if (e >= Leaf::kLogCap) return kNoEntry;
      if (leaf->nlogs.compare_exchange_weak(e, e + 1, std::memory_order_acq_rel,
                                            std::memory_order_relaxed))
        return e;
    }
  }

  /// Publish a new slot-array image: HTM-atomic store of the full cache
  /// line, then the flush (persistent instruction #2).  In single-slot mode
  /// the reader-visible window (mseq) must include the flush so a reader
  /// can never return data whose slot array is not yet durable — this is
  /// the read-uncommitted anomaly the paper closes; in dual-slot mode the
  /// readers' window is only the transient-array copy below.  The transient
  /// fingerprint line is rewritten inside the same reader-visible window as
  /// the slot array it mirrors (plain stores: it is never persisted).
  void publish_slot(Leaf* leaf, const std::uint8_t* snew,
                    const std::uint8_t* fnew) {
    // fnew == leaf->fps means "fingerprints unchanged" (an in-place value
    // update re-points a slot at a new log entry for the same key): skip the
    // self-copy but keep the seqlock windows identical.
    if (!opt_.dual_slot) leaf->mseq.write_begin();
    // Striped lock elision: the transaction subscribes to the stripe
    // covering THIS leaf, so a capacity-abort storm serializes only its
    // stripe's fallbacks while every other stripe keeps committing in HTM.
    // Lock order: the leaf version-lock (held here) always precedes stripe
    // locks.  The persist stays OUTSIDE the transaction (a flush inside an
    // RTM transaction aborts it; the shadow asserts the equivalent).
    htm::atomic_exec_striped(
        stripes_, stripes_.index_of(leaf),
        [&]() { nvm::copy_nvm(leaf->pslot, snew, kCacheLineSize); });
    // The slot line IS the op's durable commit point (the KV entry was
    // persisted before the lock), so this flush — and only this flush — may
    // defer its fence to a group-persistency batch barrier: a crash mid-batch
    // loses whole unacknowledged ops, never tears one.  Outside a
    // nvm::BatchScope this is a plain persist().
    nvm::persist_batchable(leaf->pslot, kCacheLineSize);
    if (!opt_.dual_slot) {
      if (fnew != leaf->fps) std::memcpy(leaf->fps, fnew, kCacheLineSize);
      leaf->mseq.write_end();
    } else {
      // htmLeafCopySlot: publish to the transient array readers use.
      leaf->tseq.write_begin();
      std::memcpy(leaf->tslot, leaf->pslot, kCacheLineSize);
      if (fnew != leaf->fps) std::memcpy(leaf->fps, fnew, kCacheLineSize);
      leaf->tseq.write_end();
    }
  }

  /// htmLeafSnapshot: consistent copy of the reader-visible slot array AND
  /// its fingerprint line.  @p out receives 2 cache lines: the slot array
  /// at out[0..63] and the position-parallel fingerprints at out[64..127].
  /// Readers race with publish_slot by design (seqlock validation discards
  /// torn copies), so the whole read side is RNT_NO_SANITIZE_THREAD —
  /// see common/hints.hpp.
  RNT_NO_SANITIZE_THREAD bool snapshot_slot(const Leaf* leaf,
                                            std::uint8_t* out) const {
    if (opt_.dual_slot) {
      // tslot and fps are adjacent lines: one contiguous 128-byte copy.
      const std::uint32_t s = leaf->tseq.read_begin();
      racy_copy(out, leaf->tslot, 2 * kCacheLineSize);
      return leaf->tseq.read_validate(s);
    }
    const std::uint32_t s = leaf->mseq.read_begin();
    racy_copy(out, leaf->pslot, kCacheLineSize);
    racy_copy(out + kCacheLineSize, leaf->fps, kCacheLineSize);
    return leaf->mseq.read_validate(s);
  }

  /// RAII release of the in-flight-writer ref (exception-safe: an injected
  /// CrashPoint must not leave the quiesce counter pinned).
  struct WriterRef {
    Leaf* leaf = nullptr;
    ~WriterRef() { release(); }
    void release() noexcept {
      if (leaf != nullptr) {
        leaf->writers.fetch_sub(1, std::memory_order_release);
        leaf = nullptr;
      }
    }
  };

  common::Status modify(Key k, Value v, Mode mode) {
    obs::OpTrace tr(mode == Mode::kInsert   ? obs::OpKind::kInsert
                    : mode == Mode::kUpdate ? obs::OpKind::kUpdate
                                            : obs::OpKind::kUpsert,
                    k);
    obs::HeatScope hs(k);
    for (;;) {
      epoch::Guard g = epochs_.pin();
      Leaf* leaf = inner_.find_leaf(k);
      leaf = chase(leaf, k);
      prefetch_range(leaf, sizeof(Leaf));  // overlap fetch with the KV flush
      const std::uint64_t ver = leaf->vlock.stable_version();

      // Pre-flight reservation: when this op is likely to fill the leaf and
      // trigger a split, secure the sibling's space BEFORE taking the lock
      // or publishing anything, so an exhausted pool is discovered while
      // backing out costs nothing.  nlogs is a conservative (racy but
      // atomic) fullness hint; if it under-estimates, split_locked falls
      // back to allocating under the lock — still before any mutation.  An
      // unconsumed reservation returns its block on every loop exit.
      nvm::PmemPool::Reservation res;
      if (leaf->nlogs.load(std::memory_order_relaxed) >= Leaf::kLogCap - 2)
        res = pool_.reserve(sizeof(Leaf));

      // Announce this in-flight log write so a concurrent split quiesces
      // before reusing log indices.  seq_cst pairs with the splitter's
      // set_split + writers scan (Dekker: one of us must see the other).
      leaf->writers.fetch_add(1, std::memory_order_seq_cst);
      WriterRef wref{leaf};
      if (htm::VersionLock::splitting(leaf->vlock.raw())) {
        wref.release();
        stats_.count_modify_restart();
        continue;
      }

      // Step 1 (concurrency): allocate a log entry lock-free.
      const std::uint32_t e = allocate_entry(leaf);
      if (e == kNoEntry) {
        wref.release();
        const common::Status fs = force_split(leaf, &res);
        if (fs.pool_exhausted()) {
          // The log area is full, the leaf is mostly live (compaction does
          // not apply), and there is no room for a sibling: the op cannot
          // proceed.  Nothing was mutated — fail cleanly instead of
          // spinning on a split that can never happen.
          tr.finish(false);
          return fs;
        }
        stats_.count_modify_restart();
        continue;
      }
      // Step 2 (no coordination): write the KV.
      nvm::store(leaf->logs[e], Entry{k, v});
      // Step 3 (persistency): flush it — outside the critical section, so
      // concurrent writers to the same leaf flush in parallel.
      nvm::persist(&leaf->logs[e], sizeof(Entry));
      wref.release();

      // Step 4 (concurrency): take the leaf lock, make the entry reachable.
      tr.leaf(pool_.off(leaf));
      hs.leaf(pool_.off(leaf));
      {
        obs::PhaseTimer pt(obs::Phase::kLockWait);
        leaf->vlock.lock();
      }
      if ((leaf->vlock.raw() & htm::VersionLock::kVersionMask) !=
              (ver & htm::VersionLock::kVersionMask) ||
          !covers(leaf, k)) {
        // A split raced us: our log entry may have been compacted over.
        // Abandon it (the slot array never pointed at it) and retry.
        leaf->vlock.unlock();
        stats_.count_modify_restart();
        continue;
      }

      // Exact-match probe through the fingerprint line first: updates and
      // conditional failures resolve with no binary search; only an insert
      // of a fresh key pays the lower_bound for its sorted position.
      int pos = slot_fp_find(leaf->pslot, leaf->fps, leaf->logs, k);
      const bool exists = pos >= 0;
      if ((mode == Mode::kInsert && exists) ||
          (mode == Mode::kUpdate && !exists)) {
        // Conditional write fails with no extra cost: the slot array told
        // us (the paper's S3.3 argument) — the allocated entry is leaked
        // until the next compaction.  A failed (exhausted) split here is
        // deferred: the op's own outcome is unaffected and the full leaf
        // stays valid until space frees up.
        leaf->plogs++;
        const bool full = leaf->plogs >= Leaf::kLogCap - 1;
        if (full) (void)split_locked(leaf, &res);
        leaf->vlock.unlock();
        tr.finish(false);
        return mode == Mode::kInsert ? common::StatusCode::kKeyExists
                                     : common::StatusCode::kKeyAbsent;
      }
      if (!exists && leaf->pslot[0] >= kSlotCap) {
        // An earlier split was deferred by exhaustion and the slot line is
        // at capacity: publishing one more entry would overflow it.  The
        // publish-then-split order must invert here — split first, and if
        // space still cannot be found, refuse the insert (our log entry is
        // abandoned, reclaimed by the next compaction like any leaked one).
        const common::Status ss = split_locked(leaf, &res);
        leaf->vlock.unlock();
        if (ss.pool_exhausted()) {
          tr.finish(false);
          return ss;
        }
        stats_.count_modify_restart();
        continue;  // the split bumped the version: re-locate and retry
      }
      alignas(kCacheLineSize) std::uint8_t snew[kCacheLineSize];
      alignas(kCacheLineSize) std::uint8_t fnew[kCacheLineSize];
      std::memcpy(snew, leaf->pslot, kCacheLineSize);
      const std::uint8_t* fpub = leaf->fps;  // update: same key, same fps
      if (exists) {
        snew[1 + pos] = static_cast<std::uint8_t>(e);  // update: re-point slot
      } else {
        std::memcpy(fnew, leaf->fps, kCacheLineSize);
        pos = slot_lower_bound(snew, leaf->logs, k);
        slot_fp_insert_at(snew, fnew, pos, static_cast<std::uint8_t>(e),
                          key_fp(k));
        fpub = fnew;
      }
      publish_slot(leaf, snew, fpub);
      leaf->plogs++;
      if (!exists) size_.fetch_add(1, std::memory_order_relaxed);
      // The op itself is already durable and acknowledged; an exhausted
      // split is deferred, not an error.
      if (leaf->plogs >= Leaf::kLogCap - 1 || snew[0] >= kSlotCap)
        (void)split_locked(leaf, &res);
      leaf->vlock.unlock();
      tr.finish(true);
      return common::OkStatus();
    }
  }

  /// The log area filled before plogs hit the threshold (entries leaked by
  /// races/conditional failures): split under the lock, then retry.
  common::Status force_split(Leaf* leaf, nvm::PmemPool::Reservation* res) {
    common::Status s = common::OkStatus();
    {
      obs::PhaseTimer pt(obs::Phase::kLockWait);
      leaf->vlock.lock();
    }
    if (leaf->nlogs.load(std::memory_order_relaxed) >= Leaf::kLogCap)
      s = split_locked(leaf, res);
    leaf->vlock.unlock();
    return s;
  }

  /// Alg 3 + the shrink variant.  Caller holds the leaf lock.  Returns
  /// kPoolExhausted — with the leaf untouched and still valid — when a real
  /// split is needed but no sibling can be allocated; the shrink variant
  /// needs no allocation and always succeeds.
  common::Status split_locked(Leaf* leaf,
                              nvm::PmemPool::Reservation* res = nullptr) {
    obs::PhaseTimer pt(obs::Phase::kSmo);
    const int live = leaf->pslot[0];
    if (live < static_cast<int>(kSlotCap) / 2) {
      compact_locked(leaf);
      return common::OkStatus();
    }
    // Secure the sibling's space first — from the caller's pre-flight
    // reservation when it holds one, else a direct allocation — so failure
    // happens before the splitting bit, the quiesce, or any mutation.
    const std::uint64_t new_off = (res != nullptr && res->valid())
                                      ? res->consume()
                                      : pool_.alloc(sizeof(Leaf));
    if (new_off == 0) return common::StatusCode::kPoolExhausted;
    stats_.count_split();
    leaf->vlock.set_split();
    quiesce_writers(leaf);

    // Log the whole leaf to this thread's persistent undo slot.
    nvm::UndoSlot& undo = pool_.undo_slot(pmem_thread_id());
    begin_undo(undo, leaf, new_off);
    const Leaf* src = reinterpret_cast<const Leaf*>(undo.data);

    Leaf* nl = pool_.ptr<Leaf>(new_off);
    // Striped-regime invariant: every writer of a leaf's slot line holds
    // that leaf's stripe (the software-fallback serializer).  The split
    // rewrites TWO leaves' slot lines, so it takes both stripes via the
    // ordered multi-acquire (ascending index, duplicates collapsed —
    // deadlock-free against any other multi-acquire).  The guard is
    // released BEFORE inner_.insert_split: at fallback_stripes == 1 the SMO
    // stripe aliases stripe 0 and SpinLock is not reentrant, so leaf
    // stripes and the SMO stripe are never held together on this path.
    htm::MultiStripeGuard sg(stripes_,
                             {stripes_.index_of(leaf), stripes_.index_of(nl)});
    nl->init();
    const int split = live / 2;
    const Key split_key = src->logs[src->pslot[1 + split]].key;

    // Right half: entries [split, live) compacted into the new leaf.
    for (int i = split; i < live; ++i)
      nl->logs[i - split] = src->logs[src->pslot[1 + i]];
    nl->pslot[0] = static_cast<std::uint8_t>(live - split);
    for (int i = 0; i < live - split; ++i)
      nl->pslot[1 + i] = static_cast<std::uint8_t>(i);
    nl->next.store(src->next.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    nl->high_key.store(src->high_key.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    nl->has_high.store(src->has_high.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    nl->nlogs.store(static_cast<std::uint32_t>(live - split),
                    std::memory_order_relaxed);
    nl->plogs = static_cast<std::uint32_t>(live - split);
    std::memcpy(nl->tslot, nl->pslot, kCacheLineSize);
    slot_fp_rebuild(nl->pslot, nl->fps, nl->logs);
    nvm::on_modified(nl, sizeof(Leaf));
    nvm::persist(nl, sizeof(Leaf));

    // Left half: compact in place from the undo image; readers are held off
    // by the splitting bit, crash rolls the whole leaf back from the undo.
    for (int i = 0; i < split; ++i) {
      nvm::store(leaf->logs[i], src->logs[src->pslot[1 + i]]);
      leaf->pslot[1 + i] = static_cast<std::uint8_t>(i);
    }
    leaf->pslot[0] = static_cast<std::uint8_t>(split);
    nvm::on_modified(leaf->pslot, kCacheLineSize);
    leaf->next.store(new_off, std::memory_order_relaxed);
    leaf->high_key.store(split_key, std::memory_order_relaxed);
    leaf->has_high.store(1, std::memory_order_relaxed);
    nvm::on_modified(leaf, kCacheLineSize);  // header line
    leaf->nlogs.store(static_cast<std::uint32_t>(split), std::memory_order_relaxed);
    leaf->plogs = static_cast<std::uint32_t>(split);
    nvm::persist(leaf, sizeof(Leaf));
    leaf->tseq.write_begin();
    std::memcpy(leaf->tslot, leaf->pslot, kCacheLineSize);
    slot_fp_rebuild(leaf->pslot, leaf->fps, leaf->logs);
    leaf->tseq.write_end();

    // The split is durable; retire the undo BEFORE making the new leaf
    // reachable to other writers, so recovery can never roll back state
    // that others have built upon.
    end_undo(undo);

    leaf->vlock.unset_split_and_bump();
    sg.release();
    inner_.insert_split(split_key, leaf, nl);
    return common::OkStatus();
  }

  /// Shrink-split: obsolete log entries dominate; compact in place.
  /// (kSmo attribution comes from split_locked, its only caller.)
  void compact_locked(Leaf* leaf) {
    stats_.count_shrink_split();
    leaf->vlock.set_split();
    quiesce_writers(leaf);
    // Same striped-regime invariant as split_locked, single leaf: hold the
    // stripe covering this leaf's slot line for the in-place rewrite.
    htm::MultiStripeGuard sg(stripes_, {stripes_.index_of(leaf)});
    nvm::UndoSlot& undo = pool_.undo_slot(pmem_thread_id());
    begin_undo(undo, leaf, 0);
    const Leaf* src = reinterpret_cast<const Leaf*>(undo.data);
    const int live = src->pslot[0];
    for (int i = 0; i < live; ++i) {
      nvm::store(leaf->logs[i], src->logs[src->pslot[1 + i]]);
      leaf->pslot[1 + i] = static_cast<std::uint8_t>(i);
    }
    leaf->pslot[0] = static_cast<std::uint8_t>(live);
    nvm::on_modified(leaf->pslot, kCacheLineSize);
    leaf->nlogs.store(static_cast<std::uint32_t>(live), std::memory_order_relaxed);
    leaf->plogs = static_cast<std::uint32_t>(live);
    nvm::on_modified(leaf, kCacheLineSize);
    nvm::persist(leaf, sizeof(Leaf));
    leaf->tseq.write_begin();
    std::memcpy(leaf->tslot, leaf->pslot, kCacheLineSize);
    slot_fp_rebuild(leaf->pslot, leaf->fps, leaf->logs);
    leaf->tseq.write_end();
    end_undo(undo);
    leaf->vlock.unset_split_and_bump();
  }

  /// Wait until no in-flight log writes remain.  Called with the lock held
  /// and the splitting bit set: new writers observe the bit (seq_cst pairing
  /// with their fetch_add) and back off, so this terminates.
  static void quiesce_writers(Leaf* leaf) noexcept {
    Backoff bo;
    while (leaf->writers.load(std::memory_order_seq_cst) != 0) bo.pause();
  }

  void begin_undo(nvm::UndoSlot& undo, Leaf* leaf, std::uint64_t aux_off) {
    static_assert(sizeof(Leaf) <= nvm::UndoSlot::kDataSize);
    nvm::copy_nvm(undo.data, leaf, sizeof(Leaf));
    nvm::store(undo.target_off, pool_.off(leaf));
    nvm::store(undo.aux_off, aux_off);
    nvm::store(undo.data_size, std::uint64_t{sizeof(Leaf)});
    nvm::persist(&undo, sizeof(undo));
    nvm::store(undo.state, std::uint64_t{nvm::UndoSlot::kActive});
    nvm::persist(&undo.state, sizeof(undo.state));
  }

  void end_undo(nvm::UndoSlot& undo) {
    nvm::store(undo.state, std::uint64_t{nvm::UndoSlot::kIdle});
    nvm::persist(&undo.state, sizeof(undo.state));
  }

  // ------------------------------------------------------------------
  // Recovery (S5.4)
  // ------------------------------------------------------------------

  /// Throwing wrapper around recover_status: the recover_t ctors keep the
  /// legacy contract (corrupt pool → std::runtime_error); the checked
  /// factory surfaces the same result as a structured Status instead.
  void recover(bool crashed) {
    recovery_status_ = recover_status(crashed);
    if (!recovery_status_.ok())
      throw std::runtime_error(std::string("RNTree::recover: ") +
                               recovery_detail_);
  }

  /// Tag ctor behind recover_checked: identical to the external-crashed
  /// recover_t ctor except recovery failure lands in recovery_status_
  /// instead of a throw.
  struct checked_t {};
  RNTree(checked_t, nvm::PmemPool& pool, bool crashed, Options opt)
      : pool_(pool),
        opt_(opt),
        stripes_(opt.fallback_stripes),
        inner_(epochs_, opt.cow_smo, &stripes_.smo_stripe()) {
    recovery_status_ = recover_status(crashed);
  }

  common::Status fail_recovery(const char* detail) {
    recovery_detail_ = detail;
    return common::StatusCode::kCorrupted;
  }

  /// Per-leaf transient rebuild.  ALL volatile header fields must be
  /// re-initialised: a crash rewinds the header cache line to its durable
  /// image, which can leave the seqlocks odd (readers would spin forever)
  /// or the writer-quiesce counter nonzero (splits would never proceed).
  /// Pure volatile-side repair — no NVM events — so recovery workers run it
  /// concurrently on disjoint leaves.  Returns false when the persistent
  /// slot metadata is torn (live count or log index out of range),
  /// validated BEFORE slot_fp_rebuild dereferences the indices.
  bool repair_leaf(Leaf* leaf, bool crashed) {
    leaf->vlock.reset();
    leaf->mseq.reset();
    leaf->tseq.reset();
    leaf->writers.store(0, std::memory_order_relaxed);
    const int count = leaf->pslot[0];
    if (count > static_cast<int>(kSlotCap)) return false;
    std::uint32_t max_idx = 0;
    for (int i = 0; i < count; ++i) {
      const std::uint8_t idx = leaf->pslot[1 + i];
      if (idx >= Leaf::kLogCap) return false;
      max_idx = std::max<std::uint32_t>(max_idx, idx);
    }
    if (crashed) {
      // nlogs/plogs are not crash-consistent: recompute from the slot
      // array — "scan the slot array to find the max index of log
      // entries" (S6.2.6).  Unreferenced tail entries are reclaimed for
      // free: the next allocation may overwrite them.
      const std::uint32_t n = count == 0 ? 0 : max_idx + 1;
      leaf->nlogs.store(n, std::memory_order_relaxed);
      leaf->plogs = n;
    }
    // else: the clean-shutdown path trusts the persisted header counters.
    std::memcpy(leaf->tslot, leaf->pslot, kCacheLineSize);
    // The fingerprint line is transient: always rebuilt from the
    // persistent slot array, clean shutdown or not.
    slot_fp_rebuild(leaf->pslot, leaf->fps, leaf->logs);
    return true;
  }

  /// Recovery worker count for @p n_leaves.  An explicit request (N > 1) is
  /// honoured up to one worker per block — NOT clamped to the core count, so
  /// the parallel path is exercised (timesliced) even on small CI hosts.
  /// Auto mode (0) stays serial below kParallelRecoveryMinLeaves and
  /// respects the hardware above it (spawning threads a 1-core host cannot
  /// run only adds overhead when nobody asked for them).
  unsigned recovery_worker_count(std::size_t n_leaves) const {
    if (opt_.recovery_workers == 1) return 1;
    const unsigned blocks = static_cast<unsigned>(
        (n_leaves + kRecoveryBlock - 1) / kRecoveryBlock);
    if (opt_.recovery_workers > 1)
      return std::max(
          1u, std::min(static_cast<unsigned>(opt_.recovery_workers), blocks));
    if (n_leaves < kParallelRecoveryMinLeaves) return 1;
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    return std::max(1u, std::min(8u, std::min(hw, blocks)));
  }

  common::Status recover_status(bool crashed) {
    detail::recovery_counters().runs.inc();
    // All recovery-time NVM mutation happens HERE, serial, before any
    // worker starts: a crash anywhere during the phases below re-runs
    // recovery from unchanged persistent state (idempotence — the
    // crash-during-recovery sweep in tests/crash_sweep exercises this).
    if (crashed) roll_back_splits();

    // Phase 1 (serial): walk the persistent chain once to enumerate
    // leaves.  The chain is the root of trust; workers operate on this
    // snapshot vector and never chase next pointers themselves.
    std::vector<Leaf*> leaves;
    for (Leaf* leaf = leftmost(); leaf != nullptr; leaf = next_leaf(leaf))
      leaves.push_back(leaf);
    if (leaves.empty())
      return fail_recovery("no leaves reachable from the root slot");
    const std::size_t n = leaves.size();
    detail::recovery_counters().leaves.inc(n);

    // Phase 2 (parallel): per-leaf volatile rebuild.  Workers claim fixed
    // kRecoveryBlock-sized index blocks off a shared cursor (deterministic
    // partition, dynamic load balance); each leaf's separator lands in its
    // own index slot, so the merge below is independent of scheduling.
    std::vector<std::uint8_t> has_sep(n, 0);
    std::vector<Key> sep(n, Key{});
    std::atomic<std::uint64_t> live_total{0};
    std::atomic<bool> torn{false};
    std::atomic<std::size_t> next_block{0};
    auto work = [&]() {
      std::uint64_t local_live = 0;
      for (;;) {
        const std::size_t lo =
            next_block.fetch_add(1, std::memory_order_relaxed) *
            kRecoveryBlock;
        if (lo >= n) break;
        const std::size_t hi = std::min(n, lo + kRecoveryBlock);
        for (std::size_t i = lo; i < hi; ++i) {
          Leaf* leaf = leaves[i];
          if (!repair_leaf(leaf, crashed)) {
            detail::recovery_counters().corrupt_leaves.inc();
            torn.store(true, std::memory_order_relaxed);
            break;
          }
          local_live += leaf->pslot[0];
          if (leaf->has_high.load(std::memory_order_relaxed) != 0) {
            has_sep[i] = 1;
            sep[i] = leaf->high_key.load(std::memory_order_relaxed);
          }
        }
        if (torn.load(std::memory_order_relaxed)) break;
      }
      live_total.fetch_add(local_live, std::memory_order_relaxed);
    };

    const unsigned workers = recovery_worker_count(n);
    if (workers <= 1) {
      work();
    } else {
      detail::recovery_counters().parallel_runs.inc();
      detail::recovery_counters().workers.inc(workers);
      std::vector<std::thread> pool;
      pool.reserve(workers);
      struct Joiner {  // exception-safe even if a late emplace_back throws
        std::vector<std::thread>& ts;
        ~Joiner() {
          for (auto& t : ts)
            if (t.joinable()) t.join();
        }
      } joiner{pool};
      for (unsigned w = 0; w < workers; ++w) pool.emplace_back(work);
    }
    if (torn.load(std::memory_order_relaxed))
      return fail_recovery("torn leaf (slot metadata out of range)");

    // Phase 3 (serial): deterministic merge in chain-index order.
    std::vector<Key> separators;
    separators.reserve(n - 1);
    for (std::size_t i = 0; i < n; ++i)
      if (has_sep[i] != 0) separators.push_back(sep[i]);
    if (separators.size() + 1 != n)
      return fail_recovery("broken high_key chain");
    size_.store(
        static_cast<std::int64_t>(live_total.load(std::memory_order_relaxed)),
        std::memory_order_relaxed);
    inner_.bulk_load(leaves, separators);
    return common::OkStatus();
  }

  /// Undo any split that was in flight at the crash: restore the logged
  /// leaf image and release the half-born sibling.  Correct because the
  /// undo slot is retired (IDLE) *before* the new leaf becomes reachable,
  /// so a still-ACTIVE slot means no acknowledged writes depend on the new
  /// state.
  void roll_back_splits() {
    for (int t = 0; t < nvm::kMaxThreads; ++t) {
      nvm::UndoSlot& undo = pool_.undo_slot(t);
      if (undo.state != nvm::UndoSlot::kActive) continue;
      if (undo.data_size != sizeof(Leaf)) continue;  // another tree's slot
      detail::recovery_counters().rollbacks.inc();
      Leaf* target = pool_.ptr<Leaf>(undo.target_off);
      nvm::copy_nvm(target, undo.data, sizeof(Leaf));
      nvm::persist(target, sizeof(Leaf));
      if (undo.aux_off != 0) pool_.free(undo.aux_off, sizeof(Leaf));
      nvm::store(undo.state, std::uint64_t{nvm::UndoSlot::kIdle});
      nvm::persist(&undo.state, sizeof(undo.state));
    }
  }

  /// Recovery workers claim leaves in blocks of this many: big enough to
  /// amortise the cursor fetch_add, small enough to balance skewed chains.
  static constexpr std::size_t kRecoveryBlock = 64;

  nvm::PmemPool& pool_;
  Options opt_;
  mutable epoch::EpochManager epochs_;
  htm::StripeTable stripes_;
  inner::InnerTree<Key, Leaf> inner_;
  std::atomic<std::int64_t> size_{0};
  mutable TreeStats stats_;
  common::Status recovery_status_;
  const char* recovery_detail_ = "";
};

}  // namespace rnt::core
