// Indirect slot-array helpers (paper Fig 1 / wB+tree [7]).
//
// A slot array is one cache line: byte 0 holds the number of live entries,
// bytes 1..63 hold log-entry indices ordered by key.  It is the indirection
// that lets a leaf stay logically sorted while its KV log remains
// append-only.  These helpers operate on a *local copy* (a snapshot or a
// scratch buffer being prepared for an atomic publish) — never in place on a
// shared leaf.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>

#include "common/cacheline.hpp"
#include "common/hints.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace rnt::core {

inline constexpr std::uint32_t kSlotCap = kCacheLineSize - 1;  // 63 entries

inline std::uint8_t slot_count(const std::uint8_t* slot) noexcept {
  return slot[0];
}

/// First position whose key is >= k (binary search through the indirection).
/// The search helpers below carry RNT_NO_SANITIZE_THREAD because RNTree's
/// seqlock readers call them against live log arrays while writers append —
/// a by-design race resolved by post-read validation (common/hints.hpp).
template <typename Entry, typename Key>
RNT_NO_SANITIZE_THREAD int slot_lower_bound(const std::uint8_t* slot,
                                            const Entry* logs, Key k) noexcept {
  int lo = 0, hi = slot[0];
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (logs[slot[1 + mid]].key < k)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

/// True if position @p pos holds exactly key @p k.
template <typename Entry, typename Key>
RNT_NO_SANITIZE_THREAD bool slot_match(const std::uint8_t* slot,
                                       const Entry* logs, int pos, Key k) noexcept {
  return pos < slot[0] && logs[slot[1 + pos]].key == k;
}

/// Insert log index @p log_idx at sorted position @p pos (caller-searched).
inline void slot_insert_at(std::uint8_t* slot, int pos, std::uint8_t log_idx) noexcept {
  const int count = slot[0];
  std::memmove(slot + 1 + pos + 1, slot + 1 + pos,
               static_cast<std::size_t>(count - pos));
  slot[1 + pos] = log_idx;
  slot[0] = static_cast<std::uint8_t>(count + 1);
}

/// Remove the entry at position @p pos.
inline void slot_remove_at(std::uint8_t* slot, int pos) noexcept {
  const int count = slot[0];
  std::memmove(slot + 1 + pos, slot + 1 + pos + 1,
               static_cast<std::size_t>(count - pos - 1));
  slot[0] = static_cast<std::uint8_t>(count - 1);
}

// ---------------------------------------------------------------------------
// Key fingerprints (FPTree-style, SIGMOD'16): a transient 1-byte hash per
// slot position lets a point probe reject most positions with one SIMD/SWAR
// compare over a single cache line instead of a binary search whose every
// probe is a dependent load through the slot indirection.  The fingerprint
// line is volatile — rebuilt from the persistent slot array on recovery —
// so it adds zero persistent instructions to any op (Table 1 unchanged).
// ---------------------------------------------------------------------------

/// 1-byte key fingerprint.  Multiplicative (Fibonacci) hash: the top byte
/// mixes every input bit, so sequential and scrambled key streams both
/// spread across the 256 buckets (expected false-positive probes per miss
/// at 63 live entries: 63/256 ~= 0.25).
template <typename Key>
inline std::uint8_t key_fp(Key k) noexcept {
  return static_cast<std::uint8_t>(
      (static_cast<std::uint64_t>(k) * 0x9E3779B97F4A7C15ull) >> 56);
}

/// Bitmask of positions in [0, count) whose fingerprint byte equals @p fp.
/// Reads a fixed 64 bytes (one full line) branch-free; @p fps must be a
/// 64-byte array.  count must be <= 63 (kSlotCap).
inline std::uint64_t fp_match_mask(const std::uint8_t* fps, int count,
                                   std::uint8_t fp) noexcept {
  std::uint64_t m = 0;
#if defined(__SSE2__)
  const __m128i needle = _mm_set1_epi8(static_cast<char>(fp));
  for (int i = 0; i < 64; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(fps + i));
    m |= static_cast<std::uint64_t>(static_cast<std::uint32_t>(
             _mm_movemask_epi8(_mm_cmpeq_epi8(v, needle))))
         << i;
  }
#else
  // SWAR: XOR with the broadcast byte, detect zero bytes, compact each
  // byte's high bit into one bit via the movemask multiply trick.
  constexpr std::uint64_t kLo = 0x0101010101010101ull;
  constexpr std::uint64_t kHi = 0x8080808080808080ull;
  const std::uint64_t bcast = kLo * fp;
  for (int w = 0; w < 8; ++w) {
    std::uint64_t x;
    std::memcpy(&x, fps + w * 8, 8);
    x ^= bcast;
    const std::uint64_t zero = (x - kLo) & ~x & kHi;
    m |= (((zero >> 7) * 0x0102040810204080ull) >> 56) << (w * 8);
  }
#endif
  return m & ((std::uint64_t{1} << count) - 1);
}

/// Exact-match probe: position of key @p k, or -1 if absent.  Fingerprint
/// candidates are verified against the full key through the indirection, so
/// false positives cost one extra key load and false negatives are
/// impossible.  @p fps[i] must hold key_fp of the key at slot position i.
template <typename Entry, typename Key>
RNT_NO_SANITIZE_THREAD int slot_fp_find(const std::uint8_t* slot,
                                        const std::uint8_t* fps,
                                        const Entry* logs, Key k) noexcept {
  std::uint64_t m = fp_match_mask(fps, slot[0], key_fp(k));
  while (m != 0) {
    const int i = std::countr_zero(m);
    if (logs[slot[1 + i]].key == k) return i;
    m &= m - 1;
  }
  return -1;
}

/// slot_insert_at + the parallel fingerprint-line insert (same position).
inline void slot_fp_insert_at(std::uint8_t* slot, std::uint8_t* fps, int pos,
                              std::uint8_t log_idx, std::uint8_t fp) noexcept {
  const int count = slot[0];
  std::memmove(fps + pos + 1, fps + pos, static_cast<std::size_t>(count - pos));
  fps[pos] = fp;
  slot_insert_at(slot, pos, log_idx);
}

/// slot_remove_at + the parallel fingerprint-line remove.
inline void slot_fp_remove_at(std::uint8_t* slot, std::uint8_t* fps,
                              int pos) noexcept {
  const int count = slot[0];
  std::memmove(fps + pos, fps + pos + 1,
               static_cast<std::size_t>(count - pos - 1));
  slot_remove_at(slot, pos);
}

/// Rebuild the whole fingerprint line from a slot array and its log (splits,
/// compaction, recovery).  Positions >= count are zeroed for determinism.
template <typename Entry>
inline void slot_fp_rebuild(const std::uint8_t* slot, std::uint8_t* fps,
                            const Entry* logs) noexcept {
  const int count = slot[0];
  for (int i = 0; i < count; ++i) fps[i] = key_fp(logs[slot[1 + i]].key);
  std::memset(fps + count, 0, static_cast<std::size_t>(64 - count));
}

}  // namespace rnt::core
