// Indirect slot-array helpers (paper Fig 1 / wB+tree [7]).
//
// A slot array is one cache line: byte 0 holds the number of live entries,
// bytes 1..63 hold log-entry indices ordered by key.  It is the indirection
// that lets a leaf stay logically sorted while its KV log remains
// append-only.  These helpers operate on a *local copy* (a snapshot or a
// scratch buffer being prepared for an atomic publish) — never in place on a
// shared leaf.
#pragma once

#include <cstdint>
#include <cstring>

#include "common/cacheline.hpp"

namespace rnt::core {

inline constexpr std::uint32_t kSlotCap = kCacheLineSize - 1;  // 63 entries

inline std::uint8_t slot_count(const std::uint8_t* slot) noexcept {
  return slot[0];
}

/// First position whose key is >= k (binary search through the indirection).
template <typename Entry, typename Key>
int slot_lower_bound(const std::uint8_t* slot, const Entry* logs, Key k) noexcept {
  int lo = 0, hi = slot[0];
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (logs[slot[1 + mid]].key < k)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

/// True if position @p pos holds exactly key @p k.
template <typename Entry, typename Key>
bool slot_match(const std::uint8_t* slot, const Entry* logs, int pos, Key k) noexcept {
  return pos < slot[0] && logs[slot[1 + pos]].key == k;
}

/// Insert log index @p log_idx at sorted position @p pos (caller-searched).
inline void slot_insert_at(std::uint8_t* slot, int pos, std::uint8_t log_idx) noexcept {
  const int count = slot[0];
  std::memmove(slot + 1 + pos + 1, slot + 1 + pos,
               static_cast<std::size_t>(count - pos));
  slot[1 + pos] = log_idx;
  slot[0] = static_cast<std::uint8_t>(count + 1);
}

/// Remove the entry at position @p pos.
inline void slot_remove_at(std::uint8_t* slot, int pos) noexcept {
  const int count = slot[0];
  std::memmove(slot + 1 + pos, slot + 1 + pos + 1,
               static_cast<std::size_t>(count - pos - 1));
  slot[0] = static_cast<std::uint8_t>(count - 1);
}

}  // namespace rnt::core
