#include "epoch/ebr.hpp"

#include <cassert>
#include <thread>

#include "obs/metrics.hpp"

namespace rnt::epoch {

namespace {

// Reclamation telemetry (process-wide across every EpochManager instance;
// thread-sharded increments, so the pin hot path pays ~2 ns).
struct EpochCounters {
  obs::Counter pins{"epoch.pins"};
  obs::Counter retires{"epoch.retires"};
  obs::Counter collects{"epoch.collects"};
  obs::Counter freed{"epoch.freed"};
};

const EpochCounters& counters() {
  static EpochCounters c;
  return c;
}

}  // namespace

EpochManager::~EpochManager() {
  // All guards must be gone; free everything unconditionally.
  assert(min_active_epoch() == ~0ull && "EpochManager destroyed with active guards");
  std::lock_guard lk(limbo_mu_);
  for (Retired& r : limbo_) r.deleter();
  limbo_.clear();
}

Guard EpochManager::pin() noexcept {
  counters().pins.inc();
  std::uint64_t e = global_.load(std::memory_order_seq_cst);
  // Hash the thread id for a starting slot, then linear-probe for a free one.
  const auto tid = std::hash<std::thread::id>{}(std::this_thread::get_id());
  int idx = static_cast<int>(tid % kSlots);
  Backoff bo;
  for (;;) {
    for (int i = 0; i < kSlots; ++i) {
      const int s = (idx + i) % kSlots;
      std::uint64_t expected = kIdle;
      if (slots_[s].epoch.compare_exchange_strong(expected, e,
                                                  std::memory_order_seq_cst,
                                                  std::memory_order_relaxed)) {
        // Publication/validation loop: if the global epoch moved between our
        // initial read and the slot publish, a concurrent collect() may have
        // scanned past this slot; re-publish until the global is stable.
        // All ops are seq_cst so either collect() observes our slot or we
        // observe its epoch bump (Dekker-style).
        for (;;) {
          const std::uint64_t cur = global_.load(std::memory_order_seq_cst);
          if (cur == e) break;
          e = cur;
          slots_[s].epoch.exchange(e, std::memory_order_seq_cst);
        }
        return Guard(this, s);
      }
    }
    bo.pause();  // > kSlots simultaneous guards; wait for one to release
  }
}

void EpochManager::unpin(int slot) noexcept {
  slots_[slot].epoch.store(kIdle, std::memory_order_release);
}

std::uint64_t EpochManager::min_active_epoch() const noexcept {
  std::uint64_t min = ~0ull;
  for (const Slot& s : slots_) {
    const std::uint64_t e = s.epoch.load(std::memory_order_seq_cst);
    if (e != kIdle && e < min) min = e;
  }
  return min;
}

void EpochManager::retire(std::function<void()> deleter) {
  counters().retires.inc();
  const std::uint64_t e = global_.load(std::memory_order_acquire);
  bool do_collect = false;
  {
    std::lock_guard lk(limbo_mu_);
    limbo_.push_back({e, std::move(deleter)});
    do_collect = limbo_.size() >= 64;
  }
  if (do_collect) collect();
}

void EpochManager::collect() {
  counters().collects.inc();
  global_.fetch_add(1, std::memory_order_seq_cst);
  const std::uint64_t safe = min_active_epoch();
  std::vector<Retired> to_free;
  {
    std::lock_guard lk(limbo_mu_);
    auto keep = limbo_.begin();
    for (auto it = limbo_.begin(); it != limbo_.end(); ++it) {
      if (it->epoch < safe) {
        to_free.push_back(std::move(*it));
      } else {
        if (keep != it) *keep = std::move(*it);
        ++keep;
      }
    }
    limbo_.erase(keep, limbo_.end());
  }
  for (Retired& r : to_free) r.deleter();
  counters().freed.inc(to_free.size());
}

std::size_t EpochManager::limbo_size() {
  std::lock_guard lk(limbo_mu_);
  return limbo_.size();
}

}  // namespace rnt::epoch
