// Epoch-based memory reclamation.
//
// The volatile internal-node tree (src/inner) is copy-on-write: structure
// updates install fresh nodes and retire the replaced ones, and shrink-splits
// retire whole leaves back to the persistent pool.  Readers traverse without
// locks, so retired memory must outlive any reader that might still hold a
// pointer.  Classic 3-epoch EBR: readers pin the global epoch for the span of
// one operation; retired objects are freed once every pinned epoch has moved
// past theirs.
//
// Slot claiming is address-free (no per-manager thread registration): a
// reader claims any free slot with a CAS and releases it when the guard
// drops.  At ~2 uncontended atomics per pin this is negligible next to the
// 100+ ns NVM latencies the library simulates.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/cacheline.hpp"
#include "common/hints.hpp"

namespace rnt::epoch {

class EpochManager;

/// RAII pin on the current epoch.  Movable, not copyable.
class Guard {
 public:
  Guard() noexcept = default;
  Guard(EpochManager* mgr, int slot) noexcept : mgr_(mgr), slot_(slot) {}
  Guard(Guard&& o) noexcept : mgr_(o.mgr_), slot_(o.slot_) { o.mgr_ = nullptr; }
  Guard& operator=(Guard&& o) noexcept;
  Guard(const Guard&) = delete;
  Guard& operator=(const Guard&) = delete;
  ~Guard() { release(); }

  void release() noexcept;
  bool active() const noexcept { return mgr_ != nullptr; }

 private:
  EpochManager* mgr_ = nullptr;
  int slot_ = -1;
};

class EpochManager {
 public:
  static constexpr int kSlots = 128;
  static constexpr std::uint64_t kIdle = 0;

  EpochManager() = default;
  ~EpochManager();
  EpochManager(const EpochManager&) = delete;
  EpochManager& operator=(const EpochManager&) = delete;

  /// Pin the current epoch.  Re-entrant only via separate guards.
  Guard pin() noexcept;

  /// Defer @p deleter until no pinned reader can still observe the object.
  /// Thread-safe; reclamation is amortised into later retire() calls.
  void retire(std::function<void()> deleter);

  /// Advance the epoch and free everything whose grace period elapsed.
  /// Called internally; exposed for tests and shutdown.
  void collect();

  /// Objects currently awaiting reclamation (diagnostics).
  std::size_t limbo_size();

 private:
  friend class Guard;
  void unpin(int slot) noexcept;
  std::uint64_t min_active_epoch() const noexcept;

  struct alignas(kCacheLineSize) Slot {
    std::atomic<std::uint64_t> epoch{kIdle};
  };

  struct Retired {
    std::uint64_t epoch;
    std::function<void()> deleter;
  };

  std::atomic<std::uint64_t> global_{2};  // even, >= 2 so kIdle==0 is free
  Slot slots_[kSlots];
  std::mutex limbo_mu_;
  std::vector<Retired> limbo_;
};

inline Guard& Guard::operator=(Guard&& o) noexcept {
  // Must release the held slot before adopting the source's: a leaked slot
  // pins its epoch forever (pin() probes a fixed kSlots table, and nothing
  // retired after the stale epoch could ever be freed).
  if (this != &o) {
    release();
    mgr_ = o.mgr_;
    slot_ = o.slot_;
    o.mgr_ = nullptr;
  }
  return *this;
}

inline void Guard::release() noexcept {
  if (mgr_ != nullptr) {
    mgr_->unpin(slot_);
    mgr_ = nullptr;
  }
}

}  // namespace rnt::epoch
