// Deterministic HTM abort injection.
//
// The RTM retry -> backoff -> fallback state machine in atomic_exec is only
// ever exercised on TSX hardware; CI machines take the fallback lock on the
// first attempt and the whole policy surface (capacity aborts, conflict
// backoff, lock-subscription waits) goes untested.  An AbortInjector makes
// the machine run deterministically anywhere: when one is installed,
// atomic_exec consults it before each attempt and treats a returned cause
// exactly like the corresponding hardware abort — same policy decisions,
// same counters (plus htm.inject.* attribution) — while the "committed"
// attempt executes under the fallback lock for real mutual exclusion.
//
// Hot-path cost with no injector installed: one relaxed atomic load.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace rnt::htm {

/// Abort causes an injector can simulate, mirroring the RTM status bits plus
/// the lock-elision idiom's explicit subscription abort.
enum class AbortCause : std::uint8_t {
  kConflict = 0,          ///< read/write-set conflict (retry with backoff)
  kCapacity = 1,          ///< write set overflow (retrying is hopeless)
  kSpurious = 2,          ///< interrupt/page-fault/etc (limited retries)
  kLockSubscription = 3,  ///< fallback lock was held when the tx started
};

inline const char* to_string(AbortCause c) noexcept {
  switch (c) {
    case AbortCause::kConflict: return "conflict";
    case AbortCause::kCapacity: return "capacity";
    case AbortCause::kSpurious: return "spurious";
    case AbortCause::kLockSubscription: return "lock_subscription";
  }
  return "unknown";
}

/// Schedulable abort source.  on_attempt is called once per retry attempt
/// (0-based within one atomic_exec invocation); returning a cause makes that
/// attempt abort with it, returning nullopt lets the attempt "commit".
/// Implementations must be thread-safe: concurrent atomic_exec callers share
/// one installed injector.
class AbortInjector {
 public:
  virtual ~AbortInjector() = default;
  virtual std::optional<AbortCause> on_attempt(int attempt) = 0;
};

namespace detail {
extern std::atomic<AbortInjector*> g_abort_injector;
// Declared write-set footprint (cache lines) of the transaction the current
// thread is about to attempt.  Real capacity aborts are a function of write
// set vs L1; the injected machine cannot see write sets, so transaction
// call sites declare theirs (TxFootprint below) and RandomAbortInjector
// scales its capacity weight by it.  1 = the default single-line profile,
// which leaves every pre-existing call site's draw distribution unchanged.
inline thread_local unsigned t_tx_footprint = 1;
}  // namespace detail

/// Cache lines the next transaction on this thread declares it will write.
inline unsigned tx_footprint_lines() noexcept { return detail::t_tx_footprint; }

/// RAII footprint declaration: scoped around an atomic_exec call so the
/// injector's capacity-abort probability tracks the transaction's size.
class TxFootprint {
 public:
  explicit TxFootprint(unsigned lines) noexcept
      : prev_(detail::t_tx_footprint) {
    detail::t_tx_footprint = lines == 0 ? 1 : lines;
  }
  ~TxFootprint() { detail::t_tx_footprint = prev_; }
  TxFootprint(const TxFootprint&) = delete;
  TxFootprint& operator=(const TxFootprint&) = delete;

 private:
  unsigned prev_;
};

/// Currently installed injector (nullptr when none).  Relaxed load — this is
/// the only cost injection adds to the uninstrumented hot path.
inline AbortInjector* abort_injector() noexcept {
  return detail::g_abort_injector.load(std::memory_order_relaxed);
}

/// Install @p inj process-wide (nullptr uninstalls).  Returns the previous
/// injector.  Not synchronized against in-flight atomic_exec calls; install
/// while the tree is quiescent or from the owning test thread.
AbortInjector* install_abort_injector(AbortInjector* inj) noexcept;

/// Deterministic script: attempt i aborts with script[i]; attempts past the
/// end of the script commit.  Stateless across retry machines, so every
/// atomic_exec in scope replays the same schedule — ideal for matrix tests.
class ScriptedAbortInjector final : public AbortInjector {
 public:
  explicit ScriptedAbortInjector(std::vector<AbortCause> script)
      : script_(std::move(script)) {}

  std::optional<AbortCause> on_attempt(int attempt) override {
    if (attempt >= 0 && static_cast<std::size_t>(attempt) < script_.size()) {
      injected_.fetch_add(1, std::memory_order_relaxed);
      return script_[static_cast<std::size_t>(attempt)];
    }
    return std::nullopt;
  }

  std::uint64_t injected() const noexcept {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<AbortCause> script_;
  std::atomic<std::uint64_t> injected_{0};
};

/// Seeded random aborts: each attempt aborts with probability
/// @p abort_permille / 1000, cause drawn from @p Weights.  The generator is
/// a shared atomic splitmix64 stream, so it is thread-safe and the sequence
/// of draws (though not their assignment to threads) is seed-deterministic.
class RandomAbortInjector final : public AbortInjector {
 public:
  struct Weights {
    std::uint32_t conflict = 6;
    std::uint32_t capacity = 1;
    std::uint32_t spurious = 2;
    std::uint32_t lock_subscription = 1;
  };

  RandomAbortInjector(std::uint64_t seed, std::uint32_t abort_permille)
      : RandomAbortInjector(seed, abort_permille, Weights{}) {}

  RandomAbortInjector(std::uint64_t seed, std::uint32_t abort_permille,
                      Weights weights)
      : state_(seed), permille_(abort_permille > 1000 ? 1000 : abort_permille),
        weights_(weights) {
    total_weight_ = weights_.conflict + weights_.capacity + weights_.spurious +
                    weights_.lock_subscription;
    if (total_weight_ == 0) {
      weights_ = Weights{};
      total_weight_ = weights_.conflict + weights_.capacity + weights_.spurious +
                      weights_.lock_subscription;
    }
  }

  std::optional<AbortCause> on_attempt(int /*attempt*/) override {
    const std::uint64_t r = next();
    if (r % 1000 >= permille_) return std::nullopt;
    // Capacity weight scales with the caller's declared write-set footprint:
    // a whole-path SMO transaction (~dozens of lines) draws capacity almost
    // every abort, a one-line install almost never — mirroring how real
    // capacity aborts track transaction size.  Footprint 1 (every legacy
    // call site) reproduces the historical draw distribution exactly.
    const std::uint64_t cap_w =
        static_cast<std::uint64_t>(weights_.capacity) * tx_footprint_lines();
    const std::uint64_t total = total_weight_ - weights_.capacity + cap_w;
    std::uint64_t pick = (r >> 10) % total;
    if (pick < weights_.conflict) return AbortCause::kConflict;
    pick -= weights_.conflict;
    if (pick < cap_w) return AbortCause::kCapacity;
    pick -= cap_w;
    if (pick < weights_.spurious) return AbortCause::kSpurious;
    return AbortCause::kLockSubscription;
  }

 private:
  std::uint64_t next() noexcept {  // splitmix64 over a shared atomic stream
    std::uint64_t z =
        state_.fetch_add(0x9E3779B97F4A7C15ull, std::memory_order_relaxed) +
        0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  std::atomic<std::uint64_t> state_;
  std::uint32_t permille_;
  Weights weights_;
  std::uint64_t total_weight_;
};

/// RAII installer: installs in the constructor, restores the previous
/// injector in the destructor.  Exception-safe scoping for tests.
class ScopedAbortInjector {
 public:
  explicit ScopedAbortInjector(AbortInjector* inj)
      : prev_(install_abort_injector(inj)) {}
  ~ScopedAbortInjector() { install_abort_injector(prev_); }
  ScopedAbortInjector(const ScopedAbortInjector&) = delete;
  ScopedAbortInjector& operator=(const ScopedAbortInjector&) = delete;

 private:
  AbortInjector* prev_;
};

}  // namespace rnt::htm
