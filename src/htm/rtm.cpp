// The only translation unit compiled with -mrtm.  Keeping the intrinsics
// here lets every other TU build without TSX support while the runtime
// CPUID gate decides whether this code path is ever taken.
#include "htm/rtm.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#if defined(RNTREE_HAVE_RTM)
#include <immintrin.h>
#endif
#endif

#include "obs/metrics.hpp"

namespace rnt::htm {

namespace {

struct HtmMetricIds {
  obs::MetricId attempts = obs::register_metric("htm.attempts", obs::Kind::kCounter);
  obs::MetricId commits = obs::register_metric("htm.commits", obs::Kind::kCounter);
  obs::MetricId aborts_conflict =
      obs::register_metric("htm.aborts_conflict", obs::Kind::kCounter);
  obs::MetricId aborts_capacity =
      obs::register_metric("htm.aborts_capacity", obs::Kind::kCounter);
  obs::MetricId aborts_other =
      obs::register_metric("htm.aborts_other", obs::Kind::kCounter);
  obs::MetricId fallbacks = obs::register_metric("htm.fallbacks", obs::Kind::kCounter);
  obs::MetricId lock_acquisitions =
      obs::register_metric("htm.lock_acquisitions", obs::Kind::kCounter);
  obs::MetricId lock_wait_timeouts =
      obs::register_metric("htm.lock_wait_timeouts", obs::Kind::kCounter);
  obs::MetricId injected_conflict =
      obs::register_metric("htm.inject.conflict", obs::Kind::kCounter);
  obs::MetricId injected_capacity =
      obs::register_metric("htm.inject.capacity", obs::Kind::kCounter);
  obs::MetricId injected_spurious =
      obs::register_metric("htm.inject.spurious", obs::Kind::kCounter);
  obs::MetricId injected_lock_subscription =
      obs::register_metric("htm.inject.lock_subscription", obs::Kind::kCounter);
};

const HtmMetricIds& metric_ids() {
  static HtmMetricIds ids;
  return ids;
}

// Attaches this thread's stat fields to the obs registry so aggregation and
// exited-thread folding are centralised; the hot path keeps plain stores.
struct TlsEntry {
  HtmStats stats;
  TlsEntry() {
    const HtmMetricIds& ids = metric_ids();
    obs::attach_cell(ids.attempts, &stats.attempts);
    obs::attach_cell(ids.commits, &stats.commits);
    obs::attach_cell(ids.aborts_conflict, &stats.aborts_conflict);
    obs::attach_cell(ids.aborts_capacity, &stats.aborts_capacity);
    obs::attach_cell(ids.aborts_other, &stats.aborts_other);
    obs::attach_cell(ids.fallbacks, &stats.fallbacks);
    obs::attach_cell(ids.lock_acquisitions, &stats.lock_acquisitions);
    obs::attach_cell(ids.lock_wait_timeouts, &stats.lock_wait_timeouts);
    obs::attach_cell(ids.injected_conflict, &stats.injected_conflict);
    obs::attach_cell(ids.injected_capacity, &stats.injected_capacity);
    obs::attach_cell(ids.injected_spurious, &stats.injected_spurious);
    obs::attach_cell(ids.injected_lock_subscription,
                     &stats.injected_lock_subscription);
  }
  ~TlsEntry() {
    const HtmMetricIds& ids = metric_ids();
    obs::detach_cell(ids.attempts, &stats.attempts);
    obs::detach_cell(ids.commits, &stats.commits);
    obs::detach_cell(ids.aborts_conflict, &stats.aborts_conflict);
    obs::detach_cell(ids.aborts_capacity, &stats.aborts_capacity);
    obs::detach_cell(ids.aborts_other, &stats.aborts_other);
    obs::detach_cell(ids.fallbacks, &stats.fallbacks);
    obs::detach_cell(ids.lock_acquisitions, &stats.lock_acquisitions);
    obs::detach_cell(ids.lock_wait_timeouts, &stats.lock_wait_timeouts);
    obs::detach_cell(ids.injected_conflict, &stats.injected_conflict);
    obs::detach_cell(ids.injected_capacity, &stats.injected_capacity);
    obs::detach_cell(ids.injected_spurious, &stats.injected_spurious);
    obs::detach_cell(ids.injected_lock_subscription,
                     &stats.injected_lock_subscription);
  }
};

}  // namespace

HtmStats& tls_htm_stats() noexcept {
  thread_local TlsEntry e;
  return e.stats;
}

HtmStats aggregate_htm_stats() {
  const HtmMetricIds& ids = metric_ids();
  HtmStats out;
  out.attempts = obs::counter_value(ids.attempts);
  out.commits = obs::counter_value(ids.commits);
  out.aborts_conflict = obs::counter_value(ids.aborts_conflict);
  out.aborts_capacity = obs::counter_value(ids.aborts_capacity);
  out.aborts_other = obs::counter_value(ids.aborts_other);
  out.fallbacks = obs::counter_value(ids.fallbacks);
  out.lock_acquisitions = obs::counter_value(ids.lock_acquisitions);
  out.lock_wait_timeouts = obs::counter_value(ids.lock_wait_timeouts);
  out.injected_conflict = obs::counter_value(ids.injected_conflict);
  out.injected_capacity = obs::counter_value(ids.injected_capacity);
  out.injected_spurious = obs::counter_value(ids.injected_spurious);
  out.injected_lock_subscription =
      obs::counter_value(ids.injected_lock_subscription);
  return out;
}

RetryPolicy& default_retry_policy() noexcept {
  static RetryPolicy policy;
  return policy;
}

namespace detail {
std::atomic<AbortInjector*> g_abort_injector{nullptr};
}  // namespace detail

AbortInjector* install_abort_injector(AbortInjector* inj) noexcept {
  return detail::g_abort_injector.exchange(inj, std::memory_order_acq_rel);
}

bool rtm_supported() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  static const bool supported = [] {
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
    return (ebx & (1u << 11)) != 0;  // RTM feature bit
  }();
  return supported;
#else
  return false;
#endif
}

#if defined(RNTREE_HAVE_RTM)
namespace detail {

unsigned xbegin() noexcept { return _xbegin(); }

void xend() noexcept { _xend(); }

void xabort_conflict() noexcept { _xabort(0xff); }

}  // namespace detail
#endif

}  // namespace rnt::htm
