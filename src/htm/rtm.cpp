// The only translation unit compiled with -mrtm.  Keeping the intrinsics
// here lets every other TU build without TSX support while the runtime
// CPUID gate decides whether this code path is ever taken.
#include "htm/rtm.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#if defined(RNTREE_HAVE_RTM)
#include <immintrin.h>
#endif
#endif

namespace rnt::htm {

HtmStats& tls_htm_stats() noexcept {
  thread_local HtmStats stats;
  return stats;
}

bool rtm_supported() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  static const bool supported = [] {
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
    return (ebx & (1u << 11)) != 0;  // RTM feature bit
  }();
  return supported;
#else
  return false;
#endif
}

#if defined(RNTREE_HAVE_RTM)
namespace detail {

unsigned xbegin() noexcept { return _xbegin(); }

void xend() noexcept { _xend(); }

void xabort_conflict() noexcept { _xabort(0xff); }

}  // namespace detail
#endif

}  // namespace rnt::htm
