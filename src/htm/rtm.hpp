// Hardware transactional memory wrapper (Intel RTM) with software fallback.
//
// atomic_exec(fallback, fn) runs fn() with multi-word atomic visibility:
//   * On TSX-capable CPUs (runtime CPUID check) it retries fn() inside an
//     RTM transaction, subscribing to the fallback lock per the standard
//     lock-elision idiom, then falls back to the lock.
//   * Elsewhere (or whenever a ShadowPool crash simulator is attached, which
//     needs deterministic execution) it runs fn() under the fallback lock,
//     bracketed by nvm::htm_tx_begin/commit so the crash simulator models
//     RTM's "speculative stores never reach memory" guarantee.
//
// The RTM intrinsics live in rtm.cpp, the only TU compiled with -mrtm, so
// the rest of the library builds and runs on any x86-64.
#pragma once

#include <cstdint>
#include <utility>

#include "htm/spinlock.hpp"
#include "nvm/persist.hpp"

namespace rnt::htm {

/// Per-thread transaction statistics.  Registry-backed: each thread's
/// fields are attached to the obs metrics registry (htm.* counters), which
/// owns aggregation and exited-thread folding; increments stay plain
/// thread-local stores.
struct HtmStats {
  std::uint64_t attempts = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts_conflict = 0;
  std::uint64_t aborts_capacity = 0;
  std::uint64_t aborts_other = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t lock_acquisitions = 0;  ///< fallback-lock critical sections
  void reset() noexcept { *this = {}; }
};

HtmStats& tls_htm_stats() noexcept;

/// Sum over all threads that ever recorded, including exited ones.
HtmStats aggregate_htm_stats();

/// True when this CPU executes RTM transactions (CPUID leaf 7 EBX bit 11).
bool rtm_supported() noexcept;

#if defined(RNTREE_HAVE_RTM)
namespace detail {
inline constexpr unsigned kXBeginStarted = ~0u;
inline constexpr unsigned kAbortRetry = 1u << 1;
inline constexpr unsigned kAbortConflict = 1u << 2;
inline constexpr unsigned kAbortCapacity = 1u << 3;
unsigned xbegin() noexcept;   // compiled with -mrtm in rtm.cpp
void xend() noexcept;
void xabort_conflict() noexcept;
}  // namespace detail
#endif

/// Execute @p fn atomically w.r.t. every other atomic_exec on the same
/// @p fallback lock and w.r.t. readers using seqlock validation.
template <typename Fn>
void atomic_exec(SpinLock& fallback, Fn&& fn, int max_retries = 10) {
  HtmStats& st = tls_htm_stats();
#if defined(RNTREE_HAVE_RTM)
  if (rtm_supported() && nvm::shadow_active() == nullptr) {
    for (int attempt = 0; attempt < max_retries; ++attempt) {
      ++st.attempts;
      const unsigned status = detail::xbegin();
      if (status == detail::kXBeginStarted) {
        if (fallback.is_locked()) detail::xabort_conflict();
        fn();
        detail::xend();
        ++st.commits;
        return;
      }
      if ((status & detail::kAbortCapacity) != 0) {
        ++st.aborts_capacity;
        break;  // will not fit; go straight to the lock
      }
      if ((status & detail::kAbortConflict) != 0)
        ++st.aborts_conflict;
      else
        ++st.aborts_other;
      if ((status & detail::kAbortRetry) == 0 && attempt >= 2) break;
      Backoff bo;
      bo.pause();
      while (fallback.is_locked()) bo.pause();  // wait out the lock holder
    }
    ++st.fallbacks;
  }
#endif
  SpinGuard g(fallback);
  ++st.lock_acquisitions;
  nvm::htm_tx_begin();
  std::forward<Fn>(fn)();
  nvm::htm_tx_commit();
  ++st.commits;
}

}  // namespace rnt::htm
