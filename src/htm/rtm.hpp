// Hardware transactional memory wrapper (Intel RTM) with software fallback.
//
// atomic_exec(fallback, fn) runs fn() with multi-word atomic visibility:
//   * On TSX-capable CPUs (runtime CPUID check) it retries fn() inside an
//     RTM transaction, subscribing to the fallback lock per the standard
//     lock-elision idiom, then falls back to the lock.
//   * Elsewhere (or whenever a ShadowPool crash simulator is attached, which
//     needs deterministic execution) it runs fn() under the fallback lock,
//     bracketed by nvm::htm_tx_begin/commit so the crash simulator models
//     RTM's "speculative stores never reach memory" guarantee.
//   * When an AbortInjector is installed (htm/abort_inject.hpp) the retry
//     machine runs against injected aborts instead, so the full
//     retry -> backoff -> fallback policy executes deterministically on any
//     host.  The "committed" attempt runs under the fallback lock for real
//     mutual exclusion.
//
// Abort handling is governed by RetryPolicy: capacity aborts fall back
// immediately (the write set will never fit), conflicts retry under bounded
// exponential backoff, spurious aborts get a small retry budget, and waiting
// for a held fallback lock is bounded by a starvation cap (counted in
// htm.lock_wait_timeouts) instead of the unbounded spin it used to be —
// a stalled lock holder degrades us to the pessimistic path, never livelock.
//
// The RTM intrinsics live in rtm.cpp, the only TU compiled with -mrtm, so
// the rest of the library builds and runs on any x86-64.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>

#include "htm/abort_inject.hpp"
#include "htm/spinlock.hpp"
#include "nvm/persist.hpp"
#include "obs/heatmap.hpp"
#include "obs/phase.hpp"

namespace rnt::htm {

/// Per-thread transaction statistics.  Registry-backed: each thread's
/// fields are attached to the obs metrics registry (htm.* counters), which
/// owns aggregation and exited-thread folding; increments stay plain
/// thread-local stores.
struct HtmStats {
  std::uint64_t attempts = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts_conflict = 0;
  std::uint64_t aborts_capacity = 0;
  std::uint64_t aborts_other = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t lock_acquisitions = 0;  ///< fallback-lock critical sections
  std::uint64_t lock_wait_timeouts = 0;  ///< bounded lock-waits that hit the cap
  // Injected-abort attribution (htm.inject.*): how many of the abort counts
  // above were manufactured by the installed AbortInjector.
  std::uint64_t injected_conflict = 0;
  std::uint64_t injected_capacity = 0;
  std::uint64_t injected_spurious = 0;
  std::uint64_t injected_lock_subscription = 0;
  void reset() noexcept { *this = {}; }
};

HtmStats& tls_htm_stats() noexcept;

/// Sum over all threads that ever recorded, including exited ones.
HtmStats aggregate_htm_stats();

/// True when this CPU executes RTM transactions (CPUID leaf 7 EBX bit 11).
bool rtm_supported() noexcept;

/// Cause-aware retry policy for the HTM state machine.
///   * capacity abort        -> immediate fallback (never retried)
///   * conflict abort        -> retry with bounded exponential backoff
///   * spurious abort        -> at most max_spurious_retries retries
///   * lock-subscription     -> bounded wait for the lock, then retry
/// All attempts are bounded by max_attempts; waiting for the fallback lock
/// is bounded by lock_wait_pauses Backoff::pause() calls (each pause spins
/// an exponentially growing, capped number of cpu_relax iterations), after
/// which the waiter records htm.lock_wait_timeouts and escalates instead of
/// spinning forever behind a stalled lock holder.
struct RetryPolicy {
  int max_attempts = 10;
  int max_spurious_retries = 2;
  std::uint32_t lock_wait_pauses = 64;
};

/// Process-wide default policy.  Mutable so tests/benches can tighten knobs;
/// mutate only while no atomic_exec is in flight.
RetryPolicy& default_retry_policy() noexcept;

namespace detail {

/// Brackets a simulated transaction (ShadowPool modelling of RTM's
/// "speculative stores never reach memory") with commit-on-unwind.  The
/// software paths execute fn's stores for real, so if fn throws the stores
/// have happened and the simulated transaction must still close — leaving it
/// open would wrongly quarantine every later store of the thread as
/// speculative.  During a simulated CrashPoint unwind the ShadowPool has
/// already marked itself crashed and tx_commit() is a no-op, so in-flight
/// speculative lines are correctly discarded by the crash.
class TxGuard {
 public:
  TxGuard() noexcept { nvm::htm_tx_begin(); }
  ~TxGuard() { nvm::htm_tx_commit(); }
  TxGuard(const TxGuard&) = delete;
  TxGuard& operator=(const TxGuard&) = delete;
};

/// Wait for @p fallback to be released, bounded by the policy's starvation
/// cap.  Returns true when the lock was observed free, false on timeout
/// (counted in htm.lock_wait_timeouts).
inline bool bounded_lock_wait(SpinLock& fallback, const RetryPolicy& policy,
                              HtmStats& st) noexcept {
  Backoff bo;
  for (std::uint32_t waited = 0; fallback.is_locked(); ++waited) {
    // kLockWait marks the episode (the lock was held at all); the timeout
    // cause below additionally marks episodes that hit the starvation cap.
    // Together they make storm serialization visible per key range.
    if (waited == 0) obs::heatmap_record(obs::HeatCause::kLockWait);
    if (waited >= policy.lock_wait_pauses) {
      ++st.lock_wait_timeouts;
      obs::heatmap_record(obs::HeatCause::kLockWaitTimeout);
      return false;
    }
    bo.pause();
  }
  return true;
}

/// Injected retry machine: one simulated HTM attempt loop driven by the
/// installed AbortInjector.  Returns true when an attempt "committed" (fn
/// ran, under @p fallback if provided); false when the policy demands the
/// caller's fallback path.
template <typename Fn>
bool run_injected(AbortInjector& inj, SpinLock* fallback, Fn& fn,
                  const RetryPolicy& policy, HtmStats& st) {
  Backoff conflict_bo;
  int spurious = 0;
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    ++st.attempts;
    const std::optional<AbortCause> cause = inj.on_attempt(attempt);
    if (!cause.has_value()) {
      // Simulated commit: mutual exclusion comes from the fallback lock
      // (the attempt cannot execute speculatively), durability modelling
      // from the simulated transaction bracket.
      if (fallback != nullptr) {
        SpinGuard g(*fallback);
        TxGuard tx;
        fn();
      } else {
        TxGuard tx;
        fn();
      }
      ++st.commits;
      return true;
    }
    switch (*cause) {
      case AbortCause::kCapacity:
        ++st.aborts_capacity;
        ++st.injected_capacity;
        obs::heatmap_record(obs::HeatCause::kCapacity);
        return false;  // the write set will never fit; fall back now
      case AbortCause::kConflict:
        ++st.aborts_conflict;
        ++st.injected_conflict;
        obs::heatmap_record(obs::HeatCause::kConflict);
        conflict_bo.pause();  // bounded exponential backoff
        break;
      case AbortCause::kSpurious:
        ++st.aborts_other;
        ++st.injected_spurious;
        obs::heatmap_record(obs::HeatCause::kOther);
        if (++spurious > policy.max_spurious_retries) return false;
        break;
      case AbortCause::kLockSubscription:
        ++st.aborts_other;
        ++st.injected_lock_subscription;
        obs::heatmap_record(obs::HeatCause::kOther);
        if (fallback != nullptr) bounded_lock_wait(*fallback, policy, st);
        break;
    }
  }
  return false;
}

#if defined(RNTREE_HAVE_RTM)
inline constexpr unsigned kXBeginStarted = ~0u;
inline constexpr unsigned kAbortExplicit = 1u << 0;
inline constexpr unsigned kAbortRetry = 1u << 1;
inline constexpr unsigned kAbortConflict = 1u << 2;
inline constexpr unsigned kAbortCapacity = 1u << 3;
/// xabort code used for the fallback-lock subscription abort.
inline constexpr unsigned kSubscriptionCode = 0xffu;
unsigned xbegin() noexcept;  // compiled with -mrtm in rtm.cpp
void xend() noexcept;
void xabort_conflict() noexcept;

/// Real-hardware retry machine.  Returns true on commit, false when the
/// policy demands the fallback lock.
template <typename Fn>
bool run_rtm(SpinLock& fallback, Fn& fn, const RetryPolicy& policy,
             HtmStats& st) {
  Backoff conflict_bo;
  int spurious = 0;
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    ++st.attempts;
    const unsigned status = xbegin();
    if (status == kXBeginStarted) {
      // Subscribe to the fallback lock: abort if a pessimistic writer is
      // active and pull the lock word into the read set so its release
      // aborts us (standard lock-elision idiom).
      if (fallback.is_locked()) xabort_conflict();
      fn();
      xend();
      ++st.commits;
      return true;
    }
    if ((status & kAbortCapacity) != 0) {
      ++st.aborts_capacity;
      obs::heatmap_record(obs::HeatCause::kCapacity);
      return false;  // will not fit; go straight to the lock
    }
    if ((status & kAbortExplicit) != 0 &&
        ((status >> 24) & 0xffu) == kSubscriptionCode) {
      // Our own subscription abort: wait (bounded) for the lock holder,
      // then retry; does not consume the spurious budget.
      ++st.aborts_other;
      obs::heatmap_record(obs::HeatCause::kOther);
      bounded_lock_wait(fallback, policy, st);
      continue;
    }
    if ((status & kAbortConflict) != 0) {
      ++st.aborts_conflict;
      obs::heatmap_record(obs::HeatCause::kConflict);
      conflict_bo.pause();  // bounded exponential backoff
    } else {
      ++st.aborts_other;
      obs::heatmap_record(obs::HeatCause::kOther);
      if ((status & kAbortRetry) == 0 && ++spurious > policy.max_spurious_retries)
        return false;
    }
    if (fallback.is_locked()) bounded_lock_wait(fallback, policy, st);
  }
  return false;
}
#endif

}  // namespace detail

/// Execute @p fn atomically w.r.t. every other atomic_exec on the same
/// @p fallback lock and w.r.t. readers using seqlock validation.
template <typename Fn>
void atomic_exec(SpinLock& fallback, Fn&& fn,
                 const RetryPolicy& policy = default_retry_policy()) {
  HtmStats& st = tls_htm_stats();
  if (AbortInjector* inj = abort_injector()) {
    obs::PhaseTimer pt(obs::Phase::kHtm);
    if (detail::run_injected(*inj, &fallback, fn, policy, st)) return;
    ++st.fallbacks;
    obs::heatmap_record(obs::HeatCause::kFallback);
  }
#if defined(RNTREE_HAVE_RTM)
  else if (rtm_supported() && nvm::shadow_active() == nullptr) {
    obs::PhaseTimer pt(obs::Phase::kHtm);
    if (detail::run_rtm(fallback, fn, policy, st)) return;
    ++st.fallbacks;
    obs::heatmap_record(obs::HeatCause::kFallback);
  }
#endif
  {
    obs::PhaseTimer wait(obs::Phase::kLockWait);
    fallback.lock();
  }
  SpinGuard g(fallback, AdoptLock{});
  ++st.lock_acquisitions;
  detail::TxGuard tx;  // commit-or-abort on unwind (exception safety)
  std::forward<Fn>(fn)();
  ++st.commits;
}

/// Variant for callers that already hold an exclusive lock covering @p fn's
/// write set (e.g. a leaf version-lock held across a slot publish): no
/// fallback lock exists or is needed — writers are excluded by the caller's
/// lock and readers validate via seqlock.  On TSX hardware fn runs inside a
/// real RTM transaction (plain execution once the retry budget is spent);
/// under an installed AbortInjector the injected retry machine runs; on the
/// plain software path this is exactly the htm_tx_begin/fn/htm_tx_commit
/// bracket it replaces (one relaxed injector load of added cost).
template <typename Fn>
void atomic_exec_excl(Fn&& fn,
                      const RetryPolicy& policy = default_retry_policy()) {
  if (AbortInjector* inj = abort_injector()) {
    HtmStats& st = tls_htm_stats();
    {
      obs::PhaseTimer pt(obs::Phase::kHtm);
      if (detail::run_injected(*inj, nullptr, fn, policy, st)) return;
    }
    ++st.fallbacks;
    obs::heatmap_record(obs::HeatCause::kFallback);
    detail::TxGuard tx;
    std::forward<Fn>(fn)();
    ++st.commits;
    return;
  }
#if defined(RNTREE_HAVE_RTM)
  if (rtm_supported() && nvm::shadow_active() == nullptr) {
    HtmStats& st = tls_htm_stats();
    {
      obs::PhaseTimer pt(obs::Phase::kHtm);
      Backoff conflict_bo;
      int spurious = 0;
      for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
        ++st.attempts;
        const unsigned status = detail::xbegin();
        if (status == detail::kXBeginStarted) {
          fn();
          detail::xend();
          ++st.commits;
          return;
        }
        if ((status & detail::kAbortCapacity) != 0) {
          ++st.aborts_capacity;
          obs::heatmap_record(obs::HeatCause::kCapacity);
          break;
        }
        if ((status & detail::kAbortConflict) != 0) {
          ++st.aborts_conflict;
          obs::heatmap_record(obs::HeatCause::kConflict);
          conflict_bo.pause();
        } else {
          ++st.aborts_other;
          obs::heatmap_record(obs::HeatCause::kOther);
          if ((status & detail::kAbortRetry) == 0 &&
              ++spurious > policy.max_spurious_retries)
            break;
        }
      }
    }
    ++st.fallbacks;
    obs::heatmap_record(obs::HeatCause::kFallback);
    fn();  // caller's exclusive lock makes plain execution safe
    ++st.commits;
    return;
  }
#endif
  detail::TxGuard tx;
  std::forward<Fn>(fn)();
}

}  // namespace rnt::htm
