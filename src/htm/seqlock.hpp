// Sequence counter (seqlock read protocol).
//
// This is the software equivalent of the paper's cache-line-size HTM
// atomicity: a writer wraps a multi-word update in write_begin()/write_end();
// readers copy the protected words and validate that no writer overlapped.
// On TSX hardware the same sections run as real RTM transactions and the
// counter is only touched on the fallback path; on this library's software
// backend the counter IS the mechanism.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/hints.hpp"

namespace rnt::htm {

class SeqCounter {
 public:
  /// Begin a writer section (single writer at a time — callers hold the
  /// enclosing leaf lock; asserted by the odd/even discipline).
  void write_begin() noexcept {
    const std::uint32_t s = seq_.load(std::memory_order_relaxed);
    seq_.store(s + 1, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_release);
  }

  void write_end() noexcept {
    const std::uint32_t s = seq_.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    seq_.store(s + 1, std::memory_order_release);
  }

  /// Snapshot for a reader; spins past in-progress writers.
  std::uint32_t read_begin() const noexcept {
    Backoff bo;
    for (;;) {
      const std::uint32_t s = seq_.load(std::memory_order_acquire);
      if ((s & 1u) == 0) return s;
      bo.pause();
    }
  }

  /// True if the section observed since @p start is consistent.
  bool read_validate(std::uint32_t start) const noexcept {
    std::atomic_thread_fence(std::memory_order_acquire);
    return seq_.load(std::memory_order_acquire) == start;
  }

  std::uint32_t raw() const noexcept {
    return seq_.load(std::memory_order_acquire);
  }

  /// Recovery reset: a counter living in (emulated) NVM may hold an
  /// arbitrary — possibly odd — value after a crash rewinds its cache line.
  void reset() noexcept { seq_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint32_t> seq_{0};
};

}  // namespace rnt::htm
