// Transaction profile for copy-on-write SMO install transactions.
//
// RCU-HTM-style structure modifications (src/inner) build replacement nodes
// out of place and publish them by swapping ONE pointer inside a short HTM
// transaction that first re-validates the traversal path.  That install
// transaction has a very different shape from the leaf-path transactions
// rtm.hpp was tuned for:
//
//   * its write set is a single cache line (the swapped child slot), so a
//     capacity abort means something is deeply wrong — no point retrying;
//   * validation failure is expected under contention (a concurrent install
//     republished part of the path) and is handled by the CALLER
//     re-traversing, not by the retry machine — so the policy keeps the
//     attempt budget short and falls back to the serialized path quickly
//     instead of burning backoff cycles;
//   * aborts/fallbacks on this path are worth separating from the leaf
//     path's when diagnosing a capacity-abort storm, hence the dedicated
//     htm.smo.* counter family.
//
// The legacy serialized path (whole-path copy under the SMO fallback lock)
// also runs its rebuild+swap as one transaction via atomic_exec_excl — that
// models the paper's in-place large-footprint SMO and, with the injector's
// footprint-scaled capacity weights (abort_inject.hpp), is the "before"
// side of the capacity-abort measurement in EXPERIMENTS.md.
#pragma once

#include <optional>

#include "htm/abort_inject.hpp"
#include "htm/rtm.hpp"
#include "obs/metrics.hpp"

namespace rnt::htm {

/// Retry policy for COW install transactions: short attempt budget (path
/// validation failures are resolved by re-traversing, not retrying in
/// place), a single spurious retry, and a short bounded lock wait so an
/// install racing a serialized SMO reaches its own fallback quickly.
inline const RetryPolicy& smo_install_policy() noexcept {
  static const RetryPolicy p{/*max_attempts=*/4, /*max_spurious_retries=*/1,
                             /*lock_wait_pauses=*/32};
  return p;
}

/// Cause counters for the COW SMO machinery, one registry family shared by
/// every InnerTree instantiation (pattern of inner.* / htm.* counters).
struct SmoCounters {
  obs::Counter installs{"htm.smo.installs"};  ///< committed COW installs
  obs::Counter root_installs{"htm.smo.root_installs"};  ///< swapped root_
  /// Path validation failed inside the install transaction (a concurrent
  /// install or serialized SMO republished part of the recorded path).
  obs::Counter validation_failures{"htm.smo.validation_failures"};
  /// Parent had no room — the split must propagate upward, handled by the
  /// serialized whole-path fallback.
  obs::Counter overflow_fallbacks{"htm.smo.overflow_fallbacks"};
  /// Re-traversal budget exhausted; gave up on the fast path.
  obs::Counter retry_fallbacks{"htm.smo.retry_fallbacks"};
  /// Serialized whole-path SMOs executed (fallbacks + cow-disabled mode).
  obs::Counter legacy_smos{"htm.smo.legacy_path"};
};

inline SmoCounters& smo_counters() {
  static SmoCounters c;
  return c;
}

// ---------------------------------------------------------------------------
// Install-transaction marker.  True on this thread while an SMO install (or
// the legacy serialized SMO's transaction) is executing its atomic_exec.
// Fault tests use it to aim abort storms at install transactions only
// (differential FaultCowSmo mode, smo_stress capacity measurement).
// ---------------------------------------------------------------------------

namespace detail {
inline thread_local bool t_in_smo_install = false;
}  // namespace detail

inline bool in_smo_install() noexcept { return detail::t_in_smo_install; }

class SmoInstallScope {
 public:
  SmoInstallScope() noexcept : prev_(detail::t_in_smo_install) {
    detail::t_in_smo_install = true;
  }
  ~SmoInstallScope() { detail::t_in_smo_install = prev_; }
  SmoInstallScope(const SmoInstallScope&) = delete;
  SmoInstallScope& operator=(const SmoInstallScope&) = delete;

 private:
  bool prev_;
};

/// Injector adapter that fires an inner injector only inside SMO install
/// transactions: everything else commits untouched.  This is how the
/// differential fault mode and the capacity-abort measurement target the
/// install path without background noise from leaf-path transactions.
class SmoTargetedInjector final : public AbortInjector {
 public:
  explicit SmoTargetedInjector(AbortInjector& inner) : inner_(inner) {}

  std::optional<AbortCause> on_attempt(int attempt) override {
    if (!in_smo_install()) return std::nullopt;
    return inner_.on_attempt(attempt);
  }

 private:
  AbortInjector& inner_;
};

}  // namespace rnt::htm
