// Test-and-test-and-set spinlock with exponential backoff.
//
// Used as (a) the fallback lock that HTM transactions subscribe to and
// (b) the paper's per-leaf "spin-lock to protect the update of metadata".
#pragma once

#include <atomic>

#include "common/hints.hpp"

namespace rnt::htm {

class SpinLock {
 public:
  void lock() noexcept {
    Backoff bo;
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      while (locked_.load(std::memory_order_relaxed)) bo.pause();
    }
  }

  bool try_lock() noexcept {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { locked_.store(false, std::memory_order_release); }

  /// Used by HTM transactions to subscribe to the fallback path.
  bool is_locked() const noexcept {
    return locked_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> locked_{false};
};

/// Tag for adopting a lock the caller already acquired (e.g. under a
/// lock-wait phase timer).
struct AdoptLock {};

/// std::lock_guard-compatible RAII.
class SpinGuard {
 public:
  explicit SpinGuard(SpinLock& l) noexcept : l_(l) { l_.lock(); }
  SpinGuard(SpinLock& l, AdoptLock) noexcept : l_(l) {}
  ~SpinGuard() { l_.unlock(); }
  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLock& l_;
};

}  // namespace rnt::htm
