// Striped fallback-lock table for HTM lock elision (ROADMAP item 5a).
//
// The paper's design hangs every fallback on ONE global lock: a capacity-
// abort storm on a single hot leaf drives every aborting writer onto that
// lock and serializes the whole tree.  This table replaces it with a
// power-of-two array of cacheline-padded SpinLocks keyed by leaf address
// (same bucketing idiom as the obs heatmap): an RTM fast path subscribes
// only to the stripe covering its leaf, so a storm degrades that stripe and
// nothing else.
//
//   * stripe_of(leaf) hashes the leaf's address (cacheline-granular) with a
//     splitmix64 finalizer onto [0, stripes).
//   * One extra dedicated stripe — the SMO/root stripe — serializes
//     structural changes (inner-node installs, bulk loads).  At stripes == 1
//     it aliases stripe 0, so fallback_stripes=1 IS the single-global-lock
//     baseline, selectable for the perf gate and the collapse measurement.
//   * Lock order (deadlock freedom): leaf version-locks are always acquired
//     before any stripe lock; multiple stripe locks are acquired in
//     ascending index order (MultiStripeGuard) with the SMO stripe owning
//     the highest index, so it is always last.  Stripe locks are leaves of
//     the lock order: no code acquires a version-lock or another subsystem
//     lock while holding one.
//   * Stripe-aware retry policy: a stripe whose recent history is
//     fallback-after-fallback (a storm) stops burning the full HTM retry
//     budget — atomic_exec_striped tightens the policy to a single attempt
//     until a transactional commit on that stripe clears the streak.
//   * Attribution: StripeScope publishes the current stripe in TLS (for the
//     storm-targeting injector below) and diffs the thread's HtmStats on
//     exit into per-stripe cells + the htm.stripe.* registry counters, so a
//     storm's serialization is visible per stripe, not just process-wide.
//
// Per-stripe statistic cells live in a separate padded array from the locks:
// a subscriber's RTM read set holds the lock's cache line, and stats must
// not dirty it on unrelated commits.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "htm/abort_inject.hpp"
#include "htm/rtm.hpp"
#include "htm/spinlock.hpp"
#include "obs/metrics.hpp"

namespace rnt::htm {

inline constexpr unsigned kMinFallbackStripes = 1;
inline constexpr unsigned kMaxFallbackStripes = 4096;
inline constexpr unsigned kDefaultFallbackStripes = 64;

/// True iff @p n is an acceptable stripe count (power of two in range).
inline bool stripe_valid_count(std::uint64_t n) noexcept {
  return n >= kMinFallbackStripes && n <= kMaxFallbackStripes &&
         (n & (n - 1)) == 0;
}

/// Registry counters for the striped-fallback machinery, shared by every
/// table (pattern of htm.smo.*).
struct StripeCounters {
  obs::Counter acquisitions{"htm.stripe.acquisitions"};  ///< fallback CSs
  obs::Counter fallbacks{"htm.stripe.fallbacks"};        ///< HTM -> lock
  /// Bounded lock-waits that hit the starvation cap while a stripe scope
  /// was armed: the stripe-attributed htm.lock_wait_timeouts variant.
  obs::Counter wait_timeouts{"htm.stripe.wait_timeouts"};
  obs::Counter multi_acquires{"htm.stripe.multi_acquires"};  ///< split paths
  /// Storm streak tripped the stripe-aware policy (retry budget tightened).
  obs::Counter policy_tightenings{"htm.stripe.policy_tightenings"};
  obs::Gauge stripes{"htm.stripe.count"};  ///< most recent table's width
};

inline StripeCounters& stripe_counters() {
  static StripeCounters c;
  return c;
}

namespace detail {
/// Current op's stripe index, published while an atomic_exec_striped (or a
/// MultiStripeGuard's primary stripe) is in flight; -1 outside any scope.
inline thread_local int t_current_stripe = -1;
}  // namespace detail

inline int current_stripe() noexcept { return detail::t_current_stripe; }

/// Consecutive fallbacks on one stripe before the stripe-aware policy stops
/// burning the full retry budget there.
inline constexpr std::uint32_t kStormStreakThreshold = 3;

class StripeTable {
 public:
  explicit StripeTable(unsigned stripes = kDefaultFallbackStripes)
      : stripes_(stripes) {
    if (!stripe_valid_count(stripes))
      throw std::invalid_argument(
          "StripeTable: stripe count must be a power of two in [1, 4096]");
    locks_ = std::vector<PaddedLock>(lock_count());
    stats_ = std::vector<PaddedStat>(lock_count());
    stripe_counters().stripes.set(static_cast<std::int64_t>(stripes_));
  }

  StripeTable(const StripeTable&) = delete;
  StripeTable& operator=(const StripeTable&) = delete;

  unsigned count() const noexcept { return stripes_; }

  /// Index of the dedicated SMO/root stripe — the highest index, so ordered
  /// multi-stripe acquires always take it last.  Aliases stripe 0 when the
  /// table is a single global lock.
  unsigned smo_index() const noexcept { return stripes_ == 1 ? 0 : stripes_; }

  /// Total distinct locks (leaf stripes + the SMO stripe when separate).
  unsigned lock_count() const noexcept {
    return stripes_ == 1 ? 1 : stripes_ + 1;
  }

  /// Leaf-address -> stripe index (cacheline-granular splitmix hash).
  unsigned index_of(const void* leaf) const noexcept {
    const auto a = reinterpret_cast<std::uintptr_t>(leaf);
    return static_cast<unsigned>(mix64(static_cast<std::uint64_t>(a) >> 6) &
                                 (stripes_ - 1));
  }

  SpinLock& lock(unsigned idx) noexcept { return locks_[idx].lock; }
  SpinLock& stripe_for(const void* leaf) noexcept {
    return locks_[index_of(leaf)].lock;
  }
  SpinLock& smo_stripe() noexcept { return locks_[smo_index()].lock; }

  /// True when @p idx's recent history is fallback-after-fallback: the
  /// stripe-aware retry policy should go straight to the lock.
  bool storm_bypassed(unsigned idx) const noexcept {
    return stats_[idx].streak.load(std::memory_order_relaxed) >=
           kStormStreakThreshold;
  }

  struct StripeStat {
    std::uint64_t acquisitions = 0;
    std::uint64_t fallbacks = 0;
    std::uint64_t wait_timeouts = 0;
  };
  StripeStat stat(unsigned idx) const noexcept {
    const PaddedStat& s = stats_[idx];
    return {s.acquisitions.load(std::memory_order_relaxed),
            s.fallbacks.load(std::memory_order_relaxed),
            s.wait_timeouts.load(std::memory_order_relaxed)};
  }

  void account(unsigned idx, std::uint64_t acquisitions,
               std::uint64_t fallbacks, std::uint64_t timeouts) noexcept {
    PaddedStat& s = stats_[idx];
    if (acquisitions)
      s.acquisitions.fetch_add(acquisitions, std::memory_order_relaxed);
    if (timeouts)
      s.wait_timeouts.fetch_add(timeouts, std::memory_order_relaxed);
    if (fallbacks) {
      s.fallbacks.fetch_add(fallbacks, std::memory_order_relaxed);
      s.streak.fetch_add(1, std::memory_order_relaxed);
    } else if (s.streak.load(std::memory_order_relaxed) != 0) {
      // A storm ends with the first clean transactional commit.
      s.streak.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) PaddedLock {
    SpinLock lock;
  };
  struct alignas(64) PaddedStat {
    std::atomic<std::uint64_t> acquisitions{0};
    std::atomic<std::uint64_t> fallbacks{0};
    std::atomic<std::uint64_t> wait_timeouts{0};
    std::atomic<std::uint32_t> streak{0};
    PaddedStat() = default;
    PaddedStat(const PaddedStat&) {}  // vector-resize only, pre-use
  };

  unsigned stripes_;
  std::vector<PaddedLock> locks_;
  std::vector<PaddedStat> stats_;
};

/// RAII stripe-attribution scope: publishes the stripe in TLS (storm
/// targeting) and, on exit, folds the thread's HtmStats delta into the
/// table's per-stripe cells and the htm.stripe.* counters.
class StripeScope {
 public:
  StripeScope(StripeTable& t, unsigned idx) noexcept
      : table_(t), idx_(idx), prev_(detail::t_current_stripe) {
    detail::t_current_stripe = static_cast<int>(idx);
    const HtmStats& st = tls_htm_stats();
    acq0_ = st.lock_acquisitions;
    fb0_ = st.fallbacks;
    to0_ = st.lock_wait_timeouts;
  }
  ~StripeScope() {
    detail::t_current_stripe = prev_;
    const HtmStats& st = tls_htm_stats();
    const std::uint64_t acq = st.lock_acquisitions - acq0_;
    const std::uint64_t fb = st.fallbacks - fb0_;
    const std::uint64_t to = st.lock_wait_timeouts - to0_;
    table_.account(idx_, acq, fb, to);
    StripeCounters& c = stripe_counters();
    if (acq) c.acquisitions.inc(acq);
    if (fb) c.fallbacks.inc(fb);
    if (to) c.wait_timeouts.inc(to);
  }
  StripeScope(const StripeScope&) = delete;
  StripeScope& operator=(const StripeScope&) = delete;

 private:
  StripeTable& table_;
  unsigned idx_;
  int prev_;
  std::uint64_t acq0_, fb0_, to0_;
};

/// atomic_exec against one stripe of @p t, with stripe attribution and the
/// storm-aware policy: once a stripe's fallback streak crosses the
/// threshold, attempts stop burning the full retry budget and go (almost)
/// straight to the lock until an HTM commit clears the streak.
template <typename Fn>
void atomic_exec_striped(StripeTable& t, unsigned idx, Fn&& fn,
                         const RetryPolicy& policy = default_retry_policy()) {
  StripeScope scope(t, idx);
  if (t.storm_bypassed(idx)) {
    stripe_counters().policy_tightenings.inc();
    const RetryPolicy tight{/*max_attempts=*/1, /*max_spurious_retries=*/0,
                            /*lock_wait_pauses=*/policy.lock_wait_pauses};
    atomic_exec(t.lock(idx), std::forward<Fn>(fn), tight);
  } else {
    atomic_exec(t.lock(idx), std::forward<Fn>(fn), policy);
  }
}

/// Deadlock-free ordered acquire of up to three stripes (split paths: old
/// leaf + new leaf + optionally the SMO stripe).  Indices are sorted
/// ascending and deduplicated, so any two guards agree on acquisition order;
/// the SMO stripe's highest index keeps it last.  Release is reverse order.
class MultiStripeGuard {
 public:
  MultiStripeGuard(StripeTable& t, std::initializer_list<unsigned> indices)
      : table_(t) {
    for (unsigned idx : indices) add(idx);
    sort_dedup();
    for (int i = 0; i < n_; ++i) table_.lock(held_[i]).lock();
    if (n_ > 1) stripe_counters().multi_acquires.inc();
  }
  ~MultiStripeGuard() { release(); }

  /// Drop all held stripes ahead of scope exit (reverse order); idempotent.
  /// Split paths release their leaf stripes before the SMO install so the
  /// SMO stripe — which aliases stripe 0 when the table is a single global
  /// lock — is never requested while a leaf stripe is held.
  void release() noexcept {
    for (int i = n_ - 1; i >= 0; --i) table_.lock(held_[i]).unlock();
    n_ = 0;
  }

  MultiStripeGuard(const MultiStripeGuard&) = delete;
  MultiStripeGuard& operator=(const MultiStripeGuard&) = delete;

  int held() const noexcept { return n_; }

 private:
  void add(unsigned idx) {
    if (n_ < kMax) held_[n_++] = idx;
  }
  void sort_dedup() noexcept {
    for (int i = 1; i < n_; ++i)  // insertion sort, n <= 3
      for (int j = i; j > 0 && held_[j] < held_[j - 1]; --j)
        std::swap(held_[j], held_[j - 1]);
    int out = 0;
    for (int i = 0; i < n_; ++i)
      if (out == 0 || held_[i] != held_[out - 1]) held_[out++] = held_[i];
    n_ = out;
  }

  static constexpr int kMax = 3;
  StripeTable& table_;
  unsigned held_[kMax] = {};
  int n_ = 0;
};

/// Injector adapter that fires an inner injector only on transactions whose
/// StripeScope targets @p hot_stripe: the scripted capacity-abort storm hits
/// one stripe and every other stripe's traffic commits untouched.
class StripeStormInjector final : public AbortInjector {
 public:
  StripeStormInjector(AbortInjector& inner, int hot_stripe) noexcept
      : inner_(inner), hot_(hot_stripe) {}

  std::optional<AbortCause> on_attempt(int attempt) override {
    if (current_stripe() != hot_) return std::nullopt;
    return inner_.on_attempt(attempt);
  }

 private:
  AbortInjector& inner_;
  int hot_;
};

}  // namespace rnt::htm
