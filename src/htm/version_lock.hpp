// Masstree-style combined version/lock word (paper Fig 2).
//
// One 64-bit word per leaf encodes, from the top: a lock bit (taken by
// modify operations), a splitting bit (set while the leaf is being split),
// a retired bit (this library's addition: set when a shrink-split replaces
// the leaf, so racing operations restart from the root), and a version
// number that increments when a split finishes.  stableVersion() returns the
// version only when the leaf is not splitting, exactly as in the paper.
//
// The word lives in the leaf's NVM header but is *not* crash-consistent:
// recovery resets it (paper S5.4).
#pragma once

#include <atomic>
#include <cstdint>

#include "common/hints.hpp"

namespace rnt::htm {

class VersionLock {
 public:
  static constexpr std::uint64_t kLockBit = 1ull << 63;
  static constexpr std::uint64_t kSplitBit = 1ull << 62;
  static constexpr std::uint64_t kRetiredBit = 1ull << 61;
  static constexpr std::uint64_t kVersionMask = kRetiredBit - 1;

  /// Acquire the modify lock.  Spins while locked; also waits out an
  /// in-progress split (the splitter holds the lock anyway).
  void lock() noexcept {
    Backoff bo;
    for (;;) {
      std::uint64_t w = word_.load(std::memory_order_acquire);
      if ((w & kLockBit) == 0) {
        if (word_.compare_exchange_weak(w, w | kLockBit,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed))
          return;
      }
      bo.pause();
    }
  }

  void unlock() noexcept {
    word_.fetch_and(~kLockBit, std::memory_order_release);
  }

  /// Unlock and increment the version.  Used by designs whose readers must
  /// observe EVERY modification (FPTree's find aborts on any concurrent
  /// update): without the bump, a reader overlapping a complete lock/unlock
  /// cycle would validate against an unchanged word (ABA).  On real TSX the
  /// reader's transaction would have conflict-aborted instead.
  void unlock_and_bump() noexcept {
    std::uint64_t w = word_.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint64_t next =
          (w & ~kLockBit & ~kVersionMask) | ((w + 1) & kVersionMask);
      if (word_.compare_exchange_weak(w, next, std::memory_order_release,
                                      std::memory_order_relaxed))
        return;
    }
  }

  bool try_lock() noexcept {
    std::uint64_t w = word_.load(std::memory_order_acquire);
    if ((w & kLockBit) != 0) return false;
    return word_.compare_exchange_strong(w, w | kLockBit,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  /// Splitting window; only the lock holder may set/clear it.  The version
  /// number increments when the split finishes (paper S5.1).
  void set_split() noexcept {
    word_.fetch_or(kSplitBit, std::memory_order_release);
  }
  void unset_split_and_bump() noexcept {
    std::uint64_t w = word_.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint64_t next =
          (w & ~kSplitBit & ~kVersionMask) | ((w + 1) & kVersionMask);
      if (word_.compare_exchange_weak(w, next, std::memory_order_release,
                                      std::memory_order_relaxed))
        return;
    }
  }

  /// Permanently mark the leaf replaced (shrink-split); holder only.
  void set_retired() noexcept {
    word_.fetch_or(kRetiredBit, std::memory_order_release);
  }

  /// Wait until the leaf is not splitting, then return the whole word (with
  /// the lock bit masked off so a concurrent non-split modify does not
  /// invalidate readers in dual-slot mode).  Check retired() on the result.
  std::uint64_t stable_version() const noexcept {
    Backoff bo;
    for (;;) {
      const std::uint64_t w = word_.load(std::memory_order_acquire);
      if ((w & kSplitBit) == 0) return w & ~kLockBit;
      bo.pause();
    }
  }

  std::uint64_t raw() const noexcept {
    return word_.load(std::memory_order_acquire);
  }

  static bool retired(std::uint64_t w) noexcept { return (w & kRetiredBit) != 0; }
  static bool locked(std::uint64_t w) noexcept { return (w & kLockBit) != 0; }
  static bool splitting(std::uint64_t w) noexcept { return (w & kSplitBit) != 0; }

  /// Recovery resets the word to a clean unlocked state.
  void reset() noexcept { word_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> word_{0};
};

static_assert(sizeof(VersionLock) == 8);

}  // namespace rnt::htm
