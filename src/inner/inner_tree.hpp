// Volatile internal-node tree shared by every leaf design.
//
// Following the paper (and FPTree/NVTree), all internal nodes live in DRAM
// and are rebuilt from the persistent leaf chain on recovery; only leaf nodes
// are NVM-resident.  The paper wraps traversal and internal-node updates in
// HTM so that readers never block.  This implementation provides the same
// semantics portably with copy-on-write path updates:
//
//   * find_leaf() descends an immutable snapshot reached from an atomic root
//     pointer — wait-free, no validation, never blocks (the HTM-traversal
//     equivalent).  Callers must hold an epoch::Guard for the duration.
//   * insert_split() (the paper's htmTreeUpdate) copies the root-to-parent
//     path with the new separator/leaf spliced in, splits overfull inner
//     nodes, swaps the root, and retires replaced nodes through EBR.
//     Structure changes are serialized by one mutex — splits are rare.
//
// A reader can reach a leaf that has just split (its snapshot predates the
// root swap); the owning trees resolve that B-link style via the persistent
// per-leaf high_key/next chain, exactly as the paper's find redirects.
//
// The paper's evaluation keeps internal nodes identical across all compared
// trees; every tree in this library instantiates this template.
#pragma once

#include <cassert>
#include <cstdint>
#include <mutex>
#include <vector>

#include "epoch/ebr.hpp"
#include "obs/metrics.hpp"

namespace rnt::inner {

namespace detail {

// Structure-modification telemetry shared by every InnerTree instantiation
// (all key/leaf types funnel into the same process-wide counters).
struct InnerCounters {
  obs::Counter updates{"inner.updates"};    ///< insert_split (htmTreeUpdate) calls
  obs::Counter rebuilds{"inner.rebuilds"};  ///< bulk_load (recovery) calls
  obs::Counter retired{"inner.retired_nodes"};
};

inline const InnerCounters& counters() {
  static InnerCounters c;
  return c;
}

}  // namespace detail

template <typename Key, typename Leaf>
class InnerTree {
 public:
  /// Max separator keys per inner node.  16 keys keeps a 16M-KV tree at
  /// depth ~5 with 64-entry leaves, mirroring the paper's setup.
  static constexpr int kFanout = 16;

  explicit InnerTree(epoch::EpochManager& epochs) : epochs_(epochs) {}

  ~InnerTree() { free_subtree(root_.load(std::memory_order_relaxed)); }

  InnerTree(const InnerTree&) = delete;
  InnerTree& operator=(const InnerTree&) = delete;

  /// Initialise with a single leaf covering the whole key space.
  void init_single(Leaf* leftmost) {
    assert(root_.load(std::memory_order_relaxed) == nullptr);
    Node* r = new Node;
    r->level = 0;
    r->count = 0;
    r->children[0] = leftmost;
    root_.store(r, std::memory_order_release);
  }

  /// Leaf whose range covers @p k in the current snapshot.  The caller must
  /// hold an epoch::Guard; the returned pointer stays valid while it does.
  /// Each descent step prefetches the chosen child's leading lines (its
  /// separator keys span the first two), overlapping the next level's fetch
  /// with this level's loop overhead.
  Leaf* find_leaf(Key k) const noexcept {
    const Node* n = root_.load(std::memory_order_acquire);
    while (n->level > 0) {
      const Node* child =
          static_cast<const Node*>(n->children[n->child_index(k)]);
      __builtin_prefetch(child, /*rw=*/0, /*locality=*/3);
      __builtin_prefetch(reinterpret_cast<const char*>(child) + 64, 0, 3);
      n = child;
    }
    return static_cast<Leaf*>(n->children[n->child_index(k)]);
  }

  /// Splice (separator, new_leaf) immediately to the right of @p old_leaf:
  /// the paper's htmTreeUpdate after a leaf split.  @p sep is the split key
  /// (minimum key of new_leaf's range).
  void insert_split(Key sep, Leaf* old_leaf, Leaf* new_leaf) {
    detail::counters().updates.inc();
    std::lock_guard lk(mu_);
    Node* old_root = root_.load(std::memory_order_relaxed);
    // Replaced nodes are collected and retired only AFTER the root swap
    // below.  Retiring them inside the recursion would be a use-after-free
    // window: retire() may run collect() inline, and until the swap the old
    // path — stamped with the still-current epoch — remains reachable from
    // the installed root, so a fresh reader could traverse a freed node.
    // (Found by the TSan stress test.)
    std::vector<Node*> replaced;
    InsertResult r = insert_rec(old_root, sep, old_leaf, new_leaf, replaced);
    Node* new_root = r.left;
    if (r.right != nullptr) {
      new_root = new Node;
      new_root->level = static_cast<std::int16_t>(r.left->level + 1);
      new_root->count = 1;
      new_root->keys[0] = r.pushed;
      new_root->children[0] = r.left;
      new_root->children[1] = r.right;
    }
    root_.store(new_root, std::memory_order_release);
    for (Node* n : replaced) retire_node(n);
  }

  /// Rebuild from an ordered leaf chain.  @p leaves are all leaves left to
  /// right; @p separators[i] is the lower bound of leaves[i+1]'s range (the
  /// persisted high_key chain), so separators.size() == leaves.size() - 1.
  void bulk_load(const std::vector<Leaf*>& leaves,
                 const std::vector<Key>& separators) {
    assert(!leaves.empty());
    assert(separators.size() + 1 == leaves.size());
    detail::counters().rebuilds.inc();
    std::lock_guard lk(mu_);
    Node* old_root = root_.exchange(nullptr, std::memory_order_relaxed);
    free_subtree(old_root);

    // Build the leaf level, then stack levels until one node remains.
    std::vector<Node*> level;
    std::vector<Key> seps;  // separators between consecutive nodes in `level`
    {
      std::size_t i = 0;
      while (i < leaves.size()) {
        Node* n = new Node;
        n->level = 0;
        const std::size_t take =
            std::min<std::size_t>(kFanout + 1, leaves.size() - i);
        n->count = static_cast<std::int16_t>(take - 1);
        for (std::size_t j = 0; j < take; ++j) n->children[j] = leaves[i + j];
        for (std::size_t j = 0; j + 1 < take; ++j) n->keys[j] = separators[i + j];
        if (i + take < leaves.size()) seps.push_back(separators[i + take - 1]);
        level.push_back(n);
        i += take;
      }
    }
    while (level.size() > 1) {
      std::vector<Node*> next_level;
      std::vector<Key> next_seps;
      std::size_t i = 0;
      while (i < level.size()) {
        Node* n = new Node;
        n->level = static_cast<std::int16_t>(level[i]->level + 1);
        const std::size_t take =
            std::min<std::size_t>(kFanout + 1, level.size() - i);
        n->count = static_cast<std::int16_t>(take - 1);
        for (std::size_t j = 0; j < take; ++j) n->children[j] = level[i + j];
        for (std::size_t j = 0; j + 1 < take; ++j) n->keys[j] = seps[i + j];
        if (i + take < level.size()) next_seps.push_back(seps[i + take - 1]);
        next_level.push_back(n);
        i += take;
      }
      level = std::move(next_level);
      seps = std::move(next_seps);
    }
    root_.store(level[0], std::memory_order_release);
  }

  /// Tree height in inner levels (1 = root directly over leaves).
  int height() const noexcept {
    const Node* n = root_.load(std::memory_order_acquire);
    return n == nullptr ? 0 : n->level + 1;
  }

  /// Read-only walk over every inner node in the current snapshot, calling
  /// fn(level, separator_count) once per node.  The caller must hold an
  /// epoch::Guard: published nodes are immutable (COW path updates), so the
  /// snapshot reached from root_ stays consistent for the walk's duration.
  template <typename Fn>
  void for_each_node(Fn&& fn) const {
    visit_rec(root_.load(std::memory_order_acquire), fn);
  }

 private:
  struct Node {
    std::int16_t count;  ///< number of separator keys (children = count + 1)
    std::int16_t level;  ///< 0 => children are Leaf*
    Key keys[kFanout + 1];        // +1: transient slot while splitting
    void* children[kFanout + 2];

    /// Index of the child whose subtree covers @p k (keys >= keys[i] go
    /// right of separator i).  Branch-free linear scan: with at most 17
    /// separators, a run of conditional increments (cmp+setcc, no
    /// data-dependent branches) beats a binary search whose every probe
    /// mispredicts ~50% of the time.
    int child_index(Key k) const noexcept {
      int idx = 0;
      for (int i = 0; i < count; ++i) idx += !(k < keys[i]) ? 1 : 0;
      return idx;
    }
  };

  struct InsertResult {
    Node* left;
    Node* right;  ///< nullptr if the copied node did not split
    Key pushed;
  };

  /// Copy @p n with (sep, new_leaf) inserted in the subtree; returns the
  /// replacement (possibly split in two).  Every replaced node is pushed to
  /// @p replaced — the caller retires them after publishing the new root.
  InsertResult insert_rec(Node* n, Key sep, Leaf* old_leaf, Leaf* new_leaf,
                          std::vector<Node*>& replaced) {
    Node* copy = new Node(*n);
    const int idx = n->child_index(sep);
    if (n->level == 0) {
      assert(n->children[idx] == old_leaf &&
             "insert_split: separator does not land on the splitting leaf");
      (void)old_leaf;
      // Shift keys/children right of idx and splice the new separator.
      for (int j = copy->count; j > idx; --j) copy->keys[j] = copy->keys[j - 1];
      for (int j = copy->count + 1; j > idx + 1; --j)
        copy->children[j] = copy->children[j - 1];
      copy->keys[idx] = sep;
      copy->children[idx + 1] = new_leaf;
      copy->count++;
    } else {
      InsertResult child = insert_rec(static_cast<Node*>(n->children[idx]), sep,
                                      old_leaf, new_leaf, replaced);
      copy->children[idx] = child.left;
      if (child.right != nullptr) {
        for (int j = copy->count; j > idx; --j) copy->keys[j] = copy->keys[j - 1];
        for (int j = copy->count + 1; j > idx + 1; --j)
          copy->children[j] = copy->children[j - 1];
        copy->keys[idx] = child.pushed;
        copy->children[idx + 1] = child.right;
        copy->count++;
      }
    }
    replaced.push_back(n);
    if (copy->count <= kFanout) return {copy, nullptr, Key{}};

    // Split the overfull copy: left keeps `half` keys, the middle key is
    // pushed up, the right node takes the rest.
    const int half = copy->count / 2;
    Node* right = new Node;
    right->level = copy->level;
    right->count = static_cast<std::int16_t>(copy->count - half - 1);
    const Key pushed = copy->keys[half];
    for (int j = 0; j < right->count; ++j) right->keys[j] = copy->keys[half + 1 + j];
    for (int j = 0; j <= right->count; ++j)
      right->children[j] = copy->children[half + 1 + j];
    copy->count = static_cast<std::int16_t>(half);
    return {copy, right, pushed};
  }

  template <typename Fn>
  static void visit_rec(const Node* n, Fn& fn) {
    if (n == nullptr) return;
    fn(static_cast<int>(n->level), static_cast<int>(n->count));
    if (n->level > 0)
      for (int i = 0; i <= n->count; ++i)
        visit_rec(static_cast<const Node*>(n->children[i]), fn);
  }

  void retire_node(Node* n) {
    detail::counters().retired.inc();
    epochs_.retire([n] { delete n; });
  }

  void free_subtree(Node* n) {
    if (n == nullptr) return;
    if (n->level > 0)
      for (int i = 0; i <= n->count; ++i)
        free_subtree(static_cast<Node*>(n->children[i]));
    delete n;
  }

  epoch::EpochManager& epochs_;
  std::atomic<Node*> root_{nullptr};
  std::mutex mu_;
};

}  // namespace rnt::inner
