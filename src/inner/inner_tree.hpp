// Volatile internal-node tree shared by every leaf design.
//
// Following the paper (and FPTree/NVTree), all internal nodes live in DRAM
// and are rebuilt from the persistent leaf chain on recovery; only leaf nodes
// are NVM-resident.  The paper wraps traversal and internal-node updates in
// HTM so that readers never block; mutating the inner nodes inside those
// transactions is what inflates SMO write sets and triggers capacity-abort
// storms at scale.  This implementation goes one step further and makes
// every structure modification RCU-HTM style copy-on-write:
//
//   * find_leaf() descends an immutable snapshot reached from an atomic root
//     pointer — wait-free, no validation, never blocks (the HTM-traversal
//     equivalent).  Callers must hold an epoch::Guard for the duration.
//   * insert_split() (the paper's htmTreeUpdate) first tries the COW fast
//     path: record the descent path (node stack + child indexes, the
//     rcu-htm traversal stack), build a replacement of the leaf's parent
//     out of place, and INSTALL it with a short HTM transaction that
//     re-validates every recorded link and swaps exactly one pointer — a
//     one-cache-line write set, so install transactions essentially never
//     capacity-abort.  The replaced node is retired through EBR strictly
//     AFTER the swap.
//   * When the fast path cannot apply (parent full so the split must
//     propagate, validation keeps failing, or COW installs are disabled)
//     the legacy serialized path runs: copy the whole root-to-parent path
//     with the new separator spliced in, split overfull inner nodes, swap
//     the root under the SMO fallback lock, and retire every replaced node.
//     Its rebuild+swap executes as one transaction (atomic_exec_excl) with
//     the whole-path write-set footprint declared to the abort injector —
//     this is the measurable "in-place large-transaction SMO" baseline the
//     COW install is compared against in EXPERIMENTS.md.
//
// Mutual exclusion between the two paths: install transactions run through
// atomic_exec against smo_lock_, so they subscribe to the lock (an install
// aborts while a serialized SMO holds it, and the injected/software tiers
// commit under it).  The serialized path holds smo_lock_ for its entire
// read-copy-swap window.  Published nodes are immutable except for child
// slots of level>=1 nodes, which only install transactions re-point; a
// stale parent is therefore always caught by the spine re-validation.
//
// A reader can reach a leaf that has just split (its snapshot predates the
// install); the owning trees resolve that B-link style via the persistent
// per-leaf high_key/next chain, exactly as the paper's find redirects.
//
// The paper's evaluation keeps internal nodes identical across all compared
// trees; every tree in this library instantiates this template.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <vector>

#include "epoch/ebr.hpp"
#include "htm/rtm.hpp"
#include "htm/smo.hpp"
#include "htm/spinlock.hpp"
#include "obs/metrics.hpp"

namespace rnt::inner {

namespace detail {

// Structure-modification telemetry shared by every InnerTree instantiation
// (all key/leaf types funnel into the same process-wide counters).
struct InnerCounters {
  obs::Counter updates{"inner.updates"};    ///< insert_split (htmTreeUpdate) calls
  obs::Counter rebuilds{"inner.rebuilds"};  ///< bulk_load (recovery) calls
  obs::Counter retired{"inner.retired_nodes"};
};

inline const InnerCounters& counters() {
  static InnerCounters c;
  return c;
}

}  // namespace detail

template <typename Key, typename Leaf>
class InnerTree {
 public:
  /// Max separator keys per inner node.  16 keys keeps a 16M-KV tree at
  /// depth ~5 with 64-entry leaves, mirroring the paper's setup.
  static constexpr int kFanout = 16;

  /// @p cow_install selects the COW fast path for splits (default).  false
  /// routes every SMO through the serialized whole-path rebuild — the
  /// pre-COW behaviour, kept for before/after measurement and the
  /// linearizability test's pre-COW leg.  @p smo_lock, when given, replaces
  /// the internal SMO fallback lock — the owning tree routes structural
  /// changes through its stripe table's dedicated SMO stripe so leaf-path
  /// and SMO fallbacks share one lock-order domain (stripe_table.hpp).
  explicit InnerTree(epoch::EpochManager& epochs, bool cow_install = true,
                     htm::SpinLock* smo_lock = nullptr)
      : epochs_(epochs),
        smo_lock_(smo_lock != nullptr ? *smo_lock : own_smo_lock_),
        cow_install_(cow_install) {}

  ~InnerTree() { free_subtree(root_.load(std::memory_order_relaxed)); }

  InnerTree(const InnerTree&) = delete;
  InnerTree& operator=(const InnerTree&) = delete;

  bool cow_install_enabled() const noexcept { return cow_install_; }

  /// Initialise with a single leaf covering the whole key space.
  void init_single(Leaf* leftmost) {
    assert(root_.load(std::memory_order_relaxed) == nullptr);
    Node* r = new Node;
    r->level = 0;
    r->count = 0;
    r->children[0].store(leftmost, std::memory_order_relaxed);
    root_.store(r, std::memory_order_release);
  }

  /// Leaf whose range covers @p k in the current snapshot.  The caller must
  /// hold an epoch::Guard; the returned pointer stays valid while it does.
  /// Each descent step prefetches the chosen child's leading lines (its
  /// separator keys span the first two), overlapping the next level's fetch
  /// with this level's loop overhead.
  Leaf* find_leaf(Key k) const noexcept {
    const Node* n = root_.load(std::memory_order_acquire);
    while (n->level > 0) {
      const Node* child = static_cast<const Node*>(n->child(n->child_index(k)));
      __builtin_prefetch(child, /*rw=*/0, /*locality=*/3);
      __builtin_prefetch(reinterpret_cast<const char*>(child) + 64, 0, 3);
      n = child;
    }
    return static_cast<Leaf*>(n->child(n->child_index(k)));
  }

  /// Splice (separator, new_leaf) immediately to the right of @p old_leaf:
  /// the paper's htmTreeUpdate after a leaf split.  @p sep is the split key
  /// (minimum key of new_leaf's range).  The caller must hold an
  /// epoch::Guard: the COW fast path reads path nodes outside any lock and
  /// relies on the pin to keep concurrently retired nodes mapped.
  void insert_split(Key sep, Leaf* old_leaf, Leaf* new_leaf) {
    detail::counters().updates.inc();
    if (cow_install_ && try_cow_install(sep, old_leaf, new_leaf)) return;
    legacy_insert_split(sep, old_leaf, new_leaf);
  }

  /// Rebuild from an ordered leaf chain.  @p leaves are all leaves left to
  /// right; @p separators[i] is the lower bound of leaves[i+1]'s range (the
  /// persisted high_key chain), so separators.size() == leaves.size() - 1.
  void bulk_load(const std::vector<Leaf*>& leaves,
                 const std::vector<Key>& separators) {
    assert(!leaves.empty());
    assert(separators.size() + 1 == leaves.size());
    detail::counters().rebuilds.inc();
    htm::SpinGuard lk(smo_lock_);
    Node* old_root = root_.exchange(nullptr, std::memory_order_relaxed);
    free_subtree(old_root);

    // Build the leaf level, then stack levels until one node remains.
    std::vector<Node*> level;
    std::vector<Key> seps;  // separators between consecutive nodes in `level`
    {
      std::size_t i = 0;
      while (i < leaves.size()) {
        Node* n = new Node;
        n->level = 0;
        const std::size_t take =
            std::min<std::size_t>(kFanout + 1, leaves.size() - i);
        n->count = static_cast<std::int16_t>(take - 1);
        for (std::size_t j = 0; j < take; ++j)
          n->children[j].store(leaves[i + j], std::memory_order_relaxed);
        for (std::size_t j = 0; j + 1 < take; ++j) n->keys[j] = separators[i + j];
        if (i + take < leaves.size()) seps.push_back(separators[i + take - 1]);
        level.push_back(n);
        i += take;
      }
    }
    while (level.size() > 1) {
      std::vector<Node*> next_level;
      std::vector<Key> next_seps;
      std::size_t i = 0;
      while (i < level.size()) {
        Node* n = new Node;
        n->level = static_cast<std::int16_t>(level[i]->level + 1);
        const std::size_t take =
            std::min<std::size_t>(kFanout + 1, level.size() - i);
        n->count = static_cast<std::int16_t>(take - 1);
        for (std::size_t j = 0; j < take; ++j)
          n->children[j].store(level[i + j], std::memory_order_relaxed);
        for (std::size_t j = 0; j + 1 < take; ++j) n->keys[j] = seps[i + j];
        if (i + take < level.size()) next_seps.push_back(seps[i + take - 1]);
        next_level.push_back(n);
        i += take;
      }
      level = std::move(next_level);
      seps = std::move(next_seps);
    }
    root_.store(level[0], std::memory_order_release);
  }

  /// Tree height in inner levels (1 = root directly over leaves).
  int height() const noexcept {
    const Node* n = root_.load(std::memory_order_acquire);
    return n == nullptr ? 0 : n->level + 1;
  }

  /// Read-only walk over every inner node in the current snapshot, calling
  /// fn(level, separator_count) once per node.  The caller must hold an
  /// epoch::Guard: published nodes are immutable except for child-slot
  /// installs (each of which republishes a fully built subtree), so the
  /// snapshot reached from root_ stays consistent for the walk's duration.
  template <typename Fn>
  void for_each_node(Fn&& fn) const {
    visit_rec(root_.load(std::memory_order_acquire), fn);
  }

 private:
  struct Node {
    std::int16_t count;  ///< number of separator keys (children = count + 1)
    std::int16_t level;  ///< 0 => children are Leaf*
    Key keys[kFanout + 1];  // +1: transient slot while splitting
    /// Atomic: COW installs re-point one slot of a live level>=1 node while
    /// readers descend through it (release store vs acquire load pairs).
    std::atomic<void*> children[kFanout + 2];

    void* child(int i) const noexcept {
      return children[i].load(std::memory_order_acquire);
    }

    /// Index of the child whose subtree covers @p k (keys >= keys[i] go
    /// right of separator i).  Branch-free linear scan: with at most 17
    /// separators, a run of conditional increments (cmp+setcc, no
    /// data-dependent branches) beats a binary search whose every probe
    /// mispredicts ~50% of the time.
    int child_index(Key k) const noexcept {
      int idx = 0;
      for (int i = 0; i < count; ++i) idx += !(k < keys[i]) ? 1 : 0;
      return idx;
    }
  };

  /// Deepest install path supported by the stack-recording fast path; a
  /// fanout-16 tree covering 2^64 keys never reaches it.
  static constexpr int kMaxInstallDepth = 24;
  /// Re-traversal attempts before the fast path concedes to the serialized
  /// one (each retry means a concurrent SMO republished part of our path).
  static constexpr int kInstallRetries = 3;
  /// Cache lines one node spans — the per-node write-set footprint the
  /// serialized whole-path SMO declares to the abort injector.
  static constexpr unsigned kNodeLines =
      static_cast<unsigned>((sizeof(Node) + 63) / 64);

  // -------------------------------------------------------------------------
  // COW fast path (rcu-htm): record the traversal stack, copy the parent out
  // of place, validate + swap one pointer inside a short install transaction.
  // -------------------------------------------------------------------------
  bool try_cow_install(Key sep, Leaf* old_leaf, Leaf* new_leaf) {
    htm::SmoCounters& smo = htm::smo_counters();
    for (int retry = 0; retry < kInstallRetries; ++retry) {
      // 1. Record the descent path: ancestors of the leaf's parent plus the
      //    child index taken at each (the rcu-htm node_stack).
      Node* stack[kMaxInstallDepth];
      int idx[kMaxInstallDepth];
      int depth = 0;
      Node* n = root_.load(std::memory_order_acquire);
      while (n->level > 0) {
        if (depth >= kMaxInstallDepth) return false;
        const int i = n->child_index(sep);
        stack[depth] = n;
        idx[depth] = i;
        ++depth;
        n = static_cast<Node*>(n->child(i));
      }
      Node* parent = n;
      const int pidx = parent->child_index(sep);
      if (parent->count >= kFanout) {
        // No room: the split must propagate into the ancestors — that is
        // the serialized path's multi-node job (one split in ~kFanout).
        smo.overflow_fallbacks.inc();
        return false;
      }
      if (parent->child(pidx) != old_leaf) {
        // The parent was republished between the leaf split and now (or a
        // concurrent install landed here); re-traverse.
        smo.validation_failures.inc();
        continue;
      }

      // 2. Build the replacement parent out of place in transient memory.
      Node* copy = clone_with_splice(parent, pidx, sep, new_leaf);

      // 3. Short install transaction: re-validate every recorded link, then
      //    swap exactly one pointer.  Write set = one cache line, so the
      //    injector (and real RTM) sees a minimal capacity profile.
      bool installed = false;
      {
        htm::SmoInstallScope in_install;
        htm::TxFootprint footprint(1);
        htm::atomic_exec(
            smo_lock_,
            [&]() {
              if (root_.load(std::memory_order_relaxed) !=
                  (depth > 0 ? stack[0] : parent))
                return;
              for (int d = 0; d + 1 < depth; ++d)
                if (stack[d]->children[idx[d]].load(std::memory_order_relaxed) !=
                    stack[d + 1])
                  return;
              if (depth > 0 && stack[depth - 1]
                                       ->children[idx[depth - 1]]
                                       .load(std::memory_order_relaxed) != parent)
                return;
              if (parent->children[pidx].load(std::memory_order_relaxed) !=
                  old_leaf)
                return;
              if (depth == 0)
                root_.store(copy, std::memory_order_release);
              else
                stack[depth - 1]->children[idx[depth - 1]].store(
                    copy, std::memory_order_release);
              installed = true;
            },
            htm::smo_install_policy());
      }
      if (installed) {
        smo.installs.inc();
        if (depth == 0) smo.root_installs.inc();
        // Retire strictly AFTER the swap (same discipline as the serialized
        // path): until the install, `parent` is reachable from the current
        // root and a fresh reader could still walk into it.
        retire_node(parent);
        return true;
      }
      delete copy;  // never published; no reader can hold it
      smo.validation_failures.inc();
    }
    smo.retry_fallbacks.inc();
    return false;
  }

  /// Copy of @p n with (sep, new_leaf) spliced in right of child @p pidx.
  /// Requires n->count < kFanout (the fast path's no-propagation case).
  Node* clone_with_splice(const Node* n, int pidx, Key sep, Leaf* new_leaf) {
    Node* copy = clone_node(n);
    for (int j = copy->count; j > pidx; --j) copy->keys[j] = copy->keys[j - 1];
    for (int j = copy->count + 1; j > pidx + 1; --j)
      copy->children[j].store(
          copy->children[j - 1].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    copy->keys[pidx] = sep;
    copy->children[pidx + 1].store(new_leaf, std::memory_order_relaxed);
    copy->count++;
    return copy;
  }

  /// Field-wise copy (Node holds atomics, so no copy constructor).  The
  /// source is a published, immutable node; the copy is private until its
  /// install publishes it, so relaxed stores suffice — the installing
  /// release store orders them for readers.
  static Node* clone_node(const Node* n) {
    Node* copy = new Node;
    copy->count = n->count;
    copy->level = n->level;
    for (int i = 0; i < n->count; ++i) copy->keys[i] = n->keys[i];
    for (int i = 0; i <= n->count; ++i)
      copy->children[i].store(n->children[i].load(std::memory_order_acquire),
                              std::memory_order_relaxed);
    return copy;
  }

  // -------------------------------------------------------------------------
  // Serialized whole-path rebuild: COW of the full root-to-parent path under
  // the SMO fallback lock (which every install transaction subscribes to).
  // Handles split propagation and root growth; also the cow_install_=false
  // baseline.  The rebuild+swap runs as ONE transaction with the whole-path
  // footprint declared, modelling the in-place large-write-set SMO the COW
  // install replaces (the "before" of the capacity-abort measurement).
  // -------------------------------------------------------------------------
  void legacy_insert_split(Key sep, Leaf* old_leaf, Leaf* new_leaf) {
    htm::smo_counters().legacy_smos.inc();
    htm::SpinGuard lk(smo_lock_);
    // Replaced nodes are collected and retired only AFTER the root swap
    // below.  Retiring them inside the recursion would be a use-after-free
    // window: retire() may run collect() inline, and until the swap the old
    // path — stamped with the still-current epoch — remains reachable from
    // the installed root, so a fresh reader could traverse a freed node.
    // (Found by the TSan stress test.)
    std::vector<Node*> replaced;
    {
      htm::SmoInstallScope in_install;
      htm::TxFootprint footprint(
          static_cast<unsigned>(std::max(height(), 1)) * kNodeLines);
      htm::atomic_exec_excl(
          [&] {
            replaced.clear();  // exception-replay safety (injected CrashPoint)
            Node* old_root = root_.load(std::memory_order_relaxed);
            InsertResult r =
                insert_rec(old_root, sep, old_leaf, new_leaf, replaced);
            Node* new_root = r.left;
            if (r.right != nullptr) {
              new_root = new Node;
              new_root->level = static_cast<std::int16_t>(r.left->level + 1);
              new_root->count = 1;
              new_root->keys[0] = r.pushed;
              new_root->children[0].store(r.left, std::memory_order_relaxed);
              new_root->children[1].store(r.right, std::memory_order_relaxed);
            }
            root_.store(new_root, std::memory_order_release);
          },
          htm::smo_install_policy());
    }
    for (Node* n : replaced) retire_node(n);
  }

  struct InsertResult {
    Node* left;
    Node* right;  ///< nullptr if the copied node did not split
    Key pushed;
  };

  /// Copy @p n with (sep, new_leaf) inserted in the subtree; returns the
  /// replacement (possibly split in two).  Every replaced node is pushed to
  /// @p replaced — the caller retires them after publishing the new root.
  InsertResult insert_rec(Node* n, Key sep, Leaf* old_leaf, Leaf* new_leaf,
                          std::vector<Node*>& replaced) {
    Node* copy = clone_node(n);
    const int idx = n->child_index(sep);
    if (n->level == 0) {
      assert(n->child(idx) == old_leaf &&
             "insert_split: separator does not land on the splitting leaf");
      (void)old_leaf;
      // Shift keys/children right of idx and splice the new separator.
      for (int j = copy->count; j > idx; --j) copy->keys[j] = copy->keys[j - 1];
      for (int j = copy->count + 1; j > idx + 1; --j)
        copy->children[j].store(
            copy->children[j - 1].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
      copy->keys[idx] = sep;
      copy->children[idx + 1].store(new_leaf, std::memory_order_relaxed);
      copy->count++;
    } else {
      InsertResult child = insert_rec(static_cast<Node*>(n->child(idx)), sep,
                                      old_leaf, new_leaf, replaced);
      copy->children[idx].store(child.left, std::memory_order_relaxed);
      if (child.right != nullptr) {
        for (int j = copy->count; j > idx; --j) copy->keys[j] = copy->keys[j - 1];
        for (int j = copy->count + 1; j > idx + 1; --j)
          copy->children[j].store(
              copy->children[j - 1].load(std::memory_order_relaxed),
              std::memory_order_relaxed);
        copy->keys[idx] = child.pushed;
        copy->children[idx + 1].store(child.right, std::memory_order_relaxed);
        copy->count++;
      }
    }
    replaced.push_back(n);
    if (copy->count <= kFanout) return {copy, nullptr, Key{}};

    // Split the overfull copy: left keeps `half` keys, the middle key is
    // pushed up, the right node takes the rest.
    const int half = copy->count / 2;
    Node* right = new Node;
    right->level = copy->level;
    right->count = static_cast<std::int16_t>(copy->count - half - 1);
    const Key pushed = copy->keys[half];
    for (int j = 0; j < right->count; ++j) right->keys[j] = copy->keys[half + 1 + j];
    for (int j = 0; j <= right->count; ++j)
      right->children[j].store(
          copy->children[half + 1 + j].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    copy->count = static_cast<std::int16_t>(half);
    return {copy, right, pushed};
  }

  template <typename Fn>
  static void visit_rec(const Node* n, Fn& fn) {
    if (n == nullptr) return;
    fn(static_cast<int>(n->level), static_cast<int>(n->count));
    if (n->level > 0)
      for (int i = 0; i <= n->count; ++i)
        visit_rec(static_cast<const Node*>(n->child(i)), fn);
  }

  void retire_node(Node* n) {
    detail::counters().retired.inc();
    epochs_.retire([n] { delete n; });
  }

  void free_subtree(Node* n) {
    if (n == nullptr) return;
    if (n->level > 0)
      for (int i = 0; i <= n->count; ++i)
        free_subtree(static_cast<Node*>(
            n->children[i].load(std::memory_order_relaxed)));
    delete n;
  }

  epoch::EpochManager& epochs_;
  std::atomic<Node*> root_{nullptr};
  /// SMO fallback lock: install transactions subscribe to it (atomic_exec),
  /// the serialized whole-path rebuild and bulk_load hold it outright.
  /// Standalone InnerTrees own theirs; trees with a stripe table pass their
  /// dedicated SMO stripe in, so the reference is the one true lock.
  htm::SpinLock own_smo_lock_;
  htm::SpinLock& smo_lock_;
  const bool cow_install_;
};

}  // namespace rnt::inner
