#include "nvm/persist.hpp"

#include <mutex>
#include <vector>

#include "common/timing.hpp"
#include "nvm/shadow.hpp"

namespace rnt::nvm {

NvmConfig& config() noexcept {
  static NvmConfig cfg;
  return cfg;
}

namespace {

// Aggregate-stat registry: live threads are summed on demand; counters of
// exited threads are folded into `retired`.
std::mutex g_reg_mu;
std::vector<const PersistStats*> g_live;
PersistStats g_retired;

struct TlsEntry {
  PersistStats stats;
  TlsEntry() {
    std::lock_guard lk(g_reg_mu);
    g_live.push_back(&stats);
  }
  ~TlsEntry() {
    std::lock_guard lk(g_reg_mu);
    g_retired.clwb += stats.clwb;
    g_retired.fence += stats.fence;
    g_retired.persist += stats.persist;
    g_retired.lines += stats.lines;
    std::erase(g_live, &stats);
  }
};

TlsEntry& tls_entry() noexcept {
  thread_local TlsEntry e;
  return e;
}

}  // namespace

PersistStats& tls_stats() noexcept { return tls_entry().stats; }

PersistStats aggregate_stats() {
  std::lock_guard lk(g_reg_mu);
  PersistStats out = g_retired;
  for (const PersistStats* s : g_live) {
    out.clwb += s->clwb;
    out.fence += s->fence;
    out.persist += s->persist;
    out.lines += s->lines;
  }
  return out;
}

void reset_aggregate_stats() {
  std::lock_guard lk(g_reg_mu);
  g_retired = {};
  for (const PersistStats* s : g_live)
    *const_cast<PersistStats*>(s) = {};  // benign: callers quiesce workers first
}

namespace detail {

std::atomic<ShadowPool*> g_shadow{nullptr};
thread_local std::uint32_t tls_pending_lines = 0;

void shadow_on_store(const void* p, std::size_t n) {
  if (ShadowPool* sp = shadow_active()) sp->on_store(p, n);
}
void shadow_on_clwb(const void* p) {
  if (ShadowPool* sp = shadow_active()) sp->on_clwb(p);
}
void shadow_on_fence() {
  if (ShadowPool* sp = shadow_active()) sp->on_fence();
}
void shadow_tx_begin() {
  if (ShadowPool* sp = shadow_active()) sp->tx_begin();
}
void shadow_tx_commit() {
  if (ShadowPool* sp = shadow_active()) sp->tx_commit();
}

}  // namespace detail

void clwb(const void* p) noexcept(false) {
  tls_stats().clwb++;
  detail::tls_pending_lines++;
  if (shadow_active() != nullptr) detail::shadow_on_clwb(p);
}

void sfence() noexcept(false) {
  auto& st = tls_stats();
  st.fence++;
  const std::uint32_t pending = detail::tls_pending_lines;
  if (pending > 0) {
    st.lines += pending;
    detail::tls_pending_lines = 0;
    const NvmConfig& cfg = config();
    const std::uint64_t wait =
        cfg.write_latency_ns +
        static_cast<std::uint64_t>(cfg.per_line_ns) * (pending - 1);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // Order matters for crash simulation: the lines become durable at the
    // fence, then the latency is charged.
    if (shadow_active() != nullptr) detail::shadow_on_fence();
    busy_wait_ns(wait);
  } else {
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }
}

void persist(const void* p, std::size_t n) noexcept(false) {
  tls_stats().persist++;
  const char* c = static_cast<const char*>(p);
  const std::size_t nlines = lines_spanned(p, n);
  for (std::size_t i = 0; i < nlines; ++i) clwb(c + i * kCacheLineSize);
  sfence();
}

}  // namespace rnt::nvm
