#include "nvm/persist.hpp"

#include "common/timing.hpp"
#include "nvm/shadow.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"

namespace rnt::nvm {

NvmConfig& config() noexcept {
  static NvmConfig cfg;
  return cfg;
}

namespace {

// The persist counters are registry-backed: the hot path still increments a
// plain thread-local struct (zero added cost over the old per-module
// registry), but each field is attached to the obs metrics registry as an
// external shard, so aggregation, exited-thread folding, reset, and export
// all live in one place (src/obs).
struct PersistMetricIds {
  obs::MetricId clwb = obs::register_metric("nvm.clwb", obs::Kind::kCounter);
  obs::MetricId fence = obs::register_metric("nvm.fence", obs::Kind::kCounter);
  obs::MetricId persist = obs::register_metric("nvm.persist", obs::Kind::kCounter);
  obs::MetricId lines = obs::register_metric("nvm.lines", obs::Kind::kCounter);
  obs::MetricId batch_persist =
      obs::register_metric("nvm.batch_persist", obs::Kind::kCounter);
  obs::MetricId batch_fence =
      obs::register_metric("nvm.batch_fence", obs::Kind::kCounter);
};

const PersistMetricIds& metric_ids() {
  static PersistMetricIds ids;
  return ids;
}

struct TlsEntry {
  PersistStats stats;
  TlsEntry() {
    const PersistMetricIds& ids = metric_ids();
    obs::attach_cell(ids.clwb, &stats.clwb);
    obs::attach_cell(ids.fence, &stats.fence);
    obs::attach_cell(ids.persist, &stats.persist);
    obs::attach_cell(ids.lines, &stats.lines);
    obs::attach_cell(ids.batch_persist, &stats.batch_persist);
    obs::attach_cell(ids.batch_fence, &stats.batch_fence);
  }
  ~TlsEntry() {
    const PersistMetricIds& ids = metric_ids();
    obs::detach_cell(ids.clwb, &stats.clwb);
    obs::detach_cell(ids.fence, &stats.fence);
    obs::detach_cell(ids.persist, &stats.persist);
    obs::detach_cell(ids.lines, &stats.lines);
    obs::detach_cell(ids.batch_persist, &stats.batch_persist);
    obs::detach_cell(ids.batch_fence, &stats.batch_fence);
  }
};

TlsEntry& tls_entry() noexcept {
  thread_local TlsEntry e;
  return e;
}

}  // namespace

PersistStats& tls_stats() noexcept { return tls_entry().stats; }

PersistStats aggregate_stats() {
  const PersistMetricIds& ids = metric_ids();
  PersistStats out;
  out.clwb = obs::counter_value(ids.clwb);
  out.fence = obs::counter_value(ids.fence);
  out.persist = obs::counter_value(ids.persist);
  out.lines = obs::counter_value(ids.lines);
  out.batch_persist = obs::counter_value(ids.batch_persist);
  out.batch_fence = obs::counter_value(ids.batch_fence);
  return out;
}

void reset_aggregate_stats() {
  const PersistMetricIds& ids = metric_ids();
  obs::reset_counter(ids.clwb);
  obs::reset_counter(ids.fence);
  obs::reset_counter(ids.persist);
  obs::reset_counter(ids.lines);
  obs::reset_counter(ids.batch_persist);
  obs::reset_counter(ids.batch_fence);
}

namespace detail {

std::atomic<ShadowPool*> g_shadow{nullptr};
thread_local std::uint32_t tls_pending_lines = 0;

void shadow_on_store(const void* p, std::size_t n) {
  if (ShadowPool* sp = shadow_active()) sp->on_store(p, n);
}
void shadow_on_clwb(const void* p) {
  if (ShadowPool* sp = shadow_active()) sp->on_clwb(p);
}
void shadow_on_fence() {
  if (ShadowPool* sp = shadow_active()) sp->on_fence();
}
void shadow_tx_begin() {
  if (ShadowPool* sp = shadow_active()) sp->tx_begin();
}
void shadow_tx_commit() {
  if (ShadowPool* sp = shadow_active()) sp->tx_commit();
}

}  // namespace detail

void clwb(const void* p) noexcept(false) {
  tls_stats().clwb++;
  detail::tls_pending_lines++;
  if (shadow_active() != nullptr) detail::shadow_on_clwb(p);
}

void sfence() noexcept(false) {
  auto& st = tls_stats();
  st.fence++;
  const std::uint32_t pending = detail::tls_pending_lines;
  if (pending > 0) {
    st.lines += pending;
    detail::tls_pending_lines = 0;
    const NvmConfig& cfg = config();
    const std::uint64_t wait =
        cfg.write_latency_ns +
        static_cast<std::uint64_t>(cfg.per_line_ns) * (pending - 1);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // Order matters for crash simulation: the lines become durable at the
    // fence, then the latency is charged.
    if (shadow_active() != nullptr) detail::shadow_on_fence();
    busy_wait_ns(wait);
  } else {
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }
}

void persist(const void* p, std::size_t n) noexcept(false) {
  // Phase attribution covers the whole flush+fence compound (including the
  // injected NVM latency charged in sfence); bare clwb/sfence calls are not
  // timed individually to avoid double-counting nested compounds.
  obs::PhaseTimer pt(obs::Phase::kPersist);
  tls_stats().persist++;
  const char* c = static_cast<const char*>(p);
  const std::size_t nlines = lines_spanned(p, n);
  for (std::size_t i = 0; i < nlines; ++i) clwb(c + i * kCacheLineSize);
  sfence();
}

namespace {
thread_local int tls_batch_depth = 0;
}  // namespace

int batch_depth() noexcept { return tls_batch_depth; }

void persist_batchable(const void* p, std::size_t n) noexcept(false) {
  if (tls_batch_depth == 0) {
    persist(p, n);
    return;
  }
  obs::PhaseTimer pt(obs::Phase::kPersist);
  tls_stats().batch_persist++;
  const char* c = static_cast<const char*>(p);
  const std::size_t nlines = lines_spanned(p, n);
  for (std::size_t i = 0; i < nlines; ++i) clwb(c + i * kCacheLineSize);
  // No fence: the lines stay write-pending until the scope's batch_barrier()
  // (or any earlier eager sfence, which drains everything pending -- early
  // durability is always safe; the batching only amortizes the fence COUNT).
}

void batch_barrier() noexcept(false) {
  const std::uint32_t pending = detail::tls_pending_lines;
  if (pending == 0) return;
  obs::PhaseTimer pt(obs::Phase::kPersist);
  auto& st = tls_stats();
  st.batch_fence++;  // booked separately from single-op fences
  st.lines += pending;
  detail::tls_pending_lines = 0;
  const NvmConfig& cfg = config();
  const std::uint64_t wait =
      cfg.write_latency_ns +
      static_cast<std::uint64_t>(cfg.per_line_ns) * (pending - 1);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  // Same ordering contract as sfence(): lines become durable at the barrier,
  // then the latency is charged.
  if (shadow_active() != nullptr) detail::shadow_on_fence();
  busy_wait_ns(wait);
}

BatchScope::BatchScope() noexcept { tls_batch_depth++; }

BatchScope::~BatchScope() noexcept(false) {
  tls_batch_depth--;
  if (tls_batch_depth == 0) batch_barrier();
}

}  // namespace rnt::nvm
