// Persistent-instruction primitives for the emulated NVM.
//
// The paper reasons about performance in units of "persistent instructions":
// a cache-line flush (CLFLUSH/CLWB) followed by a fence, which together push
// dirty lines from the cache into the NVM and stall until they are durable.
// This module provides those primitives for the emulated NVM:
//
//   * clwb(p)            -- enqueue the line containing p for writeback
//   * sfence()           -- drain pending writebacks; charges the configured
//                           NVM write latency (default 140 ns, the paper's
//                           NVDIMM write latency) via calibrated busy-wait
//   * persist(p, n)      -- clwb every line of [p, p+n) + sfence; counted as
//                           ONE persistent instruction (the paper's compound)
//
// plus interception-aware store helpers.  All writes to NVM-resident,
// *persistent* data must go through store()/copy_nvm()/on_modified() so the
// crash simulator (shadow.hpp) can track which cache lines are dirty,
// write-pending, or inside an emulated HTM transaction.  When no ShadowPool
// is attached the overhead is one relaxed atomic load + predictable branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "common/cacheline.hpp"

namespace rnt::nvm {

class ShadowPool;

/// Latency model for the emulated NVM medium.
struct NvmConfig {
  /// Stall charged by a fence that drains at least one pending line.
  /// Default matches the paper's measured NVDIMM write latency (140 ns).
  std::uint32_t write_latency_ns = 140;
  /// Additional cost per pending line beyond the first (bandwidth term;
  /// 64 B / 34 GB/s ~= 2 ns on the paper's testbed).
  std::uint32_t per_line_ns = 2;
};

/// Global mutable configuration.  Set before running a benchmark; not
/// synchronized (configure from one thread before spawning workers).
NvmConfig& config() noexcept;

/// Per-thread persistent-instruction counters.  Group persistency is counted
/// in separate fields (batch_persist/batch_fence) so that `persist` remains
/// exactly the paper's Table-1 "persistent instruction" count: a deferred
/// flush inside a BatchScope never inflates or deflates the single-op totals.
struct PersistStats {
  std::uint64_t clwb = 0;      ///< individual line writebacks issued
  std::uint64_t fence = 0;     ///< fences issued
  std::uint64_t persist = 0;   ///< persist() compounds ("persistent instructions")
  std::uint64_t lines = 0;     ///< total lines drained by fences
  std::uint64_t batch_persist = 0;  ///< deferred (fence-less) flush compounds
  std::uint64_t batch_fence = 0;    ///< trailing batch barriers issued

  PersistStats operator-(const PersistStats& o) const noexcept {
    return {clwb - o.clwb,       fence - o.fence,
            persist - o.persist, lines - o.lines,
            batch_persist - o.batch_persist,
            batch_fence - o.batch_fence};
  }
  void reset() noexcept { *this = {}; }
};

/// This thread's counters (cheap to read; snapshot/diff around a workload to
/// obtain per-operation persist counts, as bench_table1 does).
PersistStats& tls_stats() noexcept;

/// Sum of counters over all threads that ever recorded, including exited ones.
PersistStats aggregate_stats();

/// Reset aggregate bookkeeping AND the calling thread's counters.
void reset_aggregate_stats();

namespace detail {
extern std::atomic<ShadowPool*> g_shadow;
extern thread_local std::uint32_t tls_pending_lines;

void shadow_on_store(const void* p, std::size_t n);
void shadow_on_clwb(const void* p);
void shadow_on_fence();
void shadow_tx_begin();
void shadow_tx_commit();
}  // namespace detail

/// The ShadowPool currently intercepting NVM traffic, or nullptr.
inline ShadowPool* shadow_active() noexcept {
  return detail::g_shadow.load(std::memory_order_relaxed);
}

/// Store a trivially copyable value to a persistent NVM location.
template <typename T>
inline void store(T& dst, const T& v) noexcept(false) {
  static_assert(std::is_trivially_copyable_v<T>);
  dst = v;
  if (shadow_active() != nullptr) detail::shadow_on_store(&dst, sizeof(T));
}

/// Store with release ordering to an atomic persistent field (e.g. a bitmap
/// or an append counter read by concurrent readers).
template <typename T>
inline void store_release(std::atomic<T>& dst, T v) noexcept(false) {
  dst.store(v, std::memory_order_release);
  if (shadow_active() != nullptr) detail::shadow_on_store(&dst, sizeof(T));
}

/// memcpy into persistent NVM.
inline void copy_nvm(void* dst, const void* src, std::size_t n) noexcept(false) {
  std::memcpy(dst, src, n);
  if (shadow_active() != nullptr) detail::shadow_on_store(dst, n);
}

/// memset over persistent NVM.
inline void set_nvm(void* dst, int byte, std::size_t n) noexcept(false) {
  std::memset(dst, byte, n);
  if (shadow_active() != nullptr) detail::shadow_on_store(dst, n);
}

/// Notify the crash simulator that [p, p+n) was modified by code that could
/// not route every store through store()/copy_nvm() (e.g. placement-init of a
/// fresh node).  Call AFTER the writes.
inline void on_modified(const void* p, std::size_t n) noexcept(false) {
  if (shadow_active() != nullptr) detail::shadow_on_store(p, n);
}

/// Initiate writeback of the cache line containing @p p (CLWB emulation).
/// Asynchronous: durability and the latency charge happen at the next fence.
void clwb(const void* p) noexcept(false);

/// Drain pending writebacks (SFENCE emulation); charges NVM write latency if
/// any lines were pending.
void sfence() noexcept(false);

/// Flush + fence over an arbitrary byte range; the paper's "persistent
/// instruction" compound (counted once in PersistStats::persist).
void persist(const void* p, std::size_t n) noexcept(false);

// ---- Group persistency (batch barriers) ------------------------------------
//
// A BatchScope lets K independent modifies share ONE trailing sfence: each op
// still issues its own clwb's (so every dirty line is write-pending and the
// crash simulator sees the same store/flush stream), but the drain is deferred
// to the scope's end.  Deferred compounds are counted in
// PersistStats::batch_persist, and the trailing barrier in
// PersistStats::batch_fence -- never in `persist`/`fence` -- so Table-1
// single-op persist counts remain comparable with the unbatched build.

/// Flush [p, p+n) like persist(), but inside an active BatchScope the fence is
/// deferred to the scope's trailing barrier (counted as batch_persist, not
/// persist).  Outside any BatchScope this is exactly persist().
void persist_batchable(const void* p, std::size_t n) noexcept(false);

/// Drain all pending writebacks accumulated by persist_batchable() (and any
/// other un-fenced clwb's) with one fence, counted as batch_fence.  No-op when
/// nothing is pending.
void batch_barrier() noexcept(false);

/// Nesting depth of active BatchScopes on this thread (0 = eager persists).
int batch_depth() noexcept;

/// RAII group-persistency scope: while alive, persist_batchable() defers its
/// fence; the destructor issues the trailing batch_barrier().  Nestable; only
/// the outermost destructor fences.
class BatchScope {
 public:
  BatchScope() noexcept;
  // noexcept(false): the trailing barrier is a tracked NVM event, so an
  // attached ShadowPool may fire a CrashPoint out of it (crash tests).
  ~BatchScope() noexcept(false);
  BatchScope(const BatchScope&) = delete;
  BatchScope& operator=(const BatchScope&) = delete;
};

/// Emulated-HTM transaction markers.  The software-fallback HTM sections call
/// these so the crash simulator can model RTM's guarantee that speculative
/// stores never reach the memory subsystem before commit.
inline void htm_tx_begin() noexcept(false) {
  if (shadow_active() != nullptr) detail::shadow_tx_begin();
}
inline void htm_tx_commit() noexcept(false) {
  if (shadow_active() != nullptr) detail::shadow_tx_commit();
}

}  // namespace rnt::nvm
