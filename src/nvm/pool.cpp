#include "nvm/pool.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "common/thread_id.hpp"
#include "obs/metrics.hpp"

namespace rnt::nvm {

namespace {

// Allocator telemetry (process-wide across pools; counters are per-thread
// cells, so the lock-free cache path can charge them too).  pool.bytes_used
// tracks the bump pointer of whichever pool allocated last — benches run one
// pool at a time, which is the case this gauge serves.
struct PoolCounters {
  obs::Counter allocs{"pool.allocs"};
  obs::Counter alloc_bytes{"pool.alloc_bytes"};
  obs::Counter frees{"pool.frees"};
  obs::Counter freelist_hits{"pool.freelist_hits"};
  obs::Counter exhausted{"pool.exhausted"};
  obs::Counter cache_refills{"pool.cache_refills"};
  obs::Counter cache_folds{"pool.cache_folds"};
  obs::Gauge bytes_used{"pool.bytes_used"};
  // Pre-flight reservation protocol (graceful-exhaustion write paths).
  obs::Counter reserve_acquired{"pool.reserve.acquired"};
  obs::Counter reserve_failed{"pool.reserve.failed"};
  obs::Counter reserve_consumed{"pool.reserve.consumed"};
  obs::Counter reserve_returned{"pool.reserve.returned"};
};

const PoolCounters& counters() {
  static PoolCounters c;
  return c;
}

char* map_file(int fd, std::size_t size) {
  void* p = ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (p == MAP_FAILED) throw std::runtime_error("PmemPool: mmap failed");
  return static_cast<char*>(p);
}

char* map_anon(std::size_t size) {
  void* p = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) throw std::runtime_error("PmemPool: anonymous mmap failed");
  return static_cast<char*>(p);
}

}  // namespace

PmemPool::PmemPool(std::size_t size, const std::string& path) : path_(path) {
  size_ = align_up(size, kChunk);
  if (size_ < data_start() + kChunk)
    throw std::invalid_argument("PmemPool: size too small");
  if (path.empty()) {
    base_ = map_anon(size_);
  } else {
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd_ < 0) throw std::runtime_error("PmemPool: cannot create " + path);
    if (::ftruncate(fd_, static_cast<off_t>(size_)) != 0)
      throw std::runtime_error("PmemPool: ftruncate failed");
    base_ = map_file(fd_, size_);
  }
  init_fresh();
  register_thread_exit_hook(&thread_exit_trampoline, this);
}

PmemPool::PmemPool(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_RDWR);
  if (fd_ < 0) throw std::runtime_error("PmemPool: cannot open " + path);
  const off_t len = ::lseek(fd_, 0, SEEK_END);
  if (len <= 0) throw std::runtime_error("PmemPool: empty pool file");
  size_ = static_cast<std::size_t>(len);
  base_ = map_file(fd_, size_);
  load_existing();
  register_thread_exit_hook(&thread_exit_trampoline, this);
}

PmemPool::~PmemPool() {
  // After this returns no exit hook can touch the dying pool.
  unregister_thread_exit_hook(&thread_exit_trampoline, this);
  if (base_ != nullptr) ::munmap(base_, size_);
  if (fd_ >= 0) ::close(fd_);
}

void PmemPool::init_fresh() {
  std::memset(base_, 0, data_start());
  Header* h = header();
  h->magic = kMagic;
  h->version = 1;
  h->size = size_;
  h->used = data_start();
  h->clean = 1;
  persist(h, sizeof(Header));
  // Undo slots are zeroed (kIdle) by the memset above; persist the area.
  persist(base_ + undo_area_off(), sizeof(UndoSlot) * kMaxThreads);
  bump_.store(data_start(), std::memory_order_relaxed);
}

void PmemPool::load_existing() {
  const Header* h = header();
  if (h->magic != kMagic) throw std::runtime_error("PmemPool: bad magic");
  if (h->size != size_) throw std::runtime_error("PmemPool: size mismatch");
  bump_.store(h->used, std::memory_order_relaxed);
  reset_volatile_alloc_state();
}

void PmemPool::reset_volatile_alloc_state() {
  free_lists_.clear();
  freelist_count_.store(0, std::memory_order_relaxed);
  reclaim_spans_.clear();
  for (ThreadCache& tc : caches_) tc = ThreadCache{};
}

void PmemPool::reopen_volatile() {
  std::lock_guard lk(alloc_mu_);
  load_existing();
}

std::uint64_t PmemPool::alloc(std::size_t size) {
  const std::uint64_t sz = align_up(size, kCacheLineSize);
  counters().allocs.inc();
  counters().alloc_bytes.inc(sz);
  // Freed-block reuse wins over fresh carving (exact size-class match, as
  // before sharding); the atomic emptiness check keeps the common
  // nothing-ever-freed path off the mutex.
  if (freelist_count_.load(std::memory_order_relaxed) > 0) {
    std::lock_guard lk(alloc_mu_);
    auto it = free_lists_.find(sz);
    if (it != free_lists_.end() && !it->second.empty()) {
      const std::uint64_t off = it->second.back();
      it->second.pop_back();
      freelist_count_.fetch_sub(1, std::memory_order_relaxed);
      counters().freelist_hits.inc();
      return off;
    }
  }
  if (sz < kSubChunk) {
    // pmem_thread_id() may take the id-registry lock on first use: resolve
    // it before alloc_mu_ so the two never nest.
    ThreadCache& tc = caches_[pmem_thread_id()];
    if (tc.rem < sz) {
      std::lock_guard lk(alloc_mu_);
      refill_cache_locked(tc, sz);
    }
    if (tc.rem >= sz) {
      const std::uint64_t off = tc.off;
      tc.off += sz;
      tc.rem -= sz;
      return off;
    }
    // Refill failed (pool nearly full): fall through — a direct bump may
    // still satisfy a request smaller than a sub-chunk remainder.
  }
  std::lock_guard lk(alloc_mu_);
  return alloc_direct(sz);
}

bool PmemPool::refill_cache_locked(ThreadCache& tc, std::uint64_t need) {
  if (tc.rem > 0) {
    // Never strand the old remainder: make it refillable by any thread.
    reclaim_spans_.push_back({tc.off, tc.rem});
    tc = ThreadCache{};
  }
  for (std::size_t i = 0; i < reclaim_spans_.size(); ++i) {
    if (reclaim_spans_[i].len >= need) {
      tc.off = reclaim_spans_[i].off;
      tc.rem = reclaim_spans_[i].len;
      reclaim_spans_[i] = reclaim_spans_.back();
      reclaim_spans_.pop_back();
      counters().cache_refills.inc();
      return true;
    }
  }
  const std::uint64_t off = alloc_direct(kSubChunk);
  if (off == 0) return false;
  tc.off = off;
  tc.rem = kSubChunk;
  counters().cache_refills.inc();
  return true;
}

std::uint64_t PmemPool::alloc_direct(std::uint64_t sz) {
  const std::uint64_t off = bump_.load(std::memory_order_relaxed);
  if (off + sz > size_) {
    counters().exhausted.inc();
    return 0;
  }
  bump_.store(off + sz, std::memory_order_relaxed);
  counters().bytes_used.set(static_cast<std::int64_t>(off + sz));
  Header* h = header();
  if (off + sz > h->used) {
    // Persist a chunk-rounded high-water mark; a crash can leak at most the
    // unpersisted remainder of one chunk (plus volatile cache/free/reclaim
    // contents below the mark — see the header comment in pool.hpp).
    std::uint64_t mark = align_up(off + sz, kChunk);
    if (mark > size_) mark = size_;
    store(h->used, mark);
    persist(&h->used, sizeof(h->used));
  }
  return off;
}

PmemPool::Reservation PmemPool::reserve(std::size_t size) {
  const std::uint64_t off = alloc(size);
  if (off == 0) {
    counters().reserve_failed.inc();
    return Reservation{};
  }
  counters().reserve_acquired.inc();
  return Reservation{this, off, align_up(size, kCacheLineSize)};
}

std::uint64_t PmemPool::Reservation::consume() noexcept {
  const std::uint64_t off = off_;
  counters().reserve_consumed.inc();
  pool_ = nullptr;
  off_ = 0;
  size_ = 0;
  return off;
}

void PmemPool::Reservation::release() noexcept {
  if (off_ != 0 && pool_ != nullptr) {
    counters().reserve_returned.inc();
    pool_->free(off_, size_);
  }
  pool_ = nullptr;
  off_ = 0;
  size_ = 0;
}

void PmemPool::free(std::uint64_t offset, std::size_t size) {
  if (offset == 0) return;
  const std::size_t sz = align_up(size, kCacheLineSize);
  std::lock_guard lk(alloc_mu_);
  counters().frees.inc();
  free_lists_[sz].push_back(offset);
  freelist_count_.fetch_add(1, std::memory_order_relaxed);
}

void PmemPool::fold_thread_cache(int tid) {
  std::lock_guard lk(alloc_mu_);
  ThreadCache& tc = caches_[tid];
  if (tc.rem > 0) {
    reclaim_spans_.push_back({tc.off, tc.rem});
    counters().cache_folds.inc();
  }
  tc = ThreadCache{};
}

void PmemPool::thread_exit_trampoline(void* self, int tid) {
  static_cast<PmemPool*>(self)->fold_thread_cache(tid);
}

std::uint64_t PmemPool::root(int slot) const noexcept {
  assert(slot >= 0 && slot < kNumRoots);
  return header()->roots[slot];
}

void PmemPool::set_root(int slot, std::uint64_t off) {
  assert(slot >= 0 && slot < kNumRoots);
  Header* h = header();
  store(h->roots[slot], off);
  persist(&h->roots[slot], sizeof(off));
}

UndoSlot& PmemPool::undo_slot(int thread_id) const noexcept {
  assert(thread_id >= 0 && thread_id < kMaxThreads);
  return *reinterpret_cast<UndoSlot*>(base_ + undo_area_off() +
                                      sizeof(UndoSlot) *
                                          static_cast<std::size_t>(thread_id));
}

bool PmemPool::clean_shutdown() const noexcept { return header()->clean == 1; }

void PmemPool::mark_dirty() {
  Header* h = header();
  if (h->clean != 0) {
    store(h->clean, std::uint64_t{0});
    persist(&h->clean, sizeof(h->clean));
  }
}

PoolFragmentation PmemPool::fragmentation() {
  PoolFragmentation out;
  out.data_begin = data_start();
  out.pool_size = size_;
  std::lock_guard lk(alloc_mu_);
  out.bump = bump_.load(std::memory_order_relaxed);
  out.allocated_bytes = out.bump - out.data_begin;
  out.tail_bytes = size_ - out.bump;

  // Collect every tracked free span, then sort and coalesce: adjacent
  // size-class blocks freed separately form one run for the largest-run
  // metric (what matters for "can a leaf-sized block still be carved").
  struct Run {
    std::uint64_t off;
    std::uint64_t len;
  };
  std::vector<Run> runs;
  for (const auto& [sz, offs] : free_lists_)
    for (const std::uint64_t off : offs) runs.push_back({off, sz});
  for (const Span& s : reclaim_spans_) runs.push_back({s.off, s.len});
  for (const ThreadCache& tc : caches_)
    if (tc.rem > 0) runs.push_back({tc.off, tc.rem});
  out.free_blocks = runs.size();
  std::sort(runs.begin(), runs.end(),
            [](const Run& a, const Run& b) { return a.off < b.off; });
  std::vector<Run> merged;
  for (const Run& r : runs) {
    out.free_bytes += r.len;
    if (!merged.empty() && merged.back().off + merged.back().len == r.off)
      merged.back().len += r.len;
    else
      merged.push_back(r);
  }
  for (const Run& r : merged)
    out.largest_free_run = std::max(out.largest_free_run, r.len);

  // Per-chunk map over the carved region [data_begin, bump); free runs are
  // clipped at chunk boundaries so per-chunk byte totals add up.
  const std::uint64_t nchunks = (out.bump - out.data_begin + kChunk - 1) / kChunk;
  out.chunks.resize(nchunks);
  for (std::uint64_t i = 0; i < nchunks; ++i) {
    out.chunks[i].off = out.data_begin + i * kChunk;
    const std::uint64_t end =
        std::min(out.chunks[i].off + kChunk, out.bump);
    out.chunks[i].live_bytes = end - out.chunks[i].off;
  }
  for (const Run& r : merged) {
    std::uint64_t off = r.off;
    std::uint64_t rem = r.len;
    while (rem > 0 && off >= out.data_begin && off < out.bump) {
      const std::uint64_t ci = (off - out.data_begin) / kChunk;
      if (ci >= nchunks) break;
      PoolFragmentation::Chunk& c = out.chunks[ci];
      const std::uint64_t chunk_end =
          std::min(c.off + kChunk, out.bump);
      const std::uint64_t take = std::min(rem, chunk_end - off);
      c.free_bytes += take;
      c.live_bytes -= take;
      c.largest_free_run = std::max(c.largest_free_run, take);
      off += take;
      rem -= take;
    }
  }
  return out;
}

void PmemPool::close_clean() {
  Header* h = header();
  store(h->used, bump_.load(std::memory_order_relaxed));
  store(h->clean, std::uint64_t{1});
  persist(h, sizeof(Header));
}

}  // namespace rnt::nvm
