// PmemPool — the emulated persistent-memory region.
//
// Models the paper's environment: NVM managed by a DAX filesystem and mmap'd
// into the address space, accessed by ordinary loads/stores.  A pool is one
// contiguous mapping (DRAM-backed for experiments, file-backed to demonstrate
// real cross-process durability).  All persistent cross-references are 8-byte
// *pool offsets* so a pool remains valid wherever it is mapped; offset 0 is
// the null offset (it addresses the pool header).
//
// Header contents (all persistent):
//   * magic/version/size
//   * 8 named root slots (the trees store their leftmost-leaf offset in one;
//     the paper: "the pointer to the left-most leaf node is stored in a
//     well-known static address")
//   * allocation high-water mark, persisted at chunk granularity
//   * clean-shutdown flag distinguishing reconstruction from crash recovery
//   * per-thread split undo-log slots (Alg 3 logs the whole leaf "in a
//     pre-defined thread-local storage" before splitting)
//
// Allocation is sharded: each thread owns a volatile cache that carves
// sub-chunks (kSubChunk) off the shared bump pointer, so the common alloc is
// a thread-local pointer bump with no lock.  Only refills, large blocks
// (>= kSubChunk), and freed-block reuse serialize on the allocation mutex.
// Crash-safety is unchanged from the global-bump design and remains chunk
// (kChunk) granular: the persisted high-water mark only ever moves when a
// refill or large alloc crosses a chunk boundary, and recovery treats
// everything below the mark as potentially live.  What a crash can leak:
//   * the unpersisted remainder of the current chunk (as before), plus
//   * unconsumed space inside live thread caches and the volatile reclaim /
//     free lists — all below the mark, so recovery never hands them out
//     twice; they are simply unreachable space, exactly like blocks freed
//     into the volatile free list before the crash.
// Thread *exit* leaks nothing: an exit hook folds the departing thread's
// cache remainder into a reclaim list that refills prefer over fresh
// carving (see register_thread_exit_hook).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cacheline.hpp"
#include "nvm/persist.hpp"

namespace rnt::nvm {

/// Maximum worker threads supported by the undo-log area and epoch slots.
inline constexpr int kMaxThreads = 64;

/// Per-thread persistent undo-log slot used by leaf splits.
struct alignas(kCacheLineSize) UndoSlot {
  enum State : std::uint64_t { kIdle = 0, kActive = 1 };
  static constexpr std::size_t kDataSize = 4064;

  std::uint64_t state;       ///< kIdle or kActive (persisted)
  std::uint64_t target_off;  ///< pool offset of the leaf being split
  std::uint64_t aux_off;     ///< pool offset of the new leaf (freed on rollback)
  std::uint64_t data_size;   ///< bytes of the logged leaf image
  std::uint8_t data[kDataSize];
};
static_assert(sizeof(UndoSlot) == 4096);

/// Point-in-time fragmentation map of a pool's data area (see
/// PmemPool::fragmentation()).  "Free" means tracked by the volatile
/// allocator state — size-class free lists, folded reclaim spans, and
/// unconsumed thread-cache remainders; everything else inside the
/// allocation frontier counts as live.
struct PoolFragmentation {
  struct Chunk {
    std::uint64_t off = 0;              ///< chunk base offset
    std::uint64_t live_bytes = 0;       ///< allocated and not freed
    std::uint64_t free_bytes = 0;       ///< tracked-free inside this chunk
    std::uint64_t largest_free_run = 0; ///< longest coalesced run (clipped)
  };
  std::uint64_t data_begin = 0;       ///< first allocatable offset
  std::uint64_t bump = 0;             ///< allocation frontier
  std::uint64_t pool_size = 0;
  std::uint64_t allocated_bytes = 0;  ///< bump - data_begin (ever handed out)
  std::uint64_t free_bytes = 0;       ///< tracked-free inside the frontier
  std::uint64_t tail_bytes = 0;       ///< pool_size - bump (never carved)
  std::uint64_t largest_free_run = 0; ///< longest coalesced free run
  std::uint64_t free_blocks = 0;      ///< tracked free spans (pre-coalesce)
  std::vector<Chunk> chunks;          ///< per-kChunk map over the frontier
};

class PmemPool {
 public:
  static constexpr std::uint64_t kMagic = 0x524E545245453139ull;  // "RNTREE19"
  // 16 root slots so a ShardedTree can give each of up to 16 shards its own
  // recovery root in one pool (slot i = shard i).  Header stays well inside
  // the kChunk-aligned data_start, so the layout is unchanged.
  static constexpr int kNumRoots = 16;
  static constexpr std::uint64_t kChunk = 1u << 20;  ///< high-water persist step
  /// Span a thread cache carves off the shared bump pointer per refill.
  /// Large enough that a leaf-heavy workload refills (and so locks) once
  /// every ~50 leaf allocations, small enough that 64 thread caches strand
  /// at most 4 MB in a crash.
  static constexpr std::uint64_t kSubChunk = 64u << 10;

  /// Create a fresh pool.  If @p path is empty the pool is DRAM-backed;
  /// otherwise it is a mmap'd file (created/truncated).
  explicit PmemPool(std::size_t size, const std::string& path = "");

  /// Reopen an existing file-backed pool (recovery entry point).
  explicit PmemPool(const std::string& path);

  PmemPool(const PmemPool&) = delete;
  PmemPool& operator=(const PmemPool&) = delete;
  ~PmemPool();

  /// Translate offset -> pointer.  Offset 0 yields nullptr.
  template <typename T = void>
  T* ptr(std::uint64_t off) const noexcept {
    return off == 0 ? nullptr : reinterpret_cast<T*>(base_ + off);
  }

  /// Translate pointer -> offset (nullptr -> 0).
  std::uint64_t off(const void* p) const noexcept {
    return p == nullptr
               ? 0
               : static_cast<std::uint64_t>(static_cast<const char*>(p) - base_);
  }

  /// Allocate @p size bytes, cache-line aligned.  Returns 0 on exhaustion.
  /// Blocks below kSubChunk are served from the calling thread's cache
  /// (lock-free after the cache holds a span); freed-block reuse and larger
  /// blocks take the allocation mutex.
  std::uint64_t alloc(std::size_t size);

  /// Pre-flight space reservation (see reserve()).  Move-only RAII: an
  /// unconsumed reservation returns its block to the pool on destruction, a
  /// consumed one hands the block to the caller.  Invalid (default / failed
  /// / moved-from) reservations are inert.
  class Reservation {
   public:
    Reservation() noexcept = default;
    Reservation(Reservation&& other) noexcept
        : pool_(other.pool_), off_(other.off_), size_(other.size_) {
      other.pool_ = nullptr;
      other.off_ = 0;
      other.size_ = 0;
    }
    Reservation& operator=(Reservation&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = other.pool_;
        off_ = other.off_;
        size_ = other.size_;
        other.pool_ = nullptr;
        other.off_ = 0;
        other.size_ = 0;
      }
      return *this;
    }
    Reservation(const Reservation&) = delete;
    Reservation& operator=(const Reservation&) = delete;
    ~Reservation() { release(); }

    bool valid() const noexcept { return off_ != 0; }
    std::uint64_t size() const noexcept { return size_; }

    /// Hand the reserved block to the caller; the reservation becomes
    /// invalid.  Must only be called on a valid reservation.
    std::uint64_t consume() noexcept;

    /// Return an unconsumed block to the pool now (idempotent).
    void release() noexcept;

   private:
    friend class PmemPool;
    Reservation(PmemPool* pool, std::uint64_t off, std::uint64_t size) noexcept
        : pool_(pool), off_(off), size_(size) {}
    PmemPool* pool_ = nullptr;
    std::uint64_t off_ = 0;
    std::uint64_t size_ = 0;
  };

  /// Reserve @p size bytes BEFORE entering a critical section, so an
  /// exhausted pool is detected while backing out is still trivial — a
  /// mutation that holds a reservation can never fail on allocation
  /// mid-critical-section.  Returns an invalid Reservation on exhaustion
  /// (counted in pool.reserve.failed).
  Reservation reserve(std::size_t size);

  /// Return a block to the (volatile) free list.
  void free(std::uint64_t offset, std::size_t size);

  /// First offset the data area can ever hand out.  Every offset returned by
  /// alloc() satisfies data_begin() <= off < size() (invariant oracles use
  /// this lower bound to catch allocator corruption).
  static std::uint64_t data_begin() noexcept { return data_start(); }

  /// Named persistent roots.
  std::uint64_t root(int slot) const noexcept;
  void set_root(int slot, std::uint64_t off);  ///< persisted before returning

  UndoSlot& undo_slot(int thread_id) const noexcept;

  char* base() const noexcept { return base_; }
  std::size_t size() const noexcept { return size_; }
  bool is_file_backed() const noexcept { return fd_ >= 0; }

  /// True when the pool was closed cleanly before the last open.
  bool clean_shutdown() const noexcept;

  /// Clean-flag ordering contract (crash-recovery correctness hinges on it):
  ///
  ///   * open — mark_dirty() must be called (and is persisted before
  ///     returning) strictly BEFORE the first pool mutation, so a crash at
  ///     any later point routes the next open down the crash path;
  ///   * close — close_clean() must be called strictly AFTER all data the
  ///     clean path trusts is durable.  The flag store and its fence are
  ///     separate tracked events: a crash between them leaves the flag
  ///     update unflushed — either it is lost (pool reopens dirty; the
  ///     crash path re-derives everything) or an eviction lands it (pool
  ///     reopens clean, which is safe precisely because the data was
  ///     already durable).
  void mark_dirty();
  void close_clean();

  /// Simulate a process restart on a DRAM-backed pool: drops all volatile
  /// allocator state and re-reads the header, exactly like reopening a file.
  void reopen_volatile();

  /// Bytes handed out so far (diagnostics).
  std::uint64_t bytes_used() const noexcept { return bump_.load(std::memory_order_relaxed); }

  /// Point-in-time fragmentation map (diagnostics; takes the allocation
  /// mutex).  Counts are exact for the tracked volatile free state at the
  /// instant of the call; concurrent allocs may race the frontier read by a
  /// few blocks.
  PoolFragmentation fragmentation();

 private:
  struct Header {
    std::uint64_t magic;
    std::uint64_t version;
    std::uint64_t size;
    std::uint64_t used;         // persisted high-water mark (chunk granular)
    std::uint64_t clean;        // 1 = clean shutdown
    std::uint64_t roots[kNumRoots];
  };

  /// Per-thread allocation cache: an unconsumed span carved off bump_.
  /// Volatile by design — a crash leaks the remainders (below the persisted
  /// mark, never re-issued); a thread exit folds them into reclaim_spans_.
  struct alignas(kCacheLineSize) ThreadCache {
    std::uint64_t off = 0;
    std::uint64_t rem = 0;
  };

  /// A folded (offset, length) span available for cache refills.
  struct Span {
    std::uint64_t off;
    std::uint64_t len;
  };

  Header* header() const noexcept { return reinterpret_cast<Header*>(base_); }
  void init_fresh();
  void load_existing();
  void reset_volatile_alloc_state();
  /// Give @p tc a span of at least @p need bytes: a reclaimed span if one
  /// fits, else a fresh kSubChunk (or final remainder) off bump_.  Any prior
  /// remainder is folded first.  Caller must hold alloc_mu_.
  bool refill_cache_locked(ThreadCache& tc, std::uint64_t need);
  /// Bump-allocate @p sz directly (large blocks, near-exhaustion fallback).
  std::uint64_t alloc_direct(std::uint64_t sz);
  /// Thread-exit hook body: fold thread @p tid's cache into reclaim_spans_.
  void fold_thread_cache(int tid);
  static void thread_exit_trampoline(void* self, int tid);
  static std::uint64_t undo_area_off() noexcept {
    return align_up(sizeof(Header), kCacheLineSize);
  }
  static std::uint64_t data_start() noexcept {
    return align_up(undo_area_off() + sizeof(UndoSlot) * kMaxThreads, kChunk);
  }

  char* base_ = nullptr;
  std::size_t size_ = 0;
  int fd_ = -1;
  std::string path_;

  std::atomic<std::uint64_t> bump_{0};
  std::mutex alloc_mu_;
  std::unordered_map<std::size_t, std::vector<std::uint64_t>> free_lists_;
  /// Total blocks across free_lists_; lets alloc skip the mutex when the
  /// free list is known empty (the common case for append-mostly trees).
  std::atomic<std::uint64_t> freelist_count_{0};
  std::vector<Span> reclaim_spans_;  ///< folded exited-thread remainders
  ThreadCache caches_[kMaxThreads];
};

}  // namespace rnt::nvm
