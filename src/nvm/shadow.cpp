#include "nvm/shadow.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "common/rng.hpp"
#include "obs/trace.hpp"

namespace rnt::nvm {

namespace {
std::uint64_t this_thread_id() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}
}  // namespace

ShadowPool::ShadowPool(PmemPool& pool) : pool_(pool) {
  durable_.resize(pool.size());
  std::memcpy(durable_.data(), pool.base(), pool.size());
  owner_thread_ = this_thread_id();
  ShadowPool* expected = nullptr;
  if (!detail::g_shadow.compare_exchange_strong(expected, this))
    throw std::logic_error("ShadowPool: another shadow is already active");
}

ShadowPool::~ShadowPool() {
  detail::g_shadow.store(nullptr, std::memory_order_relaxed);
}

void ShadowPool::track_event() {
  if (crashed_) return;
  ++events_;
  if (events_ >= crash_at_event_) {
    crashed_ = true;
    crash_at_event_ = kNoCrashScheduled;
    // Post-mortem: with tracing on, show what every thread was doing when
    // the injected crash fired (the in-flight op lands once its OpTrace
    // unwinds and records itself with result=crash).
    if (obs::trace_enabled()) {
      std::fprintf(stderr, "ShadowPool: injected crash at event %llu\n",
                   static_cast<unsigned long long>(events_));
      obs::dump_traces(stderr);
    }
    throw CrashPoint{};
  }
}

void ShadowPool::on_store(const void* p, std::size_t n) {
  if (crashed_) return;
  assert(this_thread_id() == owner_thread_ &&
         "ShadowPool is single-threaded by design");
  [[maybe_unused]] const char* c = static_cast<const char*>(p);
  assert(c >= pool_.base() && c + n <= pool_.base() + pool_.size() &&
         "store outside the attached pool");
  const std::size_t nlines = lines_spanned(p, n);
  const std::uint64_t first = line_index(p);
  for (std::size_t i = 0; i < nlines; ++i) {
    const std::uint64_t line = first + i;
    if (tx_depth_ > 0) {
      tx_.insert(line);
    } else if (!tx_.contains(line)) {
      // A store to a line with an in-flight CLWB makes it dirty again (the
      // writeback is treated as not-yet-completed; a legal outcome).
      pending_.erase(line);
      dirty_.insert(line);
    }
  }
  track_event();
}

void ShadowPool::on_clwb(const void* p) {
  if (crashed_) return;
  const std::uint64_t line = line_index(p);
  assert(tx_depth_ == 0 &&
         "cache-line flush inside an HTM transaction (would abort on TSX)");
  if (dirty_.erase(line) > 0) pending_.insert(line);
}

void ShadowPool::on_fence() {
  if (crashed_) return;
  for (const std::uint64_t line : pending_) make_durable(line);
  pending_.clear();
  track_event();
}

void ShadowPool::tx_begin() {
  if (crashed_) return;
  ++tx_depth_;
}

void ShadowPool::tx_commit() {
  if (crashed_) return;
  assert(tx_depth_ > 0);
  if (--tx_depth_ == 0) {
    // Committed speculative lines become ordinary dirty (evictable) lines.
    for (const std::uint64_t line : tx_) dirty_.insert(line);
    tx_.clear();
  }
}

void ShadowPool::schedule_crash_after(std::uint64_t n) {
  if (n == 0)
    throw std::invalid_argument(
        "ShadowPool::schedule_crash_after: n must be >= 1 (a crash before "
        "the next event is the same state as after the previous one)");
  crash_at_event_ = events_ + n;
}

void ShadowPool::cancel_scheduled_crash() { crash_at_event_ = kNoCrashScheduled; }

void ShadowPool::make_durable(std::uint64_t line) {
  std::memcpy(durable_.data() + line * kCacheLineSize,
              pool_.base() + line * kCacheLineSize, kCacheLineSize);
}

void ShadowPool::restore_line(std::uint64_t line) {
  std::memcpy(pool_.base() + line * kCacheLineSize,
              durable_.data() + line * kCacheLineSize, kCacheLineSize);
}

void ShadowPool::simulate_crash(EvictionMode mode, std::uint64_t seed) {
  // Per-line hash coin: deterministic for a given seed regardless of the
  // (unordered) iteration order of the tracking sets.
  auto decide = [&](std::uint64_t line) {
    if (mode == EvictionMode::kRandomEviction &&
        (mix64(seed ^ 0xC0FFEEull ^ line) & 1) != 0)
      make_durable(line);  // an eviction happened to beat the crash
    else
      restore_line(line);
  };
  for (const std::uint64_t line : dirty_) decide(line);
  // Pending lines (CLWB issued, fence not reached) may also go either way.
  for (const std::uint64_t line : pending_) decide(line);
  // Speculative HTM lines never reach the NVM.
  for (const std::uint64_t line : tx_) restore_line(line);
  dirty_.clear();
  pending_.clear();
  tx_.clear();
  tx_depth_ = 0;
  crashed_ = false;
  crash_at_event_ = kNoCrashScheduled;
}

}  // namespace rnt::nvm
