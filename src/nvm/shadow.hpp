// ShadowPool — cache-line-granularity crash simulator for a PmemPool.
//
// Models the exact x86+NVM failure semantics the paper reasons about:
//
//   * Stores land in the (volatile) cache; they reach the NVM only via an
//     explicit CLWB+fence or an *uncontrolled* eviction.
//   * A cache line written inside an HTM transaction NEVER reaches the NVM
//     before the transaction commits ("a dirty cache-line incurred by a store
//     remains in the cache"); after commit its lines are ordinary dirty lines.
//   * On a crash, each unflushed dirty line independently either made it to
//     the NVM (an eviction happened first) or is lost.
//
// While attached, all persistent stores routed through nvm::store()/
// copy_nvm()/on_modified() are tracked per cache line:
//
//   durable image : a private copy of the pool taken at attach time, updated
//                   when lines are fenced (or "evicted" at crash time)
//   dirty         : written but not flushed
//   pending       : CLWB issued, fence not yet reached
//   tx            : written inside an open emulated-HTM transaction
//
// simulate_crash() rewinds the working pool to what the NVM would contain:
// tx lines are always lost; dirty/pending lines are lost (kNone) or coin-flip
// survive (kRandomEviction, seeded).  After the rewind the caller runs the
// tree's crash recovery on the pool and checks invariants.
//
// Crash *injection*: schedule_crash_after(n), n >= 1, makes the n-th
// subsequent tracked NVM event (store or fence) throw CrashPoint
// mid-operation, after which the shadow ignores all traffic until
// simulate_crash() is called.  The n-th event takes full effect BEFORE the
// crash fires:
//
//   * crash on a store — the store's lines are already tracked dirty (or
//     speculative, inside a transaction), so at simulate_crash() time they
//     are lost or coin-flip survive like any other unflushed line;
//   * crash on a fence — the fence's pending (CLWB-issued) lines have
//     already drained to the durable image; the crash lands strictly after
//     the persist completes.
//
// Sweeping n over an operation's event count therefore exercises both
// "just after this store became evictable" and "just after this persist
// retired" for every event in the operation.  n == 0 is rejected
// (std::invalid_argument): a crash "before the next event" is
// indistinguishable from crashing after the previous one, so it has no
// distinct semantics — historically it also collided with the disabled
// sentinel, silently disabling the crash when no events had been tracked
// yet.
//
// Single-threaded by design (asserted): crash-consistency properties are
// about persist ordering, which the single-thread sweeps cover; concurrency
// is tested separately with real threads.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/cacheline.hpp"
#include "nvm/pool.hpp"

namespace rnt::nvm {

/// Thrown at an injected crash point.  Propagates out of the in-flight tree
/// operation; the test then calls simulate_crash() and re-runs recovery.
struct CrashPoint {};

enum class EvictionMode {
  kNone,            ///< no line survives unless explicitly fenced (strictest)
  kRandomEviction,  ///< each unflushed non-tx line survives with p=1/2
};

class ShadowPool {
 public:
  /// Attach to @p pool: snapshots the durable image and installs the global
  /// interception hook.  Only one ShadowPool may be active per process.
  explicit ShadowPool(PmemPool& pool);
  ~ShadowPool();

  ShadowPool(const ShadowPool&) = delete;
  ShadowPool& operator=(const ShadowPool&) = delete;

  // --- interception callbacks (invoked from nvm::store/clwb/sfence) ---
  void on_store(const void* p, std::size_t n);
  void on_clwb(const void* p);
  void on_fence();
  void tx_begin();
  void tx_commit();

  // --- crash machinery ---

  /// Throw CrashPoint when the (events_seen()+n)-th tracked event occurs,
  /// after that event's effect is applied (see file comment for the exact
  /// store-vs-fence semantics).  Requires n >= 1; n == 0 throws
  /// std::invalid_argument.
  void schedule_crash_after(std::uint64_t n);
  void cancel_scheduled_crash();
  bool crash_scheduled() const noexcept {
    return crash_at_event_ != kNoCrashScheduled;
  }
  std::uint64_t events_seen() const noexcept { return events_; }
  bool crashed() const noexcept { return crashed_; }

  /// Rewind the working pool to the simulated NVM contents; clears all
  /// tracking state (the durable image then equals the working pool).
  /// Safe to call with or without a prior injected CrashPoint.
  void simulate_crash(EvictionMode mode = EvictionMode::kNone,
                      std::uint64_t seed = 0);

  /// Number of lines currently dirty+pending+tx (diagnostics / tests).
  std::size_t unflushed_lines() const noexcept {
    return dirty_.size() + pending_.size() + tx_.size();
  }

 private:
  std::uint64_t line_index(const void* p) const noexcept {
    const auto off = static_cast<std::uint64_t>(
        static_cast<const char*>(p) - pool_.base());
    return off / kCacheLineSize;
  }
  void make_durable(std::uint64_t line);
  void restore_line(std::uint64_t line);
  void track_event();

  PmemPool& pool_;
  std::vector<std::uint8_t> durable_;
  std::unordered_set<std::uint64_t> dirty_;
  std::unordered_set<std::uint64_t> pending_;
  std::unordered_set<std::uint64_t> tx_;
  int tx_depth_ = 0;
  /// Distinct "no crash scheduled" sentinel: an event count can never reach
  /// it, so every n >= 1 (including one that resolves to an absolute event
  /// number of 0+1 on a fresh shadow) schedules a real crash.
  static constexpr std::uint64_t kNoCrashScheduled = ~std::uint64_t{0};

  bool crashed_ = false;
  std::uint64_t events_ = 0;
  std::uint64_t crash_at_event_ = kNoCrashScheduled;
  std::uint64_t owner_thread_ = 0;
};

}  // namespace rnt::nvm
