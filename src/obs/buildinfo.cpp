#include "obs/buildinfo.hpp"

#include <cstdio>
#include <ctime>
#include <string>
#include <thread>

namespace rnt::obs {

namespace {

#define RNT_STR2(x) #x
#define RNT_STR(x) RNT_STR2(x)

const char* git_sha() {
#if defined(RNT_GIT_SHA)
  return RNT_STR(RNT_GIT_SHA);
#else
  return "unknown";
#endif
}

const char* build_type() {
#if defined(RNT_BUILD_TYPE)
  return RNT_STR(RNT_BUILD_TYPE);
#else
  return "unknown";
#endif
}

const char* compiler() {
#if defined(__clang_version__)
  return "clang " __clang_version__;
#elif defined(__VERSION__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

std::string iso8601_utc_now() {
  const std::time_t t = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace

std::vector<MetaField> standard_meta() {
  char cores[16];
  std::snprintf(cores, sizeof(cores), "%u",
                std::thread::hardware_concurrency());
  return {
      {"git_sha", git_sha(), false},
      {"build_type", build_type(), false},
      {"compiler", compiler(), false},
      {"host_cores", cores, true},
      {"timestamp", iso8601_utc_now(), false},
  };
}

}  // namespace rnt::obs
