// Standard provenance metadata for exported stats documents.
//
// Every --stats-json document should say *what* produced it: the commit,
// the build type, the compiler, the host, and when.  standard_meta()
// assembles those as MetaFields for the "meta" section; benches prepend it
// to their own workload fields (bench name, thread count, ...).
//
// git_sha and build_type are baked in at configure time (RNT_GIT_SHA /
// RNT_BUILD_TYPE compile definitions on this TU only, so an incremental
// rebuild after a commit only recompiles one file); both degrade to
// "unknown" when the definitions are absent.
#pragma once

#include <vector>

#include "obs/export.hpp"

namespace rnt::obs {

/// { git_sha, build_type, compiler, host_cores (number), timestamp
/// (ISO-8601 UTC) } — prepend to a bench's own meta fields.
std::vector<MetaField> standard_meta();

}  // namespace rnt::obs
