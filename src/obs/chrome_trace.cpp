#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/heatmap.hpp"

namespace rnt::obs {

namespace {

// One decimal microsecond with three fractional digits keeps the events'
// nanosecond resolution through the format's µs timestamps.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  out += buf;
}

void append_slice(std::string& out, bool& first, std::uint32_t tid,
                  const char* cat, const char* name, std::uint64_t start_ns,
                  std::uint64_t dur_ns) {
  out += first ? "\n  " : ",\n  ";
  first = false;
  out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%u", tid);
  out += buf;
  out += ",\"cat\":\"";
  out += cat;
  out += "\",\"name\":\"";
  out += name;
  out += "\",\"ts\":";
  append_us(out, start_ns);
  out += ",\"dur\":";
  append_us(out, dur_ns);
}

}  // namespace

std::string to_chrome_trace(const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(256 + events.size() * 512);
  out += "{\"traceEvents\":[";
  bool first = true;

  // One named track per recording thread.
  std::vector<std::uint32_t> tids;
  for (const TraceEvent& e : events) tids.push_back(e.thread_id);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  char buf[128];
  for (std::uint32_t tid : tids) {
    out += first ? "\n  " : ",\n  ";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":\"thread_name\","
                  "\"args\":{\"name\":\"thread %u\"}}",
                  tid, tid);
    out += buf;
  }

  for (const TraceEvent& e : events) {
    const std::uint64_t dur = e.latency_ns;
    const std::uint64_t start = e.ts_ns >= dur ? e.ts_ns - dur : 0;
    append_slice(out, first, e.thread_id, "op",
                 to_string(static_cast<OpKind>(e.op)), start, dur);
    out += ",\"args\":{";
    std::snprintf(buf, sizeof(buf),
                  "\"key\":%" PRIu64 ",\"leaf\":%" PRIu64 ",\"result\":\"%s\","
                  "\"htm_attempts\":%u,\"persists\":%u",
                  e.key, e.leaf_off, to_string(static_cast<OpResult>(e.result)),
                  e.htm_attempts, e.persists);
    out += buf;
    if (e.aborts_conflict + e.aborts_capacity + e.aborts_other + e.fallbacks !=
        0) {
      std::snprintf(buf, sizeof(buf),
                    ",\"aborts_conflict\":%u,\"aborts_capacity\":%u,"
                    "\"aborts_other\":%u,\"fallbacks\":%u",
                    e.aborts_conflict, e.aborts_capacity, e.aborts_other,
                    e.fallbacks);
      out += buf;
    }
    out += "}}";

    // Phase sub-slices: laid out sequentially from the op's start (the
    // recorder keeps totals, not begin/end stamps), clamped to the slice so
    // overlapping attributions (an SMO's persists) never spill past the op.
    const std::pair<const char*, std::uint32_t> phases[] = {
        {"htm", e.phase_htm_ns},
        {"lock_wait", e.phase_lock_ns},
        {"persist", e.phase_persist_ns},
        {"smo", e.phase_smo_ns},
    };
    std::uint64_t cursor = 0;
    for (const auto& [pname, pns] : phases) {
      if (pns == 0 || cursor >= dur) continue;
      const std::uint64_t len = std::min<std::uint64_t>(pns, dur - cursor);
      append_slice(out, first, e.thread_id, "phase", pname, start + cursor, len);
      out += '}';
      cursor += len;
    }
  }

  // Top-K hot buckets as counter tracks: the contention score of each
  // sampled hot bucket over time ("C" events render as area charts in
  // Perfetto/chrome://tracing).  Samples exist only when the sampler ran
  // (--sample-ms) with the heatmap enabled.
  for (const HeatTrack& tr : heatmap_tracks(8)) {
    for (const HeatTrackPoint& p : tr.points) {
      out += first ? "\n  " : ",\n  ";
      first = false;
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"C\",\"pid\":1,\"name\":\"heat.bucket.%u\",\"ts\":",
                    tr.bucket);
      out += buf;
      append_us(out, p.ts_ns);
      std::snprintf(buf, sizeof(buf), ",\"args\":{\"score\":%" PRIu64 "}}",
                    p.score);
      out += buf;
    }
  }

  out += "\n],\"displayTimeUnit\":\"ns\"}\n";
  return out;
}

bool write_chrome_trace(const std::string& path) {
  const std::string doc = to_chrome_trace(collect_traces());
  if (path == "-") {
    std::fwrite(doc.data(), 1, doc.size(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  return ok;
}

}  // namespace rnt::obs
