// Chrome/Perfetto trace-event exporter for the flight-recorder ring.
//
// Converts collected TraceEvents into the chrome://tracing JSON Array
// Format (also loadable at ui.perfetto.dev): one track per recording
// thread, one "X" complete slice per operation, with the op's phase
// attribution rendered as child sub-slices and the abort-cause counters
// attached as slice args.  Timestamps are the events' own clocks (wall
// nanoseconds, or virtual time for DES-simulator events) scaled to the
// microseconds the format requires.
//
// Benches drive this via --perfetto=FILE: at exit they call
// write_chrome_trace(), which collects every ring and writes the document
// ("-" = stdout).  Open the file in ui.perfetto.dev or chrome://tracing.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace rnt::obs {

/// Serialise @p events as a chrome://tracing JSON document:
/// {"traceEvents":[...],"displayTimeUnit":"ns"}.  Emits one "M"
/// thread_name metadata event per distinct thread_id, one "X" complete
/// event per op (cat "op", args: key/leaf/result/htm_attempts/persists/
/// aborts_*/fallbacks), and one "X" sub-slice per nonzero phase (cat
/// "phase"), laid out sequentially from the op slice's start and clamped
/// to its duration.
std::string to_chrome_trace(const std::vector<TraceEvent>& events);

/// collect_traces() + to_chrome_trace() written to @p path ("-" = stdout).
/// Returns false (with a message on stderr) if the file cannot be written.
bool write_chrome_trace(const std::string& path);

}  // namespace rnt::obs
