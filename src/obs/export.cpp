#include "obs/export.hpp"

#include <cinttypes>
#include <cmath>

#include "obs/heatmap.hpp"
#include "obs/sampler.hpp"
#include "obs/struct_audit.hpp"
#include "obs/trace.hpp"

namespace rnt::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "0";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

std::string prom_name(const std::string& name) {
  std::string out = "rnt_";
  for (char c : name) out += (c == '.' || c == '-') ? '_' : c;
  return out;
}

}  // namespace

std::string to_json(const Snapshot& snap, const std::vector<MetaField>& meta,
                    bool include_trace, bool include_timeseries) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"meta\": {";
  for (std::size_t i = 0; i < meta.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    append_escaped(out, meta[i].key);
    out += ": ";
    if (meta[i].is_number)
      out += meta[i].value.empty() ? "0" : meta[i].value;
    else
      append_escaped(out, meta[i].value);
  }
  out += "\n  },\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    append_escaped(out, snap.counters[i].first);
    char buf[32];
    std::snprintf(buf, sizeof(buf), ": %" PRIu64, snap.counters[i].second);
    out += buf;
  }
  out += "\n  },\n  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    append_escaped(out, snap.gauges[i].first);
    char buf[32];
    std::snprintf(buf, sizeof(buf), ": %" PRId64, snap.gauges[i].second);
    out += buf;
  }
  out += "\n  },\n  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    append_escaped(out, snap.histograms[i].first);
    const HistogramSummary& h = snap.histograms[i].second;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  ": {\"count\": %" PRIu64 ", \"sum\": %" PRIu64
                  ", \"min\": %" PRIu64 ", \"max\": %" PRIu64 ", \"mean\": ",
                  h.count, h.sum, h.min, h.max);
    out += buf;
    append_number(out, h.mean);
    std::snprintf(buf, sizeof(buf),
                  ", \"p50\": %" PRIu64 ", \"p90\": %" PRIu64 ", \"p99\": %" PRIu64
                  ", \"p999\": %" PRIu64 "}",
                  h.p50, h.p90, h.p99, h.p999);
    out += buf;
  }
  out += "\n  }";
  {
    const std::string hm = heatmap_json();
    if (!hm.empty()) {
      out += ",\n  \"heatmap\": ";
      out += hm;
    }
    const std::string st = structure_section();
    if (!st.empty()) {
      out += ",\n  \"structure\": ";
      out += st;
    }
  }
  if (include_timeseries) {
    const std::string ts = timeseries_json();
    if (!ts.empty()) {
      out += ",\n  \"timeseries\": ";
      out += ts;
    }
  }
  if (include_trace && trace_enabled()) {
    out += ",\n  \"trace\": ";
    traces_json(out);
  }
  out += "\n}\n";
  return out;
}

std::string to_prometheus(const Snapshot& snap) {
  std::string out;
  out.reserve(4096);
  char buf[256];
  for (const auto& [name, v] : snap.counters) {
    const std::string p = prom_name(name);
    std::snprintf(buf, sizeof(buf), "# TYPE %s counter\n%s %" PRIu64 "\n",
                  p.c_str(), p.c_str(), v);
    out += buf;
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string p = prom_name(name);
    std::snprintf(buf, sizeof(buf), "# TYPE %s gauge\n%s %" PRId64 "\n",
                  p.c_str(), p.c_str(), v);
    out += buf;
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string p = prom_name(name);
    std::snprintf(buf, sizeof(buf), "# TYPE %s histogram\n", p.c_str());
    out += buf;
    for (const auto& [upper, cum] : h.buckets) {
      std::snprintf(buf, sizeof(buf), "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
                    p.c_str(), upper, cum);
      out += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n%s_sum %" PRIu64
                  "\n%s_count %" PRIu64 "\n",
                  p.c_str(), h.count, p.c_str(), h.sum, p.c_str(), h.count);
    out += buf;
  }
  return out;
}

bool write_json_snapshot(const std::string& path,
                         const std::vector<MetaField>& meta, bool include_trace,
                         bool include_timeseries) {
  const std::string doc = to_json(snapshot(), meta, include_trace,
                                  include_timeseries);
  if (path == "-") {
    std::fwrite(doc.data(), 1, doc.size(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  return ok;
}

}  // namespace rnt::obs
