// Structured export of registry snapshots: JSON (machine-readable bench
// output, consumed by --stats-json=FILE) and Prometheus text exposition
// (scrape-ready `# TYPE` + sample lines).
//
// The JSON document shape:
//
//   {
//     "meta":       { ...caller-supplied string/number fields... },
//     "counters":   { "nvm.persist": 123, ... },
//     "gauges":     { "nvm.write_latency_ns": 140, ... },
//     "histograms": { "name": {"count":..,"sum":..,"min":..,"max":..,
//                              "mean":..,"p50":..,"p90":..,"p99":..,
//                              "p999":..}, ... },
//     "timeseries": { "interval_ms":..,"windows":[...] },  // when sampling
//     "trace":      [ {...TraceEvent...}, ... ]            // when tracing
//   }
//
// Keys are sorted, values are plain integers/doubles, strings are escaped —
// the output parses with any JSON library (CI runs it through
// `python3 -m json.tool`).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace rnt::obs {

/// Caller-supplied metadata emitted under "meta" (numbers pass through
/// unquoted when is_number is true).
struct MetaField {
  std::string key;
  std::string value;
  bool is_number = false;
};

/// Serialise @p snap as a JSON document.  Includes the trace rings' contents
/// when @p include_trace is set and tracing is enabled, and the sampler's
/// `timeseries` section when @p include_timeseries is set and at least one
/// rate window exists (see obs/sampler.hpp).
std::string to_json(const Snapshot& snap, const std::vector<MetaField>& meta = {},
                    bool include_trace = false, bool include_timeseries = false);

/// Prometheus text exposition format ('.' in metric names becomes '_').
/// Histograms are exposed as TYPE histogram: cumulative `_bucket{le="..."}`
/// lines over the non-empty buckets plus `le="+Inf"`, `_sum`, `_count`.
std::string to_prometheus(const Snapshot& snap);

/// snapshot() + to_json() written to @p path ("-" = stdout).  Returns false
/// (with a message on stderr) if the file cannot be written.
bool write_json_snapshot(const std::string& path,
                         const std::vector<MetaField>& meta = {},
                         bool include_trace = false,
                         bool include_timeseries = false);

}  // namespace rnt::obs
