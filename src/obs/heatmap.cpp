#include "obs/heatmap.hpp"

#if !defined(RNTREE_NO_HEATMAP)

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <deque>
#include <mutex>

#include "obs/metrics.hpp"  // detail::cell_load/cell_store/cell_add

namespace rnt::obs {

namespace {

// splitmix64 finalizer — same mixer the workload generators use; here it
// spreads leaf pool offsets (which share low-bit alignment) across buckets.
std::uint64_t heat_mix(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Bucketing parameters, readable lock-free on the record path.  Mutated only
// by heatmap_configure(), whose contract requires recorder quiescence.
std::atomic<std::uint32_t> g_buckets{64};
std::atomic<std::uint32_t> g_shift{58};  // 64 - log2(64)
std::atomic<bool> g_by_leaf{false};
std::atomic<std::uint64_t> g_key_space{0};
std::atomic<double> g_half_life_s{0.0};

std::uint32_t shift_for(std::uint64_t key_space, std::uint32_t buckets) {
  const int space_bits =
      key_space == 0 ? 64 : std::bit_width(key_space - 1);
  const int bucket_bits = std::countr_zero(buckets);
  return static_cast<std::uint32_t>(std::max(0, space_bits - bucket_bits));
}

// One bucket's counter-track sample (sampler tick).
struct TrackSample {
  std::uint64_t ts_ns = 0;
  std::vector<std::uint64_t> scores;  // by bucket id
};

// Retained track samples are bounded so a long --sample-ms run can't grow
// without limit, and skipped entirely for very large tables.
constexpr std::size_t kMaxTrackSamples = 600;
constexpr std::uint32_t kMaxTrackBuckets = 512;

struct HeatSlab {
  std::vector<std::uint64_t> cells;  // bucket-major: [bucket][cause]
  ~HeatSlab();
};

struct HeatRegistry {
  std::mutex mu;
  std::vector<HeatSlab*> slabs;
  std::vector<std::uint64_t> retired;  // folded from exited threads
  std::deque<TrackSample> samples;
  std::uint64_t last_tick_ns = 0;
};

// Leaked singleton, same rationale as the metrics registry: exiting threads
// fold their slabs during static destruction.
HeatRegistry& heat_reg() {
  static HeatRegistry* r = new HeatRegistry;
  return *r;
}

std::size_t cell_count() noexcept {
  return static_cast<std::size_t>(g_buckets.load(std::memory_order_relaxed)) *
         kHeatCauseCount;
}

HeatSlab& heat_slab() {
  thread_local HeatSlab slab;
  if (slab.cells.empty()) {
    HeatRegistry& r = heat_reg();
    std::lock_guard lk(r.mu);
    slab.cells.assign(cell_count(), 0);
    if (std::find(r.slabs.begin(), r.slabs.end(), &slab) == r.slabs.end())
      r.slabs.push_back(&slab);
  }
  return slab;
}

HeatSlab::~HeatSlab() {
  HeatRegistry& r = heat_reg();
  std::lock_guard lk(r.mu);
  if (r.retired.size() < cells.size()) r.retired.resize(cells.size(), 0);
  for (std::size_t i = 0; i < cells.size(); ++i) r.retired[i] += cells[i];
  std::erase(r.slabs, this);
}

// Caller holds r.mu.  Sums every live slab plus retired into a bucket-major
// vector sized to the current table.
std::vector<std::uint64_t> aggregate_locked(HeatRegistry& r) {
  std::vector<std::uint64_t> sum(cell_count(), 0);
  for (std::size_t i = 0; i < sum.size() && i < r.retired.size(); ++i)
    sum[i] = r.retired[i];
  for (const HeatSlab* s : r.slabs)
    for (std::size_t i = 0; i < sum.size() && i < s->cells.size(); ++i)
      sum[i] += detail::cell_load(s->cells[i]);
  return sum;
}

std::uint64_t bucket_score(const std::uint64_t* c) noexcept {
  // Contention score: every cause except kOp.
  return c[static_cast<int>(HeatCause::kConflict)] +
         c[static_cast<int>(HeatCause::kCapacity)] +
         c[static_cast<int>(HeatCause::kOther)] +
         c[static_cast<int>(HeatCause::kFallback)] +
         c[static_cast<int>(HeatCause::kLockWaitTimeout)] +
         c[static_cast<int>(HeatCause::kLockWait)];
}

// Caller holds r.mu.
void decay_locked(HeatRegistry& r, double factor) {
  auto scale = [factor](std::uint64_t& cell) {
    const std::uint64_t v = detail::cell_load(cell);
    if (v)
      detail::cell_store(
          cell, static_cast<std::uint64_t>(static_cast<double>(v) * factor));
  };
  for (HeatSlab* s : r.slabs)
    for (std::uint64_t& c : s->cells) scale(c);
  for (std::uint64_t& c : r.retired) scale(c);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  out += buf;
}

}  // namespace

namespace detail {

std::atomic<bool> g_heat_enabled{false};
thread_local HeatTls t_heat{kHeatNoBucket};

void heat_add(std::uint32_t bucket, HeatCause c) noexcept {
  HeatSlab& s = heat_slab();
  const std::size_t idx =
      static_cast<std::size_t>(bucket) * kHeatCauseCount +
      static_cast<std::size_t>(c);
  // A slab sized under an older config can briefly see out-of-range buckets;
  // dropping those few events beats resizing on the hot path.
  if (idx < s.cells.size()) detail::cell_add(s.cells[idx], 1);
}

void heat_set_target(std::uint64_t key) noexcept {
  const std::uint32_t b = heatmap_bucket_of(key);
  t_heat.bucket = b;
  heat_add(b, HeatCause::kOp);
}

void heat_set_leaf(std::uint64_t leaf_off) noexcept {
  if (g_by_leaf.load(std::memory_order_relaxed))
    t_heat.bucket = heatmap_bucket_of_leaf(leaf_off);
}

}  // namespace detail

const char* to_string(HeatCause c) noexcept {
  switch (c) {
    case HeatCause::kConflict: return "aborts_conflict";
    case HeatCause::kCapacity: return "aborts_capacity";
    case HeatCause::kOther: return "aborts_other";
    case HeatCause::kFallback: return "fallbacks";
    case HeatCause::kLockWaitTimeout: return "lock_wait_timeouts";
    case HeatCause::kLockWait: return "lock_waits";
    case HeatCause::kOp: return "ops";
  }
  return "?";
}

bool heatmap_valid_buckets(std::uint64_t n) noexcept {
  return n >= kHeatmapMinBuckets && n <= kHeatmapMaxBuckets &&
         (n & (n - 1)) == 0;
}

void set_heatmap_enabled(bool on) noexcept {
  detail::g_heat_enabled.store(on, std::memory_order_relaxed);
}

bool heatmap_configure(const HeatmapConfig& cfg) {
  if (!heatmap_valid_buckets(cfg.buckets)) return false;
  HeatRegistry& r = heat_reg();
  std::lock_guard lk(r.mu);
  g_buckets.store(cfg.buckets, std::memory_order_relaxed);
  g_shift.store(shift_for(cfg.key_space, cfg.buckets),
                std::memory_order_relaxed);
  g_by_leaf.store(cfg.by_leaf, std::memory_order_relaxed);
  g_key_space.store(cfg.key_space, std::memory_order_relaxed);
  g_half_life_s.store(cfg.decay_half_life_s, std::memory_order_relaxed);
  r.retired.assign(cell_count(), 0);
  for (HeatSlab* s : r.slabs) s->cells.assign(cell_count(), 0);
  r.samples.clear();
  r.last_tick_ns = 0;
  return true;
}

HeatmapConfig heatmap_config() {
  HeatmapConfig cfg;
  cfg.buckets = g_buckets.load(std::memory_order_relaxed);
  cfg.by_leaf = g_by_leaf.load(std::memory_order_relaxed);
  cfg.key_space = g_key_space.load(std::memory_order_relaxed);
  cfg.decay_half_life_s = g_half_life_s.load(std::memory_order_relaxed);
  return cfg;
}

std::uint32_t heatmap_bucket_of(std::uint64_t key) noexcept {
  const std::uint32_t shift = g_shift.load(std::memory_order_relaxed);
  const std::uint32_t mask = g_buckets.load(std::memory_order_relaxed) - 1;
  return static_cast<std::uint32_t>(key >> shift) & mask;
}

std::uint32_t heatmap_bucket_of_leaf(std::uint64_t leaf_off) noexcept {
  const std::uint32_t mask = g_buckets.load(std::memory_order_relaxed) - 1;
  return static_cast<std::uint32_t>(heat_mix(leaf_off)) & mask;
}

void heatmap_decay(double factor) {
  if (factor < 0.0) factor = 0.0;
  if (factor >= 1.0) return;
  HeatRegistry& r = heat_reg();
  std::lock_guard lk(r.mu);
  decay_locked(r, factor);
}

void heatmap_tick(std::uint64_t now_ns) {
  if (!heatmap_enabled()) return;
  HeatRegistry& r = heat_reg();
  std::lock_guard lk(r.mu);
  const double hl = g_half_life_s.load(std::memory_order_relaxed);
  if (hl > 0.0 && r.last_tick_ns != 0 && now_ns > r.last_tick_ns) {
    const double dt_s =
        static_cast<double>(now_ns - r.last_tick_ns) / 1e9;
    decay_locked(r, std::exp2(-dt_s / hl));
  }
  r.last_tick_ns = now_ns;
  const std::uint32_t buckets = g_buckets.load(std::memory_order_relaxed);
  if (buckets > kMaxTrackBuckets) return;
  const std::vector<std::uint64_t> sum = aggregate_locked(r);
  TrackSample ts;
  ts.ts_ns = now_ns;
  ts.scores.resize(buckets, 0);
  for (std::uint32_t b = 0; b < buckets; ++b)
    ts.scores[b] = bucket_score(&sum[static_cast<std::size_t>(b) *
                                     kHeatCauseCount]);
  r.samples.push_back(std::move(ts));
  if (r.samples.size() > kMaxTrackSamples) r.samples.pop_front();
}

void heatmap_reset() {
  HeatRegistry& r = heat_reg();
  std::lock_guard lk(r.mu);
  r.retired.assign(cell_count(), 0);
  for (HeatSlab* s : r.slabs) s->cells.assign(cell_count(), 0);
  r.samples.clear();
  r.last_tick_ns = 0;
}

HeatmapSnapshot heatmap_snapshot() {
  HeatmapSnapshot out;
  out.cfg = heatmap_config();
  HeatRegistry& r = heat_reg();
  std::lock_guard lk(r.mu);
  const std::vector<std::uint64_t> sum = aggregate_locked(r);
  const std::uint32_t buckets = g_buckets.load(std::memory_order_relaxed);
  const std::uint32_t shift = g_shift.load(std::memory_order_relaxed);
  const bool by_leaf = g_by_leaf.load(std::memory_order_relaxed);
  for (std::uint32_t b = 0; b < buckets; ++b) {
    const std::uint64_t* c = &sum[static_cast<std::size_t>(b) *
                                  kHeatCauseCount];
    bool any = false;
    for (int i = 0; i < kHeatCauseCount; ++i) any |= c[i] != 0;
    if (!any) continue;
    HeatBucket hb;
    hb.id = b;
    if (!by_leaf && shift < 64) {
      hb.lo = static_cast<std::uint64_t>(b) << shift;
      hb.hi = hb.lo + ((1ull << shift) - 1);
    }
    for (int i = 0; i < kHeatCauseCount; ++i) {
      hb.counts[i] = c[i];
      out.totals[i] += c[i];
    }
    hb.score = bucket_score(c);
    out.buckets.push_back(hb);
  }
  std::sort(out.buckets.begin(), out.buckets.end(),
            [](const HeatBucket& a, const HeatBucket& b) {
              if (a.score != b.score) return a.score > b.score;
              const auto ops = static_cast<int>(HeatCause::kOp);
              if (a.counts[ops] != b.counts[ops])
                return a.counts[ops] > b.counts[ops];
              return a.id < b.id;
            });
  return out;
}

std::string heatmap_json() {
  if (!heatmap_enabled()) return {};
  const HeatmapSnapshot snap = heatmap_snapshot();
  std::string out;
  out += "{\n    \"buckets\": ";
  append_u64(out, snap.cfg.buckets);
  out += ",\n    \"mode\": \"";
  out += snap.cfg.by_leaf ? "leaf" : "key";
  out += "\",\n    \"key_space\": ";
  append_u64(out, snap.cfg.key_space);
  out += ",\n    \"decay_half_life_s\": ";
  append_double(out, snap.cfg.decay_half_life_s);
  out += ",\n    \"events\": {";
  for (int i = 0; i < kHeatCauseCount; ++i) {
    if (i) out += ",";
    out += "\n      \"";
    out += to_string(static_cast<HeatCause>(i));
    out += "\": ";
    append_u64(out, snap.totals[i]);
  }
  out += "\n    },\n    \"top\": [";
  constexpr std::size_t kTopK = 32;
  const std::size_t n = std::min(kTopK, snap.buckets.size());
  for (std::size_t i = 0; i < n; ++i) {
    const HeatBucket& hb = snap.buckets[i];
    if (i) out += ",";
    out += "\n      {\"bucket\": ";
    append_u64(out, hb.id);
    if (!snap.cfg.by_leaf) {
      out += ", \"lo\": ";
      append_u64(out, hb.lo);
      out += ", \"hi\": ";
      append_u64(out, hb.hi);
    }
    out += ", \"score\": ";
    append_u64(out, hb.score);
    for (int c = 0; c < kHeatCauseCount; ++c) {
      out += ", \"";
      out += to_string(static_cast<HeatCause>(c));
      out += "\": ";
      append_u64(out, hb.counts[c]);
    }
    out += "}";
  }
  out += n ? "\n    ]\n  }" : "]\n  }";
  return out;
}

std::vector<HeatTrack> heatmap_tracks(std::size_t top_k) {
  std::vector<HeatTrack> out;
  if (!heatmap_enabled() || top_k == 0) return out;
  HeatRegistry& r = heat_reg();
  std::lock_guard lk(r.mu);
  if (r.samples.empty()) return out;
  const std::uint32_t buckets = g_buckets.load(std::memory_order_relaxed);
  // Rank buckets by their peak score over the retained samples so a bucket
  // that was hot early (then decayed) still gets a track.
  std::vector<std::uint64_t> peak(buckets, 0);
  for (const TrackSample& s : r.samples)
    for (std::uint32_t b = 0; b < s.scores.size() && b < buckets; ++b)
      peak[b] = std::max(peak[b], s.scores[b]);
  std::vector<std::uint32_t> ids(buckets);
  for (std::uint32_t b = 0; b < buckets; ++b) ids[b] = b;
  std::sort(ids.begin(), ids.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (peak[a] != peak[b]) return peak[a] > peak[b];
    return a < b;
  });
  for (std::uint32_t id : ids) {
    if (out.size() >= top_k || peak[id] == 0) break;
    HeatTrack tr;
    tr.bucket = id;
    tr.points.reserve(r.samples.size());
    for (const TrackSample& s : r.samples)
      tr.points.push_back(
          {s.ts_ns, id < s.scores.size() ? s.scores[id] : 0});
    out.push_back(std::move(tr));
  }
  return out;
}

}  // namespace rnt::obs

#else  // RNTREE_NO_HEATMAP

// The TU still defines the detail symbols the header declares, so a library
// built with the heatmap compiled out links cleanly against code that never
// calls them.
namespace rnt::obs::detail {
std::atomic<bool> g_heat_enabled{false};
thread_local HeatTls t_heat{rnt::obs::kHeatNoBucket};
void heat_set_target(std::uint64_t) noexcept {}
void heat_set_leaf(std::uint64_t) noexcept {}
void heat_add(std::uint32_t, HeatCause) noexcept {}
}  // namespace rnt::obs::detail

namespace rnt::obs {
const char* to_string(HeatCause) noexcept { return "?"; }
bool heatmap_valid_buckets(std::uint64_t n) noexcept {
  return n >= kHeatmapMinBuckets && n <= kHeatmapMaxBuckets &&
         (n & (n - 1)) == 0;
}
}  // namespace rnt::obs

#endif  // RNTREE_NO_HEATMAP
