// Contention heatmap — WHERE aborts, fallbacks, and lock-wait timeouts
// happen, not just how many.
//
// The registry counters (htm.*) say a run had N conflict aborts; ROADMAP
// items 3 (COW SMOs) and 5 (fine-grained fallback locking) need to know
// whether those N came from one hot leaf or were spread across the tree.
// This module attributes every abort (by cause), every fallback-lock
// acquisition, and every bounded-lock-wait timeout to a fixed-size table of
// key-range buckets:
//
//   * Bucketing is power-of-two range partitioning over the keyspace:
//     bucket = key >> (ceil_log2(key_space) - log2(buckets)).  key_space 0
//     means the full 64-bit space (real benches use mix64-scrambled keys
//     spanning it); the DES benches set key_space to their item count so the
//     same table resolves their dense [0, keys) space.
//   * Optional per-leaf-address mode (by_leaf): once the op has resolved its
//     leaf, the bucket is re-derived from the leaf's pool offset, so
//     attribution follows physical leaves across splits instead of key
//     ranges.
//   * The op's target is carried in TLS by an RAII HeatScope constructed at
//     the RNTree op entry points; the retry machine in htm/rtm.hpp calls
//     heatmap_record(cause) at each abort/fallback/timeout site and the TLS
//     target names the bucket.  The DES simulator attributes directly with
//     heatmap_record_at(key, cause).
//   * Storage is thread-sharded exactly like obs/metrics: per-thread plain
//     u64 cells (atomic_ref relaxed), a registry mutex only for aggregation,
//     and exited threads fold their cells into retired totals.
//   * Exponential decay: heatmap_decay(factor) scales every cell, so the
//     ranking tracks workload shifts; the sampler applies it on its tick
//     when decay_half_life_s is configured (0 = cumulative counts, the
//     default, which keeps ctest assertions deterministic).
//
// Cost contract (same as obs/phase.hpp): OFF by default — every
// instrumentation point is one relaxed atomic load + predicted branch.
// Defining RNTREE_NO_HEATMAP (CMake -DRNTREE_HEATMAP=OFF) compiles the whole
// mechanism down to nothing so the perf gate can prove the disabled cost is
// zero.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace rnt::obs {

/// What happened at the op's target location.  kOp is the op itself
/// (recorded by HeatScope so cold buckets are distinguishable from unvisited
/// ones); the others mirror the htm.* counter families.
enum class HeatCause : std::uint8_t {
  kConflict = 0,       ///< conflict abort
  kCapacity,           ///< capacity abort (fell back immediately)
  kOther,              ///< spurious / lock-subscription abort
  kFallback,           ///< fallback-lock acquisition
  kLockWaitTimeout,    ///< bounded lock-wait hit the starvation cap
  kLockWait,           ///< bounded lock-wait actually spun (lock was held)
  kOp,                 ///< an operation targeted this bucket
};
inline constexpr int kHeatCauseCount = 7;

const char* to_string(HeatCause c) noexcept;

inline constexpr std::uint32_t kHeatmapMinBuckets = 2;
inline constexpr std::uint32_t kHeatmapMaxBuckets = 4096;

struct HeatmapConfig {
  std::uint32_t buckets = 64;  ///< power of two in [min, max]
  bool by_leaf = false;        ///< bucket by leaf pool offset once resolved
  /// Keyspace extent for range partitioning; 0 = full 2^64.  Rounded up to
  /// a power of two.
  std::uint64_t key_space = 0;
  /// Half-life (seconds) for sampler-driven decay; 0 = no decay.
  double decay_half_life_s = 0.0;
};

/// True iff @p n is an acceptable bucket count (power of two in range).
bool heatmap_valid_buckets(std::uint64_t n) noexcept;

struct HeatBucket {
  std::uint32_t id = 0;
  std::uint64_t lo = 0;  ///< inclusive key-range lower bound (key mode)
  std::uint64_t hi = 0;  ///< inclusive key-range upper bound (key mode)
  std::uint64_t counts[kHeatCauseCount] = {};
  /// Contention score: everything except kOp.
  std::uint64_t score = 0;
};

struct HeatmapSnapshot {
  HeatmapConfig cfg;
  std::uint64_t totals[kHeatCauseCount] = {};
  /// Non-empty buckets, sorted by score desc, ties by ops desc then id.
  std::vector<HeatBucket> buckets;
};

/// One Perfetto counter-track sample series for a hot bucket.
struct HeatTrackPoint {
  std::uint64_t ts_ns = 0;
  std::uint64_t score = 0;
};
struct HeatTrack {
  std::uint32_t bucket = 0;
  std::vector<HeatTrackPoint> points;
};

namespace detail {
extern std::atomic<bool> g_heat_enabled;
// Constant-initialised POD TLS: the current op's resolved bucket
// (kHeatNoBucket when no HeatScope is armed).
struct HeatTls {
  std::uint32_t bucket;
};
extern thread_local HeatTls t_heat;
void heat_set_target(std::uint64_t key) noexcept;     // also counts kOp
void heat_set_leaf(std::uint64_t leaf_off) noexcept;  // by_leaf refinement
void heat_add(std::uint32_t bucket, HeatCause c) noexcept;
}  // namespace detail

inline constexpr std::uint32_t kHeatNoBucket = ~0u;

#if defined(RNTREE_NO_HEATMAP)

inline bool heatmap_enabled() noexcept { return false; }
inline void set_heatmap_enabled(bool) noexcept {}
inline bool heatmap_configure(const HeatmapConfig&) noexcept { return false; }
inline HeatmapConfig heatmap_config() noexcept { return {}; }
inline std::uint32_t heatmap_bucket_of(std::uint64_t) noexcept { return 0; }
inline std::uint32_t heatmap_bucket_of_leaf(std::uint64_t) noexcept { return 0; }
inline void heatmap_record(HeatCause) noexcept {}
inline void heatmap_record_at(std::uint64_t, HeatCause) noexcept {}
inline void heatmap_decay(double) noexcept {}
inline void heatmap_tick(std::uint64_t) noexcept {}
inline void heatmap_reset() noexcept {}
inline HeatmapSnapshot heatmap_snapshot() { return {}; }
inline std::string heatmap_json() { return {}; }
inline std::vector<HeatTrack> heatmap_tracks(std::size_t) { return {}; }

class HeatScope {
 public:
  explicit HeatScope(std::uint64_t) noexcept {}
  void leaf(std::uint64_t) noexcept {}
  HeatScope(const HeatScope&) = delete;
  HeatScope& operator=(const HeatScope&) = delete;
};

#else

inline bool heatmap_enabled() noexcept {
  return detail::g_heat_enabled.load(std::memory_order_relaxed);
}

/// Arm/disarm recording process-wide.  Enable only after configuring.
void set_heatmap_enabled(bool on) noexcept;

/// Install @p cfg and clear the table.  Returns false (and changes nothing)
/// on an invalid bucket count.  Callers must be quiescent: no concurrent
/// recorders (benches/tests configure before starting workers).
bool heatmap_configure(const HeatmapConfig& cfg);

HeatmapConfig heatmap_config();

/// Key-range bucket of @p key under the current config (exposed so tests
/// and benches can compute an expected bucket).
std::uint32_t heatmap_bucket_of(std::uint64_t key) noexcept;

/// Leaf-address bucket of a leaf pool offset (by_leaf mode).
std::uint32_t heatmap_bucket_of_leaf(std::uint64_t leaf_off) noexcept;

/// Record @p c against the current op's TLS target (no-op when disabled or
/// when no HeatScope is armed — an abort outside any tree op has no
/// location).  One relaxed load + branch when disabled.
inline void heatmap_record(HeatCause c) noexcept {
  if (!heatmap_enabled()) return;
  const std::uint32_t b = detail::t_heat.bucket;
  if (b != kHeatNoBucket) detail::heat_add(b, c);
}

/// Record @p c against @p key's range bucket directly (DES simulator path;
/// ignores by_leaf mode).
inline void heatmap_record_at(std::uint64_t key, HeatCause c) noexcept {
  if (!heatmap_enabled()) return;
  detail::heat_add(heatmap_bucket_of(key), c);
}

/// Scale every cell by @p factor in [0, 1) — the decay step.  Concurrent
/// owner-thread increments are not lost-update-safe (same caveat as
/// obs::reset_counter); the error is at most a few in-flight events.
void heatmap_decay(double factor);

/// Sampler hook: apply half-life decay for the elapsed interval (when
/// configured) and append a counter-track sample at @p now_ns.
void heatmap_tick(std::uint64_t now_ns);

/// Zero every cell and drop track samples; config and enablement stay.
void heatmap_reset();

HeatmapSnapshot heatmap_snapshot();

/// The "heatmap" JSON section ("" when disabled): config, per-cause event
/// totals, and the top hot buckets by score.
std::string heatmap_json();

/// Time series of the @p top_k hottest buckets (by peak score across the
/// retained samples) for Perfetto counter tracks.
std::vector<HeatTrack> heatmap_tracks(std::size_t top_k);

/// RAII op-target scope: constructed (with the op's key) at tree op entry
/// points; restores the previous target on destruction so nested ops and
/// post-op aborts never inherit a stale location.  Costs one relaxed load +
/// branch when recording is off.
class HeatScope {
 public:
  explicit HeatScope(std::uint64_t key) noexcept {
    if (!heatmap_enabled()) return;
    armed_ = true;
    prev_ = detail::t_heat.bucket;
    detail::heat_set_target(key);
  }
  ~HeatScope() {
    if (armed_) detail::t_heat.bucket = prev_;
  }
  /// Refine the target to the resolved leaf (by_leaf mode only).
  void leaf(std::uint64_t leaf_off) noexcept {
    if (armed_) detail::heat_set_leaf(leaf_off);
  }
  HeatScope(const HeatScope&) = delete;
  HeatScope& operator=(const HeatScope&) = delete;

 private:
  bool armed_ = false;
  std::uint32_t prev_ = kHeatNoBucket;
};

#endif  // RNTREE_NO_HEATMAP

}  // namespace rnt::obs
