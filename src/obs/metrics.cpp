#include "obs/metrics.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <mutex>
#include <stdexcept>

namespace rnt::obs {

namespace {

// Per-thread storage for Counter cells and Histogram shards.  Registered
// with the registry on first use; the destructor folds every value into the
// per-metric retired totals so exited threads keep counting.
struct Slab {
  std::vector<std::uint64_t> cells;                         // by counter id
  std::vector<std::unique_ptr<LatencyHistogram>> hists;     // by metric id
  ~Slab();
};

struct Metric {
  std::string name;
  Kind kind;
  std::uint64_t retired = 0;                    // folded from exited threads
  std::vector<std::uint64_t*> ext_cells;        // legacy-struct shards
  std::atomic<std::int64_t> gauge{0};
  LatencyHistogram retired_hist;                // folded histogram shards
};

struct Registry {
  std::mutex mu;
  std::deque<Metric> metrics;  // deque: references stay stable as it grows
  std::vector<Slab*> slabs;

  MetricId find_or_add(const char* name, Kind kind) {
    std::lock_guard lk(mu);
    for (MetricId i = 0; i < metrics.size(); ++i) {
      if (metrics[i].name == name) {
        if (metrics[i].kind != kind)
          throw std::logic_error("obs: metric re-registered with a different kind: " +
                                 metrics[i].name);
        return i;
      }
    }
    Metric& m = metrics.emplace_back();  // Metric is pinned (atomic member)
    m.name = name;
    m.kind = kind;
    return static_cast<MetricId>(metrics.size() - 1);
  }

  // Sum of one counter's shards; caller holds mu.
  std::uint64_t sum_locked(MetricId id) const {
    const Metric& m = metrics[id];
    std::uint64_t v = m.retired;
    for (const Slab* s : slabs)
      if (id < s->cells.size()) v += detail::cell_load(s->cells[id]);
    for (const std::uint64_t* c : m.ext_cells) v += detail::cell_load(*c);
    return v;
  }

  void reset_locked(MetricId id) {
    Metric& m = metrics[id];
    m.retired = 0;
    for (Slab* s : slabs)
      if (id < s->cells.size()) detail::cell_store(s->cells[id], 0);
    for (std::uint64_t* c : m.ext_cells) detail::cell_store(*c, 0);
  }
};

// Leaked singleton: threads may still be folding their slabs while static
// destructors run, so the registry must outlive everything.
Registry& reg() {
  static Registry* r = new Registry;
  return *r;
}

Slab& tls_slab() {
  thread_local Slab s;
  return s;
}

Slab::~Slab() {
  Registry& r = reg();
  std::lock_guard lk(r.mu);
  for (MetricId i = 0; i < cells.size(); ++i) r.metrics[i].retired += cells[i];
  for (MetricId i = 0; i < hists.size(); ++i)
    if (hists[i]) r.metrics[i].retired_hist.merge(*hists[i]);
  std::erase(r.slabs, this);
}

}  // namespace

namespace detail {

thread_local TlsCells t_cells{nullptr, 0};

std::uint64_t* slow_cell(MetricId id) {
  Registry& r = reg();
  Slab& s = tls_slab();
  std::lock_guard lk(r.mu);
  if (std::find(r.slabs.begin(), r.slabs.end(), &s) == r.slabs.end())
    r.slabs.push_back(&s);
  if (id >= s.cells.size()) s.cells.resize(r.metrics.size(), 0);
  t_cells = {s.cells.data(), static_cast<std::uint32_t>(s.cells.size())};
  return &s.cells[id];
}

}  // namespace detail

MetricId register_metric(const char* name, Kind kind) {
  return reg().find_or_add(name, kind);
}

std::uint64_t Counter::value() const { return counter_value(id_); }

Gauge::Gauge(const char* name) : id_(register_metric(name, Kind::kGauge)) {
  Registry& r = reg();
  std::lock_guard lk(r.mu);
  cell_ = &r.metrics[id_].gauge;
}
void Gauge::set(std::int64_t v) const noexcept {
  cell_->store(v, std::memory_order_relaxed);
}
void Gauge::add(std::int64_t d) const noexcept {
  cell_->fetch_add(d, std::memory_order_relaxed);
}
std::int64_t Gauge::value() const noexcept {
  return cell_->load(std::memory_order_relaxed);
}

void Histogram::record(std::uint64_t v) const noexcept {
  Registry& r = reg();
  Slab& s = tls_slab();
  if (id_ >= s.hists.size() || !s.hists[id_]) {
    std::lock_guard lk(r.mu);
    if (std::find(r.slabs.begin(), r.slabs.end(), &s) == r.slabs.end())
      r.slabs.push_back(&s);
    if (id_ >= s.hists.size()) s.hists.resize(id_ + 1);
    if (!s.hists[id_]) s.hists[id_] = std::make_unique<LatencyHistogram>();
  }
  s.hists[id_]->record(v);
}

LatencyHistogram Histogram::aggregate() const {
  Registry& r = reg();
  std::lock_guard lk(r.mu);
  LatencyHistogram out = r.metrics[id_].retired_hist;
  for (const Slab* s : r.slabs)
    if (id_ < s->hists.size() && s->hists[id_]) out.merge(*s->hists[id_]);
  return out;
}

void attach_cell(MetricId id, std::uint64_t* cell) {
  Registry& r = reg();
  std::lock_guard lk(r.mu);
  r.metrics[id].ext_cells.push_back(cell);
}

void detach_cell(MetricId id, std::uint64_t* cell) {
  Registry& r = reg();
  std::lock_guard lk(r.mu);
  Metric& m = r.metrics[id];
  m.retired += detail::cell_load(*cell);
  std::erase(m.ext_cells, cell);
}

std::uint64_t counter_value(MetricId id) {
  Registry& r = reg();
  std::lock_guard lk(r.mu);
  return r.sum_locked(id);
}

void reset_counter(MetricId id) {
  Registry& r = reg();
  std::lock_guard lk(r.mu);
  r.reset_locked(id);
}

std::uint64_t Snapshot::counter(std::string_view name) const noexcept {
  for (const auto& [n, v] : counters)
    if (n == name) return v;
  return 0;
}

Snapshot snapshot() {
  Registry& r = reg();
  std::lock_guard lk(r.mu);
  Snapshot out;
  for (MetricId i = 0; i < r.metrics.size(); ++i) {
    const Metric& m = r.metrics[i];
    switch (m.kind) {
      case Kind::kCounter:
        out.counters.emplace_back(m.name, r.sum_locked(i));
        break;
      case Kind::kGauge:
        out.gauges.emplace_back(m.name, m.gauge.load(std::memory_order_relaxed));
        break;
      case Kind::kHistogram: {
        LatencyHistogram h = m.retired_hist;
        for (const Slab* s : r.slabs)
          if (i < s->hists.size() && s->hists[i]) h.merge(*s->hists[i]);
        HistogramSummary sum;
        sum.count = h.count();
        sum.sum = h.sum();
        sum.min = h.min();
        sum.max = h.max();
        sum.mean = h.mean();
        sum.p50 = h.percentile(0.50);
        sum.p90 = h.percentile(0.90);
        sum.p99 = h.percentile(0.99);
        sum.p999 = h.percentile(0.999);
        sum.buckets = h.cumulative_buckets();
        out.histograms.emplace_back(m.name, sum);
        break;
      }
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  return out;
}

void reset_all() {
  Registry& r = reg();
  std::lock_guard lk(r.mu);
  for (MetricId i = 0; i < r.metrics.size(); ++i) {
    if (r.metrics[i].kind == Kind::kGauge) continue;
    r.reset_locked(i);
    r.metrics[i].retired_hist.reset();
  }
  for (Slab* s : r.slabs)
    for (auto& h : s->hists)
      if (h) h->reset();
}

}  // namespace rnt::obs
