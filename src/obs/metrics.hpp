// Process-wide metrics registry — the unified home for every counter the
// library used to scatter across modules (nvm::PersistStats, htm::HtmStats,
// epoch reclamation, pool allocation, per-tree structural counters).
//
// Three metric kinds:
//
//   * Counter   — monotonically increasing u64, sharded per thread: inc() is
//                 a relaxed load+add+store on a thread-local cell (no RMW, no
//                 lock prefix), so instrumenting a hot path costs a couple of
//                 nanoseconds.  Aggregation sums live thread cells plus the
//                 folded totals of exited threads.
//   * Gauge     — process-wide i64 set/add (atomic; for slowly-changing
//                 state like configured latency or pool high-water marks).
//   * Histogram — per-thread LatencyHistogram shards merged on demand.
//
// Handles (Counter/Gauge/Histogram) are cheap, copyable, and registered by
// name; registering the same name twice returns the same metric.  Intended
// use is one namespace-scope (or function-local static) handle per call
// site, so registration cost is paid once.
//
// Legacy bridge: modules that keep their own thread-local stat structs (the
// PersistStats/HtmStats diff-snapshot API is load-bearing for the benches)
// attach each struct field as an *external cell* of a registered counter.
// The registry then owns aggregation and exited-thread folding for them too,
// replacing the per-module registries they used to carry.
//
// snapshot() returns a consistent point-in-time view of everything; see
// obs/export.hpp for the JSON / Prometheus serialisations.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.hpp"

namespace rnt::obs {

using MetricId = std::uint32_t;

enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Aggregated histogram summary for snapshots/export.
struct HistogramSummary {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;  ///< exact total of recorded values (ns)
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
  /// Cumulative distribution over non-empty buckets: (upper bound ns,
  /// observations <= bound).  Prometheus `_bucket{le=...}` source.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
};

/// Point-in-time view of the whole registry (entries sorted by name).
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSummary>> histograms;

  /// Counter value by exact name; 0 if absent (export/test convenience).
  std::uint64_t counter(std::string_view name) const noexcept;
};

namespace detail {

/// Raced-but-well-defined accesses to plain u64 cells shared between one
/// incrementing owner thread and concurrent aggregators: atomic_ref with
/// relaxed order compiles to the same plain load/add/store on x86.
inline std::uint64_t cell_load(const std::uint64_t& c) noexcept {
  return std::atomic_ref<const std::uint64_t>(c).load(std::memory_order_relaxed);
}
inline void cell_store(std::uint64_t& c, std::uint64_t v) noexcept {
  std::atomic_ref<std::uint64_t>(c).store(v, std::memory_order_relaxed);
}
inline void cell_add(std::uint64_t& c, std::uint64_t n) noexcept {
  cell_store(c, cell_load(c) + n);
}

/// This thread's counter-cell window (constant-initialised POD: no TLS
/// guard check on the hot path).  Grown by slow_cell() on first touch of a
/// counter id past the window.
struct TlsCells {
  std::uint64_t* data;
  std::uint32_t size;
};
extern thread_local TlsCells t_cells;

std::uint64_t* slow_cell(MetricId id);  // registers/extends this thread's slab

}  // namespace detail

/// Register (or look up) a metric.  Thread-safe, idempotent by name; the
/// kind must match the prior registration.
MetricId register_metric(const char* name, Kind kind);

class Counter {
 public:
  explicit Counter(const char* name) : id_(register_metric(name, Kind::kCounter)) {}

  void inc(std::uint64_t n = 1) const noexcept {
    const detail::TlsCells v = detail::t_cells;
    std::uint64_t* c = id_ < v.size ? v.data + id_ : detail::slow_cell(id_);
    detail::cell_add(*c, n);
  }

  /// Aggregate over all threads, including exited ones.
  std::uint64_t value() const;

  MetricId id() const noexcept { return id_; }

 private:
  MetricId id_;
};

class Gauge {
 public:
  explicit Gauge(const char* name);
  void set(std::int64_t v) const noexcept;
  void add(std::int64_t d) const noexcept;
  std::int64_t value() const noexcept;
  MetricId id() const noexcept { return id_; }

 private:
  MetricId id_;
  std::atomic<std::int64_t>* cell_;  // stable storage owned by the registry
};

class Histogram {
 public:
  explicit Histogram(const char* name) : id_(register_metric(name, Kind::kHistogram)) {}
  /// Record into this thread's shard (no synchronisation).
  void record(std::uint64_t v) const noexcept;
  /// Merge every thread's shard (including exited threads') into one.
  LatencyHistogram aggregate() const;
  MetricId id() const noexcept { return id_; }

 private:
  MetricId id_;
};

// --- legacy-struct bridge -------------------------------------------------

/// Attach @p cell (a field of a thread-local stats struct owned by the
/// calling thread) as a shard of counter @p id.  The cell must stay valid
/// until detach_cell(); detaching folds its final value into the exited-
/// thread total so aggregation keeps counting it.
void attach_cell(MetricId id, std::uint64_t* cell);
void detach_cell(MetricId id, std::uint64_t* cell);

// --- aggregation ----------------------------------------------------------

/// Aggregated value of one counter (live shards + exited-thread total).
std::uint64_t counter_value(MetricId id);

/// Zero one counter everywhere: exited-thread total, every live thread
/// shard, every attached external cell.  Callers should quiesce writers for
/// an exact zero; concurrent increments are not lost-update-safe (the same
/// caveat the old per-module reset carried) but the operation itself is
/// well-defined and crash-free.
void reset_counter(MetricId id);

/// Snapshot every registered metric.
Snapshot snapshot();

/// Reset every counter and histogram (gauges keep their last set value).
void reset_all();

}  // namespace rnt::obs
