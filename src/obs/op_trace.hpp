// OpTrace — RAII per-operation flight recorder and phase profiler.
//
// Construct at the top of a tree operation; on destruction it records the
// op's latency, the persistent instructions, HTM attempts, abort causes and
// fallbacks it executed (diffed from the thread-local module counters), and
// its per-phase time share (diffed from the obs/phase.hpp tick
// accumulators).  Two independent consumers arm it:
//
//   * tracing (set_trace_capacity / --trace / --perfetto): one TraceEvent
//     into this thread's flight-recorder ring, phase + abort fields filled;
//   * phase timing (set_phase_timing / --sample-ms): the `op.completed` and
//     `op.<kind>` counters the time-series sampler differences, the
//     `lat.op.<kind>` latency histogram, and each nonzero phase share into
//     the `lat.phase.*` histograms.
//
// When both are off the constructor is two relaxed loads + a branch and the
// destructor one branch.
//
// An operation aborted by an exception (e.g. an injected nvm::CrashPoint)
// still records, with result kCrash — that trailing event is exactly what a
// post-mortem wants to see.
#pragma once

#include <exception>

#include "common/timing.hpp"
#include "htm/rtm.hpp"
#include "nvm/persist.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/trace.hpp"

namespace rnt::obs {

namespace detail {

struct OpMetrics {
  Counter completed{"op.completed"};
  Counter by_kind[10] = {
      Counter("op.find"),    Counter("op.insert"),  Counter("op.update"),
      Counter("op.upsert"),  Counter("op.remove"),  Counter("op.scan"),
      Counter("op.split"),   Counter("op.compact"), Counter("op.recover"),
      Counter("op.other"),
  };
  Histogram lat_by_kind[10] = {
      Histogram("lat.op.find"),    Histogram("lat.op.insert"),
      Histogram("lat.op.update"),  Histogram("lat.op.upsert"),
      Histogram("lat.op.remove"),  Histogram("lat.op.scan"),
      Histogram("lat.op.split"),   Histogram("lat.op.compact"),
      Histogram("lat.op.recover"), Histogram("lat.op.other"),
  };
};

inline OpMetrics& op_metrics() {
  static OpMetrics m;
  return m;
}

}  // namespace detail

class OpTrace {
 public:
  OpTrace(OpKind op, std::uint64_t key) noexcept {
    const bool tracing = trace_enabled();
    const bool profiling = phase_timing_enabled();
    if (!tracing && !profiling) return;
    armed_ = true;
    tracing_ = tracing;
    profiling_ = profiling;
    op_ = op;
    key_ = key;
    t0_ = now_ns();
    persists0_ = nvm::tls_stats().persist;
    htm0_ = htm::tls_htm_stats();
    phase0_ = phase_ticks_snapshot();
  }

  OpTrace(const OpTrace&) = delete;
  OpTrace& operator=(const OpTrace&) = delete;

  /// Pool offset of the leaf the op landed on.
  void leaf(std::uint64_t off) noexcept { leaf_off_ = off; }

  /// Outcome: true -> kOk, false -> kMiss.  Returns @p ok so call sites can
  /// write `return tr.finish(did_succeed);`.
  bool finish(bool ok) noexcept {
    result_ = ok ? OpResult::kOk : OpResult::kMiss;
    return ok;
  }
  void set_result(OpResult r) noexcept { result_ = r; }

  ~OpTrace() {
    if (!armed_) return;
    if (result_ == OpResult::kUnknown && std::uncaught_exceptions() > 0)
      result_ = OpResult::kCrash;
    const std::uint64_t ts = now_ns();
    const std::uint64_t latency = ts - t0_;
    const htm::HtmStats& h1 = htm::tls_htm_stats();
    const PhaseTicks p1 = phase_ticks_snapshot();
    std::uint64_t phase_ns[kPhaseCount];
    for (int i = 0; i < kPhaseCount; ++i)
      phase_ns[i] = phase_ticks_to_ns(p1.t[i] - phase0_.t[i]);

    if (profiling_) {
      detail::OpMetrics& m = detail::op_metrics();
      m.completed.inc();
      const auto k = static_cast<std::size_t>(op_);
      if (k < 10) {
        m.by_kind[k].inc();
        m.lat_by_kind[k].record(latency);
      }
      for (int i = 0; i < kPhaseCount; ++i)
        if (phase_ns[i] != 0)
          record_phase_ns(static_cast<Phase>(i), phase_ns[i]);
    }

    if (tracing_) {
      TraceEvent ev{};
      ev.ts_ns = ts;
      ev.key = key_;
      ev.leaf_off = leaf_off_;
      ev.latency_ns = latency;
      ev.htm_attempts = static_cast<std::uint32_t>(h1.attempts - htm0_.attempts);
      ev.persists =
          static_cast<std::uint32_t>(nvm::tls_stats().persist - persists0_);
      ev.op = static_cast<std::uint16_t>(op_);
      ev.result = static_cast<std::uint16_t>(result_);
      ev.aborts_conflict = static_cast<std::uint16_t>(h1.aborts_conflict -
                                                      htm0_.aborts_conflict);
      ev.aborts_capacity = static_cast<std::uint16_t>(h1.aborts_capacity -
                                                      htm0_.aborts_capacity);
      ev.aborts_other =
          static_cast<std::uint16_t>(h1.aborts_other - htm0_.aborts_other);
      ev.fallbacks = static_cast<std::uint16_t>(h1.fallbacks - htm0_.fallbacks);
      ev.phase_htm_ns = static_cast<std::uint32_t>(phase_ns[0]);
      ev.phase_lock_ns = static_cast<std::uint32_t>(phase_ns[1]);
      ev.phase_persist_ns = static_cast<std::uint32_t>(phase_ns[2]);
      ev.phase_smo_ns = static_cast<std::uint32_t>(phase_ns[3]);
      trace(ev);
    }
  }

 private:
  bool armed_ = false;
  bool tracing_ = false;
  bool profiling_ = false;
  OpKind op_ = OpKind::kOther;
  OpResult result_ = OpResult::kUnknown;
  std::uint64_t key_ = 0;
  std::uint64_t leaf_off_ = 0;
  std::uint64_t t0_ = 0;
  std::uint64_t persists0_ = 0;
  htm::HtmStats htm0_{};
  PhaseTicks phase0_{};
};

}  // namespace rnt::obs
