// OpTrace — RAII per-operation flight recorder.
//
// Construct at the top of a tree operation; on destruction it records one
// TraceEvent carrying the op's latency, the persistent instructions and HTM
// attempts it executed (diffed from the thread-local module counters), the
// key, and the leaf/result the op reported.  When tracing is disabled the
// constructor is one relaxed load + branch and the destructor is one branch.
//
// An operation aborted by an exception (e.g. an injected nvm::CrashPoint)
// still records, with result kCrash — that trailing event is exactly what a
// post-mortem wants to see.
#pragma once

#include <exception>

#include "common/timing.hpp"
#include "htm/rtm.hpp"
#include "nvm/persist.hpp"
#include "obs/trace.hpp"

namespace rnt::obs {

class OpTrace {
 public:
  OpTrace(OpKind op, std::uint64_t key) noexcept {
    if (!trace_enabled()) return;
    armed_ = true;
    op_ = op;
    key_ = key;
    t0_ = now_ns();
    persists0_ = nvm::tls_stats().persist;
    htm0_ = htm::tls_htm_stats().attempts;
  }

  OpTrace(const OpTrace&) = delete;
  OpTrace& operator=(const OpTrace&) = delete;

  /// Pool offset of the leaf the op landed on.
  void leaf(std::uint64_t off) noexcept { leaf_off_ = off; }

  /// Outcome: true -> kOk, false -> kMiss.  Returns @p ok so call sites can
  /// write `return tr.finish(did_succeed);`.
  bool finish(bool ok) noexcept {
    result_ = ok ? OpResult::kOk : OpResult::kMiss;
    return ok;
  }
  void set_result(OpResult r) noexcept { result_ = r; }

  ~OpTrace() {
    if (!armed_) return;
    if (result_ == OpResult::kUnknown && std::uncaught_exceptions() > 0)
      result_ = OpResult::kCrash;
    TraceEvent ev{};
    ev.ts_ns = now_ns();
    ev.key = key_;
    ev.leaf_off = leaf_off_;
    ev.latency_ns = ev.ts_ns - t0_;
    ev.htm_attempts =
        static_cast<std::uint32_t>(htm::tls_htm_stats().attempts - htm0_);
    ev.persists = static_cast<std::uint32_t>(nvm::tls_stats().persist - persists0_);
    ev.op = static_cast<std::uint16_t>(op_);
    ev.result = static_cast<std::uint16_t>(result_);
    trace(ev);
  }

 private:
  bool armed_ = false;
  OpKind op_ = OpKind::kOther;
  OpResult result_ = OpResult::kUnknown;
  std::uint64_t key_ = 0;
  std::uint64_t leaf_off_ = 0;
  std::uint64_t t0_ = 0;
  std::uint64_t persists0_ = 0;
  std::uint64_t htm0_ = 0;
};

}  // namespace rnt::obs
