#include "obs/phase.hpp"

#include "obs/metrics.hpp"

namespace rnt::obs {

namespace detail {
std::atomic<bool> g_phase_enabled{false};
thread_local PhaseTicks t_phase{};
}  // namespace detail

namespace {

// One log-bucketed registry histogram per phase, keyed by the Phase enum.
struct PhaseHists {
  Histogram h[kPhaseCount] = {
      Histogram("lat.phase.htm"),
      Histogram("lat.phase.lock_wait"),
      Histogram("lat.phase.persist"),
      Histogram("lat.phase.smo"),
  };
};

PhaseHists& phase_hists() {
  static PhaseHists p;
  return p;
}

}  // namespace

const char* to_string(Phase p) noexcept {
  switch (p) {
    case Phase::kHtm: return "htm";
    case Phase::kLockWait: return "lock_wait";
    case Phase::kPersist: return "persist";
    case Phase::kSmo: return "smo";
  }
  return "?";
}

void record_phase_ns(Phase p, std::uint64_t ns) {
  phase_hists().h[static_cast<int>(p)].record(ns);
}

std::uint64_t phase_ticks_to_ns(std::uint64_t ticks) noexcept {
  return static_cast<std::uint64_t>(static_cast<double>(ticks) / tsc_per_ns());
}

#if !defined(RNTREE_NO_PHASE_TIMING)
void set_phase_timing(bool on) noexcept {
  if (on) {
    (void)phase_hists();   // register lat.phase.* before the first op
    (void)tsc_per_ns();    // calibrate outside any timed region
  }
  detail::g_phase_enabled.store(on, std::memory_order_relaxed);
}
#endif

}  // namespace rnt::obs
