// Per-operation phase attribution — where inside an op the time went.
//
// The paper's cost model says persist ordering dominates transaction cost
// and fallback serialization caps scalability; neither is visible in an
// end-of-run latency histogram.  This module splits every tree operation
// into four wall-time phases, accumulated on thread-local cycle counters:
//
//   kHtm      — inside the HTM retry machine: attempts, aborts, conflict
//               backoff, bounded lock-subscription waits, and the committed
//               section itself (htm/rtm.hpp wraps both retry machines)
//   kLockWait — blocked acquiring a lock: the HTM fallback spinlock and the
//               leaf version-lock in RNTree's modify/remove paths
//   kPersist  — inside nvm::persist() compounds (flush + fence drain,
//               including the injected NVM write latency)
//   kSmo      — structure modifications (leaf split / shrink-compact),
//               INCLUSIVE of the persists they issue
//
// Phases deliberately overlap where the code does (an SMO's persists count
// in both kSmo and kPersist); they are attributions, not a partition.
//
// Cost model: recording is OFF by default.  Each instrumentation point pays
// one relaxed atomic load + predicted branch when disabled; enabling
// (obs::set_phase_timing(true), done by the bench flags --sample-ms /
// --perfetto) arms RDTSC reads around each phase.  Defining
// RNTREE_NO_PHASE_TIMING compiles the whole mechanism out to nothing so the
// perf gate can prove the disabled cost is zero.
//
// Per-op consumption: obs::OpTrace snapshots the thread-local tick
// accumulators at op start, diffs them at op end, and records each nonzero
// phase into the log-bucketed `lat.phase.*` registry histograms (exported
// with p50/p90/p99/p999 by --stats-json) and into the TraceEvent phase
// fields the Chrome-trace exporter renders as sub-slices.  The DES
// simulator attributes its virtual-time delays through record_phase_ns()
// directly — same histogram families, simulated clock.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/timing.hpp"

namespace rnt::obs {

enum class Phase : std::uint8_t { kHtm = 0, kLockWait, kPersist, kSmo };
inline constexpr int kPhaseCount = 4;

const char* to_string(Phase p) noexcept;

/// Per-thread phase tick totals (TSC units; convert via phase_ticks_to_ns).
struct PhaseTicks {
  std::uint64_t t[kPhaseCount];
};

namespace detail {
extern std::atomic<bool> g_phase_enabled;
// Constant-initialised POD TLS: no guard check on the hot path.
extern thread_local PhaseTicks t_phase;
}  // namespace detail

/// Record @p ns into the lat.phase.* histogram for @p p (registry-backed,
/// thread-sharded).  Used by OpTrace's per-op diff and by the DES simulator
/// for virtual-time attribution.
void record_phase_ns(Phase p, std::uint64_t ns);

/// TSC ticks -> nanoseconds via the calibrated ratio.
std::uint64_t phase_ticks_to_ns(std::uint64_t ticks) noexcept;

#if defined(RNTREE_NO_PHASE_TIMING)

inline bool phase_timing_enabled() noexcept { return false; }
inline void set_phase_timing(bool) noexcept {}
inline PhaseTicks phase_ticks_snapshot() noexcept { return {}; }

class PhaseTimer {
 public:
  explicit PhaseTimer(Phase) noexcept {}
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
};

#else

inline bool phase_timing_enabled() noexcept {
  return detail::g_phase_enabled.load(std::memory_order_relaxed);
}

/// Arm/disarm phase timing process-wide.  Enabling eagerly registers the
/// lat.phase.* histograms so they appear in exports even before the first
/// op completes.
void set_phase_timing(bool on) noexcept;

/// This thread's cumulative phase ticks (diff around an op for its share).
inline PhaseTicks phase_ticks_snapshot() noexcept { return detail::t_phase; }

/// RAII cycle timer: adds the scope's TSC ticks to this thread's
/// accumulator for one phase.  When timing is disabled the constructor is
/// one relaxed load + branch and the destructor one branch.
class PhaseTimer {
 public:
  explicit PhaseTimer(Phase p) noexcept {
    if (!phase_timing_enabled()) return;
    slot_ = &detail::t_phase.t[static_cast<int>(p)];
    t0_ = rdtsc();
  }
  ~PhaseTimer() {
    if (slot_ != nullptr) *slot_ += rdtsc() - t0_;
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  std::uint64_t* slot_ = nullptr;
  std::uint64_t t0_ = 0;
};

#endif  // RNTREE_NO_PHASE_TIMING

}  // namespace rnt::obs
