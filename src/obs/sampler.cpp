#include "obs/sampler.hpp"

#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <thread>

#include "common/timing.hpp"
#include "obs/heatmap.hpp"
#include "obs/metrics.hpp"

namespace rnt::obs {

namespace {

// The counters a sample reads.  Registered here (idempotently) so the
// sampler works even before the instrumented module has touched them.
struct SampledIds {
  MetricId ops = register_metric("op.completed", Kind::kCounter);
  MetricId aborts_conflict = register_metric("htm.aborts_conflict", Kind::kCounter);
  MetricId aborts_capacity = register_metric("htm.aborts_capacity", Kind::kCounter);
  MetricId aborts_other = register_metric("htm.aborts_other", Kind::kCounter);
  MetricId fallbacks = register_metric("htm.fallbacks", Kind::kCounter);
  MetricId persists = register_metric("nvm.persist", Kind::kCounter);
  MetricId pool_bytes = register_metric("pool.alloc_bytes", Kind::kCounter);
};

const SampledIds& ids() {
  static SampledIds s;
  return s;
}

struct Sample {
  std::uint64_t ts_ns = 0;
  std::uint64_t ops = 0;
  std::uint64_t aborts_conflict = 0;
  std::uint64_t aborts_capacity = 0;
  std::uint64_t aborts_other = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t persists = 0;
  std::uint64_t pool_bytes = 0;
};

Sample take_sample() {
  const SampledIds& id = ids();
  Sample s;
  s.ts_ns = now_ns();
  s.ops = counter_value(id.ops);
  s.aborts_conflict = counter_value(id.aborts_conflict);
  s.aborts_capacity = counter_value(id.aborts_capacity);
  s.aborts_other = counter_value(id.aborts_other);
  s.fallbacks = counter_value(id.fallbacks);
  s.persists = counter_value(id.persists);
  s.pool_bytes = counter_value(id.pool_bytes);
  return s;
}

}  // namespace

struct Sampler::Impl {
  mutable std::mutex mu;
  std::condition_variable cv;
  std::deque<Sample> ring;
  SamplerConfig cfg;
  std::uint64_t t0_ns = 0;
  std::uint64_t total = 0;
  bool running = false;
  std::thread thr;

  void push_locked(const Sample& s) {
    ring.push_back(s);
    ++total;
    while (ring.size() > cfg.capacity) ring.pop_front();
  }

  void run() {
    std::unique_lock lk(mu);
    while (running) {
      lk.unlock();
      const Sample s = take_sample();  // aggregates outside our own mutex
      heatmap_tick(s.ts_ns);  // decay + counter-track sample, same cadence
      lk.lock();
      if (!running) break;  // stop() raced: it takes the final sample itself
      push_locked(s);
      cv.wait_for(lk, std::chrono::milliseconds(cfg.interval_ms),
                  [&] { return !running; });
    }
  }
};

Sampler::Impl* Sampler::impl() const {
  // Lazily created and leaked: a sampler thread still running at process
  // exit must not race destruction of its own state (stop() is the clean
  // path; the destructor takes it for instances that go out of scope).
  if (impl_ == nullptr) impl_ = new Impl;
  return impl_;
}

Sampler::~Sampler() { stop(); }

void Sampler::start(SamplerConfig cfg) {
  Impl* i = impl();
  std::unique_lock lk(i->mu);
  if (i->running) return;
  if (i->thr.joinable()) i->thr.join();  // previous run fully retired
  if (cfg.interval_ms == 0) cfg.interval_ms = 1;
  if (cfg.capacity < 2) cfg.capacity = 2;
  i->cfg = cfg;
  i->ring.clear();
  i->total = 0;
  i->t0_ns = now_ns();
  i->running = true;
  lk.unlock();
  Sample first = take_sample();  // t=0 baseline, before workers start
  heatmap_tick(first.ts_ns);
  lk.lock();
  i->push_locked(first);
  i->thr = std::thread([i] { i->run(); });
}

void Sampler::stop() {
  Impl* i = impl();
  std::unique_lock lk(i->mu);
  if (!i->running) return;
  i->running = false;
  i->cv.notify_all();
  lk.unlock();
  i->thr.join();
  const Sample last = take_sample();  // final window covers the run's tail
  heatmap_tick(last.ts_ns);
  lk.lock();
  i->push_locked(last);
}

bool Sampler::running() const {
  Impl* i = impl();
  std::lock_guard lk(i->mu);
  return i->running;
}

std::uint32_t Sampler::interval_ms() const {
  Impl* i = impl();
  std::lock_guard lk(i->mu);
  return i->cfg.interval_ms;
}

std::size_t Sampler::sample_count() const {
  Impl* i = impl();
  std::lock_guard lk(i->mu);
  return i->ring.size();
}

std::uint64_t Sampler::total_samples() const {
  Impl* i = impl();
  std::lock_guard lk(i->mu);
  return i->total;
}

void Sampler::clear() {
  Impl* i = impl();
  std::lock_guard lk(i->mu);
  i->ring.clear();
  i->total = 0;
}

std::vector<RateWindow> Sampler::windows() const {
  Impl* i = impl();
  std::lock_guard lk(i->mu);
  std::vector<RateWindow> out;
  if (i->ring.size() < 2) return out;
  out.reserve(i->ring.size() - 1);
  for (std::size_t k = 1; k < i->ring.size(); ++k) {
    const Sample& a = i->ring[k - 1];
    const Sample& b = i->ring[k];
    RateWindow w;
    w.t_s = static_cast<double>(b.ts_ns - i->t0_ns) * 1e-9;
    w.dt_s = static_cast<double>(b.ts_ns - a.ts_ns) * 1e-9;
    if (w.dt_s <= 0) continue;  // clock glitch: skip, never divide by zero
    const double inv_dt = 1.0 / w.dt_s;
    w.ops = b.ops - a.ops;
    w.ops_per_s = static_cast<double>(w.ops) * inv_dt;
    w.abort_conflict_per_s =
        static_cast<double>(b.aborts_conflict - a.aborts_conflict) * inv_dt;
    w.abort_capacity_per_s =
        static_cast<double>(b.aborts_capacity - a.aborts_capacity) * inv_dt;
    w.abort_other_per_s =
        static_cast<double>(b.aborts_other - a.aborts_other) * inv_dt;
    w.fallback_per_s = static_cast<double>(b.fallbacks - a.fallbacks) * inv_dt;
    const std::uint64_t dpersists = b.persists - a.persists;
    w.persists_per_op =
        w.ops != 0 ? static_cast<double>(dpersists) / static_cast<double>(w.ops)
                   : 0.0;
    w.pool_bytes_per_s =
        static_cast<double>(b.pool_bytes - a.pool_bytes) * inv_dt;
    out.push_back(w);
  }
  return out;
}

Sampler& sampler() {
  static Sampler s;
  return s;
}

std::string timeseries_json() {
  Sampler& s = sampler();
  const std::vector<RateWindow> ws = s.windows();
  if (ws.empty()) return {};
  std::string out;
  out.reserve(256 + ws.size() * 192);
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "{\n    \"interval_ms\": %u,\n    \"samples_retained\": %zu,\n"
                "    \"samples_total\": %llu,\n    \"windows\": [",
                s.interval_ms(), s.sample_count(),
                static_cast<unsigned long long>(s.total_samples()));
  out += buf;
  for (std::size_t i = 0; i < ws.size(); ++i) {
    const RateWindow& w = ws[i];
    std::snprintf(
        buf, sizeof(buf),
        "%s\n      {\"t_s\": %.6f, \"dt_s\": %.6f, \"ops\": %llu, "
        "\"ops_per_s\": %.3f, \"abort_conflict_per_s\": %.3f, "
        "\"abort_capacity_per_s\": %.3f, \"abort_other_per_s\": %.3f, "
        "\"fallback_per_s\": %.3f, \"persists_per_op\": %.4f, "
        "\"pool_bytes_per_s\": %.3f}",
        i == 0 ? "" : ",", w.t_s, w.dt_s,
        static_cast<unsigned long long>(w.ops), w.ops_per_s,
        w.abort_conflict_per_s, w.abort_capacity_per_s, w.abort_other_per_s,
        w.fallback_per_s, w.persists_per_op, w.pool_bytes_per_s);
    out += buf;
  }
  out += "\n    ]\n  }";
  return out;
}

}  // namespace rnt::obs
