// Continuous time-series sampler over the metrics registry.
//
// A background thread snapshots a small, fixed set of registry counters
// every interval_ms into a bounded in-memory ring.  Consecutive samples are
// differenced into windowed rates — ops/s, abort rate by cause, fallback
// rate, persists/op, pool bytes/s — the quantities end-of-run totals cannot
// answer ("when did the abort storm happen?", "where did the p99 go?").
//
// The sampler is passive with respect to the workload: each sample is a
// handful of counter_value() aggregations (registry mutex held briefly);
// worker threads are never touched.  Thread exit is safe mid-sample: the
// registry folds an exiting thread's cells into retired totals under the
// same mutex the sampler aggregates under, so counts are never lost or
// double-seen.
//
// Lifecycle: start() spawns the thread (restarting resets the ring),
// stop() takes one final sample and joins.  Benches drive it via
// --sample-ms=N; the collected windows are exported as the `timeseries`
// section of the --stats-json document (see timeseries_json()).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rnt::obs {

struct SamplerConfig {
  std::uint32_t interval_ms = 100;
  /// Samples retained (ring; oldest evicted).  600 x 100 ms = one minute.
  std::size_t capacity = 600;
};

/// One differenced window between two consecutive samples.
struct RateWindow {
  double t_s = 0;    ///< window end, seconds since sampler start
  double dt_s = 0;   ///< window length (wall time between the samples)
  std::uint64_t ops = 0;  ///< op completions in the window
  double ops_per_s = 0;
  double abort_conflict_per_s = 0;
  double abort_capacity_per_s = 0;
  double abort_other_per_s = 0;
  double fallback_per_s = 0;
  double persists_per_op = 0;
  double pool_bytes_per_s = 0;
};

class Sampler {
 public:
  Sampler() = default;
  ~Sampler();
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Spawn the sampling thread.  Resets the ring; no-op if already running.
  void start(SamplerConfig cfg = {});

  /// Take a final sample, join the thread.  Idempotent.  The ring is kept
  /// so windows()/timeseries_json() read the finished run.
  void stop();

  bool running() const;
  std::uint32_t interval_ms() const;
  std::size_t sample_count() const;     ///< samples currently retained
  std::uint64_t total_samples() const;  ///< samples ever taken this run

  /// Windows between consecutive retained samples (sample_count()-1 of
  /// them).  Safe to call while running (snapshot under the ring mutex).
  std::vector<RateWindow> windows() const;

  /// Drop all retained samples (does not stop the thread).
  void clear();

 private:
  struct Impl;
  Impl* impl() const;
  mutable Impl* impl_ = nullptr;
};

/// Process-wide sampler instance (what the bench flags drive).
Sampler& sampler();

/// The `timeseries` JSON object for the process-wide sampler: interval,
/// sample counts, and the window array.  Empty string when fewer than two
/// samples exist (no window to report).
std::string timeseries_json();

}  // namespace rnt::obs
