#include "obs/struct_audit.hpp"

#include <algorithm>
#include <cstdio>
#include <mutex>

namespace rnt::obs {

namespace {

std::mutex g_section_mu;
std::string g_section;  // guarded by g_section_mu

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_ratio(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  out += buf;
}

}  // namespace

namespace detail {

void fill_percentiles(std::vector<double>& fills, double& avg, double& p50,
                      double& p99) {
  avg = p50 = p99 = 0.0;
  if (fills.empty()) return;
  double sum = 0.0;
  for (const double f : fills) sum += f;
  avg = sum / static_cast<double>(fills.size());
  std::sort(fills.begin(), fills.end());
  auto rank = [&](double q) {
    // Nearest-rank: smallest value with at least q of the mass at/below it.
    const std::size_t n = fills.size();
    std::size_t idx = static_cast<std::size_t>(q * static_cast<double>(n));
    if (idx >= n) idx = n - 1;
    return fills[idx];
  };
  p50 = rank(0.50);
  p99 = rank(0.99);
}

}  // namespace detail

std::string structure_json(const StructureReport& rep) {
  std::string out;
  out += "{\n    \"tree\": \"";
  out += rep.tree;
  out += "\",\n    \"height\": ";
  append_u64(out, static_cast<std::uint64_t>(rep.height));
  out += ",\n    \"inner_fanout\": ";
  append_u64(out, static_cast<std::uint64_t>(rep.inner_fanout));
  out += ",\n    \"slot_capacity\": ";
  append_u64(out, static_cast<std::uint64_t>(rep.slot_capacity));
  out += ",\n    \"log_capacity\": ";
  append_u64(out, static_cast<std::uint64_t>(rep.log_capacity));
  out += ",\n    \"levels\": [";
  for (std::size_t i = 0; i < rep.levels.size(); ++i) {
    const LevelStats& ls = rep.levels[i];
    if (i) out += ",";
    out += "\n      {\"level\": ";
    append_u64(out, static_cast<std::uint64_t>(ls.level));
    out += ", \"nodes\": ";
    append_u64(out, ls.nodes);
    out += ", \"fill_avg\": ";
    append_ratio(out, ls.fill_avg);
    out += ", \"fill_p50\": ";
    append_ratio(out, ls.fill_p50);
    out += ", \"fill_p99\": ";
    append_ratio(out, ls.fill_p99);
    out += "}";
  }
  out += rep.levels.empty() ? "]" : "\n    ]";
  out += ",\n    \"leaves\": {\n      \"count\": ";
  append_u64(out, rep.leaf.leaves);
  out += ",\n      \"live_entries\": ";
  append_u64(out, rep.leaf.live_entries);
  out += ",\n      \"log_used\": ";
  append_u64(out, rep.leaf.log_used);
  out += ",\n      \"fill_avg\": ";
  append_ratio(out, rep.leaf.fill_avg);
  out += ",\n      \"fill_p50\": ";
  append_ratio(out, rep.leaf.fill_p50);
  out += ",\n      \"fill_p99\": ";
  append_ratio(out, rep.leaf.fill_p99);
  out += ",\n      \"chain_occupancy\": ";
  append_ratio(out, rep.leaf.chain_occupancy);
  out += ",\n      \"log_occupancy\": ";
  append_ratio(out, rep.leaf.log_occupancy);
  out += "\n    }";
  if (rep.has_frag) {
    const nvm::PoolFragmentation& f = rep.frag;
    out += ",\n    \"fragmentation\": {\n      \"data_begin\": ";
    append_u64(out, f.data_begin);
    out += ",\n      \"bump\": ";
    append_u64(out, f.bump);
    out += ",\n      \"pool_size\": ";
    append_u64(out, f.pool_size);
    out += ",\n      \"allocated_bytes\": ";
    append_u64(out, f.allocated_bytes);
    out += ",\n      \"free_bytes\": ";
    append_u64(out, f.free_bytes);
    out += ",\n      \"tail_bytes\": ";
    append_u64(out, f.tail_bytes);
    out += ",\n      \"largest_free_run\": ";
    append_u64(out, f.largest_free_run);
    out += ",\n      \"free_blocks\": ";
    append_u64(out, f.free_blocks);
    out += ",\n      \"chunks_total\": ";
    append_u64(out, f.chunks.size());
    // Export only the most-fragmented chunks: a long run keeps a large,
    // mostly-empty map out of the JSON while the totals above stay exact.
    std::vector<const nvm::PoolFragmentation::Chunk*> worst;
    for (const auto& c : f.chunks)
      if (c.free_bytes > 0) worst.push_back(&c);
    std::sort(worst.begin(), worst.end(),
              [](const auto* a, const auto* b) {
                if (a->free_bytes != b->free_bytes)
                  return a->free_bytes > b->free_bytes;
                return a->off < b->off;
              });
    constexpr std::size_t kMaxChunks = 32;
    if (worst.size() > kMaxChunks) worst.resize(kMaxChunks);
    out += ",\n      \"chunks\": [";
    for (std::size_t i = 0; i < worst.size(); ++i) {
      const auto& c = *worst[i];
      if (i) out += ",";
      out += "\n        {\"off\": ";
      append_u64(out, c.off);
      out += ", \"live_bytes\": ";
      append_u64(out, c.live_bytes);
      out += ", \"free_bytes\": ";
      append_u64(out, c.free_bytes);
      out += ", \"largest_free_run\": ";
      append_u64(out, c.largest_free_run);
      out += "}";
    }
    out += worst.empty() ? "]" : "\n      ]";
    out += "\n    }";
  }
  out += "\n  }";
  return out;
}

void set_structure_section(std::string json) {
  std::lock_guard lk(g_section_mu);
  g_section = std::move(json);
}

std::string structure_section() {
  std::lock_guard lk(g_section_mu);
  return g_section;
}

}  // namespace rnt::obs
