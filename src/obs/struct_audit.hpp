// Online structural auditor — a read-only census of a live tree.
//
// ROADMAP item 3 (COW SMOs) needs SMO depth and inner-node shape; the
// capacity-abort story (transaction footprint ~ node size x fill) needs fill
// factors; the allocator's reuse policy needs a fragmentation picture.  This
// header turns any tree exposing the introspection surface
// (visit_inner/visit_leaves + capacity constants, see core/rntree.hpp) into
// a StructureReport:
//
//   * per inner level: node count, fill factor (separators/fanout) avg,
//     p50, p99;
//   * leaf level: leaf count, live entries, fill avg/p50/p99
//     (live/slot-capacity), log-area occupancy (allocated log entries /
//     capacity — how close leaves are to forced splits), chain occupancy
//     (live entries / total slot capacity across the chain);
//   * the NVM pool's fragmentation map (nvm::PmemPool::fragmentation()).
//
// The walk is epoch-safe (the tree pins a guard; inner nodes are COW) and
// pull-based: nothing here touches the op hot path, so unlike the heatmap it
// needs no compile-out gate — if you never call audit_tree, it costs
// nothing.  Counts are relaxed snapshots: approximate under concurrent
// writers, exact on a quiescent tree.
//
// Benches publish a rendered report via set_structure_section(); the
// exporter (export.cpp) then emits it as the "structure" JSON section.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nvm/pool.hpp"

namespace rnt::obs {

struct LevelStats {
  int level = 0;        ///< inner level (0 = directly over leaves)
  std::uint64_t nodes = 0;
  double fill_avg = 0.0;  ///< separators / fanout
  double fill_p50 = 0.0;
  double fill_p99 = 0.0;
};

struct LeafLevelStats {
  std::uint64_t leaves = 0;
  std::uint64_t live_entries = 0;
  std::uint64_t log_used = 0;     ///< allocated log entries across the chain
  double fill_avg = 0.0;          ///< live / slot capacity
  double fill_p50 = 0.0;
  double fill_p99 = 0.0;
  double chain_occupancy = 0.0;   ///< live_entries / (leaves * slot capacity)
  double log_occupancy = 0.0;     ///< log_used / (leaves * log capacity)
};

struct StructureReport {
  std::string tree;     ///< which tree was audited (bench label)
  int height = 0;       ///< inner levels (tree.height())
  int inner_fanout = 0;
  int slot_capacity = 0;
  int log_capacity = 0;
  std::vector<LevelStats> levels;  ///< sorted by level descending (root first)
  LeafLevelStats leaf;
  bool has_frag = false;
  nvm::PoolFragmentation frag;
};

namespace detail {
/// p50/p99 over raw fill ratios (nearest-rank); sorts @p fills in place.
void fill_percentiles(std::vector<double>& fills, double& avg, double& p50,
                      double& p99);
}  // namespace detail

/// Audit @p tree (any type with visit_inner/visit_leaves + the capacity
/// constants).  Safe concurrently with readers and writers.
template <typename Tree>
StructureReport audit_tree(const Tree& tree) {
  StructureReport rep;
  rep.height = tree.height();
  rep.inner_fanout = Tree::inner_fanout();
  rep.slot_capacity = Tree::slot_capacity();
  rep.log_capacity = Tree::log_capacity();

  // Inner levels: one fill sample per node, grouped by level.
  std::vector<std::vector<double>> by_level;
  tree.visit_inner([&](int level, int count) {
    if (level >= static_cast<int>(by_level.size()))
      by_level.resize(static_cast<std::size_t>(level) + 1);
    by_level[static_cast<std::size_t>(level)].push_back(
        static_cast<double>(count) / rep.inner_fanout);
  });
  for (int lvl = static_cast<int>(by_level.size()) - 1; lvl >= 0; --lvl) {
    std::vector<double>& fills = by_level[static_cast<std::size_t>(lvl)];
    if (fills.empty()) continue;
    LevelStats ls;
    ls.level = lvl;
    ls.nodes = fills.size();
    detail::fill_percentiles(fills, ls.fill_avg, ls.fill_p50, ls.fill_p99);
    rep.levels.push_back(ls);
  }

  // Leaf chain.
  std::vector<double> leaf_fills;
  tree.visit_leaves([&](int live, std::uint32_t nlogs) {
    ++rep.leaf.leaves;
    rep.leaf.live_entries += static_cast<std::uint64_t>(live);
    rep.leaf.log_used += nlogs;
    leaf_fills.push_back(static_cast<double>(live) / rep.slot_capacity);
  });
  detail::fill_percentiles(leaf_fills, rep.leaf.fill_avg, rep.leaf.fill_p50,
                           rep.leaf.fill_p99);
  if (rep.leaf.leaves > 0) {
    rep.leaf.chain_occupancy =
        static_cast<double>(rep.leaf.live_entries) /
        (static_cast<double>(rep.leaf.leaves) * rep.slot_capacity);
    rep.leaf.log_occupancy =
        static_cast<double>(rep.leaf.log_used) /
        (static_cast<double>(rep.leaf.leaves) * rep.log_capacity);
  }
  return rep;
}

/// Audit @p tree and attach @p pool's fragmentation map.
template <typename Tree>
StructureReport audit_tree(const Tree& tree, nvm::PmemPool& pool) {
  StructureReport rep = audit_tree(tree);
  rep.frag = pool.fragmentation();
  rep.has_frag = true;
  return rep;
}

/// Render @p rep as the "structure" JSON section body (object, no trailing
/// newline; indentation matches the exporter's section style).
std::string structure_json(const StructureReport& rep);

/// Publish a rendered structure section for the next --stats-json export
/// (benches call this after their run; "" clears it).  The exporter
/// consumes it via structure_section().
void set_structure_section(std::string json);
std::string structure_section();

}  // namespace rnt::obs
