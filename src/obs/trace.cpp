#include "obs/trace.hpp"

#include <atomic>
#include <memory>
#include <mutex>

namespace rnt::obs {

namespace {

struct Ring {
  std::vector<TraceEvent> buf;
  std::uint64_t head = 0;  // total events ever written by the owner
  std::uint64_t seq = 0;
  std::uint32_t tid = 0;
};

std::atomic<std::size_t> g_cap{0};
std::atomic<std::uint64_t> g_gen{1};  // bumped by clear_traces()
std::mutex g_mu;
std::uint32_t g_next_tid = 0;

// Owns every ring ever created (exited threads' rings are retained for
// post-mortems).  Leaked so late-exiting threads can't outlive it.
std::vector<std::unique_ptr<Ring>>& rings() {
  static auto* r = new std::vector<std::unique_ptr<Ring>>;
  return *r;
}

// POD thread-local: no guard check, no destructor.  A stale pointer after
// clear_traces() is never dereferenced because the generation mismatches.
struct TlsRing {
  Ring* ring;
  std::uint64_t gen;
};
thread_local TlsRing t_ring{nullptr, 0};

Ring* acquire_ring(std::size_t cap) {
  std::lock_guard lk(g_mu);
  auto r = std::make_unique<Ring>();
  r->buf.resize(cap);
  r->tid = g_next_tid++;
  Ring* raw = r.get();
  rings().push_back(std::move(r));
  t_ring = {raw, g_gen.load(std::memory_order_relaxed)};
  return raw;
}

void append_ring(const Ring& r, std::vector<TraceEvent>& out) {
  const std::uint64_t cap = r.buf.size();
  if (cap == 0) return;
  const std::uint64_t n = r.head < cap ? r.head : cap;
  for (std::uint64_t i = r.head - n; i < r.head; ++i)
    out.push_back(r.buf[i % cap]);
}

}  // namespace

const char* to_string(OpKind k) noexcept {
  switch (k) {
    case OpKind::kFind: return "find";
    case OpKind::kInsert: return "insert";
    case OpKind::kUpdate: return "update";
    case OpKind::kUpsert: return "upsert";
    case OpKind::kRemove: return "remove";
    case OpKind::kScan: return "scan";
    case OpKind::kSplit: return "split";
    case OpKind::kCompact: return "compact";
    case OpKind::kRecover: return "recover";
    case OpKind::kOther: return "other";
  }
  return "?";
}

const char* to_string(OpResult r) noexcept {
  switch (r) {
    case OpResult::kOk: return "ok";
    case OpResult::kMiss: return "miss";
    case OpResult::kCrash: return "crash";
    case OpResult::kUnknown: return "unknown";
  }
  return "?";
}

void set_trace_capacity(std::size_t events_per_thread) {
  g_cap.store(events_per_thread, std::memory_order_relaxed);
}

std::size_t trace_capacity() noexcept {
  return g_cap.load(std::memory_order_relaxed);
}

bool trace_enabled() noexcept { return trace_capacity() != 0; }

namespace {

void record_event(const TraceEvent& ev, bool keep_thread_id) noexcept {
  const std::size_t cap = g_cap.load(std::memory_order_relaxed);
  if (cap == 0) return;
  const TlsRing tr = t_ring;
  Ring* r = (tr.ring != nullptr && tr.gen == g_gen.load(std::memory_order_relaxed))
                ? tr.ring
                : acquire_ring(cap);
  TraceEvent e = ev;
  e.seq = r->seq++;
  if (!keep_thread_id) e.thread_id = r->tid;
  r->buf[r->head % r->buf.size()] = e;
  ++r->head;
}

}  // namespace

void trace(const TraceEvent& ev) noexcept { record_event(ev, false); }

void trace_virtual(const TraceEvent& ev) noexcept { record_event(ev, true); }

std::vector<TraceEvent> collect_traces() {
  std::lock_guard lk(g_mu);
  std::vector<TraceEvent> out;
  for (const auto& r : rings()) append_ring(*r, out);
  return out;
}

std::size_t dump_traces(std::FILE* out) {
  std::vector<TraceEvent> evs;
  std::size_t nrings = 0;
  {
    std::lock_guard lk(g_mu);
    for (const auto& r : rings()) append_ring(*r, evs);
    nrings = rings().size();
  }
  std::fprintf(out, "--- obs trace dump: %zu event(s), %zu ring(s) ---\n",
               evs.size(), nrings);
  for (const TraceEvent& e : evs) {
    std::fprintf(out,
                 "t%u #%llu %-7s %-7s key=%llu leaf=%llu htm=%u persists=%u "
                 "lat=%lluns abrt=%u/%u/%u fb=%u "
                 "phase=htm:%u,lock:%u,persist:%u,smo:%u\n",
                 e.thread_id, static_cast<unsigned long long>(e.seq),
                 to_string(static_cast<OpKind>(e.op)),
                 to_string(static_cast<OpResult>(e.result)),
                 static_cast<unsigned long long>(e.key),
                 static_cast<unsigned long long>(e.leaf_off), e.htm_attempts,
                 e.persists, static_cast<unsigned long long>(e.latency_ns),
                 e.aborts_conflict, e.aborts_capacity, e.aborts_other,
                 e.fallbacks, e.phase_htm_ns, e.phase_lock_ns,
                 e.phase_persist_ns, e.phase_smo_ns);
  }
  return evs.size();
}

void traces_json(std::string& out) {
  const std::vector<TraceEvent> evs = collect_traces();
  out += '[';
  char buf[512];
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const TraceEvent& e = evs[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"thread\":%u,\"seq\":%llu,\"op\":\"%s\",\"result\":\"%s\","
                  "\"key\":%llu,\"leaf\":%llu,\"htm_attempts\":%u,"
                  "\"persists\":%u,\"latency_ns\":%llu,"
                  "\"aborts_conflict\":%u,\"aborts_capacity\":%u,"
                  "\"aborts_other\":%u,\"fallbacks\":%u,"
                  "\"phase_htm_ns\":%u,\"phase_lock_ns\":%u,"
                  "\"phase_persist_ns\":%u,\"phase_smo_ns\":%u}",
                  i == 0 ? "" : ",", e.thread_id,
                  static_cast<unsigned long long>(e.seq),
                  to_string(static_cast<OpKind>(e.op)),
                  to_string(static_cast<OpResult>(e.result)),
                  static_cast<unsigned long long>(e.key),
                  static_cast<unsigned long long>(e.leaf_off), e.htm_attempts,
                  e.persists, static_cast<unsigned long long>(e.latency_ns),
                  e.aborts_conflict, e.aborts_capacity, e.aborts_other,
                  e.fallbacks, e.phase_htm_ns, e.phase_lock_ns,
                  e.phase_persist_ns, e.phase_smo_ns);
    out += buf;
  }
  out += ']';
}

void clear_traces() {
  std::lock_guard lk(g_mu);
  g_gen.fetch_add(1, std::memory_order_relaxed);
  rings().clear();
}

}  // namespace rnt::obs
