// Per-thread flight-recorder trace ring.
//
// A fixed-size, lock-free ring of 64-byte events per thread: op kind, key,
// leaf (pool offset), HTM attempts, persist count, latency, outcome.
// Recording is a single struct store into the owning thread's ring — no
// synchronisation, no allocation — and compiles to one predictable branch
// when tracing is disabled (the default).
//
// The ring is a post-mortem tool: the ShadowPool crash simulator dumps it
// when an injected crash fires with tracing enabled, and test assertions can
// dump_traces(stderr) on failure to see the last N operations every thread
// performed.  Readers are racy by design (dump while quiesced for an exact
// picture); rings of exited threads are retained so a post-mortem sees them.
//
// Enable with set_trace_capacity(n) before spawning workers (bench flag
// --trace=N does this), or clear_traces() + set_trace_capacity(n) to resize
// between phases.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace rnt::obs {

enum class OpKind : std::uint16_t {
  kFind = 0,
  kInsert,
  kUpdate,
  kUpsert,
  kRemove,
  kScan,
  kSplit,
  kCompact,
  kRecover,
  kOther,
};

enum class OpResult : std::uint16_t {
  kOk = 0,    ///< operation succeeded / key found
  kMiss,      ///< conditional op failed / key absent
  kCrash,     ///< aborted by an injected CrashPoint
  kUnknown,   ///< recorder destroyed before an outcome was set
};

const char* to_string(OpKind k) noexcept;
const char* to_string(OpResult r) noexcept;

struct TraceEvent {
  std::uint64_t seq;           ///< per-thread sequence number (monotonic)
  std::uint64_t ts_ns;         ///< clock at completion (wall, or sim time)
  std::uint64_t key;
  std::uint64_t leaf_off;      ///< pool offset of the leaf touched (0 = n/a)
  std::uint64_t latency_ns;
  std::uint32_t thread_id;     ///< pmem_thread_id-style small id
  std::uint32_t htm_attempts;  ///< HTM attempts during the op
  std::uint32_t persists;      ///< persistent instructions during the op
  std::uint16_t op;            ///< OpKind
  std::uint16_t result;        ///< OpResult
  // Abort-cause attribution during the op (diffed from HtmStats).
  std::uint16_t aborts_conflict;
  std::uint16_t aborts_capacity;
  std::uint16_t aborts_other;
  std::uint16_t fallbacks;
  // Phase attribution (obs/phase.hpp): where inside the op the time went.
  // u32 nanoseconds caps a phase at ~4.3 s — far beyond any tree op.
  std::uint32_t phase_htm_ns;
  std::uint32_t phase_lock_ns;
  std::uint32_t phase_persist_ns;
  std::uint32_t phase_smo_ns;
  std::uint8_t pad_[48];  // two cache lines per event
};
static_assert(sizeof(TraceEvent) == 128, "two cache lines per event");

/// Events retained per thread; 0 (default) disables recording entirely.
/// Applies to rings created after the call — set it before spawning workers.
void set_trace_capacity(std::size_t events_per_thread);
std::size_t trace_capacity() noexcept;
bool trace_enabled() noexcept;

/// Record one event into this thread's ring (no-op when disabled).
void trace(const TraceEvent& ev) noexcept;

/// Like trace(), but preserves the caller-supplied thread_id instead of
/// stamping the ring owner's.  Used by virtual-actor recorders (the DES
/// simulator's workers all run on one real thread but are distinct
/// timeline tracks).
void trace_virtual(const TraceEvent& ev) noexcept;

/// All retained events (live + exited threads), oldest first per thread.
/// Racy against concurrent recorders; quiesce for an exact picture.
std::vector<TraceEvent> collect_traces();

/// Human-readable dump of every ring; returns the number of events written.
std::size_t dump_traces(std::FILE* out);

/// Append the collected events as a JSON array to @p out (export layer).
void traces_json(std::string& out);

/// Drop every ring (live threads re-create theirs, picking up a new
/// capacity, on their next trace()).
void clear_traces();

}  // namespace rnt::obs
