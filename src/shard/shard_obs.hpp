// shard.* observability entry points (sharded_tree.cpp), split out of the
// ShardedTree template header so non-template users — the DES simulator's
// sharded panels — can tick the same counters without instantiating the tree.
#pragma once

#include <cstdint>

namespace rnt::shard::detail {

/// Throws std::invalid_argument unless @p shards is a power of two in
/// [1, PmemPool::kNumRoots].
void validate_shard_count(int shards);

void count_shard_op(int shard) noexcept;          ///< shard.<i>.ops
void count_cross_shard_scan() noexcept;           ///< shard.scan.cross
void count_batch_flush(std::uint64_t staged) noexcept;  ///< shard.batch.*
void set_shard_count_gauge(std::int64_t shards) noexcept;  ///< shard.count

}  // namespace rnt::shard::detail
