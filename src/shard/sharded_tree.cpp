#include "shard/shard_obs.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "nvm/pool.hpp"
#include "obs/metrics.hpp"

namespace rnt::shard::detail {

namespace {

// One ops counter per possible shard (pool root slot); names are static so
// the registry's const char* contract holds.
constexpr const char* kShardOpNames[nvm::PmemPool::kNumRoots] = {
    "shard.0.ops",  "shard.1.ops",  "shard.2.ops",  "shard.3.ops",
    "shard.4.ops",  "shard.5.ops",  "shard.6.ops",  "shard.7.ops",
    "shard.8.ops",  "shard.9.ops",  "shard.10.ops", "shard.11.ops",
    "shard.12.ops", "shard.13.ops", "shard.14.ops", "shard.15.ops",
};

struct ShardMetrics {
  std::vector<obs::Counter> ops;
  obs::Counter cross_scans{"shard.scan.cross"};
  obs::Counter batch_flushes{"shard.batch.flushes"};
  obs::Counter batch_staged{"shard.batch.staged"};
  obs::Gauge shard_count{"shard.count"};
  ShardMetrics() {
    ops.reserve(nvm::PmemPool::kNumRoots);
    for (const char* name : kShardOpNames) ops.emplace_back(name);
  }
};

ShardMetrics& metrics() {
  static ShardMetrics m;
  return m;
}

}  // namespace

void validate_shard_count(int shards) {
  if (shards < 1 || shards > nvm::PmemPool::kNumRoots ||
      (shards & (shards - 1)) != 0)
    throw std::invalid_argument(
        "sharded tree: shard count must be a power of two in [1, " +
        std::to_string(nvm::PmemPool::kNumRoots) + "], got " +
        std::to_string(shards));
}

void count_shard_op(int shard) noexcept {
  metrics().ops[static_cast<std::size_t>(shard)].inc();
}

void count_cross_shard_scan() noexcept { metrics().cross_scans.inc(); }

void count_batch_flush(std::uint64_t staged) noexcept {
  ShardMetrics& m = metrics();
  m.batch_flushes.inc();
  m.batch_staged.inc(staged);
}

void set_shard_count_gauge(std::int64_t shards) noexcept {
  metrics().shard_count.set(shards);
}

}  // namespace rnt::shard::detail
