// ShardedTree: a sharding facade over N independent RNTree instances.
//
// ROADMAP item 1 ("scale out"): partition the key space over N member trees
// that share one PmemPool but nothing else — each shard has its own pool root
// slot (shard i = root slot i), its own epoch domain, its own volatile inner
// tree, and its own per-leaf HTM fallback state, so abort storms and epoch
// stalls stay local to a shard (cf. Persistent HyTM's per-region fallback
// argument).  Two partition functions:
//
//   * kHash  — shard = mix64(key) & (N-1).  Uniform load regardless of key
//              skew; cross-shard scans need a k-way merge (chunked, below).
//   * kRange — shard = key / ceil(key_space/N) (or a top-bits shift when no
//              key_space is configured).  Shards are disjoint ordered ranges,
//              so a cross-shard scan is a plain concatenation.
//
// Group persistency (the ModifyBatch member class): K modifies share ONE
// trailing fence.  Every op still persists its KV entry eagerly (ordering:
// KV durable before its slot line is even flushed), but the slot-line flush —
// each op's atomic durable commit point — defers its fence to the batch
// barrier via nvm::persist_batchable/BatchScope.  A crash mid-batch therefore
// loses whole unacknowledged ops, never tears one; durability is only
// ACKNOWLEDGED at flush().  Fences per op drop from 2 to 1 + 1/K.
//
// Concurrency contract: all single-key ops are safe from any thread (they
// delegate to the member RNTree).  A ModifyBatch is single-threaded (the
// fence-deferral window is thread-local).  Cross-shard scans are atomic per
// leaf (RNTree's seqlock snapshots) but NOT atomic across shards — same
// guarantee RNTree::scan gives across leaves.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "core/rntree.hpp"
#include "nvm/persist.hpp"
#include "nvm/pool.hpp"
#include "shard/shard_obs.hpp"

namespace rnt::shard {

/// How keys map to shards.
enum class Partition : std::uint8_t { kHash, kRange };

template <typename Key = std::uint64_t, typename Value = std::uint64_t>
class ShardedTree {
  static_assert(std::is_unsigned_v<Key>,
                "partition functions need an unsigned integral key space");

 public:
  using Tree = core::RNTree<Key, Value>;
  using Leaf = typename Tree::Leaf;

  struct Options {
    /// Shard count: a power of two in [1, PmemPool::kNumRoots].
    int shards = 1;
    Partition partition = Partition::kHash;
    /// Forwarded to every member tree (the paper's RNTree+DS by default;
    /// single-slot mode widens the reader-visible mseq window to the batch
    /// barrier under group persistency — see DESIGN.md).
    bool dual_slot = true;
    /// kRange only: upper bound (exclusive) of the expected key space.  0
    /// means "whole 64-bit space" (top-bits shift).  Benchmarks that draw
    /// keys from [0, N) should set this or every key lands in shard 0.
    std::uint64_t key_space = 0;
    /// Forwarded to every member tree: each shard gets its OWN fallback
    /// stripe table of this many stripes (abort storms stay local to a
    /// shard AND to a stripe within it).  1 = per-shard global lock.
    unsigned fallback_stripes = htm::kDefaultFallbackStripes;
    /// Forwarded to every member tree (see RNTree::Options): recovery
    /// worker threads per shard.  Shards recover sequentially; each
    /// shard's leaf rebuild parallelises internally.
    int recovery_workers = 0;
  };

  /// Create a fresh sharded tree: shard i is a fresh RNTree rooted at pool
  /// root slot i.  Throws std::invalid_argument on a bad shard count.
  explicit ShardedTree(nvm::PmemPool& pool, Options opt = {})
      : pool_(pool), opt_(opt) {
    detail::validate_shard_count(opt_.shards);
    detail::set_shard_count_gauge(opt_.shards);
    shards_.reserve(static_cast<std::size_t>(opt_.shards));
    for (int s = 0; s < opt_.shards; ++s)
      shards_.push_back(std::make_unique<Tree>(pool_, member_options(s)));
  }

  /// Recover all shards from @p pool.  The shutdown state is sampled ONCE
  /// here (the first member ctor would otherwise mark the pool dirty and
  /// force every later member down the crash path).
  struct recover_t {};
  ShardedTree(recover_t, nvm::PmemPool& pool, Options opt = {})
      : pool_(pool), opt_(opt) {
    detail::validate_shard_count(opt_.shards);
    detail::set_shard_count_gauge(opt_.shards);
    const bool crashed = !pool_.clean_shutdown();
    pool_.mark_dirty();
    shards_.reserve(static_cast<std::size_t>(opt_.shards));
    for (int s = 0; s < opt_.shards; ++s) {
      if (pool_.root(s) == 0)
        throw std::runtime_error(
            "sharded tree: pool has no root for shard " + std::to_string(s) +
            " (was it created with fewer shards?)");
      shards_.push_back(std::make_unique<Tree>(
          typename Tree::recover_t{}, pool_, crashed, member_options(s)));
    }
  }

  ShardedTree(const ShardedTree&) = delete;
  ShardedTree& operator=(const ShardedTree&) = delete;

  /// Flush every shard's leaf headers, THEN mark the shared pool clean — a
  /// crash between two shards' header flushes must still read as dirty.
  void close() {
    for (auto& t : shards_) t->flush_headers();
    pool_.close_clean();
  }

  // ------------------------------------------------------------------
  // Single-key operations (delegated; same Status contract as RNTree)
  // ------------------------------------------------------------------

  common::Status insert(Key k, Value v) { return route(k).insert(k, v); }
  common::Status update(Key k, Value v) { return route(k).update(k, v); }
  common::Status upsert(Key k, Value v) { return route(k).upsert(k, v); }
  bool remove(Key k) { return route(k).remove(k); }
  std::optional<Value> find(Key k) const { return route(k).find(k); }

  // ------------------------------------------------------------------
  // Cross-shard ordered scan
  // ------------------------------------------------------------------

  /// Visit entries with key >= @p start in ascending key order until fn
  /// returns false.  Range partition: concatenates the (disjoint, ordered)
  /// shard ranges.  Hash partition: chunked k-way merge of per-shard ordered
  /// scans (each shard cursor refills kMergeChunk entries at a time and
  /// resumes from last_key + 1).
  template <typename Fn>
  std::size_t scan(Key start, Fn&& fn) const {
    if (shards_.size() == 1) return shards_[0]->scan(start, std::forward<Fn>(fn));
    detail::count_cross_shard_scan();
    if (opt_.partition == Partition::kRange) return scan_range(start, fn);
    return scan_merge(start, fn);
  }

  /// Collect up to @p n entries starting at @p start.
  std::size_t scan_n(Key start, std::size_t n,
                     std::vector<std::pair<Key, Value>>& out) const {
    out.clear();
    out.reserve(n);
    scan(start, [&](Key k, Value v) {
      out.emplace_back(k, v);
      return out.size() < n;
    });
    return out.size();
  }

  // ------------------------------------------------------------------
  // Group persistency
  // ------------------------------------------------------------------

  /// Stages up to @p batch_size modifies per trailing fence.  Ops are applied
  /// (and their Status returned) immediately — only the DURABILITY
  /// acknowledgement is deferred: an op is guaranteed durable once the batch
  /// it belongs to has flushed.  Single-threaded; flush() (or destruction)
  /// issues the trailing barrier.
  class ModifyBatch {
   public:
    explicit ModifyBatch(ShardedTree& tree, std::size_t batch_size = 8)
        : tree_(tree), cap_(batch_size == 0 ? 1 : batch_size) {}
    // noexcept(false): the flush barrier is a tracked NVM event — an
    // attached ShadowPool may fire a CrashPoint out of it (crash tests).
    ~ModifyBatch() noexcept(false) { flush(); }
    ModifyBatch(const ModifyBatch&) = delete;
    ModifyBatch& operator=(const ModifyBatch&) = delete;

    common::Status insert(Key k, Value v) {
      return apply([&] { return tree_.insert(k, v); });
    }
    common::Status update(Key k, Value v) {
      return apply([&] { return tree_.update(k, v); });
    }
    common::Status upsert(Key k, Value v) {
      return apply([&] { return tree_.upsert(k, v); });
    }
    bool remove(Key k) {
      return apply([&] { return tree_.remove(k); });
    }

    /// Issue the trailing batch barrier; after this returns every op applied
    /// since the previous flush is durable.
    void flush() {
      if (!scope_) return;
      const std::size_t staged = staged_;
      staged_ = 0;
      // Fence BEFORE destroying the scope: optional::reset() is noexcept, so
      // a barrier that throws (ShadowPool crash injection) must fire here,
      // where it can propagate.  The ~BatchScope barrier then finds nothing
      // pending and is a no-op.
      nvm::batch_barrier();
      if (staged != 0) detail::count_batch_flush(staged);
      scope_.reset();
    }

    /// Ops applied since the last flush (not yet durability-acknowledged).
    std::size_t staged() const noexcept { return staged_; }

   private:
    template <typename F>
    auto apply(F&& f) {
      if (!scope_) scope_.emplace();
      auto r = f();
      if (++staged_ >= cap_) flush();
      return r;
    }

    ShardedTree& tree_;
    std::size_t cap_;
    std::size_t staged_ = 0;
    std::optional<nvm::BatchScope> scope_;
  };

  // ------------------------------------------------------------------
  // Introspection
  // ------------------------------------------------------------------

  std::size_t size() const noexcept {
    std::size_t n = 0;
    for (const auto& t : shards_) n += t->size();
    return n;
  }

  int shard_count() const noexcept { return opt_.shards; }
  Partition partition() const noexcept { return opt_.partition; }

  /// Shard index owning @p k.
  int shard_of(Key k) const noexcept {
    if (opt_.shards == 1) return 0;
    const auto n = static_cast<std::uint64_t>(opt_.shards);
    if (opt_.partition == Partition::kHash)
      return static_cast<int>(mix64(static_cast<std::uint64_t>(k)) & (n - 1));
    if (opt_.key_space != 0) {
      const std::uint64_t width = (opt_.key_space + n - 1) / n;
      const std::uint64_t s = static_cast<std::uint64_t>(k) / width;
      return static_cast<int>(s < n ? s : n - 1);
    }
    // Top-bits shift: shard boundaries at multiples of 2^64 / N.
    const int lg = log2_pow2(opt_.shards);
    return static_cast<int>(static_cast<std::uint64_t>(k) >>
                            (64 - static_cast<unsigned>(lg)));
  }

  Tree& shard(int s) { return *shards_[static_cast<std::size_t>(s)]; }
  const Tree& shard(int s) const { return *shards_[static_cast<std::size_t>(s)]; }

  // Structural-auditor surface (obs/struct_audit.hpp): one report over the
  // union of every shard's inner tree and leaf chain.
  static constexpr int slot_capacity() noexcept { return Tree::slot_capacity(); }
  static constexpr int log_capacity() noexcept { return Tree::log_capacity(); }
  static constexpr int inner_fanout() noexcept { return Tree::inner_fanout(); }
  template <typename Fn>
  void visit_inner(Fn&& fn) const {
    for (const auto& t : shards_) t->visit_inner(fn);
  }
  template <typename Fn>
  void visit_leaves(Fn&& fn) const {
    for (const auto& t : shards_) t->visit_leaves(fn);
  }
  int height() const noexcept {
    int h = 0;
    for (const auto& t : shards_) h = h > t->height() ? h : t->height();
    return h;
  }

  /// Per-shard structural invariants plus partition containment (every key a
  /// shard holds maps back to that shard).  Single-threaded; throws
  /// std::logic_error on violation.
  void check_invariants() const {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      shards_[s]->check_invariants();
      shards_[s]->scan(std::numeric_limits<Key>::min(), [&](Key k, Value) {
        if (shard_of(k) != static_cast<int>(s))
          throw std::logic_error("sharded tree: key in wrong shard");
        return true;
      });
    }
  }

 private:
  static constexpr std::size_t kMergeChunk = 64;

  static int log2_pow2(int v) noexcept {
    int lg = 0;
    while ((1 << lg) < v) ++lg;
    return lg;
  }

  /// Member-tree options for shard @p s (explicit field assignment: the
  /// member Options struct grows fields over time and positional init
  /// silently stops forwarding the tail).
  typename Tree::Options member_options(int s) const {
    typename Tree::Options o;
    o.dual_slot = opt_.dual_slot;
    o.root_slot = s;
    o.fallback_stripes = opt_.fallback_stripes;
    o.recovery_workers = opt_.recovery_workers;
    return o;
  }

  Tree& route(Key k) {
    const int s = shard_of(k);
    detail::count_shard_op(s);
    return *shards_[static_cast<std::size_t>(s)];
  }
  const Tree& route(Key k) const {
    const int s = shard_of(k);
    detail::count_shard_op(s);
    return *shards_[static_cast<std::size_t>(s)];
  }

  template <typename Fn>
  std::size_t scan_range(Key start, Fn& fn) const {
    std::size_t visited = 0;
    bool stop = false;
    const int first = shard_of(start);
    for (int s = first; s < opt_.shards && !stop; ++s) {
      const Key from = s == first ? start : Key{0};
      visited += shards_[static_cast<std::size_t>(s)]->scan(from, [&](Key k, Value v) {
        const bool cont = fn(k, v);
        stop = !cont;
        return cont;
      });
    }
    return visited;
  }

  template <typename Fn>
  std::size_t scan_merge(Key start, Fn& fn) const {
    struct Cursor {
      std::vector<std::pair<Key, Value>> buf;
      std::size_t pos = 0;
      bool exhausted = false;  // nothing in the shard beyond buf
    };
    const std::size_t n = shards_.size();
    std::vector<Cursor> cur(n);
    auto refill = [&](std::size_t s, Key from) {
      Cursor& c = cur[s];
      c.pos = 0;
      const std::size_t got = shards_[s]->scan_n(from, kMergeChunk, c.buf);
      // A partial chunk proves the shard has nothing beyond buf *at refill
      // time*; like RNTree::scan across leaves, the cross-shard scan is not
      // atomic against concurrent inserts behind the cursor.
      if (got < kMergeChunk) c.exhausted = true;
    };
    for (std::size_t s = 0; s < n; ++s) refill(s, start);
    std::size_t visited = 0;
    for (;;) {
      std::size_t best = n;
      for (std::size_t s = 0; s < n; ++s) {
        Cursor& c = cur[s];
        if (c.pos == c.buf.size()) {
          if (c.exhausted) continue;
          const Key last = c.buf.back().first;  // full chunk => non-empty
          if (last == std::numeric_limits<Key>::max()) {
            c.exhausted = true;
            continue;
          }
          refill(s, last + 1);
          if (c.pos == c.buf.size()) continue;  // refill came back empty
        }
        if (best == n || c.buf[c.pos].first < cur[best].buf[cur[best].pos].first)
          best = s;
      }
      if (best == n) break;
      const auto& e = cur[best].buf[cur[best].pos++];
      ++visited;
      if (!fn(e.first, e.second)) break;
    }
    return visited;
  }

  nvm::PmemPool& pool_;
  Options opt_;
  std::vector<std::unique_ptr<Tree>> shards_;
};

}  // namespace rnt::shard
