#include "sim/models.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "obs/heatmap.hpp"
#include "shard/shard_obs.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "workload/zipfian.hpp"

namespace rnt::sim {

namespace {

// Real-time observability of the virtual-time simulation: the same counter
// families the live trees feed, so --sample-ms and --perfetto work on the
// DES benches too.  Counters tick in real time as the scheduler executes
// (giving the sampler live rates); latencies and phase shares are recorded
// in *virtual* nanoseconds (the modelled quantities).
struct SimMetrics {
  obs::Counter ops{"op.completed"};
  obs::Counter finds{"op.find"};
  obs::Counter updates{"op.update"};
  obs::Counter aborts_conflict{"htm.aborts_conflict"};
  obs::Counter aborts_capacity{"htm.aborts_capacity"};
  obs::Counter fallbacks{"htm.fallbacks"};
  obs::Counter smo_installs{"htm.smo.installs"};
  obs::Counter persists{"nvm.persist"};
  obs::Counter batch_persists{"nvm.batch_persist"};
  obs::Counter batch_fences{"nvm.batch_fence"};
};

SimMetrics& sim_metrics() {
  static SimMetrics m;
  return m;
}

// Distinct trace tracks per simulation run: virtual clocks restart at zero
// every run, so reusing thread ids would stack unrelated runs onto the same
// timeline.
std::uint32_t next_tid_base() {
  static std::atomic<std::uint32_t> run{0};
  return 1000 * (run.fetch_add(1, std::memory_order_relaxed) + 1);
}

/// Per-op virtual-time phase accumulator (indices follow obs::Phase).
struct SimPhases {
  SimTime t[obs::kPhaseCount] = {};
  void add(obs::Phase p, SimTime ns) { t[static_cast<int>(p)] += ns; }
};

/// Simulated leaf: the lock plus a virtual seqlock over the reader-visible
/// slot array.  pub_seq odd = a writer's publish window is open.
struct LeafSim {
  SimMutex lock;
  std::uint64_t pub_seq = 0;
  SimTime last_commit = 0;  ///< FPTree read validation
};

struct Ctx {
  const SimConfig& cfg;
  Scheduler& sched;
  ChannelPool channels;
  std::vector<LeafSim> leaves;
  /// FPTree's HTM fallback lock, one per shard (global when shards == 1):
  /// a conflict storm on shard i serializes only shard i's traversals.
  std::vector<SimMutex> fallbacks;
  /// RNTree models' striped publish fallback locks: fallback_stripes per
  /// shard (one per shard = the pre-stripe global-lock baseline).
  std::vector<SimMutex> stripes;
  std::uint32_t tid_base = 0;  ///< trace track base for this run's workers
  std::size_t inject_leaf = ~std::size_t{0};  ///< scripted-conflict target
  /// Hot leaf set for the storm: leaves with stripe_ref(leaf) == hot_ref
  /// under the FIXED kStormRef-way mapping (config-independent, so the
  /// striped and global runs classify the same ops as hot/cold).
  static constexpr std::size_t kStormRef = 64;
  std::size_t hot_ref = ~std::size_t{0};
  std::vector<std::size_t> hot_leaves;  ///< members of the hot leaf set
  // aggregated results
  std::uint64_t completed = 0;
  std::uint64_t find_retries = 0;
  std::uint64_t htm_fallbacks = 0;
  std::uint64_t smo_count = 0;
  std::uint64_t aborts_capacity = 0;
  std::uint64_t hot_ops = 0;
  std::uint64_t cold_ops = 0;
  LatencyHistogram read_latency;
  LatencyHistogram update_latency;

  Ctx(const SimConfig& c, Scheduler& s)
      : cfg(c),
        sched(s),
        channels(c.nvm_channels, c.costs.persist, c.costs.persist_occupancy),
        leaves(static_cast<std::size_t>(
            std::max<std::uint64_t>(1, c.keys / c.keys_per_leaf))),
        fallbacks(static_cast<std::size_t>(std::max(1, c.shards))),
        stripes(static_cast<std::size_t>(std::max(1, c.shards)) *
                static_cast<std::size_t>(std::max(1, c.fallback_stripes))) {
    if (c.inject.enabled)
      inject_leaf = static_cast<std::size_t>(mix64(c.inject.key ^ 0x9E37) %
                                             leaves.size());
    if (c.storm.enabled) {
      hot_ref = stripe_hash(static_cast<std::size_t>(
                    mix64(c.storm.key ^ 0x9E37) % leaves.size())) %
                kStormRef;
      for (std::size_t l = 0; l < leaves.size(); ++l)
        if (stripe_hash(l) % kStormRef == hot_ref) hot_leaves.push_back(l);
    }
  }

  /// Same hash for the configured stripe index and the reference mapping:
  /// at fallback_stripes == kStormRef the hot set IS exactly one stripe.
  static std::size_t stripe_hash(std::size_t leaf_idx) noexcept {
    return static_cast<std::size_t>(
        mix64(static_cast<std::uint64_t>(leaf_idx) ^ 0x5151));
  }
  SimMutex& stripe_of(std::size_t shard_idx, std::size_t leaf_idx) {
    const auto n = static_cast<std::size_t>(std::max(1, cfg.fallback_stripes));
    return stripes[shard_idx * n + stripe_hash(leaf_idx) % n];
  }
  bool storm_hot(std::size_t leaf_idx) const noexcept {
    return cfg.storm.enabled && stripe_hash(leaf_idx) % kStormRef == hot_ref;
  }
};

/// Key generator per worker: uniform or scrambled Zipfian over the key
/// space, mapped onto leaves ("We hash keys to distribute hottest keys to
/// different leaf nodes").
class KeyGen {
 public:
  KeyGen(const SimConfig& cfg, std::uint64_t seed)
      : uniform_(cfg.keys, seed), leaves_(std::max<std::uint64_t>(
                                      1, cfg.keys / cfg.keys_per_leaf)) {
    if (cfg.zipf_theta > 0.0)
      zipf_ = std::make_unique<workload::ScrambledZipfianGenerator>(
          cfg.keys, cfg.zipf_theta, seed);
  }

  struct Pick {
    std::uint64_t key;
    std::size_t leaf;
  };
  Pick next() {
    const std::uint64_t key = zipf_ ? zipf_->next() : uniform_.next();
    return {key, static_cast<std::size_t>(mix64(key ^ 0x9E37) % leaves_)};
  }

 private:
  workload::UniformGenerator uniform_;
  std::unique_ptr<workload::ScrambledZipfianGenerator> zipf_;
  std::uint64_t leaves_;
};

// ---------------------------------------------------------------------------
// Per-tree operation coroutines.  Each is a full op; the worker loop decides
// op type and leaf, then co_awaits the matching routine via a Task-less
// inline pattern (the logic lives in the worker coroutine to avoid nested
// coroutine frames).
// ---------------------------------------------------------------------------

Task worker(Ctx& ctx, int wid) {
  Scheduler& s = ctx.sched;
  const Costs& c = ctx.cfg.costs;
  const bool dual = ctx.cfg.model == TreeModel::kRNTreeDS;
  const bool fptree = ctx.cfg.model == TreeModel::kFPTree;
  Xoshiro256 rng(ctx.cfg.seed * 7919 + static_cast<std::uint64_t>(wid));
  KeyGen keys(ctx.cfg, ctx.cfg.seed * 104729 + static_cast<std::uint64_t>(wid));

  const bool open_loop = ctx.cfg.open_rate > 0.0;
  const SimTime interval =
      open_loop ? static_cast<SimTime>(1e9 / ctx.cfg.open_rate) : 0;
  SimTime next_arrival = 0;
  const int n_shards = std::max(1, ctx.cfg.shards);
  // Group persistency: each worker is one batching client; batch_pos counts
  // modifies since its last trailing barrier.
  const int batch = std::max(1, ctx.cfg.batch);
  int batch_pos = 0;

  while (s.now() < ctx.cfg.horizon_ns) {
    // --- arrival discipline ---
    SimTime arrival = s.now();
    if (open_loop) {
      if (next_arrival > s.now()) co_await Delay{s, next_arrival - s.now()};
      arrival = next_arrival;
      next_arrival += interval;
    }

    const bool is_update =
        rng.next_below(100) < static_cast<std::uint64_t>(ctx.cfg.update_pct);
    const KeyGen::Pick pick = keys.next();
    std::size_t leaf_idx = pick.leaf;
    // Storm traffic skew: hot_pct% of every worker's ops are redirected at
    // the hot leaf set; the uniform remainder is the cold traffic whose
    // survival the fallback ablation measures.
    if (ctx.cfg.storm.enabled && !ctx.hot_leaves.empty() &&
        rng.next_below(100) < ctx.cfg.storm.hot_pct)
      leaf_idx = ctx.hot_leaves[rng.next_below(ctx.hot_leaves.size())];
    LeafSim& leaf = ctx.leaves[leaf_idx];
    const std::size_t shard_idx = leaf_idx % static_cast<std::size_t>(n_shards);
    SimMutex& fallback = ctx.fallbacks[shard_idx];
    if (n_shards > 1) shard::detail::count_shard_op(static_cast<int>(shard_idx));
    SimMetrics& sm = sim_metrics();
    SimPhases ph;
    obs::heatmap_record_at(pick.key, obs::HeatCause::kOp);

    // Scripted conflict injection (heatmap validation): every op landing on
    // the configured hot leaf suffers deterministic conflict aborts and a
    // fallback before the op proper, attributed exactly like the real retry
    // machine's events.
    if (ctx.cfg.inject.enabled && leaf_idx == ctx.inject_leaf) {
      const SimTime inj0 = s.now();
      for (int a = 0; a < ctx.cfg.inject.aborts; ++a) {
        sm.aborts_conflict.inc();
        obs::heatmap_record_at(ctx.cfg.inject.key, obs::HeatCause::kConflict);
        co_await Delay{s, c.backoff};
      }
      ctx.htm_fallbacks++;
      sm.fallbacks.inc();
      obs::heatmap_record_at(ctx.cfg.inject.key, obs::HeatCause::kFallback);
      ph.add(obs::Phase::kHtm, s.now() - inj0);
    }

    if (!fptree) {
      // ----------------- RNTree / RNTree+DS -----------------
      if (is_update) {
        // Steps 1-3 outside the lock (S4.2): traverse, allocate, write,
        // flush the KV entry.  (The decoupled ablation moves the KV flush
        // inside the critical section instead.)
        co_await Delay{s, c.traverse + c.cas_alloc + c.kv_write};
        if (!ctx.cfg.flush_inside_lock) {
          const SimTime d = ctx.channels.persist_latency(s.now());
          ph.add(obs::Phase::kPersist, d);
          sm.persists.inc();
          co_await Delay{s, d};
        }
        // Step 4: short critical section.
        {
          const SimTime t0 = s.now();
          co_await leaf.lock.acquire(s);
          ph.add(obs::Phase::kLockWait, s.now() - t0);
        }
        if (ctx.cfg.flush_inside_lock) {
          const SimTime d = ctx.channels.persist_latency(s.now());
          ph.add(obs::Phase::kPersist, d);
          sm.persists.inc();
          co_await Delay{s, d};
        }
        co_await Delay{s, c.leaf_search + c.slot_update};
        // Striped fallback elision (bench_ablation_fallback): the slot
        // publish runs as an HTM transaction subscribed to this leaf's
        // stripe fallback lock — it cannot start while a fallback holder is
        // inside (the abort-and-spin subscription idiom).  With one stripe
        // this wait is what couples every publish to a storm elsewhere.
        SimMutex& stripe_mx = ctx.stripe_of(shard_idx, leaf_idx);
        bool stripe_held = false;
        if (stripe_mx.locked()) {
          // Lock-subscription abort: a subscribed publish cannot elide while
          // a fallback holder is inside, and under a sustained storm
          // retrying is hopeless — it joins the FIFO and publishes under
          // the lock itself.  This is the convoy that collapses the
          // single-global-lock baseline: one hot holder turns every
          // concurrent publish on the same stripe into a fallback holder.
          const SimTime tw = s.now();
          co_await stripe_mx.acquire(s);
          ph.add(obs::Phase::kLockWait, s.now() - tw);
          stripe_held = true;
          ctx.htm_fallbacks++;
          sm.fallbacks.inc();
          obs::heatmap_record_at(pick.key, obs::HeatCause::kFallback);
        }
        // Scripted capacity-abort storm: hot-set publishes capacity-abort
        // per attempt with storm.permille; after two aborts retrying is
        // hopeless and the publish escalates to the stripe fallback lock,
        // held across the flush (the serialization being measured).
        if (!stripe_held && ctx.storm_hot(leaf_idx)) {
          int aborts = 0;
          while (aborts < 2 &&
                 rng.next_below(1000) < ctx.cfg.storm.permille) {
            ++aborts;
            ctx.aborts_capacity++;
            sm.aborts_capacity.inc();
            obs::heatmap_record_at(pick.key, obs::HeatCause::kCapacity);
            co_await Delay{s, c.backoff};
          }
          if (aborts >= 2) {
            const SimTime tl = s.now();
            co_await stripe_mx.acquire(s);
            ph.add(obs::Phase::kLockWait, s.now() - tl);
            stripe_held = true;
            ctx.htm_fallbacks++;
            sm.fallbacks.inc();
            obs::heatmap_record_at(pick.key, obs::HeatCause::kFallback);
          }
        }
        // Group persistency (batch > 1): the slot flush defers its fence to
        // the batch barrier — it pays channel occupancy only (the clwb), and
        // every batch-th modify pays one full persist as the trailing
        // barrier.  Eager mode (batch == 1) is the paper's 2-fence profile.
        const bool barrier_now = batch > 1 && ++batch_pos >= batch;
        if (barrier_now) batch_pos = 0;
        if (dual) {
          // Slot flush does not block readers; only the transient copy does.
          if (batch > 1) {
            sm.batch_persists.inc();
            ph.add(obs::Phase::kPersist, c.persist_occupancy);
            co_await Delay{s, c.persist_occupancy};
            if (barrier_now) {
              const SimTime d = ctx.channels.persist_latency(s.now());
              ph.add(obs::Phase::kPersist, d);
              sm.batch_fences.inc();
              co_await Delay{s, d};
            }
          } else {
            const SimTime d = ctx.channels.persist_latency(s.now());
            ph.add(obs::Phase::kPersist, d);
            sm.persists.inc();
            co_await Delay{s, d};
          }
          leaf.pub_seq++;
          co_await Delay{s, c.slot_copy};
          leaf.pub_seq++;
        } else {
          // Readers see the window of the whole slot flush (and, under group
          // persistency, of the barrier when this op closes the batch —
          // single-slot durability windows widen to the batch boundary).
          leaf.pub_seq++;
          if (batch > 1) {
            sm.batch_persists.inc();
            ph.add(obs::Phase::kPersist, c.persist_occupancy);
            co_await Delay{s, c.persist_occupancy};
            if (barrier_now) {
              const SimTime d = ctx.channels.persist_latency(s.now());
              ph.add(obs::Phase::kPersist, d);
              sm.batch_fences.inc();
              co_await Delay{s, d};
            }
          } else {
            const SimTime d = ctx.channels.persist_latency(s.now());
            ph.add(obs::Phase::kPersist, d);
            sm.persists.inc();
            co_await Delay{s, d};
          }
          leaf.pub_seq++;
        }
        if (stripe_held) stripe_mx.release(s);
        if (rng.next_below(32) == 0) {  // amortised compaction
          const SimTime t0 = s.now();
          co_await Delay{s, c.compact};
          const SimTime d = ctx.channels.persist_latency(s.now());
          ph.add(obs::Phase::kPersist, d);
          sm.persists.inc();
          co_await Delay{s, d};
          ph.add(obs::Phase::kSmo, s.now() - t0);  // inclusive of its persist
        }
        // Inner-node SMO model (bench_ablation_smo): roughly every
        // keys_per_leaf-th modify splits its leaf and must install the new
        // separator into the (transient) inner structure.
        if (ctx.cfg.smo.enabled &&
            rng.next_below(std::max<std::uint64_t>(2, ctx.cfg.keys_per_leaf)) ==
                0) {
          const SimConfig::Smo& smo = ctx.cfg.smo;
          const SimTime t0 = s.now();
          ctx.smo_count++;
          if (smo.cow) {
            // RCU-HTM: build replacement out of place, then a one-line
            // validate+swap transaction.  Its write set never capacity-
            // aborts; only conflicts (another install touching the same
            // spine) can, and they grow with core count but stay cheap —
            // the retry is another short install, not a serialized rewrite.
            co_await Delay{s, smo.build_ns};
            const std::uint64_t conflict_pm = std::min<std::uint64_t>(
                400, 2 * static_cast<std::uint64_t>(ctx.cfg.threads));
            for (int attempts = 0;
                 attempts < 3 && rng.next_below(1000) < conflict_pm;
                 ++attempts) {
              sm.aborts_conflict.inc();
              co_await Delay{s, c.backoff + smo.install_ns};
            }
            co_await Delay{s, smo.install_ns};
            sm.smo_installs.inc();
          } else {
            // In-place rewrite: the whole inner path is the transaction's
            // write set, so a fixed (size-driven, contention-independent)
            // share of attempts capacity-aborts; retrying a capacity abort
            // is hopeless, so it escalates to the shard fallback lock and
            // serializes — the storm the paper measures at high cores.
            bool done = false;
            for (int attempts = 0; attempts < 2 && !done; ++attempts) {
              co_await Delay{s, smo.inplace_ns};
              if (rng.next_below(1000) >= smo.capacity_permille) {
                done = true;
              } else {
                ctx.aborts_capacity++;
                sm.aborts_capacity.inc();
                co_await Delay{s, c.backoff};
              }
            }
            if (!done) {
              const SimTime tl = s.now();
              co_await fallback.acquire(s);
              ph.add(obs::Phase::kLockWait, s.now() - tl);
              ctx.htm_fallbacks++;
              sm.fallbacks.inc();
              co_await Delay{s, smo.inplace_ns};
              fallback.release(s);
            }
          }
          ph.add(obs::Phase::kSmo, s.now() - t0);
        }
        leaf.last_commit = s.now();
        leaf.lock.release(s);
      } else {
        // find (Alg 4): wait-free traversal + seqlock-validated snapshot.
        co_await Delay{s, c.traverse};
        for (;;) {
          if ((leaf.pub_seq & 1) != 0) {
            ctx.find_retries++;
            co_await Delay{s, c.backoff};
            continue;
          }
          const std::uint64_t s0 = leaf.pub_seq;
          co_await Delay{s, c.read_snapshot};
          if (leaf.pub_seq != s0) {
            ctx.find_retries++;
            continue;
          }
          break;
        }
      }
    } else if (is_update) {
      // ----------------- FPTree update -----------------
      // Traversal runs as an HTM transaction; reading the leaf's lock word
      // while a writer holds it is a conflict, so updates to a hot leaf
      // also abort-and-retry from the root, and escalate to the global
      // fallback lock (held for the traversal) when the retry budget runs
      // out.  The explicit leaf lock is then taken and the WHOLE modify,
      // flushes included, runs inside it (S3.4's "selective concurrency").
      const SimTime loop0 = s.now();
      SimTime lock_wait = 0;
      for (int attempts = 0;;) {
        // Subscription: an attempt while the fallback lock is held aborts
        // at once; the implementation then spins until release before the
        // next try (so storms serialize everyone but do not self-amplify).
        while (fallback.locked()) co_await Delay{s, c.backoff};
        co_await Delay{s, c.traverse};
        if (!leaf.lock.locked() && !fallback.locked() &&
            rng.next_below(128) != 0)
          break;  // traversal committed
        sm.aborts_conflict.inc();
        obs::heatmap_record_at(pick.key, obs::HeatCause::kConflict);
        if (++attempts >= 3) {
          const SimTime tl = s.now();
          co_await fallback.acquire(s);
          lock_wait += s.now() - tl;
          ctx.htm_fallbacks++;
          sm.fallbacks.inc();
          obs::heatmap_record_at(pick.key, obs::HeatCause::kFallback);
          co_await Delay{s, c.traverse};
          fallback.release(s);
          break;
        }
        co_await Delay{s, c.backoff};
      }
      ph.add(obs::Phase::kHtm, s.now() - loop0 - lock_wait);
      ph.add(obs::Phase::kLockWait, lock_wait);
      {
        const SimTime t0 = s.now();
        co_await leaf.lock.acquire(s);
        ph.add(obs::Phase::kLockWait, s.now() - t0);
      }
      co_await Delay{s, c.fp_scan + c.kv_write};
      for (int flush = 0; flush < 3; ++flush) {  // KV, fp, bitmap
        const SimTime d = ctx.channels.persist_latency(s.now());
        ph.add(obs::Phase::kPersist, d);
        sm.persists.inc();
        co_await Delay{s, d};
      }
      leaf.last_commit = s.now();
      leaf.lock.release(s);
    } else {
      // ----------------- FPTree find -----------------
      // The whole find (traverse + leaf probe) is one HTM transaction; it
      // "will always abort the transaction and traverse from the root
      // again if the leaf is locked by another update" (S6.3.1).  Because
      // the leaf lock is held across flushes, consecutive retries keep
      // hitting the same locked leaf; after the retry budget the find
      // escalates to the GLOBAL fallback lock and, while holding it, must
      // still wait out the leaf writer — the serialization convoy that
      // caps FPTree's scalability under skew (Figs 8(b), 9, 10).
      //
      const SimTime loop0 = s.now();
      SimTime lock_wait = 0;
      for (int attempts = 0;;) {
        bool committed = false;
        while (fallback.locked()) co_await Delay{s, c.backoff};
        co_await Delay{s, c.traverse};
        const SimTime t0 = s.now();
        if (!leaf.lock.locked() && !fallback.locked() &&
            rng.next_below(128) != 0) {
          co_await Delay{s, c.fp_scan};
          committed = !leaf.lock.locked() && leaf.last_commit <= t0;
        }
        if (committed) break;
        ctx.find_retries++;
        sm.aborts_conflict.inc();
        obs::heatmap_record_at(pick.key, obs::HeatCause::kConflict);
        if (++attempts >= 3) {
          const SimTime tl = s.now();
          co_await fallback.acquire(s);
          lock_wait += s.now() - tl;
          ctx.htm_fallbacks++;
          sm.fallbacks.inc();
          obs::heatmap_record_at(pick.key, obs::HeatCause::kFallback);
          co_await Delay{s, c.traverse};
          const SimTime tw = s.now();
          while (leaf.lock.locked()) co_await Delay{s, c.backoff};
          lock_wait += s.now() - tw;  // convoy: waiting out the leaf writer
          co_await Delay{s, c.fp_scan};
          fallback.release(s);
          break;
        }
        co_await Delay{s, c.backoff};
      }
      ph.add(obs::Phase::kHtm, s.now() - loop0 - lock_wait);
      ph.add(obs::Phase::kLockWait, lock_wait);
    }

    // --- bookkeeping ---
    const SimTime latency = s.now() - arrival;
    if (is_update)
      ctx.update_latency.record(latency);
    else
      ctx.read_latency.record(latency);
    ctx.completed++;
    if (ctx.cfg.storm.enabled)
      (ctx.storm_hot(leaf_idx) ? ctx.hot_ops : ctx.cold_ops)++;
    sm.ops.inc();
    (is_update ? sm.updates : sm.finds).inc();
    if (obs::phase_timing_enabled())
      for (int p = 0; p < obs::kPhaseCount; ++p)
        if (ph.t[p] != 0)
          obs::record_phase_ns(static_cast<obs::Phase>(p), ph.t[p]);
    if (obs::trace_enabled()) {
      obs::TraceEvent ev{};
      ev.ts_ns = s.now();  // virtual clock
      ev.key = leaf_idx;
      ev.leaf_off = leaf_idx;
      ev.latency_ns = latency;
      ev.thread_id = ctx.tid_base + static_cast<std::uint32_t>(wid);
      ev.op = static_cast<std::uint16_t>(is_update ? obs::OpKind::kUpdate
                                                   : obs::OpKind::kFind);
      ev.result = static_cast<std::uint16_t>(obs::OpResult::kOk);
      ev.phase_htm_ns = static_cast<std::uint32_t>(ph.t[0]);
      ev.phase_lock_ns = static_cast<std::uint32_t>(ph.t[1]);
      ev.phase_persist_ns = static_cast<std::uint32_t>(ph.t[2]);
      ev.phase_smo_ns = static_cast<std::uint32_t>(ph.t[3]);
      obs::trace_virtual(ev);
    }
  }
}

}  // namespace

SimResult run_simulation(const SimConfig& cfg) {
  Scheduler sched;
  Ctx ctx(cfg, sched);
  ctx.tid_base = next_tid_base();
  for (int w = 0; w < cfg.threads; ++w) sched.spawn(worker(ctx, w));
  sched.run_until(cfg.horizon_ns);

  SimResult res;
  res.completed = ctx.completed;
  res.mops = static_cast<double>(ctx.completed) /
             (static_cast<double>(cfg.horizon_ns) * 1e-9) / 1e6;
  res.read_latency = ctx.read_latency;
  res.update_latency = ctx.update_latency;
  res.find_retries = ctx.find_retries;
  res.htm_fallbacks = ctx.htm_fallbacks;
  res.smo_count = ctx.smo_count;
  res.aborts_capacity = ctx.aborts_capacity;
  res.hot_stripe_ops = ctx.hot_ops;
  res.cold_stripe_ops = ctx.cold_ops;
  return res;
}

}  // namespace rnt::sim
