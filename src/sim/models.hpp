// Per-tree operation models for the concurrency simulator (Figures 8-10).
//
// Each model encodes where its tree spends time relative to its leaf lock
// and the NVM channels — the structure the paper's scalability argument
// rests on:
//
//   RNTree      — KV flush OUTSIDE the lock; short critical section (slot
//                 update + slot flush); readers validate a per-modification
//                 window over the persistent slot array, so they stall while
//                 a writer's slot flush is in flight.
//   RNTree+DS   — same writer path plus the transient-slot copy; the
//                 reader-visible window shrinks to that copy (tens of ns),
//                 so readers effectively never block (S4.3).
//   FPTree      — "selective concurrency": the whole modify including all
//                 three flushes runs under the leaf lock, and finds abort to
//                 the root whenever the leaf is locked; traversal runs as an
//                 HTM transaction with a GLOBAL fallback lock after repeated
//                 aborts, which is what folds the whole tree into a single
//                 serialization point under skew (S3.4, Figs 8-10).
//
// Stage costs are configurable; defaults approximate the single-thread
// measurements of the real implementations in this repository (see
// bench_micro) with the paper's 140 ns NVM write latency.
#pragma once

#include <cstdint>

#include "common/histogram.hpp"

namespace rnt::sim {

enum class TreeModel { kRNTree, kRNTreeDS, kFPTree };

/// Stage costs in virtual nanoseconds.
struct Costs {
  std::uint64_t traverse = 300;       ///< root -> leaf through DRAM inner nodes
  std::uint64_t cas_alloc = 30;       ///< lock-free log allocation (Alg 2)
  std::uint64_t kv_write = 30;        ///< store the 16-byte entry
  /// Effective service time of one persistent instruction under load.  The
  /// paper's *unloaded* NVDIMM write latency is 140 ns, but its own Fig 4
  /// throughputs and Fig 9 latencies imply ~0.4-0.5 us per flush+fence once
  /// fence round-trips and write-queue pressure are included; 450 ns makes
  /// the simulator's absolute latencies land in Fig 9's ranges.
  std::uint64_t persist = 450;
  /// Channel occupancy per flushed line (bandwidth term): 64 B / 34 GB/s
  /// plus controller overhead.
  std::uint64_t persist_occupancy = 25;
  std::uint64_t leaf_search = 100;    ///< slot binary search / bitmap+fp probe
  std::uint64_t slot_update = 60;     ///< slot rewrite inside the HTM section
  std::uint64_t slot_copy = 40;       ///< htmLeafCopySlot (dual slot array)
  std::uint64_t read_snapshot = 150;  ///< snapshot + binary search (find)
  std::uint64_t fp_scan = 180;        ///< FPTree fingerprint + key probe
  std::uint64_t compact = 2000;       ///< leaf compaction, amortised 1/32 mods
  std::uint64_t backoff = 40;         ///< retry pause
};

struct SimConfig {
  TreeModel model = TreeModel::kRNTreeDS;
  int threads = 8;
  std::uint64_t keys = 1'000'000;
  std::uint64_t keys_per_leaf = 48;
  double zipf_theta = 0.0;  ///< 0 = uniform
  int update_pct = 50;      ///< YCSB-A default; rest are finds
  std::uint64_t horizon_ns = 50'000'000;
  std::uint64_t seed = 42;
  /// Open-loop request rate per worker (ops/s); 0 = closed loop.
  double open_rate = 0.0;
  int nvm_channels = 6;  ///< one 6-way interleave set (paper's testbed)
  /// ShardedTree modeling (fig8 --shards): leaves are partitioned over this
  /// many independent shards.  FPTree's fallback lock becomes per-shard (the
  /// whole point: abort storms stay local); per-shard shard.<i>.ops counters
  /// tick when shards > 1.
  int shards = 1;
  /// Group persistency (fig8 --batch): every worker batches K modifies per
  /// trailing barrier.  The RNTree models' slot flush then pays channel
  /// occupancy only (counted nvm.batch_persist) and every K-th modify pays
  /// one full persist as the barrier (counted nvm.batch_fence) — fences/op
  /// drop from 2 to 1 + 1/K.  1 = eager (paper's Table-1 profile).
  int batch = 1;
  /// Ablation knob (bench_ablation_overlap): perform the KV flush INSIDE the
  /// leaf critical section (the decoupled design of S3.4) instead of the
  /// paper's overlapped placement.  Applies to the RNTree models only.
  bool flush_inside_lock = false;
  /// Fallback-lock striping (bench_ablation_fallback): the RNTree models'
  /// slot publish runs as an HTM transaction subscribed to one of this many
  /// per-shard stripe fallback locks, keyed by leaf hash.  1 = the single
  /// global fallback lock (the pre-stripe baseline).  Use 64 to align the
  /// configured stripes with the storm's fixed 64-way hot-set mapping.
  int fallback_stripes = 1;
  /// Scripted capacity-abort storm (bench_ablation_fallback): ops landing
  /// on the hot leaf set — the leaves sharing @p key's stripe under a FIXED
  /// 64-way reference mapping, so hot/cold classification is identical
  /// across stripe configurations — capacity-abort with probability
  /// @p permille per attempt; two aborts escalate to the CONFIGURED stripe
  /// fallback lock, held across the publish.  With one stripe every cold
  /// op's publish subscribes to that same lock and collapses; with 64
  /// stripes only the hot set serializes.
  struct Storm {
    bool enabled = false;
    std::uint64_t key = 0;
    std::uint32_t permille = 800;
    /// Share of each worker's ops redirected at the hot leaf set (the
    /// skewed traffic that makes the storm a storm); the rest stays
    /// uniform and is the "cold" traffic whose survival is measured.
    std::uint32_t hot_pct = 30;
  } storm;
  /// Scripted conflict injection (heatmap validation): every op that lands
  /// on @p key's leaf suffers @p aborts simulated conflict aborts and then a
  /// fallback, attributed to the heatmap like the real retry machine's.
  struct Inject {
    bool enabled = false;
    std::uint64_t key = 0;
    int aborts = 3;
  } inject;
  /// SMO transaction modeling (bench_ablation_smo): every ~keys_per_leaf-th
  /// RNTree modify triggers a structural modification.  cow = true models
  /// the RCU-HTM install (out-of-place build, then a one-cache-line install
  /// transaction whose abort probability is contention only); cow = false
  /// models the in-place rewrite, whose whole-path write set suffers
  /// capacity aborts (capacity_permille) independent of contention and
  /// escalates to the shard fallback lock — the serialization the paper's
  /// capacity-abort storms produce at high core counts.
  struct Smo {
    bool enabled = false;
    bool cow = true;
    std::uint64_t build_ns = 350;    ///< out-of-place node construction
    std::uint64_t install_ns = 90;   ///< one-line validate+swap transaction
    std::uint64_t inplace_ns = 900;  ///< in-place multi-node rewrite txn
    /// Probability (permille) one in-place SMO attempt capacity-aborts.
    std::uint32_t capacity_permille = 400;
  } smo;
  Costs costs;
};

struct SimResult {
  double mops = 0.0;  ///< completed operations per virtual second / 1e6
  LatencyHistogram read_latency;
  LatencyHistogram update_latency;
  std::uint64_t completed = 0;
  std::uint64_t find_retries = 0;
  std::uint64_t htm_fallbacks = 0;
  std::uint64_t smo_count = 0;         ///< SMOs executed (smo.enabled)
  std::uint64_t aborts_capacity = 0;   ///< capacity aborts in SMO/storm txns
  /// Storm accounting (storm.enabled): completed ops split by membership in
  /// the hot leaf set (fixed 64-way reference mapping — comparable across
  /// fallback_stripes settings).
  std::uint64_t hot_stripe_ops = 0;
  std::uint64_t cold_stripe_ops = 0;
};

/// Run one deterministic simulation.
SimResult run_simulation(const SimConfig& cfg);

}  // namespace rnt::sim
