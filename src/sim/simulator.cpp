#include "sim/simulator.hpp"

namespace rnt::sim {

Scheduler::~Scheduler() {
  // Destroy all worker frames (suspended or finished); pending events hold
  // non-owning handles into these frames.
  for (auto h : tasks_)
    if (h) h.destroy();
}

void Scheduler::spawn(Task t) {
  tasks_.push_back(t.handle);
  schedule(now_, t.handle);
}

void Scheduler::schedule(SimTime t, std::coroutine_handle<> h) {
  queue_.push(Event{t, seq_++, h});
}

void Scheduler::run_until(SimTime end) {
  while (!queue_.empty() && queue_.top().t <= end) {
    const Event ev = queue_.top();
    queue_.pop();
    now_ = ev.t;
    ++processed_;
    if (!ev.h.done()) ev.h.resume();
  }
  now_ = end;
}

}  // namespace rnt::sim
