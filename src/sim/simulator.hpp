// Deterministic discrete-event multicore simulator (C++20 coroutines).
//
// Why it exists: the paper's Figures 8-10 need 24 cores and TSX; this
// reproduction host may have one core.  The multi-thread results in the
// paper are driven almost entirely by *where time is spent under locks* and
// *how persist latency queues on the NVM*, both of which a DES reproduces
// exactly.  Workers are coroutines advancing a virtual clock; the paper's
// thread-per-core binding means a spinning thread burns only its own core,
// so cores never need to be modelled explicitly — only the shared resources:
//
//   * SimMutex       — FIFO lock (leaf spinlocks / leaf mutexes / HTM
//                      fallback locks)
//   * ChannelPool    — the NVM's interleaved channels: a persist occupies
//                      one channel for its service time, so flush latency
//                      inflates as concurrent flushers pile up (the paper's
//                      testbed has two 6-way interleave sets)
//   * per-leaf publish windows — the seqlock/HTM visibility windows readers
//                      conflict with
//
// Everything is seeded and events are totally ordered by (time, sequence),
// so a simulation is reproducible bit-for-bit.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <exception>
#include <queue>
#include <vector>

namespace rnt::sim {

using SimTime = std::uint64_t;  ///< virtual nanoseconds

class Scheduler;

/// Fire-and-forget coroutine owned by the Scheduler.
struct Task {
  struct promise_type {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { std::terminate(); }
  };
  std::coroutine_handle<promise_type> handle;
};

class Scheduler {
 public:
  Scheduler() = default;
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Register a worker coroutine; it first runs at the current time.
  void spawn(Task t);

  /// Enqueue a resume of @p h at time @p t (>= now).
  void schedule(SimTime t, std::coroutine_handle<> h);

  /// Process events until the queue is empty or the next event is past
  /// @p end; now() is @p end afterwards.
  void run_until(SimTime end);

  SimTime now() const noexcept { return now_; }
  std::uint64_t events_processed() const noexcept { return processed_; }

 private:
  struct Event {
    SimTime t;
    std::uint64_t seq;
    std::coroutine_handle<> h;
    bool operator>(const Event& o) const noexcept {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<std::coroutine_handle<Task::promise_type>> tasks_;
  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
};

/// co_await Delay{sched, ns}: advance this worker's clock.
struct Delay {
  Scheduler& s;
  SimTime d;
  bool await_ready() const noexcept { return d == 0; }
  void await_suspend(std::coroutine_handle<> h) const { s.schedule(s.now() + d, h); }
  void await_resume() const noexcept {}
};

/// FIFO mutex; acquire with `co_await m.acquire(sched)`.
class SimMutex {
 public:
  struct Acquire {
    SimMutex& m;
    Scheduler& s;
    bool await_ready() const noexcept {
      if (!m.locked_) {
        m.locked_ = true;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { m.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };

  Acquire acquire(Scheduler& s) noexcept { return {*this, s}; }

  /// Hand off to the next waiter (at the current time) or unlock.
  void release(Scheduler& s) {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      s.schedule(s.now(), h);  // still locked: direct handoff
    } else {
      locked_ = false;
    }
  }

  bool locked() const noexcept { return locked_; }
  std::size_t queue_length() const noexcept { return waiters_.size(); }

 private:
  friend struct Acquire;
  bool locked_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// The NVM's interleaved channels.  A flush OCCUPIES a channel only for the
/// line-transfer time (the bandwidth term: 64 B / 34 GB/s plus controller
/// overhead), while the issuing thread stalls for the full fence round-trip
/// latency on top of any queueing.  Keeping occupancy and latency separate
/// lets many threads flush concurrently (flushes pipeline on real NVDIMMs)
/// while still inflating under genuine bandwidth pressure.
class ChannelPool {
 public:
  ChannelPool(int channels, SimTime latency, SimTime occupancy)
      : busy_until_(static_cast<std::size_t>(channels), 0),
        latency_(latency),
        occupancy_(occupancy) {}

  /// Total stall (queue wait + fence latency) of a persist issued at @p now.
  SimTime persist_latency(SimTime now) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < busy_until_.size(); ++i)
      if (busy_until_[i] < busy_until_[best]) best = i;
    const SimTime start = busy_until_[best] > now ? busy_until_[best] : now;
    busy_until_[best] = start + occupancy_;
    return (start - now) + latency_;
  }

  SimTime latency() const noexcept { return latency_; }

 private:
  std::vector<SimTime> busy_until_;
  SimTime latency_;
  SimTime occupancy_;
};

}  // namespace rnt::sim
