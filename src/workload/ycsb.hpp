// YCSB-style operation mixes and per-thread operation streams.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <variant>

#include "common/rng.hpp"
#include "workload/zipfian.hpp"

namespace rnt::workload {

enum class OpType : std::uint8_t { kFind, kInsert, kUpdate, kRemove, kScan };

/// Operation mix in percent; must sum to 100.
struct MixSpec {
  int find_pct = 0;
  int insert_pct = 0;
  int update_pct = 0;
  int remove_pct = 0;
  int scan_pct = 0;

  constexpr int total() const noexcept {
    return find_pct + insert_pct + update_pct + remove_pct + scan_pct;
  }

  /// YCSB-A: 50% update, 50% read (the paper's default concurrent workload).
  static constexpr MixSpec ycsb_a() noexcept { return {50, 0, 50, 0, 0}; }
  /// The paper's "skewed read intensive" mix: 90% read, 10% update.
  static constexpr MixSpec read_intensive() noexcept { return {90, 0, 10, 0, 0}; }
  /// YCSB-C: read only.
  static constexpr MixSpec ycsb_c() noexcept { return {100, 0, 0, 0, 0}; }
  /// YCSB-E: 95% short range scan, 5% insert (scan-heavy service mix).
  static constexpr MixSpec ycsb_e() noexcept { return {0, 5, 0, 0, 95}; }
  /// The paper's single-thread mixed benchmark: 25% each of
  /// find/insert/update/remove.
  static constexpr MixSpec mixed_25() noexcept { return {25, 25, 25, 25, 0}; }
};

struct Op {
  OpType type;
  std::uint64_t key;     ///< key index in [0, items)
  std::uint32_t scan_n;  ///< number of KVs for kScan
};

enum class KeyDist : std::uint8_t { kUniform, kZipfian, kScrambledZipfian };

/// Deterministic per-thread operation stream.
class OpStream {
 public:
  OpStream(MixSpec mix, KeyDist dist, std::uint64_t items, double theta,
           std::uint64_t seed, std::uint32_t scan_n = 100)
      : mix_(mix), rng_(seed ^ 0x5151515151ull), scan_n_(scan_n) {
    if (mix.total() != 100) throw std::invalid_argument("MixSpec must sum to 100");
    switch (dist) {
      case KeyDist::kUniform:
        gen_.emplace<UniformGenerator>(items, seed);
        break;
      case KeyDist::kZipfian:
        gen_.emplace<ZipfianGenerator>(items, theta, seed);
        break;
      case KeyDist::kScrambledZipfian:
        gen_.emplace<ScrambledZipfianGenerator>(items, theta, seed);
        break;
    }
  }

  Op next() noexcept {
    const auto roll = static_cast<int>(rng_.next_below(100));
    OpType t;
    if (roll < mix_.find_pct)
      t = OpType::kFind;
    else if (roll < mix_.find_pct + mix_.insert_pct)
      t = OpType::kInsert;
    else if (roll < mix_.find_pct + mix_.insert_pct + mix_.update_pct)
      t = OpType::kUpdate;
    else if (roll < mix_.find_pct + mix_.insert_pct + mix_.update_pct + mix_.remove_pct)
      t = OpType::kRemove;
    else
      t = OpType::kScan;
    const std::uint64_t key = std::visit([](auto& g) { return g.next(); }, gen_);
    return {t, key, scan_n_};
  }

 private:
  MixSpec mix_;
  std::variant<UniformGenerator, ZipfianGenerator, ScrambledZipfianGenerator> gen_{
      UniformGenerator(1, 1)};
  Xoshiro256 rng_;
  std::uint32_t scan_n_;
};

}  // namespace rnt::workload
