#include "workload/zipfian.hpp"

#include <cmath>
#include <map>
#include <mutex>
#include <stdexcept>

namespace rnt::workload {

namespace {

// zeta(n, theta) is O(n); memoise it — the benchmarks construct many
// generators over the same (n, theta) pairs (one per thread / per sweep).
std::mutex g_zeta_mu;
std::map<std::pair<std::uint64_t, double>, double> g_zeta_cache;

}  // namespace

double ZipfianGenerator::zeta(std::uint64_t n, double theta) noexcept {
  {
    std::lock_guard lk(g_zeta_mu);
    auto it = g_zeta_cache.find({n, theta});
    if (it != g_zeta_cache.end()) return it->second;
  }
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i)
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  {
    std::lock_guard lk(g_zeta_mu);
    g_zeta_cache[{n, theta}] = sum;
  }
  return sum;
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t items, double theta,
                                   std::uint64_t seed)
    : items_(items), theta_(theta), rng_(seed) {
  if (items == 0)
    throw std::invalid_argument("ZipfianGenerator: items must be >= 1");
  if (!(theta >= 0.0) || theta >= 1.0)
    throw std::invalid_argument(
        "ZipfianGenerator: theta must be in [0, 1) (alpha = 1/(1-theta) "
        "diverges at 1)");
  zetan_ = zeta(items, theta);
  alpha_ = 1.0 / (1.0 - theta);
  if (items <= 2) {
    // next() resolves ranks 0 and 1 from uz alone (uz < zetan == the
    // first-two-ranks mass), so the eta-based tail formula is unreachable.
    // Computing it anyway would divide by zero for items == 2
    // (zeta2 == zetan ⇒ 0/0 ⇒ NaN eta); pin eta to a harmless value.
    eta_ = 0.0;
  } else {
    const double zeta2 = zeta(2, theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(items), 1.0 - theta)) /
           (1.0 - zeta2 / zetan_);
  }
  half_pow_theta_ = 1.0 + std::pow(0.5, theta);
}

std::uint64_t ZipfianGenerator::next() noexcept {
  const double u = rng_.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < half_pow_theta_) return 1;
  const auto rank = static_cast<std::uint64_t>(
      static_cast<double>(items_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= items_ ? items_ - 1 : rank;
}

}  // namespace rnt::workload
