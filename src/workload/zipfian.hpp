// YCSB-style request-distribution generators.
//
// The paper's concurrent evaluation uses YCSB-A (50% update / 50% find) with
// uniform and Zipfian key popularity; the skew experiments sweep the Zipfian
// coefficient theta in [0.5, 0.99].  ZipfianGenerator implements the standard
// YCSB algorithm (Gray et al.'s rejection-free inverse-CDF approximation with
// the zeta normalisation constant); ScrambledZipfian additionally hashes the
// rank so that hot keys are spread over the key space — the paper: "We hash
// keys to distribute hottest keys to different leaf nodes."
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace rnt::workload {

class UniformGenerator {
 public:
  UniformGenerator(std::uint64_t items, std::uint64_t seed)
      : items_(items), rng_(seed) {}

  std::uint64_t next() noexcept { return rng_.next_below(items_); }
  std::uint64_t items() const noexcept { return items_; }

 private:
  std::uint64_t items_;
  Xoshiro256 rng_;
};

class ZipfianGenerator {
 public:
  static constexpr double kDefaultTheta = 0.99;

  /// Ranks are drawn from [0, items); rank 0 is the hottest.
  /// Requires items >= 1 and theta in [0, 1); throws std::invalid_argument
  /// otherwise (theta == 1 makes alpha = 1/(1-theta) diverge).
  ZipfianGenerator(std::uint64_t items, double theta, std::uint64_t seed);

  std::uint64_t next() noexcept;
  std::uint64_t items() const noexcept { return items_; }
  double theta() const noexcept { return theta_; }

 private:
  static double zeta(std::uint64_t n, double theta) noexcept;

  std::uint64_t items_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double half_pow_theta_;
  Xoshiro256 rng_;
};

/// Zipfian ranks scrambled over the key space with a stateless 64-bit mixer.
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(std::uint64_t items, double theta, std::uint64_t seed)
      : zipf_(items, theta, seed), items_(items) {}

  std::uint64_t next() noexcept { return mix64(zipf_.next()) % items_; }
  std::uint64_t items() const noexcept { return items_; }

 private:
  ZipfianGenerator zipf_;
  std::uint64_t items_;
};

}  // namespace rnt::workload
