// Crash-consistency sweeps for the baseline trees, mirroring the RNTree
// sweeps: replay a deterministic op sequence, power-fail at every tracked
// NVM event, recover, verify acknowledged effects.
//
// What each design guarantees (and what is therefore asserted):
//   * NVTree    — entry flushed before the nElement counter: ops are atomic
//                 at the counter flush.  Swept under strict AND random-
//                 eviction crashes.
//   * wB+tree-SO— the 8-byte slot word is the atomic commit point.  Swept
//                 under both modes.
//   * FPTree    — the bitmap word is the atomic commit point (entry and
//                 fingerprint flushed first).  Swept under both modes.
//   * wB+tree   — the valid bit protects the 64-byte slot array, but the
//                 in-place rewrite is only recoverable when unflushed lines
//                 are LOST (the old array reappears); if a torn slot line is
//                 evicted to NVM the published design needs its occupancy
//                 bitmap to rebuild, which the paper's simplified
//                 re-implementation (and ours) lacks.  Swept under strict
//                 crashes only — documented in DESIGN.md.
//   * CDDS      — reproduced as a Table-1 cost model only; its multi-stage
//                 sorted-shift recovery is out of scope (DESIGN.md).
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "baselines/fptree.hpp"
#include "baselines/nvtree.hpp"
#include "baselines/wbtree.hpp"
#include "common/rng.hpp"
#include "nvm/pool.hpp"
#include "nvm/shadow.hpp"

namespace rnt::baselines {
namespace {

struct OpRec {
  int kind;  // 0=insert 1=update 2=remove
  std::uint64_t key, value;
};

std::vector<OpRec> make_ops(int n, std::uint64_t key_space, std::uint64_t seed) {
  std::vector<OpRec> ops;
  Xoshiro256 rng(seed);
  for (int i = 0; i < n; ++i)
    ops.push_back({static_cast<int>(rng.next_below(3)), rng.next_below(key_space),
                   rng.next() | 1});
  return ops;
}

/// One crash run for tree type T; returns false once crash_at exceeds the
/// run's total events.
template <typename T, typename MakeFn, typename RecoverFn>
bool run_one(const std::vector<OpRec>& ops, std::uint64_t crash_at,
             nvm::EvictionMode mode, std::uint64_t seed, MakeFn&& make,
             RecoverFn&& recover_fn) {
  nvm::PmemPool pool(std::size_t{4} << 20);
  auto tree = make(pool);
  nvm::ShadowPool shadow(pool);
  shadow.schedule_crash_after(crash_at);

  std::map<std::uint64_t, std::uint64_t> acked;
  bool crashed = false;
  std::uint64_t pending_key = 0, pending_value = 0;
  int pending_kind = -1;
  try {
    for (const OpRec& op : ops) {
      pending_key = op.key;
      pending_value = op.value;
      pending_kind = op.kind;
      switch (op.kind) {
        case 0:
          if (tree->insert(op.key, op.value)) acked[op.key] = op.value;
          break;
        case 1:
          if (tree->update(op.key, op.value)) acked[op.key] = op.value;
          break;
        default:
          if (tree->remove(op.key)) acked.erase(op.key);
      }
      pending_kind = -1;
    }
  } catch (const nvm::CrashPoint&) {
    crashed = true;
  }
  if (!crashed) {
    shadow.cancel_scheduled_crash();
    return false;
  }

  tree.reset();
  shadow.simulate_crash(mode, seed);
  pool.reopen_volatile();
  auto recovered = recover_fn(pool);

  for (auto& [k, v] : acked) {
    auto res = recovered->find(k);
    if (pending_kind >= 0 && k == pending_key) {
      // In-flight op on this key: all-or-nothing.
      EXPECT_TRUE(pending_kind == 2
                      ? (!res || *res == v)
                      : (res && (*res == v || *res == pending_value)))
          << "key " << k << " @" << crash_at;
    } else {
      EXPECT_TRUE(res.has_value()) << "lost acked key " << k << " @" << crash_at;
      if (res) EXPECT_EQ(*res, v) << "key " << k << " @" << crash_at;
    }
  }
  // An in-flight insert may at most add its own key; nothing else new.
  if (pending_kind == 0) {
    auto res = recovered->find(pending_key);
    EXPECT_TRUE(!res || acked.count(pending_key) != 0 || *res == pending_value)
        << "@" << crash_at;
  }
  return true;
}

template <typename T, typename MakeFn, typename RecoverFn>
void sweep(const std::vector<OpRec>& ops, nvm::EvictionMode mode,
           std::uint64_t seed, MakeFn&& make, RecoverFn&& recover_fn,
           std::uint64_t stride = 1) {
  std::uint64_t crash_at = 1;
  std::uint64_t runs = 0;
  while (run_one<T>(ops, crash_at, mode, seed, make, recover_fn)) {
    crash_at += stride;
    ++runs;
    if (::testing::Test::HasFailure()) break;
  }
  EXPECT_GT(runs * stride, 60u) << "sweep covered suspiciously few crash points";
}

// --- per-tree factories -------------------------------------------------

auto make_nvtree = [](nvm::PmemPool& pool) {
  return std::make_unique<NVTree<>>(pool,
                                    NVTree<>::Options{.conditional_write = true});
};
auto recover_nvtree = [](nvm::PmemPool& pool) {
  return std::make_unique<NVTree<>>(NVTree<>::recover_t{}, pool,
                                    NVTree<>::Options{.conditional_write = true});
};
auto make_wb = [](nvm::PmemPool& pool) { return std::make_unique<WBTree<>>(pool); };
auto recover_wb = [](nvm::PmemPool& pool) {
  return std::make_unique<WBTree<>>(WBTree<>::recover_t{}, pool);
};
auto make_wbso = [](nvm::PmemPool& pool) {
  return std::make_unique<WBTreeSO<>>(pool);
};
auto recover_wbso = [](nvm::PmemPool& pool) {
  return std::make_unique<WBTreeSO<>>(WBTreeSO<>::recover_t{}, pool);
};
auto make_fp = [](nvm::PmemPool& pool) { return std::make_unique<FPTree<>>(pool); };
auto recover_fp = [](nvm::PmemPool& pool) {
  return std::make_unique<FPTree<>>(FPTree<>::recover_t{}, pool);
};

// --- sweeps ---------------------------------------------------------------

TEST(BaselineCrash, NVTreeEveryCrashPointStrict) {
  sweep<NVTree<>>(make_ops(50, 16, 5), nvm::EvictionMode::kNone, 0, make_nvtree,
                  recover_nvtree);
}

TEST(BaselineCrash, NVTreeRandomEviction) {
  const auto ops = make_ops(50, 16, 5);
  for (std::uint64_t seed = 1; seed <= 3; ++seed)
    sweep<NVTree<>>(ops, nvm::EvictionMode::kRandomEviction, seed, make_nvtree,
                    recover_nvtree, /*stride=*/7);
}

TEST(BaselineCrash, NVTreeThroughSplits) {
  std::vector<OpRec> ops;
  for (int i = 0; i < 120; ++i)
    ops.push_back({0, static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(i + 1)});
  sweep<NVTree<>>(ops, nvm::EvictionMode::kNone, 0, make_nvtree, recover_nvtree,
                  /*stride=*/3);
}

TEST(BaselineCrash, WBTreeEveryCrashPointStrict) {
  sweep<WBTree<>>(make_ops(50, 16, 9), nvm::EvictionMode::kNone, 0, make_wb,
                  recover_wb);
}

TEST(BaselineCrash, WBTreeThroughSplitsStrict) {
  std::vector<OpRec> ops;
  for (int i = 0; i < 120; ++i)
    ops.push_back({0, static_cast<std::uint64_t>(i * 2), static_cast<std::uint64_t>(i + 1)});
  sweep<WBTree<>>(ops, nvm::EvictionMode::kNone, 0, make_wb, recover_wb,
                  /*stride=*/3);
}

TEST(BaselineCrash, WBTreeSOEveryCrashPointStrict) {
  sweep<WBTreeSO<>>(make_ops(50, 10, 13), nvm::EvictionMode::kNone, 0, make_wbso,
                    recover_wbso);
}

TEST(BaselineCrash, WBTreeSORandomEviction) {
  const auto ops = make_ops(50, 10, 13);
  for (std::uint64_t seed = 1; seed <= 3; ++seed)
    sweep<WBTreeSO<>>(ops, nvm::EvictionMode::kRandomEviction, seed, make_wbso,
                      recover_wbso, /*stride=*/7);
}

TEST(BaselineCrash, FPTreeEveryCrashPointStrict) {
  sweep<FPTree<>>(make_ops(50, 16, 21), nvm::EvictionMode::kNone, 0, make_fp,
                  recover_fp);
}

TEST(BaselineCrash, FPTreeRandomEviction) {
  const auto ops = make_ops(50, 16, 21);
  for (std::uint64_t seed = 1; seed <= 3; ++seed)
    sweep<FPTree<>>(ops, nvm::EvictionMode::kRandomEviction, seed, make_fp,
                    recover_fp, /*stride=*/7);
}

TEST(BaselineCrash, FPTreeThroughSplits) {
  std::vector<OpRec> ops;
  for (int i = 0; i < 120; ++i)
    ops.push_back({0, static_cast<std::uint64_t>(i * 3), static_cast<std::uint64_t>(i + 1)});
  sweep<FPTree<>>(ops, nvm::EvictionMode::kNone, 0, make_fp, recover_fp,
                  /*stride=*/3);
}

}  // namespace
}  // namespace rnt::baselines
