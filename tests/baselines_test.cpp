// Tests for the four re-implemented baselines (NVTree, wB+tree, wB+tree-SO,
// FPTree): a typed functional suite shared by all trees, plus per-design
// checks — persist counts (Table 1), NVTree conditional-write modes, FPTree
// fingerprints and concurrency.
#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "baselines/cdds.hpp"
#include "baselines/fptree.hpp"
#include "baselines/nvtree.hpp"
#include "baselines/wbtree.hpp"
#include "common/rng.hpp"
#include "nvm/pool.hpp"

namespace rnt::baselines {
namespace {

// ---------------------------------------------------------------------------
// Typed functional suite
// ---------------------------------------------------------------------------

template <typename T>
struct Maker;

template <>
struct Maker<NVTree<>> {
  static std::unique_ptr<NVTree<>> make(nvm::PmemPool& pool) {
    // Conditional mode gives NVTree the same insert/update contract as the
    // other trees so one suite covers all four.
    return std::make_unique<NVTree<>>(pool,
                                      NVTree<>::Options{.conditional_write = true});
  }
  static std::unique_ptr<NVTree<>> recover(nvm::PmemPool& pool) {
    return std::make_unique<NVTree<>>(NVTree<>::recover_t{}, pool,
                                      NVTree<>::Options{.conditional_write = true});
  }
};
template <>
struct Maker<WBTree<>> {
  static std::unique_ptr<WBTree<>> make(nvm::PmemPool& pool) {
    return std::make_unique<WBTree<>>(pool);
  }
  static std::unique_ptr<WBTree<>> recover(nvm::PmemPool& pool) {
    return std::make_unique<WBTree<>>(WBTree<>::recover_t{}, pool);
  }
};
template <>
struct Maker<WBTreeSO<>> {
  static std::unique_ptr<WBTreeSO<>> make(nvm::PmemPool& pool) {
    return std::make_unique<WBTreeSO<>>(pool);
  }
  static std::unique_ptr<WBTreeSO<>> recover(nvm::PmemPool& pool) {
    return std::make_unique<WBTreeSO<>>(WBTreeSO<>::recover_t{}, pool);
  }
};
template <>
struct Maker<FPTree<>> {
  static std::unique_ptr<FPTree<>> make(nvm::PmemPool& pool) {
    return std::make_unique<FPTree<>>(pool);
  }
  static std::unique_ptr<FPTree<>> recover(nvm::PmemPool& pool) {
    return std::make_unique<FPTree<>>(FPTree<>::recover_t{}, pool);
  }
};
template <>
struct Maker<CDDSTree<>> {
  static std::unique_ptr<CDDSTree<>> make(nvm::PmemPool& pool) {
    return std::make_unique<CDDSTree<>>(pool);
  }
  static std::unique_ptr<CDDSTree<>> recover(nvm::PmemPool& pool) {
    return std::make_unique<CDDSTree<>>(CDDSTree<>::recover_t{}, pool);
  }
};

template <typename TreeT>
class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = nvm::config();
    nvm::config().write_latency_ns = 0;
    nvm::config().per_line_ns = 0;
    pool_ = std::make_unique<nvm::PmemPool>(std::size_t{256} << 20);
    tree_ = Maker<TreeT>::make(*pool_);
  }
  void TearDown() override { nvm::config() = saved_; }

  nvm::NvmConfig saved_;
  std::unique_ptr<nvm::PmemPool> pool_;
  std::unique_ptr<TreeT> tree_;
};

using TreeTypes =
    ::testing::Types<NVTree<>, WBTree<>, WBTreeSO<>, FPTree<>, CDDSTree<>>;
class NameGen {
 public:
  template <typename T>
  static std::string GetName(int) {
    if constexpr (std::is_same_v<T, NVTree<>>) return "NVTree";
    if constexpr (std::is_same_v<T, WBTree<>>) return "WBTree";
    if constexpr (std::is_same_v<T, WBTreeSO<>>) return "WBTreeSO";
    if constexpr (std::is_same_v<T, FPTree<>>) return "FPTree";
    if constexpr (std::is_same_v<T, CDDSTree<>>) return "CDDS";
  }
};
TYPED_TEST_SUITE(BaselineTest, TreeTypes, NameGen);

TYPED_TEST(BaselineTest, InsertFindRemove) {
  EXPECT_FALSE(this->tree_->find(1).has_value());
  EXPECT_TRUE(this->tree_->insert(1, 10));
  EXPECT_TRUE(this->tree_->insert(2, 20));
  EXPECT_EQ(this->tree_->find(1), std::optional<std::uint64_t>(10));
  EXPECT_EQ(this->tree_->find(2), std::optional<std::uint64_t>(20));
  EXPECT_TRUE(this->tree_->remove(1));
  EXPECT_FALSE(this->tree_->find(1).has_value());
  EXPECT_FALSE(this->tree_->remove(1));
  EXPECT_EQ(this->tree_->size(), 1u);
}

TYPED_TEST(BaselineTest, ConditionalSemantics) {
  EXPECT_TRUE(this->tree_->insert(5, 50));
  EXPECT_FALSE(this->tree_->insert(5, 51));
  EXPECT_EQ(this->tree_->find(5), std::optional<std::uint64_t>(50));
  EXPECT_TRUE(this->tree_->update(5, 52));
  EXPECT_EQ(this->tree_->find(5), std::optional<std::uint64_t>(52));
  EXPECT_FALSE(this->tree_->update(6, 60));
}

TYPED_TEST(BaselineTest, ManyInsertsWithSplits) {
  constexpr std::uint64_t kN = 3000;
  for (std::uint64_t i = 0; i < kN; ++i)
    ASSERT_TRUE(this->tree_->insert(i, i * 3)) << i;
  for (std::uint64_t i = 0; i < kN; ++i)
    ASSERT_EQ(this->tree_->find(i), std::optional<std::uint64_t>(i * 3)) << i;
  EXPECT_EQ(this->tree_->size(), kN);
  EXPECT_GT(this->tree_->leaf_count(), 1u);
}

TYPED_TEST(BaselineTest, ReverseAndShuffledInserts) {
  std::vector<std::uint64_t> keys(2000);
  for (std::uint64_t i = 0; i < keys.size(); ++i) keys[i] = mix64(i);
  for (std::uint64_t k : keys) ASSERT_TRUE(this->tree_->insert(k, k + 1));
  for (std::uint64_t k : keys)
    ASSERT_EQ(this->tree_->find(k), std::optional<std::uint64_t>(k + 1));
}

TYPED_TEST(BaselineTest, UpdateHeavyChurn) {
  for (std::uint64_t i = 0; i < 10; ++i) ASSERT_TRUE(this->tree_->insert(i, 0));
  for (std::uint64_t round = 1; round <= 200; ++round)
    for (std::uint64_t i = 0; i < 10; ++i)
      ASSERT_TRUE(this->tree_->update(i, round)) << i << " @" << round;
  for (std::uint64_t i = 0; i < 10; ++i)
    ASSERT_EQ(this->tree_->find(i), std::optional<std::uint64_t>(200));
  EXPECT_EQ(this->tree_->size(), 10u);
}

TYPED_TEST(BaselineTest, RandomizedAgainstStdMap) {
  std::map<std::uint64_t, std::uint64_t> oracle;
  Xoshiro256 rng(404);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t k = rng.next_below(500);
    const std::uint64_t v = rng.next();
    switch (rng.next_below(4)) {
      case 0:
        ASSERT_EQ(this->tree_->insert(k, v), oracle.emplace(k, v).second);
        break;
      case 1: {
        auto it = oracle.find(k);
        ASSERT_EQ(this->tree_->update(k, v), it != oracle.end());
        if (it != oracle.end()) it->second = v;
        break;
      }
      case 2:
        ASSERT_EQ(this->tree_->remove(k), oracle.erase(k) > 0);
        break;
      default: {
        auto res = this->tree_->find(k);
        auto it = oracle.find(k);
        ASSERT_EQ(res.has_value(), it != oracle.end()) << k;
        if (res) ASSERT_EQ(*res, it->second);
      }
    }
  }
  EXPECT_EQ(this->tree_->size(), oracle.size());
}

TYPED_TEST(BaselineTest, ScanSortedAcrossLeaves) {
  constexpr std::uint64_t kN = 2000;
  for (std::uint64_t i = 0; i < kN; ++i)
    this->tree_->upsert(mix64(i) % 100000, i);  // duplicates possible
  std::uint64_t prev = 0;
  bool first = true;
  std::size_t count = 0;
  this->tree_->scan(0, [&](std::uint64_t k, std::uint64_t) {
    if (!first) EXPECT_GT(k, prev);
    first = false;
    prev = k;
    ++count;
    return true;
  });
  EXPECT_EQ(count, this->tree_->size());
}

TYPED_TEST(BaselineTest, ScanNFromMiddle) {
  for (std::uint64_t i = 0; i < 1000; ++i)
    ASSERT_TRUE(this->tree_->insert(i * 2, i));
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  this->tree_->scan_n(501, 10, out);
  ASSERT_EQ(out.size(), 10u);
  EXPECT_EQ(out[0].first, 502u);
  EXPECT_EQ(out[9].first, 520u);
}

TYPED_TEST(BaselineTest, RecoveryRoundTrip) {
  constexpr std::uint64_t kN = 2000;
  for (std::uint64_t i = 0; i < kN; ++i)
    ASSERT_TRUE(this->tree_->insert(i, i + 7));
  this->pool_->close_clean();
  this->tree_.reset();
  this->pool_->reopen_volatile();
  auto recovered = Maker<TypeParam>::recover(*this->pool_);
  EXPECT_EQ(recovered->size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i)
    ASSERT_EQ(recovered->find(i), std::optional<std::uint64_t>(i + 7)) << i;
  ASSERT_TRUE(recovered->insert(kN + 5, 1));
  ASSERT_TRUE(recovered->remove(0));
}

// ---------------------------------------------------------------------------
// Per-design behaviour
// ---------------------------------------------------------------------------

class PersistCounts : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = nvm::config();
    nvm::config().write_latency_ns = 0;
    nvm::config().per_line_ns = 0;
    pool_ = std::make_unique<nvm::PmemPool>(std::size_t{64} << 20);
  }
  void TearDown() override { nvm::config() = saved_; }

  template <typename Fn>
  std::uint64_t persists_of(Fn&& fn) {
    const nvm::PersistStats before = nvm::tls_stats();
    fn();
    return (nvm::tls_stats() - before).persist;
  }

  nvm::NvmConfig saved_;
  std::unique_ptr<nvm::PmemPool> pool_;
};

TEST_F(PersistCounts, NVTreeTwoPerModify) {
  NVTree<> t(*pool_);
  for (std::uint64_t i = 0; i < 8; ++i) ASSERT_TRUE(t.insert(i * 2, i));
  EXPECT_EQ(persists_of([&] { t.insert(1, 1); }), 2u);
  EXPECT_EQ(persists_of([&] { t.update(1, 2); }), 2u);
  EXPECT_EQ(persists_of([&] { t.remove(1); }), 2u);
  EXPECT_EQ(persists_of([&] { (void)t.find(2); }), 0u);
}

TEST_F(PersistCounts, WBTreeFourPerModifyThreePerRemove) {
  WBTree<> t(*pool_);
  for (std::uint64_t i = 0; i < 8; ++i) ASSERT_TRUE(t.insert(i * 2, i));
  EXPECT_EQ(persists_of([&] { t.insert(1, 1); }), 4u);
  EXPECT_EQ(persists_of([&] { t.update(1, 2); }), 4u);
  EXPECT_EQ(persists_of([&] { t.remove(1); }), 3u);
}

TEST_F(PersistCounts, WBTreeSOTwoPerModify) {
  WBTreeSO<> t(*pool_);
  for (std::uint64_t i = 0; i < 4; ++i) ASSERT_TRUE(t.insert(i * 2, i));
  EXPECT_EQ(persists_of([&] { t.insert(1, 1); }), 2u);
  EXPECT_EQ(persists_of([&] { t.update(1, 2); }), 2u);
  EXPECT_EQ(persists_of([&] { t.remove(1); }), 1u);
}

TEST_F(PersistCounts, CDDSWritesScaleWithOccupancy) {
  // Table 1: CDDS Writes = L — insertion into a sorted multi-version array
  // flushes every shifted entry.  On a leaf with ~32 entries an insert must
  // cost on the order of L/2 persists, far above the log-structured trees.
  CDDSTree<> t(*pool_);
  for (std::uint64_t i = 0; i < 32; ++i) ASSERT_TRUE(t.insert(i * 4, i));
  // Insert at the front: maximal shift.
  const auto front = persists_of([&] { t.insert(1, 1); });
  EXPECT_GE(front, 20u);
  // Insert at the back of the same leaf: minimal shift.
  const auto back = persists_of([&] { t.insert(500, 1); });
  EXPECT_LE(back, 4u);
  // Update = end old version (1 persist) + insert new version (shift).
  const auto upd = persists_of([&] { t.update(4, 9); });
  EXPECT_GE(upd, 10u);
}

TEST_F(PersistCounts, FPTreeThreePerModifyOnePerRemove) {
  FPTree<> t(*pool_);
  for (std::uint64_t i = 0; i < 8; ++i) ASSERT_TRUE(t.insert(i * 2, i));
  EXPECT_EQ(persists_of([&] { t.insert(1, 1); }), 3u);
  EXPECT_EQ(persists_of([&] { t.update(1, 2); }), 3u);
  EXPECT_EQ(persists_of([&] { t.remove(1); }), 1u);
}

TEST_F(PersistCounts, NVTreeNonConditionalUpsertsOnInsert) {
  NVTree<> t(*pool_);  // conditional_write = false
  ASSERT_TRUE(t.insert(1, 10));
  // Non-conditional: a second insert of the same key is a logical update
  // (newest log entry wins).  size() is approximate in this mode.
  ASSERT_TRUE(t.insert(1, 11));
  EXPECT_EQ(t.find(1), std::optional<std::uint64_t>(11));
}

TEST_F(PersistCounts, FPTreeRemoveReclaimsSlotForReuse) {
  FPTree<> t(*pool_);
  // Fill one leaf completely, remove one, insert again — must reuse the slot
  // without splitting.
  for (std::uint64_t i = 0; i < 64; ++i) ASSERT_TRUE(t.insert(i, i));
  const auto splits_before = t.stats().splits.load();
  ASSERT_TRUE(t.remove(10));
  ASSERT_TRUE(t.insert(10, 100));
  EXPECT_EQ(t.stats().splits.load(), splits_before);
  EXPECT_EQ(t.find(10), std::optional<std::uint64_t>(100));
}

TEST_F(PersistCounts, FPTreeConcurrentMixedWorkload) {
  FPTree<> t(*pool_);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kShard = 500;
  std::vector<std::thread> ts;
  for (int w = 0; w < kThreads; ++w) {
    ts.emplace_back([&, w] {
      Xoshiro256 rng(static_cast<std::uint64_t>(w) + 1);
      const std::uint64_t base = static_cast<std::uint64_t>(w) * kShard;
      for (int i = 0; i < 8000; ++i) {
        const std::uint64_t k = base + rng.next_below(kShard);
        switch (rng.next_below(3)) {
          case 0:
            t.upsert(k, rng.next());
            break;
          case 1:
            (void)t.remove(k);
            break;
          default:
            (void)t.find(k);
        }
      }
    });
  }
  for (auto& th : ts) th.join();
  // Structural sanity via a full sorted scan.
  std::uint64_t prev = 0;
  bool first = true;
  t.scan(0, [&](std::uint64_t k, std::uint64_t) {
    EXPECT_TRUE(first || k > prev);
    first = false;
    prev = k;
    return true;
  });
}

TEST_F(PersistCounts, FPTreeReadersSeeConsistentValuesUnderWriters) {
  FPTree<> t(*pool_);
  constexpr std::uint64_t kKeys = 32;
  for (std::uint64_t k = 0; k < kKeys; ++k) ASSERT_TRUE(t.insert(k, k << 32));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::thread writer([&] {
    std::uint64_t round = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      for (std::uint64_t k = 0; k < kKeys; ++k)
        ASSERT_TRUE(t.update(k, (k << 32) | round));
      ++round;
    }
  });
  std::thread reader([&] {
    Xoshiro256 rng(3);
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t k = rng.next_below(kKeys);
      auto v = t.find(k);
      if (!v.has_value() || (*v >> 32) != k) violations.fetch_add(1);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop = true;
  writer.join();
  reader.join();
  EXPECT_EQ(violations.load(), 0u);
}

TEST_F(PersistCounts, WBTreeSOLeavesAreTiny) {
  WBTreeSO<> t(*pool_);
  for (std::uint64_t i = 0; i < 1000; ++i) ASSERT_TRUE(t.insert(i, i));
  // 7-entry leaves: at least 1000/7 leaves and a deep tree relative to the
  // 63-entry designs — the structural cost Fig 4 attributes to wB+tree-SO.
  EXPECT_GE(t.leaf_count(), 1000u / 7);
  WBTree<> big(*pool_, WBTree<>::Options{.root_slot = 1});
  for (std::uint64_t i = 0; i < 1000; ++i) ASSERT_TRUE(big.insert(i, i));
  EXPECT_LT(big.leaf_count(), t.leaf_count() / 2);
}

}  // namespace
}  // namespace rnt::baselines
