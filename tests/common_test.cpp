// Tests for src/common: cache-line math, RNG determinism, timing, histogram.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/cacheline.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/timing.hpp"

namespace rnt {
namespace {

TEST(CacheLine, AlignUpDown) {
  EXPECT_EQ(align_up(0, 64), 0u);
  EXPECT_EQ(align_up(1, 64), 64u);
  EXPECT_EQ(align_up(64, 64), 64u);
  EXPECT_EQ(align_up(65, 64), 128u);
  EXPECT_EQ(align_down(63, 64), 0u);
  EXPECT_EQ(align_down(64, 64), 64u);
  EXPECT_EQ(align_down(130, 64), 128u);
}

TEST(CacheLine, LineOf) {
  alignas(64) char buf[256];
  EXPECT_EQ(line_of(buf), reinterpret_cast<std::uintptr_t>(buf));
  EXPECT_EQ(line_of(buf + 63), reinterpret_cast<std::uintptr_t>(buf));
  EXPECT_EQ(line_of(buf + 64), reinterpret_cast<std::uintptr_t>(buf) + 64);
}

TEST(CacheLine, LinesSpanned) {
  alignas(64) char buf[512];
  EXPECT_EQ(lines_spanned(buf, 0), 0u);
  EXPECT_EQ(lines_spanned(buf, 1), 1u);
  EXPECT_EQ(lines_spanned(buf, 64), 1u);
  EXPECT_EQ(lines_spanned(buf, 65), 2u);
  EXPECT_EQ(lines_spanned(buf + 60, 8), 2u);  // straddles a boundary
  EXPECT_EQ(lines_spanned(buf, 256), 4u);
}

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowRoughlyUniform) {
  Xoshiro256 rng(11);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.next_below(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kSamples / kBuckets * 0.9);
    EXPECT_LT(c, kSamples / kBuckets * 1.1);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, Mix64IsBijectivelyScrambling) {
  // No collisions over a modest sample (mix64 is a bijection of u64).
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Timing, BusyWaitWaitsApproximately) {
  const std::uint64_t t0 = now_ns();
  busy_wait_ns(2'000'000);  // 2 ms is long enough to measure reliably
  const std::uint64_t dt = now_ns() - t0;
  EXPECT_GE(dt, 1'500'000u);
  EXPECT_LT(dt, 60'000'000u);  // generous: CI machines stall
}

TEST(Timing, BusyWaitZeroIsNoop) {
  const std::uint64_t t0 = now_ns();
  for (int i = 0; i < 1000; ++i) busy_wait_ns(0);
  EXPECT_LT(now_ns() - t0, 10'000'000u);
}

TEST(Histogram, BasicPercentiles) {
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  // Log buckets: results are upper bounds within ~6% of the exact value.
  EXPECT_NEAR(static_cast<double>(h.percentile(0.5)), 500.0, 40.0);
  EXPECT_NEAR(static_cast<double>(h.percentile(0.99)), 990.0, 70.0);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_NEAR(h.mean(), 500.5, 0.5);
}

TEST(Histogram, MergeCombines) {
  LatencyHistogram a, b;
  for (int i = 0; i < 100; ++i) a.record(10);
  for (int i = 0; i < 100; ++i) b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_GE(a.percentile(0.99), 1000u * 95 / 100);
  EXPECT_LE(a.percentile(0.25), 16u);
}

TEST(Histogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(Histogram, LargeValues) {
  LatencyHistogram h;
  h.record(5'000'000'000ull);  // 5 s
  EXPECT_GE(h.percentile(1.0), 4'500'000'000ull);
  EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, ResetClears) {
  LatencyHistogram h;
  h.record(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, EmptyBoundaryQuantilesAreZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.percentile(0.0), 0u);
  EXPECT_EQ(h.percentile(1.0), 0u);
  EXPECT_EQ(h.percentile(-3.0), 0u);
  EXPECT_EQ(h.percentile(7.0), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, BoundaryQuantilesAreExactExtrema) {
  LatencyHistogram h;
  h.record(1000);
  h.record(300);
  h.record(77777);
  // p0/p100 must be the recorded extrema, not log-bucket upper bounds.
  EXPECT_EQ(h.percentile(0.0), 300u);
  EXPECT_EQ(h.percentile(1.0), 77777u);
  // Out-of-range quantiles clamp to the same extrema.
  EXPECT_EQ(h.percentile(-0.5), 300u);
  EXPECT_EQ(h.percentile(1.5), 77777u);
}

TEST(Histogram, SingleSamplePercentilesNeverExceedMax) {
  LatencyHistogram h;
  h.record(1000);  // bucket upper bound would be 1023 without clamping
  for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(h.percentile(q), 1000u) << "q=" << q;
  }
}

TEST(Histogram, PercentilesStayWithinObservedRange) {
  LatencyHistogram h;
  for (std::uint64_t v : {500u, 501u, 502u, 90000u}) h.record(v);
  for (double q : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    EXPECT_GE(h.percentile(q), 500u) << "q=" << q;
    EXPECT_LE(h.percentile(q), 90000u) << "q=" << q;
  }
}

}  // namespace
}  // namespace rnt
