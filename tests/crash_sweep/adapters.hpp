// Per-tree adapters for the crash-point sweep harness: construction,
// recovery, structural counters, Table-1 persistent-instruction counts, and
// the per-tree op stream that drives the compaction class.
//
// kEvictionSafe: WBTree's full-cache-line slot array cannot survive a torn
// line, so (as documented in DESIGN.md) it is swept under strict kNone
// crashes only; every other tree also runs the kRandomEviction sweeps.
//
// kHasCompaction: WBTreeSO and FPTree have no compaction path (update
// re-points / re-bits in place), so their sixth op class exercises the
// nearest recovery-relevant analogue instead — reusing a log position /
// bitmap slot freed by a remove.
#pragma once

#include <memory>

#include "baselines/fptree.hpp"
#include "baselines/nvtree.hpp"
#include "baselines/wbtree.hpp"
#include "core/rntree.hpp"
#include "crash_sweep/harness.hpp"

namespace rnt::crash_sweep {

template <bool DualSlot>
struct RnTreeAdapter {
  using Tree = core::RNTree<Key, Value>;
  static constexpr const char* kName =
      DualSlot ? "rntree-dual" : "rntree-single";
  static constexpr bool kEvictionSafe = true;
  static constexpr bool kHasCompaction = true;
  static constexpr std::uint64_t kInsertPersists = 2;
  static constexpr std::uint64_t kUpdatePersists = 2;
  static constexpr std::uint64_t kRemovePersists = 1;
  // Leaves hold ~31 keys after sequential splits; 700 inserts make 20+
  // leaves, past the inner fanout of 16.
  static constexpr std::uint64_t kSmoPrepKeys = 700;

  static std::unique_ptr<Tree> make(nvm::PmemPool& p) {
    return std::make_unique<Tree>(p, typename Tree::Options{.dual_slot = DualSlot});
  }
  static std::unique_ptr<Tree> recover(nvm::PmemPool& p) {
    return std::make_unique<Tree>(typename Tree::recover_t{}, p,
                                  typename Tree::Options{.dual_slot = DualSlot});
  }
  static std::uint64_t splits(const Tree& t) {
    return t.stats().splits.load(std::memory_order_relaxed);
  }
  static std::uint64_t compactions(const Tree& t) {
    return t.stats().shrink_splits.load(std::memory_order_relaxed);
  }
  /// RNTree removes never consume a log entry, so compaction is driven by
  /// out-of-place updates: 8 live keys, then updates until the consumed-log
  /// counter fills and the low-occupancy split compacts in place.
  static Step compaction_step(std::uint64_t i) {
    if (i < 8) return Step{Step::kInsert, 5 + i * 10, 0xC000 + i};
    return Step{Step::kUpdate, 5 + (i % 8) * 10, 0xC100 + i};
  }
};

struct NvTreeAdapter {
  using Tree = baselines::NVTree<Key, Value>;
  static constexpr const char* kName = "nvtree";
  static constexpr bool kEvictionSafe = true;
  static constexpr bool kHasCompaction = true;
  static constexpr std::uint64_t kInsertPersists = 2;
  static constexpr std::uint64_t kUpdatePersists = 2;
  static constexpr std::uint64_t kRemovePersists = 2;  // remove appends too
  static constexpr std::uint64_t kSmoPrepKeys = 700;

  static std::unique_ptr<Tree> make(nvm::PmemPool& p) {
    return std::make_unique<Tree>(
        p, typename Tree::Options{.conditional_write = true});
  }
  static std::unique_ptr<Tree> recover(nvm::PmemPool& p) {
    return std::make_unique<Tree>(
        typename Tree::recover_t{}, p,
        typename Tree::Options{.conditional_write = true});
  }
  static std::uint64_t splits(const Tree& t) {
    return t.stats().splits.load(std::memory_order_relaxed);
  }
  static std::uint64_t compactions(const Tree& t) {
    return t.stats().compactions.load(std::memory_order_relaxed);
  }
  /// NVTree removes append log entries, so a remove CAN trigger the
  /// low-occupancy compaction: 8 live keys, then (insert fresh, remove it)
  /// pairs grow the log by one entry per op while live stays at 8.  The op
  /// that finds the log full — a remove, by the stream's parity — compacts.
  static Step compaction_step(std::uint64_t i) {
    if (i < 8) return Step{Step::kInsert, 5 + i * 10, 0xC000 + i};
    if (i % 2 == 1) return Step{Step::kInsert, 1000 + i, 0xC100 + i};
    return Step{Step::kRemove, 1000 + (i - 1), 0};
  }
};

struct WbTreeAdapter {
  using Tree = baselines::WBTree<Key, Value>;
  static constexpr const char* kName = "wbtree";
  static constexpr bool kEvictionSafe = false;  // torn slot line (DESIGN.md)
  static constexpr bool kHasCompaction = true;
  static constexpr std::uint64_t kInsertPersists = 4;
  static constexpr std::uint64_t kUpdatePersists = 4;
  static constexpr std::uint64_t kRemovePersists = 3;
  static constexpr std::uint64_t kSmoPrepKeys = 700;

  static std::unique_ptr<Tree> make(nvm::PmemPool& p) {
    return std::make_unique<Tree>(p);
  }
  static std::unique_ptr<Tree> recover(nvm::PmemPool& p) {
    return std::make_unique<Tree>(typename Tree::recover_t{}, p);
  }
  static std::uint64_t splits(const Tree& t) {
    return t.stats().splits.load(std::memory_order_relaxed);
  }
  static std::uint64_t compactions(const Tree& t) {
    return t.stats().compactions.load(std::memory_order_relaxed);
  }
  /// Out-of-place updates consume log entries until the log fills with 8
  /// live keys — the low-occupancy path compacts in place.
  static Step compaction_step(std::uint64_t i) {
    if (i < 8) return Step{Step::kInsert, 5 + i * 10, 0xC000 + i};
    return Step{Step::kUpdate, 5 + (i % 8) * 10, 0xC100 + i};
  }
};

struct WbTreeSoAdapter {
  using Tree = baselines::WBTreeSO<Key, Value>;
  static constexpr const char* kName = "wbtree-so";
  static constexpr bool kEvictionSafe = true;  // 8-byte atomic slot word
  static constexpr bool kHasCompaction = false;
  static constexpr std::uint64_t kInsertPersists = 2;
  static constexpr std::uint64_t kUpdatePersists = 2;
  static constexpr std::uint64_t kRemovePersists = 1;
  // 7-entry leaves: ~4 keys/leaf after sequential splits; 90 inserts make
  // 20+ leaves.
  static constexpr std::uint64_t kSmoPrepKeys = 90;

  static std::unique_ptr<Tree> make(nvm::PmemPool& p) {
    return std::make_unique<Tree>(p);
  }
  static std::unique_ptr<Tree> recover(nvm::PmemPool& p) {
    return std::make_unique<Tree>(typename Tree::recover_t{}, p);
  }
  static std::uint64_t splits(const Tree& t) {
    return t.stats().splits.load(std::memory_order_relaxed);
  }
  static std::uint64_t compactions(const Tree& t) {
    return t.stats().compactions.load(std::memory_order_relaxed);
  }
  /// No compaction path: the analogue is log-position reuse.  5 live keys
  /// leave 3 free positions among 8; a remove-then-reinsert cycle makes the
  /// reinsert take a position freed by the remove.  Step 12 (an odd cycle
  /// offset) reinserts the key step 11's remove just freed.
  static constexpr std::uint64_t kReuseTargetStep = 12;
  static Step compaction_step(std::uint64_t i) {
    if (i < 5) return Step{Step::kInsert, 5 + i * 10, 0xC000 + i};
    const std::uint64_t k = 5 + ((i - 5) / 2 % 5) * 10;
    if ((i - 5) % 2 == 0) return Step{Step::kRemove, k, 0};
    return Step{Step::kInsert, k, 0xC100 + i};
  }
};

struct FpTreeAdapter {
  using Tree = baselines::FPTree<Key, Value>;
  static constexpr const char* kName = "fptree";
  static constexpr bool kEvictionSafe = true;  // 8-byte atomic bitmap commit
  static constexpr bool kHasCompaction = false;
  static constexpr std::uint64_t kInsertPersists = 3;
  static constexpr std::uint64_t kUpdatePersists = 3;
  static constexpr std::uint64_t kRemovePersists = 1;
  static constexpr std::uint64_t kSmoPrepKeys = 700;

  static std::unique_ptr<Tree> make(nvm::PmemPool& p) {
    return std::make_unique<Tree>(p);
  }
  static std::unique_ptr<Tree> recover(nvm::PmemPool& p) {
    return std::make_unique<Tree>(typename Tree::recover_t{}, p);
  }
  static std::uint64_t splits(const Tree& t) {
    return t.stats().splits.load(std::memory_order_relaxed);
  }
  static std::uint64_t compactions(const Tree& t) {
    return t.stats().compactions.load(std::memory_order_relaxed);
  }
  /// No compaction path: the analogue is bitmap-slot reuse.  Inserts take
  /// the lowest clear bit, so reinserting after a remove reuses the freed
  /// position (new KV + fingerprint over a stale slot).  Step 15 (an odd
  /// cycle offset) reinserts the key step 14's remove just freed.
  static constexpr std::uint64_t kReuseTargetStep = 15;
  static Step compaction_step(std::uint64_t i) {
    if (i < 8) return Step{Step::kInsert, 5 + i * 10, 0xC000 + i};
    const std::uint64_t k = 5 + ((i - 8) / 2 % 8) * 10;
    if ((i - 8) % 2 == 0) return Step{Step::kRemove, k, 0};
    return Step{Step::kInsert, k, 0xC100 + i};
  }
};

}  // namespace rnt::crash_sweep
