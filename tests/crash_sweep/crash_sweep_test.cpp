// Exhaustive crash-point sweep: every tree variant x every mutating op
// class x every tracked NVM event, under strict (kNone) crashes and seeded
// random eviction.  See tests/crash_sweep/harness.hpp for the mechanics and
// EXPERIMENTS.md ("Crash-point sweep") for how to reproduce a failure.
#include <gtest/gtest.h>

#include "crash_sweep/adapters.hpp"
#include "htm/abort_inject.hpp"
#include "htm/smo.hpp"
#include "obs/metrics.hpp"

namespace rnt::crash_sweep {
namespace {

constexpr OpClass kAllClasses[] = {
    OpClass::kInsertNonFull, OpClass::kInsertSplit, OpClass::kInsertInnerSmo,
    OpClass::kUpdate,        OpClass::kRemove,      OpClass::kCompaction,
};

template <class A>
class CrashSweepT : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = nvm::config();
    nvm::config().write_latency_ns = 0;
    nvm::config().per_line_ns = 0;
  }
  void TearDown() override { nvm::config() = saved_; }
  nvm::NvmConfig saved_;
};

struct AdapterNames {
  template <class A>
  static std::string GetName(int) {
    std::string n = A::kName;
    for (char& c : n)
      if (c == '-') c = '_';
    return n;
  }
};

using Adapters =
    ::testing::Types<RnTreeAdapter<true>, RnTreeAdapter<false>, NvTreeAdapter,
                     WbTreeAdapter, WbTreeSoAdapter, FpTreeAdapter>;
TYPED_TEST_SUITE(CrashSweepT, Adapters, AdapterNames);

TYPED_TEST(CrashSweepT, InsertNonFullEveryCrashPoint) {
  sweep_scenario<TypeParam>(make_scenario<TypeParam>(OpClass::kInsertNonFull),
                            nvm::EvictionMode::kNone, 0);
}

TYPED_TEST(CrashSweepT, InsertSplitEveryCrashPoint) {
  sweep_scenario<TypeParam>(make_scenario<TypeParam>(OpClass::kInsertSplit),
                            nvm::EvictionMode::kNone, 0);
}

TYPED_TEST(CrashSweepT, InsertInnerSmoEveryCrashPoint) {
  sweep_scenario<TypeParam>(make_scenario<TypeParam>(OpClass::kInsertInnerSmo),
                            nvm::EvictionMode::kNone, 0);
}

TYPED_TEST(CrashSweepT, UpdateEveryCrashPoint) {
  sweep_scenario<TypeParam>(make_scenario<TypeParam>(OpClass::kUpdate),
                            nvm::EvictionMode::kNone, 0);
}

TYPED_TEST(CrashSweepT, RemoveEveryCrashPoint) {
  sweep_scenario<TypeParam>(make_scenario<TypeParam>(OpClass::kRemove),
                            nvm::EvictionMode::kNone, 0);
}

TYPED_TEST(CrashSweepT, CompactionEveryCrashPoint) {
  sweep_scenario<TypeParam>(make_scenario<TypeParam>(OpClass::kCompaction),
                            nvm::EvictionMode::kNone, 0);
}

TYPED_TEST(CrashSweepT, RandomEvictionAllClasses) {
  if (!TypeParam::kEvictionSafe)
    GTEST_SKIP() << TypeParam::kName
                 << ": full-cache-line slot array cannot survive a torn "
                    "line (documented limitation; swept under kNone only)";
  const std::uint64_t seeds = eviction_seed_count();
  for (const OpClass cls : kAllClasses) {
    const Scenario sc = make_scenario<TypeParam>(cls);
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      sweep_scenario<TypeParam>(sc, nvm::EvictionMode::kRandomEviction, seed);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// The sweep counters land in the process metrics registry, so a sweep run
// is visible to the same export path the benches use.
TEST(CrashSweepObs, CountersAreRegistered) {
  const std::uint64_t before = sweep_obs().crash_points.value();
  using A = RnTreeAdapter<true>;
  sweep_scenario<A>(make_scenario<A>(OpClass::kInsertNonFull),
                    nvm::EvictionMode::kNone, 0);
  const obs::Snapshot snap = obs::snapshot();
  EXPECT_GT(snap.counter("sweep.crash_points"), before);
  EXPECT_GT(snap.counter("sweep.recoveries"), 0u);
  EXPECT_GT(snap.counter("sweep.events"), 0u);
  EXPECT_GT(snap.counter("sweep.persist_gate_checks"), 0u);
}

// ---------------------------------------------------------------------------
// COW SMO install sweep.  The typed InsertInnerSmoEveryCrashPoint above
// already covers the COW install (cow_smo defaults on); these pin the two
// variants it no longer reaches:
//  - the install transaction racing INTO the fallback acquisition: scripted
//    aborts (conflict, conflict, capacity) force every install through the
//    retry tiers and onto the lock path while the leaf split's persists are
//    in flight — then crash at every tracked NVM event.  Injection cannot
//    change the event count: the inner rebuild touches no NVM and the
//    "committed" attempt runs exactly once either way.
//  - the pre-COW serialized SMO path (cow_smo=false), kept as the
//    before/after baseline.
// ---------------------------------------------------------------------------

struct RnTreeLegacySmoAdapter : RnTreeAdapter<true> {
  static constexpr const char* kName = "rntree-legacy-smo";
  static std::unique_ptr<Tree> make(nvm::PmemPool& p) {
    return std::make_unique<Tree>(
        p, typename Tree::Options{.dual_slot = true, .cow_smo = false});
  }
  static std::unique_ptr<Tree> recover(nvm::PmemPool& p) {
    return std::make_unique<Tree>(
        typename Tree::recover_t{}, p,
        typename Tree::Options{.dual_slot = true, .cow_smo = false});
  }
};

using CrashSweepCowSmo = CrashSweepT<RnTreeAdapter<true>>;

TEST_F(CrashSweepCowSmo, InstallRacingFallbackEveryCrashPoint) {
  using A = RnTreeAdapter<true>;
  htm::ScriptedAbortInjector script({htm::AbortCause::kConflict,
                                     htm::AbortCause::kConflict,
                                     htm::AbortCause::kCapacity});
  htm::SmoTargetedInjector smo_only(script);
  htm::ScopedAbortInjector scope(&smo_only);
  sweep_scenario<A>(make_scenario<A>(OpClass::kInsertInnerSmo),
                    nvm::EvictionMode::kNone, 0);
  EXPECT_GT(script.injected(), 0u)
      << "no install transaction saw the scripted abort schedule";
}

TEST_F(CrashSweepCowSmo, InstallRacingFallbackRandomEviction) {
  using A = RnTreeAdapter<true>;
  htm::ScriptedAbortInjector script({htm::AbortCause::kConflict,
                                     htm::AbortCause::kConflict,
                                     htm::AbortCause::kCapacity});
  htm::SmoTargetedInjector smo_only(script);
  htm::ScopedAbortInjector scope(&smo_only);
  sweep_scenario<A>(make_scenario<A>(OpClass::kInsertInnerSmo),
                    nvm::EvictionMode::kRandomEviction, 3);
  EXPECT_GT(script.injected(), 0u);
}

TEST_F(CrashSweepCowSmo, LegacySmoPathEveryCrashPoint) {
  using A = RnTreeLegacySmoAdapter;
  sweep_scenario<A>(make_scenario<A>(OpClass::kInsertInnerSmo),
                    nvm::EvictionMode::kNone, 0);
}

// ---------------------------------------------------------------------------
// close() sweep: crash at every event of the shutdown path itself.  A crash
// before the clean flag's persist must leave the pool dirty (full crash
// recovery); the final event completes the clean shutdown.  Either way no
// committed key may be lost.
// ---------------------------------------------------------------------------

template <class A>
void sweep_close(nvm::EvictionMode mode, std::uint64_t seed) {
  // 40 spaced keys: two+ leaves for RNTree-sized nodes, several for small
  // ones — the close loop then has per-leaf flush events to crash inside.
  std::vector<Step> prep;
  for (std::uint64_t i = 0; i < 40; ++i)
    prep.push_back(Step{Step::kInsert, 10 + i * 3, 0xD000 + i});

  std::uint64_t events = 0;
  {
    nvm::PmemPool pool(kPoolBytes);
    auto tree = A::make(pool);
    Model m;
    for (const Step& s : prep) apply_step(*tree, m, s);
    nvm::ShadowPool shadow(pool);
    tree->close();
    events = shadow.events_seen();
  }
  ASSERT_GT(events, 0u);

  for (std::uint64_t n = 1; n <= events; ++n) {
    const std::string ctx = std::string(A::kName) + "/close crash_at=" +
                            std::to_string(n) + " seed=" + std::to_string(seed);
    nvm::PmemPool pool(kPoolBytes);
    Model m;
    {
      auto tree = A::make(pool);
      for (const Step& s : prep) apply_step(*tree, m, s);
      nvm::ShadowPool shadow(pool);
      shadow.schedule_crash_after(n);
      bool crashed = false;
      try {
        tree->close();
      } catch (const nvm::CrashPoint&) {
        crashed = true;
      }
      ASSERT_TRUE(crashed) << ctx;
      tree.reset();
      shadow.simulate_crash(mode, seed);
    }
    pool.reopen_volatile();
    std::unique_ptr<typename A::Tree> rec;
    try {
      rec = A::recover(pool);
    } catch (const std::exception& e) {
      FAIL() << ctx << ": recovery threw: " << e.what();
    }
    const Step no_pending{Step::kRemove, ~std::uint64_t{0}, 0};
    verify_recovered<A>(*rec, pool, m, no_pending, false, ctx);
  }
}

TEST(CrashSweepClose, RnTreeDualEveryCrashPoint) {
  sweep_close<RnTreeAdapter<true>>(nvm::EvictionMode::kNone, 0);
}

TEST(CrashSweepClose, RnTreeSingleEveryCrashPoint) {
  sweep_close<RnTreeAdapter<false>>(nvm::EvictionMode::kNone, 0);
}

TEST(CrashSweepClose, WbTreeSoEveryCrashPoint) {
  sweep_close<WbTreeSoAdapter>(nvm::EvictionMode::kNone, 0);
}

TEST(CrashSweepClose, RnTreeDualRandomEviction) {
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    sweep_close<RnTreeAdapter<true>>(nvm::EvictionMode::kRandomEviction, seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Double crash: crash mid-split, then crash RECOVERY at every one of its
// tracked events, then recover again.  Pins that undo rollback is
// idempotent — a half-applied rollback (including torn leaves under
// eviction) is re-applied safely on the next attempt.
// ---------------------------------------------------------------------------

template <class A>
void sweep_double_crash(nvm::EvictionMode mode, std::uint64_t seed) {
  const Scenario sc = make_scenario<A>(OpClass::kInsertSplit);
  const CountResult r = count_events<A>(sc);
  ASSERT_GE(r.split_delta, 1u);

  for (std::uint64_t n1 = 1; n1 <= r.events; ++n1) {
    // First pass with this n1: count recovery's own tracked events.
    std::uint64_t rec_events = 0;
    {
      nvm::PmemPool pool(kPoolBytes);
      {
        auto tree = A::make(pool);
        Model m;
        for (const Step& s : sc.prep) apply_step(*tree, m, s);
        nvm::ShadowPool shadow(pool);
        shadow.schedule_crash_after(n1);
        try {
          apply_step_tree_only(*tree, sc.target);
        } catch (const nvm::CrashPoint&) {
        }
        tree.reset();
        shadow.simulate_crash(mode, seed);
      }
      pool.reopen_volatile();
      nvm::ShadowPool shadow(pool);
      auto rec = A::recover(pool);
      rec_events = shadow.events_seen();
    }
    if (rec_events == 0) continue;  // no undo was active at this crash point

    for (std::uint64_t n2 = 1; n2 <= rec_events; ++n2) {
      const std::string ctx = std::string(A::kName) +
                              "/double-crash n1=" + std::to_string(n1) +
                              " n2=" + std::to_string(n2) +
                              " seed=" + std::to_string(seed);
      nvm::PmemPool pool(kPoolBytes);
      Model m;
      bool pending_applies = false;
      {
        auto tree = A::make(pool);
        for (const Step& s : sc.prep) apply_step(*tree, m, s);
        nvm::ShadowPool shadow(pool);
        shadow.schedule_crash_after(n1);
        pending_applies = step_applies(m, sc.target);
        try {
          apply_step_tree_only(*tree, sc.target);
        } catch (const nvm::CrashPoint&) {
        }
        tree.reset();
        shadow.simulate_crash(mode, seed);
      }
      pool.reopen_volatile();
      {
        nvm::ShadowPool shadow(pool);
        shadow.schedule_crash_after(n2);
        bool crashed = false;
        try {
          auto rec = A::recover(pool);
        } catch (const nvm::CrashPoint&) {
          crashed = true;
        }
        ASSERT_TRUE(crashed) << ctx << ": recovery crash point not reached";
        shadow.simulate_crash(mode, seed ^ 0x5A5A);
        sweep_obs().crash_points.inc();
      }
      pool.reopen_volatile();
      std::unique_ptr<typename A::Tree> rec;
      try {
        rec = A::recover(pool);
      } catch (const std::exception& e) {
        FAIL() << ctx << ": second recovery threw: " << e.what();
      }
      sweep_obs().recoveries.inc();
      verify_recovered<A>(*rec, pool, m, sc.target, pending_applies, ctx);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(CrashSweepDoubleCrash, RnTreeDualStrict) {
  sweep_double_crash<RnTreeAdapter<true>>(nvm::EvictionMode::kNone, 0);
}

TEST(CrashSweepDoubleCrash, RnTreeDualRandomEviction) {
  sweep_double_crash<RnTreeAdapter<true>>(nvm::EvictionMode::kRandomEviction, 7);
}

TEST(CrashSweepDoubleCrash, WbTreeSoStrict) {
  sweep_double_crash<WbTreeSoAdapter>(nvm::EvictionMode::kNone, 0);
}

// Forces every recovery in the double-crash sweep through the multi-worker
// rebuild (recovery_workers=4 disables the small-tree serial threshold, and
// explicit counts are clamped only by 64-leaf blocks, not host cores).  The
// sweep's trees are ~20 leaves, so all workers race over one block — small,
// but the parallel partition/merge machinery and its rollback still run at
// every crash-during-recovery point, pinning idempotence of the parallel
// path specifically.
struct RnTreeParallelRecoveryAdapter : RnTreeAdapter<true> {
  static constexpr const char* kName = "rntree-parallel-recovery";
  static std::unique_ptr<Tree> recover(nvm::PmemPool& p) {
    return std::make_unique<Tree>(
        typename Tree::recover_t{}, p,
        typename Tree::Options{.dual_slot = true, .recovery_workers = 4});
  }
};

TEST(CrashSweepDoubleCrash, RnTreeDualParallelRecoveryStrict) {
  sweep_double_crash<RnTreeParallelRecoveryAdapter>(nvm::EvictionMode::kNone,
                                                    0);
}

TEST(CrashSweepDoubleCrash, RnTreeDualParallelRecoveryRandomEviction) {
  sweep_double_crash<RnTreeParallelRecoveryAdapter>(
      nvm::EvictionMode::kRandomEviction, 11);
}

// ---------------------------------------------------------------------------
// Fresh-construction sweep: crash at every event of building a tree on a
// fresh pool.  Because mark_dirty() precedes the first mutation, every
// outcome is either a recoverable empty tree or a pool with no root yet —
// never a half-initialised root that recovery trusts.
// ---------------------------------------------------------------------------

TEST(CrashSweepFreshCtor, RnTreeDualEveryCrashPoint) {
  using A = RnTreeAdapter<true>;
  std::uint64_t events = 0;
  {
    nvm::PmemPool pool(kPoolBytes);
    nvm::ShadowPool shadow(pool);
    auto tree = A::make(pool);
    events = shadow.events_seen();
  }
  ASSERT_GT(events, 0u);
  for (std::uint64_t n = 1; n <= events; ++n) {
    const std::string ctx = "fresh-ctor crash_at=" + std::to_string(n);
    nvm::PmemPool pool(kPoolBytes);
    {
      nvm::ShadowPool shadow(pool);
      shadow.schedule_crash_after(n);
      bool crashed = false;
      try {
        auto tree = A::make(pool);
      } catch (const nvm::CrashPoint&) {
        crashed = true;
      }
      ASSERT_TRUE(crashed) << ctx;
      shadow.simulate_crash(nvm::EvictionMode::kNone, 0);
    }
    pool.reopen_volatile();
    // Crash ON the mark_dirty store itself (n == 1, lost under kNone) may
    // reopen clean — legal only while the pool is still untouched.  From
    // the dirty-flag's fence onward the reopen must be dirty.
    if (pool.clean_shutdown()) {
      EXPECT_EQ(pool.root(0), 0u)
          << ctx << ": pool reopened clean after construction mutated it";
    }
    std::unique_ptr<A::Tree> rec;
    try {
      rec = A::recover(pool);
    } catch (const std::exception&) {
      // Root never became durable: the tree never existed; acceptable
      // because nothing was acknowledged.
      continue;
    }
    const Step no_pending{Step::kRemove, ~std::uint64_t{0}, 0};
    verify_recovered<A>(*rec, pool, Model{}, no_pending, false, ctx);
  }
}

}  // namespace
}  // namespace rnt::crash_sweep
