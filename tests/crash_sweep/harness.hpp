// Crash-point sweep driver (tests/crash_sweep).
//
// For a (tree, operation-class) pair the harness:
//
//   1. builds a deterministic Scenario — a prep op list and one target op —
//      via calibration runs when the class needs a structural trigger
//      (split / inner SMO / compaction),
//   2. counts the target op's tracked NVM events with a ShadowPool attached
//      and no crash scheduled, asserting the class's structural expectation
//      (split happened / did not happen, compaction happened) and, for
//      non-SMO classes, the Table-1 persistent-instruction count,
//   3. replays the scenario once per crash point n in [1, events]: fresh
//      pool, prep without the shadow (prep state becomes the durable
//      baseline at attach time), attach shadow, schedule_crash_after(n),
//      run the target op, catch CrashPoint, simulate the crash (kNone or
//      seeded kRandomEviction), reopen the pool, recover, and check the
//      shared invariant oracle (invariants.hpp).
//
// Prep runs without the shadow on purpose: it is deterministic, so the
// target op's event count is identical across replays, and skipping
// per-line tracking for hundreds of prep ops keeps the full sweep fast
// enough for CI.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "crash_sweep/invariants.hpp"
#include "nvm/persist.hpp"
#include "nvm/pool.hpp"
#include "nvm/shadow.hpp"
#include "obs/metrics.hpp"

namespace rnt::crash_sweep {

inline constexpr std::size_t kPoolBytes = std::size_t{2} << 20;

enum class OpClass {
  kInsertNonFull,  ///< insert into a non-full leaf
  kInsertSplit,    ///< insert that triggers a leaf split
  kInsertInnerSmo, ///< insert that splits a leaf of a height>=2 tree
  kUpdate,         ///< update of an existing key
  kRemove,         ///< remove of an existing key
  kCompaction,     ///< op that triggers compaction (or, for trees without a
                   ///< compaction path, reuses a freed log position)
};

inline const char* op_class_name(OpClass c) {
  switch (c) {
    case OpClass::kInsertNonFull: return "insert-nonfull";
    case OpClass::kInsertSplit: return "insert-split";
    case OpClass::kInsertInnerSmo: return "insert-inner-smo";
    case OpClass::kUpdate: return "update";
    case OpClass::kRemove: return "remove";
    case OpClass::kCompaction: return "compaction";
  }
  return "?";
}

struct Step {
  enum Kind { kInsert, kUpdate, kRemove } kind;
  Key key;
  Value value;
};

struct Scenario {
  OpClass cls;
  std::vector<Step> prep;
  Step target;
};

/// Whether @p s would succeed against the committed model (conditional-op
/// semantics shared by every tree under test).
inline bool step_applies(const Model& m, const Step& s) {
  switch (s.kind) {
    case Step::kInsert: return m.count(s.key) == 0;
    case Step::kUpdate: return m.count(s.key) != 0;
    case Step::kRemove: return m.count(s.key) != 0;
  }
  return false;
}

template <class Tree>
void apply_step(Tree& t, Model& m, const Step& s) {
  switch (s.kind) {
    case Step::kInsert:
      if (t.insert(s.key, s.value)) m[s.key] = s.value;
      break;
    case Step::kUpdate:
      if (t.update(s.key, s.value)) m[s.key] = s.value;
      break;
    case Step::kRemove:
      if (t.remove(s.key)) m.erase(s.key);
      break;
  }
}

template <class Tree>
void apply_step_tree_only(Tree& t, const Step& s) {
  switch (s.kind) {
    case Step::kInsert: (void)t.insert(s.key, s.value); break;
    case Step::kUpdate: (void)t.update(s.key, s.value); break;
    case Step::kRemove: (void)t.remove(s.key); break;
  }
}

// Sweep-wide counters in the process metrics registry: bench/CI exports
// pick these up, so a sweep run doubles as a machine-readable record of how
// many crash points and recoveries were actually exercised.
struct SweepObs {
  obs::Counter crash_points{"sweep.crash_points"};
  obs::Counter recoveries{"sweep.recoveries"};
  obs::Counter events{"sweep.events"};
  obs::Counter persist_gate_checks{"sweep.persist_gate_checks"};
};

inline SweepObs& sweep_obs() {
  static SweepObs o;
  return o;
}

/// kRandomEviction seeds per sweep; RNT_SWEEP_SEEDS overrides (CI pins 4).
inline std::uint64_t eviction_seed_count() {
  if (const char* s = std::getenv("RNT_SWEEP_SEEDS")) {
    const long v = std::atol(s);
    if (v > 0) return static_cast<std::uint64_t>(v);
  }
  return 4;
}

// ---------------------------------------------------------------------------
// Scenario construction
// ---------------------------------------------------------------------------

inline Step seq_insert_step(std::uint64_t i) {
  return Step{Step::kInsert, 1000 + i * 2, 0x5EED0000 + i};
}

/// Calibrate an insert-split scenario: after @p base_inserts sequential
/// inserts (optionally requiring height >= 2 first), keep inserting until
/// one insert triggers a split — that insert is the target.
template <class A>
Scenario calibrate_split_scenario(OpClass cls, std::uint64_t base_inserts) {
  Scenario sc;
  sc.cls = cls;
  nvm::PmemPool pool(kPoolBytes);
  auto tree = A::make(pool);
  Model m;
  std::uint64_t i = 0;
  for (; i < base_inserts; ++i) {
    const Step s = seq_insert_step(i);
    apply_step(*tree, m, s);
    sc.prep.push_back(s);
  }
  if (cls == OpClass::kInsertInnerSmo && tree->height() < 2)
    throw std::logic_error("SMO calibration: prep did not reach height 2");
  for (;; ++i) {
    if (i > base_inserts + 100000)
      throw std::logic_error("split calibration did not converge");
    const std::uint64_t s0 = A::splits(*tree);
    const Step s = seq_insert_step(i);
    apply_step(*tree, m, s);
    if (A::splits(*tree) > s0) {
      sc.target = s;
      return sc;
    }
    sc.prep.push_back(s);
  }
}

/// Calibrate a compaction scenario from the adapter's op stream: run steps
/// until one increments the compaction counter — that step is the target.
template <class A>
Scenario calibrate_compaction_scenario() {
  Scenario sc;
  sc.cls = OpClass::kCompaction;
  nvm::PmemPool pool(kPoolBytes);
  auto tree = A::make(pool);
  Model m;
  for (std::uint64_t i = 0;; ++i) {
    if (i > 5000)
      throw std::logic_error("compaction calibration did not converge");
    const std::uint64_t c0 = A::compactions(*tree);
    const Step s = A::compaction_step(i);
    apply_step(*tree, m, s);
    if (A::compactions(*tree) > c0) {
      sc.target = s;
      return sc;
    }
    sc.prep.push_back(s);
  }
}

template <class A>
Scenario make_scenario(OpClass cls) {
  Scenario sc;
  sc.cls = cls;
  switch (cls) {
    case OpClass::kInsertNonFull:
    case OpClass::kUpdate:
    case OpClass::kRemove: {
      // Five spaced keys: below even WBTreeSO's 7-entry live capacity, so
      // the target is guaranteed to land in a non-full leaf for every tree
      // (asserted by the count pass's no-split check).
      for (std::uint64_t i = 0; i < 5; ++i)
        sc.prep.push_back(Step{Step::kInsert, 100 + i * 10, 0xA000 + i});
      if (cls == OpClass::kInsertNonFull)
        sc.target = Step{Step::kInsert, 155, 0xB001};
      else if (cls == OpClass::kUpdate)
        sc.target = Step{Step::kUpdate, 130, 0xB002};
      else
        sc.target = Step{Step::kRemove, 130, 0};
      return sc;
    }
    case OpClass::kInsertSplit:
      return calibrate_split_scenario<A>(cls, 0);
    case OpClass::kInsertInnerSmo:
      return calibrate_split_scenario<A>(cls, A::kSmoPrepKeys);
    case OpClass::kCompaction:
      if constexpr (A::kHasCompaction) {
        return calibrate_compaction_scenario<A>();
      } else {
        // No compaction path in this tree: the class instead exercises
        // reuse of a log position / bitmap slot freed by a remove — the
        // adapter's stream ends on a remove and the target reinserts.
        for (std::uint64_t i = 0; i < A::kReuseTargetStep; ++i)
          sc.prep.push_back(A::compaction_step(i));
        sc.target = A::compaction_step(A::kReuseTargetStep);
        return sc;
      }
  }
  return sc;
}

// ---------------------------------------------------------------------------
// Count pass + per-crash-point replay
// ---------------------------------------------------------------------------

struct CountResult {
  std::uint64_t events = 0;
  std::uint64_t persists = 0;
  std::uint64_t split_delta = 0;
  std::uint64_t compaction_delta = 0;
  int height = 0;
};

template <class A>
CountResult count_events(const Scenario& sc) {
  nvm::PmemPool pool(kPoolBytes);
  auto tree = A::make(pool);
  Model m;
  for (const Step& s : sc.prep) apply_step(*tree, m, s);
  const std::uint64_t splits0 = A::splits(*tree);
  const std::uint64_t comps0 = A::compactions(*tree);
  nvm::ShadowPool shadow(pool);
  const nvm::PersistStats before = nvm::tls_stats();
  apply_step(*tree, m, sc.target);
  const nvm::PersistStats d = nvm::tls_stats() - before;
  CountResult r;
  r.events = shadow.events_seen();
  r.persists = d.persist;
  r.split_delta = A::splits(*tree) - splits0;
  r.compaction_delta = A::compactions(*tree) - comps0;
  r.height = tree->height();
  return r;
}

/// Assert the class's structural expectation and the Table-1 persistent-
/// instruction count against the count pass's measurements.
template <class A>
void check_class_expectations(const Scenario& sc, const CountResult& r) {
  const std::string ctx =
      std::string(A::kName) + "/" + op_class_name(sc.cls);
  ASSERT_GT(r.events, 0u) << ctx << ": target op tracked no NVM events";
  switch (sc.cls) {
    case OpClass::kInsertNonFull:
    case OpClass::kUpdate:
    case OpClass::kRemove: {
      ASSERT_EQ(r.split_delta, 0u) << ctx << ": unexpected split";
      ASSERT_EQ(r.compaction_delta, 0u) << ctx << ": unexpected compaction";
      // The Table-1 regression gate: these op classes ARE the paper's
      // per-modify persistent-instruction counts.
      const std::uint64_t expected =
          sc.cls == OpClass::kInsertNonFull ? A::kInsertPersists
          : sc.cls == OpClass::kUpdate      ? A::kUpdatePersists
                                            : A::kRemovePersists;
      EXPECT_EQ(r.persists, expected)
          << ctx << ": Table-1 persistent-instruction count regressed";
      sweep_obs().persist_gate_checks.inc();
      break;
    }
    case OpClass::kInsertSplit:
      ASSERT_GE(r.split_delta, 1u) << ctx << ": target did not split";
      break;
    case OpClass::kInsertInnerSmo:
      ASSERT_GE(r.split_delta, 1u) << ctx << ": target did not split";
      ASSERT_GE(r.height, 2) << ctx << ": tree not tall enough for an SMO";
      break;
    case OpClass::kCompaction:
      if (A::kHasCompaction) {
        ASSERT_GE(r.compaction_delta, 1u) << ctx << ": target did not compact";
      }
      break;
  }
}

template <class A>
void verify_recovered(typename A::Tree& t, nvm::PmemPool& pool,
                      const Model& committed, const Step& pending,
                      bool pending_applies, const std::string& ctx);

/// One crash point: replay prep, crash the target at event @p n, recover,
/// check the oracle.  All failure output carries the tree / class / crash
/// point / mode / seed needed to reproduce the case in isolation.
template <class A>
void run_crash_point(const Scenario& sc, std::uint64_t n,
                     nvm::EvictionMode mode, std::uint64_t seed) {
  const std::string ctx = std::string(A::kName) + "/" +
                          op_class_name(sc.cls) + " crash_at=" +
                          std::to_string(n) + " mode=" +
                          (mode == nvm::EvictionMode::kNone ? "kNone"
                                                            : "kRandomEviction") +
                          " seed=" + std::to_string(seed);
  nvm::PmemPool pool(kPoolBytes);
  Model m;
  Step pending{};
  bool pending_applies = false;
  {
    auto tree = A::make(pool);
    for (const Step& s : sc.prep) apply_step(*tree, m, s);
    nvm::ShadowPool shadow(pool);
    shadow.schedule_crash_after(n);
    pending = sc.target;
    pending_applies = step_applies(m, sc.target);
    bool crashed = false;
    try {
      apply_step_tree_only(*tree, sc.target);
    } catch (const nvm::CrashPoint&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed) << ctx << ": crash point beyond the op's events";
    tree.reset();  // volatile tree state dies with the process
    shadow.simulate_crash(mode, seed);
    sweep_obs().crash_points.inc();
  }
  pool.reopen_volatile();

  std::unique_ptr<typename A::Tree> rec;
  try {
    rec = A::recover(pool);
  } catch (const std::exception& e) {
    FAIL() << ctx << ": recovery threw: " << e.what();
  }
  sweep_obs().recoveries.inc();
  verify_recovered<A>(*rec, pool, m, pending, pending_applies, ctx);
}

/// The shared invariant oracle applied to a recovered tree.
template <class A>
void verify_recovered(typename A::Tree& t, nvm::PmemPool& pool,
                      const Model& committed, const Step& pending,
                      bool pending_applies, const std::string& ctx) {
  Model got;
  try {
    got = collect_chain<typename A::Tree::Leaf>(pool);
  } catch (const std::exception& e) {
    FAIL() << ctx << ": " << e.what();
  }

  // Committed effects are durable; nothing uncommitted is visible.
  for (const auto& [k, v] : committed) {
    if (k == pending.key) continue;
    auto it = got.find(k);
    ASSERT_TRUE(it != got.end()) << ctx << ": committed key " << k << " lost";
    ASSERT_EQ(it->second, v) << ctx << ": committed key " << k << " has wrong value";
  }
  for (const auto& [k, v] : got) {
    if (k == pending.key) continue;
    auto it = committed.find(k);
    ASSERT_TRUE(it != committed.end())
        << ctx << ": uncommitted key " << k << " visible after recovery";
    ASSERT_EQ(it->second, v);
  }

  // The in-flight op is all-or-nothing.
  {
    auto it = got.find(pending.key);
    const bool present = it != got.end();
    const auto old_it = committed.find(pending.key);
    const bool had_old = old_it != committed.end();
    switch (pending.kind) {
      case Step::kInsert:
        if (pending_applies) {
          ASSERT_TRUE(!present || it->second == pending.value)
              << ctx << ": torn in-flight insert";
        } else {
          ASSERT_TRUE(present && had_old && it->second == old_it->second)
              << ctx << ": failed conditional insert mutated state";
        }
        break;
      case Step::kUpdate:
        if (pending_applies) {
          ASSERT_TRUE(present) << ctx << ": in-flight update lost the key";
          ASSERT_TRUE(it->second == pending.value ||
                      (had_old && it->second == old_it->second))
              << ctx << ": torn in-flight update";
        } else {
          ASSERT_FALSE(present) << ctx << ": failed update materialised a key";
        }
        break;
      case Step::kRemove:
        if (pending_applies) {
          ASSERT_TRUE(!present || (had_old && it->second == old_it->second))
              << ctx << ": torn in-flight remove";
        } else {
          ASSERT_FALSE(present) << ctx << ": failed remove materialised a key";
        }
        break;
    }
  }

  // The recovered volatile index (inner tree) agrees with the persistent
  // chain: point lookups and the live-entry size both go through it.
  ASSERT_EQ(t.size(), got.size()) << ctx << ": recovered size() diverges";
  for (const auto& [k, v] : got) {
    auto r = t.find(k);
    ASSERT_TRUE(r.has_value()) << ctx << ": find(" << k << ") missed after recovery";
    ASSERT_EQ(*r, v) << ctx << ": find(" << k << ") wrong value after recovery";
  }
}

/// Full sweep: every crash point n in [1, events] for the given mode/seed.
template <class A>
void sweep_scenario(const Scenario& sc, nvm::EvictionMode mode,
                    std::uint64_t seed) {
  const CountResult r = count_events<A>(sc);
  {
    SCOPED_TRACE("count pass");
    check_class_expectations<A>(sc, r);
    if (::testing::Test::HasFatalFailure()) return;
  }
  sweep_obs().events.inc(r.events);
  for (std::uint64_t n = 1; n <= r.events; ++n) {
    run_crash_point<A>(sc, n, mode, seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace rnt::crash_sweep
