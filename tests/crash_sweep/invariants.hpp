// Shared crash-recovery invariant oracle for the crash-point sweep
// (tests/crash_sweep).  After every simulated crash + recovery the harness
// checks, through one code path shared by all five trees:
//
//   1. every committed key is present with its committed value,
//   2. no uncommitted key is visible (the in-flight op is all-or-nothing),
//   3. the tree is structurally valid (per-leaf representation invariants,
//      within-leaf key sortedness and uniqueness),
//   4. the leaf list is connected (terminates without cycles, high_key
//      separators strictly increase, every key sits inside its leaf's
//      [prev_high, high) range),
//   5. the pool allocator is consistent (every reachable leaf lies inside
//      the allocated region at cache-line alignment).
//
// Each tree specializes only the per-leaf "live entries + representation
// check" extractor (an overload of live_of below); everything else is
// shared.  Violations throw std::logic_error — the harness catches and
// converts them into gtest failures annotated with the crash point,
// eviction mode, and seed that produced them.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "baselines/fptree.hpp"
#include "baselines/nvtree.hpp"
#include "baselines/wbtree.hpp"
#include "common/cacheline.hpp"
#include "core/rn_leaf.hpp"
#include "core/slot_util.hpp"
#include "nvm/pool.hpp"

namespace rnt::crash_sweep {

using Key = std::uint64_t;
using Value = std::uint64_t;
using Model = std::map<Key, Value>;
using Kv = std::pair<Key, Value>;

[[noreturn]] inline void violation(const std::string& what) {
  throw std::logic_error("invariant violation: " + what);
}

// ---------------------------------------------------------------------------
// Per-leaf live-entry extractors (the per-tree oracle specializations).
// Each returns the leaf's live entries in key order and throws on any
// representation violation.
// ---------------------------------------------------------------------------

inline std::vector<Kv> live_of(const core::RnLeaf<Key, Value>& l) {
  using Leaf = core::RnLeaf<Key, Value>;
  const int count = l.pslot[0];
  if (count > static_cast<int>(core::kSlotCap))
    violation("RnLeaf: slot count exceeds capacity");
  std::uint64_t seen = 0;
  std::vector<Kv> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const std::uint32_t idx = l.pslot[1 + i];
    if (idx >= Leaf::kLogCap) violation("RnLeaf: slot index beyond log cap");
    if ((seen >> idx) & 1) violation("RnLeaf: duplicate log index in slot array");
    seen |= std::uint64_t{1} << idx;
    out.emplace_back(l.logs[idx].key, l.logs[idx].value);
  }
  return out;
}

inline std::vector<Kv> live_of(const baselines::WbLeaf<Key, Value>& l) {
  using Leaf = baselines::WbLeaf<Key, Value>;
  if (l.valid.load(std::memory_order_relaxed) != 1)
    violation("WbLeaf: valid flag not restored to 1 after recovery");
  const int count = l.pslot[0];
  if (count > static_cast<int>(core::kSlotCap))
    violation("WbLeaf: slot count exceeds capacity");
  std::uint64_t seen = 0;
  std::vector<Kv> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const std::uint32_t idx = l.pslot[1 + i];
    if (idx >= Leaf::kLogCap) violation("WbLeaf: slot index beyond log cap");
    if ((seen >> idx) & 1) violation("WbLeaf: duplicate log index in slot array");
    seen |= std::uint64_t{1} << idx;
    out.emplace_back(l.logs[idx].key, l.logs[idx].value);
  }
  return out;
}

inline std::vector<Kv> live_of(const baselines::WbSoLeaf<Key, Value>& l) {
  using Leaf = baselines::WbSoLeaf<Key, Value>;
  std::uint8_t slot[8];
  Leaf::unpack(l.slot_word.load(std::memory_order_relaxed), slot);
  const int count = slot[0];
  if (count > static_cast<int>(Leaf::kLiveCap))
    violation("WbSoLeaf: slot count exceeds live capacity");
  std::uint64_t seen = 0;
  std::vector<Kv> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const std::uint32_t idx = slot[1 + i];
    if (idx >= Leaf::kLogCap) violation("WbSoLeaf: slot index beyond log cap");
    if ((seen >> idx) & 1) violation("WbSoLeaf: duplicate log index in slot word");
    seen |= std::uint64_t{1} << idx;
    out.emplace_back(l.logs[idx].key, l.logs[idx].value);
  }
  return out;
}

inline std::vector<Kv> live_of(const baselines::NvLeaf<Key, Value>& l) {
  using Leaf = baselines::NvLeaf<Key, Value>;
  const std::uint64_t n = l.n_element.load(std::memory_order_relaxed);
  if (n > Leaf::kLogCap) violation("NvLeaf: nElement exceeds log capacity");
  // Every entry below nElement was persisted before the counter moved past
  // it, so its flag must be a well-formed op tag (a torn/garbage entry here
  // means the counter got ahead of the data).
  Model live;
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto& e = l.logs[i];
    if (e.flag == Leaf::kInsertLog)
      live[e.key] = e.value;  // newest wins front-to-back
    else if (e.flag == Leaf::kRemoveLog)
      live.erase(e.key);
    else
      violation("NvLeaf: log entry below nElement has invalid op flag");
  }
  return {live.begin(), live.end()};
}

inline std::vector<Kv> live_of(const baselines::FpLeaf<Key, Value>& l) {
  using Leaf = baselines::FpLeaf<Key, Value>;
  std::uint64_t bm = l.bitmap.load(std::memory_order_relaxed);
  Model live;
  while (bm != 0) {
    const int i = __builtin_ctzll(bm);
    bm &= bm - 1;
    if (l.fp[i] != Leaf::fingerprint(l.logs[i].key))
      violation("FpLeaf: fingerprint does not match key at occupied slot");
    if (!live.emplace(l.logs[i].key, l.logs[i].value).second)
      violation("FpLeaf: duplicate key within leaf bitmap");
  }
  return {live.begin(), live.end()};
}

// ---------------------------------------------------------------------------
// Shared chain walk: connectivity, bounds, allocator consistency.  Returns
// the union of all live entries, keyed — the recovered tree's ground truth.
// ---------------------------------------------------------------------------

template <class Leaf>
Model collect_chain(nvm::PmemPool& pool, int root_slot = 0) {
  const std::uint64_t root = pool.root(root_slot);
  if (root == 0) violation("pool root slot is empty");
  Model all;
  Key prev_high = 0;
  bool have_prev_high = false;
  std::size_t steps = 0;
  for (std::uint64_t off = root; off != 0;) {
    if (++steps > (std::size_t{1} << 20))
      violation("leaf chain does not terminate (cycle?)");
    if (off % kCacheLineSize != 0)
      violation("leaf offset not cache-line aligned");
    if (off < nvm::PmemPool::data_begin())
      violation("leaf offset inside the pool header/undo area");
    if (off + sizeof(Leaf) > pool.bytes_used())
      violation("leaf lies beyond the allocated pool region");
    const Leaf* l = pool.ptr<Leaf>(off);
    const bool has_high = l->has_high.load(std::memory_order_relaxed) != 0;
    const Key high = l->high_key.load(std::memory_order_relaxed);
    const std::uint64_t next = l->next.load(std::memory_order_relaxed);
    if (has_high && next == 0)
      violation("leaf has a high_key but no right sibling");
    if (!has_high && next != 0)
      violation("chain leaf missing its high_key separator");
    const std::vector<Kv> live = live_of(*l);
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (i > 0 && !(live[i - 1].first < live[i].first))
        violation("keys not strictly increasing within leaf");
      if (have_prev_high && live[i].first < prev_high)
        violation("key below its leaf's lower bound");
      if (has_high && !(live[i].first < high))
        violation("key at/above its leaf's high_key");
      if (!all.emplace(live[i].first, live[i].second).second)
        violation("duplicate key across leaves");
    }
    if (has_high) {
      if (have_prev_high && !(prev_high < high))
        violation("high_key separators not strictly increasing");
      prev_high = high;
      have_prev_high = true;
    }
    off = next;
  }
  return all;
}

}  // namespace rnt::crash_sweep
