// Property-based differential test: seeded random op streams applied to
// every tree configuration AND a std::map oracle, with result- and
// state-equivalence checked op by op.  The stream deliberately hammers a
// tiny keyspace so duplicate inserts, updates of missing keys, and
// remove/reinsert cycles are common, and it survives two recovery cycles
// mid-stream (one clean close/reopen, one dirty crash-style reopen).
//
// On a mismatch the failing stream is shrunk ddmin-style (greedy chunk
// removal at halving granularity) and the minimal reproducer is printed as
// copy-pasteable steps, so a one-in-four-seeds failure lands as a five-line
// recipe rather than a 2000-op haystack.
// A second, fault-injected mode (run_fault_stream) replays seeded streams
// with a RandomAbortInjector installed and the tree pre-filled to the brink
// of a minimum-size pool: injected HTM aborts must be invisible to callers,
// and kPoolExhausted is the ONLY acceptable divergence from the oracle — an
// exhausted op is skipped by the oracle and the stream carries on, through
// both recovery cycles.  RNT_FAULT_SEEDS overrides the seed count (CI pins 4).
// FaultMode::kSmoAbortStorm narrows the same harness onto the COW SMO
// install path: a high-permille storm behind SmoTargetedInjector aborts
// ONLY install transactions (leaf ops run clean), driving every split's
// install through retry, validation-failure, and lock-fallback tiers while
// the oracle watches for any caller-visible effect.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "baselines/fptree.hpp"
#include "baselines/nvtree.hpp"
#include "baselines/wbtree.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "core/rntree.hpp"
#include "htm/abort_inject.hpp"
#include "htm/smo.hpp"
#include "htm/stripe_table.hpp"
#include "nvm/persist.hpp"
#include "nvm/pool.hpp"
#include "shard/sharded_tree.hpp"

namespace rnt {
namespace {

struct Op {
  enum Kind : std::uint8_t { kInsert, kUpsert, kUpdate, kRemove, kFind, kScan };
  Kind kind;
  std::uint64_t key;
  std::uint64_t value;
};

const char* kind_name(Op::Kind k) {
  switch (k) {
    case Op::kInsert: return "insert";
    case Op::kUpsert: return "upsert";
    case Op::kUpdate: return "update";
    case Op::kRemove: return "remove";
    case Op::kFind: return "find";
    case Op::kScan: return "scan";
  }
  return "?";
}

/// ~2000 weighted ops over 96 distinct scrambled keys: small enough that
/// every key sees many lifecycle transitions, large enough to split leaves.
std::vector<Op> make_stream(std::uint64_t seed, std::size_t n) {
  Xoshiro256 rng(seed);
  std::vector<Op> ops;
  ops.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t key = mix64(rng.next_below(96));
    const std::uint64_t val = (seed << 32) ^ i;
    const std::uint64_t w = rng.next_below(100);
    Op::Kind kind;
    if (w < 25) kind = Op::kInsert;
    else if (w < 40) kind = Op::kUpsert;
    else if (w < 55) kind = Op::kUpdate;
    else if (w < 70) kind = Op::kRemove;
    else if (w < 95) kind = Op::kFind;
    else kind = Op::kScan;
    ops.push_back({kind, key, val});
  }
  return ops;
}

template <typename Tree>
void maybe_check_invariants(const Tree& t) {
  if constexpr (requires { t.check_invariants(); }) t.check_invariants();
}

/// Apply @p ops to a fresh tree and oracle; return a failure description or
/// nullopt.  Deterministic in @p ops alone, so the shrinker can re-run it.
/// Recovery cycles fire at len/3 (clean close + reopen) and 2*len/3 (dirty
/// reopen: volatile state dropped with NO close, crash recovery path).
template <typename Adapter>
std::optional<std::string> run_stream(const std::vector<Op>& ops) {
  nvm::PmemPool pool(std::size_t{64} << 20);
  auto tree = Adapter::make(pool);
  std::map<std::uint64_t, std::uint64_t> oracle;

  const std::size_t clean_at = ops.size() / 3;
  const std::size_t dirty_at = 2 * ops.size() / 3;
  auto fail = [&](std::size_t i, const std::string& what) {
    std::ostringstream os;
    os << "op " << i << " (" << kind_name(ops[i].kind) << " key=" << ops[i].key
       << " val=" << ops[i].value << "): " << what;
    return os.str();
  };

  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (i == clean_at && i != 0) {
      tree->close();
      tree.reset();
      pool.reopen_volatile();
      if (!pool.clean_shutdown()) return "clean close did not mark pool clean";
      tree = Adapter::recover(pool);
    } else if (i == dirty_at && i != clean_at && i != 0) {
      tree.reset();  // no close(): volatile state is simply gone
      pool.reopen_volatile();
      if (pool.clean_shutdown()) return "dirty reopen unexpectedly clean";
      tree = Adapter::recover(pool);
    }

    const Op& op = ops[i];
    switch (op.kind) {
      case Op::kInsert: {
        const bool expect = oracle.emplace(op.key, op.value).second;
        if (tree->insert(op.key, op.value) != expect)
          return fail(i, expect ? "insert refused a fresh key"
                                : "insert accepted a duplicate key");
        break;
      }
      case Op::kUpsert:
        tree->upsert(op.key, op.value);
        oracle[op.key] = op.value;
        break;
      case Op::kUpdate: {
        auto it = oracle.find(op.key);
        const bool expect = it != oracle.end();
        if (expect) it->second = op.value;
        if (tree->update(op.key, op.value) != expect)
          return fail(i, expect ? "update failed on a live key"
                                : "update succeeded on a missing key");
        break;
      }
      case Op::kRemove: {
        const bool expect = oracle.erase(op.key) != 0;
        if (tree->remove(op.key) != expect)
          return fail(i, expect ? "remove failed on a live key"
                                : "remove succeeded on a missing key");
        break;
      }
      case Op::kFind: {
        const auto got = tree->find(op.key);
        auto it = oracle.find(op.key);
        if (got.has_value() != (it != oracle.end()))
          return fail(i, got ? "find returned a removed/never-inserted key"
                             : "find missed a live key");
        if (got && *got != it->second)
          return fail(i, "find returned a stale value");
        break;
      }
      case Op::kScan: {
        std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
        tree->scan_n(0, oracle.size() + 8, got);
        if (got.size() != oracle.size())
          return fail(i, "scan size " + std::to_string(got.size()) +
                             " != oracle " + std::to_string(oracle.size()));
        auto it = oracle.begin();
        for (std::size_t j = 0; j < got.size(); ++j, ++it)
          if (got[j].first != it->first || got[j].second != it->second)
            return fail(i, "scan diverges from oracle at rank " +
                               std::to_string(j));
        break;
      }
    }
  }

  // Final full-state equivalence + structural invariants.
  maybe_check_invariants(*tree);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
  tree->scan_n(0, oracle.size() + 8, got);
  if (got.size() != oracle.size())
    return "final scan size " + std::to_string(got.size()) + " != oracle " +
           std::to_string(oracle.size());
  auto it = oracle.begin();
  for (std::size_t j = 0; j < got.size(); ++j, ++it)
    if (got[j].first != it->first || got[j].second != it->second)
      return "final state diverges from oracle at rank " + std::to_string(j);
  return std::nullopt;
}

/// Whether an op result reports pool exhaustion.  remove() still returns
/// plain bool on trees whose removes are allocation-free; those can never
/// exhaust.
template <typename R>
bool pool_exhausted_result(const R& r) {
  if constexpr (std::is_same_v<R, common::Status>)
    return r.pool_exhausted();
  else
    return false;
}

/// Where the injected aborts land.
enum class FaultMode {
  kGlobalAborts,   ///< every transaction, moderate rate (the original mode)
  kSmoAbortStorm,  ///< SMO install transactions only, storm rate
  /// Transactions whose StripeScope targets stripe 0 only, storm rate: the
  /// striped-fallback analogue of the SMO storm.  Publishes on the hot
  /// stripe retry/fall back constantly while every other stripe commits
  /// untouched; none of it may be visible to the oracle.
  kStripeStorm,
};

/// Fault-injected stream: like run_stream, but with seeded random HTM abort
/// injection installed, a minimum-size pool pre-filled until inserts fail,
/// and exhaustion-aware oracle semantics — an op that returns kPoolExhausted
/// is a no-op for the oracle; any other divergence is a failure.
template <typename Adapter>
std::optional<std::string> run_fault_stream(const std::vector<Op>& ops,
                                            std::uint64_t seed,
                                            FaultMode mode) {
  const bool storm = mode != FaultMode::kGlobalAborts;
  htm::RandomAbortInjector inj(seed, /*abort_permille=*/storm ? 800 : 300);
  htm::SmoTargetedInjector smo_only(inj);
  htm::StripeStormInjector stripe_only(inj, /*hot_stripe=*/0);
  htm::AbortInjector* chosen = &inj;
  if (mode == FaultMode::kSmoAbortStorm) chosen = &smo_only;
  if (mode == FaultMode::kStripeStorm) chosen = &stripe_only;
  htm::ScopedAbortInjector scope(chosen);

  nvm::PmemPool pool(std::size_t{2} << 20);  // minimum size: ~1 MiB of data
  auto tree = Adapter::make(pool);
  std::map<std::uint64_t, std::uint64_t> oracle;

  // Pre-fill to the brink with keys disjoint from the stream's scrambled
  // keyspace, so the stream runs against a full pool from op 0 on.
  for (std::uint64_t i = 0; i < 10'000'000; ++i) {
    const std::uint64_t k = 0x4000000000000000ull + i * 2;
    if (!tree->insert(k, i)) break;
    oracle.emplace(k, i);
  }
  if (oracle.size() < 100) return "pre-fill never approached exhaustion";

  const std::size_t clean_at = ops.size() / 3;
  const std::size_t dirty_at = 2 * ops.size() / 3;
  auto fail = [&](std::size_t i, const std::string& what) {
    std::ostringstream os;
    os << "op " << i << " (" << kind_name(ops[i].kind) << " key=" << ops[i].key
       << " val=" << ops[i].value << "): " << what;
    return os.str();
  };

  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (i == clean_at && i != 0) {
      tree->close();
      tree.reset();
      pool.reopen_volatile();
      if (!pool.clean_shutdown()) return "clean close did not mark pool clean";
      tree = Adapter::recover(pool);
    } else if (i == dirty_at && i != clean_at && i != 0) {
      tree.reset();  // no close(): volatile state is simply gone
      pool.reopen_volatile();
      if (pool.clean_shutdown()) return "dirty reopen unexpectedly clean";
      tree = Adapter::recover(pool);
    }

    const Op& op = ops[i];
    switch (op.kind) {
      case Op::kInsert: {
        const bool expect = oracle.count(op.key) == 0;
        const common::Status st = tree->insert(op.key, op.value);
        if (st.pool_exhausted()) break;  // refused: oracle unchanged
        if (static_cast<bool>(st) != expect)
          return fail(i, expect ? "insert refused a fresh key"
                                : "insert accepted a duplicate key");
        if (st) oracle.emplace(op.key, op.value);
        break;
      }
      case Op::kUpsert: {
        const common::Status st = tree->upsert(op.key, op.value);
        if (st.pool_exhausted()) break;
        if (!st) return fail(i, "upsert failed without exhaustion");
        oracle[op.key] = op.value;
        break;
      }
      case Op::kUpdate: {
        const bool expect = oracle.count(op.key) != 0;
        const common::Status st = tree->update(op.key, op.value);
        if (st.pool_exhausted()) break;
        if (static_cast<bool>(st) != expect)
          return fail(i, expect ? "update failed on a live key"
                                : "update succeeded on a missing key");
        if (st) oracle[op.key] = op.value;
        break;
      }
      case Op::kRemove: {
        const bool expect = oracle.count(op.key) != 0;
        const auto r = tree->remove(op.key);
        if (pool_exhausted_result(r)) break;
        if (static_cast<bool>(r) != expect)
          return fail(i, expect ? "remove failed on a live key"
                                : "remove succeeded on a missing key");
        if (r) oracle.erase(op.key);
        break;
      }
      case Op::kFind: {
        const auto got = tree->find(op.key);
        auto it = oracle.find(op.key);
        if (got.has_value() != (it != oracle.end()))
          return fail(i, got ? "find returned a removed/never-inserted key"
                             : "find missed a live key");
        if (got && *got != it->second)
          return fail(i, "find returned a stale value");
        break;
      }
      case Op::kScan: {
        std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
        tree->scan_n(0, oracle.size() + 8, got);
        if (got.size() != oracle.size())
          return fail(i, "scan size " + std::to_string(got.size()) +
                             " != oracle " + std::to_string(oracle.size()));
        auto it = oracle.begin();
        for (std::size_t j = 0; j < got.size(); ++j, ++it)
          if (got[j].first != it->first || got[j].second != it->second)
            return fail(i, "scan diverges from oracle at rank " +
                               std::to_string(j));
        break;
      }
    }
  }

  // Final full-state equivalence.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
  tree->scan_n(0, oracle.size() + 8, got);
  if (got.size() != oracle.size())
    return "final scan size " + std::to_string(got.size()) + " != oracle " +
           std::to_string(oracle.size());
  auto it = oracle.begin();
  for (std::size_t j = 0; j < got.size(); ++j, ++it)
    if (got[j].first != it->first || got[j].second != it->second)
      return "final state diverges from oracle at rank " + std::to_string(j);
  return std::nullopt;
}

/// RNT_FAULT_SEEDS fault-injected replays per tree (CI pins 4).
inline std::uint64_t fault_seed_count() {
  if (const char* s = std::getenv("RNT_FAULT_SEEDS")) {
    const long v = std::atol(s);
    if (v > 0) return static_cast<std::uint64_t>(v);
  }
  return 4;
}

template <typename Adapter>
void run_fault_differential(const char* name,
                            FaultMode mode = FaultMode::kGlobalAborts) {
  const std::uint64_t seeds = fault_seed_count();
  for (std::uint64_t s = 0; s < seeds; ++s) {
    const std::uint64_t seed = 0xF00D + s * 131;
    const std::vector<Op> ops = make_stream(seed, 1200);
    const auto failure = run_fault_stream<Adapter>(ops, seed, mode);
    if (failure)
      FAIL() << name << " fault seed " << seed << ": " << *failure
             << "\nreproduce: RNT_FAULT_SEEDS=" << seeds
             << " differential_test --gtest_filter=*Fault*";
  }
}

/// ddmin-lite: greedily delete chunks (halving granularity) while the
/// failure reproduces.  Bounded by re-run count, not op count.
template <typename Adapter>
std::vector<Op> shrink_stream(std::vector<Op> ops) {
  int budget = 300;
  for (std::size_t chunk = ops.size() / 2; chunk >= 1 && budget > 0;
       chunk = chunk == 1 ? 0 : chunk / 2) {
    for (std::size_t start = 0; start + chunk <= ops.size() && budget > 0;) {
      std::vector<Op> candidate;
      candidate.reserve(ops.size() - chunk);
      candidate.insert(candidate.end(), ops.begin(),
                       ops.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       ops.begin() + static_cast<std::ptrdiff_t>(start + chunk),
                       ops.end());
      --budget;
      if (run_stream<Adapter>(candidate).has_value())
        ops = std::move(candidate);  // still fails without the chunk
      else
        start += chunk;
    }
    if (chunk == 1) break;
  }
  return ops;
}

template <typename Adapter>
void run_differential(const char* name) {
  for (std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    const std::vector<Op> ops = make_stream(seed, 2000);
    const auto failure = run_stream<Adapter>(ops);
    if (!failure) continue;
    const std::vector<Op> minimal = shrink_stream<Adapter>(ops);
    const auto mini_failure = run_stream<Adapter>(minimal);
    std::ostringstream os;
    os << name << " seed " << seed << ": " << *failure
       << "\nminimal reproducer (" << minimal.size() << " ops, failure: "
       << mini_failure.value_or("did not reproduce after shrink") << "):\n";
    for (const Op& op : minimal)
      os << "  " << kind_name(op.kind) << " key=" << op.key
         << " val=" << op.value << "\n";
    FAIL() << os.str();
  }
}

// Adapters: make + recover per tree configuration (mirrors the crash-sweep
// adapters, minus the sweep machinery).
using RN = core::RNTree<std::uint64_t, std::uint64_t>;
using NV = baselines::NVTree<std::uint64_t, std::uint64_t>;
using WB = baselines::WBTree<std::uint64_t, std::uint64_t>;
using WBSO = baselines::WBTreeSO<std::uint64_t, std::uint64_t>;
using FP = baselines::FPTree<std::uint64_t, std::uint64_t>;

template <bool DualSlot>
struct RnAdapter {
  static std::unique_ptr<RN> make(nvm::PmemPool& p) {
    return std::make_unique<RN>(p, RN::Options{.dual_slot = DualSlot});
  }
  static std::unique_ptr<RN> recover(nvm::PmemPool& p) {
    return std::make_unique<RN>(RN::recover_t{}, p,
                                RN::Options{.dual_slot = DualSlot});
  }
};

// Explicit stripe-count adapter for the stripe-storm legs: 2 stripes makes
// nearly every split span two stripe locks, 1 aliases the SMO stripe onto
// the single global lock (the release-before-install split path).
template <unsigned Stripes>
struct RnStripeAdapter {
  static RN::Options opts() {
    RN::Options o;
    o.dual_slot = true;
    o.fallback_stripes = Stripes;
    return o;
  }
  static std::unique_ptr<RN> make(nvm::PmemPool& p) {
    return std::make_unique<RN>(p, opts());
  }
  static std::unique_ptr<RN> recover(nvm::PmemPool& p) {
    return std::make_unique<RN>(RN::recover_t{}, p, opts());
  }
};

// Pre-COW serialized SMO path (cow_smo=false): baseline for the SMO abort
// storm legs.
struct RnLegacySmoAdapter {
  static RN::Options opts() {
    return {.dual_slot = true, .root_slot = 0, .cow_smo = false};
  }
  static std::unique_ptr<RN> make(nvm::PmemPool& p) {
    return std::make_unique<RN>(p, opts());
  }
  static std::unique_ptr<RN> recover(nvm::PmemPool& p) {
    return std::make_unique<RN>(RN::recover_t{}, p, opts());
  }
};

template <typename T>
struct PlainAdapter {
  static std::unique_ptr<T> make(nvm::PmemPool& p) {
    return std::make_unique<T>(p);
  }
  static std::unique_ptr<T> recover(nvm::PmemPool& p) {
    return std::make_unique<T>(typename T::recover_t{}, p);
  }
};

// Sharding facade over four hash-partitioned RNTrees: the oracle checks the
// cross-shard k-way merge (kScan) and multi-root recovery on top of the
// member trees' own semantics.
struct ShardedAdapter {
  using SH = shard::ShardedTree<std::uint64_t, std::uint64_t>;
  static SH::Options opts() {
    return {.shards = 4, .partition = shard::Partition::kHash};
  }
  static std::unique_ptr<SH> make(nvm::PmemPool& p) {
    return std::make_unique<SH>(p, opts());
  }
  static std::unique_ptr<SH> recover(nvm::PmemPool& p) {
    return std::make_unique<SH>(SH::recover_t{}, p, opts());
  }
};

struct NvCondAdapter {
  static std::unique_ptr<NV> make(nvm::PmemPool& p) {
    return std::make_unique<NV>(p, NV::Options{.conditional_write = true});
  }
  static std::unique_ptr<NV> recover(nvm::PmemPool& p) {
    return std::make_unique<NV>(NV::recover_t{}, p,
                                NV::Options{.conditional_write = true});
  }
};

class DifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = nvm::config();
    nvm::config().write_latency_ns = 0;
    nvm::config().per_line_ns = 0;
  }
  void TearDown() override { nvm::config() = saved_; }
  nvm::NvmConfig saved_;
};

TEST_F(DifferentialTest, RnTreeSingleSlot) {
  run_differential<RnAdapter<false>>("rntree-single");
}
TEST_F(DifferentialTest, RnTreeDualSlot) {
  run_differential<RnAdapter<true>>("rntree-dual");
}
TEST_F(DifferentialTest, NvTreeConditional) {
  run_differential<NvCondAdapter>("nvtree-cond");
}
TEST_F(DifferentialTest, WbTree) { run_differential<PlainAdapter<WB>>("wbtree"); }
TEST_F(DifferentialTest, WbTreeSlotOnly) {
  run_differential<PlainAdapter<WBSO>>("wbtree-so");
}
TEST_F(DifferentialTest, FpTree) { run_differential<PlainAdapter<FP>>("fptree"); }
TEST_F(DifferentialTest, ShardedHash4) {
  run_differential<ShardedAdapter>("sharded-hash4");
}

// Fault-injected mode: random HTM aborts + a pool pre-filled to exhaustion.
TEST_F(DifferentialTest, FaultRnTreeSingleSlot) {
  run_fault_differential<RnAdapter<false>>("rntree-single");
}
TEST_F(DifferentialTest, FaultRnTreeDualSlot) {
  run_fault_differential<RnAdapter<true>>("rntree-dual");
}
TEST_F(DifferentialTest, FaultNvTreeConditional) {
  run_fault_differential<NvCondAdapter>("nvtree-cond");
}
TEST_F(DifferentialTest, FaultWbTree) {
  run_fault_differential<PlainAdapter<WB>>("wbtree");
}
TEST_F(DifferentialTest, FaultWbTreeSlotOnly) {
  run_fault_differential<PlainAdapter<WBSO>>("wbtree-so");
}
TEST_F(DifferentialTest, FaultFpTree) {
  run_fault_differential<PlainAdapter<FP>>("fptree");
}
TEST_F(DifferentialTest, FaultShardedHash4) {
  run_fault_differential<ShardedAdapter>("sharded-hash4");
}

// SMO abort storms: 800-permille seeded aborts aimed ONLY at SMO install
// transactions.  The pre-fill's sequential splits and both recovery
// rebuilds run every install through retry / validation-failure / lock
// fallback; none of it may be visible to the oracle.
TEST_F(DifferentialTest, FaultCowSmoDualSlot) {
  run_fault_differential<RnAdapter<true>>("rntree-dual-smostorm",
                                          FaultMode::kSmoAbortStorm);
}
TEST_F(DifferentialTest, FaultCowSmoSingleSlot) {
  run_fault_differential<RnAdapter<false>>("rntree-single-smostorm",
                                           FaultMode::kSmoAbortStorm);
}
TEST_F(DifferentialTest, FaultCowSmoLegacyPath) {
  run_fault_differential<RnLegacySmoAdapter>("rntree-legacy-smostorm",
                                             FaultMode::kSmoAbortStorm);
}

// Stripe storms: 800-permille seeded aborts aimed ONLY at transactions
// whose StripeScope targets stripe 0.  The hot stripe's publishes live on
// the fallback lock while every other stripe elides; splits cross stripe
// boundaries (2 stripes) or alias the SMO stripe (1 stripe); none of it
// may diverge from the oracle.
TEST_F(DifferentialTest, FaultStripeStormDefaultStripes) {
  run_fault_differential<RnAdapter<true>>("rntree-dual-stripestorm",
                                          FaultMode::kStripeStorm);
}
TEST_F(DifferentialTest, FaultStripeStormTwoStripes) {
  run_fault_differential<RnStripeAdapter<2>>("rntree-2stripe-storm",
                                             FaultMode::kStripeStorm);
}
TEST_F(DifferentialTest, FaultStripeStormGlobalAlias) {
  run_fault_differential<RnStripeAdapter<1>>("rntree-global-storm",
                                             FaultMode::kStripeStorm);
}

}  // namespace
}  // namespace rnt
