// Tests for epoch-based reclamation.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "epoch/ebr.hpp"

namespace rnt::epoch {
namespace {

TEST(Epoch, RetireIsDeferredWhileGuardActive) {
  EpochManager mgr;
  std::atomic<bool> freed{false};
  {
    Guard g = mgr.pin();
    mgr.retire([&] { freed = true; });
    mgr.collect();
    EXPECT_FALSE(freed.load());  // guard pinned before the retire
  }
  mgr.collect();
  EXPECT_TRUE(freed.load());
}

TEST(Epoch, RetireFreesPromptlyWithoutGuards) {
  EpochManager mgr;
  std::atomic<bool> freed{false};
  mgr.retire([&] { freed = true; });
  mgr.collect();
  EXPECT_TRUE(freed.load());
}

TEST(Epoch, GuardMoveSemantics) {
  EpochManager mgr;
  Guard a = mgr.pin();
  Guard b = std::move(a);
  EXPECT_FALSE(a.active());
  EXPECT_TRUE(b.active());
  b.release();
  EXPECT_FALSE(b.active());
}

TEST(Epoch, MoveAssignReleasesPreviousSlot) {
  // A move-assign that leaked the destination's slot would pin its epoch
  // forever, so the retiree below could never be reclaimed.
  EpochManager mgr;
  std::atomic<bool> freed{false};
  Guard a = mgr.pin();
  mgr.retire([&] { freed = true; });
  mgr.collect();
  EXPECT_FALSE(freed.load());  // a's slot still pins the retiree's epoch
  a = mgr.pin();               // must release the old slot, then re-pin
  EXPECT_TRUE(a.active());
  mgr.collect();
  EXPECT_TRUE(freed.load());
}

TEST(Epoch, SelfMoveAssignKeepsGuardActive) {
  EpochManager mgr;
  Guard a = mgr.pin();
  Guard& alias = a;  // defeat -Wself-move at the call site
  a = std::move(alias);
  EXPECT_TRUE(a.active());
  a.release();
  EXPECT_FALSE(a.active());
  // The slot really was returned exactly once: a retire now frees promptly.
  std::atomic<bool> freed{false};
  mgr.retire([&] { freed = true; });
  mgr.collect();
  EXPECT_TRUE(freed.load());
}

TEST(Epoch, ReassignLoopDoesNotLeakSlots) {
  // pin() linear-probes EpochManager::kSlots slots and spins when none is
  // free: a leaky move-assign would wedge this loop well before it finishes
  // (and trip the manager's destructor assert on leftover pinned slots).
  EpochManager mgr;
  Guard g = mgr.pin();
  for (int i = 0; i < 4 * EpochManager::kSlots; ++i) g = mgr.pin();
  EXPECT_TRUE(g.active());
  g.release();
  std::atomic<bool> freed{false};
  mgr.retire([&] { freed = true; });
  mgr.collect();
  EXPECT_TRUE(freed.load());
}

TEST(Epoch, NewGuardDoesNotBlockOlderRetire) {
  EpochManager mgr;
  std::atomic<bool> freed{false};
  mgr.retire([&] { freed = true; });
  mgr.collect();           // epoch advances past the retiree
  Guard g = mgr.pin();     // pinned at a newer epoch
  mgr.collect();
  EXPECT_TRUE(freed.load());
}

TEST(Epoch, DestructorDrainsLimbo) {
  std::atomic<int> freed{0};
  {
    EpochManager mgr;
    for (int i = 0; i < 10; ++i) mgr.retire([&] { ++freed; });
  }
  EXPECT_EQ(freed.load(), 10);
}

TEST(Epoch, AutomaticCollectionOnThreshold) {
  EpochManager mgr;
  std::atomic<int> freed{0};
  for (int i = 0; i < 1000; ++i) mgr.retire([&] { ++freed; });
  EXPECT_GT(freed.load(), 800);  // amortised collection kicked in
}

TEST(Epoch, ManyConcurrentGuards) {
  EpochManager mgr;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::atomic<std::uint64_t> pins{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        Guard g = mgr.pin();
        pins.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(pins.load(), static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(Epoch, StressReadersNeverTouchFreedMemory) {
  // Writers repeatedly swap a shared node and retire the old one; readers
  // dereference under a guard.  Freed nodes are poisoned; readers must never
  // observe the poison through a validly acquired pointer.
  struct Node {
    std::atomic<std::uint64_t> value{0};
  };
  EpochManager mgr;
  std::atomic<Node*> shared{new Node{}};
  shared.load()->value = 1;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> poisoned_reads{0};

  std::thread writer([&] {
    std::uint64_t v = 2;
    while (!stop.load(std::memory_order_relaxed)) {
      Node* fresh = new Node{};
      fresh->value = v++;
      Node* old = shared.exchange(fresh, std::memory_order_acq_rel);
      mgr.retire([old] {
        old->value.store(0xDEAD, std::memory_order_relaxed);
        delete old;
      });
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        Guard g = mgr.pin();
        Node* n = shared.load(std::memory_order_acquire);
        if (n->value.load(std::memory_order_relaxed) == 0xDEAD)
          poisoned_reads.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop = true;
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(poisoned_reads.load(), 0u);
  delete shared.load();
}

}  // namespace
}  // namespace rnt::epoch
