// Fault-injection tests for the HTM retry -> backoff -> fallback machine
// (htm/abort_inject.hpp + htm/rtm.hpp).
//
// On CI hosts without TSX the real RTM path never executes, so these tests
// drive the SAME policy decisions through the injected retry machine:
// scripted abort schedules assert the per-cause policy (capacity -> immediate
// fallback, conflict -> bounded backoff retries, spurious -> small budget,
// lock subscription -> bounded wait), the htm.inject.* attribution counters,
// the bounded lock-wait starvation cap, and the exception-safety of the
// simulated-transaction bracket (TxGuard).  A seeded random schedule then
// hammers a real tree against a std::map oracle to show injected aborts are
// invisible to callers.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/rntree.hpp"
#include "htm/abort_inject.hpp"
#include "htm/rtm.hpp"
#include "htm/spinlock.hpp"
#include "nvm/persist.hpp"
#include "nvm/pool.hpp"
#include "nvm/shadow.hpp"

namespace rnt {
namespace {

using htm::AbortCause;
using htm::HtmStats;
using htm::RetryPolicy;
using htm::ScopedAbortInjector;
using htm::ScriptedAbortInjector;

/// Field-wise delta of the calling thread's HTM stats across @p fn.
template <typename Fn>
HtmStats stats_delta(Fn&& fn) {
  const HtmStats before = htm::tls_htm_stats();
  fn();
  const HtmStats after = htm::tls_htm_stats();
  HtmStats d;
  d.attempts = after.attempts - before.attempts;
  d.commits = after.commits - before.commits;
  d.aborts_conflict = after.aborts_conflict - before.aborts_conflict;
  d.aborts_capacity = after.aborts_capacity - before.aborts_capacity;
  d.aborts_other = after.aborts_other - before.aborts_other;
  d.fallbacks = after.fallbacks - before.fallbacks;
  d.lock_acquisitions = after.lock_acquisitions - before.lock_acquisitions;
  d.lock_wait_timeouts = after.lock_wait_timeouts - before.lock_wait_timeouts;
  d.injected_conflict = after.injected_conflict - before.injected_conflict;
  d.injected_capacity = after.injected_capacity - before.injected_capacity;
  d.injected_spurious = after.injected_spurious - before.injected_spurious;
  d.injected_lock_subscription =
      after.injected_lock_subscription - before.injected_lock_subscription;
  return d;
}

TEST(AbortInjection, ConflictsRetryWithBackoffThenCommit) {
  ScriptedAbortInjector inj({AbortCause::kConflict, AbortCause::kConflict});
  ScopedAbortInjector scope(&inj);
  htm::SpinLock lock;
  int ran = 0;
  const HtmStats d = stats_delta([&] { htm::atomic_exec(lock, [&] { ++ran; }); });
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(d.attempts, 3u);  // 2 aborted + 1 committed
  EXPECT_EQ(d.commits, 1u);
  EXPECT_EQ(d.aborts_conflict, 2u);
  EXPECT_EQ(d.injected_conflict, 2u);
  EXPECT_EQ(d.fallbacks, 0u);
  EXPECT_EQ(d.lock_acquisitions, 0u);
  EXPECT_EQ(inj.injected(), 2u);
}

TEST(AbortInjection, CapacityAbortFallsBackImmediately) {
  // A capacity abort means the write set will never fit: one attempt, then
  // straight to the pessimistic lock — no wasted retries.
  ScriptedAbortInjector inj(
      {AbortCause::kCapacity, AbortCause::kConflict, AbortCause::kConflict});
  ScopedAbortInjector scope(&inj);
  htm::SpinLock lock;
  int ran = 0;
  const HtmStats d = stats_delta([&] { htm::atomic_exec(lock, [&] { ++ran; }); });
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(d.attempts, 1u);  // no retry after capacity
  EXPECT_EQ(d.aborts_capacity, 1u);
  EXPECT_EQ(d.injected_capacity, 1u);
  EXPECT_EQ(d.fallbacks, 1u);
  EXPECT_EQ(d.lock_acquisitions, 1u);
  EXPECT_EQ(d.commits, 1u);  // the fallback critical section commits
}

TEST(AbortInjection, SpuriousAbortsHaveABoundedBudget) {
  RetryPolicy policy;
  policy.max_spurious_retries = 2;
  htm::SpinLock lock;

  {  // Within budget: retries and commits transactionally.
    ScriptedAbortInjector inj({AbortCause::kSpurious, AbortCause::kSpurious});
    ScopedAbortInjector scope(&inj);
    int ran = 0;
    const HtmStats d = stats_delta(
        [&] { htm::atomic_exec(lock, [&] { ++ran; }, policy); });
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(d.injected_spurious, 2u);
    EXPECT_EQ(d.fallbacks, 0u);
  }
  {  // One past the budget: gives up and takes the lock.
    ScriptedAbortInjector inj({AbortCause::kSpurious, AbortCause::kSpurious,
                               AbortCause::kSpurious});
    ScopedAbortInjector scope(&inj);
    int ran = 0;
    const HtmStats d = stats_delta(
        [&] { htm::atomic_exec(lock, [&] { ++ran; }, policy); });
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(d.injected_spurious, 3u);
    EXPECT_EQ(d.fallbacks, 1u);
    EXPECT_EQ(d.lock_acquisitions, 1u);
  }
}

TEST(AbortInjection, LockSubscriptionAbortWaitsAndRetries) {
  // The lock is free, so the bounded wait returns immediately and the next
  // attempt commits — no fallback, no timeout recorded.
  ScriptedAbortInjector inj({AbortCause::kLockSubscription});
  ScopedAbortInjector scope(&inj);
  htm::SpinLock lock;
  int ran = 0;
  const HtmStats d = stats_delta([&] { htm::atomic_exec(lock, [&] { ++ran; }); });
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(d.attempts, 2u);
  EXPECT_EQ(d.injected_lock_subscription, 1u);
  EXPECT_EQ(d.lock_wait_timeouts, 0u);
  EXPECT_EQ(d.fallbacks, 0u);
}

TEST(AbortInjection, MaxAttemptsExhaustionFallsBack) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  ScriptedAbortInjector inj({AbortCause::kConflict, AbortCause::kConflict,
                             AbortCause::kConflict, AbortCause::kConflict});
  ScopedAbortInjector scope(&inj);
  htm::SpinLock lock;
  int ran = 0;
  const HtmStats d =
      stats_delta([&] { htm::atomic_exec(lock, [&] { ++ran; }, policy); });
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(d.attempts, 3u);  // policy bound, not script length
  EXPECT_EQ(d.fallbacks, 1u);
  EXPECT_EQ(d.lock_acquisitions, 1u);
}

TEST(AbortInjection, BoundedLockWaitTimesOutInsteadOfSpinningForever) {
  // Replaces the old unbounded `while (is_locked()) pause()`: a stalled
  // lock holder makes the waiter give up after lock_wait_pauses pauses and
  // record htm.lock_wait_timeouts.
  htm::SpinLock lock;
  lock.lock();
  RetryPolicy policy;
  policy.lock_wait_pauses = 4;
  HtmStats st;
  EXPECT_FALSE(htm::detail::bounded_lock_wait(lock, policy, st));
  EXPECT_EQ(st.lock_wait_timeouts, 1u);
  lock.unlock();
  EXPECT_TRUE(htm::detail::bounded_lock_wait(lock, policy, st));
  EXPECT_EQ(st.lock_wait_timeouts, 1u);
}

TEST(AbortInjection, StalledLockHolderDegradesWithoutLivelock) {
  // A subscription abort while another thread sits on the fallback lock:
  // the injected machine's bounded wait times out, retries are spent, and
  // the caller ends on the pessimistic path — blocked on the lock like any
  // mutex waiter, not spinning in the retry loop forever.
  htm::SpinLock lock;
  lock.lock();
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.lock_wait_pauses = 2;
  ScriptedAbortInjector inj(
      {AbortCause::kLockSubscription, AbortCause::kLockSubscription});
  ScopedAbortInjector scope(&inj);
  int ran = 0;
  std::thread t([&] { htm::atomic_exec(lock, [&] { ++ran; }, policy); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lock.unlock();  // un-stall the holder; the waiter completes
  t.join();
  EXPECT_EQ(ran, 1);
  const HtmStats agg = htm::aggregate_htm_stats();
  EXPECT_GE(agg.lock_wait_timeouts, 1u);
}

TEST(AbortInjection, ExclusiveVariantRunsTheSameMachine) {
  {  // Conflict retries, then transactional commit.
    ScriptedAbortInjector inj({AbortCause::kConflict});
    ScopedAbortInjector scope(&inj);
    int ran = 0;
    const HtmStats d = stats_delta([&] { htm::atomic_exec_excl([&] { ++ran; }); });
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(d.attempts, 2u);
    EXPECT_EQ(d.injected_conflict, 1u);
    EXPECT_EQ(d.fallbacks, 0u);
  }
  {  // Capacity: the fallback is plain execution (the caller's lock already
     // excludes writers), run exactly once.
    ScriptedAbortInjector inj({AbortCause::kCapacity});
    ScopedAbortInjector scope(&inj);
    int ran = 0;
    const HtmStats d = stats_delta([&] { htm::atomic_exec_excl([&] { ++ran; }); });
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(d.injected_capacity, 1u);
    EXPECT_EQ(d.fallbacks, 1u);
    EXPECT_EQ(d.commits, 1u);
    EXPECT_EQ(d.lock_acquisitions, 0u);  // no lock exists on this path
  }
}

TEST(AbortInjection, MutualExclusionHoldsUnderRandomInjection) {
  // 4 threads increment a PLAIN integer through atomic_exec while a random
  // injector aborts ~35% of attempts across every cause.  Any hole in the
  // injected machine's mutual exclusion (e.g. a "committed" attempt running
  // outside the fallback lock) loses increments.
  htm::RandomAbortInjector inj(/*seed=*/42, /*abort_permille=*/350);
  ScopedAbortInjector scope(&inj);
  htm::SpinLock lock;
  std::uint64_t counter = 0;  // intentionally not atomic
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kOpsPerThread; ++i)
        htm::atomic_exec(lock, [&] { ++counter; });
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

TEST(AbortInjection, TxGuardClosesSimulatedTransactionOnThrow) {
  // Regression for the exception-unsafe bracket: atomic_exec used to call
  // htm_tx_begin(), fn(), htm_tx_commit() straight-line, so a throwing fn
  // left the ShadowPool's simulated transaction open and every LATER store
  // of the thread was wrongly quarantined as speculative.  With TxGuard the
  // bracket closes on unwind: after catching fn's exception, a store +
  // persist must be fully durable.
  nvm::PmemPool pool(std::size_t{2} << 20);
  const std::uint64_t off = pool.alloc(64);
  ASSERT_NE(off, 0u);
  auto* cell = pool.ptr<std::uint64_t>(off);

  nvm::ShadowPool shadow(pool);
  htm::SpinLock lock;
  EXPECT_THROW(
      htm::atomic_exec(lock, [&] { throw std::runtime_error("fn failed"); }),
      std::runtime_error);
  EXPECT_FALSE(lock.is_locked()) << "fallback lock leaked across the throw";

  nvm::store(*cell, std::uint64_t{0xD00DFEED});
  nvm::persist(cell, sizeof(*cell));
  EXPECT_EQ(shadow.unflushed_lines(), 0u)
      << "store after the throw still treated as speculative: the simulated "
         "transaction was left open";

  // And the end-to-end consequence: the value survives a simulated crash.
  shadow.simulate_crash(nvm::EvictionMode::kNone, 0);
  EXPECT_EQ(*cell, 0xD00DFEEDu);
}

TEST(AbortInjection, ScopedInstallRestoresThePreviousInjector) {
  EXPECT_EQ(htm::abort_injector(), nullptr);
  ScriptedAbortInjector outer({AbortCause::kConflict});
  {
    ScopedAbortInjector s1(&outer);
    EXPECT_EQ(htm::abort_injector(), &outer);
    ScriptedAbortInjector inner({AbortCause::kSpurious});
    {
      ScopedAbortInjector s2(&inner);
      EXPECT_EQ(htm::abort_injector(), &inner);
    }
    EXPECT_EQ(htm::abort_injector(), &outer);
  }
  EXPECT_EQ(htm::abort_injector(), nullptr);
}

TEST(AbortInjection, TreeOpsAreCorrectUnderRandomInjection) {
  // A real RNTree workload with ~40% of attempts aborted across all causes:
  // injection must be invisible to callers (every op lands exactly as a
  // fault-free run would), while the htm.inject.* counters prove the abort
  // paths actually ran.
  htm::RandomAbortInjector inj(/*seed=*/7, /*abort_permille=*/400);
  ScopedAbortInjector scope(&inj);

  nvm::PmemPool pool(std::size_t{32} << 20);
  core::RNTree<std::uint64_t, std::uint64_t> tree(pool);
  std::map<std::uint64_t, std::uint64_t> oracle;
  const HtmStats d = stats_delta([&] {
    for (std::uint64_t i = 0; i < 3000; ++i) {
      const std::uint64_t k = (i * 2654435761u) % 1024;
      if (i % 3 == 0) {
        if (tree.insert(k, i)) oracle.emplace(k, i);
      } else if (i % 3 == 1) {
        if (tree.update(k, i)) oracle[k] = i;
      } else {
        if (tree.remove(k)) oracle.erase(k);
      }
    }
  });
  EXPECT_GT(d.injected_conflict + d.injected_capacity + d.injected_spurious +
                d.injected_lock_subscription,
            0u)
      << "workload never reached an injected abort";
  EXPECT_EQ(tree.size(), oracle.size());
  for (const auto& [k, v] : oracle) {
    const auto got = tree.find(k);
    ASSERT_TRUE(got.has_value()) << "key " << k << " lost under injection";
    EXPECT_EQ(*got, v) << "key " << k << " has a stale value under injection";
  }
}

}  // namespace
}  // namespace rnt
