// Contention-heatmap tests: bucketing math, deterministic attribution of
// injected HTM aborts through the real RNTree op path, decay, exiting-thread
// folding, and HeatScope TLS hygiene.
#include "obs/heatmap.hpp"

#include <gtest/gtest.h>

#include <cinttypes>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/rntree.hpp"
#include "htm/abort_inject.hpp"
#include "nvm/pool.hpp"

namespace rnt::obs {
namespace {

#if !defined(RNTREE_NO_HEATMAP)

constexpr int kConflictIdx = static_cast<int>(HeatCause::kConflict);
constexpr int kCapacityIdx = static_cast<int>(HeatCause::kCapacity);
constexpr int kFallbackIdx = static_cast<int>(HeatCause::kFallback);
constexpr int kOpIdx = static_cast<int>(HeatCause::kOp);

// Every test runs against the process-wide table; configure + reset in
// SetUp, disarm in TearDown so tests cannot observe one another.
class HeatmapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(heatmap_configure({.buckets = 64,
                                   .by_leaf = false,
                                   .key_space = 0,
                                   .decay_half_life_s = 0.0}));
    set_heatmap_enabled(true);
  }
  void TearDown() override {
    set_heatmap_enabled(false);
    heatmap_reset();
  }

  // Aggregate count for (bucket, cause); 0 when the bucket is empty.
  static std::uint64_t count_at(std::uint32_t bucket, int cause) {
    const HeatmapSnapshot snap = heatmap_snapshot();
    for (const HeatBucket& b : snap.buckets)
      if (b.id == bucket) return b.counts[cause];
    return 0;
  }
};

TEST(HeatmapValidation, BucketCounts) {
  EXPECT_FALSE(heatmap_valid_buckets(0));
  EXPECT_FALSE(heatmap_valid_buckets(1));
  EXPECT_TRUE(heatmap_valid_buckets(2));
  EXPECT_FALSE(heatmap_valid_buckets(3));
  EXPECT_TRUE(heatmap_valid_buckets(64));
  EXPECT_FALSE(heatmap_valid_buckets(100));
  EXPECT_TRUE(heatmap_valid_buckets(4096));
  EXPECT_FALSE(heatmap_valid_buckets(8192));
  EXPECT_FALSE(heatmap_configure({.buckets = 7}));
}

TEST_F(HeatmapTest, KeyRangePartitioning) {
  // Dense key space: 65536 keys over 64 buckets -> 1024 keys per bucket.
  ASSERT_TRUE(heatmap_configure({.buckets = 64, .key_space = 65536}));
  EXPECT_EQ(heatmap_bucket_of(0), 0u);
  EXPECT_EQ(heatmap_bucket_of(1023), 0u);
  EXPECT_EQ(heatmap_bucket_of(1024), 1u);
  EXPECT_EQ(heatmap_bucket_of(65535), 63u);
  // Full 64-bit space: top 6 bits select the bucket.
  ASSERT_TRUE(heatmap_configure({.buckets = 64, .key_space = 0}));
  EXPECT_EQ(heatmap_bucket_of(0), 0u);
  EXPECT_EQ(heatmap_bucket_of(~0ull), 63u);
  EXPECT_EQ(heatmap_bucket_of(1ull << 58), 1u);
  // Non-power-of-two key space rounds up (1000 -> 1024 -> 16/bucket).
  ASSERT_TRUE(heatmap_configure({.buckets = 64, .key_space = 1000}));
  EXPECT_EQ(heatmap_bucket_of(15), 0u);
  EXPECT_EQ(heatmap_bucket_of(16), 1u);
}

TEST_F(HeatmapTest, RecordAtAttributesToKeyBucket) {
  const std::uint64_t key = 0xABCDull << 40;
  const std::uint32_t b = heatmap_bucket_of(key);
  for (int i = 0; i < 5; ++i) heatmap_record_at(key, HeatCause::kConflict);
  heatmap_record_at(key, HeatCause::kFallback);
  EXPECT_EQ(count_at(b, kConflictIdx), 5u);
  EXPECT_EQ(count_at(b, kFallbackIdx), 1u);
  const HeatmapSnapshot snap = heatmap_snapshot();
  ASSERT_FALSE(snap.buckets.empty());
  EXPECT_EQ(snap.buckets[0].id, b);  // sorted by score: only hot bucket first
  EXPECT_EQ(snap.buckets[0].score, 6u);
  EXPECT_EQ(snap.totals[kConflictIdx], 5u);
}

TEST_F(HeatmapTest, DisabledRecordingIsDropped) {
  set_heatmap_enabled(false);
  heatmap_record_at(42, HeatCause::kConflict);
  heatmap_record(HeatCause::kConflict);
  set_heatmap_enabled(true);
  EXPECT_TRUE(heatmap_snapshot().buckets.empty());
}

// The tentpole's deterministic end-to-end check on the REAL tree path: a
// scripted abort injector makes every atomic_exec abort twice with a
// conflict before committing, and the upsert of one known key must charge
// exactly its key-range bucket — no other bucket may see a conflict.
TEST_F(HeatmapTest, ScriptedAbortsAttributeToOpTargetBucket) {
  nvm::PmemPool pool(64u << 20);
  core::RNTree<std::uint64_t, std::uint64_t> tree(pool);
  set_heatmap_enabled(false);  // warm silently
  for (std::uint64_t i = 0; i < 512; ++i) tree.upsert(mix64(i), i);
  heatmap_reset();
  set_heatmap_enabled(true);

  const std::uint64_t key = mix64(5);
  const std::uint32_t want = heatmap_bucket_of(key);
  {
    htm::ScriptedAbortInjector inj(
        {htm::AbortCause::kConflict, htm::AbortCause::kConflict});
    htm::ScopedAbortInjector scope(&inj);
    ASSERT_TRUE(tree.upsert(key, 99).ok());
    EXPECT_GT(inj.injected(), 0u);
  }

  const HeatmapSnapshot snap = heatmap_snapshot();
  EXPECT_GE(count_at(want, kConflictIdx), 2u);
  EXPECT_GE(count_at(want, kOpIdx), 1u);
  for (const HeatBucket& b : snap.buckets)
    if (b.id != want) EXPECT_EQ(b.counts[kConflictIdx], 0u)
        << "conflict leaked into bucket " << b.id;
  EXPECT_EQ(snap.totals[kConflictIdx], count_at(want, kConflictIdx));
}

// Capacity aborts give up on HTM immediately: the same bucket must receive
// both the capacity abort and the resulting fallback acquisition.
TEST_F(HeatmapTest, CapacityAbortChargesFallbackToSameBucket) {
  nvm::PmemPool pool(64u << 20);
  core::RNTree<std::uint64_t, std::uint64_t> tree(pool);
  set_heatmap_enabled(false);
  for (std::uint64_t i = 0; i < 512; ++i) tree.upsert(mix64(i), i);
  heatmap_reset();
  set_heatmap_enabled(true);

  const std::uint64_t key = mix64(7);
  const std::uint32_t want = heatmap_bucket_of(key);
  {
    htm::ScriptedAbortInjector inj({htm::AbortCause::kCapacity});
    htm::ScopedAbortInjector scope(&inj);
    ASSERT_TRUE(tree.upsert(key, 1).ok());
  }
  EXPECT_GE(count_at(want, kCapacityIdx), 1u);
  EXPECT_GE(count_at(want, kFallbackIdx), 1u);
}

TEST_F(HeatmapTest, ByLeafModeFollowsResolvedLeaf) {
  ASSERT_TRUE(heatmap_configure({.buckets = 64, .by_leaf = true}));
  nvm::PmemPool pool(64u << 20);
  core::RNTree<std::uint64_t, std::uint64_t> tree(pool);
  set_heatmap_enabled(false);
  for (std::uint64_t i = 0; i < 512; ++i) tree.upsert(mix64(i), i);
  heatmap_reset();
  set_heatmap_enabled(true);
  {
    htm::ScriptedAbortInjector inj({htm::AbortCause::kConflict});
    htm::ScopedAbortInjector scope(&inj);
    ASSERT_TRUE(tree.upsert(mix64(5), 1).ok());
  }
  // One leaf took the conflict; totals must balance regardless of which
  // hash bucket the leaf address landed in.
  const HeatmapSnapshot snap = heatmap_snapshot();
  EXPECT_GE(snap.totals[kConflictIdx], 1u);
  std::uint64_t sum = 0;
  for (const HeatBucket& b : snap.buckets) sum += b.counts[kConflictIdx];
  EXPECT_EQ(sum, snap.totals[kConflictIdx]);
}

TEST_F(HeatmapTest, DecayScalesEveryCell) {
  const std::uint64_t key = 123;
  for (int i = 0; i < 8; ++i) heatmap_record_at(key, HeatCause::kConflict);
  heatmap_decay(0.5);
  EXPECT_EQ(count_at(heatmap_bucket_of(key), kConflictIdx), 4u);
  heatmap_decay(0.0);  // full clear
  EXPECT_TRUE(heatmap_snapshot().buckets.empty());
}

TEST_F(HeatmapTest, TickAppliesHalfLifeDecayAndRecordsTracks) {
  ASSERT_TRUE(heatmap_configure(
      {.buckets = 64, .key_space = 0, .decay_half_life_s = 1.0}));
  const std::uint64_t key = 99;
  const std::uint32_t b = heatmap_bucket_of(key);
  for (int i = 0; i < 100; ++i) heatmap_record_at(key, HeatCause::kConflict);
  heatmap_tick(1'000'000'000);  // baseline: no previous tick, no decay
  EXPECT_EQ(count_at(b, kConflictIdx), 100u);
  heatmap_tick(2'000'000'000);  // 1 s at half-life 1 s -> halved
  EXPECT_EQ(count_at(b, kConflictIdx), 50u);

  const std::vector<HeatTrack> tracks = heatmap_tracks(4);
  ASSERT_FALSE(tracks.empty());
  EXPECT_EQ(tracks[0].bucket, b);
  ASSERT_EQ(tracks[0].points.size(), 2u);
  EXPECT_EQ(tracks[0].points[0].score, 100u);
  EXPECT_EQ(tracks[0].points[1].score, 50u);
}

TEST_F(HeatmapTest, ExitingThreadFoldsIntoRetiredTotals) {
  const std::uint64_t key = 7777;
  std::thread t([&] {
    for (int i = 0; i < 5; ++i) heatmap_record_at(key, HeatCause::kFallback);
  });
  t.join();  // thread-local slab destructor folded its cells
  EXPECT_EQ(count_at(heatmap_bucket_of(key), kFallbackIdx), 5u);
  // And the fold survives another reconfigure-free snapshot.
  EXPECT_EQ(heatmap_snapshot().totals[kFallbackIdx], 5u);
}

TEST_F(HeatmapTest, HeatScopeRestoresPreviousTarget) {
  const std::uint64_t outer_key = 0;                // bucket 0
  const std::uint64_t inner_key = 0xFFull << 56;    // bucket 63
  {
    HeatScope outer(outer_key);
    {
      HeatScope inner(inner_key);
      heatmap_record(HeatCause::kConflict);
    }
    // The nested scope ended: aborts now charge the OUTER target again.
    heatmap_record(HeatCause::kConflict);
  }
  // No scope armed: records are dropped, not misattributed.
  heatmap_record(HeatCause::kConflict);
  EXPECT_EQ(count_at(63, kConflictIdx), 1u);
  EXPECT_EQ(count_at(0, kConflictIdx), 1u);
  EXPECT_EQ(heatmap_snapshot().totals[kConflictIdx], 2u);
}

TEST_F(HeatmapTest, JsonSectionShape) {
  heatmap_record_at(0, HeatCause::kConflict);
  const std::string json = heatmap_json();
  EXPECT_NE(json.find("\"buckets\": 64"), std::string::npos);
  EXPECT_NE(json.find("\"mode\": \"key\""), std::string::npos);
  EXPECT_NE(json.find("\"aborts_conflict\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"top\": ["), std::string::npos);
  set_heatmap_enabled(false);
  EXPECT_TRUE(heatmap_json().empty());  // exporter omits the section
}

#else  // RNTREE_NO_HEATMAP

// Compiled-out build: the API must be callable and inert.
TEST(HeatmapCompiledOut, EverythingIsInert) {
  EXPECT_FALSE(heatmap_enabled());
  set_heatmap_enabled(true);
  EXPECT_FALSE(heatmap_enabled());
  EXPECT_FALSE(heatmap_configure({.buckets = 64}));
  heatmap_record_at(1, HeatCause::kConflict);
  heatmap_record(HeatCause::kConflict);
  EXPECT_TRUE(heatmap_snapshot().buckets.empty());
  EXPECT_TRUE(heatmap_json().empty());
  EXPECT_TRUE(heatmap_valid_buckets(64));  // flag validation still works
  EXPECT_FALSE(heatmap_valid_buckets(7));
}

#endif  // RNTREE_NO_HEATMAP

}  // namespace
}  // namespace rnt::obs
