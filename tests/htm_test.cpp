// Tests for the HTM abstraction: spinlock, seqlock, version-lock word, and
// atomic_exec (RTM or software fallback, whichever this host provides).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "htm/rtm.hpp"
#include "htm/seqlock.hpp"
#include "htm/spinlock.hpp"
#include "htm/version_lock.hpp"

namespace rnt::htm {
namespace {

TEST(SpinLock, MutualExclusion) {
  SpinLock lock;
  std::uint64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        SpinGuard g(lock);
        ++counter;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(SpinLock, TryLockRespectsHolder) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_TRUE(lock.is_locked());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_FALSE(lock.is_locked());
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SeqCounter, WriterMakesReaderRetry) {
  SeqCounter seq;
  const std::uint32_t s0 = seq.read_begin();
  EXPECT_TRUE(seq.read_validate(s0));
  seq.write_begin();
  // A reader that started before the write must fail validation.
  EXPECT_FALSE(seq.read_validate(s0));
  seq.write_end();
  EXPECT_FALSE(seq.read_validate(s0));
  const std::uint32_t s1 = seq.read_begin();
  EXPECT_TRUE(seq.read_validate(s1));
  EXPECT_NE(s0, s1);
}

TEST(SeqCounter, ConcurrentReadersNeverObserveTornData) {
  SeqCounter seq;
  std::uint64_t data[8] = {};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};

  std::thread writer([&] {
    std::uint64_t v = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ++v;
      seq.write_begin();
      for (auto& d : data) d = v;
      seq.write_end();
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        std::uint64_t local[8];
        const std::uint32_t s = seq.read_begin();
        for (int i = 0; i < 8; ++i) local[i] = data[i];
        if (!seq.read_validate(s)) continue;
        for (int i = 1; i < 8; ++i)
          if (local[i] != local[0]) torn.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop = true;
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0u);
}

TEST(VersionLock, LockBits) {
  VersionLock vl;
  EXPECT_FALSE(VersionLock::locked(vl.raw()));
  vl.lock();
  EXPECT_TRUE(VersionLock::locked(vl.raw()));
  EXPECT_FALSE(vl.try_lock());
  vl.unlock();
  EXPECT_FALSE(VersionLock::locked(vl.raw()));
  EXPECT_TRUE(vl.try_lock());
  vl.unlock();
}

TEST(VersionLock, SplitBumpsVersion) {
  VersionLock vl;
  const std::uint64_t v0 = vl.stable_version();
  vl.lock();
  vl.set_split();
  EXPECT_TRUE(VersionLock::splitting(vl.raw()));
  vl.unset_split_and_bump();
  vl.unlock();
  const std::uint64_t v1 = vl.stable_version();
  EXPECT_NE(v0, v1);
  EXPECT_EQ((v1 & VersionLock::kVersionMask),
            (v0 & VersionLock::kVersionMask) + 1);
}

TEST(VersionLock, StableVersionWaitsOutSplit) {
  VersionLock vl;
  vl.lock();
  vl.set_split();
  std::atomic<bool> got{false};
  std::uint64_t observed = 0;
  std::thread reader([&] {
    observed = vl.stable_version();  // must block until unset_split
    got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(got.load());
  vl.unset_split_and_bump();
  reader.join();
  EXPECT_TRUE(got.load());
  EXPECT_FALSE(VersionLock::splitting(observed));
  vl.unlock();
}

TEST(VersionLock, RetiredFlagVisibleToStableVersion) {
  VersionLock vl;
  vl.lock();
  vl.set_retired();
  vl.unlock();
  EXPECT_TRUE(VersionLock::retired(vl.stable_version()));
}

TEST(VersionLock, StableVersionMasksLockBit) {
  VersionLock vl;
  vl.lock();
  EXPECT_FALSE(VersionLock::locked(vl.stable_version()));
  vl.unlock();
}

TEST(VersionLock, ResetClears) {
  VersionLock vl;
  vl.lock();
  vl.set_retired();
  vl.reset();
  EXPECT_EQ(vl.raw(), 0u);
}

TEST(AtomicExec, RunsBodyExactlyOnce) {
  SpinLock fb;
  int runs = 0;
  atomic_exec(fb, [&] { ++runs; });
  EXPECT_EQ(runs, 1);
  EXPECT_FALSE(fb.is_locked());
}

TEST(AtomicExec, ProvidesMutualExclusion) {
  SpinLock fb;
  std::uint64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 20000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i)
        atomic_exec(fb, [&] { ++counter; });
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(AtomicExec, MultiWordAtomicVisibility) {
  // Readers using a seqlock and writers using atomic_exec must compose: on
  // the software backend the writer takes the fallback lock which the
  // seqlock write_begin/write_end bracket mirrors.  This test drives the
  // exact pattern the trees use for the slot array.
  SpinLock fb;
  SeqCounter seq;
  std::uint64_t words[4] = {};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};

  std::thread writer([&] {
    std::uint64_t v = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ++v;
      atomic_exec(fb, [&] {
        seq.write_begin();
        for (auto& w : words) w = v;
        seq.write_end();
      });
    }
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::uint64_t local[4];
      const std::uint32_t s = seq.read_begin();
      for (int i = 0; i < 4; ++i) local[i] = words[i];
      if (!seq.read_validate(s)) continue;
      for (int i = 1; i < 4; ++i)
        if (local[i] != local[0]) torn.fetch_add(1);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop = true;
  writer.join();
  reader.join();
  EXPECT_EQ(torn.load(), 0u);
}

TEST(AtomicExec, StatsRecordCommits) {
  SpinLock fb;
  tls_htm_stats().reset();
  for (int i = 0; i < 100; ++i) atomic_exec(fb, [] {});
  EXPECT_EQ(tls_htm_stats().commits, 100u);
}

TEST(Rtm, SupportQueryIsStable) {
  const bool a = rtm_supported();
  const bool b = rtm_supported();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace rnt::htm
