// Tests for the copy-on-write volatile inner tree.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "epoch/ebr.hpp"
#include "htm/abort_inject.hpp"
#include "htm/smo.hpp"
#include "inner/inner_tree.hpp"
#include "obs/metrics.hpp"

namespace rnt::inner {
namespace {

// A stand-in leaf: just remembers its lower bound for verification.
struct FakeLeaf {
  std::uint64_t low;
};

using Tree = InnerTree<std::uint64_t, FakeLeaf>;

class InnerTreeTest : public ::testing::Test {
 protected:
  epoch::EpochManager epochs;
};

TEST_F(InnerTreeTest, SingleLeafCoversEverything) {
  Tree t(epochs);
  FakeLeaf leaf{0};
  t.init_single(&leaf);
  epoch::Guard g = epochs.pin();
  EXPECT_EQ(t.find_leaf(0), &leaf);
  EXPECT_EQ(t.find_leaf(~0ull), &leaf);
  EXPECT_EQ(t.height(), 1);
}

TEST_F(InnerTreeTest, SplitRoutesKeysBySeparator) {
  Tree t(epochs);
  FakeLeaf a{0}, b{100};
  t.init_single(&a);
  t.insert_split(100, &a, &b);
  epoch::Guard g = epochs.pin();
  EXPECT_EQ(t.find_leaf(0), &a);
  EXPECT_EQ(t.find_leaf(99), &a);
  EXPECT_EQ(t.find_leaf(100), &b);  // separator itself goes right
  EXPECT_EQ(t.find_leaf(5000), &b);
}

TEST_F(InnerTreeTest, ManySequentialSplitsStayCorrect) {
  Tree t(epochs);
  std::vector<std::unique_ptr<FakeLeaf>> leaves;
  leaves.push_back(std::make_unique<FakeLeaf>(FakeLeaf{0}));
  t.init_single(leaves[0].get());
  // Repeatedly split the rightmost leaf: 0,10,20,...
  for (std::uint64_t s = 1; s <= 500; ++s) {
    FakeLeaf* old_leaf = leaves.back().get();
    leaves.push_back(std::make_unique<FakeLeaf>(FakeLeaf{s * 10}));
    t.insert_split(s * 10, old_leaf, leaves.back().get());
  }
  EXPECT_GT(t.height(), 1);
  epoch::Guard g = epochs.pin();
  Xoshiro256 rng(1);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t k = rng.next_below(5010);
    FakeLeaf* leaf = t.find_leaf(k);
    ASSERT_NE(leaf, nullptr);
    EXPECT_EQ(leaf->low, k / 10 * 10);
  }
}

TEST_F(InnerTreeTest, RandomOrderSplitsMatchReferenceMap) {
  // Split leaves in random order; verify against a std::map-based oracle of
  // (lower_bound -> leaf).
  Tree t(epochs);
  std::vector<std::unique_ptr<FakeLeaf>> leaves;
  std::map<std::uint64_t, FakeLeaf*> oracle;
  leaves.push_back(std::make_unique<FakeLeaf>(FakeLeaf{0}));
  t.init_single(leaves[0].get());
  oracle[0] = leaves[0].get();

  Xoshiro256 rng(99);
  for (int i = 0; i < 2000; ++i) {
    // Pick a random new separator not yet present.
    std::uint64_t sep = rng.next_below(1u << 20) + 1;
    if (oracle.count(sep) != 0) continue;
    // The leaf currently covering sep:
    auto it = std::prev(oracle.upper_bound(sep));
    FakeLeaf* old_leaf = it->second;
    leaves.push_back(std::make_unique<FakeLeaf>(FakeLeaf{sep}));
    t.insert_split(sep, old_leaf, leaves.back().get());
    oracle[sep] = leaves.back().get();
  }

  epoch::Guard g = epochs.pin();
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t k = rng.next_below(1u << 20);
    auto it = std::prev(oracle.upper_bound(k));
    EXPECT_EQ(t.find_leaf(k), it->second) << "key " << k;
  }
}

TEST_F(InnerTreeTest, BulkLoadMatchesIncremental) {
  std::vector<std::unique_ptr<FakeLeaf>> storage;
  std::vector<FakeLeaf*> leaves;
  std::vector<std::uint64_t> seps;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    storage.push_back(std::make_unique<FakeLeaf>(FakeLeaf{i * 100}));
    leaves.push_back(storage.back().get());
    if (i > 0) seps.push_back(i * 100);
  }
  Tree t(epochs);
  t.bulk_load(leaves, seps);
  epoch::Guard g = epochs.pin();
  Xoshiro256 rng(5);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t k = rng.next_below(100000);
    EXPECT_EQ(t.find_leaf(k)->low, k / 100 * 100);
  }
}

TEST_F(InnerTreeTest, BulkLoadSingleLeaf) {
  FakeLeaf only{0};
  Tree t(epochs);
  t.bulk_load({&only}, {});
  epoch::Guard g = epochs.pin();
  EXPECT_EQ(t.find_leaf(12345), &only);
}

TEST_F(InnerTreeTest, ConcurrentReadersDuringSplits) {
  // Readers must always find *a* leaf whose range covers the key, even while
  // the structure is being rewritten.
  Tree t(epochs);
  std::vector<std::unique_ptr<FakeLeaf>> leaves;
  std::mutex leaves_mu;
  leaves.push_back(std::make_unique<FakeLeaf>(FakeLeaf{0}));
  t.init_single(leaves[0].get());

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bad{0};
  std::atomic<std::uint64_t> max_sep{0};

  std::thread writer([&] {
    for (std::uint64_t s = 1; s <= 3000 && !stop; ++s) {
      FakeLeaf* old_leaf;
      {
        std::lock_guard lk(leaves_mu);
        old_leaf = leaves.back().get();
        leaves.push_back(std::make_unique<FakeLeaf>(FakeLeaf{s * 10}));
      }
      t.insert_split(s * 10, old_leaf, leaves.back().get());
      max_sep.store(s * 10, std::memory_order_release);
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      Xoshiro256 rng(static_cast<std::uint64_t>(r) + 7);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t bound = max_sep.load(std::memory_order_acquire) + 10;
        const std::uint64_t k = rng.next_below(bound);
        epoch::Guard g = epochs.pin();
        FakeLeaf* leaf = t.find_leaf(k);
        // The leaf's lower bound must never exceed the key; a lagging
        // snapshot may return a leaf that has since split (low too small),
        // which the owning tree resolves via the leaf chain — that is fine.
        if (leaf == nullptr || leaf->low > k) bad.fetch_add(1);
      }
    });
  }
  writer.join();
  stop = true;
  for (auto& th : readers) th.join();
  EXPECT_EQ(bad.load(), 0u);
}

// --- COW install fast path --------------------------------------------

std::uint64_t smo_counter(const char* name) {
  return obs::snapshot().counter(name);
}

TEST_F(InnerTreeTest, CowInstallTakesFastPath) {
  const std::uint64_t installs0 = smo_counter("htm.smo.installs");
  const std::uint64_t roots0 = smo_counter("htm.smo.root_installs");
  const std::uint64_t legacy0 = smo_counter("htm.smo.legacy_path");

  Tree t(epochs);
  ASSERT_TRUE(t.cow_install_enabled());
  FakeLeaf a{0}, b{100}, c{200};
  t.init_single(&a);
  epoch::Guard g = epochs.pin();
  t.insert_split(100, &a, &b);   // root is the level-0 parent: root install
  t.insert_split(200, &b, &c);
  EXPECT_EQ(t.find_leaf(0), &a);
  EXPECT_EQ(t.find_leaf(150), &b);
  EXPECT_EQ(t.find_leaf(250), &c);

  EXPECT_EQ(smo_counter("htm.smo.installs") - installs0, 2u);
  EXPECT_EQ(smo_counter("htm.smo.root_installs") - roots0, 2u);
  EXPECT_EQ(smo_counter("htm.smo.legacy_path") - legacy0, 0u);
}

TEST_F(InnerTreeTest, ParentOverflowFallsBackToSerializedPath) {
  const std::uint64_t overflow0 = smo_counter("htm.smo.overflow_fallbacks");
  const std::uint64_t legacy0 = smo_counter("htm.smo.legacy_path");

  Tree t(epochs);
  std::vector<std::unique_ptr<FakeLeaf>> leaves;
  leaves.push_back(std::make_unique<FakeLeaf>(FakeLeaf{0}));
  t.init_single(leaves[0].get());
  epoch::Guard g = epochs.pin();
  // kFanout separators fill the root; the next split must propagate.
  for (std::uint64_t s = 1; s <= Tree::kFanout + 1; ++s) {
    FakeLeaf* old_leaf = leaves.back().get();
    leaves.push_back(std::make_unique<FakeLeaf>(FakeLeaf{s * 10}));
    t.insert_split(s * 10, old_leaf, leaves.back().get());
  }
  EXPECT_EQ(t.height(), 2);
  for (std::uint64_t k = 0; k <= (Tree::kFanout + 1) * 10; ++k)
    EXPECT_EQ(t.find_leaf(k)->low, k / 10 * 10) << "key " << k;

  EXPECT_GE(smo_counter("htm.smo.overflow_fallbacks") - overflow0, 1u);
  EXPECT_GE(smo_counter("htm.smo.legacy_path") - legacy0, 1u);
}

TEST_F(InnerTreeTest, CowDisabledRoutesEverySmoThroughLegacyPath) {
  const std::uint64_t installs0 = smo_counter("htm.smo.installs");
  const std::uint64_t legacy0 = smo_counter("htm.smo.legacy_path");

  Tree t(epochs, /*cow_install=*/false);
  ASSERT_FALSE(t.cow_install_enabled());
  FakeLeaf a{0}, b{100}, c{200};
  t.init_single(&a);
  epoch::Guard g = epochs.pin();
  t.insert_split(100, &a, &b);
  t.insert_split(200, &b, &c);
  EXPECT_EQ(t.find_leaf(150), &b);
  EXPECT_EQ(t.find_leaf(250), &c);

  EXPECT_EQ(smo_counter("htm.smo.installs") - installs0, 0u);
  EXPECT_EQ(smo_counter("htm.smo.legacy_path") - legacy0, 2u);
}

// Both install modes must produce identical routing for the same random
// split history — the semantics-preservation half of the COW rewrite.
TEST_F(InnerTreeTest, CowAndLegacyModesRouteIdentically) {
  for (const bool cow : {true, false}) {
    Tree t(epochs, cow);
    std::vector<std::unique_ptr<FakeLeaf>> leaves;
    std::map<std::uint64_t, FakeLeaf*> oracle;
    leaves.push_back(std::make_unique<FakeLeaf>(FakeLeaf{0}));
    t.init_single(leaves[0].get());
    oracle[0] = leaves[0].get();

    Xoshiro256 rng(7);
    for (int i = 0; i < 1500; ++i) {
      std::uint64_t sep = rng.next_below(1u << 18) + 1;
      if (oracle.count(sep) != 0) continue;
      auto it = std::prev(oracle.upper_bound(sep));
      leaves.push_back(std::make_unique<FakeLeaf>(FakeLeaf{sep}));
      t.insert_split(sep, it->second, leaves.back().get());
      oracle[sep] = leaves.back().get();
    }
    epoch::Guard g = epochs.pin();
    for (int i = 0; i < 30000; ++i) {
      const std::uint64_t k = rng.next_below(1u << 18);
      auto it = std::prev(oracle.upper_bound(k));
      ASSERT_EQ(t.find_leaf(k), it->second) << "cow=" << cow << " key " << k;
    }
  }
}

// Scripted aborts drive the install transaction through the retry machine's
// conflict/spurious/capacity arms; the install must still commit (under the
// fallback tiers) and routing must stay correct.
TEST_F(InnerTreeTest, ScriptedAbortsDoNotDerailInstalls) {
  using htm::AbortCause;
  const std::uint64_t installs0 = smo_counter("htm.smo.installs");

  htm::ScriptedAbortInjector inj({AbortCause::kConflict, AbortCause::kSpurious,
                                  AbortCause::kLockSubscription});
  htm::ScopedAbortInjector scope(&inj);

  Tree t(epochs);
  std::vector<std::unique_ptr<FakeLeaf>> leaves;
  leaves.push_back(std::make_unique<FakeLeaf>(FakeLeaf{0}));
  t.init_single(leaves[0].get());
  epoch::Guard g = epochs.pin();
  for (std::uint64_t s = 1; s <= 200; ++s) {
    FakeLeaf* old_leaf = leaves.back().get();
    leaves.push_back(std::make_unique<FakeLeaf>(FakeLeaf{s * 10}));
    t.insert_split(s * 10, old_leaf, leaves.back().get());
  }
  EXPECT_GT(inj.injected(), 0u);
  EXPECT_GT(smo_counter("htm.smo.installs") - installs0, 0u);
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t k = rng.next_below(2010);
    EXPECT_EQ(t.find_leaf(k)->low, k / 10 * 10);
  }
}

}  // namespace
}  // namespace rnt::inner
