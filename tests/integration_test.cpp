// Cross-module integration tests: file-backed pools with real reopen,
// multiple trees sharing one pool, allocator exhaustion behaviour, and
// mixed tree types over a common pool.
#include <gtest/gtest.h>

#include <cstdio>

#include "baselines/fptree.hpp"
#include "common/timing.hpp"
#include "core/rntree.hpp"
#include "nvm/pool.hpp"

namespace rnt {
namespace {

using Tree = core::RNTree<std::uint64_t, std::uint64_t>;

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = nvm::config();
    nvm::config().write_latency_ns = 0;
    nvm::config().per_line_ns = 0;
  }
  void TearDown() override { nvm::config() = saved_; }
  nvm::NvmConfig saved_;
};

TEST_F(IntegrationTest, FileBackedTreeSurvivesRealReopen) {
  const std::string path = ::testing::TempDir() + "/rnt_integration.pmem";
  std::remove(path.c_str());
  {
    nvm::PmemPool pool(32u << 20, path);
    Tree tree(pool);
    for (std::uint64_t i = 0; i < 2000; ++i) ASSERT_TRUE(tree.insert(i, i * 13));
    tree.close();
  }  // pool unmapped: a true process-lifetime boundary for the mapping
  {
    nvm::PmemPool pool(path);
    Tree tree(Tree::recover_t{}, pool);
    EXPECT_EQ(tree.size(), 2000u);
    for (std::uint64_t i = 0; i < 2000; ++i)
      ASSERT_EQ(tree.find(i), std::optional<std::uint64_t>(i * 13));
    tree.check_invariants();
  }
  std::remove(path.c_str());
}

TEST_F(IntegrationTest, FileBackedDirtyReopenTakesCrashPath) {
  const std::string path = ::testing::TempDir() + "/rnt_integration2.pmem";
  std::remove(path.c_str());
  {
    nvm::PmemPool pool(32u << 20, path);
    Tree tree(pool);
    for (std::uint64_t i = 0; i < 500; ++i) ASSERT_TRUE(tree.insert(i, i));
    // no close(): the pool stays dirty, like a crash with everything flushed
  }
  {
    nvm::PmemPool pool(path);
    EXPECT_FALSE(pool.clean_shutdown());
    Tree tree(Tree::recover_t{}, pool);
    EXPECT_EQ(tree.size(), 500u);
    tree.check_invariants();
  }
  std::remove(path.c_str());
}

TEST_F(IntegrationTest, TwoTreesShareOnePool) {
  nvm::PmemPool pool(std::size_t{64} << 20);
  Tree a(pool, {.dual_slot = true, .root_slot = 0});
  Tree b(pool, {.dual_slot = false, .root_slot = 1});
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(a.insert(i, i));
    ASSERT_TRUE(b.insert(i, i * 2));
  }
  EXPECT_EQ(a.find(500), std::optional<std::uint64_t>(500));
  EXPECT_EQ(b.find(500), std::optional<std::uint64_t>(1000));
  EXPECT_EQ(a.size(), 1000u);
  EXPECT_EQ(b.size(), 1000u);
}

TEST_F(IntegrationTest, MixedTreeTypesShareOnePool) {
  nvm::PmemPool pool(std::size_t{64} << 20);
  Tree rn(pool, {.dual_slot = true, .root_slot = 0});
  baselines::FPTree<> fp(pool, {.root_slot = 1});
  for (std::uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(rn.insert(i, i + 1));
    ASSERT_TRUE(fp.insert(i, i + 2));
  }
  EXPECT_EQ(rn.find(77), std::optional<std::uint64_t>(78));
  EXPECT_EQ(fp.find(77), std::optional<std::uint64_t>(79));
}

TEST_F(IntegrationTest, PoolExhaustionIsGraceful) {
  // A pool too small for the workload: leaf allocation eventually fails and
  // the tree reports kPoolExhausted instead of throwing or corrupting state.
  // The full tree stays readable and the failed insert left no trace.
  // (tests/pool_exhaustion_test.cpp sweeps this across every tree.)
  nvm::PmemPool pool(std::size_t{4} << 20);  // ~2 MB usable
  Tree tree(pool);
  std::uint64_t filled = 0;
  common::Status st = common::OkStatus();
  for (std::uint64_t i = 0; i < 10'000'000; ++i) {
    st = tree.insert(i, i);
    if (!st) break;
    ++filled;
  }
  ASSERT_FALSE(st) << "pool never filled";
  EXPECT_EQ(st.code(), common::StatusCode::kPoolExhausted);
  EXPECT_EQ(tree.size(), filled);
  EXPECT_FALSE(tree.find(filled).has_value());  // failed insert left no trace
  EXPECT_EQ(tree.find(0), std::optional<std::uint64_t>(0));
  EXPECT_EQ(tree.find(filled - 1), std::optional<std::uint64_t>(filled - 1));
}

TEST_F(IntegrationTest, CloseIsIdempotentAcrossRecoveryGenerations) {
  nvm::PmemPool pool(std::size_t{32} << 20);
  {
    Tree tree(pool);
    for (std::uint64_t i = 0; i < 300; ++i) ASSERT_TRUE(tree.insert(i, 1));
    tree.close();
  }
  for (int gen = 0; gen < 3; ++gen) {
    pool.reopen_volatile();
    Tree tree(Tree::recover_t{}, pool);
    EXPECT_EQ(tree.size(), 300u + static_cast<std::uint64_t>(gen));
    ASSERT_TRUE(tree.insert(1000 + static_cast<std::uint64_t>(gen), 1));
    tree.close();
  }
}

TEST_F(IntegrationTest, LatencyInjectionIsObservable) {
  // The configured NVM latency must actually slow modifies (guards against
  // the injection silently breaking).
  nvm::PmemPool pool(std::size_t{64} << 20);
  Tree tree(pool);
  for (std::uint64_t i = 0; i < 1000; ++i) ASSERT_TRUE(tree.insert(i, i));

  auto time_updates = [&](std::uint32_t ns) {
    nvm::config().write_latency_ns = ns;
    const std::uint64_t t0 = now_ns();
    for (std::uint64_t i = 0; i < 1000; ++i) EXPECT_TRUE(tree.update(i, i));
    return now_ns() - t0;
  };
  const std::uint64_t fast = time_updates(0);
  const std::uint64_t slow = time_updates(100'000);  // 100 us x 2 per update
  EXPECT_GT(slow, fast + 1000u * 150'000u);
}

}  // namespace
}  // namespace rnt
