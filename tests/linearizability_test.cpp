// Linearizability checking for concurrent RNTree histories.
//
// Wing & Gong-style checker: worker threads record every operation with
// invocation/response timestamps drawn from one global atomic ticket
// counter (fetch_add is itself linearizable, so ticket order is consistent
// with real time: res(A) < inv(B) in tickets implies A really completed
// before B started).  The checker then searches for a sequential order of
// all operations that (a) respects that real-time precedence and (b) makes
// every recorded result legal against a std::unordered_map oracle.  DFS
// over per-thread queues with memoization on (queue positions, oracle
// hash); inserted values are unique per (thread, seq), which prunes the
// search hard — a find's result pins which insert preceded it.
//
// Three concurrent legs: the COW SMO install path (cow_smo=true), the
// pre-COW serialized path (cow_smo=false), and COW under a seeded abort
// storm targeted at install transactions (SmoTargetedInjector) — the
// install retry/fallback machine must stay linearizable when every tier
// gets exercised.  Plus checker self-tests on hand-built histories,
// including a non-linearizable one the checker must reject.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "core/rntree.hpp"
#include "htm/abort_inject.hpp"
#include "htm/smo.hpp"
#include "nvm/pool.hpp"

namespace rnt {
namespace {

using Tree = core::RNTree<std::uint64_t, std::uint64_t>;

enum class Kind : std::uint8_t { kInsert, kUpdate, kRemove, kFind };

struct Op {
  Kind kind;
  std::uint64_t key = 0;
  std::uint64_t val = 0;    // argument of insert/update
  bool ok = false;          // recorded status of insert/update/remove
  bool found = false;       // find: hit?
  std::uint64_t rval = 0;   // find: value when hit
  std::uint64_t inv = 0;    // invocation ticket
  std::uint64_t res = 0;    // response ticket
};

using History = std::vector<std::vector<Op>>;  // per-thread, program order

// --- the checker ------------------------------------------------------------

class LinChecker {
 public:
  enum class Verdict { kLinearizable, kNotLinearizable, kBudgetExceeded };

  explicit LinChecker(const History& h, std::uint64_t max_states = 20'000'000)
      : h_(h), budget_(max_states), pos_(h.size(), 0) {
    for (const auto& q : h_) remaining_ += q.size();
  }

  Verdict check() {
    const bool ok = dfs();
    if (exceeded_) return Verdict::kBudgetExceeded;
    return ok ? Verdict::kLinearizable : Verdict::kNotLinearizable;
  }

 private:
  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ull;
    return x ^ (x >> 33);
  }
  static std::uint64_t entry_hash(std::uint64_t k, std::uint64_t v) {
    return mix(k * 0x9E3779B97F4A7C15ull + 0x165667B19E3779F9ull) ^ mix(v + 1);
  }

  bool dfs() {
    if (remaining_ == 0) return true;
    if (++states_ > budget_) {
      exceeded_ = true;
      return false;
    }
    // Memoize on (positions, oracle state).  64-bit key: a false collision
    // would wrongly prune one state; with <=budget_ states the collision
    // odds are ~n^2/2^64 — negligible for a test, and the failure mode is
    // a false negative we would notice, never a false pass... actually a
    // wrong prune could only hide a witness (flaky FAIL), never fake one.
    std::uint64_t ph = 0;
    for (std::size_t p : pos_) ph = ph * 1000003ull + p;
    if (!seen_.insert(mix(ph) ^ model_hash_ * 0x9E3779B97F4A7C15ull).second)
      return false;

    // Candidate heads: h may be linearized first iff no other pending head
    // completed before h was invoked (h.inv < every other head's res).
    std::uint64_t min1 = ~0ull, min2 = ~0ull;
    for (std::size_t t = 0; t < h_.size(); ++t) {
      if (pos_[t] >= h_[t].size()) continue;
      const std::uint64_t r = h_[t][pos_[t]].res;
      if (r < min1) { min2 = min1; min1 = r; }
      else if (r < min2) { min2 = r; }
    }
    for (std::size_t t = 0; t < h_.size(); ++t) {
      if (pos_[t] >= h_[t].size()) continue;
      const Op& op = h_[t][pos_[t]];
      const std::uint64_t others_min = op.res == min1 ? min2 : min1;
      if (op.inv >= others_min) continue;
      if (try_op(t, op)) return true;
      if (exceeded_) return false;
    }
    return false;
  }

  // Applies op to the oracle if its recorded result is legal here, recurses,
  // undoes.  Returns true iff a full linearization was found down this arm.
  bool try_op(std::size_t t, const Op& op) {
    bool mutated = false, had_old = false;
    std::uint64_t old_val = 0;
    bool legal;
    switch (op.kind) {
      case Kind::kInsert: {
        const bool absent = model_.find(op.key) == model_.end();
        legal = absent == op.ok;
        if (legal && op.ok) {
          model_.emplace(op.key, op.val);
          model_hash_ ^= entry_hash(op.key, op.val);
          mutated = true;
        }
        break;
      }
      case Kind::kUpdate: {
        auto it = model_.find(op.key);
        legal = (it != model_.end()) == op.ok;
        if (legal && op.ok) {
          had_old = true;
          old_val = it->second;
          model_hash_ ^= entry_hash(op.key, old_val);
          it->second = op.val;
          model_hash_ ^= entry_hash(op.key, op.val);
          mutated = true;
        }
        break;
      }
      case Kind::kRemove: {
        auto it = model_.find(op.key);
        legal = (it != model_.end()) == op.ok;
        if (legal && op.ok) {
          had_old = true;
          old_val = it->second;
          model_hash_ ^= entry_hash(op.key, old_val);
          model_.erase(it);
          mutated = true;
        }
        break;
      }
      case Kind::kFind: {
        auto it = model_.find(op.key);
        legal = (it != model_.end()) == op.found &&
                (!op.found || it->second == op.rval);
        break;
      }
      default:
        legal = false;
    }
    bool done = false;
    if (legal) {
      pos_[t]++;
      remaining_--;
      done = dfs();
      remaining_++;
      pos_[t]--;
    }
    if (mutated) {  // undo
      switch (op.kind) {
        case Kind::kInsert:
          model_hash_ ^= entry_hash(op.key, op.val);
          model_.erase(op.key);
          break;
        case Kind::kUpdate:
          model_hash_ ^= entry_hash(op.key, op.val);
          model_[op.key] = old_val;
          model_hash_ ^= entry_hash(op.key, old_val);
          break;
        case Kind::kRemove:
          if (had_old) {
            model_.emplace(op.key, old_val);
            model_hash_ ^= entry_hash(op.key, old_val);
          }
          break;
        default:
          break;
      }
    }
    return done;
  }

  const History& h_;
  const std::uint64_t budget_;
  std::vector<std::size_t> pos_;
  std::unordered_map<std::uint64_t, std::uint64_t> model_;
  std::uint64_t model_hash_ = 0;
  std::unordered_set<std::uint64_t> seen_;
  std::uint64_t remaining_ = 0;
  std::uint64_t states_ = 0;
  bool exceeded_ = false;
};

// --- history recording -------------------------------------------------------

History record_history(Tree& tree, int threads, int ops_per_thread,
                       std::uint64_t keyspace, std::uint64_t seed) {
  std::atomic<std::uint64_t> clock{0};
  std::atomic<bool> go{false};
  History h(threads);
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(seed + static_cast<std::uint64_t>(t) * 0x9E3779B9ull);
      auto& ops = h[t];
      ops.reserve(ops_per_thread);
      while (!go.load(std::memory_order_acquire)) {}
      for (int i = 0; i < ops_per_thread; ++i) {
        const std::uint64_t draw = rng.next_below(100);
        Op op{};
        op.key = rng.next_below(keyspace);
        // Unique value per (thread, seq): a find's hit identifies exactly
        // which write it observed.
        op.val = (static_cast<std::uint64_t>(t) << 20) |
                 static_cast<std::uint64_t>(i);
        if (draw < 45) {
          op.kind = Kind::kInsert;
          op.inv = clock.fetch_add(1, std::memory_order_relaxed);
          op.ok = static_cast<bool>(tree.insert(op.key, op.val));
          op.res = clock.fetch_add(1, std::memory_order_relaxed);
        } else if (draw < 60) {
          op.kind = Kind::kUpdate;
          op.inv = clock.fetch_add(1, std::memory_order_relaxed);
          op.ok = static_cast<bool>(tree.update(op.key, op.val));
          op.res = clock.fetch_add(1, std::memory_order_relaxed);
        } else if (draw < 75) {
          op.kind = Kind::kRemove;
          op.inv = clock.fetch_add(1, std::memory_order_relaxed);
          op.ok = tree.remove(op.key);
          op.res = clock.fetch_add(1, std::memory_order_relaxed);
        } else {
          op.kind = Kind::kFind;
          op.inv = clock.fetch_add(1, std::memory_order_relaxed);
          const std::optional<std::uint64_t> v = tree.find(op.key);
          op.res = clock.fetch_add(1, std::memory_order_relaxed);
          op.found = v.has_value();
          op.rval = v.value_or(0);
        }
        ops.push_back(op);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& th : workers) th.join();
  return h;
}

void expect_linearizable(const History& h, const char* what) {
  LinChecker checker(h);
  const LinChecker::Verdict v = checker.check();
  EXPECT_NE(v, LinChecker::Verdict::kBudgetExceeded)
      << what << ": checker state budget exceeded";
  EXPECT_EQ(v, LinChecker::Verdict::kLinearizable) << what;
}

// --- checker self-tests -------------------------------------------------------

Op mk(Kind k, std::uint64_t key, std::uint64_t val, bool ok, bool found,
      std::uint64_t rval, std::uint64_t inv, std::uint64_t res) {
  Op o;
  o.kind = k;
  o.key = key;
  o.val = val;
  o.ok = ok;
  o.found = found;
  o.rval = rval;
  o.inv = inv;
  o.res = res;
  return o;
}

TEST(LinCheckerSelfTest, AcceptsOverlappingButOrderableHistory) {
  // T0: insert(5, 100) over tickets [0, 3]; T1: find(5) -> 100 over [1, 2]
  // (fully nested in the insert).  Legal: linearize insert first.
  History h(2);
  h[0].push_back(mk(Kind::kInsert, 5, 100, true, false, 0, 0, 3));
  h[1].push_back(mk(Kind::kFind, 5, 0, false, true, 100, 1, 2));
  EXPECT_EQ(LinChecker(h).check(), LinChecker::Verdict::kLinearizable);
}

TEST(LinCheckerSelfTest, RejectsStaleReadAfterCompletedInsert) {
  // insert(5, 100) COMPLETES (res=1) before find(5) is invoked (inv=2), yet
  // the find missed.  No sequential order explains that.
  History h(2);
  h[0].push_back(mk(Kind::kInsert, 5, 100, true, false, 0, 0, 1));
  h[1].push_back(mk(Kind::kFind, 5, 0, false, false, 0, 2, 3));
  EXPECT_EQ(LinChecker(h).check(), LinChecker::Verdict::kNotLinearizable);
}

TEST(LinCheckerSelfTest, RejectsValueFromNowhere) {
  // find returns a value nobody ever wrote.
  History h(2);
  h[0].push_back(mk(Kind::kInsert, 5, 100, true, false, 0, 0, 1));
  h[1].push_back(mk(Kind::kFind, 5, 0, false, true, 777, 2, 3));
  EXPECT_EQ(LinChecker(h).check(), LinChecker::Verdict::kNotLinearizable);
}

TEST(LinCheckerSelfTest, AcceptsRacingInsertsOnOneKey) {
  // Two overlapping inserts on one key: exactly one may succeed, in either
  // order; a later find must see the winner.
  History h(3);
  h[0].push_back(mk(Kind::kInsert, 9, 1, true, false, 0, 0, 4));
  h[1].push_back(mk(Kind::kInsert, 9, 2, false, false, 0, 1, 3));
  h[2].push_back(mk(Kind::kFind, 9, 0, false, true, 1, 5, 6));
  EXPECT_EQ(LinChecker(h).check(), LinChecker::Verdict::kLinearizable);
}

// --- concurrent tree legs ------------------------------------------------------

TEST(Linearizability, CowSmoHistorySplitHeavy) {
  // Wide keyspace on a fresh tree: the insert-heavy mix splits leaves
  // constantly, so COW installs race the recorded operations throughout.
  nvm::PmemPool pool(std::size_t{128} << 20);
  Tree tree(pool, {.dual_slot = true, .root_slot = 0, .cow_smo = true});
  const History h = record_history(tree, 4, 300, 4096, 0x11CE);
  expect_linearizable(h, "cow_smo split-heavy");
}

TEST(Linearizability, LegacySmoHistorySplitHeavy) {
  // Same mix through the pre-COW serialized SMO path: the rewrite must not
  // have been load-bearing for correctness in either direction.
  nvm::PmemPool pool(std::size_t{128} << 20);
  Tree tree(pool, {.dual_slot = true, .root_slot = 0, .cow_smo = false});
  const History h = record_history(tree, 4, 300, 4096, 0x2BAD);
  expect_linearizable(h, "legacy split-heavy");
}

TEST(Linearizability, CowSmoHistoryHotKeys) {
  // Small hot set: maximum result-level contention (racing inserts/removes
  // on the same keys), little structural churn.
  nvm::PmemPool pool(std::size_t{64} << 20);
  Tree tree(pool, {.dual_slot = true, .root_slot = 0, .cow_smo = true});
  const History h = record_history(tree, 4, 250, 96, 0x5EED);
  expect_linearizable(h, "cow_smo hot keys");
}

TEST(Linearizability, CowSmoHistoryUnderInstallAbortStorm) {
  // Seeded abort storm aimed ONLY at SMO install transactions: every retry
  // tier of the install machine (HTM retry, backoff, lock fallback) runs
  // while the recorded operations race it.
  htm::RandomAbortInjector rnd(0xBADF00D, /*permille=*/800);
  htm::SmoTargetedInjector smo_only(rnd);
  htm::ScopedAbortInjector scope(&smo_only);

  nvm::PmemPool pool(std::size_t{128} << 20);
  Tree tree(pool, {.dual_slot = true, .root_slot = 0, .cow_smo = true});
  const History h = record_history(tree, 4, 300, 2048, 0xAB0);
  expect_linearizable(h, "cow_smo under install abort storm");
}

}  // namespace
}  // namespace rnt
