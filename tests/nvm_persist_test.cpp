// Tests for the persistent-instruction primitives: counters, latency
// accounting, and the paper's "persistent instruction" compound semantics.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/timing.hpp"
#include "nvm/persist.hpp"

namespace rnt::nvm {
namespace {

class PersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = config();
    config().write_latency_ns = 0;  // no delays unless a test asks for them
    config().per_line_ns = 0;
    tls_stats().reset();
  }
  void TearDown() override { config() = saved_; }
  NvmConfig saved_;
};

TEST_F(PersistTest, PersistCountsOneCompound) {
  alignas(64) char buf[256];
  const PersistStats before = tls_stats();
  persist(buf, 64);
  const PersistStats d = tls_stats() - before;
  EXPECT_EQ(d.persist, 1u);
  EXPECT_EQ(d.clwb, 1u);
  EXPECT_EQ(d.fence, 1u);
  EXPECT_EQ(d.lines, 1u);
}

TEST_F(PersistTest, PersistFlushesEveryTouchedLine) {
  alignas(64) char buf[512];
  const PersistStats before = tls_stats();
  persist(buf + 32, 64);  // straddles two lines
  PersistStats d = tls_stats() - before;
  EXPECT_EQ(d.persist, 1u);
  EXPECT_EQ(d.clwb, 2u);

  const PersistStats before2 = tls_stats();
  persist(buf, 512);
  d = tls_stats() - before2;
  EXPECT_EQ(d.clwb, 8u);
  EXPECT_EQ(d.fence, 1u);
}

TEST_F(PersistTest, FenceWithoutPendingChargesNothing) {
  const PersistStats before = tls_stats();
  sfence();
  const PersistStats d = tls_stats() - before;
  EXPECT_EQ(d.fence, 1u);
  EXPECT_EQ(d.lines, 0u);
}

TEST_F(PersistTest, LatencyChargedAtFence) {
  alignas(64) char buf[64];
  config().write_latency_ns = 200'000;  // 200 us: measurable
  const std::uint64_t t0 = now_ns();
  persist(buf, 64);
  const std::uint64_t dt = now_ns() - t0;
  EXPECT_GE(dt, 150'000u);
}

TEST_F(PersistTest, PerLineBandwidthTerm) {
  alignas(64) char buf[64 * 32];
  config().write_latency_ns = 0;
  config().per_line_ns = 20'000;  // inflated for measurability
  const std::uint64_t t0 = now_ns();
  persist(buf, sizeof(buf));  // 32 lines -> 31 extra-line charges
  const std::uint64_t dt = now_ns() - t0;
  EXPECT_GE(dt, 31u * 20'000u * 3 / 4);
}

TEST_F(PersistTest, StoreHelpersWriteThrough) {
  std::uint64_t x = 0;
  store(x, std::uint64_t{42});
  EXPECT_EQ(x, 42u);

  std::atomic<std::uint64_t> a{0};
  store_release(a, std::uint64_t{7});
  EXPECT_EQ(a.load(), 7u);

  char src[16] = "hello";
  char dst[16] = {};
  copy_nvm(dst, src, 16);
  EXPECT_STREQ(dst, "hello");

  set_nvm(dst, 0, 16);
  EXPECT_EQ(dst[0], 0);
}

TEST_F(PersistTest, AggregateSumsAcrossThreads) {
  alignas(64) char buf[64];
  reset_aggregate_stats();
  persist(buf, 8);
  std::thread t([&] {
    alignas(64) char tbuf[64];
    persist(tbuf, 8);
    persist(tbuf, 8);
  });
  t.join();
  const PersistStats agg = aggregate_stats();
  EXPECT_EQ(agg.persist, 3u);
  EXPECT_EQ(agg.fence, 3u);
}

TEST_F(PersistTest, ResetAggregateClears) {
  alignas(64) char buf[64];
  persist(buf, 8);
  reset_aggregate_stats();
  EXPECT_EQ(aggregate_stats().persist, 0u);
  EXPECT_EQ(tls_stats().persist, 0u);
}

TEST_F(PersistTest, AggregateIncludesExitedThreads) {
  reset_aggregate_stats();
  // Both recorder threads exit before aggregation; their counts must have
  // been folded into the registry's retired totals, not lost.
  for (int t = 0; t < 2; ++t) {
    std::thread([] {
      alignas(64) char tbuf[64];
      persist(tbuf, 8);
      persist(tbuf, 8);
    }).join();
  }
  const PersistStats agg = aggregate_stats();
  EXPECT_EQ(agg.persist, 4u);
  EXPECT_EQ(agg.fence, 4u);
  EXPECT_EQ(agg.clwb, 4u);
}

TEST_F(PersistTest, ResetAggregateSafeWhileRecordersLive) {
  // Exactness under a concurrent reset is out of contract; this pins down
  // that the operation is crash-free and the registry stays consistent
  // (value never exceeds what the recorders could have written).
  reset_aggregate_stats();
  std::atomic<bool> stop{false};
  std::vector<std::thread> recorders;
  for (int t = 0; t < 3; ++t) {
    recorders.emplace_back([&] {
      alignas(64) char tbuf[64];
      while (!stop.load(std::memory_order_relaxed)) persist(tbuf, 8);
    });
  }
  for (int i = 0; i < 200; ++i) {
    reset_aggregate_stats();
    (void)aggregate_stats();
  }
  stop = true;
  for (auto& t : recorders) t.join();
  reset_aggregate_stats();
  EXPECT_EQ(aggregate_stats().persist, 0u);
}

TEST_F(PersistTest, NoShadowActiveByDefault) {
  EXPECT_EQ(shadow_active(), nullptr);
}

}  // namespace
}  // namespace rnt::nvm
