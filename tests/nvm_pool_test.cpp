// Tests for PmemPool: allocation, offsets, roots, undo slots, file-backed
// durability, and restart semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cacheline.hpp"
#include "nvm/pool.hpp"
#include "nvm/shadow.hpp"

namespace rnt::nvm {
namespace {

constexpr std::size_t kPoolSize = 16u << 20;

class PoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = config();
    config().write_latency_ns = 0;
    config().per_line_ns = 0;
  }
  void TearDown() override { config() = saved_; }
  NvmConfig saved_;
};

TEST_F(PoolTest, AllocReturnsAlignedDisjointBlocks) {
  PmemPool pool(kPoolSize);
  const std::uint64_t a = pool.alloc(100);
  const std::uint64_t b = pool.alloc(100);
  ASSERT_NE(a, 0u);
  ASSERT_NE(b, 0u);
  EXPECT_EQ(a % kCacheLineSize, 0u);
  EXPECT_EQ(b % kCacheLineSize, 0u);
  EXPECT_GE(b, a + 128);  // 100 rounds to 128
}

TEST_F(PoolTest, OffsetPointerRoundTrip) {
  PmemPool pool(kPoolSize);
  const std::uint64_t off = pool.alloc(64);
  char* p = pool.ptr<char>(off);
  EXPECT_EQ(pool.off(p), off);
  EXPECT_EQ(pool.ptr<char>(0), nullptr);
  EXPECT_EQ(pool.off(nullptr), 0u);
}

TEST_F(PoolTest, FreeListRecyclesSameSizeClass) {
  PmemPool pool(kPoolSize);
  const std::uint64_t a = pool.alloc(256);
  pool.free(a, 256);
  const std::uint64_t b = pool.alloc(256);
  EXPECT_EQ(a, b);
}

TEST_F(PoolTest, ExhaustionReturnsNull) {
  PmemPool pool(4u << 20);
  std::uint64_t last = 1;
  int count = 0;
  while ((last = pool.alloc(1u << 16)) != 0) ++count;
  EXPECT_GT(count, 10);
  EXPECT_EQ(pool.alloc(1u << 16), 0u);
}

TEST_F(PoolTest, RootsPersistAndReadBack) {
  PmemPool pool(kPoolSize);
  EXPECT_EQ(pool.root(0), 0u);
  const std::uint64_t off = pool.alloc(64);
  pool.set_root(0, off);
  pool.set_root(3, off + 64);
  EXPECT_EQ(pool.root(0), off);
  EXPECT_EQ(pool.root(3), off + 64);
}

TEST_F(PoolTest, UndoSlotsAreZeroInitialisedAndDistinct) {
  PmemPool pool(kPoolSize);
  for (int t = 0; t < kMaxThreads; ++t) {
    UndoSlot& s = pool.undo_slot(t);
    EXPECT_EQ(s.state, UndoSlot::kIdle);
  }
  EXPECT_NE(&pool.undo_slot(0), &pool.undo_slot(1));
  EXPECT_GE(reinterpret_cast<char*>(&pool.undo_slot(1)) -
                reinterpret_cast<char*>(&pool.undo_slot(0)),
            static_cast<std::ptrdiff_t>(sizeof(UndoSlot)));
}

TEST_F(PoolTest, CleanFlagLifecycle) {
  PmemPool pool(kPoolSize);
  EXPECT_TRUE(pool.clean_shutdown());
  pool.mark_dirty();
  EXPECT_FALSE(pool.clean_shutdown());
  pool.close_clean();
  EXPECT_TRUE(pool.clean_shutdown());
}

TEST_F(PoolTest, ReopenVolatileDropsFreeLists) {
  PmemPool pool(kPoolSize);
  const std::uint64_t a = pool.alloc(256);
  pool.free(a, 256);
  pool.reopen_volatile();
  // The freed block is forgotten (leak-on-crash is the documented model);
  // a new allocation comes from the high-water region instead.
  const std::uint64_t b = pool.alloc(256);
  EXPECT_NE(a, b);
}

TEST_F(PoolTest, HighWaterSurvivesReopen) {
  PmemPool pool(kPoolSize);
  std::uint64_t last = 0;
  for (int i = 0; i < 100; ++i) last = pool.alloc(4096);
  pool.reopen_volatile();
  const std::uint64_t next = pool.alloc(4096);
  // Conservative: never hands out space below the persisted high-water mark.
  EXPECT_GT(next, last);
}

TEST_F(PoolTest, CloseCleanIsExactlyThreeTrackedEvents) {
  // The clean-shutdown protocol window the crash tests below step through:
  // store(used), store(clean), one fence for the whole header persist.
  PmemPool pool(kPoolSize);
  pool.mark_dirty();
  ShadowPool shadow(pool);
  pool.close_clean();
  EXPECT_EQ(shadow.events_seen(), 3u);
}

TEST_F(PoolTest, CloseCleanCrashBetweenFlagStoreAndFence) {
  // Crash after the clean-flag store but before its fence: under kNone the
  // flag update is lost, so the pool reopens dirty and the next open takes
  // the crash-recovery path — data persisted before close_clean() survives.
  PmemPool pool(kPoolSize);
  const std::uint64_t off = pool.alloc(64);
  auto* p = pool.ptr<std::uint64_t>(off);
  store(*p, std::uint64_t{0xABCu});
  persist(p, 8);
  pool.mark_dirty();
  {
    ShadowPool shadow(pool);
    shadow.schedule_crash_after(2);
    EXPECT_THROW(pool.close_clean(), CrashPoint);
    shadow.simulate_crash(EvictionMode::kNone);
  }
  pool.reopen_volatile();
  EXPECT_FALSE(pool.clean_shutdown());
  EXPECT_EQ(*p, 0xABCu);
}

TEST_F(PoolTest, CloseCleanCrashFlagMayLandViaEviction) {
  // Same crash point under random eviction: the header line either evicted
  // (flag landed -> clean reopen, safe because the data was already
  // durable) or not (dirty reopen).  Both outcomes must occur across seeds
  // and the data must survive either way.
  bool clean_seen = false;
  bool dirty_seen = false;
  for (std::uint64_t seed = 0; seed < 64 && !(clean_seen && dirty_seen);
       ++seed) {
    PmemPool pool(kPoolSize);
    const std::uint64_t off = pool.alloc(64);
    auto* p = pool.ptr<std::uint64_t>(off);
    store(*p, std::uint64_t{0xABCu});
    persist(p, 8);
    pool.mark_dirty();
    {
      ShadowPool shadow(pool);
      shadow.schedule_crash_after(2);
      EXPECT_THROW(pool.close_clean(), CrashPoint);
      shadow.simulate_crash(EvictionMode::kRandomEviction, seed);
    }
    pool.reopen_volatile();
    EXPECT_EQ(*p, 0xABCu);
    if (pool.clean_shutdown())
      clean_seen = true;
    else
      dirty_seen = true;
  }
  EXPECT_TRUE(clean_seen) << "no seed ever evicted the header line";
  EXPECT_TRUE(dirty_seen) << "every seed evicted the header line";
}

TEST_F(PoolTest, CloseCleanCrashOnFenceReopensClean) {
  // Crash ON the fence: pending header lines drain before the CrashPoint
  // fires, so the clean flag is durable and the reopen is clean.
  PmemPool pool(kPoolSize);
  pool.mark_dirty();
  {
    ShadowPool shadow(pool);
    shadow.schedule_crash_after(3);
    EXPECT_THROW(pool.close_clean(), CrashPoint);
    shadow.simulate_crash(EvictionMode::kNone);
  }
  pool.reopen_volatile();
  EXPECT_TRUE(pool.clean_shutdown());
}

TEST_F(PoolTest, FileBackedDurabilityAcrossReopen) {
  const std::string path = ::testing::TempDir() + "/rnt_pool_test.pmem";
  std::remove(path.c_str());
  std::uint64_t off = 0;
  {
    PmemPool pool(kPoolSize, path);
    off = pool.alloc(64);
    auto* p = pool.ptr<std::uint64_t>(off);
    store(*p, std::uint64_t{0xDEADBEEFull});
    persist(p, sizeof(*p));
    pool.set_root(0, off);
    pool.close_clean();
  }
  {
    PmemPool pool(path);
    EXPECT_TRUE(pool.clean_shutdown());
    EXPECT_EQ(pool.root(0), off);
    EXPECT_EQ(*pool.ptr<std::uint64_t>(off), 0xDEADBEEFull);
  }
  std::remove(path.c_str());
}

TEST_F(PoolTest, TooSmallPoolThrows) {
  EXPECT_THROW(PmemPool(4096), std::invalid_argument);
}

TEST_F(PoolTest, DataStartClearsHeaderRegion) {
  PmemPool pool(kPoolSize);
  const std::uint64_t first = pool.alloc(64);
  // First allocation must land beyond the header + undo area.
  EXPECT_GE(first, static_cast<std::uint64_t>(sizeof(UndoSlot)) * kMaxThreads);
  EXPECT_GE(first, PmemPool::data_begin());
}

TEST_F(PoolTest, ThreadCachesGiveDisjointBlocksAcrossThreads) {
  PmemPool pool(kPoolSize);
  constexpr int kPerThread = 200;
  std::vector<std::uint64_t> a(kPerThread), b(kPerThread);
  std::thread ta([&] {
    for (int i = 0; i < kPerThread; ++i) a[i] = pool.alloc(64);
  });
  std::thread tb([&] {
    for (int i = 0; i < kPerThread; ++i) b[i] = pool.alloc(64 * 3);
  });
  ta.join();
  tb.join();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> spans;
  for (std::uint64_t off : a) spans.emplace_back(off, off + 64);
  for (std::uint64_t off : b) spans.emplace_back(off, off + 64 * 3);
  std::sort(spans.begin(), spans.end());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_NE(spans[i].first, 0u);
    EXPECT_EQ(spans[i].first % kCacheLineSize, 0u);
    EXPECT_GE(spans[i].first, PmemPool::data_begin());
    if (i > 0) EXPECT_GE(spans[i].first, spans[i - 1].second) << "overlap at " << i;
  }
}

// Satellite regression: a thread's partially-carved sub-chunk must not leak
// when the thread exits — the exit hook folds the remainder into the reclaim
// list, and the very next refill (any thread) reuses it.
TEST_F(PoolTest, ThreadExitFoldsCacheRemainderForReuse) {
  PmemPool pool(kPoolSize);
  std::uint64_t a = 0;
  std::thread t([&] { a = pool.alloc(64); });
  t.join();
  ASSERT_NE(a, 0u);
  // This thread's cache is empty, so its refill must prefer the folded span
  // (which starts right after the exited thread's one block) over carving a
  // fresh sub-chunk from the high-water mark.
  const std::uint64_t b = pool.alloc(64);
  EXPECT_EQ(b, a + 64);
}

TEST_F(PoolTest, LargeBlocksBypassThreadCache) {
  PmemPool pool(kPoolSize);
  // A sub-chunk-sized block takes the direct bump path; interleaving with
  // small cached allocations must still produce disjoint blocks.
  const std::uint64_t small1 = pool.alloc(64);
  const std::uint64_t big = pool.alloc(PmemPool::kSubChunk);
  const std::uint64_t small2 = pool.alloc(64);
  EXPECT_EQ(small2, small1 + 64);  // same cache span, contiguous
  EXPECT_GE(big, small1 + PmemPool::kSubChunk);  // beyond the cached span
  EXPECT_TRUE(small2 + 64 <= big || small2 >= big + PmemPool::kSubChunk);
}

}  // namespace
}  // namespace rnt::nvm
