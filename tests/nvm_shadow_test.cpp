// Tests for the ShadowPool crash simulator — the core of the reproduction's
// crash-consistency story.  Verifies the modelled x86+NVM semantics:
// unflushed stores are lost, fenced stores survive, HTM-transaction stores
// are all-or-nothing, and injected CrashPoints fire deterministically.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>

#include "nvm/pool.hpp"
#include "nvm/shadow.hpp"

namespace rnt::nvm {
namespace {

constexpr std::size_t kPoolSize = 8u << 20;

class ShadowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = config();
    config().write_latency_ns = 0;
    config().per_line_ns = 0;
  }
  void TearDown() override { config() = saved_; }
  NvmConfig saved_;
};

TEST_F(ShadowTest, UnflushedStoreIsLostOnCrash) {
  PmemPool pool(kPoolSize);
  auto* p = pool.ptr<std::uint64_t>(pool.alloc(64));
  store(*p, std::uint64_t{1});
  persist(p, 8);

  ShadowPool shadow(pool);
  store(*p, std::uint64_t{2});  // dirty, never flushed
  EXPECT_EQ(*p, 2u);
  shadow.simulate_crash(EvictionMode::kNone);
  EXPECT_EQ(*p, 1u);  // rolled back to the durable value
}

TEST_F(ShadowTest, FlushedStoreSurvivesCrash) {
  PmemPool pool(kPoolSize);
  auto* p = pool.ptr<std::uint64_t>(pool.alloc(64));
  ShadowPool shadow(pool);
  store(*p, std::uint64_t{7});
  persist(p, 8);
  shadow.simulate_crash(EvictionMode::kNone);
  EXPECT_EQ(*p, 7u);
}

TEST_F(ShadowTest, ClwbWithoutFenceIsNotDurable) {
  PmemPool pool(kPoolSize);
  auto* p = pool.ptr<std::uint64_t>(pool.alloc(64));
  store(*p, std::uint64_t{5});
  persist(p, 8);
  ShadowPool shadow(pool);
  store(*p, std::uint64_t{9});
  clwb(p);  // writeback initiated, no fence
  shadow.simulate_crash(EvictionMode::kNone);
  EXPECT_EQ(*p, 5u);  // strict mode: pending lines are lost too
}

TEST_F(ShadowTest, StoreAfterClwbMakesLineDirtyAgain) {
  PmemPool pool(kPoolSize);
  auto* p = pool.ptr<std::uint64_t>(pool.alloc(64));
  ShadowPool shadow(pool);
  store(*p, std::uint64_t{1});
  clwb(p);
  store(*p, std::uint64_t{2});  // same line, after clwb, before fence
  sfence();
  // The fence drained an *empty* pending set for this line: value 2 was
  // re-dirtied and is not durable.
  shadow.simulate_crash(EvictionMode::kNone);
  EXPECT_NE(*p, 2u);
}

TEST_F(ShadowTest, LineGranularityRollsBackWholeLine) {
  PmemPool pool(kPoolSize);
  auto* base = pool.ptr<std::uint64_t>(pool.alloc(128));
  store(base[0], std::uint64_t{10});
  store(base[1], std::uint64_t{11});
  persist(base, 16);
  ShadowPool shadow(pool);
  store(base[0], std::uint64_t{20});
  store(base[1], std::uint64_t{21});  // same cache line
  shadow.simulate_crash(EvictionMode::kNone);
  EXPECT_EQ(base[0], 10u);
  EXPECT_EQ(base[1], 11u);
}

TEST_F(ShadowTest, IndependentLinesTrackedIndependently) {
  PmemPool pool(kPoolSize);
  auto* a = pool.ptr<std::uint64_t>(pool.alloc(64));
  auto* b = pool.ptr<std::uint64_t>(pool.alloc(64));
  ShadowPool shadow(pool);
  store(*a, std::uint64_t{1});
  store(*b, std::uint64_t{2});
  persist(a, 8);  // only a is flushed
  shadow.simulate_crash(EvictionMode::kNone);
  EXPECT_EQ(*a, 1u);
  EXPECT_NE(*b, 2u);
}

TEST_F(ShadowTest, HtmTransactionIsAllOrNothing) {
  PmemPool pool(kPoolSize);
  auto* a = pool.ptr<std::uint64_t>(pool.alloc(64));
  auto* b = pool.ptr<std::uint64_t>(pool.alloc(64));
  ShadowPool shadow(pool);

  // Uncommitted transaction: stores never reach NVM, even under random
  // eviction (RTM keeps speculative lines pinned in L1).
  htm_tx_begin();
  store(*a, std::uint64_t{1});
  store(*b, std::uint64_t{2});
  // Crash strikes before commit:
  shadow.simulate_crash(EvictionMode::kRandomEviction, /*seed=*/123);
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(*b, 0u);
}

TEST_F(ShadowTest, CommittedTransactionLinesBecomeEvictable) {
  PmemPool pool(kPoolSize);
  auto* a = pool.ptr<std::uint64_t>(pool.alloc(64));
  ShadowPool shadow(pool);
  htm_tx_begin();
  store(*a, std::uint64_t{3});
  htm_tx_commit();
  // Not yet flushed: strict crash loses it...
  EXPECT_EQ(shadow.unflushed_lines(), 1u);
  persist(a, 8);  // ...but an explicit flush makes it durable.
  shadow.simulate_crash(EvictionMode::kNone);
  EXPECT_EQ(*a, 3u);
}

TEST_F(ShadowTest, RandomEvictionIsSeedDeterministic) {
  PmemPool pool(kPoolSize);
  constexpr int kN = 64;
  auto* arr = pool.ptr<std::uint64_t>(pool.alloc(kN * 64));
  ShadowPool shadow(pool);

  auto run = [&](std::uint64_t seed) {
    for (int i = 0; i < kN; ++i) store(arr[i * 8], std::uint64_t(i + 100));
    shadow.simulate_crash(EvictionMode::kRandomEviction, seed);
    std::vector<std::uint64_t> out(kN);
    for (int i = 0; i < kN; ++i) out[i] = arr[i * 8];
    // Reset for the next run: make everything durable at 0.
    for (int i = 0; i < kN; ++i) store(arr[i * 8], std::uint64_t{0});
    persist(arr, kN * 64);
    return out;
  };

  const auto r1 = run(42);
  const auto r2 = run(42);
  EXPECT_EQ(r1, r2);
  // With 64 lines and p=1/2, some must survive and some must be lost.
  int survived = 0;
  for (int i = 0; i < kN; ++i) survived += (r1[i] != 0);
  EXPECT_GT(survived, 5);
  EXPECT_LT(survived, kN - 5);
}

TEST_F(ShadowTest, ScheduledCrashThrowsAtExactEvent) {
  PmemPool pool(kPoolSize);
  auto* p = pool.ptr<std::uint64_t>(pool.alloc(64));
  ShadowPool shadow(pool);
  shadow.schedule_crash_after(3);
  store(*p, std::uint64_t{1});  // event 1
  store(*p, std::uint64_t{2});  // event 2
  EXPECT_THROW(store(*p, std::uint64_t{3}), CrashPoint);  // event 3
  EXPECT_TRUE(shadow.crashed());
  // Subsequent traffic is ignored until simulate_crash().
  store(*p, std::uint64_t{4});
  persist(p, 8);
  shadow.simulate_crash(EvictionMode::kNone);
  EXPECT_EQ(*p, 0u);  // nothing was durable before the crash
  EXPECT_FALSE(shadow.crashed());
}

TEST_F(ShadowTest, FenceCountsAsEvent) {
  PmemPool pool(kPoolSize);
  auto* p = pool.ptr<std::uint64_t>(pool.alloc(64));
  ShadowPool shadow(pool);
  const std::uint64_t e0 = shadow.events_seen();
  store(*p, std::uint64_t{1});
  persist(p, 8);
  EXPECT_EQ(shadow.events_seen(), e0 + 2);  // store + fence
}

TEST_F(ShadowTest, CrashDuringPersistKeepsFencedPrefix) {
  PmemPool pool(kPoolSize);
  auto* p = pool.ptr<std::uint64_t>(pool.alloc(128));
  ShadowPool shadow(pool);
  store(p[0], std::uint64_t{1});
  persist(&p[0], 8);  // durable
  shadow.schedule_crash_after(1);
  EXPECT_THROW(store(p[8], std::uint64_t{2}), CrashPoint);
  shadow.simulate_crash(EvictionMode::kNone);
  EXPECT_EQ(p[0], 1u);
  EXPECT_EQ(p[8], 0u);
}

TEST_F(ShadowTest, ScheduleCrashAfterZeroThrows) {
  PmemPool pool(kPoolSize);
  ShadowPool shadow(pool);
  // n == 0 used to collide with the "disabled" sentinel and silently
  // schedule nothing; it is now rejected outright.
  EXPECT_THROW(shadow.schedule_crash_after(0), std::invalid_argument);
  EXPECT_FALSE(shadow.crash_scheduled());
}

TEST_F(ShadowTest, ScheduleAfterOneOnFreshShadowFires) {
  PmemPool pool(kPoolSize);
  auto* p = pool.ptr<std::uint64_t>(pool.alloc(64));
  ShadowPool shadow(pool);
  ASSERT_EQ(shadow.events_seen(), 0u);
  shadow.schedule_crash_after(1);
  EXPECT_TRUE(shadow.crash_scheduled());
  EXPECT_THROW(store(*p, std::uint64_t{1}), CrashPoint);
  EXPECT_TRUE(shadow.crashed());
  EXPECT_FALSE(shadow.crash_scheduled());
}

TEST_F(ShadowTest, CancelScheduledCrash) {
  PmemPool pool(kPoolSize);
  auto* p = pool.ptr<std::uint64_t>(pool.alloc(64));
  ShadowPool shadow(pool);
  shadow.schedule_crash_after(1);
  shadow.cancel_scheduled_crash();
  EXPECT_FALSE(shadow.crash_scheduled());
  EXPECT_NO_THROW(store(*p, std::uint64_t{1}));
  EXPECT_FALSE(shadow.crashed());
}

TEST_F(ShadowTest, CrashOnFenceLandsAfterPersistCompletes) {
  // Crash-on-fence semantics: the fence's pending lines drain to the
  // durable image BEFORE the CrashPoint fires, so a value whose persist was
  // the crashing event survives even the strictest crash.
  PmemPool pool(kPoolSize);
  auto* p = pool.ptr<std::uint64_t>(pool.alloc(64));
  ShadowPool shadow(pool);
  store(*p, std::uint64_t{9});  // event 1
  clwb(p);                      // no event; line pending
  shadow.schedule_crash_after(1);
  EXPECT_THROW(sfence(), CrashPoint);  // event 2 (the fence)
  shadow.simulate_crash(EvictionMode::kNone);
  EXPECT_EQ(*p, 9u);
}

TEST_F(ShadowTest, CrashOnStoreLeavesLineEvictableButNotDurable) {
  // Crash-on-store semantics: the store has taken effect in cache — the
  // line is lost under kNone but may survive under random eviction.
  PmemPool pool(kPoolSize);
  auto* p = pool.ptr<std::uint64_t>(pool.alloc(64));
  store(*p, std::uint64_t{1});
  persist(p, 8);
  ShadowPool shadow(pool);

  shadow.schedule_crash_after(1);
  EXPECT_THROW(store(*p, std::uint64_t{2}), CrashPoint);
  shadow.simulate_crash(EvictionMode::kNone);
  EXPECT_EQ(*p, 1u);  // strict: lost

  bool survived = false;
  for (std::uint64_t seed = 0; seed < 64 && !survived; ++seed) {
    shadow.schedule_crash_after(1);
    EXPECT_THROW(store(*p, std::uint64_t{2}), CrashPoint);
    shadow.simulate_crash(EvictionMode::kRandomEviction, seed);
    survived = (*p == 2u);
    store(*p, std::uint64_t{1});  // reset the durable baseline
    persist(p, 8);
  }
  EXPECT_TRUE(survived) << "no seed in [0,64) evicted the crashed store";
}

TEST_F(ShadowTest, OnlyOneShadowAtATime) {
  PmemPool pool(kPoolSize);
  ShadowPool shadow(pool);
  EXPECT_THROW(ShadowPool second(pool), std::logic_error);
}

TEST_F(ShadowTest, DetachRestoresFastPath) {
  PmemPool pool(kPoolSize);
  {
    ShadowPool shadow(pool);
    EXPECT_EQ(shadow_active(), &shadow);
  }
  EXPECT_EQ(shadow_active(), nullptr);
}

}  // namespace
}  // namespace rnt::nvm
