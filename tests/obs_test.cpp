// Tests for src/obs: metrics registry aggregation (live + exited threads),
// the legacy-struct cell bridge, gauges, histogram shards, the trace ring
// (wraparound, clear/re-enable), OpTrace recording, and the JSON/Prometheus
// export (well-formedness via a mini JSON parser).
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "nvm/persist.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/op_trace.hpp"
#include "obs/trace.hpp"

namespace rnt::obs {
namespace {

// Each test uses its own metric names: the registry is process-wide and
// append-only, so sharing names across tests would couple their counts.

TEST(Registry, CounterAggregatesAcrossLiveThreads) {
  Counter c("test.reg.live");
  c.inc(5);
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t)
    ts.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) c.inc();
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), 5u + 4u * 1000u);
}

TEST(Registry, CounterIncludesExitedThreads) {
  Counter c("test.reg.exited");
  std::thread([&] { c.inc(123); }).join();
  std::thread([&] { c.inc(77); }).join();
  // Both recorder threads are gone; their slabs must have folded in.
  EXPECT_EQ(c.value(), 200u);
}

TEST(Registry, SameNameReturnsSameMetric) {
  Counter a("test.reg.samename");
  Counter b("test.reg.samename");
  EXPECT_EQ(a.id(), b.id());
  a.inc(1);
  b.inc(2);
  EXPECT_EQ(a.value(), 3u);
}

TEST(Registry, ResetCounterZeroesEverywhere) {
  Counter c("test.reg.reset");
  c.inc(9);
  std::thread([&] { c.inc(10); }).join();  // lands in the retired total
  EXPECT_EQ(c.value(), 19u);
  reset_counter(c.id());
  EXPECT_EQ(c.value(), 0u);
  c.inc(2);
  EXPECT_EQ(c.value(), 2u);
}

TEST(Registry, ResetIsSafeWhileRecordersLive) {
  // Not an exactness test (reset concurrent with increments loses counts by
  // contract) — only that nothing crashes or goes backwards wildly.
  Counter c("test.reg.racyreset");
  std::atomic<bool> stop{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < 3; ++t)
    ts.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) c.inc();
    });
  for (int i = 0; i < 100; ++i) {
    reset_counter(c.id());
    (void)c.value();
  }
  stop = true;
  for (auto& t : ts) t.join();
  SUCCEED();
}

TEST(Registry, GaugeSetAddValue) {
  Gauge g("test.reg.gauge");
  g.set(40);
  g.add(2);
  EXPECT_EQ(g.value(), 42);
  g.add(-50);
  EXPECT_EQ(g.value(), -8);
}

TEST(Registry, HistogramMergesThreadShards) {
  Histogram h("test.reg.hist");
  h.record(10);
  std::thread([&] {
    for (int i = 0; i < 99; ++i) h.record(1000);
  }).join();
  LatencyHistogram agg = h.aggregate();
  EXPECT_EQ(agg.count(), 100u);
  EXPECT_EQ(agg.min(), 10u);
  EXPECT_EQ(agg.max(), 1000u);
}

TEST(Registry, AttachedCellBridgeCountsAndFolds) {
  const MetricId id = register_metric("test.reg.bridge", Kind::kCounter);
  std::uint64_t cell = 0;
  attach_cell(id, &cell);
  cell = 50;
  EXPECT_EQ(counter_value(id), 50u);
  detach_cell(id, &cell);  // folds the final value into the retired total
  EXPECT_EQ(counter_value(id), 50u);
  cell = 999;  // detached: no longer visible
  EXPECT_EQ(counter_value(id), 50u);
}

TEST(Registry, SnapshotContainsRegisteredMetrics) {
  Counter c("test.reg.snap");
  c.inc(7);
  Gauge g("test.reg.snapgauge");
  g.set(-3);
  Snapshot s = snapshot();
  EXPECT_EQ(s.counter("test.reg.snap"), 7u);
  EXPECT_EQ(s.counter("test.reg.absent"), 0u);
  bool found_gauge = false;
  for (const auto& [n, v] : s.gauges)
    if (n == "test.reg.snapgauge") {
      found_gauge = true;
      EXPECT_EQ(v, -3);
    }
  EXPECT_TRUE(found_gauge);
  // Sorted by name (binary-search/diff friendly output).
  for (std::size_t i = 1; i < s.counters.size(); ++i)
    EXPECT_LT(s.counters[i - 1].first, s.counters[i].first);
}

// --- trace ring -----------------------------------------------------------

TraceEvent make_event(std::uint64_t key) {
  TraceEvent e{};
  e.key = key;
  e.op = static_cast<std::uint16_t>(OpKind::kFind);
  e.result = static_cast<std::uint16_t>(OpResult::kOk);
  return e;
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clear_traces();
    set_trace_capacity(0);
  }
  void TearDown() override {
    clear_traces();
    set_trace_capacity(0);
  }
};

TEST_F(TraceTest, DisabledByDefaultRecordsNothing) {
  trace(make_event(1));
  EXPECT_TRUE(collect_traces().empty());
}

TEST_F(TraceTest, RingWrapsKeepingNewestEvents) {
  set_trace_capacity(8);
  for (std::uint64_t i = 0; i < 20; ++i) trace(make_event(i));
  std::vector<TraceEvent> evs = collect_traces();
  ASSERT_EQ(evs.size(), 8u);
  // Oldest-first window over the last 8 of 20 events.
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(evs[i].key, 12 + i);
    EXPECT_EQ(evs[i].seq, 12 + i);
  }
}

TEST_F(TraceTest, FewerEventsThanCapacityAllRetained) {
  set_trace_capacity(64);
  for (std::uint64_t i = 0; i < 5; ++i) trace(make_event(i));
  EXPECT_EQ(collect_traces().size(), 5u);
}

TEST_F(TraceTest, ExitedThreadsRingsAreRetained) {
  set_trace_capacity(16);
  std::thread([] {
    for (std::uint64_t i = 0; i < 3; ++i) trace(make_event(100 + i));
  }).join();
  trace(make_event(7));
  std::vector<TraceEvent> evs = collect_traces();
  EXPECT_EQ(evs.size(), 4u);
}

TEST_F(TraceTest, ClearDropsRingsAndNewCapacityApplies) {
  set_trace_capacity(4);
  for (std::uint64_t i = 0; i < 10; ++i) trace(make_event(i));
  clear_traces();
  EXPECT_TRUE(collect_traces().empty());
  set_trace_capacity(32);
  // The thread-local ring pointer is stale; the generation bump must force
  // a fresh ring with the new capacity instead of dereferencing it.
  for (std::uint64_t i = 0; i < 6; ++i) trace(make_event(i));
  EXPECT_EQ(collect_traces().size(), 6u);
}

TEST_F(TraceTest, OpTraceRecordsOutcomeAndPersistDiffs) {
  set_trace_capacity(16);
  {
    OpTrace tr(OpKind::kInsert, 42);
    tr.leaf(4096);
    nvm::persist(&tr, sizeof(tr));  // bump this thread's persist counter
    tr.finish(true);
  }
  {
    OpTrace tr(OpKind::kFind, 43);
    tr.finish(false);
  }
  std::vector<TraceEvent> evs = collect_traces();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].key, 42u);
  EXPECT_EQ(evs[0].op, static_cast<std::uint16_t>(OpKind::kInsert));
  EXPECT_EQ(evs[0].result, static_cast<std::uint16_t>(OpResult::kOk));
  EXPECT_EQ(evs[0].leaf_off, 4096u);
  EXPECT_GE(evs[0].persists, 1u);
  EXPECT_EQ(evs[1].key, 43u);
  EXPECT_EQ(evs[1].result, static_cast<std::uint16_t>(OpResult::kMiss));
}

TEST_F(TraceTest, OpTraceMarksCrashOnUnwind) {
  set_trace_capacity(16);
  struct Boom {};
  try {
    OpTrace tr(OpKind::kUpsert, 9);
    throw Boom{};
  } catch (const Boom&) {
  }
  std::vector<TraceEvent> evs = collect_traces();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].result, static_cast<std::uint16_t>(OpResult::kCrash));
}

// --- export ---------------------------------------------------------------

// Minimal recursive-descent JSON validator: accepts exactly the grammar of
// RFC 8259 values, which is all we need to prove well-formedness without a
// JSON library in the test image.
class MiniJson {
 public:
  explicit MiniJson(const std::string& s) : s_(s) {}
  bool valid() {
    i_ = 0;
    return value() && (skip_ws(), i_ == s_.size());
  }

 private:
  bool value() {
    skip_ws();
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string_();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++i_;  // '{'
    skip_ws();
    if (peek() == '}') { ++i_; return true; }
    for (;;) {
      skip_ws();
      if (!string_()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++i_;
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++i_; continue; }
      if (peek() == '}') { ++i_; return true; }
      return false;
    }
  }
  bool array() {
    ++i_;  // '['
    skip_ws();
    if (peek() == ']') { ++i_; return true; }
    for (;;) {
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++i_; continue; }
      if (peek() == ']') { ++i_; return true; }
      return false;
    }
  }
  bool string_() {
    if (peek() != '"') return false;
    ++i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (static_cast<unsigned char>(s_[i_]) < 0x20) return false;
      if (s_[i_] == '\\') {
        ++i_;
        if (i_ >= s_.size()) return false;
      }
      ++i_;
    }
    if (i_ >= s_.size()) return false;
    ++i_;
    return true;
  }
  bool number() {
    const std::size_t start = i_;
    if (peek() == '-') ++i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) || s_[i_] == '.' ||
            s_[i_] == 'e' || s_[i_] == 'E' || s_[i_] == '+' || s_[i_] == '-'))
      ++i_;
    return i_ > start && std::isdigit(static_cast<unsigned char>(s_[i_ - 1]));
  }
  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(i_, n, lit) != 0) return false;
    i_ += n;
    return true;
  }
  char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }
  void skip_ws() {
    while (i_ < s_.size() &&
           (s_[i_] == ' ' || s_[i_] == '\n' || s_[i_] == '\t' || s_[i_] == '\r'))
      ++i_;
  }
  const std::string& s_;
  std::size_t i_ = 0;
};

TEST(Export, JsonIsWellFormed) {
  Counter c("test.exp.counter");
  c.inc(3);
  Gauge g("test.exp.gauge");
  g.set(-17);
  Histogram h("test.exp.hist");
  h.record(100);
  const std::string doc = to_json(snapshot(), {{"bench", "unit \"quoted\"", false},
                                               {"warm", "1000", true}});
  EXPECT_TRUE(MiniJson(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"test.exp.counter\": 3"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"test.exp.gauge\": -17"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"warm\": 1000"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\\\"quoted\\\""), std::string::npos) << doc;
}

TEST(Export, JsonWithTraceIsWellFormed) {
  clear_traces();
  set_trace_capacity(8);
  {
    OpTrace tr(OpKind::kRemove, 5);
    tr.finish(true);
  }
  const std::string doc = to_json(snapshot(), {}, /*include_trace=*/true);
  EXPECT_TRUE(MiniJson(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"trace\": ["), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"op\":\"remove\""), std::string::npos) << doc;
  clear_traces();
  set_trace_capacity(0);
}

TEST(Export, PrometheusExposesCounters) {
  Counter c("test.exp.prom");
  c.inc(11);
  const std::string text = to_prometheus(snapshot());
  EXPECT_NE(text.find("# TYPE rnt_test_exp_prom counter"), std::string::npos);
  EXPECT_NE(text.find("rnt_test_exp_prom 11"), std::string::npos);
  // Exposition format: every non-comment line is "name[{labels}] value".
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    if (!line.empty() && line[0] != '#')
      EXPECT_NE(line.find(' '), std::string::npos) << line;
    pos = eol + 1;
  }
}

TEST(Export, WriteJsonSnapshotRoundTrips) {
  Counter c("test.exp.file");
  c.inc(1);
  const std::string path = ::testing::TempDir() + "/obs_test_snapshot.json";
  ASSERT_TRUE(write_json_snapshot(path, {{"bench", "unit", false}}));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string doc;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) doc.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_TRUE(MiniJson(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"test.exp.file\""), std::string::npos);
}

}  // namespace
}  // namespace rnt::obs
