// Tests for src/obs: metrics registry aggregation (live + exited threads),
// the legacy-struct cell bridge, gauges, histogram shards, the trace ring
// (wraparound, clear/re-enable), OpTrace recording, and the JSON/Prometheus
// export (well-formedness via a mini JSON parser).
#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "nvm/persist.hpp"
#include "obs/buildinfo.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/op_trace.hpp"
#include "obs/phase.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"

namespace rnt::obs {
namespace {

// Each test uses its own metric names: the registry is process-wide and
// append-only, so sharing names across tests would couple their counts.

TEST(Registry, CounterAggregatesAcrossLiveThreads) {
  Counter c("test.reg.live");
  c.inc(5);
  std::vector<std::thread> ts;
  for (int t = 0; t < 4; ++t)
    ts.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) c.inc();
    });
  for (auto& t : ts) t.join();
  EXPECT_EQ(c.value(), 5u + 4u * 1000u);
}

TEST(Registry, CounterIncludesExitedThreads) {
  Counter c("test.reg.exited");
  std::thread([&] { c.inc(123); }).join();
  std::thread([&] { c.inc(77); }).join();
  // Both recorder threads are gone; their slabs must have folded in.
  EXPECT_EQ(c.value(), 200u);
}

TEST(Registry, SameNameReturnsSameMetric) {
  Counter a("test.reg.samename");
  Counter b("test.reg.samename");
  EXPECT_EQ(a.id(), b.id());
  a.inc(1);
  b.inc(2);
  EXPECT_EQ(a.value(), 3u);
}

TEST(Registry, ResetCounterZeroesEverywhere) {
  Counter c("test.reg.reset");
  c.inc(9);
  std::thread([&] { c.inc(10); }).join();  // lands in the retired total
  EXPECT_EQ(c.value(), 19u);
  reset_counter(c.id());
  EXPECT_EQ(c.value(), 0u);
  c.inc(2);
  EXPECT_EQ(c.value(), 2u);
}

TEST(Registry, ResetIsSafeWhileRecordersLive) {
  // Not an exactness test (reset concurrent with increments loses counts by
  // contract) — only that nothing crashes or goes backwards wildly.
  Counter c("test.reg.racyreset");
  std::atomic<bool> stop{false};
  std::vector<std::thread> ts;
  for (int t = 0; t < 3; ++t)
    ts.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) c.inc();
    });
  for (int i = 0; i < 100; ++i) {
    reset_counter(c.id());
    (void)c.value();
  }
  stop = true;
  for (auto& t : ts) t.join();
  SUCCEED();
}

TEST(Registry, GaugeSetAddValue) {
  Gauge g("test.reg.gauge");
  g.set(40);
  g.add(2);
  EXPECT_EQ(g.value(), 42);
  g.add(-50);
  EXPECT_EQ(g.value(), -8);
}

TEST(Registry, HistogramMergesThreadShards) {
  Histogram h("test.reg.hist");
  h.record(10);
  std::thread([&] {
    for (int i = 0; i < 99; ++i) h.record(1000);
  }).join();
  LatencyHistogram agg = h.aggregate();
  EXPECT_EQ(agg.count(), 100u);
  EXPECT_EQ(agg.min(), 10u);
  EXPECT_EQ(agg.max(), 1000u);
}

TEST(Registry, AttachedCellBridgeCountsAndFolds) {
  const MetricId id = register_metric("test.reg.bridge", Kind::kCounter);
  std::uint64_t cell = 0;
  attach_cell(id, &cell);
  cell = 50;
  EXPECT_EQ(counter_value(id), 50u);
  detach_cell(id, &cell);  // folds the final value into the retired total
  EXPECT_EQ(counter_value(id), 50u);
  cell = 999;  // detached: no longer visible
  EXPECT_EQ(counter_value(id), 50u);
}

TEST(Registry, SnapshotContainsRegisteredMetrics) {
  Counter c("test.reg.snap");
  c.inc(7);
  Gauge g("test.reg.snapgauge");
  g.set(-3);
  Snapshot s = snapshot();
  EXPECT_EQ(s.counter("test.reg.snap"), 7u);
  EXPECT_EQ(s.counter("test.reg.absent"), 0u);
  bool found_gauge = false;
  for (const auto& [n, v] : s.gauges)
    if (n == "test.reg.snapgauge") {
      found_gauge = true;
      EXPECT_EQ(v, -3);
    }
  EXPECT_TRUE(found_gauge);
  // Sorted by name (binary-search/diff friendly output).
  for (std::size_t i = 1; i < s.counters.size(); ++i)
    EXPECT_LT(s.counters[i - 1].first, s.counters[i].first);
}

// --- trace ring -----------------------------------------------------------

TraceEvent make_event(std::uint64_t key) {
  TraceEvent e{};
  e.key = key;
  e.op = static_cast<std::uint16_t>(OpKind::kFind);
  e.result = static_cast<std::uint16_t>(OpResult::kOk);
  return e;
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clear_traces();
    set_trace_capacity(0);
  }
  void TearDown() override {
    clear_traces();
    set_trace_capacity(0);
  }
};

TEST_F(TraceTest, DisabledByDefaultRecordsNothing) {
  trace(make_event(1));
  EXPECT_TRUE(collect_traces().empty());
}

TEST_F(TraceTest, RingWrapsKeepingNewestEvents) {
  set_trace_capacity(8);
  for (std::uint64_t i = 0; i < 20; ++i) trace(make_event(i));
  std::vector<TraceEvent> evs = collect_traces();
  ASSERT_EQ(evs.size(), 8u);
  // Oldest-first window over the last 8 of 20 events.
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(evs[i].key, 12 + i);
    EXPECT_EQ(evs[i].seq, 12 + i);
  }
}

TEST_F(TraceTest, FewerEventsThanCapacityAllRetained) {
  set_trace_capacity(64);
  for (std::uint64_t i = 0; i < 5; ++i) trace(make_event(i));
  EXPECT_EQ(collect_traces().size(), 5u);
}

TEST_F(TraceTest, ExitedThreadsRingsAreRetained) {
  set_trace_capacity(16);
  std::thread([] {
    for (std::uint64_t i = 0; i < 3; ++i) trace(make_event(100 + i));
  }).join();
  trace(make_event(7));
  std::vector<TraceEvent> evs = collect_traces();
  EXPECT_EQ(evs.size(), 4u);
}

TEST_F(TraceTest, ClearDropsRingsAndNewCapacityApplies) {
  set_trace_capacity(4);
  for (std::uint64_t i = 0; i < 10; ++i) trace(make_event(i));
  clear_traces();
  EXPECT_TRUE(collect_traces().empty());
  set_trace_capacity(32);
  // The thread-local ring pointer is stale; the generation bump must force
  // a fresh ring with the new capacity instead of dereferencing it.
  for (std::uint64_t i = 0; i < 6; ++i) trace(make_event(i));
  EXPECT_EQ(collect_traces().size(), 6u);
}

TEST_F(TraceTest, OpTraceRecordsOutcomeAndPersistDiffs) {
  set_trace_capacity(16);
  {
    OpTrace tr(OpKind::kInsert, 42);
    tr.leaf(4096);
    nvm::persist(&tr, sizeof(tr));  // bump this thread's persist counter
    tr.finish(true);
  }
  {
    OpTrace tr(OpKind::kFind, 43);
    tr.finish(false);
  }
  std::vector<TraceEvent> evs = collect_traces();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].key, 42u);
  EXPECT_EQ(evs[0].op, static_cast<std::uint16_t>(OpKind::kInsert));
  EXPECT_EQ(evs[0].result, static_cast<std::uint16_t>(OpResult::kOk));
  EXPECT_EQ(evs[0].leaf_off, 4096u);
  EXPECT_GE(evs[0].persists, 1u);
  EXPECT_EQ(evs[1].key, 43u);
  EXPECT_EQ(evs[1].result, static_cast<std::uint16_t>(OpResult::kMiss));
}

TEST_F(TraceTest, OpTraceMarksCrashOnUnwind) {
  set_trace_capacity(16);
  struct Boom {};
  try {
    OpTrace tr(OpKind::kUpsert, 9);
    throw Boom{};
  } catch (const Boom&) {
  }
  std::vector<TraceEvent> evs = collect_traces();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].result, static_cast<std::uint16_t>(OpResult::kCrash));
}

// --- export ---------------------------------------------------------------

// Minimal recursive-descent JSON validator: accepts exactly the grammar of
// RFC 8259 values, which is all we need to prove well-formedness without a
// JSON library in the test image.
class MiniJson {
 public:
  explicit MiniJson(const std::string& s) : s_(s) {}
  bool valid() {
    i_ = 0;
    return value() && (skip_ws(), i_ == s_.size());
  }

 private:
  bool value() {
    skip_ws();
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string_();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++i_;  // '{'
    skip_ws();
    if (peek() == '}') { ++i_; return true; }
    for (;;) {
      skip_ws();
      if (!string_()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++i_;
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++i_; continue; }
      if (peek() == '}') { ++i_; return true; }
      return false;
    }
  }
  bool array() {
    ++i_;  // '['
    skip_ws();
    if (peek() == ']') { ++i_; return true; }
    for (;;) {
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++i_; continue; }
      if (peek() == ']') { ++i_; return true; }
      return false;
    }
  }
  bool string_() {
    if (peek() != '"') return false;
    ++i_;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (static_cast<unsigned char>(s_[i_]) < 0x20) return false;
      if (s_[i_] == '\\') {
        ++i_;
        if (i_ >= s_.size()) return false;
      }
      ++i_;
    }
    if (i_ >= s_.size()) return false;
    ++i_;
    return true;
  }
  bool number() {
    const std::size_t start = i_;
    if (peek() == '-') ++i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) || s_[i_] == '.' ||
            s_[i_] == 'e' || s_[i_] == 'E' || s_[i_] == '+' || s_[i_] == '-'))
      ++i_;
    return i_ > start && std::isdigit(static_cast<unsigned char>(s_[i_ - 1]));
  }
  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(i_, n, lit) != 0) return false;
    i_ += n;
    return true;
  }
  char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }
  void skip_ws() {
    while (i_ < s_.size() &&
           (s_[i_] == ' ' || s_[i_] == '\n' || s_[i_] == '\t' || s_[i_] == '\r'))
      ++i_;
  }
  const std::string& s_;
  std::size_t i_ = 0;
};

TEST(Export, JsonIsWellFormed) {
  Counter c("test.exp.counter");
  c.inc(3);
  Gauge g("test.exp.gauge");
  g.set(-17);
  Histogram h("test.exp.hist");
  h.record(100);
  const std::string doc = to_json(snapshot(), {{"bench", "unit \"quoted\"", false},
                                               {"warm", "1000", true}});
  EXPECT_TRUE(MiniJson(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"test.exp.counter\": 3"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"test.exp.gauge\": -17"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"warm\": 1000"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\\\"quoted\\\""), std::string::npos) << doc;
}

TEST(Export, JsonWithTraceIsWellFormed) {
  clear_traces();
  set_trace_capacity(8);
  {
    OpTrace tr(OpKind::kRemove, 5);
    tr.finish(true);
  }
  const std::string doc = to_json(snapshot(), {}, /*include_trace=*/true);
  EXPECT_TRUE(MiniJson(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"trace\": ["), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"op\":\"remove\""), std::string::npos) << doc;
  clear_traces();
  set_trace_capacity(0);
}

TEST(Export, PrometheusExposesCounters) {
  Counter c("test.exp.prom");
  c.inc(11);
  const std::string text = to_prometheus(snapshot());
  EXPECT_NE(text.find("# TYPE rnt_test_exp_prom counter"), std::string::npos);
  EXPECT_NE(text.find("rnt_test_exp_prom 11"), std::string::npos);
  // Exposition format: every non-comment line is "name[{labels}] value".
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    if (!line.empty() && line[0] != '#') {
      EXPECT_NE(line.find(' '), std::string::npos) << line;
    }
    pos = eol + 1;
  }
}

TEST(Export, WriteJsonSnapshotRoundTrips) {
  Counter c("test.exp.file");
  c.inc(1);
  const std::string path = ::testing::TempDir() + "/obs_test_snapshot.json";
  ASSERT_TRUE(write_json_snapshot(path, {{"bench", "unit", false}}));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string doc;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) doc.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_TRUE(MiniJson(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"test.exp.file\""), std::string::npos);
}

TEST(Export, PrometheusHistogramBucketsAreCumulative) {
  Histogram h("test.exp.prom.hist");
  h.record(10);
  h.record(10);
  h.record(1000);
  h.record(50000);
  const std::string text = to_prometheus(snapshot());
  EXPECT_NE(text.find("# TYPE rnt_test_exp_prom_hist histogram"),
            std::string::npos);
  // Collect this family's _bucket lines in exposition order.
  std::vector<std::pair<double, std::uint64_t>> buckets;
  std::size_t pos = 0;
  const std::string prefix = "rnt_test_exp_prom_hist_bucket{le=\"";
  while ((pos = text.find(prefix, pos)) != std::string::npos) {
    pos += prefix.size();
    const std::size_t q = text.find('"', pos);
    const std::string le = text.substr(pos, q - pos);
    const std::size_t sp = text.find(' ', q);
    const std::size_t eol = text.find('\n', sp);
    buckets.emplace_back(
        le == "+Inf" ? 1e300 : std::strtod(le.c_str(), nullptr),
        std::strtoull(text.substr(sp + 1, eol - sp - 1).c_str(), nullptr, 10));
  }
  ASSERT_GE(buckets.size(), 4u);  // 3 distinct value buckets + +Inf
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_GT(buckets[i].first, buckets[i - 1].first);     // le increasing
    EXPECT_GE(buckets[i].second, buckets[i - 1].second);   // cumulative
  }
  EXPECT_EQ(buckets.back().second, 4u);  // +Inf == _count
  EXPECT_NE(text.find("rnt_test_exp_prom_hist_sum 51020\n"), std::string::npos);
  EXPECT_NE(text.find("rnt_test_exp_prom_hist_count 4\n"), std::string::npos);
}

TEST(Export, JsonHistogramHasExactSum) {
  Histogram h("test.exp.json.sum");
  h.record(7);
  h.record(13);
  const std::string doc = to_json(snapshot());
  const std::size_t at = doc.find("\"test.exp.json.sum\"");
  ASSERT_NE(at, std::string::npos);
  EXPECT_NE(doc.find("\"sum\": 20", at), std::string::npos) << doc;
}

// --- build provenance -----------------------------------------------------

TEST(BuildInfo, StandardMetaHasProvenanceFields) {
  const std::vector<MetaField> meta = standard_meta();
  auto find = [&](const char* key) -> const MetaField* {
    for (const MetaField& f : meta)
      if (f.key == key) return &f;
    return nullptr;
  };
  for (const char* key :
       {"git_sha", "build_type", "compiler", "host_cores", "timestamp"})
    EXPECT_NE(find(key), nullptr) << key;
  const MetaField* cores = find("host_cores");
  ASSERT_NE(cores, nullptr);
  EXPECT_TRUE(cores->is_number);
  EXPECT_GT(std::strtoul(cores->value.c_str(), nullptr, 10), 0u);
  const MetaField* ts = find("timestamp");
  ASSERT_NE(ts, nullptr);
  // ISO-8601 UTC: 2026-08-08T12:34:56Z
  ASSERT_EQ(ts->value.size(), 20u) << ts->value;
  EXPECT_EQ(ts->value[4], '-');
  EXPECT_EQ(ts->value[10], 'T');
  EXPECT_EQ(ts->value[19], 'Z');
  // Provenance-tagged documents must still be valid JSON.
  EXPECT_TRUE(MiniJson(to_json(snapshot(), meta)).valid());
}

// --- phase attribution ----------------------------------------------------

#if !defined(RNTREE_NO_PHASE_TIMING)

class PhaseTest : public ::testing::Test {
 protected:
  void SetUp() override { set_phase_timing(true); }
  void TearDown() override { set_phase_timing(false); }
};

TEST_F(PhaseTest, TimerAccumulatesIntoThreadTicks) {
  const PhaseTicks before = phase_ticks_snapshot();
  {
    PhaseTimer t(Phase::kPersist);
    volatile unsigned sink = 0;
    for (int i = 0; i < 50000; ++i) sink = sink + 1;
  }
  const PhaseTicks after = phase_ticks_snapshot();
  EXPECT_GT(after.t[static_cast<int>(Phase::kPersist)],
            before.t[static_cast<int>(Phase::kPersist)]);
  // Untouched phases stay untouched.
  EXPECT_EQ(after.t[static_cast<int>(Phase::kSmo)],
            before.t[static_cast<int>(Phase::kSmo)]);
}

TEST_F(PhaseTest, DisabledTimerCostsNothingAndRecordsNothing) {
  set_phase_timing(false);
  const PhaseTicks before = phase_ticks_snapshot();
  {
    PhaseTimer t(Phase::kHtm);
    volatile unsigned sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + 1;
  }
  const PhaseTicks after = phase_ticks_snapshot();
  EXPECT_EQ(after.t[static_cast<int>(Phase::kHtm)],
            before.t[static_cast<int>(Phase::kHtm)]);
}

TEST_F(PhaseTest, EnablingRegistersPhaseHistograms) {
  const Snapshot snap = snapshot();
  int found = 0;
  for (const auto& [name, h] : snap.histograms)
    if (name.rfind("lat.phase.", 0) == 0) ++found;
  EXPECT_EQ(found, kPhaseCount);
}

TEST_F(PhaseTest, OpTraceAttributesPhasesAndCountsOps) {
  clear_traces();
  set_trace_capacity(8);
  const MetricId ops = register_metric("op.completed", Kind::kCounter);
  const std::uint64_t ops0 = counter_value(ops);
  {
    OpTrace tr(OpKind::kUpdate, 77);
    {
      PhaseTimer t(Phase::kPersist);
      volatile unsigned sink = 0;
      for (int i = 0; i < 200000; ++i) sink = sink + 1;
    }
    tr.finish(true);
  }
  EXPECT_EQ(counter_value(ops), ops0 + 1);
  std::vector<TraceEvent> evs = collect_traces();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_GT(evs[0].phase_persist_ns, 0u);
  EXPECT_EQ(evs[0].phase_smo_ns, 0u);
  clear_traces();
  set_trace_capacity(0);
}

#endif  // !RNTREE_NO_PHASE_TIMING

// --- time-series sampler --------------------------------------------------

TEST(Sampler, StartStopLifecycle) {
  Sampler s;
  EXPECT_FALSE(s.running());
  s.start({.interval_ms = 1, .capacity = 600});
  EXPECT_TRUE(s.running());
  Counter c("op.completed");
  for (int i = 0; i < 1000; ++i) c.inc();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  s.stop();
  EXPECT_FALSE(s.running());
  EXPECT_GE(s.sample_count(), 2u);  // t=0 baseline + final sample at least
  const std::vector<RateWindow> ws = s.windows();
  ASSERT_FALSE(ws.empty());
  std::uint64_t ops = 0;
  for (const RateWindow& w : ws) {
    EXPECT_GT(w.dt_s, 0.0);
    ops += w.ops;
  }
  EXPECT_GE(ops, 1000u);  // our increments all fall inside the run
  s.stop();  // idempotent
}

TEST(Sampler, RestartResetsTheRing) {
  Sampler s;
  s.start({.interval_ms = 1, .capacity = 600});
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  s.stop();
  const std::uint64_t first_total = s.total_samples();
  EXPECT_GE(first_total, 2u);
  s.start({.interval_ms = 1, .capacity = 600});
  EXPECT_TRUE(s.running());
  s.stop();
  EXPECT_LT(s.total_samples(), first_total + 2);  // counted from zero again
}

TEST(Sampler, RingEvictsOldestBeyondCapacity) {
  Sampler s;
  s.start({.interval_ms = 1, .capacity = 4});
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  s.stop();
  EXPECT_LE(s.sample_count(), 4u);
  EXPECT_GT(s.total_samples(), s.sample_count());  // some were evicted
  const std::vector<RateWindow> ws = s.windows();
  EXPECT_LE(ws.size() + 1, 4u);
}

TEST(Sampler, SurvivesWorkerThreadExitMidRun) {
  // Exiting threads fold their counter cells into retired totals under the
  // registry mutex; sampling concurrently must never lose or double-count.
  Sampler s;
  Counter c("op.completed");
  s.start({.interval_ms = 1, .capacity = 600});
  for (int round = 0; round < 8; ++round) {
    std::thread([&] {
      for (int i = 0; i < 10000; ++i) c.inc();
    }).join();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  s.stop();
  std::uint64_t ops = 0;
  for (const RateWindow& w : s.windows()) ops += w.ops;
  EXPECT_GE(ops, 80000u);
}

TEST(Sampler, TimeseriesJsonIsWellFormed) {
  Sampler& s = sampler();
  s.start({.interval_ms = 1, .capacity = 600});
  Counter c("op.completed");
  for (int i = 0; i < 100; ++i) c.inc();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  s.stop();
  const std::string ts = timeseries_json();
  ASSERT_FALSE(ts.empty());
  EXPECT_TRUE(MiniJson(ts).valid()) << ts;
  EXPECT_NE(ts.find("\"interval_ms\": 1"), std::string::npos);
  EXPECT_NE(ts.find("\"windows\": ["), std::string::npos);
  EXPECT_NE(ts.find("\"ops_per_s\""), std::string::npos);
  // And the assembled stats document embeds it intact.
  const std::string doc = to_json(snapshot(), {}, false, true);
  EXPECT_TRUE(MiniJson(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"timeseries\": {"), std::string::npos);
}

// --- chrome trace export --------------------------------------------------

TEST(ChromeTrace, VirtualTracePreservesThreadId) {
  clear_traces();
  set_trace_capacity(8);
  TraceEvent ev = make_event(1);
  ev.thread_id = 4242;
  trace_virtual(ev);
  trace(ev);  // plain trace() stamps the ring owner's id instead
  std::vector<TraceEvent> evs = collect_traces();
  ASSERT_EQ(evs.size(), 2u);
  EXPECT_EQ(evs[0].thread_id, 4242u);
  EXPECT_NE(evs[1].thread_id, 4242u);
  clear_traces();
  set_trace_capacity(0);
}

TEST(ChromeTrace, EmitsValidJsonWithTracksAndPhaseSlices) {
  std::vector<TraceEvent> evs;
  for (std::uint32_t tid : {7u, 9u}) {
    TraceEvent e{};
    e.thread_id = tid;
    e.ts_ns = 5000;
    e.latency_ns = 3000;
    e.key = 11;
    e.leaf_off = 64;
    e.op = static_cast<std::uint16_t>(OpKind::kUpdate);
    e.result = static_cast<std::uint16_t>(OpResult::kOk);
    e.htm_attempts = 2;
    e.aborts_conflict = 1;
    e.fallbacks = 1;
    e.phase_htm_ns = 1000;
    e.phase_persist_ns = 1500;
    evs.push_back(e);
  }
  const std::string doc = to_chrome_trace(evs);
  EXPECT_TRUE(MiniJson(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
  // One named track per thread.
  EXPECT_NE(doc.find("\"tid\":7,\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(doc.find("\"tid\":9,\"name\":\"thread_name\""), std::string::npos);
  // The op slice: complete event starting at ts-latency, µs units.
  EXPECT_NE(doc.find("\"cat\":\"op\",\"name\":\"update\",\"ts\":2.000,"
                     "\"dur\":3.000"),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"aborts_conflict\":1"), std::string::npos);
  // Phase sub-slices laid out sequentially from the op's start.
  EXPECT_NE(doc.find("\"cat\":\"phase\",\"name\":\"htm\",\"ts\":2.000,"
                     "\"dur\":1.000"),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("\"cat\":\"phase\",\"name\":\"persist\",\"ts\":3.000,"
                     "\"dur\":1.500"),
            std::string::npos)
      << doc;
}

TEST(ChromeTrace, PhaseSlicesClampToOpDuration) {
  TraceEvent e{};
  e.thread_id = 3;
  e.ts_ns = 2000;
  e.latency_ns = 1000;
  e.op = static_cast<std::uint16_t>(OpKind::kInsert);
  e.phase_htm_ns = 800;
  e.phase_persist_ns = 800;  // would overflow: clamped to the remaining 200
  e.phase_smo_ns = 500;      // fully past the end: dropped
  const std::string doc = to_chrome_trace({e});
  EXPECT_TRUE(MiniJson(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"name\":\"persist\",\"ts\":1.800,\"dur\":0.200"),
            std::string::npos)
      << doc;
  EXPECT_EQ(doc.find("\"name\":\"smo\""), std::string::npos) << doc;
}

TEST(ChromeTrace, WriteCollectsRingsAndRoundTrips) {
  clear_traces();
  set_trace_capacity(8);
  {
    OpTrace tr(OpKind::kScan, 3);
    tr.finish(true);
  }
  const std::string path = ::testing::TempDir() + "/obs_chrome_trace.json";
  ASSERT_TRUE(write_chrome_trace(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string doc;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) doc.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_TRUE(MiniJson(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"name\":\"scan\""), std::string::npos);
  clear_traces();
  set_trace_capacity(0);
}

}  // namespace
}  // namespace rnt::obs
