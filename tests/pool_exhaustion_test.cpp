// Pool-exhaustion sweep: every tree variant is driven into a deliberately
// tiny NVM pool until an insert fails with kPoolExhausted, and after EVERY
// failed operation the shared crash-sweep invariant oracle
// (crash_sweep/invariants.hpp) must still pass: no torn leaf, no dangling
// split bit, no key lost.  A full tree must remain fully readable and
// updatable (updates may themselves report exhaustion, never corruption),
// and must survive a dirty crash + recovery + resumed operation.
//
// This is the end-to-end contract of the graceful-exhaustion redesign:
// allocation failure is discovered by pre-flight reservation (or an
// alloc-before-mutation split path) while backing out still costs nothing,
// so "the pool is full" is a Status the caller sees, not a state the tree
// dies in.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "baselines/cdds.hpp"
#include "common/status.hpp"
#include "crash_sweep/adapters.hpp"
#include "crash_sweep/invariants.hpp"
#include "nvm/persist.hpp"
#include "nvm/pool.hpp"

namespace rnt::crash_sweep {
namespace {

// The smallest pool PmemPool accepts: header/undo area plus one 1 MiB data
// chunk.  Every tree fills it in well under a second.
constexpr std::size_t kTinyPool = std::size_t{2} << 20;

// Fill keys are odd so tests can probe even keys as guaranteed-absent.
inline Key fill_key(std::uint64_t i) { return 2 * i + 1; }
inline Value fill_val(std::uint64_t i) { return 0xE0000000 + i; }

template <class A>
class PoolExhaustionT : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = nvm::config();
    nvm::config().write_latency_ns = 0;
    nvm::config().per_line_ns = 0;
  }
  void TearDown() override { nvm::config() = saved_; }
  nvm::NvmConfig saved_;
};

struct AdapterNames {
  template <class A>
  static std::string GetName(int) {
    std::string n = A::kName;
    for (char& c : n)
      if (c == '-') c = '_';
    return n;
  }
};

using Adapters =
    ::testing::Types<RnTreeAdapter<true>, RnTreeAdapter<false>, NvTreeAdapter,
                     WbTreeAdapter, WbTreeSoAdapter, FpTreeAdapter>;
TYPED_TEST_SUITE(PoolExhaustionT, Adapters, AdapterNames);

/// The shared oracle plus full-readability: persistent chain == model, and
/// every model entry is reachable through the tree's own lookup path.
template <class A>
void expect_intact(typename A::Tree& t, nvm::PmemPool& pool, const Model& m,
                   const std::string& ctx) {
  Model got;
  try {
    got = collect_chain<typename A::Tree::Leaf>(pool);
  } catch (const std::exception& e) {
    FAIL() << ctx << ": " << e.what();
  }
  ASSERT_EQ(got.size(), m.size()) << ctx << ": chain diverges from model";
  for (const auto& [k, v] : m) {
    auto it = got.find(k);
    ASSERT_TRUE(it != got.end()) << ctx << ": key " << k << " lost";
    ASSERT_EQ(it->second, v) << ctx << ": key " << k << " torn";
  }
  ASSERT_EQ(t.size(), m.size()) << ctx << ": size() diverges";
  // Sampled find()s (every entry on small models, strided on large ones)
  // keep the sweep fast while still crossing every leaf.
  const std::size_t stride = m.size() > 4096 ? 7 : 1;
  std::size_t i = 0;
  for (const auto& [k, v] : m) {
    if (i++ % stride != 0) continue;
    const auto r = t.find(k);
    ASSERT_TRUE(r.has_value()) << ctx << ": find(" << k << ") missed";
    ASSERT_EQ(*r, v) << ctx << ": find(" << k << ") stale";
  }
}

/// Insert ascending keys until the pool refuses one.  Returns the model of
/// everything that was accepted.
template <class A>
Model fill_to_failure(typename A::Tree& t, std::uint64_t* next_key) {
  Model m;
  common::Status st = common::OkStatus();
  std::uint64_t i = 0;
  for (; i < 10'000'000; ++i) {
    st = t.insert(fill_key(i), fill_val(i));
    if (!st) break;
    m[fill_key(i)] = fill_val(i);
  }
  EXPECT_FALSE(st) << A::kName << ": tiny pool never filled";
  EXPECT_EQ(st.code(), common::StatusCode::kPoolExhausted)
      << A::kName << ": fill failed with the wrong status";
  EXPECT_GT(m.size(), 100u) << A::kName << ": pool filled implausibly early";
  *next_key = i;
  return m;
}

TYPED_TEST(PoolExhaustionT, FailedInsertsLeaveTheTreeIntact) {
  nvm::PmemPool pool(kTinyPool);
  auto tree = TypeParam::make(pool);
  std::uint64_t next = 0;
  Model m = fill_to_failure<TypeParam>(*tree, &next);
  if (::testing::Test::HasFailure()) return;
  expect_intact<TypeParam>(*tree, pool, m, "after first failed insert");

  // Repeated failures are just as harmless: the oracle runs after each one.
  for (int round = 0; round < 3; ++round) {
    const common::Status st = tree->insert(fill_key(next + round), 0xDEAD);
    EXPECT_FALSE(st);
    EXPECT_EQ(st.code(), common::StatusCode::kPoolExhausted);
    expect_intact<TypeParam>(*tree, pool, m,
                             "after failed insert round " +
                                 std::to_string(round));
    if (::testing::Test::HasFailure()) return;
  }
}

TYPED_TEST(PoolExhaustionT, FullTreeStaysReadableAndUpdatable) {
  nvm::PmemPool pool(kTinyPool);
  auto tree = TypeParam::make(pool);
  std::uint64_t next = 0;
  Model m = fill_to_failure<TypeParam>(*tree, &next);
  if (::testing::Test::HasFailure()) return;

  // Absent keys stay absent; present keys stay found (checked in
  // expect_intact).  Updates on a full tree either apply or report
  // exhaustion — both leave the oracle clean.
  EXPECT_FALSE(tree->find(fill_key(next)).has_value());
  EXPECT_FALSE(tree->find(0).has_value());
  std::uint64_t applied = 0;
  std::uint64_t refused = 0;
  for (std::uint64_t i = 0; i < 32; ++i) {
    const Key k = fill_key(i * (m.size() / 33 + 1));
    if (m.count(k) == 0) continue;
    const common::Status u = tree->update(k, 0xF00D0000 + i);
    if (u) {
      m[k] = 0xF00D0000 + i;
      ++applied;
    } else {
      EXPECT_EQ(u.code(), common::StatusCode::kPoolExhausted)
          << TypeParam::kName << ": update failed with the wrong status";
      ++refused;
    }
    expect_intact<TypeParam>(*tree, pool, m,
                             "after update of key " + std::to_string(k));
    if (::testing::Test::HasFailure()) return;
  }
  EXPECT_GT(applied + refused, 0u);

  // Removes free log/bitmap positions without allocating, so they must keep
  // working on a full tree for every variant except NVTree (whose removes
  // append a log entry and may themselves report exhaustion).
  std::uint64_t removed = 0;
  for (std::uint64_t i = 1; i <= 16 && !m.empty(); ++i) {
    const Key k = std::next(m.begin(), static_cast<long>(m.size() / 2))->first;
    if (tree->remove(k)) {
      m.erase(k);
      ++removed;
    }
  }
  if (std::string(TypeParam::kName) != "nvtree")
    EXPECT_EQ(removed, 16u) << TypeParam::kName
                            << ": allocation-free removes failed on a full tree";
  expect_intact<TypeParam>(*tree, pool, m, "after removes on a full tree");
}

TYPED_TEST(PoolExhaustionT, FullTreeSurvivesCrashRecoveryAndResumes) {
  nvm::PmemPool pool(kTinyPool);
  std::uint64_t next = 0;
  Model m;
  {
    auto tree = TypeParam::make(pool);
    m = fill_to_failure<TypeParam>(*tree, &next);
    if (::testing::Test::HasFailure()) return;
    // A couple more refused ops right before the crash: the failure paths
    // must not leave anything half-published for recovery to trip on.
    (void)tree->insert(fill_key(next), 0xDEAD);
    (void)tree->insert(fill_key(next + 1), 0xDEAD);
    tree.reset();  // dirty: no close(), volatile state simply vanishes
  }
  pool.reopen_volatile();
  ASSERT_FALSE(pool.clean_shutdown());

  std::unique_ptr<typename TypeParam::Tree> rec;
  try {
    rec = TypeParam::recover(pool);
  } catch (const std::exception& e) {
    FAIL() << TypeParam::kName << ": recovery of a full pool threw: "
           << e.what();
  }
  expect_intact<TypeParam>(*rec, pool, m, "after crash recovery");
  if (::testing::Test::HasFailure()) return;

  // Resume on the recovered-but-full tree: reads work, a fresh insert still
  // reports exhaustion gracefully, and the oracle stays clean.
  const common::Status st = rec->insert(fill_key(next + 2), 0xDEAD);
  EXPECT_FALSE(st);
  EXPECT_EQ(st.code(), common::StatusCode::kPoolExhausted);
  const common::Status u = rec->update(m.begin()->first, 0xBEEF);
  if (u) m[m.begin()->first] = 0xBEEF;
  expect_intact<TypeParam>(*rec, pool, m, "after resumed ops post-recovery");
}

// CDDS has no crash-sweep oracle specialization (it is the Table-1-only
// baseline), so its graceful-exhaustion contract is checked through its own
// API: fill to failure, verify every accepted entry by lookup and scan,
// and confirm multi-version updates refuse (not corrupt) when space for the
// new version cannot be secured.
TEST(PoolExhaustionCdds, FillFailReadUpdate) {
  nvm::NvmConfig saved = nvm::config();
  nvm::config().write_latency_ns = 0;
  nvm::config().per_line_ns = 0;
  {
    nvm::PmemPool pool(kTinyPool);
    baselines::CDDSTree<Key, Value> tree(pool);
    Model m;
    common::Status st = common::OkStatus();
    std::uint64_t i = 0;
    for (; i < 10'000'000; ++i) {
      st = tree.insert(fill_key(i), fill_val(i));
      if (!st) break;
      m[fill_key(i)] = fill_val(i);
    }
    ASSERT_FALSE(st);
    EXPECT_EQ(st.code(), common::StatusCode::kPoolExhausted);
    EXPECT_GT(m.size(), 100u);
    EXPECT_EQ(tree.size(), m.size());

    // The old version must survive an update that cannot allocate the new
    // one (the space is secured before the live entry is retired).
    const Key uk = m.begin()->first;
    const common::Status u = tree.update(uk, 0xBEEF);
    if (u)
      m[uk] = 0xBEEF;
    else
      EXPECT_EQ(u.code(), common::StatusCode::kPoolExhausted);
    EXPECT_EQ(tree.find(uk), std::optional<Value>(m[uk]));

    std::vector<std::pair<Key, Value>> got;
    tree.scan_n(0, m.size() + 8, got);
    ASSERT_EQ(got.size(), m.size());
    auto it = m.begin();
    for (std::size_t j = 0; j < got.size(); ++j, ++it) {
      ASSERT_EQ(got[j].first, it->first);
      ASSERT_EQ(got[j].second, it->second);
    }
  }
  nvm::config() = saved;
}

}  // namespace
}  // namespace rnt::crash_sweep
