// Multi-threaded tests for RNTree: linearizability smoke tests for
// writer-writer and reader-writer coordination (paper S5.3), split safety
// under contention, and the no-read-uncommitted guarantee.
//
// This host may have a single core; the tests still exercise every
// interleaving the preemptive scheduler produces and are sized to finish
// quickly.  On multicore machines they run with true parallelism.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/rntree.hpp"
#include "nvm/pool.hpp"

namespace rnt::core {
namespace {

using Tree = RNTree<std::uint64_t, std::uint64_t>;

class RNTreeConcurrentTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    saved_ = nvm::config();
    nvm::config().write_latency_ns = 0;
    nvm::config().per_line_ns = 0;
    pool_ = std::make_unique<nvm::PmemPool>(std::size_t{512} << 20);
    tree_ = std::make_unique<Tree>(*pool_, Tree::Options{.dual_slot = GetParam()});
  }
  void TearDown() override { nvm::config() = saved_; }

  nvm::NvmConfig saved_;
  std::unique_ptr<nvm::PmemPool> pool_;
  std::unique_ptr<Tree> tree_;
};

INSTANTIATE_TEST_SUITE_P(SlotModes, RNTreeConcurrentTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "DualSlot" : "SingleSlot";
                         });

TEST_P(RNTreeConcurrentTest, DisjointInsertersAllSucceed) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 4000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        const std::uint64_t k = static_cast<std::uint64_t>(t) * kPerThread + i;
        ASSERT_TRUE(tree_->insert(k, k + 1));
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(tree_->size(), kThreads * kPerThread);
  for (std::uint64_t k = 0; k < kThreads * kPerThread; ++k)
    ASSERT_EQ(tree_->find(k), std::optional<std::uint64_t>(k + 1)) << k;
  tree_->check_invariants();
}

TEST_P(RNTreeConcurrentTest, ConditionalInsertExactlyOneWinner) {
  // All threads race to insert the same keys; for each key exactly one
  // insert may succeed (writer-writer linearization at the leaf lock).
  constexpr int kThreads = 8;
  constexpr std::uint64_t kKeys = 2000;
  std::atomic<std::uint64_t> successes{0};
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (std::uint64_t k = 0; k < kKeys; ++k)
        if (tree_->insert(k, static_cast<std::uint64_t>(t)))
          successes.fetch_add(1);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(successes.load(), kKeys);
  EXPECT_EQ(tree_->size(), kKeys);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    auto v = tree_->find(k);
    ASSERT_TRUE(v.has_value());
    ASSERT_LT(*v, static_cast<std::uint64_t>(kThreads));
  }
}

TEST_P(RNTreeConcurrentTest, ReadersSeeOnlyCompleteValues) {
  // Writers update keys with values that encode (key, round); readers must
  // only ever observe values consistent with some completed update —
  // never a torn or half-applied one.
  constexpr std::uint64_t kKeys = 64;
  for (std::uint64_t k = 0; k < kKeys; ++k)
    ASSERT_TRUE(tree_->insert(k, k << 32));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::thread writer([&] {
    std::uint64_t round = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      for (std::uint64_t k = 0; k < kKeys; ++k)
        ASSERT_TRUE(tree_->update(k, (k << 32) | round));
      ++round;
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256 rng(static_cast<std::uint64_t>(r) + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t k = rng.next_below(kKeys);
        auto v = tree_->find(k);
        if (!v.has_value() || (*v >> 32) != k) violations.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop = true;
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(violations.load(), 0u);
}

TEST_P(RNTreeConcurrentTest, MonotonicValuesNeverGoBackwards) {
  // A single-key monotone counter: each writer CAS-style bumps via
  // update(find()+1) under external synchronisation replaced here by
  // last-writer-wins; readers must observe a non-decreasing sequence
  // (linearizability of find against update on one key).
  ASSERT_TRUE(tree_->insert(1, 0));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> regressions{0};
  std::thread writer([&] {
    for (std::uint64_t v = 1; !stop.load(std::memory_order_relaxed); ++v)
      ASSERT_TRUE(tree_->update(1, v));
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto v = tree_->find(1);
        if (!v.has_value() || *v < last)
          regressions.fetch_add(1);
        else
          last = *v;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop = true;
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(regressions.load(), 0u);
}

TEST_P(RNTreeConcurrentTest, MixedWorkloadAgainstShardedOracle) {
  // Each thread owns a disjoint key shard and mirrors its operations into a
  // private oracle; afterwards the tree must agree with the union.
  constexpr int kThreads = 6;
  constexpr std::uint64_t kShard = 1000;
  std::vector<std::map<std::uint64_t, std::uint64_t>> oracles(kThreads);
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      auto& oracle = oracles[t];
      Xoshiro256 rng(static_cast<std::uint64_t>(t) * 31 + 5);
      const std::uint64_t base = static_cast<std::uint64_t>(t) * kShard;
      for (int i = 0; i < 20000; ++i) {
        const std::uint64_t k = base + rng.next_below(kShard);
        const std::uint64_t v = rng.next();
        switch (rng.next_below(4)) {
          case 0:
            ASSERT_EQ(tree_->insert(k, v), oracle.emplace(k, v).second);
            break;
          case 1: {
            auto it = oracle.find(k);
            ASSERT_EQ(tree_->update(k, v), it != oracle.end());
            if (it != oracle.end()) it->second = v;
            break;
          }
          case 2:
            ASSERT_EQ(tree_->remove(k), oracle.erase(k) > 0);
            break;
          default: {
            auto res = tree_->find(k);
            auto it = oracle.find(k);
            ASSERT_EQ(res.has_value(), it != oracle.end());
            if (res) ASSERT_EQ(*res, it->second);
          }
        }
      }
    });
  }
  for (auto& t : ts) t.join();
  std::size_t total = 0;
  for (int t = 0; t < kThreads; ++t) {
    total += oracles[t].size();
    for (auto& [k, v] : oracles[t])
      ASSERT_EQ(tree_->find(k), std::optional(v)) << k;
  }
  EXPECT_EQ(tree_->size(), total);
  tree_->check_invariants();
}

TEST_P(RNTreeConcurrentTest, ScansDuringInsertsSeeSortedConsistentLeaves) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> violations{0};
  std::thread writer([&] {
    for (std::uint64_t i = 0; i < 30000 && !stop; ++i)
      tree_->upsert(mix64(i) % 1000000, i);  // duplicates possible
  });
  std::vector<std::thread> scanners;
  for (int r = 0; r < 2; ++r) {
    scanners.emplace_back([&, r] {
      Xoshiro256 rng(static_cast<std::uint64_t>(r) + 3);
      while (!stop.load(std::memory_order_relaxed)) {
        std::uint64_t prev = 0;
        bool first = true;
        tree_->scan(rng.next_below(1000000), [&](std::uint64_t k, std::uint64_t) {
          if (!first && k <= prev) violations.fetch_add(1);
          first = false;
          prev = k;
          return (k - prev) < 100000;  // bounded scan
        });
      }
    });
  }
  writer.join();
  stop = true;
  for (auto& t : scanners) t.join();
  EXPECT_EQ(violations.load(), 0u);
  tree_->check_invariants();
}

TEST_P(RNTreeConcurrentTest, HotLeafContention) {
  // All threads hammer a tiny key range (one or two leaves): maximal lock
  // and split contention, exercising the writer-quiesce barrier.
  constexpr int kThreads = 8;
  std::vector<std::thread> ts;
  std::atomic<std::uint64_t> ops{0};
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      Xoshiro256 rng(static_cast<std::uint64_t>(t) + 11);
      for (int i = 0; i < 10000; ++i) {
        const std::uint64_t k = rng.next_below(16);
        tree_->upsert(k, rng.next());
        ops.fetch_add(1);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(ops.load(), 8u * 10000);
  EXPECT_EQ(tree_->size(), 16u);
  for (std::uint64_t k = 0; k < 16; ++k)
    ASSERT_TRUE(tree_->find(k).has_value());
  tree_->check_invariants();
  EXPECT_GT(tree_->stats().shrink_splits.load(), 0u);
}

TEST_P(RNTreeConcurrentTest, RecoveryAfterConcurrentRun) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 3000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        ASSERT_TRUE(
            tree_->insert(static_cast<std::uint64_t>(t) * kPerThread + i, i));
    });
  }
  for (auto& t : ts) t.join();
  tree_->close();
  tree_.reset();
  pool_->reopen_volatile();
  Tree recovered(Tree::recover_t{}, *pool_, Tree::Options{.dual_slot = GetParam()});
  EXPECT_EQ(recovered.size(), kThreads * kPerThread);
  recovered.check_invariants();
}

}  // namespace
}  // namespace rnt::core
