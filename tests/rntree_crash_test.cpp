// Crash-consistency property tests for RNTree, built on the ShadowPool
// simulator.  The durable-linearizability contract under test (paper S3.5):
//
//   * every operation that RETURNED before the crash is present after
//     recovery (its effects are durable),
//   * an operation in flight AT the crash is atomic: afterwards the tree
//     reflects either its full effect or none of it,
//   * structural invariants (sortedness, slot validity, chain integrity)
//     hold after recovery from ANY crash point, including mid-split,
//   * all of the above also under adversarial random cache evictions.
//
// The sweep harness replays a deterministic operation sequence, crashing at
// the Nth tracked NVM event for every N, recovering, and checking the tree
// against an oracle of acknowledged operations.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>

#include "common/rng.hpp"
#include "core/rntree.hpp"
#include "nvm/pool.hpp"
#include "nvm/shadow.hpp"

namespace rnt::core {
namespace {

using Tree = RNTree<std::uint64_t, std::uint64_t>;

struct OpRec {
  int kind;  // 0=insert 1=update 2=remove
  std::uint64_t key, value;
};

// Deterministic op sequence used by all sweeps.
std::vector<OpRec> make_ops(int n, std::uint64_t key_space, std::uint64_t seed) {
  std::vector<OpRec> ops;
  Xoshiro256 rng(seed);
  for (int i = 0; i < n; ++i)
    ops.push_back({static_cast<int>(rng.next_below(3)), rng.next_below(key_space),
                   rng.next() | 1});
  return ops;
}

class CrashSweep : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    saved_ = nvm::config();
    nvm::config().write_latency_ns = 0;
    nvm::config().per_line_ns = 0;
  }
  void TearDown() override { nvm::config() = saved_; }

  /// Run `ops` with a crash injected at event `crash_at`; returns false when
  /// crash_at exceeded the run's total events (sweep is done).
  /// After the simulated crash, recovers and checks the oracle.
  bool run_one(const std::vector<OpRec>& ops, std::uint64_t crash_at,
               nvm::EvictionMode mode, std::uint64_t seed) {
    nvm::PmemPool pool(std::size_t{4} << 20);
    Tree::Options opt{.dual_slot = GetParam()};
    auto tree = std::make_unique<Tree>(pool, opt);
    nvm::ShadowPool shadow(pool);
    shadow.schedule_crash_after(crash_at);

    // Oracle of acknowledged effects; `pending` describes the in-flight op.
    std::map<std::uint64_t, std::uint64_t> acked;
    bool crashed = false;
    std::optional<OpRec> pending;
    bool pending_applies = false;
    try {
      for (const OpRec& op : ops) {
        pending = op;
        pending_applies = false;
        switch (op.kind) {
          case 0:
            pending_applies = acked.count(op.key) == 0;
            if (tree->insert(op.key, op.value)) acked[op.key] = op.value;
            break;
          case 1:
            pending_applies = acked.count(op.key) != 0;
            if (tree->update(op.key, op.value)) acked[op.key] = op.value;
            break;
          default:
            pending_applies = acked.count(op.key) != 0;
            if (tree->remove(op.key)) acked.erase(op.key);
        }
        pending.reset();
      }
    } catch (const nvm::CrashPoint&) {
      crashed = true;
    }
    if (!crashed) {
      shadow.cancel_scheduled_crash();
      return false;  // sweep exhausted this run's events
    }

    // Power loss: volatile tree state is gone, unflushed NVM lines are lost
    // (or arbitrarily evicted), then recovery runs.
    tree.reset();
    shadow.simulate_crash(mode, seed);
    pool.reopen_volatile();
    EXPECT_FALSE(pool.clean_shutdown());
    Tree recovered(Tree::recover_t{}, pool, opt);
    recovered.check_invariants();

    // Every acknowledged effect must be durable; the in-flight op is
    // all-or-nothing.
    for (auto& [k, v] : acked) {
      auto res = recovered.find(k);
      if (pending && pending->key == k && pending_applies) {
        // The in-flight op targeted this key: old value or new effect.
        EXPECT_TRUE(pending->kind == 2 ? (!res || *res == v)
                                       : (res && (*res == v || *res == pending->value)))
            << "key " << k << " crash_at " << crash_at;
      } else {
        EXPECT_TRUE(res.has_value()) << "lost acked key " << k << " @" << crash_at;
        EXPECT_EQ(*res, v) << "key " << k << " @" << crash_at;
      }
    }
    // Keys never acked (and not the pending insert) must be absent.
    std::size_t expect_min = acked.size();
    std::size_t expect_max = acked.size();
    if (pending && pending_applies) {
      if (pending->kind == 0) expect_max += 1;
      if (pending->kind == 2) expect_min -= 1;
    }
    const std::size_t got = recovered.size();
    EXPECT_GE(got, expect_min) << "@" << crash_at;
    EXPECT_LE(got, expect_max) << "@" << crash_at;
    if (pending && pending->kind == 0 && pending_applies) {
      auto res = recovered.find(pending->key);
      EXPECT_TRUE(!res || *res == pending->value);
    }
    return true;
  }

  nvm::NvmConfig saved_;
};

INSTANTIATE_TEST_SUITE_P(SlotModes, CrashSweep, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "DualSlot" : "SingleSlot";
                         });

TEST_P(CrashSweep, EveryCrashPointSmallTree) {
  // Small key space forces inserts+updates+removes into a handful of leaves;
  // sweep every single tracked event.
  const auto ops = make_ops(60, 16, 42);
  std::uint64_t crash_at = 1;
  while (run_one(ops, crash_at, nvm::EvictionMode::kNone, 0)) ++crash_at;
  // Sanity: the sweep actually covered a meaningful number of crash points.
  EXPECT_GT(crash_at, 120u);
}

TEST_P(CrashSweep, EveryCrashPointWithSplits) {
  // Monotone inserts drive leaf splits; sweep crash points through them
  // (the undo-log path).
  std::vector<OpRec> ops;
  for (int i = 0; i < 150; ++i)
    ops.push_back({0, static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(i + 1)});
  std::uint64_t crash_at = 1;
  while (run_one(ops, crash_at, nvm::EvictionMode::kNone, 0)) crash_at += 1;
  EXPECT_GT(crash_at, 300u);
}

TEST_P(CrashSweep, EveryCrashPointThroughCompaction) {
  // Update-heavy single-leaf workload: crash points land inside shrink
  // splits (in-place compaction under undo).
  std::vector<OpRec> ops;
  for (int i = 0; i < 8; ++i)
    ops.push_back({0, static_cast<std::uint64_t>(i), 1000});
  for (int round = 0; round < 12; ++round)
    for (int i = 0; i < 8; ++i)
      ops.push_back({1, static_cast<std::uint64_t>(i),
                     static_cast<std::uint64_t>(round * 8 + i + 1)});
  std::uint64_t crash_at = 1;
  while (run_one(ops, crash_at, nvm::EvictionMode::kNone, 0)) ++crash_at;
  EXPECT_GT(crash_at, 200u);
}

TEST_P(CrashSweep, RandomEvictionAdversary) {
  // Sample crash points under random-eviction adversaries with several
  // seeds: any subset of unflushed lines may independently survive.
  const auto ops = make_ops(80, 24, 7);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    for (std::uint64_t crash_at = 3; crash_at < 400; crash_at += 17) {
      if (!run_one(ops, crash_at, nvm::EvictionMode::kRandomEviction, seed)) break;
    }
  }
}

TEST_P(CrashSweep, CrashDuringSplitRollsBackCleanly) {
  // Fill exactly to the split threshold, then crash at every event inside
  // the split itself.
  std::vector<OpRec> warm;
  for (int i = 0; i < 62; ++i)
    warm.push_back({0, static_cast<std::uint64_t>(i * 2), static_cast<std::uint64_t>(i + 1)});

  // First measure the events consumed by the warmup, then sweep the split.
  std::uint64_t warm_events;
  {
    nvm::PmemPool pool(std::size_t{4} << 20);
    Tree tree(pool, Tree::Options{.dual_slot = GetParam()});
    nvm::ShadowPool shadow(pool);
    for (const OpRec& op : warm) ASSERT_TRUE(tree.insert(op.key, op.value));
    warm_events = shadow.events_seen();
    // The 63rd insert triggers the split.
    ASSERT_TRUE(tree.insert(200, 1));
    ASSERT_GT(tree.stats().splits.load(), 0u);
  }
  auto ops = warm;
  ops.push_back({0, 200, 1});
  std::uint64_t crash_at = warm_events + 1;
  while (run_one(ops, crash_at, nvm::EvictionMode::kNone, 0)) ++crash_at;
}

TEST_P(CrashSweep, RepeatedCrashRecoverCycles) {
  // Crash -> recover -> keep working -> crash again, several times over one
  // pool, accumulating acked state across generations.
  nvm::PmemPool pool(std::size_t{4} << 20);
  Tree::Options opt{.dual_slot = GetParam()};
  std::map<std::uint64_t, std::uint64_t> acked;
  auto tree = std::make_unique<Tree>(pool, opt);
  Xoshiro256 rng(31);

  for (int generation = 0; generation < 6; ++generation) {
    nvm::ShadowPool shadow(pool);
    shadow.schedule_crash_after(150 + generation * 37);
    try {
      for (;;) {
        const std::uint64_t k = rng.next_below(64);
        const std::uint64_t v = rng.next() | 1;
        if (tree->insert(k, v)) {
          acked[k] = v;
        } else if (tree->update(k, v)) {
          acked[k] = v;
        }
      }
    } catch (const nvm::CrashPoint&) {
    }
    tree.reset();
    shadow.simulate_crash(nvm::EvictionMode::kNone, 0);
    pool.reopen_volatile();
    tree = std::make_unique<Tree>(Tree::recover_t{}, pool, opt);
    tree->check_invariants();
    // All previously acked keys must still be correct, modulo the single
    // in-flight op (whose key we did not record — accept either value for
    // at most one key mismatch).
    int mismatches = 0;
    for (auto& [k, v] : acked) {
      auto res = tree->find(k);
      ASSERT_TRUE(res.has_value()) << "generation " << generation;
      if (*res != v) ++mismatches;
    }
    ASSERT_LE(mismatches, 1) << "generation " << generation;
    // Re-sync the oracle with reality for the next generation.
    for (auto& [k, v] : acked) acked[k] = *tree->find(k);
  }
}

TEST_P(CrashSweep, UnackedInsertNeverVisibleAfterStrictCrash) {
  // Negative control: without any flush reaching the slot array, a crashed
  // insert must be invisible — this is the test that would catch a missing
  // nvm:: hook making data silently "durable".
  nvm::PmemPool pool(std::size_t{4} << 20);
  Tree::Options opt{.dual_slot = GetParam()};
  auto tree = std::make_unique<Tree>(pool, opt);
  nvm::ShadowPool shadow(pool);
  // Crash right after the first tracked event of the insert (the KV store).
  shadow.schedule_crash_after(1);
  EXPECT_THROW(tree->insert(5, 55), nvm::CrashPoint);
  tree.reset();
  shadow.simulate_crash(nvm::EvictionMode::kNone, 0);
  pool.reopen_volatile();
  Tree recovered(Tree::recover_t{}, pool, opt);
  EXPECT_FALSE(recovered.find(5).has_value());
  EXPECT_EQ(recovered.size(), 0u);
}

}  // namespace
}  // namespace rnt::core
