// Structured recovery (core/rntree.hpp): the non-throwing recover_checked
// surface must classify each corruption shape as Status kCorrupted with a
// distinguishing detail string, and the parallel per-leaf rebuild must be
// byte-equivalent to the serial one on both the clean and the crash path.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>

#include "common/status.hpp"
#include "core/rntree.hpp"
#include "nvm/pool.hpp"

namespace rnt {
namespace {

using Tree = core::RNTree<std::uint64_t, std::uint64_t>;

constexpr std::uint64_t kKeys = 20'000;

std::uint64_t key_of(std::uint64_t i) { return mix64(i); }

void build_and_close(nvm::PmemPool& pool) {
  Tree tree(pool, Tree::Options{});
  for (std::uint64_t i = 0; i < kKeys; ++i)
    ASSERT_TRUE(tree.upsert(key_of(i), i).ok());
  tree.close();
}

void expect_all_keys(Tree& tree) {
  tree.check_invariants();
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    auto v = tree.find(key_of(i));
    ASSERT_TRUE(v.has_value()) << "lost key " << i;
    EXPECT_EQ(*v, i);
  }
}

TEST(RntreeRecoveryTest, CheckedRecoverySucceedsOnCleanPool) {
  nvm::PmemPool pool(256 << 20);
  build_and_close(pool);
  common::Status st;
  auto tree = Tree::recover_checked(pool, st);
  ASSERT_TRUE(st.ok()) << st.message();
  ASSERT_NE(tree, nullptr);
  EXPECT_STREQ(tree->recovery_detail(), "");
  expect_all_keys(*tree);
}

TEST(RntreeRecoveryTest, NoReachableLeavesIsCorrupted) {
  nvm::PmemPool pool(256 << 20);
  build_and_close(pool);
  pool.set_root(0, 0);  // sever the root slot: nothing reachable
  common::Status st;
  auto tree = Tree::recover_checked(pool, st);
  EXPECT_EQ(tree, nullptr);
  ASSERT_TRUE(st.corrupted()) << st.message();
}

TEST(RntreeRecoveryTest, BrokenHighKeyChainIsCorrupted) {
  nvm::PmemPool pool(256 << 20);
  build_and_close(pool);
  // The first leaf of a multi-leaf tree must carry a high key; clearing it
  // breaks the separator chain the merge validates.
  auto* leaf = pool.ptr<core::RnLeaf<std::uint64_t, std::uint64_t>>(
      pool.root(0));
  ASSERT_NE(leaf, nullptr);
  ASSERT_NE(leaf->next.load(), 0u) << "tree too small to have split";
  leaf->has_high.store(0);
  common::Status st;
  auto tree = Tree::recover_checked(pool, st);
  EXPECT_EQ(tree, nullptr);
  ASSERT_TRUE(st.corrupted());
}

TEST(RntreeRecoveryTest, TornSlotMetadataIsCorrupted) {
  nvm::PmemPool pool(256 << 20);
  build_and_close(pool);
  auto* leaf = pool.ptr<core::RnLeaf<std::uint64_t, std::uint64_t>>(
      pool.root(0));
  ASSERT_NE(leaf, nullptr);
  leaf->pslot[0] = 255;  // live count far beyond the slot capacity
  common::Status st;
  auto tree = Tree::recover_checked(pool, st);
  EXPECT_EQ(tree, nullptr);
  ASSERT_TRUE(st.corrupted());
}

TEST(RntreeRecoveryTest, CorruptionShapesHaveDistinctDetails) {
  // Run the three shapes through the throwing ctor path too: recover(bool)
  // throws with the detail string embedded, and each shape reads
  // differently (tooling and humans can tell them apart).
  std::vector<std::string> details;
  for (int shape = 0; shape < 3; ++shape) {
    nvm::PmemPool pool(256 << 20);
    build_and_close(pool);
    auto* leaf = pool.ptr<core::RnLeaf<std::uint64_t, std::uint64_t>>(
        pool.root(0));
    ASSERT_NE(leaf, nullptr);
    if (shape == 0) pool.set_root(0, 0);
    if (shape == 1) leaf->has_high.store(0);
    if (shape == 2) leaf->pslot[1] = 255;  // slot index beyond the log cap
    try {
      Tree tree(Tree::recover_t{}, pool, Tree::Options{});
      FAIL() << "corrupted pool recovered without error, shape " << shape;
    } catch (const std::runtime_error& e) {
      details.emplace_back(e.what());
    }
  }
  ASSERT_EQ(details.size(), 3u);
  EXPECT_NE(details[0], details[1]);
  EXPECT_NE(details[1], details[2]);
  EXPECT_NE(details[0], details[2]);
}

TEST(RntreeRecoveryTest, ParallelRecoveryMatchesSerialCleanPath) {
  nvm::PmemPool pool(256 << 20);
  build_and_close(pool);
  {
    Tree::Options opt;
    opt.recovery_workers = 1;
    common::Status st;
    auto serial = Tree::recover_checked(pool, st, opt);
    ASSERT_TRUE(st.ok());
    ASSERT_NE(serial, nullptr);
    expect_all_keys(*serial);
    EXPECT_EQ(serial->size(), kKeys);
    serial->close();
  }
  {
    Tree::Options opt;
    opt.recovery_workers = 4;
    const std::uint64_t par0 =
        core::detail::recovery_counters().parallel_runs.value();
    common::Status st;
    auto parallel = Tree::recover_checked(pool, st, opt);
    ASSERT_TRUE(st.ok());
    ASSERT_NE(parallel, nullptr);
    EXPECT_GT(core::detail::recovery_counters().parallel_runs.value(), par0)
        << "explicit recovery_workers=4 did not take the parallel path";
    expect_all_keys(*parallel);
    EXPECT_EQ(parallel->size(), kKeys);
  }
}

TEST(RntreeRecoveryTest, ParallelRecoveryMatchesSerialCrashPath) {
  nvm::PmemPool pool(256 << 20);
  {
    Tree tree(pool, Tree::Options{});
    for (std::uint64_t i = 0; i < kKeys; ++i)
      ASSERT_TRUE(tree.upsert(key_of(i), i).ok());
    // No close(): the pool stays dirty, so every recovery below takes the
    // crash path (undo scan + nlogs/plogs recompute).
  }
  for (const int workers : {1, 4}) {
    Tree::Options opt;
    opt.recovery_workers = workers;
    common::Status st;
    auto tree = Tree::recover_checked(pool, st, opt);
    ASSERT_TRUE(st.ok()) << "workers=" << workers << ": " << st.message();
    ASSERT_NE(tree, nullptr);
    expect_all_keys(*tree);
    EXPECT_EQ(tree->size(), kKeys) << "workers=" << workers;
    // Leave the pool dirty for the next iteration.
  }
}

TEST(RntreeRecoveryTest, ParallelRecoveryDetectsTornLeafInAnyBlock) {
  nvm::PmemPool pool(256 << 20);
  build_and_close(pool);
  // Corrupt a leaf deep in the chain (middle-ish block), then recover with
  // many workers: whichever worker owns that block must flag it.
  using Leaf = core::RnLeaf<std::uint64_t, std::uint64_t>;
  Leaf* leaf = pool.ptr<Leaf>(pool.root(0));
  ASSERT_NE(leaf, nullptr);
  for (int hops = 0; hops < 200; ++hops) {
    Leaf* nxt = pool.ptr<Leaf>(leaf->next.load());
    if (nxt == nullptr) break;
    leaf = nxt;
  }
  leaf->pslot[0] = 255;
  Tree::Options opt;
  opt.recovery_workers = 4;
  common::Status st;
  auto tree = Tree::recover_checked(pool, st, opt);
  EXPECT_EQ(tree, nullptr);
  ASSERT_TRUE(st.corrupted());
}

}  // namespace
}  // namespace rnt
