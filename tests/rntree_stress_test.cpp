// Multi-threaded RNTree stress test, written to run under ThreadSanitizer.
//
// CI builds it twice: in the normal test suite, and in a dedicated TSan
// build (-DRNTREE_TSAN=ON -DRNTREE_ENABLE_RTM=OFF) that exercises the
// software fallback-lock path only — CI machines have no TSX, and RTM
// transactions are invisible to TSan anyway.  The seqlock read side
// (find/scan/snapshot_slot) is deliberately uninstrumented via
// RNT_NO_SANITIZE_THREAD (see common/hints.hpp): its races are resolved by
// version validation.  Everything else — leaf version locks, log-entry
// allocation, split quiescing, EBR, the sharded pool allocator — runs fully
// instrumented, so a synchronization bug anywhere on the writer side or in
// the allocator is a TSan report here.
//
// Fixed op counts (no wall-clock phases) keep the run deterministic in
// length: TSan's ~10x slowdown stretches time, not work.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/rntree.hpp"
#include "nvm/pool.hpp"

namespace rnt::core {
namespace {

using Tree = RNTree<std::uint64_t, std::uint64_t>;

class RNTreeStressTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    saved_ = nvm::config();
    nvm::config().write_latency_ns = 0;
    nvm::config().per_line_ns = 0;
    pool_ = std::make_unique<nvm::PmemPool>(std::size_t{512} << 20);
    tree_ = std::make_unique<Tree>(*pool_, Tree::Options{.dual_slot = GetParam()});
  }
  void TearDown() override { nvm::config() = saved_; }

  nvm::NvmConfig saved_;
  std::unique_ptr<nvm::PmemPool> pool_;
  std::unique_ptr<Tree> tree_;
};

INSTANTIATE_TEST_SUITE_P(SlotModes, RNTreeStressTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "DualSlot" : "SingleSlot";
                         });

// Values always encode their key in the high bits so a reader can tell a
// consistent snapshot from a torn one without knowing which write it raced.
constexpr std::uint64_t kKeys = 6000;  // ~100+ leaves: plenty of splits
std::uint64_t encode(std::uint64_t key, std::uint64_t seq) {
  return (key << 16) | (seq & 0xFFFF);
}

TEST_P(RNTreeStressTest, WritersReadersScannersThenRecovery) {
  // 2 writers on disjoint key shards (mirrored into private oracles),
  // 1 point reader, 1 scanner — all running through leaf splits and the
  // b-link chase windows they open.
  constexpr int kWriters = 2;
  constexpr int kOpsPerWriter = 12000;

  std::atomic<int> writers_done{0};
  std::atomic<std::uint64_t> reader_violations{0};
  std::atomic<std::uint64_t> scan_violations{0};
  std::vector<std::map<std::uint64_t, std::uint64_t>> oracles(kWriters);

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      auto& oracle = oracles[w];
      Xoshiro256 rng(static_cast<std::uint64_t>(w) * 77 + 13);
      for (int i = 0; i < kOpsPerWriter; ++i) {
        // Shard by parity: writer w touches only keys with k % 2 == w.
        const std::uint64_t k = rng.next_below(kKeys / 2) * 2 + w;
        const std::uint64_t v = encode(k, static_cast<std::uint64_t>(i));
        switch (rng.next_below(8)) {
          case 0:
          case 1:
            ASSERT_EQ(tree_->insert(k, v), oracle.emplace(k, v).second);
            break;
          case 2: {
            auto it = oracle.find(k);
            ASSERT_EQ(tree_->update(k, v), it != oracle.end());
            if (it != oracle.end()) it->second = v;
            break;
          }
          case 3:
            ASSERT_EQ(tree_->remove(k), oracle.erase(k) > 0);
            break;
          default:
            tree_->upsert(k, v);
            oracle[k] = v;
        }
      }
      writers_done.fetch_add(1, std::memory_order_release);
    });
  }

  // Point reader: every observed value must encode the key it was found
  // under — a torn or misrouted read would break the encoding.
  threads.emplace_back([&] {
    Xoshiro256 rng(991);
    while (writers_done.load(std::memory_order_acquire) < kWriters) {
      const std::uint64_t k = rng.next_below(kKeys);
      const auto v = tree_->find(k);
      if (v.has_value() && (*v >> 16) != k) reader_violations.fetch_add(1);
    }
  });

  // Scanner: keys strictly increasing, every value encoding intact.
  threads.emplace_back([&] {
    Xoshiro256 rng(1993);
    while (writers_done.load(std::memory_order_acquire) < kWriters) {
      std::uint64_t prev = 0;
      bool first = true;
      std::size_t seen = 0;
      tree_->scan(rng.next_below(kKeys), [&](std::uint64_t k, std::uint64_t v) {
        if (!first && k <= prev) scan_violations.fetch_add(1);
        if ((v >> 16) != k) scan_violations.fetch_add(1);
        first = false;
        prev = k;
        return ++seen < 256;
      });
    }
  });

  for (auto& t : threads) t.join();
  EXPECT_EQ(reader_violations.load(), 0u);
  EXPECT_EQ(scan_violations.load(), 0u);

  // Quiescent state must equal the union of the writers' disjoint oracles.
  std::map<std::uint64_t, std::uint64_t> merged;
  for (auto& o : oracles) merged.insert(o.begin(), o.end());
  EXPECT_EQ(tree_->size(), merged.size());
  for (const auto& [k, v] : merged)
    ASSERT_EQ(tree_->find(k), std::optional(v)) << k;
  tree_->check_invariants();
  EXPECT_GT(tree_->stats().splits.load(), 0u)
      << "stress run never split a leaf; sizing is wrong";

  // Clean close + recovery: the rebuilt tree (inner nodes, fingerprints)
  // must reproduce the oracle exactly.
  tree_->close();
  tree_.reset();
  pool_->reopen_volatile();
  Tree recovered(Tree::recover_t{}, *pool_,
                 Tree::Options{.dual_slot = GetParam()});
  EXPECT_EQ(recovered.size(), merged.size());
  for (const auto& [k, v] : merged)
    ASSERT_EQ(recovered.find(k), std::optional(v)) << k;
  recovered.check_invariants();
}

TEST_P(RNTreeStressTest, SplitStormWithTrailingReaders) {
  // One writer inserts scrambled fresh keys as fast as possible (every 32nd
  // op lands a leaf split on average); three readers chase keys that were
  // just inserted, maximizing reads that overlap a split of their leaf.
  constexpr std::uint64_t kInserts = 20000;
  std::atomic<std::uint64_t> published{0};
  std::atomic<std::uint64_t> lost_keys{0};

  std::thread writer([&] {
    for (std::uint64_t i = 0; i < kInserts; ++i) {
      const std::uint64_t k = mix64(i);
      ASSERT_TRUE(tree_->insert(k, encode(k & 0xFFFFFFFFFFFFull, i)));
      published.store(i + 1, std::memory_order_release);
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256 rng(static_cast<std::uint64_t>(r) * 5 + 1);
      for (;;) {
        const std::uint64_t n = published.load(std::memory_order_acquire);
        if (n == 0) continue;
        // A key published before this load must be findable: inserts are
        // never lost across the split that may be moving its leaf.
        const std::uint64_t k = mix64(n - 1 - rng.next_below(std::min<std::uint64_t>(n, 64)));
        if (!tree_->find(k).has_value()) lost_keys.fetch_add(1);
        if (n == kInserts) break;
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(lost_keys.load(), 0u);
  EXPECT_EQ(tree_->size(), kInserts);
  tree_->check_invariants();
}

TEST_P(RNTreeStressTest, CrossStripeSplitStorm) {
  // Striped fallback locks at their most adversarial: 2 stripes, so nearly
  // every split's MultiStripeGuard spans both stripe locks while
  // concurrent writers publish against each, and the SMO install runs
  // after the guard's early release.  Two writers insert disjoint
  // scrambled keyspaces (split-heavy), one writer hammers updates on a
  // settled prefix (publish-heavy), one reader sweeps.  Run under TSan
  // this is the cross-stripe lock-order/race check; under a plain build it
  // is a lost-key/invariant check.
  nvm::PmemPool pool(std::size_t{512} << 20);
  Tree::Options opt;
  opt.dual_slot = GetParam();
  opt.fallback_stripes = 2;
  Tree tree(pool, opt);
  constexpr std::uint64_t kSettled = 2000;
  for (std::uint64_t i = 0; i < kSettled; ++i)
    ASSERT_TRUE(tree.upsert(mix64(i), encode(mix64(i) & 0xFFFFFFFFFFFFull, 0)));

  constexpr std::uint64_t kInsertsPerWriter = 8000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn_reads{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kInsertsPerWriter; ++i) {
        const std::uint64_t k = mix64((w + 1) * 0x100000000ull + i);
        ASSERT_TRUE(tree.insert(k, encode(k & 0xFFFFFFFFFFFFull, i)));
      }
    });
  }
  threads.emplace_back([&] {
    std::uint64_t seq = 1;
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t k = mix64(seq % kSettled);
      ASSERT_TRUE(tree.update(k, encode(k & 0xFFFFFFFFFFFFull, seq)));
      ++seq;
    }
  });
  threads.emplace_back([&] {
    Xoshiro256 rng(99);
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t k = mix64(rng.next_below(kSettled));
      const auto v = tree.find(k);
      if (!v.has_value() || (*v >> 16) != (k & 0xFFFFFFFFFFFFull))
        torn_reads.fetch_add(1);
    }
  });
  threads[0].join();
  threads[1].join();
  stop.store(true, std::memory_order_release);
  threads[2].join();
  threads[3].join();

  EXPECT_EQ(torn_reads.load(), 0u);
  EXPECT_EQ(tree.size(), kSettled + 2 * kInsertsPerWriter);
  tree.check_invariants();
  for (std::uint64_t i = 0; i < kInsertsPerWriter; ++i) {
    for (int w = 0; w < 2; ++w) {
      const std::uint64_t k = mix64((w + 1) * 0x100000000ull + i);
      ASSERT_TRUE(tree.find(k).has_value()) << "lost key, writer " << w;
    }
  }
}

}  // namespace
}  // namespace rnt::core
