// Single-threaded functional tests for RNTree: basic operations, conditional
// write semantics, splits/compaction, range queries, persist counts (the
// paper's Table 1 claim of 2 persistent instructions per modify), recovery.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "common/rng.hpp"
#include "core/rntree.hpp"
#include "nvm/pool.hpp"

namespace rnt::core {
namespace {

using Tree = RNTree<std::uint64_t, std::uint64_t>;

class RNTreeTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    saved_ = nvm::config();
    nvm::config().write_latency_ns = 0;
    nvm::config().per_line_ns = 0;
    pool_ = std::make_unique<nvm::PmemPool>(std::size_t{256} << 20);
    tree_ = std::make_unique<Tree>(*pool_, Tree::Options{.dual_slot = GetParam()});
  }
  void TearDown() override { nvm::config() = saved_; }

  nvm::NvmConfig saved_;
  std::unique_ptr<nvm::PmemPool> pool_;
  std::unique_ptr<Tree> tree_;
};

INSTANTIATE_TEST_SUITE_P(SlotModes, RNTreeTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "DualSlot" : "SingleSlot";
                         });

TEST_P(RNTreeTest, EmptyTreeFindsNothing) {
  EXPECT_FALSE(tree_->find(42).has_value());
  EXPECT_EQ(tree_->size(), 0u);
}

TEST_P(RNTreeTest, InsertThenFind) {
  EXPECT_TRUE(tree_->insert(1, 100));
  EXPECT_TRUE(tree_->insert(2, 200));
  EXPECT_EQ(tree_->find(1), std::optional<std::uint64_t>(100));
  EXPECT_EQ(tree_->find(2), std::optional<std::uint64_t>(200));
  EXPECT_FALSE(tree_->find(3).has_value());
  EXPECT_EQ(tree_->size(), 2u);
}

TEST_P(RNTreeTest, ConditionalInsertFailsOnDuplicate) {
  EXPECT_TRUE(tree_->insert(7, 1));
  EXPECT_FALSE(tree_->insert(7, 2));
  EXPECT_EQ(tree_->find(7), std::optional<std::uint64_t>(1));
  EXPECT_EQ(tree_->size(), 1u);
}

TEST_P(RNTreeTest, ConditionalUpdateFailsOnMissing) {
  EXPECT_FALSE(tree_->update(9, 1));
  EXPECT_TRUE(tree_->insert(9, 1));
  EXPECT_TRUE(tree_->update(9, 2));
  EXPECT_EQ(tree_->find(9), std::optional<std::uint64_t>(2));
}

TEST_P(RNTreeTest, UpsertInsertsOrUpdates) {
  tree_->upsert(4, 40);
  EXPECT_EQ(tree_->find(4), std::optional<std::uint64_t>(40));
  tree_->upsert(4, 44);
  EXPECT_EQ(tree_->find(4), std::optional<std::uint64_t>(44));
  EXPECT_EQ(tree_->size(), 1u);
}

TEST_P(RNTreeTest, RemoveSemantics) {
  EXPECT_FALSE(tree_->remove(5));
  EXPECT_TRUE(tree_->insert(5, 50));
  EXPECT_TRUE(tree_->remove(5));
  EXPECT_FALSE(tree_->find(5).has_value());
  EXPECT_FALSE(tree_->remove(5));
  EXPECT_EQ(tree_->size(), 0u);
}

TEST_P(RNTreeTest, InsertManySplitsLeaves) {
  constexpr std::uint64_t kN = 10000;
  for (std::uint64_t i = 0; i < kN; ++i) ASSERT_TRUE(tree_->insert(i, i * 2));
  EXPECT_GT(tree_->stats().splits.load(), 100u);
  EXPECT_GT(tree_->leaf_count(), 100u);
  EXPECT_GT(tree_->height(), 1);
  for (std::uint64_t i = 0; i < kN; ++i)
    ASSERT_EQ(tree_->find(i), std::optional<std::uint64_t>(i * 2)) << i;
  EXPECT_EQ(tree_->size(), kN);
  tree_->check_invariants();
}

TEST_P(RNTreeTest, ReverseOrderInserts) {
  constexpr std::uint64_t kN = 5000;
  for (std::uint64_t i = kN; i > 0; --i) ASSERT_TRUE(tree_->insert(i, i));
  for (std::uint64_t i = 1; i <= kN; ++i)
    ASSERT_EQ(tree_->find(i), std::optional<std::uint64_t>(i));
  tree_->check_invariants();
}

TEST_P(RNTreeTest, UpdateHeavyWorkloadTriggersCompaction) {
  // Repeated updates of the same small key set consume log entries without
  // growing the live set: the shrink-split (in-place compaction) must kick
  // in and keep all data intact.
  for (std::uint64_t i = 0; i < 20; ++i) ASSERT_TRUE(tree_->insert(i, 0));
  for (std::uint64_t round = 1; round <= 300; ++round)
    for (std::uint64_t i = 0; i < 20; ++i) ASSERT_TRUE(tree_->update(i, round));
  EXPECT_GT(tree_->stats().shrink_splits.load(), 0u);
  for (std::uint64_t i = 0; i < 20; ++i)
    ASSERT_EQ(tree_->find(i), std::optional<std::uint64_t>(300));
  tree_->check_invariants();
}

TEST_P(RNTreeTest, RandomizedAgainstStdMap) {
  std::map<std::uint64_t, std::uint64_t> oracle;
  Xoshiro256 rng(2026);
  for (int i = 0; i < 60000; ++i) {
    const std::uint64_t k = rng.next_below(2000);
    const std::uint64_t v = rng.next();
    switch (rng.next_below(4)) {
      case 0: {
        const bool ok = tree_->insert(k, v);
        const bool expect = oracle.emplace(k, v).second;
        ASSERT_EQ(ok, expect) << "insert " << k;
        break;
      }
      case 1: {
        const bool ok = tree_->update(k, v);
        auto it = oracle.find(k);
        ASSERT_EQ(ok, it != oracle.end()) << "update " << k;
        if (it != oracle.end()) it->second = v;
        break;
      }
      case 2: {
        const bool ok = tree_->remove(k);
        ASSERT_EQ(ok, oracle.erase(k) > 0) << "remove " << k;
        break;
      }
      default: {
        auto res = tree_->find(k);
        auto it = oracle.find(k);
        ASSERT_EQ(res.has_value(), it != oracle.end()) << "find " << k;
        if (res) ASSERT_EQ(*res, it->second) << "find " << k;
      }
    }
  }
  EXPECT_EQ(tree_->size(), oracle.size());
  tree_->check_invariants();
  // Full sweep.
  for (auto& [k, v] : oracle) ASSERT_EQ(tree_->find(k), std::optional(v));
}

TEST_P(RNTreeTest, ScanReturnsSortedRange) {
  for (std::uint64_t i = 0; i < 1000; ++i)
    ASSERT_TRUE(tree_->insert(i * 3, i));  // keys 0,3,6,...
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  tree_->scan_n(100, 50, out);
  ASSERT_EQ(out.size(), 50u);
  EXPECT_EQ(out[0].first, 102u);  // first key >= 100
  for (std::size_t i = 1; i < out.size(); ++i)
    EXPECT_LT(out[i - 1].first, out[i].first);
}

TEST_P(RNTreeTest, ScanWithFilterStopsEarly) {
  for (std::uint64_t i = 0; i < 1000; ++i) ASSERT_TRUE(tree_->insert(i, i));
  std::uint64_t sum = 0;
  const std::size_t visited = tree_->scan(10, [&](std::uint64_t k, std::uint64_t) {
    sum += k;
    return k < 19;  // stop after visiting key 19
  });
  EXPECT_EQ(visited, 10u);
  EXPECT_EQ(sum, (10 + 19) * 10 / 2);
}

TEST_P(RNTreeTest, ScanAcrossManyLeaves) {
  constexpr std::uint64_t kN = 20000;
  for (std::uint64_t i = 0; i < kN; ++i) ASSERT_TRUE(tree_->insert(i, i + 1));
  std::uint64_t count = 0, prev = 0;
  bool first = true;
  tree_->scan(0, [&](std::uint64_t k, std::uint64_t v) {
    EXPECT_EQ(v, k + 1);
    if (!first) EXPECT_EQ(k, prev + 1);
    first = false;
    prev = k;
    ++count;
    return true;
  });
  EXPECT_EQ(count, kN);
}

TEST_P(RNTreeTest, ScanEmptyRange) {
  for (std::uint64_t i = 0; i < 100; ++i) ASSERT_TRUE(tree_->insert(i, i));
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  EXPECT_EQ(tree_->scan_n(1000, 10, out), 0u);
}

TEST_P(RNTreeTest, TwoPersistentInstructionsPerInsert) {
  // Table 1: RNTree needs exactly 2 persistent instructions per modify —
  // one for the KV entry, one for the slot array (amortised split persists
  // excluded, so measure on a half-filled fresh leaf).
  for (std::uint64_t i = 0; i < 10; ++i) ASSERT_TRUE(tree_->insert(i * 2, i));
  const nvm::PersistStats before = nvm::tls_stats();
  ASSERT_TRUE(tree_->insert(1, 1));
  const nvm::PersistStats d = nvm::tls_stats() - before;
  EXPECT_EQ(d.persist, 2u);

  const nvm::PersistStats before2 = nvm::tls_stats();
  ASSERT_TRUE(tree_->update(1, 2));
  EXPECT_EQ((nvm::tls_stats() - before2).persist, 2u);

  // Remove touches only the slot array: 1 persistent instruction.
  const nvm::PersistStats before3 = nvm::tls_stats();
  ASSERT_TRUE(tree_->remove(1));
  EXPECT_EQ((nvm::tls_stats() - before3).persist, 1u);

  // Find performs none.
  const nvm::PersistStats before4 = nvm::tls_stats();
  (void)tree_->find(4);
  EXPECT_EQ((nvm::tls_stats() - before4).persist, 0u);
}

TEST_P(RNTreeTest, RecoveryAfterCleanShutdown) {
  constexpr std::uint64_t kN = 5000;
  for (std::uint64_t i = 0; i < kN; ++i) ASSERT_TRUE(tree_->insert(i, i * 7));
  tree_->close();
  tree_.reset();
  pool_->reopen_volatile();
  ASSERT_TRUE(pool_->clean_shutdown());

  Tree recovered(Tree::recover_t{}, *pool_, Tree::Options{.dual_slot = GetParam()});
  EXPECT_EQ(recovered.size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i)
    ASSERT_EQ(recovered.find(i), std::optional<std::uint64_t>(i * 7)) << i;
  recovered.check_invariants();
  // The recovered tree keeps working.
  ASSERT_TRUE(recovered.insert(kN + 1, 1));
  ASSERT_TRUE(recovered.remove(0));
}

TEST_P(RNTreeTest, RecoveryWithoutCleanShutdownScansSlots) {
  constexpr std::uint64_t kN = 3000;
  for (std::uint64_t i = 0; i < kN; ++i) ASSERT_TRUE(tree_->insert(i, i));
  // Simulate a crash where all data happens to be durable (no shadow): the
  // pool is dirty, so the crash-recovery path (slot scans) must run.
  tree_.reset();
  pool_->reopen_volatile();
  ASSERT_FALSE(pool_->clean_shutdown());
  Tree recovered(Tree::recover_t{}, *pool_, Tree::Options{.dual_slot = GetParam()});
  EXPECT_EQ(recovered.size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i)
    ASSERT_EQ(recovered.find(i), std::optional<std::uint64_t>(i)) << i;
  // Updates after crash recovery must not corrupt (nlogs was recomputed).
  for (std::uint64_t i = 0; i < 100; ++i) ASSERT_TRUE(recovered.update(i, 99));
  recovered.check_invariants();
}

TEST_P(RNTreeTest, StatsCountSplits) {
  for (std::uint64_t i = 0; i < 200; ++i) ASSERT_TRUE(tree_->insert(i, i));
  EXPECT_GT(tree_->stats().splits.load(), 0u);
}

TEST_P(RNTreeTest, MinAndMaxKeys) {
  EXPECT_TRUE(tree_->insert(0, 1));
  EXPECT_TRUE(tree_->insert(~0ull - 1, 2));
  EXPECT_EQ(tree_->find(0), std::optional<std::uint64_t>(1));
  EXPECT_EQ(tree_->find(~0ull - 1), std::optional<std::uint64_t>(2));
}

}  // namespace
}  // namespace rnt::core
