// Scan telemetry regression tests: RNTree::scan must record exactly one
// op.scan event per call (finished AFTER the leaf walk with the real
// success flag — the original instrumentation finished before walking and
// always reported success with zero latency), must land a nonzero latency
// sample in lat.op.scan, and must attribute heatmap kOp events to every
// leaf range the scan visits, not just its start bucket.
//
// The typed suite at the bottom covers the five baseline trees: the PR-8
// audit (OBSERVABILITY.md) recorded that they emitted no op.* telemetry at
// all, so cross-tree latency comparisons in fig4 silently compared RNTree's
// instrumented numbers against nothing.  Every baseline op must now record
// exactly one op.<kind> event (upsert composites included) with a latency
// sample.
#include <gtest/gtest.h>

#include <cstdint>
#include <string_view>
#include <vector>

#include "baselines/cdds.hpp"
#include "baselines/fptree.hpp"
#include "baselines/nvtree.hpp"
#include "baselines/wbtree.hpp"
#include "core/rntree.hpp"
#include "nvm/pool.hpp"
#include "obs/heatmap.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"

namespace rnt {
namespace {

using Tree = core::RNTree<std::uint64_t, std::uint64_t>;

obs::HistogramSummary hist_of(const obs::Snapshot& snap, std::string_view name) {
  for (const auto& [n, h] : snap.histograms)
    if (n == name) return h;
  return {};
}

class ScanTelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = nvm::config();
    nvm::config().write_latency_ns = 0;
    nvm::config().per_line_ns = 0;
    obs::set_phase_timing(true);
    if (!obs::phase_timing_enabled())
      GTEST_SKIP() << "phase timing compiled out";
  }
  void TearDown() override {
    obs::set_phase_timing(false);
    nvm::config() = saved_;
  }
  nvm::NvmConfig saved_;
};

TEST_F(ScanTelemetryTest, OneOpScanEventPerScan) {
  nvm::PmemPool pool(std::size_t{16} << 20);
  Tree tree(pool);
  for (std::uint64_t i = 0; i < 3000; ++i)
    ASSERT_TRUE(tree.insert(i * 3, i));

  const obs::Snapshot before = obs::snapshot();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  constexpr std::uint64_t kScans = 5;
  for (std::uint64_t i = 0; i < kScans; ++i)
    ASSERT_EQ(tree.scan_n(i * 600, 200, out), 200u);
  const obs::Snapshot after = obs::snapshot();

  EXPECT_EQ(after.counter("op.scan") - before.counter("op.scan"), kScans);
  const obs::HistogramSummary h0 = hist_of(before, "lat.op.scan");
  const obs::HistogramSummary h1 = hist_of(after, "lat.op.scan");
  EXPECT_EQ(h1.count - h0.count, kScans);
  // A 200-key walk takes real time; the latency samples cannot all be zero.
  EXPECT_GT(h1.sum, h0.sum);
}

TEST_F(ScanTelemetryTest, EmptyScanStillCountsAsMiss) {
  nvm::PmemPool pool(std::size_t{16} << 20);
  Tree tree(pool);
  for (std::uint64_t i = 0; i < 100; ++i) ASSERT_TRUE(tree.insert(i, i));

  const obs::Snapshot before = obs::snapshot();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  EXPECT_EQ(tree.scan_n(1'000'000, 10, out), 0u);  // beyond every key
  const obs::Snapshot after = obs::snapshot();
  EXPECT_EQ(after.counter("op.scan") - before.counter("op.scan"), 1u);
}

#if !defined(RNTREE_NO_HEATMAP)

// A full-range scan must heat the buckets of every leaf it visits — one kOp
// record per visited leaf beyond the first — so heatmaps show the range a
// scan-heavy workload actually touches.
TEST_F(ScanTelemetryTest, ScanHeatsTheVisitedRange) {
  constexpr std::uint64_t kSpace = 8192;
  ASSERT_TRUE(obs::heatmap_configure({.buckets = 64,
                                      .by_leaf = false,
                                      .key_space = kSpace,
                                      .decay_half_life_s = 0.0}));
  obs::set_heatmap_enabled(true);

  nvm::PmemPool pool(std::size_t{16} << 20);
  Tree tree(pool);
  for (std::uint64_t k = 0; k < kSpace; ++k) ASSERT_TRUE(tree.insert(k, k));

  obs::heatmap_reset();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  ASSERT_EQ(tree.scan_n(0, kSpace, out), kSpace);

  const obs::HeatmapSnapshot snap = obs::heatmap_snapshot();
  constexpr int kOpIdx = static_cast<int>(obs::HeatCause::kOp);
  int heated = 0;
  for (const obs::HeatBucket& b : snap.buckets)
    if (b.counts[kOpIdx] > 0) ++heated;
  // 8192 dense keys span > 100 leaves; with 64 buckets over the key space
  // the visited range heats most of the table, not just bucket 0.
  EXPECT_GE(heated, 32) << "scan heat stuck at its start bucket";

  obs::set_heatmap_enabled(false);
  obs::heatmap_reset();
}

#endif  // !RNTREE_NO_HEATMAP

// --- baseline OpTrace coverage ---------------------------------------------

template <typename TreeT>
class BaselineOpTelemetryTest : public ScanTelemetryTest {};

using BaselineTypes =
    ::testing::Types<baselines::CDDSTree<>, baselines::FPTree<>,
                     baselines::NVTree<>, baselines::WBTree<>,
                     baselines::WBTreeSO<>>;
TYPED_TEST_SUITE(BaselineOpTelemetryTest, BaselineTypes);

TYPED_TEST(BaselineOpTelemetryTest, EveryOpKindRecordsExactlyOnce) {
  nvm::PmemPool pool(std::size_t{16} << 20);
  TypeParam tree(pool);
  for (std::uint64_t i = 0; i < 400; ++i)
    ASSERT_TRUE(tree.insert(i * 2, i));  // warm-up (counted, then diffed away)

  const obs::Snapshot before = obs::snapshot();
  constexpr std::uint64_t kOps = 25;
  for (std::uint64_t i = 0; i < kOps; ++i) {
    ASSERT_TRUE(tree.insert(100'000 + i, i));
    ASSERT_TRUE(tree.update(i * 2, i + 1));
    // Upserts are composites in some baselines: each must still record
    // exactly ONE op.upsert and no nested op.insert/op.update.
    ASSERT_TRUE(tree.upsert(200'000 + i, i));
    ASSERT_TRUE(tree.find(i * 2).has_value());
    EXPECT_FALSE(tree.find(1 + i * 2).has_value());  // miss also records
    ASSERT_TRUE(static_cast<bool>(tree.remove(100'000 + i)));
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  ASSERT_EQ(tree.scan_n(0, 50, out), 50u);
  const obs::Snapshot after = obs::snapshot();

  EXPECT_EQ(after.counter("op.insert") - before.counter("op.insert"), kOps);
  EXPECT_EQ(after.counter("op.update") - before.counter("op.update"), kOps);
  EXPECT_EQ(after.counter("op.upsert") - before.counter("op.upsert"), kOps);
  EXPECT_EQ(after.counter("op.find") - before.counter("op.find"), 2 * kOps);
  EXPECT_EQ(after.counter("op.remove") - before.counter("op.remove"), kOps);
  EXPECT_EQ(after.counter("op.scan") - before.counter("op.scan"), 1u);
  EXPECT_EQ(after.counter("op.completed") - before.counter("op.completed"),
            6 * kOps + 1);

  // Latency histograms must receive the same sample counts (fig4's
  // cross-tree latency comparison reads these).
  for (const char* h : {"lat.op.insert", "lat.op.update", "lat.op.upsert",
                        "lat.op.remove"})
    EXPECT_EQ(hist_of(after, h).count - hist_of(before, h).count, kOps) << h;
  EXPECT_EQ(hist_of(after, "lat.op.find").count -
                hist_of(before, "lat.op.find").count,
            2 * kOps);
  EXPECT_EQ(hist_of(after, "lat.op.scan").count -
                hist_of(before, "lat.op.scan").count,
            1u);
}

}  // namespace
}  // namespace rnt
