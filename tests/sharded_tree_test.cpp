// ShardedTree facade tests: partition routing and containment, cross-shard
// ordered scans (range concatenation and hash k-way merge), group-persistency
// fence accounting (the exact K + 1 fences-per-batch contract), clean and
// crash recovery of the multi-root pool, a crash-point sweep over a batched
// flush, and a scan-vs-split race across a shard boundary.
#include "shard/sharded_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "nvm/persist.hpp"
#include "nvm/pool.hpp"
#include "nvm/shadow.hpp"

namespace rnt::shard {
namespace {

using SH = ShardedTree<std::uint64_t, std::uint64_t>;

class ShardedTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = nvm::config();
    nvm::config().write_latency_ns = 0;
    nvm::config().per_line_ns = 0;
  }
  void TearDown() override { nvm::config() = saved_; }
  nvm::NvmConfig saved_;
};

TEST_F(ShardedTreeTest, HashPartitionBasicOps) {
  nvm::PmemPool pool(std::size_t{16} << 20);
  SH tree(pool, {.shards = 4, .partition = Partition::kHash});

  for (std::uint64_t i = 0; i < 500; ++i) ASSERT_TRUE(tree.insert(i, i * 10));
  EXPECT_EQ(tree.size(), 500u);
  // 500 mixed keys cannot all land in one of four hash shards.
  for (int s = 0; s < 4; ++s) EXPECT_GT(tree.shard(s).size(), 0u);

  for (std::uint64_t i = 0; i < 500; ++i) {
    auto got = tree.find(i);
    ASSERT_TRUE(got.has_value()) << "key " << i;
    EXPECT_EQ(*got, i * 10);
  }
  EXPECT_FALSE(tree.find(500).has_value());
  EXPECT_FALSE(tree.insert(7, 1));       // duplicate
  EXPECT_TRUE(tree.update(7, 777));
  EXPECT_EQ(*tree.find(7), 777u);
  EXPECT_FALSE(tree.update(9999, 1));    // missing
  EXPECT_TRUE(tree.upsert(9999, 42));
  EXPECT_EQ(*tree.find(9999), 42u);
  EXPECT_TRUE(tree.remove(7));
  EXPECT_FALSE(tree.remove(7));
  EXPECT_FALSE(tree.find(7).has_value());
  tree.check_invariants();
}

TEST_F(ShardedTreeTest, RangePartitionScanConcatenates) {
  nvm::PmemPool pool(std::size_t{16} << 20);
  SH tree(pool,
          {.shards = 4, .partition = Partition::kRange, .key_space = 4000});
  std::map<std::uint64_t, std::uint64_t> oracle;
  for (std::uint64_t k = 0; k < 4000; k += 7) {
    ASSERT_TRUE(tree.insert(k, k + 1));
    oracle[k] = k + 1;
  }
  // Range shards must actually split the load across members.
  for (int s = 0; s < 4; ++s) EXPECT_GT(tree.shard(s).size(), 0u);
  tree.check_invariants();

  std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
  tree.scan_n(0, oracle.size() + 8, got);
  ASSERT_EQ(got.size(), oracle.size());
  auto it = oracle.begin();
  for (std::size_t i = 0; i < got.size(); ++i, ++it) {
    ASSERT_EQ(got[i].first, it->first) << "rank " << i;
    ASSERT_EQ(got[i].second, it->second) << "rank " << i;
  }

  // Mid-range start crossing a shard boundary (width = 1000).
  tree.scan_n(990, 10, got);
  ASSERT_EQ(got.size(), 10u);
  for (std::size_t i = 1; i < got.size(); ++i)
    ASSERT_LT(got[i - 1].first, got[i].first);
  EXPECT_GE(got.front().first, 990u);
}

TEST_F(ShardedTreeTest, HashPartitionScanMergesInOrder) {
  nvm::PmemPool pool(std::size_t{16} << 20);
  SH tree(pool, {.shards = 8, .partition = Partition::kHash});
  std::map<std::uint64_t, std::uint64_t> oracle;
  Xoshiro256 rng(99);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t k = rng.next_below(100'000);
    tree.upsert(k, k ^ 0xFF);
    oracle[k] = k ^ 0xFF;
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
  tree.scan_n(0, oracle.size() + 8, got);
  ASSERT_EQ(got.size(), oracle.size());
  auto it = oracle.begin();
  for (std::size_t i = 0; i < got.size(); ++i, ++it) {
    ASSERT_EQ(got[i].first, it->first) << "rank " << i;
    ASSERT_EQ(got[i].second, it->second) << "rank " << i;
  }

  // Mid-stream start + early stop exercise the per-shard cursor refill path.
  const std::uint64_t mid = std::next(oracle.begin(), 1000)->first;
  tree.scan_n(mid, 200, got);
  ASSERT_EQ(got.size(), 200u);
  auto om = oracle.lower_bound(mid);
  for (std::size_t i = 0; i < got.size(); ++i, ++om) {
    ASSERT_EQ(got[i].first, om->first) << "rank " << i;
    ASSERT_EQ(got[i].second, om->second) << "rank " << i;
  }
}

TEST_F(ShardedTreeTest, RejectsBadShardCounts) {
  nvm::PmemPool pool(std::size_t{8} << 20);
  EXPECT_THROW(SH(pool, {.shards = 0}), std::invalid_argument);
  EXPECT_THROW(SH(pool, {.shards = 3}), std::invalid_argument);
  EXPECT_THROW(SH(pool, {.shards = 32}), std::invalid_argument);
  EXPECT_THROW(SH(SH::recover_t{}, pool, {.shards = -4}),
               std::invalid_argument);
}

TEST_F(ShardedTreeTest, RecoverWithMissingRootThrows) {
  nvm::PmemPool pool(std::size_t{8} << 20);
  {
    SH tree(pool, {.shards = 2});
    ASSERT_TRUE(tree.insert(1, 1));
    tree.close();
  }
  pool.reopen_volatile();
  // The pool was created with 2 shards; shard 2's root slot is empty.
  EXPECT_THROW(SH(SH::recover_t{}, pool, {.shards = 4}), std::runtime_error);
}

TEST_F(ShardedTreeTest, CleanCloseRecoverRoundTrip) {
  nvm::PmemPool pool(std::size_t{16} << 20);
  const SH::Options opt{.shards = 4, .partition = Partition::kHash};
  {
    SH tree(pool, opt);
    for (std::uint64_t i = 0; i < 300; ++i) ASSERT_TRUE(tree.insert(i, i + 5));
    tree.close();
  }
  pool.reopen_volatile();
  ASSERT_TRUE(pool.clean_shutdown());
  SH rec(SH::recover_t{}, pool, opt);
  EXPECT_EQ(rec.size(), 300u);
  for (std::uint64_t i = 0; i < 300; ++i) {
    auto got = rec.find(i);
    ASSERT_TRUE(got.has_value()) << "key " << i;
    EXPECT_EQ(*got, i + 5);
  }
  rec.check_invariants();
}

// ---------------------------------------------------------------------------
// Group persistency: exact fence accounting.
// ---------------------------------------------------------------------------

// A K-op ModifyBatch must cost exactly K eager fences (one per KV persist)
// plus ONE batch barrier, with each op's slot-line flush deferred into the
// barrier (K batch-persist compounds).  The same ops issued eagerly cost 2K
// fences.  This is the 2 -> 1 + 1/K claim as integer deltas, and it pins the
// separation of the batch_* counters from the Table-1 persist/fence fields.
TEST_F(ShardedTreeTest, BatchFenceAccountingIsExact) {
  nvm::PmemPool pool(std::size_t{16} << 20);
  SH tree(pool, {.shards = 4, .partition = Partition::kHash});
  for (std::uint64_t i = 0; i < 16; ++i) ASSERT_TRUE(tree.insert(i, 0));

  const nvm::PersistStats before = nvm::tls_stats();
  {
    SH::ModifyBatch batch(tree, 8);
    for (std::uint64_t i = 0; i < 8; ++i) ASSERT_TRUE(batch.update(i, i + 1));
  }
  const nvm::PersistStats mid = nvm::tls_stats();
  EXPECT_EQ(mid.fence - before.fence, 8u);          // eager KV fences
  EXPECT_EQ(mid.batch_fence - before.batch_fence, 1u);
  EXPECT_EQ(mid.batch_persist - before.batch_persist, 8u);  // deferred slots

  for (std::uint64_t i = 0; i < 8; ++i) ASSERT_TRUE(tree.update(i, i + 2));
  const nvm::PersistStats after = nvm::tls_stats();
  EXPECT_EQ(after.fence - mid.fence, 16u);          // 2 fences per eager op
  EXPECT_EQ(after.batch_fence - mid.batch_fence, 0u);
  EXPECT_EQ(after.batch_persist - mid.batch_persist, 0u);
}

TEST_F(ShardedTreeTest, BatchAutoFlushesAtCapacity) {
  nvm::PmemPool pool(std::size_t{16} << 20);
  SH tree(pool, {.shards = 2});
  for (std::uint64_t i = 0; i < 16; ++i) ASSERT_TRUE(tree.insert(i, 0));

  SH::ModifyBatch batch(tree, 4);
  const nvm::PersistStats before = nvm::tls_stats();
  ASSERT_TRUE(batch.update(0, 1));
  ASSERT_TRUE(batch.update(1, 1));
  ASSERT_TRUE(batch.update(2, 1));
  EXPECT_EQ(batch.staged(), 3u);
  EXPECT_EQ(nvm::tls_stats().batch_fence - before.batch_fence, 0u);
  ASSERT_TRUE(batch.update(3, 1));  // hits cap: auto-flush
  EXPECT_EQ(batch.staged(), 0u);
  EXPECT_EQ(nvm::tls_stats().batch_fence - before.batch_fence, 1u);
  batch.flush();  // nothing staged: no extra barrier
  EXPECT_EQ(nvm::tls_stats().batch_fence - before.batch_fence, 1u);
  // Results surface immediately even before the durability barrier.
  ASSERT_TRUE(batch.insert(100, 7));
  EXPECT_EQ(batch.staged(), 1u);
  EXPECT_EQ(*tree.find(100), 7u);
}

// ---------------------------------------------------------------------------
// Crash-point sweep over a batched flush: crash at EVERY tracked NVM event
// of an 8-op ModifyBatch (including the trailing barrier) and verify after
// recovery that each batched update is all-or-nothing — old value or new
// value, never torn, never a lost committed key — and that the partition
// invariants hold.
// ---------------------------------------------------------------------------

constexpr std::uint64_t kSweepKeys = 64;
constexpr std::uint64_t kSweepTargets = 8;
inline std::uint64_t sweep_key(std::uint64_t i) { return i * 5 + 1; }
inline std::uint64_t old_val(std::uint64_t i) { return 0xA000 + i; }
inline std::uint64_t new_val(std::uint64_t i) { return 0xB000 + i; }

std::unique_ptr<SH> make_sweep_tree(nvm::PmemPool& pool) {
  auto tree = std::make_unique<SH>(
      pool, SH::Options{.shards = 4, .partition = Partition::kHash});
  for (std::uint64_t i = 0; i < kSweepKeys; ++i)
    EXPECT_TRUE(tree->insert(sweep_key(i), old_val(i)));
  return tree;
}

void run_batch_target(SH& tree) {
  SH::ModifyBatch batch(tree, kSweepTargets);
  for (std::uint64_t i = 0; i < kSweepTargets; ++i)
    (void)batch.update(sweep_key(i), new_val(i));
}

TEST_F(ShardedTreeTest, CrashSweepOverBatchedFlush) {
  // Calibration run: count the batch's tracked NVM events (no crash).
  std::uint64_t events = 0;
  {
    nvm::PmemPool pool(std::size_t{8} << 20);
    auto tree = make_sweep_tree(pool);
    nvm::ShadowPool shadow(pool);
    run_batch_target(*tree);
    events = shadow.events_seen();
  }
  ASSERT_GE(events, kSweepTargets * 2);  // >= 1 store + 1 fence per update

  for (std::uint64_t n = 1; n <= events; ++n) {
    nvm::PmemPool pool(std::size_t{8} << 20);
    {
      auto tree = make_sweep_tree(pool);
      nvm::ShadowPool shadow(pool);
      shadow.schedule_crash_after(n);
      bool crashed = false;
      try {
        run_batch_target(*tree);
      } catch (const nvm::CrashPoint&) {
        crashed = true;
      }
      ASSERT_TRUE(crashed) << "crash_at=" << n << " beyond the batch's events";
      tree.reset();  // volatile state dies with the process
      shadow.simulate_crash(nvm::EvictionMode::kNone, 0);
    }
    pool.reopen_volatile();
    ASSERT_FALSE(pool.clean_shutdown()) << "crash_at=" << n;

    SH rec(SH::recover_t{}, pool,
           {.shards = 4, .partition = Partition::kHash});
    for (std::uint64_t i = 0; i < kSweepTargets; ++i) {
      auto got = rec.find(sweep_key(i));
      ASSERT_TRUE(got.has_value())
          << "crash_at=" << n << ": committed key " << sweep_key(i) << " lost";
      ASSERT_TRUE(*got == old_val(i) || *got == new_val(i))
          << "crash_at=" << n << ": torn batched update, value " << *got;
    }
    for (std::uint64_t i = kSweepTargets; i < kSweepKeys; ++i) {
      auto got = rec.find(sweep_key(i));
      ASSERT_TRUE(got.has_value() && *got == old_val(i))
          << "crash_at=" << n << ": untouched key " << sweep_key(i)
          << " damaged";
    }
    ASSERT_NO_THROW(rec.check_invariants()) << "crash_at=" << n;
  }
}

// ---------------------------------------------------------------------------
// Scan vs. split across a shard boundary: a racing writer splits leaves in
// every shard while a reader scans the full range.  Stable (pre-inserted)
// keys must never go missing or duplicate, and the merged order must stay
// strictly increasing — including across shard boundaries.
// ---------------------------------------------------------------------------

TEST_F(ShardedTreeTest, ScanVsSplitAcrossShardBoundary) {
  constexpr std::uint64_t kSpace = 4096;
  nvm::PmemPool pool(std::size_t{64} << 20);
  SH tree(pool,
          {.shards = 4, .partition = Partition::kRange, .key_space = kSpace});

  // Stable even keys, present before the race starts.
  for (std::uint64_t k = 0; k < kSpace; k += 2) ASSERT_TRUE(tree.insert(k, k));
  const std::size_t n_stable = kSpace / 2;

  std::atomic<bool> done{false};
  std::thread writer([&] {
    // Odd keys in scrambled order: splits land in every shard, interleaved.
    std::vector<std::uint64_t> odds;
    odds.reserve(kSpace / 2);
    for (std::uint64_t k = 1; k < kSpace; k += 2) odds.push_back(k);
    Xoshiro256 rng(7);
    for (std::size_t i = odds.size(); i > 1; --i)
      std::swap(odds[i - 1], odds[rng.next_below(i)]);
    for (const std::uint64_t k : odds) (void)tree.insert(k, k);
    done.store(true, std::memory_order_release);
  });

  std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
  do {
    tree.scan_n(0, kSpace + 8, got);
    std::size_t evens = 0;
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (i > 0) {
        ASSERT_LT(got[i - 1].first, got[i].first)
            << "duplicate or out-of-order key during racing scan";
      }
      if ((got[i].first & 1) == 0) {
        ASSERT_EQ(got[i].second, got[i].first);
        ++evens;
      }
    }
    ASSERT_EQ(evens, n_stable) << "racing scan lost a stable key";
  } while (!done.load(std::memory_order_acquire));
  writer.join();

  // Quiescent: the final state is exactly the full key space.
  tree.scan_n(0, kSpace + 8, got);
  ASSERT_EQ(got.size(), kSpace);
  for (std::uint64_t k = 0; k < kSpace; ++k) {
    ASSERT_EQ(got[k].first, k);
    ASSERT_EQ(got[k].second, k);
  }
  tree.check_invariants();
}

}  // namespace
}  // namespace rnt::shard
