// Tests for the discrete-event simulator: kernel semantics (scheduler,
// delays, FIFO mutex, NVM channel queueing) and model-level properties the
// figure benches rely on (determinism, single-thread sanity, linear uniform
// scaling, skew-induced contrasts between the tree models).
#include <gtest/gtest.h>

#include "sim/models.hpp"
#include "sim/simulator.hpp"

namespace rnt::sim {
namespace {

// --- kernel -----------------------------------------------------------

Task record_times(Scheduler& s, std::vector<SimTime>& out, SimTime d, int n) {
  for (int i = 0; i < n; ++i) {
    co_await Delay{s, d};
    out.push_back(s.now());
  }
}

TEST(Scheduler, DelaysAdvanceVirtualTime) {
  Scheduler s;
  std::vector<SimTime> times;
  s.spawn(record_times(s, times, 100, 5));
  s.run_until(10'000);
  ASSERT_EQ(times.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(times[i], 100u * (i + 1));
  EXPECT_EQ(s.now(), 10'000u);
}

TEST(Scheduler, HorizonStopsExecution) {
  Scheduler s;
  std::vector<SimTime> times;
  s.spawn(record_times(s, times, 1000, 100));
  s.run_until(3'500);
  EXPECT_EQ(times.size(), 3u);  // events at 1000, 2000, 3000
}

TEST(Scheduler, InterleavesWorkersByTime) {
  Scheduler s;
  std::vector<SimTime> a, b;
  s.spawn(record_times(s, a, 300, 3));  // 300, 600, 900
  s.spawn(record_times(s, b, 200, 3));  // 200, 400, 600
  s.run_until(10'000);
  EXPECT_EQ(a, (std::vector<SimTime>{300, 600, 900}));
  EXPECT_EQ(b, (std::vector<SimTime>{200, 400, 600}));
}

Task lock_user(Scheduler& s, SimMutex& m, SimTime hold,
               std::vector<std::pair<SimTime, SimTime>>& spans) {
  co_await m.acquire(s);
  const SimTime t0 = s.now();
  co_await Delay{s, hold};
  spans.emplace_back(t0, s.now());
  m.release(s);
}

TEST(SimMutex, SerializesHolders) {
  Scheduler s;
  SimMutex m;
  std::vector<std::pair<SimTime, SimTime>> spans;
  for (int i = 0; i < 4; ++i) s.spawn(lock_user(s, m, 100, spans));
  s.run_until(10'000);
  ASSERT_EQ(spans.size(), 4u);
  // Non-overlapping, back to back: [0,100),[100,200),...
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[i].first, 100u * i);
    EXPECT_EQ(spans[i].second, 100u * (i + 1));
  }
}

TEST(SimMutex, LockedQuery) {
  Scheduler s;
  SimMutex m;
  std::vector<std::pair<SimTime, SimTime>> spans;
  EXPECT_FALSE(m.locked());
  s.spawn(lock_user(s, m, 500, spans));
  s.run_until(100);  // holder acquired at t=0, releases at 500
  EXPECT_TRUE(m.locked());
  s.run_until(1'000);
  EXPECT_FALSE(m.locked());
}

TEST(ChannelPool, UncontendedStallIsFenceLatency) {
  ChannelPool pool(6, 160, 25);
  EXPECT_EQ(pool.persist_latency(1000), 160u);
}

TEST(ChannelPool, OccupancyQueuesUnderBandwidthPressure) {
  ChannelPool pool(2, 100, 50);
  // Four simultaneous persists on two channels occupying 50 ns each: the
  // first pair stalls only the fence latency, the second also queues.
  EXPECT_EQ(pool.persist_latency(0), 100u);
  EXPECT_EQ(pool.persist_latency(0), 100u);
  EXPECT_EQ(pool.persist_latency(0), 150u);
  EXPECT_EQ(pool.persist_latency(0), 150u);
}

TEST(ChannelPool, IdleChannelsRecover) {
  ChannelPool pool(1, 100, 40);
  EXPECT_EQ(pool.persist_latency(0), 100u);
  EXPECT_EQ(pool.persist_latency(1'000'000), 100u);  // long idle gap
}

// --- models -----------------------------------------------------------

SimConfig base_config(TreeModel m, int threads, double theta) {
  SimConfig cfg;
  cfg.model = m;
  cfg.threads = threads;
  cfg.zipf_theta = theta;
  cfg.keys = 200'000;
  cfg.horizon_ns = 20'000'000;  // 20 ms virtual
  return cfg;
}

TEST(SimModels, DeterministicAcrossRuns) {
  const SimConfig cfg = base_config(TreeModel::kRNTreeDS, 8, 0.8);
  const SimResult a = run_simulation(cfg);
  const SimResult b = run_simulation(cfg);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.find_retries, b.find_retries);
  EXPECT_EQ(a.read_latency.percentile(0.99), b.read_latency.percentile(0.99));
}

TEST(SimModels, SingleThreadThroughputMatchesOpCost) {
  // One worker, closed loop: throughput ~= 1 / mean_op_cost.  An RNTree
  // update costs ~ traverse+alloc+write+persist + search+slot+persist
  // ~= 840 ns; a find ~= 450 ns; 50/50 mix ~= 645 ns/op -> ~1.55 Mops.
  const SimConfig cfg = base_config(TreeModel::kRNTreeDS, 1, 0.0);
  const SimResult r = run_simulation(cfg);
  EXPECT_GT(r.mops, 1.0);
  EXPECT_LT(r.mops, 2.5);
}

TEST(SimModels, UniformWorkloadScalesNearLinearly) {
  const SimResult one = run_simulation(base_config(TreeModel::kRNTreeDS, 1, 0.0));
  const SimResult eight =
      run_simulation(base_config(TreeModel::kRNTreeDS, 8, 0.0));
  EXPECT_GT(eight.mops, one.mops * 5.5);  // paper Fig 8(a): linear
}

TEST(SimModels, FPTreeUniformAlsoScales) {
  const SimResult one = run_simulation(base_config(TreeModel::kFPTree, 1, 0.0));
  const SimResult eight = run_simulation(base_config(TreeModel::kFPTree, 8, 0.0));
  EXPECT_GT(eight.mops, one.mops * 4.0);
}

// Contention-sensitive checks use the hot-set size the figure benches are
// calibrated to (EXPERIMENTS.md discusses the calibration: the paper's
// request distribution concentrates far more than ideal YCSB-Zipf over the
// full 16M keys would).
SimConfig skew_config(TreeModel m, int threads, double theta) {
  SimConfig cfg = base_config(m, threads, theta);
  cfg.keys = 20'000;
  return cfg;
}

TEST(SimModels, SkewedFPTreeLagsRNTree) {
  // Fig 8(b): under Zipf(0.8) RNTree clearly outperforms FPTree at high
  // thread counts.
  const SimResult rn = run_simulation(skew_config(TreeModel::kRNTree, 24, 0.8));
  const SimResult fp = run_simulation(skew_config(TreeModel::kFPTree, 24, 0.8));
  EXPECT_GT(rn.mops, fp.mops * 1.3);
}

TEST(SimModels, FPTreeSkewScalingPlateaus) {
  // FPTree gains much less from extra threads under skew; RNTree keeps
  // scaling (Fig 8(b)).
  const SimResult fp4 = run_simulation(skew_config(TreeModel::kFPTree, 4, 0.8));
  const SimResult fp24 = run_simulation(skew_config(TreeModel::kFPTree, 24, 0.8));
  const SimResult rn4 = run_simulation(skew_config(TreeModel::kRNTree, 4, 0.8));
  const SimResult rn24 = run_simulation(skew_config(TreeModel::kRNTree, 24, 0.8));
  const double fp_gain = fp24.mops / fp4.mops;
  const double rn_gain = rn24.mops / rn4.mops;
  EXPECT_GT(rn_gain, fp_gain * 1.2);
}

TEST(SimModels, DualSlotReadLatencyBeatsSingleSlot) {
  // Fig 9: RNTree+DS reads are (nearly) never blocked; plain RNTree reads
  // wait out slot flushes on hot leaves.
  SimConfig rn = base_config(TreeModel::kRNTree, 16, 0.9);
  SimConfig ds = base_config(TreeModel::kRNTreeDS, 16, 0.9);
  const SimResult r_rn = run_simulation(rn);
  const SimResult r_ds = run_simulation(ds);
  EXPECT_LT(r_ds.read_latency.percentile(0.99),
            r_rn.read_latency.percentile(0.99));
  EXPECT_LT(r_ds.find_retries, r_rn.find_retries);
}

TEST(SimModels, FPTreeReadLatencyWorstUnderContention) {
  const SimResult fp = run_simulation(base_config(TreeModel::kFPTree, 16, 0.9));
  const SimResult ds = run_simulation(base_config(TreeModel::kRNTreeDS, 16, 0.9));
  EXPECT_GT(fp.read_latency.percentile(0.99),
            ds.read_latency.percentile(0.99));
}

TEST(SimModels, SkewSensitivity) {
  // Fig 10: FPTree degrades sharply as theta grows; RNTree much less.
  const SimResult fp_mild = run_simulation(base_config(TreeModel::kFPTree, 8, 0.5));
  const SimResult fp_hot = run_simulation(base_config(TreeModel::kFPTree, 8, 0.99));
  const SimResult rn_mild = run_simulation(base_config(TreeModel::kRNTree, 8, 0.5));
  const SimResult rn_hot = run_simulation(base_config(TreeModel::kRNTree, 8, 0.99));
  const double fp_drop = fp_hot.mops / fp_mild.mops;
  const double rn_drop = rn_hot.mops / rn_mild.mops;
  EXPECT_LT(fp_drop, rn_drop);  // FPTree loses a larger fraction
}

TEST(SimModels, OpenLoopLatencyExplodesPastSaturation) {
  SimConfig cfg = base_config(TreeModel::kFPTree, 8, 0.8);
  cfg.open_rate = 20'000;  // well under capacity
  const SimResult light = run_simulation(cfg);
  cfg.open_rate = 2'000'000;  // far beyond per-worker capacity
  const SimResult heavy = run_simulation(cfg);
  EXPECT_GT(heavy.update_latency.percentile(0.5),
            light.update_latency.percentile(0.5) * 5);
}

TEST(SimModels, OpenLoopRespectsArrivalRate) {
  SimConfig cfg = base_config(TreeModel::kRNTreeDS, 4, 0.0);
  cfg.open_rate = 50'000;  // 50 Kops/worker -> 200 Kops total
  cfg.horizon_ns = 100'000'000;
  const SimResult r = run_simulation(cfg);
  EXPECT_NEAR(r.mops, 0.2, 0.04);
}

// --- SMO model (COW vs in-place install transactions) ------------------

SimConfig smo_config(bool cow, int threads) {
  SimConfig cfg = base_config(TreeModel::kRNTreeDS, threads, 0.0);
  cfg.update_pct = 100;   // insert-only: split-heavy
  cfg.keys_per_leaf = 16; // small fanout: SMO every ~16 modifies
  cfg.smo.enabled = true;
  cfg.smo.cow = cow;
  return cfg;
}

TEST(SimModels, SmoModelDeterministic) {
  const SimConfig cfg = smo_config(false, 16);
  const SimResult a = run_simulation(cfg);
  const SimResult b = run_simulation(cfg);
  EXPECT_EQ(a.smo_count, b.smo_count);
  EXPECT_EQ(a.aborts_capacity, b.aborts_capacity);
}

TEST(SimModels, CowSmoNeverCapacityAborts) {
  // A one-cache-line install transaction cannot overflow the write set: the
  // COW model records zero capacity aborts no matter the core count.
  const SimResult r = run_simulation(smo_config(true, 64));
  EXPECT_GT(r.smo_count, 100u);
  EXPECT_EQ(r.aborts_capacity, 0u);
}

TEST(SimModels, InplaceSmoSuffersCapacityAborts) {
  // The whole-path write set aborts a fixed share of attempts
  // (capacity_permille = 400, two attempts before fallback).
  const SimResult r = run_simulation(smo_config(false, 64));
  EXPECT_GT(r.smo_count, 100u);
  EXPECT_GT(r.aborts_capacity, r.smo_count / 4);
}

TEST(SimModels, CowSmoOutscalesInplaceAtHighCores) {
  // The in-place path's capacity-abort fallbacks serialize on the fallback
  // lock as cores grow; COW installs never take it (Fig 8-style contrast).
  const SimResult cow = run_simulation(smo_config(true, 64));
  const SimResult inp = run_simulation(smo_config(false, 64));
  EXPECT_GT(cow.mops, inp.mops);
  EXPECT_EQ(cow.htm_fallbacks, 0u);
  EXPECT_GT(inp.htm_fallbacks, 0u);
}

// --- striped fallback locks under a capacity-abort storm ----------------

SimConfig storm_config(int stripes, std::uint32_t permille) {
  SimConfig cfg;
  cfg.model = TreeModel::kRNTreeDS;
  cfg.threads = 16;
  cfg.keys = 20'000;
  cfg.keys_per_leaf = 48;
  cfg.update_pct = 100;
  cfg.horizon_ns = 20'000'000;
  cfg.fallback_stripes = stripes;
  cfg.storm.enabled = true;  // classification + 30% hot-set traffic skew
  cfg.storm.key = 7;
  cfg.storm.permille = permille;  // 0 = calm baseline, same traffic
  return cfg;
}

double storm_cold_ratio(int stripes) {
  const SimResult calm = run_simulation(storm_config(stripes, 0));
  const SimResult storm = run_simulation(storm_config(stripes, 800));
  EXPECT_GT(calm.cold_stripe_ops, 0u);
  return static_cast<double>(storm.cold_stripe_ops) /
         static_cast<double>(calm.cold_stripe_ops);
}

TEST(SimModels, StripedFallbackSurvivesCapacityStormGlobalCollapses) {
  // The robustness tentpole's deterministic assertion (also exported by
  // bench_ablation_fallback and enforced by smoke_fallback_storm): under a
  // permille-800 capacity-abort storm pinned to one stripe, cold traffic
  // keeps >= 0.5x of its calm throughput when fallbacks are striped, while
  // the single global fallback lock convoys everyone and collapses.
  const double striped = storm_cold_ratio(64);
  const double global = storm_cold_ratio(1);
  EXPECT_GE(striped, 0.5) << "storm leaked past the hot stripe";
  EXPECT_LT(global, 0.5) << "global baseline failed to collapse";
  EXPECT_LT(global, striped);
}

TEST(SimModels, StormRunsAreDeterministic) {
  const SimResult a = run_simulation(storm_config(64, 800));
  const SimResult b = run_simulation(storm_config(64, 800));
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.cold_stripe_ops, b.cold_stripe_ops);
  EXPECT_EQ(a.hot_stripe_ops, b.hot_stripe_ops);
  EXPECT_EQ(a.htm_fallbacks, b.htm_fallbacks);
  EXPECT_GT(a.htm_fallbacks, 0u) << "storm never escalated to the lock";
  EXPECT_GT(a.hot_stripe_ops, 0u);
}

TEST(SimModels, ReadIntensiveMixFavoursDualSlot) {
  // Fig 8(c): 90% reads, skewed — RNTree+DS near-linear, others behind.
  SimConfig ds = base_config(TreeModel::kRNTreeDS, 16, 0.8);
  ds.update_pct = 10;
  SimConfig fp = base_config(TreeModel::kFPTree, 16, 0.8);
  fp.update_pct = 10;
  const SimResult r_ds = run_simulation(ds);
  const SimResult r_fp = run_simulation(fp);
  EXPECT_GT(r_ds.mops, r_fp.mops);
}

}  // namespace
}  // namespace rnt::sim
