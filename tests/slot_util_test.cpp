// Property tests for the slot-array helpers — the indirection at the heart
// of both RNTree and wB+tree.  Exercises randomized op sequences against a
// sorted-vector oracle across the full range of occupancies.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "core/slot_util.hpp"

namespace rnt::core {
namespace {

struct Entry {
  std::uint64_t key;
  std::uint64_t value;
};

class SlotProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SlotProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST_P(SlotProperty, RandomOpsMatchSortedOracle) {
  Xoshiro256 rng(GetParam());
  alignas(64) std::uint8_t slot[64] = {};
  Entry logs[64];
  std::vector<std::uint64_t> oracle;  // sorted keys

  // A log position not referenced by any live slot (mimics reclamation).
  auto free_log = [&]() -> int {
    bool used[64] = {};
    for (int i = 0; i < slot[0]; ++i) used[slot[1 + i]] = true;
    for (int i = 0; i < 64; ++i)
      if (!used[i]) return i;
    return -1;
  };

  for (int step = 0; step < 2000; ++step) {
    const std::uint64_t k = rng.next_below(200);
    const int pos = slot_lower_bound(slot, logs, k);
    const bool exists = slot_match(slot, logs, pos, k);
    // Oracle agreement on search results.
    const auto it = std::lower_bound(oracle.begin(), oracle.end(), k);
    ASSERT_EQ(pos, static_cast<int>(it - oracle.begin()));
    ASSERT_EQ(exists, it != oracle.end() && *it == k);

    if (rng.next_below(3) == 0 && exists) {
      slot_remove_at(slot, pos);
      oracle.erase(it);
    } else if (!exists && slot[0] < kSlotCap) {
      const int idx = free_log();
      ASSERT_GE(idx, 0);
      logs[idx] = {k, k * 7};
      slot_insert_at(slot, pos, static_cast<std::uint8_t>(idx));
      oracle.insert(it, k);
    } else if (exists) {
      // Update: re-point the slot at a fresh log entry, order unchanged.
      const int idx = free_log();
      ASSERT_GE(idx, 0);
      logs[idx] = {k, k * 11};
      slot[1 + pos] = static_cast<std::uint8_t>(idx);
    }

    // Invariants after every step.
    ASSERT_EQ(slot[0], oracle.size());
    for (std::size_t i = 0; i < oracle.size(); ++i)
      ASSERT_EQ(logs[slot[1 + i]].key, oracle[i]);
  }
}

TEST(SlotUtil, EmptySlotSearch) {
  alignas(64) std::uint8_t slot[64] = {};
  Entry logs[1];
  EXPECT_EQ(slot_lower_bound(slot, logs, std::uint64_t{5}), 0);
  EXPECT_FALSE(slot_match(slot, logs, 0, std::uint64_t{5}));
}

TEST(SlotUtil, FullSlotBoundarySearches) {
  alignas(64) std::uint8_t slot[64];
  Entry logs[64];
  slot[0] = kSlotCap;
  for (std::uint32_t i = 0; i < kSlotCap; ++i) {
    logs[i] = {i * 10 + 10, i};
    slot[1 + i] = static_cast<std::uint8_t>(i);
  }
  EXPECT_EQ(slot_lower_bound(slot, logs, std::uint64_t{0}), 0);
  EXPECT_EQ(slot_lower_bound(slot, logs, std::uint64_t{10}), 0);
  EXPECT_EQ(slot_lower_bound(slot, logs, std::uint64_t{11}), 1);
  EXPECT_EQ(slot_lower_bound(slot, logs, std::uint64_t{630}), 62);
  EXPECT_EQ(slot_lower_bound(slot, logs, std::uint64_t{631}), 63);
  EXPECT_TRUE(slot_match(slot, logs, 62, std::uint64_t{630}));
}

TEST(SlotUtil, InsertRemoveAtEveryPosition) {
  for (int target = 0; target < 16; ++target) {
    alignas(64) std::uint8_t slot[64];
    Entry logs[64];
    slot[0] = 16;
    for (int i = 0; i < 16; ++i) {
      logs[i] = {static_cast<std::uint64_t>(i * 2), 0};
      slot[1 + i] = static_cast<std::uint8_t>(i);
    }
    // Remove at `target`, reinsert the same key: identical array.
    const std::uint64_t k = static_cast<std::uint64_t>(target * 2);
    slot_remove_at(slot, target);
    EXPECT_EQ(slot[0], 15);
    const int pos = slot_lower_bound(slot, logs, k);
    EXPECT_EQ(pos, target);
    slot_insert_at(slot, pos, static_cast<std::uint8_t>(target));
    EXPECT_EQ(slot[0], 16);
    for (int i = 0; i < 16; ++i)
      EXPECT_EQ(logs[slot[1 + i]].key, static_cast<std::uint64_t>(i * 2));
  }
}

// ---------------------------------------------------------------------------
// Fingerprint kernels
// ---------------------------------------------------------------------------

// Reference implementation the SIMD/SWAR kernel must agree with bit-for-bit.
std::uint64_t naive_match_mask(const std::uint8_t* fps, int count,
                               std::uint8_t fp) {
  std::uint64_t m = 0;
  for (int i = 0; i < count; ++i)
    if (fps[i] == fp) m |= std::uint64_t{1} << i;
  return m;
}

TEST(SlotFp, MatchMaskAgreesWithNaiveAtEveryCount) {
  Xoshiro256 rng(1234);
  alignas(64) std::uint8_t fps[64];
  for (int round = 0; round < 50; ++round) {
    for (auto& b : fps) b = static_cast<std::uint8_t>(rng.next());
    // Make some needles common so both hit and miss paths are exercised.
    const std::uint8_t needle =
        (round & 1) ? fps[rng.next_below(64)] : static_cast<std::uint8_t>(rng.next());
    for (int count = 0; count <= 63; ++count)
      ASSERT_EQ(fp_match_mask(fps, count, needle),
                naive_match_mask(fps, count, needle))
          << "round " << round << " count " << count;
  }
}

TEST(SlotFp, MatchMaskNeverReadsBeyondCount) {
  alignas(64) std::uint8_t fps[64];
  std::fill(std::begin(fps), std::end(fps), 0xAB);
  // Bytes at positions >= count match the needle but must be masked out.
  EXPECT_EQ(fp_match_mask(fps, 0, 0xAB), 0u);
  EXPECT_EQ(fp_match_mask(fps, 5, 0xAB), 0x1Fu);
  EXPECT_EQ(fp_match_mask(fps, 63, 0xAB), (std::uint64_t{1} << 63) - 1);
}

TEST(SlotFp, FindVerifiesThroughIndirectionOnCollisions) {
  alignas(64) std::uint8_t slot[64];
  alignas(64) std::uint8_t fps[64] = {};
  Entry logs[64];
  // Two keys engineered to share a fingerprint byte: the probe must reject
  // the colliding position via the full key and land on the real one.
  std::uint64_t k1 = 100, k2 = 101;
  while (key_fp(k2) != key_fp(k1)) ++k2;
  ASSERT_EQ(key_fp(k1), key_fp(k2));
  ASSERT_NE(k1, k2);
  const std::uint64_t lo = std::min(k1, k2), hi = std::max(k1, k2);
  logs[0] = {lo, 111};
  logs[1] = {hi, 222};
  slot[0] = 2;
  slot[1] = 0;
  slot[2] = 1;
  slot_fp_rebuild(slot, fps, logs);
  EXPECT_EQ(slot_fp_find(slot, fps, logs, lo), 0);
  EXPECT_EQ(slot_fp_find(slot, fps, logs, hi), 1);
  EXPECT_EQ(slot_fp_find(slot, fps, logs, lo + hi), -1);
}

TEST(SlotFp, ParallelInsertRemoveKeepsLinesInLockstep) {
  Xoshiro256 rng(99);
  alignas(64) std::uint8_t slot[64];
  alignas(64) std::uint8_t fps[64];
  Entry logs[64];
  slot[0] = 0;
  std::memset(fps, 0, sizeof(fps));
  std::vector<std::uint64_t> keys;
  int next_log = 0;
  for (int op = 0; op < 300; ++op) {
    if (next_log < 63 && (keys.size() < 4 || rng.next_below(2) == 0)) {
      std::uint64_t k;
      do {
        k = rng.next_below(100'000);
      } while (std::count(keys.begin(), keys.end(), k) != 0);
      logs[next_log] = {k, k * 3};
      const int pos = slot_lower_bound(slot, logs, k);
      slot_fp_insert_at(slot, fps, pos, static_cast<std::uint8_t>(next_log),
                        key_fp(k));
      ++next_log;
      keys.push_back(k);
    } else if (!keys.empty()) {
      const std::size_t vi = rng.next_below(keys.size());
      const int pos = slot_fp_find(slot, fps, logs, keys[vi]);
      ASSERT_GE(pos, 0);
      slot_fp_remove_at(slot, fps, pos);
      keys.erase(keys.begin() + static_cast<std::ptrdiff_t>(vi));
    }
    // Every live position's fingerprint mirrors its slot's key; every live
    // key is findable; a dead key is not.
    ASSERT_EQ(slot[0], keys.size());
    for (int i = 0; i < slot[0]; ++i)
      ASSERT_EQ(fps[i], key_fp(logs[slot[1 + i]].key));
    for (std::uint64_t k : keys) ASSERT_GE(slot_fp_find(slot, fps, logs, k), 0);
    ASSERT_EQ(slot_fp_find(slot, fps, logs, std::uint64_t{1'000'000}), -1);
    if (next_log == 63 && keys.empty()) break;
  }
}

TEST(SlotFp, RebuildZeroesTailPositions) {
  alignas(64) std::uint8_t slot[64];
  alignas(64) std::uint8_t fps[64];
  std::fill(std::begin(fps), std::end(fps), 0xFF);
  Entry logs[64];
  logs[0] = {42, 0};
  logs[1] = {10, 0};
  slot[0] = 2;
  slot[1] = 1;  // sorted order 10, 42 through the indirection
  slot[2] = 0;
  slot_fp_rebuild(slot, fps, logs);
  EXPECT_EQ(fps[0], key_fp(std::uint64_t{10}));
  EXPECT_EQ(fps[1], key_fp(std::uint64_t{42}));
  for (int i = 2; i < 64; ++i) EXPECT_EQ(fps[i], 0) << i;
}

}  // namespace
}  // namespace rnt::core
