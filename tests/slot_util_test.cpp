// Property tests for the slot-array helpers — the indirection at the heart
// of both RNTree and wB+tree.  Exercises randomized op sequences against a
// sorted-vector oracle across the full range of occupancies.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "core/slot_util.hpp"

namespace rnt::core {
namespace {

struct Entry {
  std::uint64_t key;
  std::uint64_t value;
};

class SlotProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SlotProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST_P(SlotProperty, RandomOpsMatchSortedOracle) {
  Xoshiro256 rng(GetParam());
  alignas(64) std::uint8_t slot[64] = {};
  Entry logs[64];
  std::vector<std::uint64_t> oracle;  // sorted keys

  // A log position not referenced by any live slot (mimics reclamation).
  auto free_log = [&]() -> int {
    bool used[64] = {};
    for (int i = 0; i < slot[0]; ++i) used[slot[1 + i]] = true;
    for (int i = 0; i < 64; ++i)
      if (!used[i]) return i;
    return -1;
  };

  for (int step = 0; step < 2000; ++step) {
    const std::uint64_t k = rng.next_below(200);
    const int pos = slot_lower_bound(slot, logs, k);
    const bool exists = slot_match(slot, logs, pos, k);
    // Oracle agreement on search results.
    const auto it = std::lower_bound(oracle.begin(), oracle.end(), k);
    ASSERT_EQ(pos, static_cast<int>(it - oracle.begin()));
    ASSERT_EQ(exists, it != oracle.end() && *it == k);

    if (rng.next_below(3) == 0 && exists) {
      slot_remove_at(slot, pos);
      oracle.erase(it);
    } else if (!exists && slot[0] < kSlotCap) {
      const int idx = free_log();
      ASSERT_GE(idx, 0);
      logs[idx] = {k, k * 7};
      slot_insert_at(slot, pos, static_cast<std::uint8_t>(idx));
      oracle.insert(it, k);
    } else if (exists) {
      // Update: re-point the slot at a fresh log entry, order unchanged.
      const int idx = free_log();
      ASSERT_GE(idx, 0);
      logs[idx] = {k, k * 11};
      slot[1 + pos] = static_cast<std::uint8_t>(idx);
    }

    // Invariants after every step.
    ASSERT_EQ(slot[0], oracle.size());
    for (std::size_t i = 0; i < oracle.size(); ++i)
      ASSERT_EQ(logs[slot[1 + i]].key, oracle[i]);
  }
}

TEST(SlotUtil, EmptySlotSearch) {
  alignas(64) std::uint8_t slot[64] = {};
  Entry logs[1];
  EXPECT_EQ(slot_lower_bound(slot, logs, std::uint64_t{5}), 0);
  EXPECT_FALSE(slot_match(slot, logs, 0, std::uint64_t{5}));
}

TEST(SlotUtil, FullSlotBoundarySearches) {
  alignas(64) std::uint8_t slot[64];
  Entry logs[64];
  slot[0] = kSlotCap;
  for (std::uint32_t i = 0; i < kSlotCap; ++i) {
    logs[i] = {i * 10 + 10, i};
    slot[1 + i] = static_cast<std::uint8_t>(i);
  }
  EXPECT_EQ(slot_lower_bound(slot, logs, std::uint64_t{0}), 0);
  EXPECT_EQ(slot_lower_bound(slot, logs, std::uint64_t{10}), 0);
  EXPECT_EQ(slot_lower_bound(slot, logs, std::uint64_t{11}), 1);
  EXPECT_EQ(slot_lower_bound(slot, logs, std::uint64_t{630}), 62);
  EXPECT_EQ(slot_lower_bound(slot, logs, std::uint64_t{631}), 63);
  EXPECT_TRUE(slot_match(slot, logs, 62, std::uint64_t{630}));
}

TEST(SlotUtil, InsertRemoveAtEveryPosition) {
  for (int target = 0; target < 16; ++target) {
    alignas(64) std::uint8_t slot[64];
    Entry logs[64];
    slot[0] = 16;
    for (int i = 0; i < 16; ++i) {
      logs[i] = {static_cast<std::uint64_t>(i * 2), 0};
      slot[1 + i] = static_cast<std::uint8_t>(i);
    }
    // Remove at `target`, reinsert the same key: identical array.
    const std::uint64_t k = static_cast<std::uint64_t>(target * 2);
    slot_remove_at(slot, target);
    EXPECT_EQ(slot[0], 15);
    const int pos = slot_lower_bound(slot, logs, k);
    EXPECT_EQ(pos, target);
    slot_insert_at(slot, pos, static_cast<std::uint8_t>(target));
    EXPECT_EQ(slot[0], 16);
    for (int i = 0; i < 16; ++i)
      EXPECT_EQ(logs[slot[1 + i]].key, static_cast<std::uint64_t>(i * 2));
  }
}

}  // namespace
}  // namespace rnt::core
