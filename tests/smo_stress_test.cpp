// SMO stress net for the COW install path.
//
// Three angles:
//  1. Concurrent split storms on the bare InnerTree (pre-partitioned
//     regions, one writer per region, readers racing the installs) — the
//     final structure must route every key exactly like the per-region
//     sequential oracle.
//  2. Full-tree concurrent inserts through RNTree, driving real leaf
//     splits -> COW installs under contention.
//  3. The PR's headline measurement: on an insert-only workload with a
//     seeded abort injector targeted at SMO install transactions, COW
//     installs must cut htm.aborts_capacity by >3x vs the serialized
//     whole-path rebuild (footprint 1 cache line vs height * node lines).
//     EXPERIMENTS.md quotes this test's printed numbers; repro with
//       ./build/tests/smo_stress_test --gtest_filter=*CapacityAborts*
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string_view>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/rntree.hpp"
#include "epoch/ebr.hpp"
#include "htm/abort_inject.hpp"
#include "htm/smo.hpp"
#include "inner/inner_tree.hpp"
#include "nvm/pool.hpp"
#include "obs/metrics.hpp"

namespace rnt {
namespace {

using Tree = core::RNTree<std::uint64_t, std::uint64_t>;

struct FakeLeaf {
  std::uint64_t low;
};
using ITree = inner::InnerTree<std::uint64_t, FakeLeaf>;

std::uint64_t counter_now(std::string_view name) {
  return obs::snapshot().counter(name);
}

// --- 1. bare InnerTree: concurrent region splits ---------------------------

TEST(SmoStress, ConcurrentRegionSplitsMatchOracle) {
  constexpr int kWriters = 4;
  constexpr std::uint64_t kSplitsPer = 1000;
  constexpr std::uint64_t kStep = 16;
  constexpr std::uint64_t kRegion = 1u << 20;

  const std::uint64_t installs0 = counter_now("htm.smo.installs");

  epoch::EpochManager epochs;
  ITree t(epochs);
  std::vector<std::unique_ptr<FakeLeaf>> seed_leaves;
  std::array<FakeLeaf*, kWriters> region_head{};

  seed_leaves.push_back(std::make_unique<FakeLeaf>(FakeLeaf{0}));
  t.init_single(seed_leaves[0].get());
  region_head[0] = seed_leaves[0].get();
  {
    epoch::Guard g = epochs.pin();
    for (int w = 1; w < kWriters; ++w) {
      seed_leaves.push_back(
          std::make_unique<FakeLeaf>(FakeLeaf{w * kRegion}));
      t.insert_split(w * kRegion, region_head[w - 1], seed_leaves.back().get());
      region_head[w] = seed_leaves.back().get();
    }
  }

  // One writer per region: always splits its own rightmost leaf, so the
  // covering-leaf bookkeeping needs no cross-thread coordination and every
  // interleaving of the installs themselves is exercised.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reader_bad{0};
  std::vector<std::vector<std::unique_ptr<FakeLeaf>>> owned(kWriters);
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      FakeLeaf* rightmost = region_head[w];
      const std::uint64_t base = w * kRegion;
      for (std::uint64_t s = 1; s <= kSplitsPer; ++s) {
        owned[w].push_back(
            std::make_unique<FakeLeaf>(FakeLeaf{base + s * kStep}));
        epoch::Guard g = epochs.pin();
        t.insert_split(base + s * kStep, rightmost, owned[w].back().get());
        rightmost = owned[w].back().get();
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256 rng(static_cast<std::uint64_t>(r) + 41);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t k = rng.next_below(kWriters * kRegion);
        epoch::Guard g = epochs.pin();
        FakeLeaf* leaf = t.find_leaf(k);
        if (leaf == nullptr || leaf->low > k) reader_bad.fetch_add(1);
      }
    });
  }
  for (auto& th : writers) th.join();
  stop = true;
  for (auto& th : readers) th.join();
  EXPECT_EQ(reader_bad.load(), 0u);

  // Oracle: inside region w, keys below the split frontier route in kStep
  // strides; keys beyond it land on the region's rightmost leaf.
  epoch::Guard g = epochs.pin();
  Xoshiro256 rng(17);
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t k = rng.next_below(kWriters * kRegion);
    const std::uint64_t w = k / kRegion;
    const std::uint64_t off = k - w * kRegion;
    const std::uint64_t expect =
        w * kRegion + std::min(off / kStep * kStep, kSplitsPer * kStep);
    ASSERT_EQ(t.find_leaf(k)->low, expect) << "key " << k;
  }
  EXPECT_GT(counter_now("htm.smo.installs") - installs0, 0u);
}

// --- 2. full tree: concurrent inserts drive COW installs --------------------

TEST(SmoStress, ConcurrentRnTreeInsertsSurviveCowSmos) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;

  const std::uint64_t installs0 = counter_now("htm.smo.installs");

  nvm::PmemPool pool(std::size_t{256} << 20);
  Tree tree(pool);
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> failed{0};
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      const std::uint64_t base = static_cast<std::uint64_t>(tid) << 32;
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        if (!tree.insert(base + i, base + i)) failed.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_EQ(failed.load(), 0u);

  for (int tid = 0; tid < kThreads; ++tid) {
    const std::uint64_t base = static_cast<std::uint64_t>(tid) << 32;
    for (std::uint64_t i = 0; i < kPerThread; i += 97) {
      auto v = tree.find(base + i);
      ASSERT_TRUE(v.has_value()) << "tid " << tid << " i " << i;
      EXPECT_EQ(*v, base + i);
    }
  }
  // Sequential runs per thread split constantly: the COW path must have
  // installed (sequential inserts split leaves every few keys).
  EXPECT_GT(counter_now("htm.smo.installs") - installs0, 100u);
}

// --- 3. the measurement: capacity aborts, COW on vs off ---------------------

struct SmoAbortStats {
  std::uint64_t capacity = 0;
  std::uint64_t installs = 0;
  std::uint64_t legacy = 0;
};

SmoAbortStats run_insert_only(bool cow_smo) {
  // Seeded injector targeted at SMO install transactions only: leaf-path
  // transactions never see it, so the delta below is pure SMO footprint.
  htm::RandomAbortInjector rnd(0xC0FFEE, /*permille=*/500);
  htm::SmoTargetedInjector smo_only(rnd);
  htm::ScopedAbortInjector scope(&smo_only);

  nvm::PmemPool pool(std::size_t{128} << 20);
  Tree tree(pool, {.dual_slot = true, .root_slot = 0, .cow_smo = cow_smo});

  const obs::Snapshot before = obs::snapshot();
  for (std::uint64_t i = 0; i < 40000; ++i) {
    if (!tree.insert(i, i)) ADD_FAILURE() << "insert " << i;
  }
  const obs::Snapshot after = obs::snapshot();

  SmoAbortStats s;
  s.capacity =
      after.counter("htm.aborts_capacity") - before.counter("htm.aborts_capacity");
  s.installs =
      after.counter("htm.smo.installs") - before.counter("htm.smo.installs");
  s.legacy = after.counter("htm.smo.legacy_path") -
             before.counter("htm.smo.legacy_path");
  return s;
}

TEST(SmoStress, CapacityAbortsDropWithCowInstall) {
  const SmoAbortStats legacy = run_insert_only(/*cow_smo=*/false);
  const SmoAbortStats cow = run_insert_only(/*cow_smo=*/true);

  std::printf("[ smo-capacity ] legacy: capacity=%llu installs=%llu "
              "legacy_path=%llu\n",
              static_cast<unsigned long long>(legacy.capacity),
              static_cast<unsigned long long>(legacy.installs),
              static_cast<unsigned long long>(legacy.legacy));
  std::printf("[ smo-capacity ] cow:    capacity=%llu installs=%llu "
              "legacy_path=%llu\n",
              static_cast<unsigned long long>(cow.capacity),
              static_cast<unsigned long long>(cow.installs),
              static_cast<unsigned long long>(cow.legacy));

  // The serialized rebuild declares height*kNodeLines of write set; COW
  // installs declare one line.  Same workload, same injection seed.  The
  // measured cut is ~3x (see EXPERIMENTS.md); gate at 2x so node-layout
  // tweaks that shift the footprint ratio don't flake the suite.
  ASSERT_GT(legacy.capacity, 0u);
  EXPECT_LT(cow.capacity * 2, legacy.capacity)
      << "COW installs should cut capacity aborts by >2x";
  EXPECT_EQ(legacy.installs, 0u);
  EXPECT_GT(cow.installs, 0u);
}

// --- counter export ---------------------------------------------------------

TEST(SmoStress, SmoCountersAreRegistered) {
  // Force registration, then confirm the exporter sees every htm.smo.* name
  // (bench_smoke --require-smo depends on these exact strings).
  (void)htm::smo_counters();
  const obs::Snapshot snap = obs::snapshot();
  for (const char* name :
       {"htm.smo.installs", "htm.smo.root_installs",
        "htm.smo.validation_failures", "htm.smo.overflow_fallbacks",
        "htm.smo.retry_fallbacks", "htm.smo.legacy_path"}) {
    bool found = false;
    for (const auto& [n, v] : snap.counters)
      if (n == name) { found = true; break; }
    EXPECT_TRUE(found) << name;
  }
}

}  // namespace
}  // namespace rnt
