// Striped fallback-lock table (htm/stripe_table.hpp): validation, SMO-stripe
// aliasing, ordered multi-stripe acquisition, stripe attribution, the
// storm-aware retry policy, the storm-targeting injector, and the RNTree
// Options surface that selects the stripe count.
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/rntree.hpp"
#include "htm/rtm.hpp"
#include "htm/stripe_table.hpp"
#include "nvm/pool.hpp"
#include "obs/heatmap.hpp"

namespace rnt {
namespace {

using htm::MultiStripeGuard;
using htm::StripeTable;

TEST(StripeTableTest, ValidatesStripeCount) {
  EXPECT_TRUE(htm::stripe_valid_count(1));
  EXPECT_TRUE(htm::stripe_valid_count(2));
  EXPECT_TRUE(htm::stripe_valid_count(64));
  EXPECT_TRUE(htm::stripe_valid_count(4096));
  EXPECT_FALSE(htm::stripe_valid_count(0));
  EXPECT_FALSE(htm::stripe_valid_count(3));
  EXPECT_FALSE(htm::stripe_valid_count(100));
  EXPECT_FALSE(htm::stripe_valid_count(8192));
  EXPECT_THROW(StripeTable(0), std::invalid_argument);
  EXPECT_THROW(StripeTable(3), std::invalid_argument);
  EXPECT_THROW(StripeTable(8192), std::invalid_argument);
}

TEST(StripeTableTest, SmoStripeAliasesGlobalAtOne) {
  StripeTable global(1);
  EXPECT_EQ(global.count(), 1u);
  EXPECT_EQ(global.smo_index(), 0u);
  EXPECT_EQ(global.lock_count(), 1u);
  EXPECT_EQ(&global.smo_stripe(), &global.lock(0));

  StripeTable striped(64);
  EXPECT_EQ(striped.count(), 64u);
  EXPECT_EQ(striped.smo_index(), 64u);
  EXPECT_EQ(striped.lock_count(), 65u);
  EXPECT_NE(&striped.smo_stripe(), &striped.lock(0));
}

TEST(StripeTableTest, IndexOfIsCachelineGranularAndInRange) {
  StripeTable t(64);
  alignas(64) char block[64 * 128];
  std::vector<bool> hit(64, false);
  for (int i = 0; i < 128; ++i) {
    const unsigned idx = t.index_of(block + 64 * i);
    ASSERT_LT(idx, 64u);
    hit[idx] = true;
    // Everything inside one cache line maps to the same stripe.
    EXPECT_EQ(t.index_of(block + 64 * i + 32), idx);
    EXPECT_EQ(t.index_of(block + 64 * i + 63), idx);
  }
  int distinct = 0;
  for (bool h : hit) distinct += h;
  EXPECT_GT(distinct, 8) << "hash degenerated onto a handful of stripes";
}

TEST(StripeTableTest, MultiStripeGuardSortsAndDedups) {
  StripeTable t(64);
  {
    MultiStripeGuard g(t, {5, 2, 5});
    EXPECT_EQ(g.held(), 2);
    EXPECT_TRUE(t.lock(2).is_locked());
    EXPECT_TRUE(t.lock(5).is_locked());
    g.release();
    EXPECT_EQ(g.held(), 0);
    EXPECT_FALSE(t.lock(2).is_locked());
    EXPECT_FALSE(t.lock(5).is_locked());
    g.release();  // idempotent; destructor is a further no-op
  }
  // At stripes == 1 a leaf stripe and the SMO stripe are the same lock; the
  // guard must collapse them instead of self-deadlocking.
  StripeTable global(1);
  MultiStripeGuard g(global, {0, global.smo_index()});
  EXPECT_EQ(g.held(), 1);
}

TEST(StripeTableTest, MultiStripeGuardOrderIsDeadlockFree) {
  StripeTable t(8);
  std::atomic<bool> stop{false};
  std::atomic<int> acquired{0};
  std::thread a([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      MultiStripeGuard g(t, {1, 6});
      acquired.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread b([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      MultiStripeGuard g(t, {6, 1});  // reversed request order
      acquired.fetch_add(1, std::memory_order_relaxed);
    }
  });
  while (acquired.load(std::memory_order_relaxed) < 2000)
    std::this_thread::yield();
  stop.store(true, std::memory_order_relaxed);
  a.join();
  b.join();
  EXPECT_FALSE(t.lock(1).is_locked());
  EXPECT_FALSE(t.lock(6).is_locked());
}

TEST(StripeTableTest, StripeScopePublishesAndRestoresTls) {
  StripeTable t(8);
  EXPECT_EQ(htm::current_stripe(), -1);
  {
    htm::StripeScope outer(t, 3);
    EXPECT_EQ(htm::current_stripe(), 3);
    {
      htm::StripeScope inner(t, 5);
      EXPECT_EQ(htm::current_stripe(), 5);
    }
    EXPECT_EQ(htm::current_stripe(), 3);
  }
  EXPECT_EQ(htm::current_stripe(), -1);
}

struct AlwaysCapacity final : htm::AbortInjector {
  int fired = 0;
  std::optional<htm::AbortCause> on_attempt(int) override {
    ++fired;
    return htm::AbortCause::kCapacity;
  }
};

// An always-capacity injector forces every elision attempt onto the
// fallback lock, so the attribution assertions hold on RTM hosts (where a
// clean transaction would never touch the lock) and on the software tier
// (which takes the lock regardless) alike.
TEST(StripeTableTest, AtomicExecStripedAttributesToTheStripe) {
  StripeTable t(8);
  AlwaysCapacity cap;
  htm::ScopedAbortInjector scoped(&cap);
  const auto before = t.stat(3);
  int ran = 0;
  htm::atomic_exec_striped(t, 3, [&] {
    ++ran;
    EXPECT_EQ(htm::current_stripe(), 3);
  });
  EXPECT_EQ(ran, 1);
  const auto after = t.stat(3);
  EXPECT_GT(after.acquisitions, before.acquisitions);
  EXPECT_GT(after.fallbacks, before.fallbacks);
  EXPECT_EQ(t.stat(4).acquisitions, 0u) << "attribution leaked to stripe 4";
}

TEST(StripeTableTest, StormStreakTightensRetryPolicy) {
  StripeTable t(8);
  AlwaysCapacity cap;
  htm::ScopedAbortInjector scoped(&cap);
  EXPECT_FALSE(t.storm_bypassed(2));
  for (std::uint32_t i = 0; i < htm::kStormStreakThreshold; ++i)
    htm::atomic_exec_striped(t, 2, [] {});
  EXPECT_TRUE(t.storm_bypassed(2));
  EXPECT_FALSE(t.storm_bypassed(3));
  const std::uint64_t tight0 =
      htm::stripe_counters().policy_tightenings.value();
  htm::atomic_exec_striped(t, 2, [] {});
  EXPECT_GT(htm::stripe_counters().policy_tightenings.value(), tight0);
}

TEST(StripeTableTest, StormInjectorFiresOnlyOnTheHotStripe) {
  StripeTable t(8);
  AlwaysCapacity inner;
  htm::StripeStormInjector storm(inner, /*hot_stripe=*/5);
  EXPECT_FALSE(storm.on_attempt(0).has_value()) << "fired outside any scope";
  {
    htm::StripeScope cold(t, 4);
    EXPECT_FALSE(storm.on_attempt(0).has_value());
  }
  {
    htm::StripeScope hot(t, 5);
    const auto cause = storm.on_attempt(0);
    ASSERT_TRUE(cause.has_value());
    EXPECT_EQ(*cause, htm::AbortCause::kCapacity);
  }
  EXPECT_EQ(inner.fired, 1);
}

TEST(StripeTableTest, BoundedLockWaitRecordsLockWaitHeat) {
  ASSERT_TRUE(obs::heatmap_configure(
      {.buckets = 64, .by_leaf = false, .key_space = 0,
       .decay_half_life_s = 0.0}));
  obs::set_heatmap_enabled(true);
  {
    obs::HeatScope scope(123);
    htm::SpinLock lk;
    lk.lock();
    htm::RetryPolicy p;
    p.lock_wait_pauses = 2;
    htm::HtmStats st;
    EXPECT_FALSE(htm::detail::bounded_lock_wait(lk, p, st));
    EXPECT_EQ(st.lock_wait_timeouts, 1u);
    lk.unlock();
  }
  const obs::HeatmapSnapshot snap = obs::heatmap_snapshot();
  obs::set_heatmap_enabled(false);
  obs::heatmap_reset();
  EXPECT_GE(snap.totals[static_cast<int>(obs::HeatCause::kLockWait)], 1u);
  EXPECT_GE(snap.totals[static_cast<int>(obs::HeatCause::kLockWaitTimeout)],
            1u);
}

TEST(StripeTableTest, TreeExposesAndValidatesStripeOptions) {
  nvm::PmemPool pool(64 << 20);
  using Tree = core::RNTree<std::uint64_t, std::uint64_t>;
  Tree::Options opt;
  opt.fallback_stripes = 1;
  {
    Tree tree(pool, opt);
    EXPECT_EQ(tree.fallback_stripes(), 1u);
  }
  nvm::PmemPool pool2(64 << 20);
  {
    Tree tree(pool2, Tree::Options{});
    EXPECT_EQ(tree.fallback_stripes(), htm::kDefaultFallbackStripes);
    EXPECT_LT(tree.stripe_of_key(42), tree.fallback_stripes());
  }
  nvm::PmemPool pool3(64 << 20);
  Tree::Options bad;
  bad.fallback_stripes = 3;
  EXPECT_THROW(Tree tree(pool3, bad), std::invalid_argument);
}

// Split-heavy traffic at tiny stripe counts exercises the ordered
// multi-stripe split path (old leaf + new leaf often land on DIFFERENT
// stripes at 2, and alias the SMO stripe at 1) — the tree must stay
// structurally sound either way.
TEST(StripeTableTest, SplitsStayCorrectAcrossStripeBoundaries) {
  using Tree = core::RNTree<std::uint64_t, std::uint64_t>;
  for (unsigned stripes : {1u, 2u}) {
    nvm::PmemPool pool(64 << 20);
    Tree::Options opt;
    opt.fallback_stripes = stripes;
    Tree tree(pool, opt);
    constexpr std::uint64_t kN = 4000;
    for (std::uint64_t i = 0; i < kN; ++i)
      ASSERT_TRUE(tree.insert(mix64(i), i).ok()) << "stripes=" << stripes;
    tree.check_invariants();
    for (std::uint64_t i = 0; i < kN; ++i) {
      auto v = tree.find(mix64(i));
      ASSERT_TRUE(v.has_value()) << "stripes=" << stripes << " i=" << i;
      EXPECT_EQ(*v, i);
    }
  }
}

}  // namespace
}  // namespace rnt
