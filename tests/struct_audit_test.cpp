// Structural auditor tests: percentile math, a known-shape tree census,
// consistency of the report against the tree's own accessors, and the pool
// fragmentation map's byte accounting.
#include "obs/struct_audit.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/rntree.hpp"
#include "nvm/pool.hpp"

namespace rnt::obs {
namespace {

using Tree = core::RNTree<std::uint64_t, std::uint64_t>;

TEST(FillPercentiles, NearestRank) {
  std::vector<double> fills = {0.1, 0.9, 0.5, 0.3, 0.7};
  double avg = 0, p50 = 0, p99 = 0;
  detail::fill_percentiles(fills, avg, p50, p99);
  EXPECT_DOUBLE_EQ(avg, 0.5);
  EXPECT_DOUBLE_EQ(p50, 0.5);
  EXPECT_DOUBLE_EQ(p99, 0.9);

  std::vector<double> empty;
  avg = p50 = p99 = -1;
  detail::fill_percentiles(empty, avg, p50, p99);
  EXPECT_DOUBLE_EQ(avg, 0.0);
  EXPECT_DOUBLE_EQ(p50, 0.0);
  EXPECT_DOUBLE_EQ(p99, 0.0);
}

TEST(StructAudit, SingleLeafTree) {
  nvm::PmemPool pool(64u << 20);
  Tree tree(pool);
  for (std::uint64_t i = 0; i < 10; ++i)
    ASSERT_TRUE(tree.upsert(mix64(i), i).ok());

  const StructureReport rep = audit_tree(tree);
  EXPECT_EQ(rep.height, tree.height());
  EXPECT_EQ(rep.inner_fanout, Tree::inner_fanout());
  EXPECT_EQ(rep.slot_capacity, Tree::slot_capacity());
  EXPECT_EQ(rep.log_capacity, Tree::log_capacity());
  EXPECT_EQ(rep.leaf.leaves, 1u);
  EXPECT_EQ(rep.leaf.live_entries, 10u);
  EXPECT_GT(rep.leaf.fill_avg, 0.0);
  EXPECT_LE(rep.leaf.fill_avg, 1.0);
  EXPECT_DOUBLE_EQ(rep.leaf.chain_occupancy,
                   10.0 / Tree::slot_capacity());
  EXPECT_FALSE(rep.has_frag);
}

TEST(StructAudit, GrownTreeMatchesTreeAccessors) {
  nvm::PmemPool pool(128u << 20);
  Tree tree(pool);
  constexpr std::uint64_t kKeys = 20'000;
  for (std::uint64_t i = 0; i < kKeys; ++i)
    ASSERT_TRUE(tree.upsert(mix64(i), i).ok());

  const StructureReport rep = audit_tree(tree, pool);
  EXPECT_EQ(rep.height, tree.height());
  EXPECT_GE(rep.height, 1);
  EXPECT_EQ(rep.leaf.leaves, tree.leaf_count());
  EXPECT_EQ(rep.leaf.live_entries, kKeys);
  ASSERT_FALSE(rep.levels.empty());
  // Root first (highest level), exactly one root node, monotone widening.
  EXPECT_EQ(rep.levels.front().nodes, 1u);
  for (std::size_t i = 1; i < rep.levels.size(); ++i) {
    EXPECT_LT(rep.levels[i].level, rep.levels[i - 1].level);
    EXPECT_GE(rep.levels[i].nodes, rep.levels[i - 1].nodes);
  }
  for (const LevelStats& lv : rep.levels) {
    EXPECT_GT(lv.fill_avg, 0.0);
    EXPECT_LE(lv.fill_p99, 1.0);
    EXPECT_LE(lv.fill_p50, lv.fill_p99);
  }
  EXPECT_GT(rep.leaf.chain_occupancy, 0.0);
  EXPECT_LE(rep.leaf.chain_occupancy, 1.0);
  EXPECT_GE(rep.leaf.log_occupancy, 0.0);

  // Fragmentation accounting: the carved region splits into live + free,
  // and the tail is everything the bump frontier has not reached.
  ASSERT_TRUE(rep.has_frag);
  const nvm::PoolFragmentation& fr = rep.frag;
  EXPECT_EQ(fr.allocated_bytes, fr.bump - fr.data_begin);
  EXPECT_EQ(fr.tail_bytes, fr.pool_size - fr.bump);
  EXPECT_LE(fr.free_bytes, fr.allocated_bytes);
  EXPECT_LE(fr.largest_free_run, fr.free_bytes);
  std::uint64_t live = 0, free_sum = 0;
  for (const auto& c : fr.chunks) {
    live += c.live_bytes;
    free_sum += c.free_bytes;
    EXPECT_LE(c.largest_free_run, c.free_bytes);
  }
  EXPECT_EQ(live + free_sum, fr.allocated_bytes);
}

TEST(StructAudit, AuditIsSafeDuringConcurrentWrites) {
  nvm::PmemPool pool(128u << 20);
  Tree tree(pool);
  for (std::uint64_t i = 0; i < 5'000; ++i)
    ASSERT_TRUE(tree.upsert(mix64(i), i).ok());
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    std::uint64_t j = 5'000;
    while (!stop.load(std::memory_order_relaxed)) {
      (void)tree.upsert(mix64(j), j);
      ++j;
    }
  });
  for (int i = 0; i < 20; ++i) {
    const StructureReport rep = audit_tree(tree);
    EXPECT_GE(rep.leaf.leaves, 1u);
    EXPECT_GE(rep.leaf.live_entries, 5'000u);
  }
  stop.store(true);
  writer.join();
}

TEST(StructAudit, JsonSectionRoundTrip) {
  nvm::PmemPool pool(64u << 20);
  Tree tree(pool);
  for (std::uint64_t i = 0; i < 1'000; ++i)
    ASSERT_TRUE(tree.upsert(mix64(i), i).ok());
  StructureReport rep = audit_tree(tree, pool);
  rep.tree = "RNTree";
  const std::string json = structure_json(rep);
  EXPECT_NE(json.find("\"tree\": \"RNTree\""), std::string::npos);
  EXPECT_NE(json.find("\"height\": "), std::string::npos);
  EXPECT_NE(json.find("\"levels\": ["), std::string::npos);
  EXPECT_NE(json.find("\"leaves\": {"), std::string::npos);
  EXPECT_NE(json.find("\"fragmentation\": {"), std::string::npos);

  set_structure_section(json);
  EXPECT_EQ(structure_section(), json);
  set_structure_section("");
  EXPECT_TRUE(structure_section().empty());
}

}  // namespace
}  // namespace rnt::obs
