// Tests for the YCSB workload substrate: Zipfian correctness (distribution
// shape, determinism), scrambling, and operation mixes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <vector>

#include "workload/ycsb.hpp"
#include "workload/zipfian.hpp"

namespace rnt::workload {
namespace {

TEST(Uniform, CoversRangeUniformly) {
  UniformGenerator gen(1000, 42);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 200000; ++i) ++counts[gen.next()];
  const auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_GT(*mn, 100);
  EXPECT_LT(*mx, 320);
}

TEST(Zipfian, RanksWithinBounds) {
  ZipfianGenerator gen(10000, 0.8, 1);
  for (int i = 0; i < 100000; ++i) EXPECT_LT(gen.next(), 10000u);
}

TEST(Zipfian, Deterministic) {
  ZipfianGenerator a(5000, 0.9, 77), b(5000, 0.9, 77);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Zipfian, HotKeysFollowZipfShape) {
  // For theta=0.99 over n=10000, YCSB's zipfian gives rank 0 probability
  // 1/zeta(n, theta); check the empirical top-1 frequency against theory
  // and check monotone decay over the first few ranks.
  constexpr std::uint64_t kN = 10000;
  constexpr double kTheta = 0.99;
  ZipfianGenerator gen(kN, kTheta, 3);
  std::map<std::uint64_t, int> counts;
  constexpr int kSamples = 400000;
  for (int i = 0; i < kSamples; ++i) ++counts[gen.next()];

  double zetan = 0;
  for (std::uint64_t i = 1; i <= kN; ++i)
    zetan += 1.0 / std::pow(static_cast<double>(i), kTheta);
  const double expected_p0 = 1.0 / zetan;
  const double observed_p0 = static_cast<double>(counts[0]) / kSamples;
  EXPECT_NEAR(observed_p0, expected_p0, expected_p0 * 0.15);

  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[3]);
  EXPECT_GT(counts[3], counts[10]);
}

TEST(Zipfian, SingleItemAlwaysRankZero) {
  ZipfianGenerator gen(1, ZipfianGenerator::kDefaultTheta, 7);
  for (int i = 0; i < 10000; ++i) ASSERT_EQ(gen.next(), 0u);
}

TEST(Zipfian, TwoItemsStayInRangeAndSkewToRankZero) {
  // items == 2 used to compute eta as 0/0 (zeta(2) == zeta(n)), poisoning
  // the tail formula with NaN; ranks 0/1 happen to short-circuit before it,
  // but the constructor now pins eta and this stays a hard guarantee.
  ZipfianGenerator gen(2, ZipfianGenerator::kDefaultTheta, 7);
  int counts[2] = {0, 0};
  for (int i = 0; i < 100000; ++i) {
    const std::uint64_t r = gen.next();
    ASSERT_LT(r, 2u);
    ++counts[r];
  }
  EXPECT_GT(counts[0], counts[1]);  // rank 0 is the hottest
  EXPECT_GT(counts[1], 0);          // ...but rank 1 does occur
}

TEST(Zipfian, InvalidParametersThrow) {
  EXPECT_THROW(ZipfianGenerator(0, 0.5, 1), std::invalid_argument);
  EXPECT_THROW(ZipfianGenerator(10, 1.0, 1), std::invalid_argument);   // alpha diverges
  EXPECT_THROW(ZipfianGenerator(10, 1.5, 1), std::invalid_argument);
  EXPECT_THROW(ZipfianGenerator(10, -0.1, 1), std::invalid_argument);
  EXPECT_THROW(ZipfianGenerator(10, std::nan(""), 1), std::invalid_argument);
}

TEST(ScrambledZipfian, TinyDomainsStayInRange) {
  for (const std::uint64_t items : {1ull, 2ull, 3ull}) {
    ScrambledZipfianGenerator gen(items, ZipfianGenerator::kDefaultTheta, 11);
    for (int i = 0; i < 20000; ++i) ASSERT_LT(gen.next(), items);
  }
}

TEST(Zipfian, HigherThetaIsMoreSkewed) {
  auto top1_share = [](double theta) {
    ZipfianGenerator gen(10000, theta, 9);
    int hot = 0;
    constexpr int kSamples = 100000;
    for (int i = 0; i < kSamples; ++i) hot += (gen.next() == 0);
    return static_cast<double>(hot) / kSamples;
  };
  EXPECT_GT(top1_share(0.99), top1_share(0.8));
  EXPECT_GT(top1_share(0.8), top1_share(0.5));
}

TEST(ScrambledZipfian, SpreadsHotKeys) {
  // After scrambling, the hottest keys must not be adjacent ranks.
  ScrambledZipfianGenerator gen(1 << 20, 0.99, 5);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 200000; ++i) ++counts[gen.next()];
  std::vector<std::pair<int, std::uint64_t>> by_count;
  for (auto& [k, c] : counts) by_count.emplace_back(c, k);
  std::sort(by_count.rbegin(), by_count.rend());
  ASSERT_GE(by_count.size(), 3u);
  const std::uint64_t k0 = by_count[0].second, k1 = by_count[1].second;
  const std::uint64_t gap = k0 > k1 ? k0 - k1 : k1 - k0;
  EXPECT_GT(gap, 1000u);  // mixed far apart in the key space
}

TEST(ScrambledZipfian, StillSkewed) {
  ScrambledZipfianGenerator gen(1 << 16, 0.99, 5);
  std::map<std::uint64_t, int> counts;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[gen.next()];
  int max_count = 0;
  for (auto& [k, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, kSamples / 200);  // a hot key exists
}

TEST(MixSpec, PresetsSumTo100) {
  EXPECT_EQ(MixSpec::ycsb_a().total(), 100);
  EXPECT_EQ(MixSpec::read_intensive().total(), 100);
  EXPECT_EQ(MixSpec::ycsb_c().total(), 100);
  EXPECT_EQ(MixSpec::ycsb_e().total(), 100);
  EXPECT_EQ(MixSpec::mixed_25().total(), 100);
}

TEST(OpStream, YcsbEIsScanHeavy) {
  OpStream s(MixSpec::ycsb_e(), KeyDist::kUniform, 1000, 0.0, 19);
  int scans = 0, inserts = 0, others = 0;
  constexpr int kOps = 100000;
  for (int i = 0; i < kOps; ++i) {
    const Op op = s.next();
    if (op.type == OpType::kScan) {
      ++scans;
      EXPECT_GT(op.scan_n, 0u);
    } else if (op.type == OpType::kInsert) {
      ++inserts;
    } else {
      ++others;
    }
  }
  EXPECT_EQ(others, 0);
  EXPECT_NEAR(scans, kOps * 95 / 100, kOps / 40);
  EXPECT_NEAR(inserts, kOps * 5 / 100, kOps / 40);
}

TEST(OpStream, RespectsMixProportions) {
  OpStream s(MixSpec::ycsb_a(), KeyDist::kUniform, 1000, 0.0, 11);
  int finds = 0, updates = 0, others = 0;
  constexpr int kOps = 100000;
  for (int i = 0; i < kOps; ++i) {
    const Op op = s.next();
    if (op.type == OpType::kFind)
      ++finds;
    else if (op.type == OpType::kUpdate)
      ++updates;
    else
      ++others;
  }
  EXPECT_EQ(others, 0);
  EXPECT_NEAR(finds, kOps / 2, kOps / 40);
  EXPECT_NEAR(updates, kOps / 2, kOps / 40);
}

TEST(OpStream, MixedBenchmarkHasAllFourOps) {
  OpStream s(MixSpec::mixed_25(), KeyDist::kUniform, 1000, 0.0, 13);
  std::map<OpType, int> counts;
  for (int i = 0; i < 40000; ++i) ++counts[s.next().type];
  EXPECT_EQ(counts.size(), 4u);
  for (auto& [t, c] : counts) EXPECT_NEAR(c, 10000, 1000);
}

TEST(OpStream, InvalidMixThrows) {
  EXPECT_THROW(OpStream(MixSpec{50, 0, 0, 0, 0}, KeyDist::kUniform, 10, 0.0, 1),
               std::invalid_argument);
}

TEST(OpStream, KeysWithinItemRange) {
  OpStream s(MixSpec::ycsb_a(), KeyDist::kScrambledZipfian, 5000, 0.8, 17);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(s.next().key, 5000u);
}

TEST(OpStream, DeterministicPerSeed) {
  OpStream a(MixSpec::ycsb_a(), KeyDist::kZipfian, 1000, 0.8, 23);
  OpStream b(MixSpec::ycsb_a(), KeyDist::kZipfian, 1000, 0.8, 23);
  for (int i = 0; i < 1000; ++i) {
    const Op x = a.next(), y = b.next();
    EXPECT_EQ(x.type, y.type);
    EXPECT_EQ(x.key, y.key);
  }
}

}  // namespace
}  // namespace rnt::workload
