#!/usr/bin/env python3
"""Run one bench binary with tiny parameters and validate its JSON export.

Usage:
    bench_smoke.py [--schema=stats|gate] [--telemetry] [--introspect]
                   [--require-structure] [--group-persistency] [--require-smo]
                   [--fallback-storm] [--recovery-parallel]
                   [--expect-usage-error] <binary> [bench flags...]

Appends the JSON-export flag (--stats-json=FILE, or --gate-json=FILE for
--schema=gate) pointing at a temp file, runs the binary, and checks that it
exits 0 and that the export matches the documented schema:

  stats  obs registry snapshot (src/obs/export.hpp): {"meta": {...},
         "counters": {str: int}, "gauges": {str: num},
         "histograms": {str: {count,sum,min,max,mean,p50,p90,p99,p999}}}
         with meta.bench present.
  gate   bench_micro perf-gate export: meta-only document with
         schema == "rnt-gate-v2", numeric *_mops rates and integer
         *_persists_mode / *_fences_mode counts (the contract
         tools/perf_gate.py relies on).

With --telemetry (stats schema only) the bench additionally runs with
--sample-ms=50 and --perfetto=FILE: the stats document must then carry a
"timeseries" section with at least one rate window, and the Perfetto file
must be valid chrome://tracing JSON with thread_name metadata and complete
("X") slices carrying ts/dur/tid/name.

With --introspect (stats schema only) the document must carry a "heatmap"
section (run the bench with --heatmap-buckets=N) whose bucket table matches
the documented shape; when meta.heatmap_expected_bucket is present (fig10's
scripted conflict injection), the bucket with the most conflict aborts must
be exactly that bucket — the end-to-end check that attribution lands where
the contention actually is.  --require-structure additionally demands a
schema-valid "structure" section (benches that audit a tree, e.g. fig4).

With --group-persistency (stats schema only) meta must carry numeric
gp_fences_per_op_eager / gp_fences_per_op_batched, and the batched figure
must be strictly below eager whenever meta.batch > 1 — the machine-checkable
form of fig8's fence-amortization claim.

With --require-smo (stats schema only) the counters section must carry the
htm.smo.* cause family and record at least one committed COW install
(htm.smo.installs >= 1) — the smoke-level proof that structure
modifications went through the copy-on-write install path and exported
their telemetry.

With --fallback-storm (stats schema only) meta must carry the deterministic
DES cold-traffic ratios storm_cold_ratio_striped (>= 0.5) and
storm_cold_ratio_global (strictly below striped) — the machine-checkable
form of the striped-fallback-lock robustness claim.

With --recovery-parallel (stats schema only) recovery.parallel_runs must
tick (the multi-worker crash-recovery path actually ran), the measured
serial/parallel timings must be exported, and meta.recovery_sim_speedup —
the deterministic virtual-time model of the block partition — must be
>= 2.5.

With --expect-usage-error the binary must exit 2 and print a usage message;
no JSON flag is appended.  Covers flag-validation hygiene (--sample-ms=0,
out-of-range --heatmap-buckets, ...).

Registered in bench/CMakeLists.txt as one ctest per bench binary, so "the
benches still run and still export what the tooling parses" is part of the
tier-1 suite rather than something discovered at paper-figure time.
"""

import json
import os
import subprocess
import sys
import tempfile

GATE_RATES = ["calib_mops", "find_mops", "insert_mops", "mixed_mops"]
GATE_PERSISTS = [
    "find_persists_mode",
    "insert_persists_mode",
    "update_persists_mode",
    "remove_persists_mode",
    "update_fences_mode",
    "batch8_fences_mode",
]
HIST_FIELDS = ["count", "sum", "min", "max", "mean", "p50", "p90", "p99", "p999"]
WINDOW_FIELDS = [
    "t_s",
    "dt_s",
    "ops",
    "ops_per_s",
    "abort_conflict_per_s",
    "abort_capacity_per_s",
    "abort_other_per_s",
    "fallback_per_s",
    "persists_per_op",
    "pool_bytes_per_s",
]


def fail(msg):
    print(f"bench_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def expect(cond, msg):
    if not cond:
        fail(msg)


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def validate_stats(doc):
    expect(isinstance(doc, dict), "document is not a JSON object")
    for section in ("meta", "counters", "gauges", "histograms"):
        expect(isinstance(doc.get(section), dict), f"missing object '{section}'")
    expect(isinstance(doc["meta"].get("bench"), str), "meta.bench missing")
    for k, v in doc["counters"].items():
        expect(isinstance(v, int) and v >= 0, f"counter {k!r} not a non-negative int")
    for k, v in doc["gauges"].items():
        expect(is_num(v), f"gauge {k!r} not a number")
    for k, h in doc["histograms"].items():
        expect(isinstance(h, dict), f"histogram {k!r} not an object")
        for f in HIST_FIELDS:
            expect(is_num(h.get(f)), f"histogram {k!r} missing numeric {f!r}")


def validate_timeseries(doc):
    ts = doc.get("timeseries")
    expect(isinstance(ts, dict), "missing object 'timeseries'")
    expect(isinstance(ts.get("interval_ms"), int) and ts["interval_ms"] > 0,
           "timeseries.interval_ms not a positive int")
    windows = ts.get("windows")
    expect(isinstance(windows, list) and windows,
           "timeseries.windows missing or empty")
    for i, w in enumerate(windows):
        for f in WINDOW_FIELDS:
            expect(is_num(w.get(f)), f"window[{i}] missing numeric {f!r}")
        expect(w["dt_s"] > 0, f"window[{i}].dt_s not positive")


def validate_perfetto(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"Perfetto export unreadable: {e}")
    events = doc.get("traceEvents")
    expect(isinstance(events, list) and events, "traceEvents missing or empty")
    metas = [e for e in events if e.get("ph") == "M"]
    slices = [e for e in events if e.get("ph") == "X"]
    expect(any(e.get("name") == "thread_name" for e in metas),
           "no thread_name metadata event")
    expect(slices, "no complete ('X') slice events")
    for e in slices[:100]:
        for f in ("ts", "dur"):
            expect(is_num(e.get(f)), f"slice missing numeric {f!r}: {e}")
        expect(isinstance(e.get("tid"), int), f"slice missing int tid: {e}")
        expect(isinstance(e.get("name"), str), f"slice missing name: {e}")


HEAT_CAUSES = [
    "aborts_conflict",
    "aborts_capacity",
    "aborts_other",
    "fallbacks",
    "lock_wait_timeouts",
    "lock_waits",
    "ops",
]


def validate_heatmap(doc):
    hm = doc.get("heatmap")
    expect(isinstance(hm, dict),
           "missing object 'heatmap' (run with --heatmap-buckets=N)")
    expect(isinstance(hm.get("buckets"), int) and hm["buckets"] >= 2,
           "heatmap.buckets not an int >= 2")
    expect(hm.get("mode") in ("key", "leaf"),
           f"heatmap.mode is {hm.get('mode')!r}, want 'key' or 'leaf'")
    events = hm.get("events")
    expect(isinstance(events, dict), "missing object 'heatmap.events'")
    for c in HEAT_CAUSES:
        expect(isinstance(events.get(c), int), f"heatmap.events.{c} not an int")
    top = hm.get("top")
    expect(isinstance(top, list), "heatmap.top not a list")
    for i, b in enumerate(top):
        expect(isinstance(b.get("bucket"), int) and 0 <= b["bucket"] < hm["buckets"],
               f"heatmap.top[{i}].bucket out of range")
        expect(isinstance(b.get("score"), int), f"heatmap.top[{i}].score not an int")
        for c in HEAT_CAUSES:
            expect(isinstance(b.get(c), int), f"heatmap.top[{i}].{c} not an int")
    # The tentpole's end-to-end assertion: fig10's scripted conflict storm on
    # a known key must surface as the top bucket by conflict-abort count.
    want = doc["meta"].get("heatmap_expected_bucket")
    if want is not None:
        expect(top, "heatmap.top empty despite scripted injection")
        hottest = max(top, key=lambda b: b["aborts_conflict"])
        expect(hottest["aborts_conflict"] > 0,
               "no conflict aborts recorded despite scripted injection")
        expect(hottest["bucket"] == want,
               f"hottest bucket by conflict aborts is {hottest['bucket']}, "
               f"expected {want} (meta.heatmap_expected_bucket)")


def validate_structure(doc):
    st = doc.get("structure")
    expect(isinstance(st, dict),
           "missing object 'structure' (bench did not audit a tree)")
    expect(isinstance(st.get("tree"), str), "structure.tree not a string")
    expect(isinstance(st.get("height"), int) and st["height"] >= 1,
           "structure.height not an int >= 1")
    for k in ("inner_fanout", "slot_capacity", "log_capacity"):
        expect(isinstance(st.get(k), int) and st[k] > 0,
               f"structure.{k} not a positive int")
    levels = st.get("levels")
    expect(isinstance(levels, list), "structure.levels not a list")
    for i, lv in enumerate(levels):
        for k in ("level", "nodes"):
            expect(isinstance(lv.get(k), int), f"levels[{i}].{k} not an int")
        for k in ("fill_avg", "fill_p50", "fill_p99"):
            expect(is_num(lv.get(k)), f"levels[{i}].{k} not a number")
    leaves = st.get("leaves")
    expect(isinstance(leaves, dict), "missing object 'structure.leaves'")
    for k in ("count", "live_entries", "log_used"):
        expect(isinstance(leaves.get(k), int), f"leaves.{k} not an int")
    for k in ("fill_avg", "fill_p50", "fill_p99", "chain_occupancy",
              "log_occupancy"):
        expect(is_num(leaves.get(k)), f"leaves.{k} not a number")
    expect(leaves["count"] >= 1, "leaves.count not >= 1")
    frag = st.get("fragmentation")
    if frag is not None:
        expect(isinstance(frag, dict), "structure.fragmentation not an object")
        for k in ("data_begin", "bump", "pool_size", "allocated_bytes",
                  "free_bytes", "tail_bytes", "largest_free_run",
                  "free_blocks", "chunks_total"):
            expect(isinstance(frag.get(k), int), f"fragmentation.{k} not an int")
        for i, ch in enumerate(frag.get("chunks", [])):
            for k in ("off", "live_bytes", "free_bytes", "largest_free_run"):
                expect(isinstance(ch.get(k), int), f"chunks[{i}].{k} not an int")


def validate_group_persistency(doc):
    """fig8's real-ShardedTree segment: batching K modifies under one
    durability barrier must strictly reduce fences per op vs eager."""
    meta = doc["meta"]
    eager = meta.get("gp_fences_per_op_eager")
    batched = meta.get("gp_fences_per_op_batched")
    expect(is_num(eager) and eager > 0,
           "meta.gp_fences_per_op_eager not a positive number")
    expect(is_num(batched) and batched > 0,
           "meta.gp_fences_per_op_batched not a positive number")
    batch = meta.get("batch", 1)
    if isinstance(batch, str):
        batch = int(batch)
    if batch > 1:
        expect(batched < eager,
               f"batched fences/op ({batched}) not below eager ({eager}) "
               f"despite batch={batch}")
    else:
        expect(batched <= eager * 1.05,
               f"batched fences/op ({batched}) above eager ({eager}) at batch=1")


def validate_smo(doc):
    """COW SMO telemetry: the htm.smo.* cause family must be exported and at
    least one install must have committed during the smoke run."""
    counters = doc["counters"]
    smo = {k: v for k, v in counters.items() if k.startswith("htm.smo.")}
    expect(smo, "no htm.smo.* counters in export")
    for k in ("htm.smo.installs", "htm.smo.validation_failures",
              "htm.smo.overflow_fallbacks", "htm.smo.retry_fallbacks",
              "htm.smo.legacy_path"):
        expect(k in counters, f"counter {k!r} missing from export")
    expect(counters["htm.smo.installs"] >= 1,
           "htm.smo.installs is 0 — no COW install committed during smoke")


def meta_num(meta, key):
    v = meta.get(key)
    if isinstance(v, str):
        try:
            v = float(v)
        except ValueError:
            fail(f"meta.{key} is not numeric: {v!r}")
    expect(is_num(v), f"meta.{key} missing or not a number")
    return v


def validate_fallback_storm(doc):
    """bench_ablation_fallback's DES panel is deterministic, so its exported
    cold-traffic survival ratios are asserted: striping keeps cold stripes
    >= 0.5x of calm throughput under the capacity-abort storm while the
    single global fallback lock does strictly worse."""
    meta = doc["meta"]
    striped = meta_num(meta, "storm_cold_ratio_striped")
    glbl = meta_num(meta, "storm_cold_ratio_global")
    expect(striped >= 0.5,
           f"striped cold-traffic ratio {striped} < 0.5 under the storm")
    expect(glbl < striped,
           f"global fallback lock ratio ({glbl}) not below striped "
           f"({striped}) — the storm failed to collapse the baseline")


def validate_recovery_parallel(doc):
    """fig7's parallel-recovery extension: the multi-worker crash-recovery
    path must actually run (recovery.parallel_runs ticks), export serial and
    parallel timings, and the deterministic virtual-time model must show the
    >= 2.5x speed-up (wall-clock speed-up is host-core bound, so only the
    timings are required, not their ratio)."""
    meta = doc["meta"]
    expect(meta_num(meta, "recovery_serial_ms") > 0,
           "meta.recovery_serial_ms not positive")
    expect(meta_num(meta, "recovery_parallel_ms") > 0,
           "meta.recovery_parallel_ms not positive")
    sim_speedup = meta_num(meta, "recovery_sim_speedup")
    expect(sim_speedup >= 2.5,
           f"simulated recovery speedup {sim_speedup} < 2.5")
    counters = doc["counters"]
    expect(counters.get("recovery.parallel_runs", 0) >= 1,
           "recovery.parallel_runs is 0 — the parallel path never ran")
    expect(counters.get("recovery.workers", 0) >= 2,
           "recovery.workers < 2 — no multi-worker recovery recorded")


def validate_gate(doc):
    expect(isinstance(doc, dict), "document is not a JSON object")
    meta = doc.get("meta")
    expect(isinstance(meta, dict), "missing object 'meta'")
    expect(meta.get("schema") == "rnt-gate-v2",
           f"meta.schema is {meta.get('schema')!r}, want 'rnt-gate-v2'")
    for k in GATE_RATES:
        expect(is_num(meta.get(k)) and meta[k] > 0, f"meta.{k} not a positive number")
    for k in GATE_PERSISTS:
        expect(isinstance(meta.get(k), int), f"meta.{k} not an integer")


def main():
    args = sys.argv[1:]
    schema = "stats"
    telemetry = False
    introspect = False
    require_structure = False
    group_persistency = False
    require_smo = False
    fallback_storm = False
    recovery_parallel = False
    expect_usage_error = False
    while args and args[0].startswith("--"):
        if args[0].startswith("--schema="):
            schema = args.pop(0).split("=", 1)[1]
        elif args[0] == "--telemetry":
            telemetry = True
            args.pop(0)
        elif args[0] == "--introspect":
            introspect = True
            args.pop(0)
        elif args[0] == "--require-structure":
            require_structure = True
            args.pop(0)
        elif args[0] == "--group-persistency":
            group_persistency = True
            args.pop(0)
        elif args[0] == "--require-smo":
            require_smo = True
            args.pop(0)
        elif args[0] == "--fallback-storm":
            fallback_storm = True
            args.pop(0)
        elif args[0] == "--recovery-parallel":
            recovery_parallel = True
            args.pop(0)
        elif args[0] == "--expect-usage-error":
            expect_usage_error = True
            args.pop(0)
        else:
            break
    if schema not in ("stats", "gate") or not args or (
            (telemetry or introspect or require_structure or group_persistency
             or require_smo or fallback_storm or recovery_parallel)
            and schema != "stats"):
        print(__doc__, file=sys.stderr)
        return 2

    binary, bench_args = args[0], args[1:]

    if expect_usage_error:
        proc = subprocess.run([binary] + bench_args, stdout=subprocess.PIPE,
                              stderr=subprocess.PIPE, timeout=600)
        if proc.returncode != 2:
            sys.stdout.buffer.write(proc.stdout + proc.stderr)
            fail(f"expected exit 2 for {' '.join(bench_args)}, "
                 f"got {proc.returncode}")
        if b"usage:" not in proc.stderr:
            sys.stdout.buffer.write(proc.stderr)
            fail("rejected flag did not print a usage message")
        print(f"bench_smoke: OK ({os.path.basename(binary)}, usage-error "
              f"for {' '.join(bench_args)})")
        return 0

    json_flag = "--gate-json=" if schema == "gate" else "--stats-json="
    fd, path = tempfile.mkstemp(prefix="bench_smoke_", suffix=".json")
    os.close(fd)
    perfetto_path = None
    if telemetry:
        fd, perfetto_path = tempfile.mkstemp(prefix="bench_smoke_perfetto_",
                                             suffix=".json")
        os.close(fd)
    try:
        cmd = [binary] + bench_args + [json_flag + path]
        if telemetry:
            cmd += ["--sample-ms=50", "--perfetto=" + perfetto_path]
        proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, timeout=600)
        if proc.returncode != 0:
            sys.stdout.buffer.write(proc.stdout)
            fail(f"{' '.join(cmd)} exited {proc.returncode}")
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(f"JSON export unreadable: {e}")
        (validate_gate if schema == "gate" else validate_stats)(doc)
        if telemetry:
            validate_timeseries(doc)
            validate_perfetto(perfetto_path)
        if introspect:
            validate_heatmap(doc)
        if require_structure:
            validate_structure(doc)
        if group_persistency:
            validate_group_persistency(doc)
        if require_smo:
            validate_smo(doc)
        if fallback_storm:
            validate_fallback_storm(doc)
        if recovery_parallel:
            validate_recovery_parallel(doc)
        mode = ", telemetry" if telemetry else ""
        if introspect:
            mode += ", introspect"
        if require_structure:
            mode += ", structure"
        if group_persistency:
            mode += ", group-persistency"
        if require_smo:
            mode += ", smo"
        if fallback_storm:
            mode += ", fallback-storm"
        if recovery_parallel:
            mode += ", recovery-parallel"
        print(f"bench_smoke: OK ({os.path.basename(binary)}, "
              f"schema={schema}{mode})")
        return 0
    finally:
        for p in (path, perfetto_path):
            if p is None:
                continue
            try:
                os.unlink(p)
            except OSError:
                pass


if __name__ == "__main__":
    sys.exit(main())
