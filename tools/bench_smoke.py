#!/usr/bin/env python3
"""Run one bench binary with tiny parameters and validate its JSON export.

Usage:
    bench_smoke.py [--schema=stats|gate] <binary> [bench flags...]

Appends the JSON-export flag (--stats-json=FILE, or --gate-json=FILE for
--schema=gate) pointing at a temp file, runs the binary, and checks that it
exits 0 and that the export matches the documented schema:

  stats  obs registry snapshot (src/obs/export.hpp): {"meta": {...},
         "counters": {str: int}, "gauges": {str: num},
         "histograms": {str: {count,min,max,mean,p50,p90,p99,p999}}}
         with meta.bench present.
  gate   bench_micro perf-gate export: meta-only document with
         schema == "rnt-gate-v1", numeric *_mops rates and integer
         *_persists_mode counts (the contract tools/perf_gate.py relies on).

Registered in bench/CMakeLists.txt as one ctest per bench binary, so "the
benches still run and still export what the tooling parses" is part of the
tier-1 suite rather than something discovered at paper-figure time.
"""

import json
import os
import subprocess
import sys
import tempfile

GATE_RATES = ["calib_mops", "find_mops", "insert_mops", "mixed_mops"]
GATE_PERSISTS = [
    "find_persists_mode",
    "insert_persists_mode",
    "update_persists_mode",
    "remove_persists_mode",
]
HIST_FIELDS = ["count", "min", "max", "mean", "p50", "p90", "p99", "p999"]


def fail(msg):
    print(f"bench_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def expect(cond, msg):
    if not cond:
        fail(msg)


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def validate_stats(doc):
    expect(isinstance(doc, dict), "document is not a JSON object")
    for section in ("meta", "counters", "gauges", "histograms"):
        expect(isinstance(doc.get(section), dict), f"missing object '{section}'")
    expect(isinstance(doc["meta"].get("bench"), str), "meta.bench missing")
    for k, v in doc["counters"].items():
        expect(isinstance(v, int) and v >= 0, f"counter {k!r} not a non-negative int")
    for k, v in doc["gauges"].items():
        expect(is_num(v), f"gauge {k!r} not a number")
    for k, h in doc["histograms"].items():
        expect(isinstance(h, dict), f"histogram {k!r} not an object")
        for f in HIST_FIELDS:
            expect(is_num(h.get(f)), f"histogram {k!r} missing numeric {f!r}")


def validate_gate(doc):
    expect(isinstance(doc, dict), "document is not a JSON object")
    meta = doc.get("meta")
    expect(isinstance(meta, dict), "missing object 'meta'")
    expect(meta.get("schema") == "rnt-gate-v1",
           f"meta.schema is {meta.get('schema')!r}, want 'rnt-gate-v1'")
    for k in GATE_RATES:
        expect(is_num(meta.get(k)) and meta[k] > 0, f"meta.{k} not a positive number")
    for k in GATE_PERSISTS:
        expect(isinstance(meta.get(k), int), f"meta.{k} not an integer")


def main():
    args = sys.argv[1:]
    schema = "stats"
    if args and args[0].startswith("--schema="):
        schema = args.pop(0).split("=", 1)[1]
    if schema not in ("stats", "gate") or not args:
        print(__doc__, file=sys.stderr)
        return 2

    binary, bench_args = args[0], args[1:]
    json_flag = "--gate-json=" if schema == "gate" else "--stats-json="
    fd, path = tempfile.mkstemp(prefix="bench_smoke_", suffix=".json")
    os.close(fd)
    try:
        cmd = [binary] + bench_args + [json_flag + path]
        proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, timeout=600)
        if proc.returncode != 0:
            sys.stdout.buffer.write(proc.stdout)
            fail(f"{' '.join(cmd)} exited {proc.returncode}")
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(f"JSON export unreadable: {e}")
        (validate_gate if schema == "gate" else validate_stats)(doc)
        print(f"bench_smoke: OK ({os.path.basename(binary)}, schema={schema})")
        return 0
    finally:
        try:
            os.unlink(path)
        except OSError:
            pass


if __name__ == "__main__":
    sys.exit(main())
