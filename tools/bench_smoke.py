#!/usr/bin/env python3
"""Run one bench binary with tiny parameters and validate its JSON export.

Usage:
    bench_smoke.py [--schema=stats|gate] [--telemetry] <binary> [bench flags...]

Appends the JSON-export flag (--stats-json=FILE, or --gate-json=FILE for
--schema=gate) pointing at a temp file, runs the binary, and checks that it
exits 0 and that the export matches the documented schema:

  stats  obs registry snapshot (src/obs/export.hpp): {"meta": {...},
         "counters": {str: int}, "gauges": {str: num},
         "histograms": {str: {count,sum,min,max,mean,p50,p90,p99,p999}}}
         with meta.bench present.
  gate   bench_micro perf-gate export: meta-only document with
         schema == "rnt-gate-v1", numeric *_mops rates and integer
         *_persists_mode counts (the contract tools/perf_gate.py relies on).

With --telemetry (stats schema only) the bench additionally runs with
--sample-ms=50 and --perfetto=FILE: the stats document must then carry a
"timeseries" section with at least one rate window, and the Perfetto file
must be valid chrome://tracing JSON with thread_name metadata and complete
("X") slices carrying ts/dur/tid/name.

Registered in bench/CMakeLists.txt as one ctest per bench binary, so "the
benches still run and still export what the tooling parses" is part of the
tier-1 suite rather than something discovered at paper-figure time.
"""

import json
import os
import subprocess
import sys
import tempfile

GATE_RATES = ["calib_mops", "find_mops", "insert_mops", "mixed_mops"]
GATE_PERSISTS = [
    "find_persists_mode",
    "insert_persists_mode",
    "update_persists_mode",
    "remove_persists_mode",
]
HIST_FIELDS = ["count", "sum", "min", "max", "mean", "p50", "p90", "p99", "p999"]
WINDOW_FIELDS = [
    "t_s",
    "dt_s",
    "ops",
    "ops_per_s",
    "abort_conflict_per_s",
    "abort_capacity_per_s",
    "abort_other_per_s",
    "fallback_per_s",
    "persists_per_op",
    "pool_bytes_per_s",
]


def fail(msg):
    print(f"bench_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def expect(cond, msg):
    if not cond:
        fail(msg)


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def validate_stats(doc):
    expect(isinstance(doc, dict), "document is not a JSON object")
    for section in ("meta", "counters", "gauges", "histograms"):
        expect(isinstance(doc.get(section), dict), f"missing object '{section}'")
    expect(isinstance(doc["meta"].get("bench"), str), "meta.bench missing")
    for k, v in doc["counters"].items():
        expect(isinstance(v, int) and v >= 0, f"counter {k!r} not a non-negative int")
    for k, v in doc["gauges"].items():
        expect(is_num(v), f"gauge {k!r} not a number")
    for k, h in doc["histograms"].items():
        expect(isinstance(h, dict), f"histogram {k!r} not an object")
        for f in HIST_FIELDS:
            expect(is_num(h.get(f)), f"histogram {k!r} missing numeric {f!r}")


def validate_timeseries(doc):
    ts = doc.get("timeseries")
    expect(isinstance(ts, dict), "missing object 'timeseries'")
    expect(isinstance(ts.get("interval_ms"), int) and ts["interval_ms"] > 0,
           "timeseries.interval_ms not a positive int")
    windows = ts.get("windows")
    expect(isinstance(windows, list) and windows,
           "timeseries.windows missing or empty")
    for i, w in enumerate(windows):
        for f in WINDOW_FIELDS:
            expect(is_num(w.get(f)), f"window[{i}] missing numeric {f!r}")
        expect(w["dt_s"] > 0, f"window[{i}].dt_s not positive")


def validate_perfetto(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"Perfetto export unreadable: {e}")
    events = doc.get("traceEvents")
    expect(isinstance(events, list) and events, "traceEvents missing or empty")
    metas = [e for e in events if e.get("ph") == "M"]
    slices = [e for e in events if e.get("ph") == "X"]
    expect(any(e.get("name") == "thread_name" for e in metas),
           "no thread_name metadata event")
    expect(slices, "no complete ('X') slice events")
    for e in slices[:100]:
        for f in ("ts", "dur"):
            expect(is_num(e.get(f)), f"slice missing numeric {f!r}: {e}")
        expect(isinstance(e.get("tid"), int), f"slice missing int tid: {e}")
        expect(isinstance(e.get("name"), str), f"slice missing name: {e}")


def validate_gate(doc):
    expect(isinstance(doc, dict), "document is not a JSON object")
    meta = doc.get("meta")
    expect(isinstance(meta, dict), "missing object 'meta'")
    expect(meta.get("schema") == "rnt-gate-v1",
           f"meta.schema is {meta.get('schema')!r}, want 'rnt-gate-v1'")
    for k in GATE_RATES:
        expect(is_num(meta.get(k)) and meta[k] > 0, f"meta.{k} not a positive number")
    for k in GATE_PERSISTS:
        expect(isinstance(meta.get(k), int), f"meta.{k} not an integer")


def main():
    args = sys.argv[1:]
    schema = "stats"
    telemetry = False
    while args and args[0].startswith("--"):
        if args[0].startswith("--schema="):
            schema = args.pop(0).split("=", 1)[1]
        elif args[0] == "--telemetry":
            telemetry = True
            args.pop(0)
        else:
            break
    if schema not in ("stats", "gate") or not args or (
            telemetry and schema != "stats"):
        print(__doc__, file=sys.stderr)
        return 2

    binary, bench_args = args[0], args[1:]
    json_flag = "--gate-json=" if schema == "gate" else "--stats-json="
    fd, path = tempfile.mkstemp(prefix="bench_smoke_", suffix=".json")
    os.close(fd)
    perfetto_path = None
    if telemetry:
        fd, perfetto_path = tempfile.mkstemp(prefix="bench_smoke_perfetto_",
                                             suffix=".json")
        os.close(fd)
    try:
        cmd = [binary] + bench_args + [json_flag + path]
        if telemetry:
            cmd += ["--sample-ms=50", "--perfetto=" + perfetto_path]
        proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, timeout=600)
        if proc.returncode != 0:
            sys.stdout.buffer.write(proc.stdout)
            fail(f"{' '.join(cmd)} exited {proc.returncode}")
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(f"JSON export unreadable: {e}")
        (validate_gate if schema == "gate" else validate_stats)(doc)
        if telemetry:
            validate_timeseries(doc)
            validate_perfetto(perfetto_path)
        mode = ", telemetry" if telemetry else ""
        print(f"bench_smoke: OK ({os.path.basename(binary)}, "
              f"schema={schema}{mode})")
        return 0
    finally:
        for p in (path, perfetto_path):
            if p is None:
                continue
            try:
                os.unlink(p)
            except OSError:
                pass


if __name__ == "__main__":
    sys.exit(main())
